/**
 * @file
 * Tests for trace-file capture and replay.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "cpu/system.hh"
#include "sim/policy_factory.hh"
#include "trace/spec_profiles.hh"
#include "trace/trace_file.hh"
#include "trace/workload.hh"

namespace sdbp
{
namespace
{

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

TEST(TraceFile, RoundTripPreservesEveryField)
{
    const std::string path = tempPath("roundtrip.sdbptrace");
    SyntheticWorkload gen(specProfile("450.soplex"));
    std::vector<Access> expected;
    {
        TraceWriter writer(path);
        for (int i = 0; i < 500; ++i) {
            const Access r = gen.next();
            expected.push_back(r);
            writer.append(r);
        }
        EXPECT_EQ(writer.recordsWritten(), 500u);
    }
    const auto records = readTraceFile(path);
    ASSERT_EQ(records.size(), expected.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(records[i].gap, expected[i].gap);
        EXPECT_EQ(records[i].pc, expected[i].pc);
        EXPECT_EQ(records[i].addr, expected[i].addr);
        EXPECT_EQ(records[i].isWrite, expected[i].isWrite);
        EXPECT_EQ(records[i].dependsOnPrevLoad,
                  expected[i].dependsOnPrevLoad);
    }
    std::remove(path.c_str());
}

TEST(TraceFile, CaptureHelperMatchesGeneratorOutput)
{
    const std::string path = tempPath("capture.sdbptrace");
    SyntheticWorkload gen(specProfile("429.mcf"));
    captureTrace(gen, 256, path);
    gen.reset();
    const auto records = readTraceFile(path);
    ASSERT_EQ(records.size(), 256u);
    for (const auto &rec : records) {
        const Access expected = gen.next();
        EXPECT_EQ(rec.addr, expected.addr);
        EXPECT_EQ(rec.pc, expected.pc);
    }
    std::remove(path.c_str());
}

TEST(TraceFile, ReplayLoopsAndResets)
{
    std::vector<Access> records;
    for (int i = 0; i < 5; ++i) {
        Access r;
        r.gap = static_cast<std::uint32_t>(i);
        r.addr = static_cast<Addr>(i) * 64;
        records.push_back(r);
    }
    TraceReplayGenerator replay(records);
    EXPECT_EQ(replay.size(), 5u);
    for (int lap = 0; lap < 3; ++lap)
        for (int i = 0; i < 5; ++i)
            EXPECT_EQ(replay.next().addr,
                      static_cast<Addr>(i) * 64);
    EXPECT_EQ(replay.loops(), 3u);
    replay.reset();
    EXPECT_EQ(replay.loops(), 0u);
    EXPECT_EQ(replay.next().gap, 0u);
}

TEST(TraceFile, ReplayReproducesTheSimulatedRun)
{
    const std::string path = tempPath("simdrive.sdbptrace");
    SyntheticWorkload gen(specProfile("462.libquantum"));
    captureTrace(gen, 30000, path);
    gen.reset();
    TraceReplayGenerator replay(path);

    auto run = [](AccessGenerator &g) {
        HierarchyConfig cfg;
        System sys(cfg, CoreConfig{},
                   makePolicy(PolicyKind::Sampler, cfg.llc.numSets,
                              cfg.llc.assoc));
        std::vector<AccessGenerator *> gens = {&g};
        sys.run(gens, 0, 60000);
        return sys.hierarchy().llc().stats().demandMisses;
    };

    // Replaying the captured trace reproduces the generator-driven
    // run exactly over the captured prefix.
    EXPECT_EQ(run(gen), run(replay));
    std::remove(path.c_str());
}

} // anonymous namespace
} // namespace sdbp
