/**
 * @file
 * Broad parameterized sweeps: every benchmark profile and every
 * policy kind must behave sanely under simulation, independent of
 * the calibrated result shapes.
 */

#include <gtest/gtest.h>

#include <set>

#include "cpu/system.hh"
#include "sim/runner.hh"
#include "trace/spec_profiles.hh"
#include "util/table.hh"

namespace sdbp
{
namespace
{

/** Every profile constructs, is deterministic, and stays bounded. */
class BenchmarkSweep
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(BenchmarkSweep, ProfileIsWellFormed)
{
    const WorkloadProfile p = specProfile(GetParam());
    EXPECT_FALSE(p.streams.empty());
    for (const auto &s : p.streams) {
        EXPECT_GT(s.regionBlocks, 0u);
        EXPECT_GT(s.weight, 0u);
        EXPECT_GT(s.touchesPerBlock, 0u);
        EXPECT_GE(s.writeFraction, 0.0);
        EXPECT_LE(s.writeFraction, 1.0);
    }
}

TEST_P(BenchmarkSweep, GeneratorIsDeterministicAndAligned)
{
    SyntheticWorkload a(specProfile(GetParam()));
    SyntheticWorkload b(specProfile(GetParam()));
    for (int i = 0; i < 500; ++i) {
        const Access ra = a.next();
        const Access rb = b.next();
        EXPECT_EQ(ra.addr, rb.addr);
        EXPECT_EQ(ra.pc, rb.pc);
        // PCs look like instruction addresses (4-byte aligned).
        EXPECT_EQ(ra.pc % 4, 0u);
    }
}

TEST_P(BenchmarkSweep, ShortSimulationProducesSaneMetrics)
{
    RunConfig cfg = RunConfig::singleCore();
    cfg.warmupInstructions = 20000;
    cfg.measureInstructions = 40000;
    const RunResult r = runSingleCore(GetParam(), PolicyKind::Lru,
                                      cfg);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_LE(r.ipc, 4.0);
    EXPECT_GE(r.mpki, 0.0);
    EXPECT_LT(r.mpki, 1000.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, BenchmarkSweep,
    ::testing::ValuesIn(allSpecBenchmarks()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '.')
                c = '_';
        return name;
    });

/** Every policy kind simulates cleanly and deterministically. */
class PolicySweep : public ::testing::TestWithParam<PolicyKind>
{
};

TEST_P(PolicySweep, SimulatesWithoutSurprises)
{
    RunConfig cfg = RunConfig::singleCore();
    cfg.warmupInstructions = 30000;
    cfg.measureInstructions = 60000;
    const RunResult a =
        runSingleCore("450.soplex", GetParam(), cfg);
    const RunResult b =
        runSingleCore("450.soplex", GetParam(), cfg);
    EXPECT_EQ(a.llcMisses, b.llcMisses);
    EXPECT_GT(a.ipc, 0.0);
    EXPECT_LE(a.ipc, 4.0);
    // Misses never exceed accesses.
    EXPECT_LE(a.llcMisses, a.llcAccesses);
}

TEST_P(PolicySweep, WorksAtOtherCacheSizes)
{
    for (std::uint32_t sets : {512u, 4096u}) {
        RunConfig cfg = RunConfig::singleCore();
        cfg.warmupInstructions = 20000;
        cfg.measureInstructions = 40000;
        cfg.hierarchy.llc.numSets = sets;
        const RunResult r =
            runSingleCore("434.zeusmp", GetParam(), cfg);
        EXPECT_GT(r.ipc, 0.0) << sets;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicySweep,
    ::testing::Values(PolicyKind::Lru, PolicyKind::Random,
                      PolicyKind::Dip, PolicyKind::Tadip,
                      PolicyKind::Rrip, PolicyKind::Sampler,
                      PolicyKind::Tdbp, PolicyKind::Cdbp,
                      PolicyKind::RandomSampler,
                      PolicyKind::RandomCdbp,
                      PolicyKind::SamplingCounting,
                      PolicyKind::TreePlru, PolicyKind::Nru,
                      PolicyKind::Lip, PolicyKind::Aip,
                      PolicyKind::TimeDbp, PolicyKind::BurstDbp),
    [](const ::testing::TestParamInfo<PolicyKind> &info) {
        std::string name = policyName(info.param);
        std::string out;
        for (char c : name)
            if (c != ' ' && c != '-')
                out += c;
        return out;
    });

/** Cache-size monotonicity: larger LLCs never miss more under LRU. */
class CacheSizeSweep
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(CacheSizeSweep, LruMissesFallWithCapacity)
{
    std::uint64_t prev = ~0ull;
    for (std::uint32_t sets : {512u, 1024u, 2048u, 4096u}) {
        RunConfig cfg = RunConfig::singleCore();
        cfg.warmupInstructions = 200000;
        cfg.measureInstructions = 400000;
        cfg.hierarchy.llc.numSets = sets;
        const RunResult r =
            runSingleCore(GetParam(), PolicyKind::Lru, cfg);
        // Allow a little noise: LRU is not strictly inclusive
        // across SET counts (only across associativity), but the
        // trend must be strongly downward.
        EXPECT_LE(r.llcMisses, prev + prev / 20 + 100)
            << sets << " sets";
        prev = r.llcMisses;
    }
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, CacheSizeSweep,
                         ::testing::Values("456.hmmer", "450.soplex",
                                           "403.gcc"));

TEST(TableCsv, EscapesAndRoundTrips)
{
    TextTable t({"name", "note"});
    t.row().cell("plain").cell("with,comma");
    t.row().cell("quoted \"x\"").cell("multi\nline");
    const std::string csv = t.renderCsv();
    EXPECT_NE(csv.find("name,note"), std::string::npos);
    EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
    EXPECT_NE(csv.find("\"quoted \"\"x\"\"\""), std::string::npos);
}

TEST(TableCsv, WritesFile)
{
    TextTable t({"a", "b"});
    t.row().cell(std::uint64_t(1)).cell(std::uint64_t(2));
    const std::string path =
        std::string(::testing::TempDir()) + "sdbp_table.csv";
    ASSERT_TRUE(t.writeCsv(path));
    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buf[64] = {};
    (void)std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    EXPECT_NE(std::string(buf).find("a,b"), std::string::npos);
    std::remove(path.c_str());
}

} // anonymous namespace
} // namespace sdbp
