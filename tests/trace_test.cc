/**
 * @file
 * Unit tests for the synthetic workload substrate.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "trace/spec_profiles.hh"
#include "trace/stream.hh"
#include "trace/workload.hh"

namespace sdbp
{
namespace
{

StreamConfig
seqConfig(std::uint64_t blocks)
{
    StreamConfig cfg;
    cfg.kind = PatternKind::Sequential;
    cfg.regionBlocks = blocks;
    cfg.touchesPerBlock = 1;
    cfg.numPcs = 1;
    cfg.writeFraction = 0.0;
    return cfg;
}

TEST(Stream, SequentialScansInOrderAndWraps)
{
    Stream s(seqConfig(4), 0x1000, 0x400000, 1);
    std::vector<Addr> blocks;
    for (int i = 0; i < 8; ++i)
        blocks.push_back(s.next().blockAddr());
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(blocks[i + 1] - blocks[i == 3 ? 0 : i],
                  i == 3 ? 0u : 1u);
        EXPECT_EQ(blocks[i], blocks[i + 4]); // second pass repeats
    }
}

TEST(Stream, TouchesPerBlockRepeatsTheSameBlock)
{
    StreamConfig cfg = seqConfig(8);
    cfg.touchesPerBlock = 3;
    Stream s(cfg, 0x1000, 0x400000, 1);
    const Addr a0 = s.next().blockAddr();
    EXPECT_EQ(s.next().blockAddr(), a0);
    EXPECT_EQ(s.next().blockAddr(), a0);
    EXPECT_NE(s.next().blockAddr(), a0);
}

TEST(Stream, PcRotationWithinBurst)
{
    StreamConfig cfg = seqConfig(8);
    cfg.touchesPerBlock = 2;
    cfg.numPcs = 2;
    Stream s(cfg, 0x1000, 0x400000, 1);
    const PC p0 = s.next().pc;
    const PC p1 = s.next().pc;
    EXPECT_NE(p0, p1);
    EXPECT_EQ(s.next().pc, p0); // next block restarts the rotation
}

TEST(Stream, ResetReproducesSequence)
{
    StreamConfig cfg = seqConfig(16);
    cfg.writeFraction = 0.5;
    Stream s(cfg, 0x1000, 0x400000, 99);
    std::vector<Access> first;
    for (int i = 0; i < 50; ++i)
        first.push_back(s.next());
    s.reset();
    for (int i = 0; i < 50; ++i) {
        const Access a = s.next();
        EXPECT_EQ(a.addr, first[i].addr);
        EXPECT_EQ(a.pc, first[i].pc);
        EXPECT_EQ(a.isWrite, first[i].isWrite);
    }
}

TEST(Stream, StridedCoversRegion)
{
    StreamConfig cfg = seqConfig(16);
    cfg.kind = PatternKind::Strided;
    cfg.strideBlocks = 4;
    Stream s(cfg, 0, 0x400000, 1);
    std::set<Addr> blocks;
    for (int i = 0; i < 4; ++i)
        blocks.insert(s.next().blockAddr());
    EXPECT_EQ(blocks.size(), 4u); // 16/4 distinct strided positions
}

TEST(Stream, PointerChaseIsAPermutationCycle)
{
    StreamConfig cfg = seqConfig(64);
    cfg.kind = PatternKind::PointerChase;
    Stream s(cfg, 0, 0x400000, 7);
    std::set<Addr> blocks;
    for (int i = 0; i < 64; ++i)
        blocks.insert(s.next().blockAddr());
    EXPECT_EQ(blocks.size(), 64u); // visits every block exactly once
    // Second lap repeats the first.
    Stream s2(cfg, 0, 0x400000, 7);
    std::vector<Addr> lap1, lap2;
    for (int i = 0; i < 64; ++i)
        lap1.push_back(s2.next().blockAddr());
    for (int i = 0; i < 64; ++i)
        lap2.push_back(s2.next().blockAddr());
    EXPECT_EQ(lap1, lap2);
}

TEST(Stream, PointerChaseLoadsAreDependent)
{
    StreamConfig cfg = seqConfig(32);
    cfg.kind = PatternKind::PointerChase;
    cfg.writeFraction = 0.0;
    Stream s(cfg, 0, 0x400000, 1);
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(s.next().dependsOnPrevLoad);
}

TEST(Stream, GenerationalRegionsDoNotRecycleWithinWindow)
{
    StreamConfig cfg = seqConfig(4);
    cfg.kind = PatternKind::Generational;
    cfg.epochs = 1;
    Stream s(cfg, 0, 0x400000, 1);
    std::set<Addr> blocks;
    // 16 generations x 4 blocks, all within the 64-generation window.
    for (int i = 0; i < 64; ++i)
        blocks.insert(s.next().blockAddr());
    EXPECT_EQ(blocks.size(), 64u);
}

TEST(Stream, GenerationalEpochsRescanTheRegion)
{
    StreamConfig cfg = seqConfig(4);
    cfg.kind = PatternKind::Generational;
    cfg.epochs = 3;
    Stream s(cfg, 0, 0x400000, 1);
    std::vector<Addr> accesses;
    std::vector<PC> pcs;
    for (int i = 0; i < 12; ++i) { // one full generation
        const Access a = s.next();
        accesses.push_back(a.blockAddr());
        pcs.push_back(a.pc);
    }
    // Each epoch scans the same 4 blocks.
    for (int e = 1; e < 3; ++e)
        for (int b = 0; b < 4; ++b)
            EXPECT_EQ(accesses[e * 4 + b], accesses[b]);
    // Each epoch uses its own PC.
    EXPECT_NE(pcs[0], pcs[4]);
    EXPECT_NE(pcs[4], pcs[8]);
    // The next access starts a new region.
    EXPECT_EQ(std::count(accesses.begin(), accesses.end(),
                         s.next().blockAddr()),
              0);
}

TEST(Stream, GenerationalLastEpochPcIsConsistentAcrossGenerations)
{
    StreamConfig cfg = seqConfig(2);
    cfg.kind = PatternKind::Generational;
    cfg.epochs = 2;
    Stream s(cfg, 0, 0x400000, 1);
    std::vector<PC> last_epoch_pcs;
    for (int gen = 0; gen < 5; ++gen) {
        s.next();
        s.next(); // epoch 0
        last_epoch_pcs.push_back(s.next().pc);
        s.next(); // epoch 1
    }
    for (PC pc : last_epoch_pcs)
        EXPECT_EQ(pc, last_epoch_pcs[0]);
}

TEST(Stream, RandomEpochsVaryGenerationLength)
{
    StreamConfig cfg = seqConfig(2);
    cfg.kind = PatternKind::Generational;
    cfg.randomEpochMax = 4;
    Stream s(cfg, 0, 0x400000, 123);
    // Count how many times each region address is touched; with
    // random epoch counts in [1,4] the counts must vary.
    std::map<Addr, int> touches;
    for (int i = 0; i < 400; ++i)
        ++touches[s.next().blockAddr()];
    std::set<int> distinct;
    for (const auto &[addr, count] : touches)
        distinct.insert(count);
    EXPECT_GE(distinct.size(), 2u);
}

TEST(Stream, ExtraEpochProbabilityJittersLifetimes)
{
    StreamConfig cfg = seqConfig(2);
    cfg.kind = PatternKind::Generational;
    cfg.epochs = 2;
    cfg.extraEpochProb = 0.5;
    Stream s(cfg, 0, 0x400000, 321);
    // Count touches per region address: generations of 2 or 3
    // epochs produce per-block touch counts of 2 or 3.
    std::map<Addr, int> touches;
    for (int i = 0; i < 600; ++i)
        ++touches[s.next().blockAddr()];
    std::set<int> distinct;
    for (const auto &[addr, count] : touches)
        if (count == 2 || count == 3)
            distinct.insert(count);
    EXPECT_EQ(distinct.size(), 2u);
    // The per-epoch PCs stay tied to the epoch index: only 3 PCs.
    s.reset();
    std::set<PC> pcs;
    for (int i = 0; i < 600; ++i)
        pcs.insert(s.next().pc);
    EXPECT_EQ(pcs.size(), 3u);
}

TEST(Stream, RescanDoublesEpochTouchesSometimes)
{
    StreamConfig cfg = seqConfig(4);
    cfg.kind = PatternKind::Generational;
    cfg.epochs = 1;
    cfg.rescanProb = 0.5;
    Stream s(cfg, 0, 0x400000, 99);
    // With single-epoch generations and 50% re-scans, per-block
    // touch counts are 1 or 2 but the PC never changes.
    std::map<Addr, int> touches;
    std::set<PC> pcs;
    for (int i = 0; i < 400; ++i) {
        const Access a = s.next();
        ++touches[a.blockAddr()];
        pcs.insert(a.pc);
    }
    std::set<int> distinct;
    for (const auto &[addr, count] : touches)
        distinct.insert(count);
    EXPECT_TRUE(distinct.count(1) == 1 || distinct.count(2) == 1);
    EXPECT_GE(distinct.size(), 2u);
    EXPECT_EQ(pcs.size(), 1u);
}

TEST(Stream, PopularitySkewConcentratesTouches)
{
    StreamConfig uniform = seqConfig(1024);
    uniform.kind = PatternKind::RandomInRegion;
    uniform.popularitySkew = 1;
    StreamConfig skewed = uniform;
    skewed.popularitySkew = 3;

    auto head_share = [](const StreamConfig &cfg) {
        Stream s(cfg, 0, 0x400000, 11);
        int head = 0;
        const int n = 20000;
        for (int i = 0; i < n; ++i)
            head += s.next().blockAddr() < 1024 / 5;
        return static_cast<double>(head) / n;
    };
    EXPECT_NEAR(head_share(uniform), 0.2, 0.02);
    // u^3 draw: P(block < 0.2 R) = 0.2^(1/3) ~ 0.58.
    EXPECT_GT(head_share(skewed), 0.5);
}

TEST(Stream, FootprintBounded)
{
    StreamConfig cfg = seqConfig(128);
    EXPECT_EQ(Stream(cfg, 0, 0, 1).footprintBlocks(), 128u);
    cfg.kind = PatternKind::Generational;
    EXPECT_EQ(Stream(cfg, 0, 0, 1).footprintBlocks(), 128u * 1024);
}

TEST(Workload, StreamsGetDisjointAddressRegions)
{
    WorkloadProfile p;
    p.name = "t";
    p.meanGap = 0;
    p.streams = {seqConfig(1024), seqConfig(1024), seqConfig(1024)};
    SyntheticWorkload w(p);
    std::set<Addr> seen[3];
    // Identify stream by PC base (streams are 0x1000 apart).
    for (int i = 0; i < 3000; ++i) {
        const Access r = w.next();
        const std::size_t idx = (r.pc - 0x400000) / 0x1000;
        ASSERT_LT(idx, 3u);
        seen[idx].insert(r.blockAddr());
    }
    for (int a = 0; a < 3; ++a) {
        for (int b = a + 1; b < 3; ++b) {
            std::vector<Addr> overlap;
            std::set_intersection(seen[a].begin(), seen[a].end(),
                                  seen[b].begin(), seen[b].end(),
                                  std::back_inserter(overlap));
            EXPECT_TRUE(overlap.empty());
        }
    }
}

TEST(Workload, WeightsControlMixRatio)
{
    WorkloadProfile p;
    p.name = "t";
    p.meanGap = 0;
    StreamConfig heavy = seqConfig(64);
    heavy.weight = 9;
    StreamConfig light = seqConfig(64);
    light.weight = 1;
    p.streams = {heavy, light};
    SyntheticWorkload w(p);
    int heavy_count = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        heavy_count += w.next().pc < 0x401000;
    EXPECT_NEAR(static_cast<double>(heavy_count) / n, 0.9, 0.02);
}

TEST(Workload, GapMeanMatchesConfig)
{
    WorkloadProfile p;
    p.name = "t";
    p.meanGap = 5;
    p.streams = {seqConfig(64)};
    SyntheticWorkload w(p);
    double total = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        total += w.next().gap;
    EXPECT_NEAR(total / n, 5.0, 0.25);
}

TEST(Workload, ResetReproducesExactly)
{
    SyntheticWorkload w(specProfile("456.hmmer"));
    std::vector<Access> first;
    for (int i = 0; i < 200; ++i)
        first.push_back(w.next());
    w.reset();
    for (int i = 0; i < 200; ++i) {
        const Access r = w.next();
        EXPECT_EQ(r.gap, first[i].gap);
        EXPECT_EQ(r.addr, first[i].addr);
        EXPECT_EQ(r.pc, first[i].pc);
    }
}

TEST(Workload, AddressSpacesAreDisjointAcrossInstances)
{
    SyntheticWorkload a(specProfile("429.mcf"), 0);
    SyntheticWorkload b(specProfile("429.mcf"), 1);
    std::set<Addr> aa, bb;
    for (int i = 0; i < 2000; ++i) {
        aa.insert(a.next().blockAddr());
        bb.insert(b.next().blockAddr());
    }
    std::vector<Addr> overlap;
    std::set_intersection(aa.begin(), aa.end(), bb.begin(), bb.end(),
                          std::back_inserter(overlap));
    EXPECT_TRUE(overlap.empty());
}

TEST(SpecProfiles, AllBenchmarksExist)
{
    const auto &names = allSpecBenchmarks();
    EXPECT_EQ(names.size(), 29u);
    for (const auto &name : names) {
        const WorkloadProfile p = specProfile(name);
        EXPECT_EQ(p.name, name);
        EXPECT_FALSE(p.streams.empty());
    }
}

TEST(SpecProfiles, SubsetIsNineteenAndContained)
{
    const auto &subset = memoryIntensiveSubset();
    EXPECT_EQ(subset.size(), 19u);
    const auto &all = allSpecBenchmarks();
    for (const auto &name : subset)
        EXPECT_NE(std::find(all.begin(), all.end(), name), all.end());
}

TEST(SpecProfiles, MixesAreTenQuads)
{
    const auto &mixes = multicoreMixes();
    EXPECT_EQ(mixes.size(), 10u);
    for (const auto &mix : mixes) {
        EXPECT_EQ(mix.benchmarks.size(), 4u);
        for (const auto &b : mix.benchmarks)
            EXPECT_NO_FATAL_FAILURE(specProfile(b));
    }
}

TEST(Workload, DistinctInstancesUseDistinctPcSpaces)
{
    // Regression test: in multi-core runs each core models a
    // different program, so PC-indexed predictor state must not
    // alias across cores.
    SyntheticWorkload a(specProfile("462.libquantum"), 0);
    SyntheticWorkload b(specProfile("445.gobmk"), 1);
    std::set<PC> pcs_a, pcs_b;
    for (int i = 0; i < 3000; ++i) {
        pcs_a.insert(a.next().pc);
        pcs_b.insert(b.next().pc);
    }
    std::vector<PC> overlap;
    std::set_intersection(pcs_a.begin(), pcs_a.end(), pcs_b.begin(),
                          pcs_b.end(), std::back_inserter(overlap));
    EXPECT_TRUE(overlap.empty());
}

TEST(SpecProfiles, ProfilesAreDeterministicPerName)
{
    const WorkloadProfile a = specProfile("470.lbm");
    const WorkloadProfile b = specProfile("470.lbm");
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.streams.size(), b.streams.size());
    // Distinct benchmarks get distinct seeds.
    EXPECT_NE(a.seed, specProfile("429.mcf").seed);
}

} // anonymous namespace
} // namespace sdbp
