/**
 * @file
 * Tests for the compile-time hardware-budget audit
 * (`util/budget.hh`, `power/budget_audit.hh`) and the runtime
 * invariant layer (`SDBP_DCHECK`, `auditInvariants()`).
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/lru.hh"
#include "core/sdbp.hh"
#include "power/budget_audit.hh"
#include "power/storage.hh"
#include "util/budget.hh"
#include "util/rng.hh"

namespace sdbp
{
namespace
{

TEST(Budget, BitsArithmetic)
{
    constexpr budget::Bits a{8 * 1024};
    constexpr budget::Bits b{8 * 1024};
    static_assert((a + b).count() == 16 * 1024);
    static_assert((a * 3).count() == 24 * 1024);
    static_assert(a == b);
    EXPECT_DOUBLE_EQ(a.kilobytes(), 1.0);
}

TEST(Budget, WidthForValues)
{
    static_assert(budget::widthForValues(1) == 0);
    static_assert(budget::widthForValues(2) == 1);
    static_assert(budget::widthForValues(12) == 4);
    static_assert(budget::widthForValues(16) == 4);
    static_assert(budget::widthForValues(17) == 5);
    SUCCEED();
}

TEST(Budget, SaturatingCounterSpec)
{
    constexpr budget::SaturatingCounterSpec two{2};
    static_assert(two.maxValue() == 3);
    static_assert(two.bits().count() == 2);
    SUCCEED();
}

TEST(Budget, StorageModelMatchesConstexprAuditForAllShippedConfigs)
{
    const auto entries =
        StorageModel::shipped(budget_audit::llcBlocks2MB);
    constexpr auto rows = budget_audit::shippedRows();
    ASSERT_EQ(entries.size(), rows.size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
        SCOPED_TRACE(entries[i].label);
        EXPECT_TRUE(entries[i].consistent());
        EXPECT_EQ(entries[i].breakdown.totalBits(),
                  rows[i].totalBits(budget_audit::llcBlocks2MB));
    }
}

TEST(Budget, PaperDefaultAndSingleTableTotals)
{
    // The two SDBP configs the benches ship, cross-checked against
    // live predictor instances end to end.
    const SamplingDeadBlockPredictor paper{SdbpConfig::paperDefault()};
    EXPECT_EQ(paper.storageBits(),
              SdbpConfig::paperDefault().storageBits());
    EXPECT_EQ(paper.storageBits(), 38400u);
    EXPECT_EQ(paper.metadataBitsPerBlock(), 1u);

    const SamplingDeadBlockPredictor single{SdbpConfig::singleTable()};
    EXPECT_EQ(single.storageBits(),
              SdbpConfig::singleTable().storageBits());
    // One 16384-entry 2-bit bank + the unchanged sampler tag array.
    EXPECT_EQ(single.storageBits(), 16384u * 2 + 13824u);
}

TEST(Budget, StorageOfAgreesWithStorageModel)
{
    RefTracePredictor reftrace;
    const auto direct =
        storageOf(reftrace, budget_audit::llcBlocks2MB);
    const auto entries =
        StorageModel::shipped(budget_audit::llcBlocks2MB);
    EXPECT_EQ(direct.totalBits(), entries[2].breakdown.totalBits());
    EXPECT_DOUBLE_EQ(direct.totalKB(), 72.0);
}

TEST(Invariants, CleanStructuresPassAudit)
{
    SamplingDeadBlockPredictor p;
    Rng rng(42);
    for (int i = 0; i < 200000; ++i) {
        const auto addr = rng.below(1 << 20);
        const auto pc = 0x400000 + rng.below(256) * 4;
        p.onAccess(static_cast<std::uint32_t>(addr & 2047), Access::atBlock(addr, pc, 0));
    }
    p.auditInvariants();
}

TEST(Invariants, CacheAuditPassesUnderTraffic)
{
    CacheConfig cfg;
    cfg.numSets = 64;
    cfg.assoc = 8;
    Cache cache(cfg, std::make_unique<LruPolicy>(cfg.numSets,
                                                 cfg.assoc));
    Rng rng(7);
    for (std::uint64_t now = 0; now < 50000; ++now) {
        const Access a = Access::atBlock(rng.below(4096), 0x1000);
        if (!cache.access(a, now))
            cache.fill(a, now);
    }
    cache.auditInvariants();
}

#if SDBP_DCHECK_ENABLED

using InvariantsDeathTest = ::testing::Test;

TEST(InvariantsDeathTest, CorruptedLruStackFiresDcheck)
{
    Sampler sampler;
    SkewedTable table;
    for (std::uint16_t i = 0; i < 40; ++i)
        sampler.access(0, i, i, table);
    // Clone way 1's LRU position into way 0: the stack is no longer
    // a permutation of 0..assoc-1.
    sampler.mutableEntry(0, 0).lruPos = sampler.entry(0, 1).lruPos;
    EXPECT_DEATH(sampler.auditInvariants(), "SDBP_DCHECK");
}

TEST(InvariantsDeathTest, OverwidePartialTagFiresDcheck)
{
    Sampler sampler;
    SkewedTable table;
    sampler.access(0, 1, 1, table);
    // 15-bit tag field cannot hold a 16-bit value.
    sampler.mutableEntry(0, 0).tag = 0xFFFF;
    sampler.mutableEntry(0, 0).valid = true;
    EXPECT_DEATH(sampler.auditInvariants(), "SDBP_DCHECK");
}

#else

TEST(InvariantsDeathTest, DISABLED_DchecksCompiledOut) {}

#endif // SDBP_DCHECK_ENABLED

} // anonymous namespace
} // namespace sdbp
