/**
 * @file
 * Tests for dead-block-directed prefetching.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cache/dead_block_policy.hh"
#include "cache/hierarchy.hh"
#include "cache/lru.hh"
#include "cache/prefetcher.hh"
#include "core/sdbp.hh"
#include "sim/policy_factory.hh"
#include "trace/spec_profiles.hh"
#include "cpu/system.hh"

namespace sdbp
{
namespace
{

Access
demand(Addr block_addr, PC pc = 0x400000)
{
    return Access::atBlock(block_addr, pc);
}

std::unique_ptr<Cache>
lruCache(std::uint32_t sets, std::uint32_t assoc)
{
    CacheConfig cfg;
    cfg.numSets = sets;
    cfg.assoc = assoc;
    return std::make_unique<Cache>(
        cfg, std::make_unique<LruPolicy>(sets, assoc));
}

TEST(Prefetcher, DisabledByDefault)
{
    Prefetcher p;
    EXPECT_FALSE(p.enabled());
}

TEST(Prefetcher, InstallsIntoInvalidFrames)
{
    auto llc = lruCache(8, 2);
    PrefetcherConfig cfg;
    cfg.degree = 2;
    Prefetcher p(cfg);
    p.onDemandMiss(*llc, 0x10, 0x400000, 0, 0);
    EXPECT_EQ(p.stats().issued, 2u);
    EXPECT_EQ(p.stats().installed, 2u);
    EXPECT_TRUE(llc->probe(0x11));
    EXPECT_TRUE(llc->probe(0x12));
}

TEST(Prefetcher, RedundantTargetsAreDropped)
{
    auto llc = lruCache(8, 2);
    llc->access(demand(0x11), 0);
    llc->fill(demand(0x11), 0);
    PrefetcherConfig cfg;
    cfg.degree = 1;
    Prefetcher p(cfg);
    p.onDemandMiss(*llc, 0x10, 0x400000, 0, 0);
    EXPECT_EQ(p.stats().redundant, 1u);
    EXPECT_EQ(p.stats().installed, 0u);
}

TEST(Prefetcher, DeadDirectedModeRefusesToPollute)
{
    // Fill every frame of the target set with live blocks: the
    // dead-directed prefetcher must drop the prefetch.
    auto llc = lruCache(4, 2);
    for (Addr a : {0x1, 0x5}) { // set 1
        llc->access(demand(a), 0);
        llc->fill(demand(a), 0);
    }
    PrefetcherConfig cfg;
    cfg.degree = 1;
    Prefetcher p(cfg);
    p.onDemandMiss(*llc, 0x0, 0x400000, 0, 0); // prefetch 0x1... hit
    EXPECT_EQ(p.stats().redundant, 1u);
    p.onDemandMiss(*llc, 0x8, 0x400000, 0, 0); // prefetch 0x9 -> set 1
    EXPECT_EQ(p.stats().noDeadFrame, 1u);
    EXPECT_FALSE(llc->probe(0x9));
    EXPECT_TRUE(llc->probe(0x1));
    EXPECT_TRUE(llc->probe(0x5));
}

TEST(Prefetcher, PollutingModeReplacesLiveBlocks)
{
    auto llc = lruCache(4, 2);
    for (Addr a : {0x1, 0x5}) {
        llc->access(demand(a), 0);
        llc->fill(demand(a), 0);
    }
    PrefetcherConfig cfg;
    cfg.degree = 1;
    cfg.deadBlockDirected = false;
    Prefetcher p(cfg);
    p.onDemandMiss(*llc, 0x8, 0x400000, 0, 0);
    EXPECT_TRUE(llc->probe(0x9));
    EXPECT_EQ(p.stats().installed, 1u);
}

TEST(Prefetcher, InstallsIntoPredictedDeadFrames)
{
    // A DBRB-managed cache with a saturated-dead PC: the dead block
    // is sacrificed for the prefetch.
    SdbpConfig scfg = SdbpConfig::paperDefault(4);
    scfg.sampler.numSets = 1;
    scfg.sampler.assoc = 2;
    auto predictor = std::make_unique<SamplingDeadBlockPredictor>(scfg);
    auto *pred = predictor.get();
    auto policy = std::make_unique<DeadBlockPolicy>(
        std::make_unique<LruPolicy>(4, 2), std::move(predictor));
    CacheConfig ccfg;
    ccfg.numSets = 4;
    ccfg.assoc = 2;
    Cache llc(ccfg, std::move(policy));

    const PC dead_pc = 0x400abc;
    const PC live_pc = 0x500000;
    for (int i = 0; i < 3; ++i)
        pred->table().increment(pred->signature(dead_pc));

    // Fill set 1 with one live and one dead-marked block.
    llc.access(demand(0x1, live_pc), 0);
    llc.fill(demand(0x1, live_pc), 0);
    llc.access(demand(0x5, dead_pc), 1); // predicted dead on miss...
    // (bypassed: dead-on-arrival). Use a live fill then mark by hit.
    llc.fill(demand(0x5, dead_pc), 1);
    EXPECT_FALSE(llc.probe(0x5)); // bypassed as expected

    // Install it via the polluting path instead, then mark dead by
    // a touch with the dead PC.
    Access wb = demand(0x5, 0);
    wb.isWriteback = true;
    llc.access(wb, 2);
    llc.fill(wb, 2);
    llc.access(demand(0x5, dead_pc), 3); // hit -> marked dead
    // Age the dead mark past the recency grace.
    llc.access(demand(0x1, live_pc), 4);

    PrefetcherConfig cfg;
    cfg.degree = 1;
    Prefetcher p(cfg);
    p.onDemandMiss(llc, 0x8, live_pc, 0, 4); // prefetch 0x9 -> set 1
    EXPECT_TRUE(llc.probe(0x9));
    EXPECT_TRUE(llc.probe(0x1));  // live block survives
    EXPECT_FALSE(llc.probe(0x5)); // dead block sacrificed
}

TEST(Prefetcher, EndToEndOnStreamingWorkload)
{
    // Next-line prefetching on a sequential-scan benchmark turns
    // LLC misses into hits without hurting anything else.
    auto run = [](unsigned degree) {
        HierarchyConfig cfg;
        cfg.prefetch.degree = degree;
        System sys(cfg, CoreConfig{},
                   makePolicy(PolicyKind::Sampler, cfg.llc.numSets,
                              cfg.llc.assoc));
        SyntheticWorkload w(specProfile("462.libquantum"));
        std::vector<AccessGenerator *> gens = {&w};
        sys.run(gens, 100000, 300000);
        return std::pair{sys.hierarchy().llc().stats().demandMisses,
                         sys.hierarchy().prefetcher().stats()};
    };
    const auto [base_misses, base_stats] = run(0);
    const auto [pf_misses, pf_stats] = run(4);
    EXPECT_EQ(base_stats.issued, 0u);
    EXPECT_GT(pf_stats.issued, 0u);
    EXPECT_GT(pf_stats.installed, 0u);
    EXPECT_LT(pf_misses, base_misses);
}

} // anonymous namespace
} // namespace sdbp
