/**
 * @file
 * Tests for the extension policies and predictors: tree-PLRU, NRU,
 * LIP, AIP, the time-based predictor and the cache-bursts reftrace.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "cache/cache.hh"
#include "cache/dead_block_policy.hh"
#include "cache/lru.hh"
#include "cache/plru.hh"
#include "predictor/aip.hh"
#include "predictor/burst_trace.hh"
#include "predictor/time_based.hh"
#include "sim/runner.hh"

namespace sdbp
{
namespace
{

Access
demand(Addr block_addr, PC pc = 0x400000)
{
    return Access::atBlock(block_addr, pc);
}

/** Owning backing store for a SetView. */
struct FrameSet
{
    std::vector<Addr> tags;
    std::vector<std::uint8_t> state;

    explicit FrameSet(std::uint32_t assoc)
        : tags(assoc), state(assoc, SetView::kValid)
    {
        for (std::uint32_t w = 0; w < assoc; ++w)
            tags[w] = w;
    }

    SetView
    view()
    {
        return SetView(tags.data(), state.data(),
                       static_cast<std::uint32_t>(tags.size()));
    }
};

// ---- tree-PLRU ----

TEST(TreePlru, VictimComesFromTheColdSubtree)
{
    TreePlruPolicy plru(1, 4);
    FrameSet fs(4);
    const Access info = demand(0);
    // Touch both ways of the left subtree: the root points right
    // and the victim is the untouched way 2.
    plru.onAccess(0, 0, fs.view(), info);
    plru.onAccess(0, 1, fs.view(), info);
    EXPECT_EQ(plru.victim(0, fs.view(), info), 2u);
}

TEST(TreePlru, TouchedWayIsNeverTheImmediateVictim)
{
    TreePlruPolicy plru(1, 8);
    FrameSet fs(8);
    const Access info = demand(0);
    for (std::uint32_t w = 0; w < 8; ++w) {
        plru.onAccess(0, static_cast<int>(w), fs.view(), info);
        EXPECT_NE(plru.victim(0, fs.view(), info), w);
    }
}

TEST(TreePlru, ApproximatesLruOnSequentialFills)
{
    TreePlruPolicy plru(1, 4);
    FrameSet fs(4);
    const Access info = demand(0);
    // Fill ways in order 0..3; victim should be way 0 (the oldest),
    // exactly as true LRU would pick.
    for (std::uint32_t w = 0; w < 4; ++w)
        plru.onFill(0, w, fs.view(), info);
    EXPECT_EQ(plru.victim(0, fs.view(), info), 0u);
    EXPECT_EQ(plru.bitsPerSet(), 3u);
}

// ---- NRU ----

TEST(Nru, VictimIsFirstUnreferencedWay)
{
    NruPolicy nru(1, 4);
    FrameSet fs(4);
    const Access info = demand(0);
    nru.onFill(0, 0, fs.view(), info);
    nru.onFill(0, 1, fs.view(), info);
    EXPECT_EQ(nru.victim(0, fs.view(), info), 2u);
}

TEST(Nru, ReferenceBitsClearWhenAllSet)
{
    NruPolicy nru(1, 2);
    FrameSet fs(2);
    const Access info = demand(0);
    nru.onFill(0, 0, fs.view(), info);
    EXPECT_TRUE(nru.referenced(0, 0));
    nru.onFill(0, 1, fs.view(), info); // all referenced -> clear others
    EXPECT_TRUE(nru.referenced(0, 1));
    EXPECT_FALSE(nru.referenced(0, 0));
}

TEST(Nru, HitsProtectFromEviction)
{
    NruPolicy nru(1, 4);
    FrameSet fs(4);
    const Access info = demand(0);
    for (std::uint32_t w = 0; w < 3; ++w)
        nru.onFill(0, w, fs.view(), info);
    nru.onAccess(0, 1, fs.view(), info);
    EXPECT_EQ(nru.victim(0, fs.view(), info), 3u);
}

// ---- LIP via the factory ----

TEST(Lip, InsertsAtLruPosition)
{
    auto policy = makePolicy(PolicyKind::Lip, 16, 4);
    EXPECT_EQ(policy->name(), "lip");
    FrameSet fs(4);
    policy->onFill(0, 2, fs.view(), demand(0));
    // Installed at the LRU position: immediately the next victim.
    EXPECT_EQ(policy->victim(0, fs.view(), demand(1)), 2u);
}

// ---- AIP ----

TEST(Aip, DeadOnceIntervalExceedsLearnedMax)
{
    AipConfig cfg;
    cfg.llcSets = 4;
    AipPredictor p(cfg);
    const PC pc = 0x400100;
    const Addr blk = 0x40;
    // Two generations with re-touch interval ~2 set-accesses build
    // confidence.
    for (int gen = 0; gen < 2; ++gen) {
        p.onAccess(0, Access::atBlock(blk, pc));
        p.onFill(0, Access::atBlock(blk, pc));
        p.onAccess(0, Access::atBlock(0x80, pc)); // interval filler
        p.onAccess(0, Access::atBlock(blk, pc));  // re-touch at interval 2
        p.onEvict(0, Access::atBlock(blk));
    }
    // Third generation: alive within the learned interval...
    p.onAccess(0, Access::atBlock(blk, pc));
    p.onFill(0, Access::atBlock(blk, pc));
    p.onAccess(0, Access::atBlock(0x80, pc));
    EXPECT_FALSE(p.isDeadNow(0, blk));
    // ...dead once well past it.
    for (int i = 0; i < 8; ++i)
        p.onAccess(0, Access::atBlock(0x80 + 64 * i, pc));
    EXPECT_TRUE(p.isDeadNow(0, blk));
    EXPECT_NE(p.livenessProbe(), nullptr);
}

TEST(Aip, NoConfidenceNoPrediction)
{
    AipConfig cfg;
    cfg.llcSets = 4;
    AipPredictor p(cfg);
    p.onAccess(0, Access::atBlock(0x40, 0x400100));
    p.onFill(0, Access::atBlock(0x40, 0x400100));
    for (int i = 0; i < 50; ++i)
        p.onAccess(0, Access::atBlock(0x80 + 64 * i, 0x400200));
    EXPECT_FALSE(p.isDeadNow(0, 0x40)); // never-trained entry
}

TEST(Aip, DeadOnArrivalForSingleTouchGenerations)
{
    AipConfig cfg;
    cfg.llcSets = 4;
    AipPredictor p(cfg);
    const PC pc = 0x400300;
    const Addr blk = 0x99;
    for (int gen = 0; gen < 2; ++gen) {
        p.onAccess(1, Access::atBlock(blk, pc));
        p.onFill(1, Access::atBlock(blk, pc));
        p.onEvict(1, Access::atBlock(blk));
    }
    EXPECT_TRUE(p.onAccess(1, Access::atBlock(blk, pc)));
}

// ---- time-based ----

TEST(TimeBased, LearnsLiveTimeAndExpiresBlocks)
{
    TimeBasedConfig cfg;
    cfg.llcSets = 4;
    TimeBasedPredictor p(cfg);
    const PC pc = 0x400400;
    const Addr blk = 0x40;
    // One generation: live for ~4 set-accesses.
    p.onAccess(0, Access::atBlock(blk, pc));
    p.onFill(0, Access::atBlock(blk, pc));
    for (int i = 0; i < 4; ++i)
        p.onAccess(0, Access::atBlock(0x1000 + 64 * i, 0x400500));
    p.onAccess(0, Access::atBlock(blk, pc)); // last touch at +5
    p.onEvict(0, Access::atBlock(blk));
    EXPECT_GT(p.learnedLiveTime(pc), 0u);

    // New generation: alive shortly after a touch, dead after more
    // than 2x the learned live time of idleness.
    p.onAccess(0, Access::atBlock(blk, pc));
    p.onFill(0, Access::atBlock(blk, pc));
    EXPECT_FALSE(p.isDeadNow(0, blk));
    for (int i = 0; i < 2 * 5 + 3; ++i)
        p.onAccess(0, Access::atBlock(0x2000 + 64 * i, 0x400500));
    EXPECT_TRUE(p.isDeadNow(0, blk));
}

TEST(TimeBased, TicksArePerSet)
{
    TimeBasedConfig cfg;
    cfg.llcSets = 4;
    TimeBasedPredictor p(cfg);
    const PC pc = 0x400600;
    p.onAccess(1, Access::atBlock(0x41, pc));
    p.onFill(1, Access::atBlock(0x41, pc));
    p.onAccess(1, Access::atBlock(0x81, 0x400700));
    p.onAccess(1, Access::atBlock(0x41, pc));
    p.onEvict(1, Access::atBlock(0x41));
    // Heavy traffic in ANOTHER set must not expire set-1 blocks.
    p.onAccess(1, Access::atBlock(0x41, pc));
    p.onFill(1, Access::atBlock(0x41, pc));
    for (int i = 0; i < 100; ++i)
        p.onAccess(2, Access::atBlock(0x2000 + 64 * i, 0x400700));
    EXPECT_FALSE(p.isDeadNow(1, 0x41));
}

// ---- burst trace ----

TEST(BurstTrace, ConsecutiveAccessesFoldIntoOneBurst)
{
    BurstTraceConfig cfg;
    cfg.llcSets = 4;
    BurstTracePredictor p(cfg);
    p.onAccess(0, Access::atBlock(0x40, 0xA0));
    p.onFill(0, Access::atBlock(0x40, 0xA0));
    p.onAccess(0, Access::atBlock(0x40, 0xB0)); // same burst
    p.onAccess(0, Access::atBlock(0x40, 0xC0)); // same burst
    EXPECT_EQ(p.filteredAccesses(), 2u);
    EXPECT_EQ(p.bursts(), 0u);
    p.onAccess(0, Access::atBlock(0x80, 0xA0)); // different block: boundary later
    p.onFill(0, Access::atBlock(0x80, 0xA0));
    p.onAccess(0, Access::atBlock(0x40, 0xD0)); // burst boundary for 0x40
    EXPECT_EQ(p.bursts(), 1u);
}

TEST(BurstTrace, LearnsDeathTracesLikeReftrace)
{
    BurstTraceConfig cfg;
    cfg.llcSets = 4;
    BurstTracePredictor p(cfg);
    for (int gen = 0; gen < 3; ++gen) {
        const Addr blk = 0x100 + gen;
        p.onAccess(0, Access::atBlock(blk, 0xA0));
        p.onFill(0, Access::atBlock(blk, 0xA0));
        p.onEvict(0, Access::atBlock(blk));
    }
    EXPECT_TRUE(p.onAccess(0, Access::atBlock(0x900, 0xA0)));
}

// ---- integration: extension policies run end to end ----

TEST(Extensions, AllNewPolicyKindsSimulate)
{
    RunConfig cfg = RunConfig::singleCore();
    cfg.warmupInstructions = 30000;
    cfg.measureInstructions = 60000;
    for (PolicyKind kind :
         {PolicyKind::TreePlru, PolicyKind::Nru, PolicyKind::Lip,
          PolicyKind::Aip, PolicyKind::TimeDbp, PolicyKind::BurstDbp,
          PolicyKind::SamplingCounting}) {
        const RunResult r =
            runSingleCore("445.gobmk", kind, cfg);
        EXPECT_GT(r.ipc, 0.0) << policyName(kind);
        EXPECT_LE(r.ipc, 4.0) << policyName(kind);
    }
}

TEST(Extensions, PlruAndNruTrackLruOnFriendlyWorkloads)
{
    RunConfig cfg = RunConfig::singleCore();
    cfg.warmupInstructions = 100000;
    cfg.measureInstructions = 200000;
    const auto lru = runSingleCore("444.namd", PolicyKind::Lru, cfg);
    const auto plru =
        runSingleCore("444.namd", PolicyKind::TreePlru, cfg);
    const auto nru = runSingleCore("444.namd", PolicyKind::Nru, cfg);
    // On an LLC-friendly workload the cheap approximations stay
    // within a few percent of true LRU.
    EXPECT_LT(plru.llcMisses,
              lru.llcMisses + lru.llcMisses / 5 + 100);
    EXPECT_LT(nru.llcMisses, lru.llcMisses + lru.llcMisses / 5 + 100);
}

} // anonymous namespace
} // namespace sdbp
