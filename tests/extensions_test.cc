/**
 * @file
 * Tests for the extension policies and predictors: tree-PLRU, NRU,
 * LIP, AIP, the time-based predictor and the cache-bursts reftrace.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "cache/cache.hh"
#include "cache/dead_block_policy.hh"
#include "cache/lru.hh"
#include "cache/plru.hh"
#include "predictor/aip.hh"
#include "predictor/burst_trace.hh"
#include "predictor/time_based.hh"
#include "sim/runner.hh"

namespace sdbp
{
namespace
{

AccessInfo
demand(Addr block_addr, PC pc = 0x400000)
{
    AccessInfo info;
    info.pc = pc;
    info.blockAddr = block_addr;
    return info;
}

std::vector<CacheBlock>
validBlocks(std::uint32_t assoc)
{
    std::vector<CacheBlock> blocks(assoc);
    for (std::uint32_t w = 0; w < assoc; ++w) {
        blocks[w].valid = true;
        blocks[w].blockAddr = w;
    }
    return blocks;
}

// ---- tree-PLRU ----

TEST(TreePlru, VictimComesFromTheColdSubtree)
{
    TreePlruPolicy plru(1, 4);
    const auto blocks = validBlocks(4);
    const AccessInfo info = demand(0);
    // Touch both ways of the left subtree: the root points right
    // and the victim is the untouched way 2.
    plru.onAccess(0, 0, nullptr, info);
    plru.onAccess(0, 1, nullptr, info);
    EXPECT_EQ(plru.victim(0, {blocks.data(), 4}, info), 2u);
}

TEST(TreePlru, TouchedWayIsNeverTheImmediateVictim)
{
    TreePlruPolicy plru(1, 8);
    const auto blocks = validBlocks(8);
    const AccessInfo info = demand(0);
    for (std::uint32_t w = 0; w < 8; ++w) {
        plru.onAccess(0, static_cast<int>(w), nullptr, info);
        EXPECT_NE(plru.victim(0, {blocks.data(), 8}, info), w);
    }
}

TEST(TreePlru, ApproximatesLruOnSequentialFills)
{
    TreePlruPolicy plru(1, 4);
    CacheBlock blk;
    const AccessInfo info = demand(0);
    // Fill ways in order 0..3; victim should be way 0 (the oldest),
    // exactly as true LRU would pick.
    for (std::uint32_t w = 0; w < 4; ++w)
        plru.onFill(0, w, blk, info);
    const auto blocks = validBlocks(4);
    EXPECT_EQ(plru.victim(0, {blocks.data(), 4}, info), 0u);
    EXPECT_EQ(plru.bitsPerSet(), 3u);
}

// ---- NRU ----

TEST(Nru, VictimIsFirstUnreferencedWay)
{
    NruPolicy nru(1, 4);
    CacheBlock blk;
    const AccessInfo info = demand(0);
    nru.onFill(0, 0, blk, info);
    nru.onFill(0, 1, blk, info);
    const auto blocks = validBlocks(4);
    EXPECT_EQ(nru.victim(0, {blocks.data(), 4}, info), 2u);
}

TEST(Nru, ReferenceBitsClearWhenAllSet)
{
    NruPolicy nru(1, 2);
    CacheBlock blk;
    const AccessInfo info = demand(0);
    nru.onFill(0, 0, blk, info);
    EXPECT_TRUE(nru.referenced(0, 0));
    nru.onFill(0, 1, blk, info); // all referenced -> clear others
    EXPECT_TRUE(nru.referenced(0, 1));
    EXPECT_FALSE(nru.referenced(0, 0));
}

TEST(Nru, HitsProtectFromEviction)
{
    NruPolicy nru(1, 4);
    CacheBlock blk;
    const AccessInfo info = demand(0);
    for (std::uint32_t w = 0; w < 3; ++w)
        nru.onFill(0, w, blk, info);
    nru.onAccess(0, 1, &blk, info);
    const auto blocks = validBlocks(4);
    EXPECT_EQ(nru.victim(0, {blocks.data(), 4}, info), 3u);
}

// ---- LIP via the factory ----

TEST(Lip, InsertsAtLruPosition)
{
    auto policy = makePolicy(PolicyKind::Lip, 16, 4);
    EXPECT_EQ(policy->name(), "lip");
    CacheBlock blk;
    policy->onFill(0, 2, blk, demand(0));
    // Installed at the LRU position: immediately the next victim.
    const auto blocks = validBlocks(4);
    EXPECT_EQ(policy->victim(0, {blocks.data(), 4}, demand(1)), 2u);
}

// ---- AIP ----

TEST(Aip, DeadOnceIntervalExceedsLearnedMax)
{
    AipConfig cfg;
    cfg.llcSets = 4;
    AipPredictor p(cfg);
    const PC pc = 0x400100;
    const Addr blk = 0x40;
    // Two generations with re-touch interval ~2 set-accesses build
    // confidence.
    for (int gen = 0; gen < 2; ++gen) {
        p.onAccess(0, blk, pc, 0);
        p.onFill(0, blk, pc);
        p.onAccess(0, 0x80, pc, 0); // interval filler
        p.onAccess(0, blk, pc, 0);  // re-touch at interval 2
        p.onEvict(0, blk);
    }
    // Third generation: alive within the learned interval...
    p.onAccess(0, blk, pc, 0);
    p.onFill(0, blk, pc);
    p.onAccess(0, 0x80, pc, 0);
    EXPECT_FALSE(p.isDeadNow(0, blk));
    // ...dead once well past it.
    for (int i = 0; i < 8; ++i)
        p.onAccess(0, 0x80 + 64 * i, pc, 0);
    EXPECT_TRUE(p.isDeadNow(0, blk));
    EXPECT_TRUE(p.hasLiveness());
}

TEST(Aip, NoConfidenceNoPrediction)
{
    AipConfig cfg;
    cfg.llcSets = 4;
    AipPredictor p(cfg);
    p.onAccess(0, 0x40, 0x400100, 0);
    p.onFill(0, 0x40, 0x400100);
    for (int i = 0; i < 50; ++i)
        p.onAccess(0, 0x80 + 64 * i, 0x400200, 0);
    EXPECT_FALSE(p.isDeadNow(0, 0x40)); // never-trained entry
}

TEST(Aip, DeadOnArrivalForSingleTouchGenerations)
{
    AipConfig cfg;
    cfg.llcSets = 4;
    AipPredictor p(cfg);
    const PC pc = 0x400300;
    const Addr blk = 0x99;
    for (int gen = 0; gen < 2; ++gen) {
        p.onAccess(1, blk, pc, 0);
        p.onFill(1, blk, pc);
        p.onEvict(1, blk);
    }
    EXPECT_TRUE(p.onAccess(1, blk, pc, 0));
}

// ---- time-based ----

TEST(TimeBased, LearnsLiveTimeAndExpiresBlocks)
{
    TimeBasedConfig cfg;
    cfg.llcSets = 4;
    TimeBasedPredictor p(cfg);
    const PC pc = 0x400400;
    const Addr blk = 0x40;
    // One generation: live for ~4 set-accesses.
    p.onAccess(0, blk, pc, 0);
    p.onFill(0, blk, pc);
    for (int i = 0; i < 4; ++i)
        p.onAccess(0, 0x1000 + 64 * i, 0x400500, 0);
    p.onAccess(0, blk, pc, 0); // last touch at +5
    p.onEvict(0, blk);
    EXPECT_GT(p.learnedLiveTime(pc), 0u);

    // New generation: alive shortly after a touch, dead after more
    // than 2x the learned live time of idleness.
    p.onAccess(0, blk, pc, 0);
    p.onFill(0, blk, pc);
    EXPECT_FALSE(p.isDeadNow(0, blk));
    for (int i = 0; i < 2 * 5 + 3; ++i)
        p.onAccess(0, 0x2000 + 64 * i, 0x400500, 0);
    EXPECT_TRUE(p.isDeadNow(0, blk));
}

TEST(TimeBased, TicksArePerSet)
{
    TimeBasedConfig cfg;
    cfg.llcSets = 4;
    TimeBasedPredictor p(cfg);
    const PC pc = 0x400600;
    p.onAccess(1, 0x41, pc, 0);
    p.onFill(1, 0x41, pc);
    p.onAccess(1, 0x81, 0x400700, 0);
    p.onAccess(1, 0x41, pc, 0);
    p.onEvict(1, 0x41);
    // Heavy traffic in ANOTHER set must not expire set-1 blocks.
    p.onAccess(1, 0x41, pc, 0);
    p.onFill(1, 0x41, pc);
    for (int i = 0; i < 100; ++i)
        p.onAccess(2, 0x2000 + 64 * i, 0x400700, 0);
    EXPECT_FALSE(p.isDeadNow(1, 0x41));
}

// ---- burst trace ----

TEST(BurstTrace, ConsecutiveAccessesFoldIntoOneBurst)
{
    BurstTraceConfig cfg;
    cfg.llcSets = 4;
    BurstTracePredictor p(cfg);
    p.onAccess(0, 0x40, 0xA0, 0);
    p.onFill(0, 0x40, 0xA0);
    p.onAccess(0, 0x40, 0xB0, 0); // same burst
    p.onAccess(0, 0x40, 0xC0, 0); // same burst
    EXPECT_EQ(p.filteredAccesses(), 2u);
    EXPECT_EQ(p.bursts(), 0u);
    p.onAccess(0, 0x80, 0xA0, 0); // different block: boundary later
    p.onFill(0, 0x80, 0xA0);
    p.onAccess(0, 0x40, 0xD0, 0); // burst boundary for 0x40
    EXPECT_EQ(p.bursts(), 1u);
}

TEST(BurstTrace, LearnsDeathTracesLikeReftrace)
{
    BurstTraceConfig cfg;
    cfg.llcSets = 4;
    BurstTracePredictor p(cfg);
    for (int gen = 0; gen < 3; ++gen) {
        const Addr blk = 0x100 + gen;
        p.onAccess(0, blk, 0xA0, 0);
        p.onFill(0, blk, 0xA0);
        p.onEvict(0, blk);
    }
    EXPECT_TRUE(p.onAccess(0, 0x900, 0xA0, 0));
}

// ---- integration: extension policies run end to end ----

TEST(Extensions, AllNewPolicyKindsSimulate)
{
    RunConfig cfg = RunConfig::singleCore();
    cfg.warmupInstructions = 30000;
    cfg.measureInstructions = 60000;
    for (PolicyKind kind :
         {PolicyKind::TreePlru, PolicyKind::Nru, PolicyKind::Lip,
          PolicyKind::Aip, PolicyKind::TimeDbp, PolicyKind::BurstDbp,
          PolicyKind::SamplingCounting}) {
        const RunResult r =
            runSingleCore("445.gobmk", kind, cfg);
        EXPECT_GT(r.ipc, 0.0) << policyName(kind);
        EXPECT_LE(r.ipc, 4.0) << policyName(kind);
    }
}

TEST(Extensions, PlruAndNruTrackLruOnFriendlyWorkloads)
{
    RunConfig cfg = RunConfig::singleCore();
    cfg.warmupInstructions = 100000;
    cfg.measureInstructions = 200000;
    const auto lru = runSingleCore("444.namd", PolicyKind::Lru, cfg);
    const auto plru =
        runSingleCore("444.namd", PolicyKind::TreePlru, cfg);
    const auto nru = runSingleCore("444.namd", PolicyKind::Nru, cfg);
    // On an LLC-friendly workload the cheap approximations stay
    // within a few percent of true LRU.
    EXPECT_LT(plru.llcMisses,
              lru.llcMisses + lru.llcMisses / 5 + 100);
    EXPECT_LT(nru.llcMisses, lru.llcMisses + lru.llcMisses / 5 + 100);
}

} // anonymous namespace
} // namespace sdbp
