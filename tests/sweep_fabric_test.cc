/**
 * @file
 * Tests for the crash-isolated multi-process sweep fabric
 * (DESIGN.md §16): worker-mode grids merge bit-identically to
 * serial runs, deterministic chaos injection (abort / segv / exit1 /
 * hang) is charged only to the claimed cell, the coordinator's hard
 * timeout SIGKILLs wedged workers, stale leases are reclaimed, and
 * schema-v1 manifests stay readable.
 *
 * This binary has a custom main(): sweep::maybeWorkerMain must run
 * before InitGoogleTest so the test binary itself can host worker
 * subprocesses — the same contract every bench binary follows.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "sim/runner.hh"
#include "sim/sweep.hh"
#include "sim/sweep_manifest.hh"
#include "sim/worker.hh"
#include "trace/spec_profiles.hh"
#include "util/file.hh"

namespace sdbp
{
namespace
{

RunConfig
tinyConfig()
{
    RunConfig cfg = RunConfig::singleCore();
    cfg.warmupInstructions = 20000;
    cfg.measureInstructions = 100000;
    return cfg;
}

std::vector<std::string>
twoBenchmarks()
{
    const auto &subset = memoryIntensiveSubset();
    return {subset[0], subset[1]};
}

/** Fresh manifest path per test so checkpoints never collide. */
std::string
manifestPath(const std::string &test)
{
    const std::string path =
        testing::TempDir() + "sdbp_fabric_" + test + ".manifest.json";
    std::remove(path.c_str());
    std::remove((path + ".lock").c_str());
    return path;
}

/** RAII environment variable, restored to unset on scope exit. */
class EnvGuard
{
  public:
    EnvGuard(const char *name, const std::string &value) : name_(name)
    {
        ::setenv(name, value.c_str(), 1);
    }
    ~EnvGuard() { ::unsetenv(name_); }

  private:
    const char *name_;
};

/** Every scalar a checkpoint carries must round-trip bit-exactly. */
void
expectSameResult(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.benchmark, b.benchmark);
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.mpki, b.mpki);
    EXPECT_EQ(a.llcAccesses, b.llcAccesses);
    EXPECT_EQ(a.llcMisses, b.llcMisses);
    EXPECT_EQ(a.llcBypasses, b.llcBypasses);
    EXPECT_EQ(a.llcEfficiency, b.llcEfficiency);
    EXPECT_EQ(a.hasDbrb, b.hasDbrb);
    EXPECT_EQ(a.dbrb.predictions, b.dbrb.predictions);
    EXPECT_EQ(a.dbrb.positives, b.dbrb.positives);
    EXPECT_EQ(a.dbrb.falsePositiveHits, b.dbrb.falsePositiveHits);
    EXPECT_EQ(a.dbrb.deadEvictions, b.dbrb.deadEvictions);
    EXPECT_EQ(a.dbrb.bypasses, b.dbrb.bypasses);
    EXPECT_EQ(a.faultsInjected, b.faultsInjected);
    // wallSeconds is timing, not physics: deliberately not compared.
}

TEST(SweepFabric, BinaryIsWorkerCapable)
{
    // main() below calls maybeWorkerMain before anything else; the
    // coordinator refuses to spawn from binaries that did not.
    EXPECT_TRUE(sweep::workerCapable());
    EXPECT_FALSE(sweep::inWorkerProcess());
}

TEST(SweepFabric, ConfigJsonRoundTrip)
{
    RunConfig cfg = RunConfig::quadCore();
    cfg.warmupInstructions = 1234;
    cfg.measureInstructions = 56789;
    cfg.recordLlcTrace = true;
    cfg.trackEfficiency = true;
    cfg.forceVirtualPath = true;
    cfg.hierarchy.llc.numSets = 1024;
    cfg.hierarchy.llc.assoc = 8;
    cfg.hierarchy.memLatency = 321;
    cfg.hierarchy.memServiceInterval = 7;
    cfg.hierarchy.prefetch.degree = 2;
    cfg.policy.seed = 0x1234;
    cfg.policy.dbrb.fault.faultsPerMillion = 42;
    cfg.policy.dbrb.fault.seed = 99;
    cfg.obs.collect = true;
    cfg.obs.intervalInstructions = 5000;
    cfg.obs.statsJsonPath = "stats.json";

    const RunConfig back =
        sweep::runConfigFromJson(sweep::runConfigToJson(cfg));
    EXPECT_EQ(back.warmupInstructions, cfg.warmupInstructions);
    EXPECT_EQ(back.measureInstructions, cfg.measureInstructions);
    EXPECT_EQ(back.recordLlcTrace, cfg.recordLlcTrace);
    EXPECT_EQ(back.trackEfficiency, cfg.trackEfficiency);
    EXPECT_EQ(back.forceVirtualPath, cfg.forceVirtualPath);
    EXPECT_EQ(back.hierarchy.llc.numSets, cfg.hierarchy.llc.numSets);
    EXPECT_EQ(back.hierarchy.llc.assoc, cfg.hierarchy.llc.assoc);
    EXPECT_EQ(back.hierarchy.memLatency, cfg.hierarchy.memLatency);
    EXPECT_EQ(back.hierarchy.memServiceInterval,
              cfg.hierarchy.memServiceInterval);
    EXPECT_EQ(back.hierarchy.numCores, cfg.hierarchy.numCores);
    EXPECT_EQ(back.hierarchy.prefetch.degree,
              cfg.hierarchy.prefetch.degree);
    EXPECT_EQ(back.policy.seed, cfg.policy.seed);
    EXPECT_EQ(back.policy.dbrb.fault.faultsPerMillion,
              cfg.policy.dbrb.fault.faultsPerMillion);
    EXPECT_EQ(back.policy.dbrb.fault.seed, cfg.policy.dbrb.fault.seed);
    EXPECT_EQ(back.obs.collect, cfg.obs.collect);
    EXPECT_EQ(back.obs.intervalInstructions,
              cfg.obs.intervalInstructions);
    EXPECT_EQ(back.obs.statsJsonPath, cfg.obs.statsJsonPath);
}

TEST(SweepFabric, ChaosSpecParsing)
{
    EXPECT_FALSE(sweep::chaosSpec().enabled);
    const EnvGuard guard("SDBP_TEST_CRASH_CELL", "3:segv");
    const sweep::ChaosSpec spec = sweep::chaosSpec();
    EXPECT_TRUE(spec.enabled);
    EXPECT_EQ(spec.index, 3u);
    EXPECT_EQ(spec.mode, "segv");
}

TEST(SweepFabricDeathTest, MalformedChaosSpecIsFatal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    {
        const EnvGuard guard("SDBP_TEST_CRASH_CELL", "nonsense");
        EXPECT_EXIT(sweep::chaosSpec(), testing::ExitedWithCode(1),
                    "SDBP_TEST_CRASH_CELL");
    }
    {
        const EnvGuard guard("SDBP_TEST_CRASH_CELL", "2:explode");
        EXPECT_EXIT(sweep::chaosSpec(), testing::ExitedWithCode(1),
                    "SDBP_TEST_CRASH_CELL");
    }
}

TEST(SweepFabric, WorkersMatchSerialBitIdentical)
{
    const RunConfig cfg = tinyConfig();
    const auto benchmarks = twoBenchmarks();
    const std::vector<PolicyKind> policies = {PolicyKind::Lru,
                                              PolicyKind::Sampler};

    sweep::SweepOptions serial_opts;
    serial_opts.jobs = 1;
    const sweep::Grid serial =
        sweep::runGrid(benchmarks, policies, cfg, serial_opts);
    ASSERT_TRUE(serial.ok());

    sweep::SweepOptions opts;
    opts.workers = 2;
    opts.manifestPath = manifestPath("bit_identical");
    const sweep::Grid fabric =
        sweep::runGrid(benchmarks, policies, cfg, opts);
    ASSERT_TRUE(fabric.ok());
    EXPECT_EQ(fabric.jobs, 2u);

    // Cells are deterministic, so the merge must reproduce the
    // serial grid no matter which worker ran which cell.
    ASSERT_EQ(fabric.cells.size(), serial.cells.size());
    for (std::size_t b = 0; b < benchmarks.size(); ++b)
        for (std::size_t p = 0; p < policies.size(); ++p)
            expectSameResult(fabric.at(b, p), serial.at(b, p));

    std::remove(opts.manifestPath.c_str());
    std::remove((opts.manifestPath + ".lock").c_str());
}

struct ChaosCase
{
    const char *mode;
    bool crashed;
    int signal;
};

class SweepFabricChaos : public testing::TestWithParam<ChaosCase>
{
};

TEST_P(SweepFabricChaos, CrashedCellIsIsolated)
{
    const ChaosCase cc = GetParam();
    const RunConfig cfg = tinyConfig();
    const auto benchmarks = twoBenchmarks();
    const std::vector<PolicyKind> policies = {PolicyKind::Lru,
                                              PolicyKind::Sampler};
    const std::string path =
        manifestPath(std::string("chaos_") + cc.mode);

    {
        // Kill the worker claiming cell 2 (row-major: bench 1, LRU).
        const EnvGuard chaos("SDBP_TEST_CRASH_CELL",
                             std::string("2:") + cc.mode);
        sweep::SweepOptions opts;
        opts.workers = 2;
        opts.manifestPath = path;
        const sweep::Grid grid =
            sweep::runGrid(benchmarks, policies, cfg, opts);

        ASSERT_EQ(grid.errors.size(), 1u);
        const sweep::CellError &err = grid.errors.front();
        EXPECT_EQ(err.index, 2u);
        EXPECT_EQ(err.run, benchmarks[1]);
        EXPECT_EQ(err.policy, policyName(PolicyKind::Lru));
        EXPECT_EQ(err.crashed, cc.crashed);
        EXPECT_EQ(err.signal, cc.signal);
        EXPECT_FALSE(err.timedOut);
        EXPECT_EQ(err.attempts, 1u);
        EXPECT_EQ(err.leaseGeneration, 1u);

        // Only the chaos cell is lost; its three neighbors carry
        // real metrics despite two dead worker processes.
        EXPECT_GT(grid.at(0, 0).cycles, 0u);
        EXPECT_GT(grid.at(0, 1).cycles, 0u);
        EXPECT_EQ(grid.at(1, 0).cycles, 0u);
        EXPECT_GT(grid.at(1, 1).cycles, 0u);
    }

    // With the chaos hook cleared, a resume re-runs exactly the
    // crashed cell and completes the grid.
    sweep::SweepOptions opts;
    opts.workers = 2;
    opts.manifestPath = path;
    opts.resume = true;
    const sweep::Grid resumed =
        sweep::runGrid(benchmarks, policies, cfg, opts);
    EXPECT_TRUE(resumed.ok());
    EXPECT_EQ(resumed.resumed, 3u);
    EXPECT_GT(resumed.at(1, 0).cycles, 0u);

    std::remove(path.c_str());
    std::remove((path + ".lock").c_str());
}

INSTANTIATE_TEST_SUITE_P(
    Modes, SweepFabricChaos,
    testing::Values(ChaosCase{"abort", true, SIGABRT},
                    ChaosCase{"segv", true, SIGSEGV},
                    ChaosCase{"exit1", true, 0}),
    [](const testing::TestParamInfo<ChaosCase> &info) {
        return info.param.mode;
    });

TEST(SweepFabric, CrashedCellRetriesOnFreshWorker)
{
    const RunConfig cfg = tinyConfig();
    const std::vector<std::string> benchmarks = {twoBenchmarks()[0]};
    const std::vector<PolicyKind> policies = {PolicyKind::Lru};
    const std::string path = manifestPath("crash_retry");

    // The chaos env is inherited by every replacement worker, so the
    // cell crashes on each of its 1 + retries lease generations.
    const EnvGuard chaos("SDBP_TEST_CRASH_CELL", "0:abort");
    sweep::SweepOptions opts;
    opts.workers = 1;
    opts.retries = 1;
    opts.manifestPath = path;
    const sweep::Grid grid =
        sweep::runGrid(benchmarks, policies, cfg, opts);

    ASSERT_EQ(grid.errors.size(), 1u);
    EXPECT_EQ(grid.errors.front().attempts, 2u);
    EXPECT_EQ(grid.errors.front().leaseGeneration, 2u);
    EXPECT_TRUE(grid.errors.front().crashed);
    std::remove(path.c_str());
    std::remove((path + ".lock").c_str());
}

TEST(SweepFabric, HangCellKilledByHardTimeout)
{
    const RunConfig cfg = tinyConfig();
    const std::vector<std::string> benchmarks = twoBenchmarks();
    const std::vector<PolicyKind> policies = {PolicyKind::Lru};
    const std::string path = manifestPath("hang");

    // A hang-mode worker heartbeats forever without progressing, so
    // neither in-band failure nor stale-lease reclamation can end
    // it: only the coordinator's hard timeout (cooperative deadline
    // plus grace) does, via SIGKILL.
    const EnvGuard chaos("SDBP_TEST_CRASH_CELL", "0:hang");
    const EnvGuard timeout("SDBP_CELL_TIMEOUT", "1");
    sweep::SweepOptions opts;
    opts.workers = 2;
    opts.manifestPath = path;
    const sweep::Grid grid =
        sweep::runGrid(benchmarks, policies, cfg, opts);

    ASSERT_EQ(grid.errors.size(), 1u);
    const sweep::CellError &err = grid.errors.front();
    EXPECT_EQ(err.index, 0u);
    EXPECT_TRUE(err.crashed);
    EXPECT_TRUE(err.timedOut);
    EXPECT_EQ(err.signal, SIGKILL);
    // The sibling worker finished the healthy cell meanwhile.
    EXPECT_GT(grid.at(1, 0).cycles, 0u);
    std::remove(path.c_str());
    std::remove((path + ".lock").c_str());
}

TEST(SweepFabric, StaleLeaseIsReclaimed)
{
    const std::string path = manifestPath("stale_lease");
    sweep::SweepManifest m(path, "grid", {"a", "b"}, {"LRU"}, 1000,
                           2000);

    const std::uint64_t ttl = 5000;
    const auto first = m.tryClaim(111, 1000, ttl);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->index, 0u);
    EXPECT_EQ(first->generation, 1u);

    // A live (fresh-heartbeat) lease is not claimable: the second
    // claimer gets the other cell, the third gets nothing.
    const auto second = m.tryClaim(222, 2000, ttl);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->index, 1u);
    EXPECT_FALSE(m.tryClaim(333, 3000, ttl).has_value());

    // Heartbeats hold the lease past its original TTL...
    m.heartbeat(0, 111, first->generation, 4000);
    EXPECT_FALSE(m.tryClaim(333, 6500, ttl).has_value());

    // ...but once the owner goes silent past the TTL, the cell is
    // re-farmed under the next generation.
    const auto reclaimed = m.tryClaim(333, 9500, ttl);
    ASSERT_TRUE(reclaimed.has_value());
    EXPECT_EQ(reclaimed->index, 0u);
    EXPECT_EQ(reclaimed->generation, 2u);

    // A completion from the evicted owner's stale (pid, generation)
    // no longer lands.
    obs::JsonValue metrics = obs::JsonValue::object();
    metrics.set("mpki", 1.0);
    m.completeClaimed(0, 111, first->generation, metrics, 1000, 9600);
    EXPECT_FALSE(m.isCompleted(0));
    m.completeClaimed(0, 333, reclaimed->generation, metrics, 9500,
                      9700);
    EXPECT_TRUE(m.isCompleted(0));
    std::remove(path.c_str());
    std::remove((path + ".lock").c_str());
}

TEST(SweepFabric, SchemaV1ManifestStillReadable)
{
    const std::string path = manifestPath("v1_compat");
    const std::string v1 = R"({
  "schema": 1,
  "kind": "grid",
  "fingerprint": {
    "runs": ["a", "b"],
    "policies": ["LRU"],
    "warmup_instructions": 1000,
    "measure_instructions": 2000
  },
  "cells": [
    {"run": "a", "policy": "LRU", "status": "completed",
     "metrics": {"mpki": 3.5}},
    {"run": "b", "policy": "LRU", "status": "pending"}
  ]
})";
    ASSERT_TRUE(util::atomicWriteFile(path, v1));

    sweep::SweepManifest m(path, "grid", {"a", "b"}, {"LRU"}, 1000,
                           2000);
    EXPECT_EQ(m.loadCompleted(), 1u);
    EXPECT_TRUE(m.isCompleted(0));
    EXPECT_FALSE(m.isCompleted(1));
    const obs::JsonValue *mpki = m.completedMetrics(0).find("mpki");
    ASSERT_NE(mpki, nullptr);
    EXPECT_EQ(mpki->asNumber(), 3.5);

    // The first write upgrades the file to the current schema
    // without disturbing the restored state.
    m.flush();
    bool ok = false;
    const auto doc =
        obs::JsonValue::parse(util::readFile(path, &ok), nullptr);
    ASSERT_TRUE(ok && doc.has_value());
    EXPECT_EQ(doc->find("schema")->asUInt(),
              sweep::SweepManifest::kSchemaVersion);
    sweep::SweepManifest again(path, "grid", {"a", "b"}, {"LRU"},
                               1000, 2000);
    EXPECT_EQ(again.loadCompleted(), 1u);
    std::remove(path.c_str());
    std::remove((path + ".lock").c_str());
}

TEST(SweepFabric, FallsBackInProcessWithoutManifest)
{
    const RunConfig cfg = tinyConfig();
    const std::vector<std::string> benchmarks = {twoBenchmarks()[0]};
    const std::vector<PolicyKind> policies = {PolicyKind::Lru};

    // Workers need the manifest as coordination substrate; without
    // one the sweep must still complete — in-process, with a warning.
    sweep::SweepOptions opts;
    opts.workers = 2;
    opts.jobs = 1;
    const sweep::Grid grid =
        sweep::runGrid(benchmarks, policies, cfg, opts);
    EXPECT_TRUE(grid.ok());
    EXPECT_GT(grid.at(0, 0).cycles, 0u);
}

TEST(SweepFabric, FallsBackInProcessForArtifactGrids)
{
    RunConfig cfg = tinyConfig();
    cfg.recordLlcTrace = true; // cannot cross process boundaries
    const std::vector<std::string> benchmarks = {twoBenchmarks()[0]};
    const std::vector<PolicyKind> policies = {PolicyKind::Lru};
    const std::string path = manifestPath("artifact_fallback");

    sweep::SweepOptions opts;
    opts.workers = 2;
    opts.jobs = 1;
    opts.manifestPath = path;
    const sweep::Grid grid =
        sweep::runGrid(benchmarks, policies, cfg, opts);
    EXPECT_TRUE(grid.ok());
    EXPECT_FALSE(grid.at(0, 0).llcTrace.empty());
    std::remove(path.c_str());
    std::remove((path + ".lock").c_str());
}

TEST(SweepFabric, MixGridRunsUnderWorkers)
{
    RunConfig cfg = RunConfig::quadCore();
    cfg.warmupInstructions = 20000;
    cfg.measureInstructions = 100000;
    const auto &all = multicoreMixes();
    ASSERT_GE(all.size(), 2u);
    const std::vector<MixProfile> mixes(all.begin(), all.begin() + 2);
    const std::vector<PolicyKind> policies = {PolicyKind::Lru};
    const std::string path = manifestPath("mix_workers");

    sweep::SweepOptions serial_opts;
    serial_opts.jobs = 1;
    const sweep::MixGrid serial =
        sweep::runMixGrid(mixes, policies, cfg, serial_opts);
    ASSERT_TRUE(serial.ok());

    sweep::SweepOptions opts;
    opts.workers = 2;
    opts.manifestPath = path;
    const sweep::MixGrid fabric =
        sweep::runMixGrid(mixes, policies, cfg, opts);
    ASSERT_TRUE(fabric.ok());
    for (std::size_t i = 0; i < fabric.cells.size(); ++i) {
        EXPECT_EQ(fabric.cells[i].mix, serial.cells[i].mix);
        EXPECT_EQ(fabric.cells[i].policy, serial.cells[i].policy);
        EXPECT_EQ(fabric.cells[i].benchmarks,
                  serial.cells[i].benchmarks);
        EXPECT_EQ(fabric.cells[i].ipc, serial.cells[i].ipc);
        EXPECT_EQ(fabric.cells[i].llcMisses,
                  serial.cells[i].llcMisses);
        EXPECT_EQ(fabric.cells[i].totalInstructions,
                  serial.cells[i].totalInstructions);
        EXPECT_EQ(fabric.cells[i].mpki, serial.cells[i].mpki);
    }
    std::remove(path.c_str());
    std::remove((path + ".lock").c_str());
}

} // anonymous namespace
} // namespace sdbp

int
main(int argc, char **argv)
{
    // Must precede InitGoogleTest: in a worker invocation this never
    // returns, and in a normal one it unlocks worker spawning.
    sdbp::sweep::maybeWorkerMain(argc, argv);
    testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
