/**
 * @file
 * Tests for fault-tolerant sweep execution: per-cell failure
 * isolation (CellError + retries, remaining cells still run), the
 * checkpoint manifest (atomic writes, resume of completed cells,
 * fingerprint safety), graceful-shutdown skipping, and the JSON
 * round-trip of checkpointed results.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>

#include "obs/json.hh"
#include "sim/runner.hh"
#include "sim/sweep.hh"
#include "sim/worker.hh"
#include "trace/spec_profiles.hh"
#include "util/file.hh"

namespace sdbp
{
namespace
{

RunConfig
tinyConfig()
{
    RunConfig cfg = RunConfig::singleCore();
    cfg.warmupInstructions = 20000;
    cfg.measureInstructions = 100000;
    return cfg;
}

std::vector<std::string>
twoBenchmarks()
{
    const auto &subset = memoryIntensiveSubset();
    return {subset[0], subset[1]};
}

/** Fresh manifest path per test so checkpoints never collide. */
std::string
manifestPath(const std::string &test)
{
    const std::string path =
        testing::TempDir() + "sdbp_" + test + ".manifest.json";
    std::remove(path.c_str());
    return path;
}

obs::JsonValue
parseManifest(const std::string &path)
{
    bool ok = false;
    const std::string text = util::readFile(path, &ok);
    EXPECT_TRUE(ok) << path;
    std::string err;
    const auto doc = obs::JsonValue::parse(text, &err);
    EXPECT_TRUE(doc.has_value()) << err;
    return doc ? *doc : obs::JsonValue();
}

std::string
cellStatus(const obs::JsonValue &doc, std::size_t index)
{
    const obs::JsonValue *cells = doc.find("cells");
    if (!cells || index >= cells->size())
        return {};
    const obs::JsonValue *status = cells->at(index).find("status");
    return status ? status->asString() : std::string{};
}

/** RAII guard for the SDBP_TEST_FAIL_CELL hook. */
class FailCellGuard
{
  public:
    explicit FailCellGuard(const std::string &cell)
    {
        ::setenv("SDBP_TEST_FAIL_CELL", cell.c_str(), 1);
    }
    ~FailCellGuard() { ::unsetenv("SDBP_TEST_FAIL_CELL"); }
};

TEST(SweepManifestTest, RunResultJsonRoundTrip)
{
    RunResult r;
    r.benchmark = "456.hmmer";
    r.policy = "Sampler";
    r.instructions = 123456;
    r.cycles = 654321;
    r.ipc = 0.1887;
    r.mpki = 12.75;
    r.llcAccesses = 4242;
    r.llcMisses = 99;
    r.llcBypasses = 7;
    r.llcEfficiency = 0.5;
    r.hasDbrb = true;
    r.dbrb.predictions = 1000;
    r.dbrb.positives = 250;
    r.dbrb.falsePositiveHits = 3;
    r.dbrb.bypassReuses = 2;
    r.dbrb.deadEvictions = 120;
    r.dbrb.bypasses = 5;
    r.faultsInjected = 17;
    r.wallSeconds = 1.25;

    const RunResult back =
        sweep::runResultFromJson(sweep::runResultToJson(r));
    EXPECT_EQ(back.benchmark, r.benchmark);
    EXPECT_EQ(back.policy, r.policy);
    EXPECT_EQ(back.instructions, r.instructions);
    EXPECT_EQ(back.cycles, r.cycles);
    EXPECT_EQ(back.ipc, r.ipc);
    EXPECT_EQ(back.mpki, r.mpki);
    EXPECT_EQ(back.llcAccesses, r.llcAccesses);
    EXPECT_EQ(back.llcMisses, r.llcMisses);
    EXPECT_EQ(back.llcBypasses, r.llcBypasses);
    EXPECT_EQ(back.llcEfficiency, r.llcEfficiency);
    EXPECT_EQ(back.hasDbrb, r.hasDbrb);
    EXPECT_EQ(back.dbrb.predictions, r.dbrb.predictions);
    EXPECT_EQ(back.dbrb.positives, r.dbrb.positives);
    EXPECT_EQ(back.dbrb.falsePositiveHits, r.dbrb.falsePositiveHits);
    EXPECT_EQ(back.dbrb.bypassReuses, r.dbrb.bypassReuses);
    EXPECT_EQ(back.dbrb.deadEvictions, r.dbrb.deadEvictions);
    EXPECT_EQ(back.dbrb.bypasses, r.dbrb.bypasses);
    EXPECT_EQ(back.faultsInjected, r.faultsInjected);
    EXPECT_EQ(back.wallSeconds, r.wallSeconds);
    EXPECT_FALSE(back.intervalSelected);
}

TEST(SweepManifestTest, IntervalResultJsonRoundTrip)
{
    RunResult r;
    r.benchmark = "trace";
    r.policy = "LRU";
    r.intervalSelected = true;
    r.traceInstructions = 4'000'000;
    r.intervalsTotal = 64;
    r.intervalsSimulated = 3;
    r.simulatedInstructions = 375'000;

    const RunResult back =
        sweep::runResultFromJson(sweep::runResultToJson(r));
    EXPECT_TRUE(back.intervalSelected);
    EXPECT_EQ(back.traceInstructions, r.traceInstructions);
    EXPECT_EQ(back.intervalsTotal, r.intervalsTotal);
    EXPECT_EQ(back.intervalsSimulated, r.intervalsSimulated);
    EXPECT_EQ(back.simulatedInstructions, r.simulatedInstructions);
}

TEST(SweepManifestTest, TraceSpecJsonRoundTrip)
{
    // Default (synthetic) specs must not emit a "trace" block at all
    // so established manifests keep their shape.
    RunConfig plain;
    EXPECT_EQ(sweep::runConfigToJson(plain).find("trace"), nullptr);
    const RunConfig plain_back =
        sweep::runConfigFromJson(sweep::runConfigToJson(plain));
    EXPECT_TRUE(plain_back.trace == TraceSpec{});

    RunConfig cfg;
    cfg.trace.kind = TraceKind::ChampSim;
    cfg.trace.path = "/tmp/some.trace.xz";
    cfg.trace.intervalInstructions = 125'000;
    cfg.trace.selectClusters = 3;
    const RunConfig back =
        sweep::runConfigFromJson(sweep::runConfigToJson(cfg));
    EXPECT_TRUE(back.trace == cfg.trace);
    EXPECT_TRUE(back.trace.selectionEnabled());
}

TEST(SweepManifestTest, MulticoreResultJsonRoundTrip)
{
    MulticoreRunResult r;
    r.mix = "mix1";
    r.policy = "DRRIP";
    r.benchmarks = {"a", "b", "c", "d"};
    r.ipc = {0.5, 0.25, 1.0, 0.75};
    r.llcMisses = 4321;
    r.totalInstructions = 400000;
    r.mpki = 10.8;
    r.faultsInjected = 3;
    r.wallSeconds = 2.5;

    const MulticoreRunResult back = sweep::multicoreResultFromJson(
        sweep::multicoreResultToJson(r));
    EXPECT_EQ(back.mix, r.mix);
    EXPECT_EQ(back.policy, r.policy);
    EXPECT_EQ(back.benchmarks, r.benchmarks);
    EXPECT_EQ(back.ipc, r.ipc);
    EXPECT_EQ(back.llcMisses, r.llcMisses);
    EXPECT_EQ(back.totalInstructions, r.totalInstructions);
    EXPECT_EQ(back.mpki, r.mpki);
    EXPECT_EQ(back.faultsInjected, r.faultsInjected);
    EXPECT_EQ(back.wallSeconds, r.wallSeconds);
}

TEST(SweepManifestTest, MarkReloadRoundTrip)
{
    const std::string path = manifestPath("mark_reload");
    {
        sweep::SweepManifest m(path, "grid", {"a", "b"}, {"LRU"},
                               1000, 2000);
        obs::JsonValue metrics = obs::JsonValue::object();
        metrics.set("mpki", 3.5);
        m.markCompleted(0, std::move(metrics));
        sweep::CellError err;
        err.index = 1;
        err.run = "b";
        err.policy = "LRU";
        err.message = "boom";
        err.attempts = 2;
        m.markFailed(err);
    }
    sweep::SweepManifest reloaded(path, "grid", {"a", "b"}, {"LRU"},
                                  1000, 2000);
    EXPECT_EQ(reloaded.loadCompleted(), 1u);
    EXPECT_TRUE(reloaded.isCompleted(0));
    EXPECT_FALSE(reloaded.isCompleted(1));
    const obs::JsonValue *mpki =
        reloaded.completedMetrics(0).find("mpki");
    ASSERT_NE(mpki, nullptr);
    EXPECT_EQ(mpki->asNumber(), 3.5);

    const obs::JsonValue doc = parseManifest(path);
    EXPECT_EQ(cellStatus(doc, 0), "completed");
    EXPECT_EQ(cellStatus(doc, 1), "failed");
    std::remove(path.c_str());
}

TEST(SweepManifestDeathTest, FingerprintMismatchIsFatal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const std::string path = manifestPath("fingerprint");
    {
        sweep::SweepManifest m(path, "grid", {"a", "b"}, {"LRU"},
                               1000, 2000);
        m.flush();
    }
    // Different benchmark list.
    EXPECT_EXIT(
        {
            sweep::SweepManifest m(path, "grid", {"a", "c"}, {"LRU"},
                                   1000, 2000);
            m.loadCompleted();
        },
        testing::ExitedWithCode(1), "different sweep");
    // Different instruction budget.
    EXPECT_EXIT(
        {
            sweep::SweepManifest m(path, "grid", {"a", "b"}, {"LRU"},
                                   1000, 9999);
            m.loadCompleted();
        },
        testing::ExitedWithCode(1), "different sweep");
    // Corrupted file.
    ASSERT_TRUE(util::atomicWriteFile(path, "{not json"));
    EXPECT_EXIT(
        {
            sweep::SweepManifest m(path, "grid", {"a", "b"}, {"LRU"},
                                   1000, 2000);
            m.loadCompleted();
        },
        testing::ExitedWithCode(1), "not valid JSON");
    std::remove(path.c_str());
}

TEST(SweepResilience, ThrowingCellIsIsolated)
{
    const RunConfig cfg = tinyConfig();
    const auto benchmarks = twoBenchmarks();
    const std::vector<PolicyKind> policies = {PolicyKind::Lru,
                                              PolicyKind::Sampler};
    const std::string victim =
        benchmarks[1] + "/" + policyName(PolicyKind::Sampler);
    const FailCellGuard guard(victim);

    sweep::SweepOptions opts;
    opts.jobs = 2;
    opts.retries = 1;
    const sweep::Grid grid =
        sweep::runGrid(benchmarks, policies, cfg, opts);

    EXPECT_FALSE(grid.ok());
    ASSERT_EQ(grid.errors.size(), 1u);
    const sweep::CellError &err = grid.errors.front();
    EXPECT_EQ(err.run, benchmarks[1]);
    EXPECT_EQ(err.policy, policyName(PolicyKind::Sampler));
    EXPECT_EQ(err.attempts, 2u); // 1 + retries, all forced to fail
    EXPECT_FALSE(err.timedOut);
    EXPECT_NE(err.message.find("SDBP_TEST_FAIL_CELL"),
              std::string::npos);

    // The failed cell holds a labeled placeholder; every other cell
    // holds a real result.
    for (std::size_t b = 0; b < benchmarks.size(); ++b)
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const RunResult &r = grid.at(b, p);
            EXPECT_EQ(r.benchmark, benchmarks[b]);
            if (b == 1 && policies[p] == PolicyKind::Sampler)
                EXPECT_EQ(r.cycles, 0u);
            else
                EXPECT_GT(r.cycles, 0u);
        }
}

TEST(SweepResilience, FailedCellRecordedInManifest)
{
    const RunConfig cfg = tinyConfig();
    const auto benchmarks = twoBenchmarks();
    const std::vector<PolicyKind> policies = {PolicyKind::Lru};
    const std::string path = manifestPath("failed_cell");

    {
        const FailCellGuard guard(benchmarks[0] + "/" +
                                  policyName(PolicyKind::Lru));
        sweep::SweepOptions opts;
        opts.jobs = 1;
        opts.manifestPath = path;
        const sweep::Grid grid =
            sweep::runGrid(benchmarks, policies, cfg, opts);
        ASSERT_EQ(grid.errors.size(), 1u);
        EXPECT_EQ(grid.errors.front().index, 0u);
    }

    const obs::JsonValue doc = parseManifest(path);
    EXPECT_EQ(cellStatus(doc, 0), "failed");
    EXPECT_EQ(cellStatus(doc, 1), "completed");
    const obs::JsonValue *cells = doc.find("cells");
    ASSERT_NE(cells, nullptr);
    const obs::JsonValue *msg = cells->at(0).find("error");
    ASSERT_NE(msg, nullptr);
    EXPECT_NE(msg->asString().find("SDBP_TEST_FAIL_CELL"),
              std::string::npos);

    // Resume with the hook removed: the completed cell restores, the
    // failed cell re-executes and now succeeds.
    sweep::SweepOptions opts;
    opts.jobs = 1;
    opts.manifestPath = path;
    opts.resume = true;
    const sweep::Grid resumed =
        sweep::runGrid(benchmarks, policies, cfg, opts);
    EXPECT_TRUE(resumed.ok());
    EXPECT_EQ(resumed.resumed, 1u);
    EXPECT_GT(resumed.at(0, 0).cycles, 0u);
    EXPECT_GT(resumed.at(1, 0).cycles, 0u);
    EXPECT_EQ(cellStatus(parseManifest(path), 0), "completed");
    std::remove(path.c_str());
}

TEST(SweepResilience, ResumeRestoresInsteadOfRerunning)
{
    const RunConfig cfg = tinyConfig();
    const auto benchmarks = twoBenchmarks();
    const std::vector<PolicyKind> policies = {PolicyKind::Lru};
    const std::string path = manifestPath("resume_restores");

    sweep::SweepOptions opts;
    opts.jobs = 2;
    opts.manifestPath = path;
    const sweep::Grid first =
        sweep::runGrid(benchmarks, policies, cfg, opts);
    ASSERT_TRUE(first.ok());

    // Plant a sentinel MPKI in cell 0's checkpoint.  If the resumed
    // sweep restores (rather than re-runs) the cell, the sentinel
    // must surface in its result.
    obs::JsonValue doc = parseManifest(path);
    const obs::JsonValue *cells = doc.find("cells");
    ASSERT_NE(cells, nullptr);
    obs::JsonValue patched_cells = obs::JsonValue::array();
    for (std::size_t i = 0; i < cells->size(); ++i) {
        obs::JsonValue cell = cells->at(i);
        if (i == 0) {
            obs::JsonValue metrics = *cell.find("metrics");
            metrics.set("mpki", 12345.0);
            cell.set("metrics", std::move(metrics));
        }
        patched_cells.push(std::move(cell));
    }
    doc.set("cells", std::move(patched_cells));
    ASSERT_TRUE(util::atomicWriteFile(path, doc.dump(2) + "\n"));

    opts.resume = true;
    const sweep::Grid second =
        sweep::runGrid(benchmarks, policies, cfg, opts);
    EXPECT_TRUE(second.ok());
    EXPECT_EQ(second.resumed, 2u);
    EXPECT_EQ(second.at(0, 0).mpki, 12345.0);
    EXPECT_EQ(second.at(1, 0).mpki, first.at(1, 0).mpki);
    EXPECT_EQ(second.at(1, 0).cycles, first.at(1, 0).cycles);
    std::remove(path.c_str());
}

TEST(SweepResilience, ResumeIgnoredForNonCheckpointableGrids)
{
    RunConfig cfg = tinyConfig();
    cfg.recordLlcTrace = true; // in-memory payload: not resumable
    const std::vector<std::string> benchmarks = {twoBenchmarks()[0]};
    const std::vector<PolicyKind> policies = {PolicyKind::Lru};
    const std::string path = manifestPath("non_resumable");

    sweep::SweepOptions opts;
    opts.jobs = 1;
    opts.manifestPath = path;
    const sweep::Grid first =
        sweep::runGrid(benchmarks, policies, cfg, opts);
    ASSERT_TRUE(first.ok());

    opts.resume = true;
    const sweep::Grid second =
        sweep::runGrid(benchmarks, policies, cfg, opts);
    EXPECT_TRUE(second.ok());
    EXPECT_EQ(second.resumed, 0u); // re-ran, not restored
    EXPECT_FALSE(second.at(0, 0).llcTrace.empty());
    std::remove(path.c_str());
}

TEST(SweepResilience, ShutdownSkipsQueuedCells)
{
    const RunConfig cfg = tinyConfig();
    const auto benchmarks = twoBenchmarks();
    const std::vector<PolicyKind> policies = {PolicyKind::Lru};
    const std::string path = manifestPath("shutdown");

    sweep::requestShutdown();
    sweep::SweepOptions opts;
    opts.jobs = 1;
    opts.manifestPath = path;
    const sweep::Grid grid =
        sweep::runGrid(benchmarks, policies, cfg, opts);
    sweep::resetShutdown();

    EXPECT_FALSE(grid.ok());
    EXPECT_EQ(grid.skipped, 2u);
    EXPECT_TRUE(grid.errors.empty());
    const obs::JsonValue doc = parseManifest(path);
    EXPECT_EQ(cellStatus(doc, 0), "skipped");
    EXPECT_EQ(cellStatus(doc, 1), "skipped");

    // The checkpoint left behind is resumable: with shutdown cleared
    // the skipped cells execute on the next attempt.
    opts.resume = true;
    const sweep::Grid resumed =
        sweep::runGrid(benchmarks, policies, cfg, opts);
    EXPECT_TRUE(resumed.ok());
    EXPECT_EQ(resumed.resumed, 0u);
    EXPECT_GT(resumed.at(0, 0).cycles, 0u);
    std::remove(path.c_str());
}

TEST(SweepResilience, MixGridIsolatesFailures)
{
    RunConfig cfg = RunConfig::quadCore();
    cfg.warmupInstructions = 20000;
    cfg.measureInstructions = 100000;
    const auto &all = multicoreMixes();
    ASSERT_GE(all.size(), 2u);
    const std::vector<MixProfile> mixes(all.begin(), all.begin() + 2);
    const std::vector<PolicyKind> policies = {PolicyKind::Lru};
    const std::string path = manifestPath("mix_failure");

    {
        const FailCellGuard guard(mixes[0].name + "/" +
                                  policyName(PolicyKind::Lru));
        sweep::SweepOptions opts;
        opts.jobs = 2;
        opts.manifestPath = path;
        const sweep::MixGrid grid =
            sweep::runMixGrid(mixes, policies, cfg, opts);
        ASSERT_EQ(grid.errors.size(), 1u);
        EXPECT_EQ(grid.errors.front().run, mixes[0].name);
        EXPECT_GT(grid.at(1, 0).totalInstructions, 0u);
    }

    // Resume re-runs only the failed mix.
    sweep::SweepOptions opts;
    opts.jobs = 1;
    opts.manifestPath = path;
    opts.resume = true;
    const sweep::MixGrid resumed =
        sweep::runMixGrid(mixes, policies, cfg, opts);
    EXPECT_TRUE(resumed.ok());
    EXPECT_EQ(resumed.resumed, 1u);
    EXPECT_GT(resumed.at(0, 0).totalInstructions, 0u);
    std::remove(path.c_str());
}

TEST(SweepResilienceTest, MixGridResumeIgnoresArtifactFlags)
{
    // runGrid refuses to resume when the config requests in-memory
    // payloads (recordLlcTrace / trackEfficiency) because those are
    // not checkpointed.  Mix grids are exempt from that guard:
    // runMulticore never records either payload, so a mix-grid
    // checkpoint is always authoritative and a resume must restore
    // even with the artifact flags set.
    RunConfig cfg = RunConfig::quadCore();
    cfg.warmupInstructions = 20000;
    cfg.measureInstructions = 100000;
    cfg.recordLlcTrace = true;
    cfg.trackEfficiency = true;
    const auto &all = multicoreMixes();
    ASSERT_GE(all.size(), 1u);
    const std::vector<MixProfile> mixes(all.begin(), all.begin() + 1);
    const std::vector<PolicyKind> policies = {PolicyKind::Lru};
    const std::string path = manifestPath("mix_resume_artifacts");

    sweep::SweepOptions opts;
    opts.jobs = 1;
    opts.manifestPath = path;
    const sweep::MixGrid first =
        sweep::runMixGrid(mixes, policies, cfg, opts);
    ASSERT_TRUE(first.ok());

    opts.resume = true;
    const sweep::MixGrid second =
        sweep::runMixGrid(mixes, policies, cfg, opts);
    EXPECT_TRUE(second.ok());
    EXPECT_EQ(second.resumed, 1u); // restored, not re-run
    EXPECT_EQ(second.at(0, 0).llcMisses, first.at(0, 0).llcMisses);
    std::remove(path.c_str());
}

} // anonymous namespace
} // namespace sdbp
