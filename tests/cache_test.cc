/**
 * @file
 * Unit tests for the cache model and the hierarchy.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cache/cache.hh"
#include "cache/hierarchy.hh"
#include "cache/lru.hh"
#include "trace/access.hh"

namespace sdbp
{
namespace
{

Access
demand(Addr block_addr, PC pc = 0x400000, bool write = false,
       ThreadId thread = 0)
{
    Access a = Access::atBlock(block_addr, pc, thread);
    a.isWrite = write;
    return a;
}

Access
writeback(Addr block_addr, ThreadId thread = 0)
{
    return Access::writebackOf(block_addr, thread);
}

std::unique_ptr<Cache>
makeLruCache(std::uint32_t sets, std::uint32_t assoc,
             bool track_eff = false)
{
    CacheConfig cfg;
    cfg.name = "test";
    cfg.numSets = sets;
    cfg.assoc = assoc;
    cfg.trackEfficiency = track_eff;
    return std::make_unique<Cache>(
        cfg, std::make_unique<LruPolicy>(sets, assoc));
}

/** A policy that bypasses everything; victim is way 0. */
class BypassAllPolicy : public ReplacementPolicy
{
  public:
    using ReplacementPolicy::ReplacementPolicy;
    void
    onAccess(std::uint32_t, int, SetView, const Access &) override
    {
    }
    bool
    shouldBypass(std::uint32_t, const Access &a) override
    {
        return !a.isWriteback;
    }
    std::uint32_t
    victim(std::uint32_t, SetView, const Access &) override
    {
        return 0;
    }
    void
    onFill(std::uint32_t, std::uint32_t, SetView,
           const Access &) override
    {
    }
    std::string name() const override { return "bypass-all"; }
};

TEST(CacheTest, MissThenHit)
{
    auto cache = makeLruCache(4, 2);
    EXPECT_FALSE(cache->access(demand(0x10), 0));
    cache->fill(demand(0x10), 0);
    EXPECT_TRUE(cache->access(demand(0x10), 1));
    EXPECT_EQ(cache->stats().demandAccesses, 2u);
    EXPECT_EQ(cache->stats().demandMisses, 1u);
    EXPECT_EQ(cache->stats().demandHits, 1u);
}

TEST(CacheTest, SetIndexUsesLowBits)
{
    auto cache = makeLruCache(8, 1);
    EXPECT_EQ(cache->setIndex(0x10), 0x10u & 7);
    EXPECT_EQ(cache->setIndex(0xff), 7u);
    // Blocks mapping to different sets never conflict.
    cache->access(demand(0x00), 0);
    cache->fill(demand(0x00), 0);
    cache->access(demand(0x01), 0);
    cache->fill(demand(0x01), 0);
    EXPECT_TRUE(cache->probe(0x00));
    EXPECT_TRUE(cache->probe(0x01));
}

TEST(CacheTest, LruEvictionOrder)
{
    auto cache = makeLruCache(1, 2);
    for (Addr a : {0x10, 0x20}) {
        cache->access(demand(a), 0);
        cache->fill(demand(a), 0);
    }
    // Touch 0x10 so 0x20 becomes LRU.
    cache->access(demand(0x10), 1);
    cache->access(demand(0x30), 2);
    const EvictedBlock ev = cache->fill(demand(0x30), 2);
    EXPECT_TRUE(ev.valid);
    EXPECT_EQ(ev.blockAddr, 0x20u);
    EXPECT_TRUE(cache->probe(0x10));
    EXPECT_FALSE(cache->probe(0x20));
}

TEST(CacheTest, DirtyEvictionReported)
{
    auto cache = makeLruCache(1, 1);
    cache->access(demand(0x10, 0, true), 0);
    cache->fill(demand(0x10, 0, true), 0);
    cache->access(demand(0x20), 1);
    const EvictedBlock ev = cache->fill(demand(0x20), 1);
    EXPECT_TRUE(ev.valid);
    EXPECT_TRUE(ev.dirty);
    EXPECT_EQ(cache->stats().dirtyEvictions, 1u);
}

TEST(CacheTest, WriteHitSetsDirty)
{
    auto cache = makeLruCache(1, 1);
    cache->access(demand(0x10), 0);
    cache->fill(demand(0x10), 0);
    cache->access(demand(0x10, 0, true), 1);
    cache->access(demand(0x20), 2);
    EXPECT_TRUE(cache->fill(demand(0x20), 2).dirty);
}

TEST(CacheTest, WritebackHitMarksDirtyWithoutDemandStats)
{
    auto cache = makeLruCache(1, 1);
    cache->access(demand(0x10), 0);
    cache->fill(demand(0x10), 0);
    EXPECT_TRUE(cache->access(writeback(0x10), 1));
    EXPECT_EQ(cache->stats().writebackAccesses, 1u);
    EXPECT_EQ(cache->stats().writebackHits, 1u);
    EXPECT_EQ(cache->stats().demandAccesses, 1u);
    cache->access(demand(0x20), 2);
    EXPECT_TRUE(cache->fill(demand(0x20), 2).dirty);
}

TEST(CacheTest, BypassPolicyKeepsCacheEmpty)
{
    CacheConfig cfg;
    cfg.numSets = 2;
    cfg.assoc = 2;
    Cache cache(cfg, std::make_unique<BypassAllPolicy>(2, 2));
    for (Addr a = 0; a < 10; ++a) {
        EXPECT_FALSE(cache.access(demand(a), a));
        cache.fill(demand(a), a);
        EXPECT_FALSE(cache.probe(a));
    }
    EXPECT_EQ(cache.stats().bypasses, 10u);
    EXPECT_EQ(cache.stats().fills, 0u);
}

TEST(CacheTest, InvalidFramesFillBeforeEviction)
{
    auto cache = makeLruCache(1, 4);
    for (Addr a = 0x10; a < 0x14; ++a) {
        cache->access(demand(a), 0);
        EXPECT_FALSE(cache->fill(demand(a), 0).valid);
    }
    EXPECT_EQ(cache->stats().evictions, 0u);
    cache->access(demand(0x20), 1);
    EXPECT_TRUE(cache->fill(demand(0x20), 1).valid);
    EXPECT_EQ(cache->stats().evictions, 1u);
}

TEST(CacheTest, InvalidateRemovesBlock)
{
    auto cache = makeLruCache(2, 2);
    cache->access(demand(0x10), 0);
    cache->fill(demand(0x10), 0);
    EXPECT_TRUE(cache->probe(0x10));
    cache->invalidate(0x10);
    EXPECT_FALSE(cache->probe(0x10));
    cache->invalidate(0x10); // idempotent
}

TEST(CacheTest, EfficiencyAccountsLiveAndDeadTime)
{
    auto cache = makeLruCache(1, 1, true);
    // Fill at t=0, last touch at t=40, evict at t=100:
    // live = 40, total = 100 -> efficiency 0.4.
    cache->access(demand(0x10), 0);
    cache->fill(demand(0x10), 0);
    cache->access(demand(0x10), 40);
    cache->access(demand(0x20), 100);
    cache->fill(demand(0x20), 100);
    EXPECT_NEAR(cache->stats().efficiency(), 0.4, 1e-9);
    EXPECT_NEAR(cache->frameEfficiency(0, 0), 0.4, 1e-9);
}

TEST(CacheTest, FinalizeEfficiencyCountsResidentBlocks)
{
    auto cache = makeLruCache(1, 1, true);
    cache->access(demand(0x10), 0);
    cache->fill(demand(0x10), 0);
    cache->access(demand(0x10), 10);
    cache->finalizeEfficiency(100);
    EXPECT_NEAR(cache->stats().efficiency(), 0.1, 1e-9);
}

TEST(CacheTest, ClearStatsPreservesContent)
{
    auto cache = makeLruCache(2, 2);
    cache->access(demand(0x10), 0);
    cache->fill(demand(0x10), 0);
    cache->clearStats();
    EXPECT_EQ(cache->stats().demandAccesses, 0u);
    EXPECT_TRUE(cache->probe(0x10));
}

TEST(CacheTest, ConfigSizeBytes)
{
    CacheConfig cfg;
    cfg.numSets = 2048;
    cfg.assoc = 16;
    EXPECT_EQ(cfg.sizeBytes(), 2u * 1024 * 1024);
}

// ---- Hierarchy ----

HierarchyConfig
tinyHierarchy(std::uint32_t cores = 1)
{
    HierarchyConfig cfg;
    cfg.l1 = {.name = "L1", .numSets = 4, .assoc = 2, .latency = 3};
    cfg.l2 = {.name = "L2", .numSets = 8, .assoc = 2, .latency = 12};
    cfg.llc = {.name = "LLC", .numSets = 16, .assoc = 4, .latency = 30};
    cfg.memLatency = 200;
    cfg.numCores = cores;
    return cfg;
}

Access
load(Addr addr, PC pc = 0x400000, ThreadId thread = 0)
{
    Access a;
    a.pc = pc;
    a.addr = addr;
    a.thread = thread;
    return a;
}

TEST(HierarchyTest, LatencyAccumulatesDownTheLevels)
{
    const HierarchyConfig cfg = tinyHierarchy();
    Hierarchy h(cfg, std::make_unique<LruPolicy>(16, 4));
    const auto first = h.access(load(0x1000), 0);
    EXPECT_EQ(first.level, ServiceLevel::Memory);
    EXPECT_EQ(first.latency, 3u + 12 + 30 + 200);
    const auto second = h.access(load(0x1000), 1);
    EXPECT_EQ(second.level, ServiceLevel::L1);
    EXPECT_EQ(second.latency, 3u);
}

TEST(HierarchyTest, L2HitAfterL1Eviction)
{
    const HierarchyConfig cfg = tinyHierarchy();
    Hierarchy h(cfg, std::make_unique<LruPolicy>(16, 4));
    // L1 set 0 holds 2 ways; the third block evicts the first.
    // Blocks map to L1 set 0 with stride 4 blocks (4 sets).
    h.access(load(0 << 6), 0);
    h.access(load(4 << 6), 1);
    h.access(load(8 << 6), 2);
    const auto res = h.access(load(0 << 6), 3);
    EXPECT_EQ(res.level, ServiceLevel::L2);
    EXPECT_EQ(res.latency, 3u + 12);
}

TEST(HierarchyTest, LlcSeesOnlyL2Misses)
{
    const HierarchyConfig cfg = tinyHierarchy();
    Hierarchy h(cfg, std::make_unique<LruPolicy>(16, 4));
    for (int rep = 0; rep < 10; ++rep)
        h.access(load(0x40), rep);
    EXPECT_EQ(h.llc().stats().demandAccesses, 1u);
}

TEST(HierarchyTest, DirtyEvictionWritesBackToMemory)
{
    const HierarchyConfig cfg = tinyHierarchy();
    Hierarchy h(cfg, std::make_unique<LruPolicy>(16, 4));
    Access store = load(0x40);
    store.isWrite = true;
    h.access(store, 0);
    // Push enough conflicting blocks through to evict it everywhere.
    for (Addr i = 1; i <= 128; ++i)
        h.access(load(0x40 + (i << 12)), i);
    EXPECT_GT(h.memWrites(), 0u);
}

TEST(HierarchyTest, PerCoreL1sAreprivate)
{
    const HierarchyConfig cfg = tinyHierarchy(2);
    Hierarchy h(cfg, std::make_unique<LruPolicy>(16, 4));
    h.access(load(0x1000), 0);
    const auto res = h.access(load(0x1000, 0x400000, 1), 1);
    // Core 1 misses its private L1/L2 but hits the shared LLC.
    EXPECT_EQ(res.level, ServiceLevel::Llc);
}

TEST(HierarchyTest, TraceRecordsLlcDemandStream)
{
    const HierarchyConfig cfg = tinyHierarchy();
    Hierarchy h(cfg, std::make_unique<LruPolicy>(16, 4));
    std::vector<LlcRef> trace;
    h.recordLlcTrace(&trace);
    h.access(load(0x1000, 0x400abc), 0);
    h.access(load(0x1000), 1); // L1 hit: not recorded
    ASSERT_EQ(trace.size(), 1u);
    EXPECT_EQ(trace[0].blockAddr, 0x1000u >> 6);
    EXPECT_EQ(trace[0].pc, 0x400abcu);
}

TEST(HierarchyTest, WritebackMissForwardsWithoutAllocating)
{
    const HierarchyConfig cfg = tinyHierarchy();
    Hierarchy h(cfg, std::make_unique<LruPolicy>(16, 4));
    // Dirty a block, then evict it from L1 while it is absent from
    // L2 and the LLC: the writeback must cascade to memory without
    // allocating along the way.
    Access store = load(0x40);
    store.isWrite = true;
    h.access(store, 0);
    // Evict it from L2 and the LLC using conflicting DEMAND traffic
    // that maps to their sets but not to L1 set 1.
    h.llc().invalidate(0x1);
    h.l2(0).invalidate(0x1);
    const auto wb_before = h.memWrites();
    // Now force the dirty block out of L1 (set 1, 2 ways).
    h.access(load(0x40 + (4 << 6)), 1);
    h.access(load(0x40 + (8 << 6)), 2);
    EXPECT_EQ(h.memWrites(), wb_before + 1);
    // Not allocated in L2 or LLC on the way out.
    EXPECT_FALSE(h.l2(0).probe(0x1));
    EXPECT_FALSE(h.llc().probe(0x1));
}

TEST(HierarchyTest, WritebackHitUpdatesLowerLevelCopy)
{
    const HierarchyConfig cfg = tinyHierarchy();
    Hierarchy h(cfg, std::make_unique<LruPolicy>(16, 4));
    Access store = load(0x40);
    store.isWrite = true;
    h.access(store, 0); // fills L1/L2/LLC; dirty in L1
    // Evict from L1 only: L2 still holds the block -> wb hits L2.
    h.access(load(0x40 + (4 << 6)), 1);
    h.access(load(0x40 + (8 << 6)), 2);
    EXPECT_EQ(h.memWrites(), 0u);
    EXPECT_TRUE(h.l2(0).probe(0x1));
}

TEST(HierarchyTest, ClearStatsResetsCounters)
{
    const HierarchyConfig cfg = tinyHierarchy();
    Hierarchy h(cfg, std::make_unique<LruPolicy>(16, 4));
    h.access(load(0x1000), 0);
    h.clearStats();
    EXPECT_EQ(h.llc().stats().demandAccesses, 0u);
    EXPECT_EQ(h.memReads(), 0u);
    // Content is preserved: re-access hits in L1.
    EXPECT_EQ(h.access(load(0x1000), 1).level, ServiceLevel::L1);
}

} // anonymous namespace
} // namespace sdbp
