/**
 * @file
 * Unit and property tests for the optimal (MIN + bypass) policy.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "cache/lru.hh"
#include "cache/random_repl.hh"
#include "opt/belady.hh"
#include "util/rng.hh"

namespace sdbp
{
namespace
{

std::vector<LlcRef>
refs(const std::vector<Addr> &blocks)
{
    std::vector<LlcRef> out;
    for (Addr b : blocks)
        out.push_back({b, 0x400000, 0, false});
    return out;
}

TEST(Belady, EmptyTrace)
{
    const OptimalResult r = optimalMisses({}, 4, 2);
    EXPECT_EQ(r.accesses, 0u);
    EXPECT_EQ(r.misses, 0u);
}

TEST(Belady, ColdMissesOnly)
{
    // Distinct blocks, never reused: every access misses regardless
    // of policy.
    const auto r = optimalMisses(refs({0, 4, 8, 12, 16}), 4, 2);
    EXPECT_EQ(r.misses, 5u);
}

TEST(Belady, PerfectReuseAfterFill)
{
    const auto r = optimalMisses(refs({0, 4, 0, 4, 0, 4}), 4, 2);
    EXPECT_EQ(r.misses, 2u);
}

TEST(Belady, ClassicMinExample)
{
    // Single set, 2 ways, the textbook sequence where LRU fails:
    // cyclic a,b,c. MIN keeps one of them resident.
    // Blocks 0,4,8 all map to set 0 of a 4-set cache.
    const auto seq = refs({0, 4, 8, 0, 4, 8, 0, 4, 8});
    const auto min = optimalMisses(seq, 4, 2, false);
    // MIN on cyclic 3-block access with 2 frames: miss rate 1/2
    // after the cold start: a,b miss; c misses (evict b keeping a);
    // a hits; b misses; c hits... -> 3 cold + hits alternating.
    EXPECT_LE(min.misses, 6u);
    // LRU misses everything.
    CacheConfig cfg;
    cfg.numSets = 4;
    cfg.assoc = 2;
    Cache lru(cfg, std::make_unique<LruPolicy>(4, 2));
    std::uint64_t lru_misses = 0;
    for (const auto &r : seq) {
        const Access a = Access::atBlock(r.blockAddr);
        if (!lru.access(a, 0)) {
            ++lru_misses;
            lru.fill(a, 0);
        }
    }
    EXPECT_EQ(lru_misses, 9u);
    EXPECT_LT(min.misses, lru_misses);
}

TEST(Belady, BypassHelpsOnScans)
{
    // A hot block re-referenced every step interleaved with a scan:
    // 1-way cache. With bypass the hot block stays resident; without
    // bypass MIN must still keep the hot block (it evicts/declines
    // by replacing), so here bypass and MIN coincide; check sanity.
    std::vector<Addr> seq;
    for (int i = 0; i < 20; ++i) {
        seq.push_back(0);               // hot (set 0)
        seq.push_back(4 * (i + 1));     // scan block, set 0
    }
    const auto with_bypass = optimalMisses(refs(seq), 4, 1, true);
    const auto without = optimalMisses(refs(seq), 4, 1, false);
    EXPECT_LE(with_bypass.misses, without.misses);
    EXPECT_GT(with_bypass.bypasses, 0u);
    // Hot block hits every time after the first access.
    EXPECT_EQ(with_bypass.misses, 1u + 20u);
}

TEST(Belady, NeverWorseThanWithoutBypass)
{
    Rng rng(77);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<Addr> seq;
        for (int i = 0; i < 400; ++i)
            seq.push_back(rng.below(64));
        const auto with_bypass = optimalMisses(refs(seq), 4, 4, true);
        const auto without = optimalMisses(refs(seq), 4, 4, false);
        EXPECT_LE(with_bypass.misses, without.misses);
    }
}

/** Property: MIN misses lower-bound every real policy. */
class BeladyBoundTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BeladyBoundTest, MinIsALowerBoundForLruAndRandom)
{
    Rng rng(GetParam());
    // Mixture of a hot set and a scan to get interesting reuse.
    std::vector<Addr> seq;
    Addr scan = 1000;
    for (int i = 0; i < 3000; ++i) {
        if (rng.chance(1, 2))
            seq.push_back(rng.below(96));
        else
            seq.push_back(scan++);
    }
    const auto trace = refs(seq);
    const auto min = optimalMisses(trace, 8, 4);

    for (int policy = 0; policy < 2; ++policy) {
        CacheConfig cfg;
        cfg.numSets = 8;
        cfg.assoc = 4;
        std::unique_ptr<ReplacementPolicy> repl;
        if (policy == 0)
            repl = std::make_unique<LruPolicy>(8, 4);
        else
            repl = std::make_unique<RandomPolicy>(8, 4, GetParam());
        Cache cache(cfg, std::move(repl));
        std::uint64_t misses = 0;
        for (const auto &r : trace) {
            const Access a = Access::atBlock(r.blockAddr);
            if (!cache.access(a, 0)) {
                ++misses;
                cache.fill(a, 0);
            }
        }
        EXPECT_LE(min.misses, misses);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BeladyBoundTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(Belady, MeasureFromCountsOnlyTheTail)
{
    // Simulate from the start but count only the second half: the
    // repeated suffix must be all hits.
    const auto seq = refs({0, 4, 8, 0, 4, 8});
    const auto all = optimalMisses(seq, 4, 4, true, 0);
    const auto tail = optimalMisses(seq, 4, 4, true, 3);
    EXPECT_EQ(all.misses, 3u);
    EXPECT_EQ(tail.misses, 0u);
    EXPECT_EQ(tail.accesses, 3u);
    // A measure_from beyond the trace counts nothing.
    const auto none = optimalMisses(seq, 4, 4, true, 100);
    EXPECT_EQ(none.accesses, 0u);
    EXPECT_EQ(none.misses, 0u);
}

TEST(Belady, SetsAreIndependent)
{
    // Interleaving accesses of two sets must not change per-set
    // outcomes: compare against running each set alone.
    std::vector<Addr> set0 = {0, 8, 16, 0, 8, 16, 0};
    std::vector<Addr> set1 = {1, 9, 17, 1, 9, 17, 1};
    std::vector<Addr> interleaved;
    for (std::size_t i = 0; i < set0.size(); ++i) {
        interleaved.push_back(set0[i]);
        interleaved.push_back(set1[i]);
    }
    const auto a = optimalMisses(refs(set0), 8, 2);
    const auto b = optimalMisses(refs(set1), 8, 2);
    const auto both = optimalMisses(refs(interleaved), 8, 2);
    EXPECT_EQ(both.misses, a.misses + b.misses);
}

} // anonymous namespace
} // namespace sdbp
