/**
 * @file
 * Integration tests: whole-system runs exercising generator -> core
 * -> hierarchy -> predictor paths, checking the paper's qualitative
 * claims on scaled-down configurations.
 */

#include <gtest/gtest.h>

#include "opt/belady.hh"
#include "sim/runner.hh"
#include "util/stats.hh"

namespace sdbp
{
namespace
{

RunConfig
fastConfig(InstCount measure = 1500000)
{
    RunConfig cfg; // deliberately ignores env overrides: tests are
                   // deterministic and fast
    cfg.warmupInstructions = 800000;
    cfg.measureInstructions = measure;
    return cfg;
}

TEST(Integration, LruRunProducesSaneMetrics)
{
    const RunResult r =
        runSingleCore("462.libquantum", PolicyKind::Lru, fastConfig());
    EXPECT_GE(r.instructions, 400000u);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_LE(r.ipc, 4.0);
    EXPECT_GT(r.mpki, 1.0);  // libquantum streams through the LLC
    EXPECT_GT(r.llcAccesses, r.llcMisses / 2);
    EXPECT_FALSE(r.hasDbrb);
}

TEST(Integration, SamplerBeatsLruOnStreamingWorkload)
{
    const auto lru =
        runSingleCore("462.libquantum", PolicyKind::Lru, fastConfig());
    const auto sampler = runSingleCore("462.libquantum",
                                       PolicyKind::Sampler,
                                       fastConfig());
    // Bypass freezes a resident fraction of the scan: misses drop.
    EXPECT_LT(sampler.llcMisses, lru.llcMisses);
    EXPECT_TRUE(sampler.hasDbrb);
    EXPECT_GT(sampler.dbrb.bypasses, 0u);
}

TEST(Integration, SamplerBeatsLruOnGenerationalWorkload)
{
    const auto lru =
        runSingleCore("456.hmmer", PolicyKind::Lru, fastConfig());
    const auto sampler =
        runSingleCore("456.hmmer", PolicyKind::Sampler, fastConfig());
    EXPECT_LT(sampler.llcMisses, lru.llcMisses);
    EXPECT_GT(sampler.ipc, lru.ipc);
}

TEST(Integration, DeadBlockReplacementImprovesEfficiency)
{
    RunConfig cfg = fastConfig();
    cfg.trackEfficiency = true;
    const auto lru = runSingleCore("456.hmmer", PolicyKind::Lru, cfg);
    const auto sampler =
        runSingleCore("456.hmmer", PolicyKind::Sampler, cfg);
    // Fig. 1: the dead-block cache is substantially more alive.
    EXPECT_GT(sampler.llcEfficiency, lru.llcEfficiency);
    EXPECT_EQ(lru.frameEfficiency.size(), 2048u * 16);
}

TEST(Integration, OptimalLowerBoundsEveryPolicy)
{
    RunConfig cfg = fastConfig(200000);
    cfg.recordLlcTrace = true;
    const auto lru = runSingleCore("450.soplex", PolicyKind::Lru, cfg);
    const auto opt = optimalMisses(lru.llcTrace, 2048, 16, true,
                                   lru.llcTraceMeasureStart);
    EXPECT_LE(opt.misses, lru.llcMisses);
    for (PolicyKind kind : {PolicyKind::Sampler, PolicyKind::Dip,
                            PolicyKind::Rrip}) {
        const auto r = runSingleCore("450.soplex", kind, cfg);
        EXPECT_LE(opt.misses, r.llcMisses)
            << "policy " << policyName(kind);
    }
}

TEST(Integration, RandomSamplerRecoversRandomLoss)
{
    // Sec. VII-B: sampler + random default beats plain random.
    const auto rnd =
        runSingleCore("456.hmmer", PolicyKind::Random, fastConfig());
    const auto rs = runSingleCore("456.hmmer", PolicyKind::RandomSampler,
                                  fastConfig());
    EXPECT_LT(rs.llcMisses, rnd.llcMisses);
}

TEST(Integration, SamplerCoverageIsModerateAndFpLow)
{
    const auto r = runSingleCore("462.libquantum", PolicyKind::Sampler,
                                 fastConfig());
    ASSERT_TRUE(r.hasDbrb);
    EXPECT_GT(r.dbrb.coverage(), 0.1);
    // False positives must stay far below coverage (Fig. 9).
    EXPECT_LT(r.dbrb.falsePositiveRate(),
              r.dbrb.coverage() * 0.5 + 0.05);
}

TEST(Integration, AstarResistsPrediction)
{
    const auto astar =
        runSingleCore("473.astar", PolicyKind::Sampler, fastConfig());
    const auto hmmer =
        runSingleCore("456.hmmer", PolicyKind::Sampler, fastConfig());
    ASSERT_TRUE(astar.hasDbrb);
    // The predictor keeps its head down on astar: lower coverage
    // than on a predictable benchmark.
    EXPECT_LT(astar.dbrb.coverage(), hmmer.dbrb.coverage());
}

TEST(Integration, DeterministicAcrossRuns)
{
    const auto a =
        runSingleCore("403.gcc", PolicyKind::Sampler, fastConfig());
    const auto b =
        runSingleCore("403.gcc", PolicyKind::Sampler, fastConfig());
    EXPECT_EQ(a.llcMisses, b.llcMisses);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.dbrb.positives, b.dbrb.positives);
}

TEST(Integration, MulticoreRunProducesPerThreadIpc)
{
    RunConfig cfg = RunConfig::quadCore();
    cfg.warmupInstructions = 50000;
    cfg.measureInstructions = 150000;
    const MixProfile &mix = multicoreMixes()[0];
    const auto r = runMulticore(mix, PolicyKind::Lru, cfg);
    ASSERT_EQ(r.ipc.size(), 4u);
    for (double ipc : r.ipc) {
        EXPECT_GT(ipc, 0.0);
        EXPECT_LE(ipc, 4.0);
    }
    EXPECT_GT(r.llcMisses, 0u);
}

TEST(Integration, WeightedSpeedupNormalizesToOneForLru)
{
    // A mix of four copies of the same benchmark with ample cache:
    // each thread's IPC is close to its isolated IPC, so the
    // weighted IPC is close to 4 (normalized weighted speedup ~1 for
    // LRU against itself by construction).
    RunConfig cfg = RunConfig::quadCore();
    cfg.warmupInstructions = 50000;
    cfg.measureInstructions = 150000;
    MixProfile mix{"self",
                   {"416.gamess", "416.gamess", "416.gamess",
                    "416.gamess"}};
    const auto r = runMulticore(mix, PolicyKind::Lru, cfg);
    const double w = weightedIpc(r, cfg);
    EXPECT_NEAR(w, 4.0, 0.6);
}

TEST(Integration, SamplerImprovesSharedCacheMix)
{
    RunConfig cfg = RunConfig::quadCore();
    cfg.warmupInstructions = 500000;
    cfg.measureInstructions = 1000000;
    const MixProfile &mix = multicoreMixes()[0]; // mcf/hmmer/libq/omnetpp
    const auto lru = runMulticore(mix, PolicyKind::Lru, cfg);
    const auto sampler = runMulticore(mix, PolicyKind::Sampler, cfg);
    EXPECT_LT(sampler.llcMisses, lru.llcMisses);
}

TEST(Integration, BiggerL2FiltersMoreLlcTraffic)
{
    // The LLC reference stream is the L2 miss stream: growing the
    // mid-level cache must shrink it (the effect that breaks
    // trace-based predictors in the paper, Sec. VII-A3).
    std::uint64_t prev = ~0ull;
    for (std::uint32_t l2_sets : {128u, 512u, 2048u}) {
        RunConfig cfg = fastConfig(400000);
        cfg.hierarchy.l2.numSets = l2_sets;
        const auto r =
            runSingleCore("456.hmmer", PolicyKind::Lru, cfg);
        EXPECT_LT(r.llcAccesses, prev);
        prev = r.llcAccesses;
    }
}

TEST(Integration, BypassFreezesResidentsOnPureScans)
{
    // On a cyclic scan larger than the LLC, dead-on-arrival bypass
    // stops evictions almost entirely: the resident snapshot keeps
    // hitting every lap (the libquantum mechanism).
    const auto lru = runSingleCore("462.libquantum", PolicyKind::Lru,
                                   fastConfig());
    const auto smp = runSingleCore("462.libquantum",
                                   PolicyKind::Sampler, fastConfig());
    ASSERT_TRUE(smp.hasDbrb);
    // Most sampler misses are bypasses rather than evictions.
    EXPECT_GT(smp.llcBypasses * 2, smp.llcMisses);
    EXPECT_LT(smp.llcMisses, lru.llcMisses);
}

TEST(Integration, IsolatedIpcIsMemoized)
{
    RunConfig cfg = RunConfig::quadCore();
    cfg.warmupInstructions = 20000;
    cfg.measureInstructions = 50000;
    const double a = isolatedIpc("445.gobmk", cfg);
    const double b = isolatedIpc("445.gobmk", cfg);
    EXPECT_EQ(a, b);
    EXPECT_GT(a, 0.0);
}

} // anonymous namespace
} // namespace sdbp
