/**
 * @file
 * Tests for `util::ThreadPool`: task completion, return values,
 * exception propagation through futures, inline execution with zero
 * workers, FIFO ordering with one worker, and genuine concurrency
 * with two.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hh"

namespace sdbp
{
namespace
{

TEST(ThreadPool, SubmitReturnsValue)
{
    util::ThreadPool pool(2);
    auto fut = pool.submit([] { return 6 * 7; });
    EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, CompletesAllTasks)
{
    util::ThreadPool pool(3);
    std::atomic<int> done{0};
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 100; ++i)
        futs.push_back(pool.submit([&done] { ++done; }));
    for (auto &f : futs)
        f.get();
    EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, DestructorDrainsQueue)
{
    std::atomic<int> done{0};
    {
        util::ThreadPool pool(1);
        for (int i = 0; i < 50; ++i)
            pool.submit([&done] {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(50));
                ++done;
            });
        // Destructor must finish every queued task before joining.
    }
    EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    util::ThreadPool pool(2);
    auto fut = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(
        {
            try {
                fut.get();
            } catch (const std::runtime_error &e) {
                EXPECT_STREQ(e.what(), "boom");
                throw;
            }
        },
        std::runtime_error);

    // The pool must survive a throwing task and keep serving.
    EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ZeroWorkersRunsInline)
{
    util::ThreadPool pool(0);
    const auto caller = std::this_thread::get_id();
    auto fut = pool.submit([caller] {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        return 1;
    });
    // Inline execution means the future is ready at submit return.
    ASSERT_EQ(fut.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(fut.get(), 1);
}

TEST(ThreadPool, SingleWorkerPreservesFifoOrder)
{
    util::ThreadPool pool(1);
    std::vector<int> order;
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 20; ++i)
        futs.push_back(pool.submit([&order, i] {
            order.push_back(i); // single worker: no race
        }));
    for (auto &f : futs)
        f.get();
    ASSERT_EQ(order.size(), 20u);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, TwoWorkersRunConcurrently)
{
    util::ThreadPool pool(2);
    std::promise<void> gate;
    std::shared_future<void> open = gate.get_future().share();

    // Task A blocks on the gate; task B opens it.  This deadlocks
    // unless both tasks genuinely run on distinct workers.
    auto a = pool.submit([open] { open.wait(); return 1; });
    auto b = pool.submit([&gate] { gate.set_value(); return 2; });
    EXPECT_EQ(b.get(), 2);
    EXPECT_EQ(a.get(), 1);
}

} // namespace
} // namespace sdbp
