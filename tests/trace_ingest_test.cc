/**
 * @file
 * Tests for the real-trace pipeline (DESIGN.md §17): ChampSim
 * record/replay round-trips bit-identically through the simulator,
 * compressed traces stream in bounded memory, corrupt traces die
 * with one-line diagnostics, interval selection is deterministic,
 * and a trace-driven sweep grid under the multi-process fabric
 * (TraceSpec through the manifest JSON) matches the serial run.
 *
 * This binary has a custom main(): sweep::maybeWorkerMain must run
 * before InitGoogleTest so the binary can host worker subprocesses.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/runner.hh"
#include "sim/sweep.hh"
#include "sim/worker.hh"
#include "trace/champsim.hh"
#include "trace/interval_select.hh"
#include "trace/spec_profiles.hh"
#include "trace/trace_file.hh"
#include "trace/trace_reader.hh"
#include "trace/trace_source.hh"
#include "trace/workload.hh"
#include "util/file.hh"

namespace sdbp
{
namespace
{

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

void
writeBytes(const std::string &path, const void *data, std::size_t n)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(data, 1, n, f), n);
    std::fclose(f);
}

std::vector<Access>
drainReader(TraceReader &reader)
{
    std::vector<Access> out;
    Access batch[256];
    for (;;) {
        const std::size_t n =
            reader.readBatch(std::span<Access>(batch));
        if (n == 0)
            break;
        out.insert(out.end(), batch, batch + n);
    }
    return out;
}

void
expectSameAccess(const Access &got, const Access &want,
                 std::size_t index)
{
    EXPECT_EQ(got.pc, want.pc) << "record " << index;
    EXPECT_EQ(got.addr, want.addr) << "record " << index;
    EXPECT_EQ(got.gap, want.gap) << "record " << index;
    EXPECT_EQ(got.isWrite, want.isWrite) << "record " << index;
    EXPECT_EQ(got.dependsOnPrevLoad, want.dependsOnPrevLoad)
        << "record " << index;
}

TEST(ChampSim, RecordDecodeRoundTripPreservesEveryField)
{
    // mcf leans on pointer-chase streams, so dependsOnPrevLoad is
    // exercised — including on the very first record.
    const std::string path = tempPath("roundtrip.champsim");
    SyntheticWorkload gen(specProfile("429.mcf"));
    recordChampSimTrace(gen, 40000, path);

    gen.reset();
    ChampSimTraceReader reader(path);
    const auto decoded = drainReader(reader);
    ASSERT_GT(decoded.size(), 1000u);
    bool saw_dep = false, saw_write = false, saw_gap = false;
    for (std::size_t i = 0; i < decoded.size(); ++i) {
        const Access want = gen.next();
        expectSameAccess(decoded[i], want, i);
        saw_dep |= want.dependsOnPrevLoad;
        saw_write |= want.isWrite;
        saw_gap |= want.gap > 0;
    }
    EXPECT_TRUE(saw_dep);
    EXPECT_TRUE(saw_write);
    EXPECT_TRUE(saw_gap);

    // rewind restarts the decode from the first record.
    reader.rewind();
    const auto again = drainReader(reader);
    ASSERT_EQ(again.size(), decoded.size());
    expectSameAccess(again[0], decoded[0], 0);
    std::remove(path.c_str());
}

TEST(ChampSim, RecordedTraceReplaysBitIdentically)
{
    const std::string path = tempPath("replay.champsim");
    const std::string benchmark = "456.hmmer";
    RunConfig cfg = RunConfig::singleCore();
    cfg.warmupInstructions = 20000;
    cfg.measureInstructions = 100000;

    // Record with slack beyond the run's budget so the replay never
    // wraps mid-run (the batched decode reads slightly past it).
    SyntheticWorkload gen(specProfile(benchmark));
    recordChampSimTrace(gen,
                        cfg.warmupInstructions +
                            cfg.measureInstructions + 8192,
                        path);

    const RunResult direct =
        runSingleCore(benchmark, PolicyKind::Sampler, cfg);
    RunConfig replay_cfg = cfg;
    replay_cfg.trace.kind = TraceKind::ChampSim;
    replay_cfg.trace.path = path;
    const RunResult replayed =
        runSingleCore(benchmark, PolicyKind::Sampler, replay_cfg);

    EXPECT_EQ(replayed.instructions, direct.instructions);
    EXPECT_EQ(replayed.cycles, direct.cycles);
    EXPECT_EQ(replayed.ipc, direct.ipc);
    EXPECT_EQ(replayed.mpki, direct.mpki);
    EXPECT_EQ(replayed.llcAccesses, direct.llcAccesses);
    EXPECT_EQ(replayed.llcMisses, direct.llcMisses);
    EXPECT_EQ(replayed.llcBypasses, direct.llcBypasses);
    std::remove(path.c_str());
}

TEST(TraceIngest, OpenTraceReaderDispatchesNativeByMagic)
{
    const std::string path = tempPath("dispatch.sdbptrace");
    SyntheticWorkload gen(specProfile("429.mcf"));
    captureTrace(gen, 300, path);

    const auto reader = openTraceReader(path);
    ASSERT_NE(dynamic_cast<NativeTraceReader *>(reader.get()),
              nullptr);
    gen.reset();
    const auto decoded = drainReader(*reader);
    ASSERT_EQ(decoded.size(), 300u);
    for (std::size_t i = 0; i < decoded.size(); ++i)
        expectSameAccess(decoded[i], gen.next(), i);
    std::remove(path.c_str());
}

TEST(TraceIngestDeathTest, CorruptTracesDieWithOneLineDiagnostics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";

    const std::string empty = tempPath("empty.trace");
    writeBytes(empty, "", 0);
    EXPECT_EXIT(openTraceReader(empty), testing::ExitedWithCode(1),
                "is empty");

    const std::string missing = tempPath("no-such-dir/nope.trace");
    EXPECT_EXIT(openTraceReader(missing), testing::ExitedWithCode(1),
                "cannot open trace file");

    // Junk that is not a multiple of the ChampSim record size.
    const std::string junk = tempPath("junk.trace");
    const char bytes[100] = {12, 34, 56};
    writeBytes(junk, bytes, sizeof(bytes));
    EXPECT_EXIT(drainReader(*openTraceReader(junk)),
                testing::ExitedWithCode(1),
                "truncated ChampSim record");

    // Native magic with an unsupported version.
    const std::string badver = tempPath("badver.sdbptrace");
    const NativeTraceHeader header{kNativeTraceMagic, 99, 0};
    writeBytes(badver, &header, sizeof(header));
    EXPECT_EXIT(openTraceReader(badver), testing::ExitedWithCode(1),
                "unsupported trace version");

    // Native header declaring more records than the file holds.
    const std::string shortfile = tempPath("short.sdbptrace");
    {
        TraceWriter writer(shortfile);
        writer.append(Access{});
        writer.close();
        NativeTraceHeader lying{kNativeTraceMagic,
                                kNativeTraceVersion, 10};
        std::FILE *f = std::fopen(shortfile.c_str(), "rb+");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fwrite(&lying, sizeof(lying), 1, f), 1u);
        std::fclose(f);
    }
    EXPECT_EXIT(readTraceFile(shortfile), testing::ExitedWithCode(1),
                "truncated record");

    std::remove(empty.c_str());
    std::remove(junk.c_str());
    std::remove(badver.c_str());
    std::remove(shortfile.c_str());
}

TEST(TraceIngest, GzTraceStreamsInBoundedMemory)
{
    const std::string path = tempPath("bounded.champsim");
    SyntheticWorkload gen(specProfile("462.libquantum"));
    recordChampSimTrace(gen, 120000, path);
    if (std::system(("gzip -f '" + path + "'").c_str()) != 0)
        GTEST_SKIP() << "gzip unavailable";
    const std::string gz = path + ".gz";

    constexpr std::size_t kRing = 256;
    TraceReplayGenerator replay(openTraceReader(gz), kRing);
    ASSERT_TRUE(replay.streaming());
    gen.reset();
    std::size_t checked = 0;
    Access batch[100];
    for (int round = 0; round < 50; ++round) {
        replay.nextBatch(std::span<Access>(batch));
        // The ring bounds decoded-record memory no matter how much
        // of the trace has streamed through.
        EXPECT_LE(replay.bufferedRecords(), kRing);
        for (const Access &rec : batch)
            expectSameAccess(rec, gen.next(), checked++);
    }
    EXPECT_EQ(replay.loops(), 0u);

    // reset() replays the stream from the start.
    replay.reset();
    gen.reset();
    replay.nextBatch(std::span<Access>(batch));
    for (std::size_t i = 0; i < 100; ++i)
        expectSameAccess(batch[i], gen.next(), i);
    std::remove(gz.c_str());
}

TEST(TraceIngest, StreamingReplayWrapsLikeInMemoryReplay)
{
    const std::string path = tempPath("wrap.sdbptrace");
    SyntheticWorkload gen(specProfile("470.lbm"));
    captureTrace(gen, 1000, path);

    TraceReplayGenerator streamed(openTraceReader(path), 128);
    TraceReplayGenerator inmem(readTraceFile(path));
    Access a[64], b[64];
    for (int round = 0; round < 40; ++round) {
        streamed.nextBatch(std::span<Access>(a));
        inmem.nextBatch(std::span<Access>(b));
        for (std::size_t i = 0; i < 64; ++i)
            expectSameAccess(a[i], b[i],
                             static_cast<std::size_t>(round) * 64 + i);
    }
    EXPECT_GT(streamed.loops(), 0u);
    // The first wrap teaches the streaming generator the length.
    EXPECT_EQ(streamed.size(), 1000u);
    std::remove(path.c_str());
}

TEST(IntervalSelect, SelectionIsDeterministic)
{
    SyntheticWorkload gen(specProfile("429.mcf"));
    std::vector<Access> records;
    for (int i = 0; i < 20000; ++i)
        records.push_back(gen.next());

    IntervalSelectConfig cfg;
    cfg.intervalInstructions = 2000;
    cfg.clusters = 4;
    VectorTraceReader r1(records), r2(records);
    const IntervalSelection a = selectIntervals(r1, cfg);
    const IntervalSelection b = selectIntervals(r2, cfg);

    ASSERT_EQ(a.reps.size(), b.reps.size());
    ASSERT_LE(a.reps.size(), 4u);
    double weight_sum = 0;
    for (std::size_t i = 0; i < a.reps.size(); ++i) {
        EXPECT_EQ(a.reps[i].interval, b.reps[i].interval);
        EXPECT_EQ(a.reps[i].weight, b.reps[i].weight);
        weight_sum += a.reps[i].weight;
    }
    EXPECT_NEAR(weight_sum, 1.0, 1e-9);
    ASSERT_EQ(a.intervals.size(), b.intervals.size());
    for (std::size_t i = 0; i < a.intervals.size(); ++i)
        EXPECT_EQ(a.intervals[i].cluster, b.intervals[i].cluster);

    // collectIntervals returns exactly the records of each interval.
    VectorTraceReader r3(records);
    const auto got = collectIntervals(
        r3, a, {a.reps[0].interval, a.reps[0].interval});
    ASSERT_EQ(got.size(), 2u);
    const TraceInterval &iv = a.intervals[a.reps[0].interval];
    ASSERT_EQ(got[0].size(), iv.recordCount);
    EXPECT_EQ(got[0].size(), got[1].size());
    for (std::size_t i = 0; i < got[0].size(); ++i)
        expectSameAccess(got[0][i], records[iv.firstRecord + i], i);
}

/** Serial vs fabric comparison for trace-driven cells. */
void
expectSameResult(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.mpki, b.mpki);
    EXPECT_EQ(a.llcMisses, b.llcMisses);
    EXPECT_EQ(a.intervalSelected, b.intervalSelected);
    EXPECT_EQ(a.traceInstructions, b.traceInstructions);
    EXPECT_EQ(a.intervalsTotal, b.intervalsTotal);
    EXPECT_EQ(a.intervalsSimulated, b.intervalsSimulated);
    EXPECT_EQ(a.simulatedInstructions, b.simulatedInstructions);
}

TEST(TraceSweep, IntervalSelectedGridMatchesSerialUnderWorkers)
{
    // Record one trace; every cell of the grid replays it with
    // interval selection, so the TraceSpec must survive the manifest
    // JSON round trip into the worker processes.
    const std::string path =
        tempPath("sweep.champsim"); // absolute: workers share it
    SyntheticWorkload gen(specProfile("462.libquantum"));
    recordChampSimTrace(gen, 200000, path);

    RunConfig cfg = RunConfig::singleCore();
    cfg.trace.kind = TraceKind::ChampSim;
    cfg.trace.path = path;
    cfg.trace.intervalInstructions = 20000;
    cfg.trace.selectClusters = 2;

    const std::vector<std::string> runs = {"trace"};
    const std::vector<PolicyKind> policies = {PolicyKind::Lru,
                                              PolicyKind::Sampler};

    sweep::SweepOptions serial_opts;
    serial_opts.jobs = 1;
    const sweep::Grid serial =
        sweep::runGrid(runs, policies, cfg, serial_opts);
    ASSERT_TRUE(serial.ok());
    const RunResult &probe = serial.at(0, 0);
    EXPECT_TRUE(probe.intervalSelected);
    EXPECT_EQ(probe.intervalsSimulated, 2u);
    EXPECT_GT(probe.traceInstructions, 190000u);
    EXPECT_LT(probe.simulatedInstructions, probe.traceInstructions);

    if (!sweep::workerCapable())
        GTEST_SKIP() << "no worker fabric on this platform";
    sweep::SweepOptions opts;
    opts.workers = 2;
    opts.manifestPath =
        tempPath("trace_sweep.manifest.json");
    std::remove(opts.manifestPath.c_str());
    std::remove((opts.manifestPath + ".lock").c_str());
    const sweep::Grid fabric =
        sweep::runGrid(runs, policies, cfg, opts);
    ASSERT_TRUE(fabric.ok());
    for (std::size_t p = 0; p < policies.size(); ++p)
        expectSameResult(fabric.at(0, p), serial.at(0, p));

    std::remove(opts.manifestPath.c_str());
    std::remove((opts.manifestPath + ".lock").c_str());
    std::remove(path.c_str());
}

} // anonymous namespace
} // namespace sdbp

int
main(int argc, char **argv)
{
    // Must precede InitGoogleTest: in a worker invocation this never
    // returns, and in a normal one it unlocks worker spawning.
    sdbp::sweep::maybeWorkerMain(argc, argv);
    testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
