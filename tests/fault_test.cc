/**
 * @file
 * Tests for the soft-error fault injection subsystem (`src/fault`,
 * DESIGN.md §11): injector unit behavior (addressing, determinism,
 * rate convergence, freeze semantics), end-to-end determinism of
 * faulty runs across repetitions and job counts, and the safety
 * property that faults degrade prediction quality without corrupting
 * architectural state or structural invariants.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "fault/fault_injector.hh"
#include "sim/runner.hh"
#include "sim/sweep.hh"
#include "trace/spec_profiles.hh"

namespace sdbp
{
namespace
{

RunConfig
tinyConfig()
{
    RunConfig cfg = RunConfig::singleCore();
    cfg.warmupInstructions = 50000;
    cfg.measureInstructions = 200000;
    return cfg;
}

RunConfig
faultyConfig(std::uint64_t rate, std::uint64_t seed = 0x5eed)
{
    RunConfig cfg = tinyConfig();
    cfg.policy.dbrb.fault.faultsPerMillion = rate;
    cfg.policy.dbrb.fault.seed = seed;
    return cfg;
}

TEST(FaultInjector, DisabledAtRateZero)
{
    fault::FaultInjectorConfig cfg;
    EXPECT_FALSE(cfg.enabled());
    fault::FaultInjector inj(cfg);
    inj.addTarget({"t", 4, 8, [](std::uint64_t, unsigned) {
                       FAIL() << "flip with injection disabled";
                   }});
    for (int i = 0; i < 10000; ++i)
        inj.onAccess();
    EXPECT_EQ(inj.injected(), 0u);
}

TEST(FaultInjector, FlipsStayInsideTargetBounds)
{
    fault::FaultInjectorConfig cfg;
    cfg.faultsPerMillion = 1'000'000; // one flip per access
    fault::FaultInjector inj(cfg);
    std::uint64_t small = 0;
    std::uint64_t large = 0;
    inj.addTarget({"small", 3, 2, [&](std::uint64_t w, unsigned b) {
                       EXPECT_LT(w, 3u);
                       EXPECT_LT(b, 2u);
                       ++small;
                   }});
    inj.addTarget({"large", 64, 15, [&](std::uint64_t w, unsigned b) {
                       EXPECT_LT(w, 64u);
                       EXPECT_LT(b, 15u);
                       ++large;
                   }});
    EXPECT_EQ(inj.injectedInto("small"), 0u);

    const int accesses = 20000;
    for (int i = 0; i < accesses; ++i)
        inj.onAccess();

    EXPECT_EQ(inj.totalBits(), 3u * 2u + 64u * 15u);
    EXPECT_EQ(inj.injected(), static_cast<std::uint64_t>(accesses));
    EXPECT_EQ(small + large, inj.injected());
    EXPECT_EQ(inj.injectedInto("small"), small);
    EXPECT_EQ(inj.injectedInto("large"), large);
    EXPECT_EQ(inj.injectedInto("missing"), 0u);
    // Uniform over bits: the large target owns 960 of 966 bits, so
    // it must absorb nearly every flip.
    EXPECT_GT(large, small);
}

TEST(FaultInjector, SameSeedSameFaultSequence)
{
    auto record = [](std::uint64_t seed) {
        fault::FaultInjectorConfig cfg;
        cfg.faultsPerMillion = 250'000;
        cfg.seed = seed;
        fault::FaultInjector inj(cfg);
        std::vector<std::pair<std::uint64_t, unsigned>> flips;
        inj.addTarget({"a", 16, 4, [&](std::uint64_t w, unsigned b) {
                           flips.emplace_back(w, b);
                       }});
        inj.addTarget({"b", 7, 1, [&](std::uint64_t w, unsigned b) {
                           flips.emplace_back(1000 + w, b);
                       }});
        for (int i = 0; i < 5000; ++i)
            inj.onAccess();
        return flips;
    };

    const auto first = record(42);
    EXPECT_FALSE(first.empty());
    EXPECT_EQ(first, record(42));
    EXPECT_NE(first, record(43));
}

TEST(FaultInjector, RateConvergesOnConfiguredValue)
{
    fault::FaultInjectorConfig cfg;
    cfg.faultsPerMillion = 100'000; // 10 %
    fault::FaultInjector inj(cfg);
    inj.addTarget({"t", 8, 8, [](std::uint64_t, unsigned) {}});
    const int accesses = 100000;
    for (int i = 0; i < accesses; ++i)
        inj.onAccess();
    const double observed =
        static_cast<double>(inj.injected()) / accesses;
    EXPECT_NEAR(observed, 0.1, 0.01);
}

TEST(FaultInjectorDeathTest, LateTargetRegistrationPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    fault::FaultInjectorConfig cfg;
    cfg.faultsPerMillion = 1;
    fault::FaultInjector inj(cfg);
    inj.addTarget({"t", 1, 1, [](std::uint64_t, unsigned) {}});
    inj.onAccess(); // freezes the bit map
    EXPECT_DEATH(
        inj.addTarget({"late", 1, 1, [](std::uint64_t, unsigned) {}}),
        "after freeze");
}

/** Policies whose predictors expose fault targets. */
const std::vector<PolicyKind> kFaultablePolicies = {
    PolicyKind::Sampler, PolicyKind::Tdbp, PolicyKind::Cdbp};

TEST(FaultDeterminism, RepeatedRunsAreBitIdentical)
{
    const RunConfig cfg = faultyConfig(10000);
    const std::string bench = memoryIntensiveSubset().front();
    for (const PolicyKind kind : kFaultablePolicies) {
        const RunResult a = runSingleCore(bench, kind, cfg);
        const RunResult b = runSingleCore(bench, kind, cfg);
        EXPECT_GT(a.faultsInjected, 0u) << policyName(kind);
        EXPECT_EQ(a.faultsInjected, b.faultsInjected);
        EXPECT_EQ(a.cycles, b.cycles);
        EXPECT_EQ(a.llcMisses, b.llcMisses);
        EXPECT_EQ(a.llcBypasses, b.llcBypasses);
        EXPECT_EQ(a.dbrb.predictions, b.dbrb.predictions);
        EXPECT_EQ(a.dbrb.positives, b.dbrb.positives);
        EXPECT_EQ(a.dbrb.deadEvictions, b.dbrb.deadEvictions);
    }
}

TEST(FaultDeterminism, IndependentOfJobCount)
{
    const RunConfig cfg = faultyConfig(10000);
    const auto &subset = memoryIntensiveSubset();
    const std::vector<std::string> benchmarks(subset.begin(),
                                              subset.begin() + 3);

    const sweep::Grid serial =
        sweep::runGrid(benchmarks, kFaultablePolicies, cfg, 1);
    const sweep::Grid parallel =
        sweep::runGrid(benchmarks, kFaultablePolicies, cfg, 4);
    ASSERT_EQ(serial.cells.size(), parallel.cells.size());
    for (std::size_t i = 0; i < serial.cells.size(); ++i) {
        const RunResult &a = serial.cells[i];
        const RunResult &b = parallel.cells[i];
        EXPECT_GT(a.faultsInjected, 0u);
        EXPECT_EQ(a.faultsInjected, b.faultsInjected);
        EXPECT_EQ(a.cycles, b.cycles);
        EXPECT_EQ(a.llcMisses, b.llcMisses);
        EXPECT_EQ(a.mpki, b.mpki);
    }
}

TEST(FaultDeterminism, SeedAndRateChangeTheSequence)
{
    const std::string bench = memoryIntensiveSubset().front();
    const RunResult base =
        runSingleCore(bench, PolicyKind::Sampler, faultyConfig(10000));
    const RunResult reseeded = runSingleCore(
        bench, PolicyKind::Sampler, faultyConfig(10000, 0x0ddba11));
    const RunResult hotter =
        runSingleCore(bench, PolicyKind::Sampler, faultyConfig(100000));
    // Different seed: same expected rate, different draw sequence.
    EXPECT_NE(base.faultsInjected, 0u);
    EXPECT_NE(reseeded.faultsInjected, 0u);
    // Higher rate: strictly more faults over the same run.
    EXPECT_GT(hotter.faultsInjected, base.faultsInjected);
}

TEST(FaultSafety, MaxRateDegradesButNeverCorrupts)
{
    // One fault per consultation — far beyond any physical soft-error
    // rate.  The run must complete, pass every invariant audit
    // (runSingleCore re-audits after the run), and retire exactly the
    // configured instruction budget: faults reach prediction quality
    // only, never architectural state.
    const RunConfig cfg = faultyConfig(1'000'000);
    const std::string bench = memoryIntensiveSubset().front();
    for (const PolicyKind kind : kFaultablePolicies) {
        const RunResult res = runSingleCore(bench, kind, cfg);
        // Cores may retire a handful of instructions past the budget
        // (superscalar overshoot), never fewer.
        EXPECT_GE(res.instructions, cfg.measureInstructions)
            << policyName(kind);
        EXPECT_LE(res.instructions, cfg.measureInstructions + 16)
            << policyName(kind);
        EXPECT_GT(res.faultsInjected, 0u) << policyName(kind);
        EXPECT_GT(res.cycles, 0u) << policyName(kind);
        EXPECT_GT(res.llcAccesses, 0u) << policyName(kind);
    }
}

TEST(FaultSafety, NonPredictorPoliciesIgnoreFaultConfig)
{
    // LRU has no predictor state: a fault config on the policy
    // options must be inert, not crash or change the run.
    const std::string bench = memoryIntensiveSubset().front();
    const RunResult clean =
        runSingleCore(bench, PolicyKind::Lru, tinyConfig());
    const RunResult faulty =
        runSingleCore(bench, PolicyKind::Lru, faultyConfig(1'000'000));
    EXPECT_EQ(faulty.faultsInjected, 0u);
    EXPECT_EQ(clean.llcMisses, faulty.llcMisses);
    EXPECT_EQ(clean.cycles, faulty.cycles);
}

TEST(FaultStats, InjectionCountersExported)
{
    RunConfig cfg = faultyConfig(100000);
    cfg.obs.collect = true;
    const std::string bench = memoryIntensiveSubset().front();
    const RunResult res =
        runSingleCore(bench, PolicyKind::Sampler, cfg);
    ASSERT_TRUE(res.artifacts);
    const auto &snap = res.artifacts->finalSnapshot;
    const auto *injected = snap.find("dbrb.faults.injected");
    ASSERT_NE(injected, nullptr);
    EXPECT_EQ(injected->counter, res.faultsInjected);
    const auto *surface = snap.find("dbrb.faults.surface_bits");
    ASSERT_NE(surface, nullptr);
    EXPECT_GT(surface->value, 0.0);
    // Per-target counters sum to the total.
    std::uint64_t per_target = 0;
    for (const auto &s : snap.samples)
        if (s.name.rfind("dbrb.faults.sampler.", 0) == 0 ||
            s.name.rfind("dbrb.faults.table.", 0) == 0)
            per_target += s.counter;
    EXPECT_EQ(per_target, res.faultsInjected);
}

} // anonymous namespace
} // namespace sdbp
