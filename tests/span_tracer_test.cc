/**
 * @file
 * Telemetry layer tests (DESIGN.md §14): SpanTracer semantics
 * (inertness, nesting, thread attribution, overflow, annotations),
 * Chrome trace_event export shape, Profiler span mirroring and host
 * counters, the PerfCounters no-op fallback, and sweep integration —
 * one cell span per grid cell with stdout staying silent.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "obs/json.hh"
#include "obs/profiler.hh"
#include "obs/span_tracer.hh"
#include "sim/runner.hh"
#include "sim/sweep.hh"
#include "util/perf_counters.hh"

namespace sdbp
{
namespace
{

using obs::JsonValue;
using obs::SpanRecord;
using obs::SpanTracer;

TEST(SpanTracer, DisabledTracerIsInert)
{
    SpanTracer tracer(16);
    ASSERT_FALSE(tracer.enabled());
    {
        auto s = tracer.span("cell", "x/y");
        EXPECT_FALSE(s.active());
        s.setFailed(true); // must be callable on an inert handle
    }
    tracer.emit("phase", "warmup", {}, {});
    EXPECT_EQ(tracer.recorded(), 0u);
    EXPECT_EQ(tracer.size(), 0u);
    EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(SpanTracer, RecordsNamesCategoriesAndNesting)
{
    SpanTracer tracer(16);
    tracer.setEnabled(true);
    {
        auto outer = tracer.span("cell", "hmmer/Sampler");
        auto inner = tracer.span("phase", "measure");
        EXPECT_TRUE(outer.active());
        EXPECT_TRUE(inner.active());
    }
    ASSERT_EQ(tracer.size(), 2u);
    const auto spans = tracer.snapshot();
    // Start-time order: outer began first.
    EXPECT_EQ(spans[0].name, "hmmer/Sampler");
    EXPECT_EQ(spans[0].category, "cell");
    EXPECT_EQ(spans[0].depth, 0u);
    EXPECT_EQ(spans[1].name, "measure");
    EXPECT_EQ(spans[1].category, "phase");
    EXPECT_EQ(spans[1].depth, 1u);
    EXPECT_EQ(spans[0].tid, spans[1].tid);
}

TEST(SpanTracer, AttributesSpansToThreads)
{
    SpanTracer tracer(64);
    tracer.setEnabled(true);
    auto worker = [&tracer] {
        auto s = tracer.span("cell", "w");
    };
    std::thread a(worker), b(worker);
    a.join();
    b.join();
    ASSERT_EQ(tracer.size(), 2u);
    const auto spans = tracer.snapshot();
    EXPECT_NE(spans[0].tid, spans[1].tid);
}

TEST(SpanTracer, OverflowDropsInsteadOfOverwriting)
{
    SpanTracer tracer(2);
    tracer.setEnabled(true);
    for (int i = 0; i < 5; ++i) {
        auto s = tracer.span("cell", "c" + std::to_string(i));
    }
    EXPECT_EQ(tracer.recorded(), 5u);
    EXPECT_EQ(tracer.size(), 2u);
    EXPECT_EQ(tracer.dropped(), 3u);
    // The stored spans are the first two; nothing was overwritten.
    const auto spans = tracer.snapshot();
    EXPECT_EQ(spans[0].name, "c0");
    EXPECT_EQ(spans[1].name, "c1");

    tracer.clear();
    EXPECT_EQ(tracer.recorded(), 0u);
    EXPECT_EQ(tracer.size(), 0u);
    EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(SpanTracer, AnnotationsRideAlong)
{
    SpanTracer tracer(16);
    tracer.setEnabled(true);
    {
        auto s = tracer.span("cell", "a/B");
        s.setAttempts(3);
        s.setFailed(/*timed_out=*/true);
    }
    {
        auto s = tracer.span("cell", "c/D");
        s.setResumed();
    }
    const auto spans = tracer.snapshot();
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0].attempts, 3u);
    EXPECT_TRUE(spans[0].failed);
    EXPECT_TRUE(spans[0].timedOut);
    EXPECT_TRUE(spans[1].resumed);
    EXPECT_FALSE(spans[1].failed);
}

TEST(SpanTracer, ChromeTraceExportIsValidAndShaped)
{
    SpanTracer tracer(16);
    tracer.setEnabled(true);
    {
        auto s = tracer.span("cell", "hmmer/Sampler");
        s.setAttempts(2);
        s.setFailed(false);
    }
    tracer.emit("phase", "warmup", {}, {}, "hmmer/Sampler");

    const std::string text = tracer.toChromeTrace().dump();
    std::string err;
    const auto doc = JsonValue::parse(text, &err);
    ASSERT_TRUE(doc.has_value()) << err;

    EXPECT_EQ(doc->find("schema")->asString(), "sdbp.trace_spans/1");
    EXPECT_EQ(doc->find("spans_recorded")->asUInt(), 2u);
    const JsonValue *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    ASSERT_EQ(events->size(), 2u);
    for (std::size_t i = 0; i < events->size(); ++i) {
        const JsonValue &e = events->at(i);
        // The Chrome trace_event complete-event contract.
        ASSERT_NE(e.find("name"), nullptr);
        ASSERT_NE(e.find("cat"), nullptr);
        EXPECT_EQ(e.find("ph")->asString(), "X");
        ASSERT_NE(e.find("ts"), nullptr);
        ASSERT_NE(e.find("dur"), nullptr);
        ASSERT_NE(e.find("pid"), nullptr);
        ASSERT_NE(e.find("tid"), nullptr);
        ASSERT_NE(e.find("args"), nullptr);
    }
    // Identify events by category: the emitted phase span carries a
    // zero begin stamp, so its sort position relative to the cell
    // span depends on whether the cell began within the epoch's
    // first microsecond.
    const JsonValue *cell = nullptr;
    const JsonValue *phase = nullptr;
    for (std::size_t i = 0; i < events->size(); ++i) {
        const JsonValue &e = events->at(i);
        (e.find("cat")->asString() == "cell" ? cell : phase) = &e;
    }
    ASSERT_NE(cell, nullptr);
    ASSERT_NE(phase, nullptr);
    EXPECT_EQ(cell->find("args")->find("attempts")->asUInt(), 2u);
    EXPECT_TRUE(cell->find("args")->find("failed")->asBool());
    EXPECT_EQ(phase->find("args")->find("cell")->asString(),
              "hmmer/Sampler");
}

TEST(SpanTracer, ProfilerMirrorsScopesAsPhaseSpans)
{
    SpanTracer tracer(16);
    tracer.setEnabled(true);
    obs::Profiler prof;
    prof.mirrorSpans(&tracer, "456.hmmer/Sampler");
    {
        auto s = prof.scope("warmup");
    }
    {
        auto s = prof.scope("measure");
    }
    ASSERT_EQ(tracer.size(), 2u);
    const auto spans = tracer.snapshot();
    EXPECT_EQ(spans[0].category, "phase");
    EXPECT_EQ(spans[0].cell, "456.hmmer/Sampler");
    std::set<std::string> names{spans[0].name, spans[1].name};
    EXPECT_TRUE(names.count("warmup"));
    EXPECT_TRUE(names.count("measure"));
}

TEST(PerfCounters, FallbackIsExplicitNoop)
{
    util::PerfCounters pc;
    // Whatever the host supports, the API must stay callable and the
    // valid flag must tell the truth.
    pc.start();
    pc.stop();
    const auto s = pc.sample();
    EXPECT_EQ(s.valid, pc.available());
    if (!pc.available()) {
        EXPECT_EQ(s.cycles, 0u);
        EXPECT_EQ(s.instructions, 0u);
        EXPECT_EQ(s.hostIpc(), 0.0);
    }
}

TEST(PerfCounters, DefaultSampleIsInvalid)
{
    const util::PerfCounters::Sample s{};
    EXPECT_FALSE(s.valid);
    EXPECT_EQ(s.hostIpc(), 0.0);
}

TEST(PerfCounters, CountsWorkWhenAvailable)
{
    util::PerfCounters pc;
    if (!pc.available())
        GTEST_SKIP() << "perf_event unavailable on this host";
    pc.start();
    // Burn some cycles the compiler cannot elide.
    std::atomic<std::uint64_t> sink{0};
    for (int i = 0; i < 100000; ++i)
        sink.fetch_add(i, std::memory_order_relaxed);
    pc.stop();
    const auto s = pc.sample();
    EXPECT_TRUE(s.valid);
    EXPECT_GT(s.instructions, 0u);
    EXPECT_GT(s.cycles, 0u);
}

/** Sweep integration: every grid cell leaves exactly one cell span,
 *  phases are attributed, and stdout stays byte-silent. */
TEST(SpanTracer, SweepEmitsOneCellSpanPerCellAndNoStdout)
{
    SpanTracer &tracer = SpanTracer::global();
    const bool was_enabled = tracer.enabled();
    tracer.setEnabled(true);
    tracer.clear();

    RunConfig cfg = RunConfig::singleCore();
    cfg.warmupInstructions = 5000;
    cfg.measureInstructions = 20000;
    sweep::SweepOptions opts;
    opts.jobs = 2;

    ::testing::internal::CaptureStdout();
    const sweep::Grid grid = sweep::runGrid(
        {"456.hmmer", "462.libquantum"},
        {PolicyKind::Lru, PolicyKind::Sampler}, cfg, opts);
    const std::string out = ::testing::internal::GetCapturedStdout();

    tracer.setEnabled(was_enabled);
    ASSERT_TRUE(grid.ok());
    EXPECT_EQ(out, "") << "sweep wrote to stdout with tracing on";

    std::multiset<std::string> cells;
    std::size_t phases = 0;
    for (const SpanRecord &s : tracer.snapshot()) {
        if (s.category == "cell")
            cells.insert(s.name);
        else if (s.category == "phase") {
            ++phases;
            EXPECT_FALSE(s.cell.empty());
        }
    }
    for (const char *bench : {"456.hmmer", "462.libquantum"})
        for (const char *pol : {"LRU", "Sampler"})
            EXPECT_EQ(cells.count(std::string(bench) + "/" + pol), 1u)
                << bench << "/" << pol;
    // Each cell runs a warmup and a measure phase.
    EXPECT_GE(phases, 8u);
    tracer.clear();
}

} // anonymous namespace
} // namespace sdbp
