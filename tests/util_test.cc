/**
 * @file
 * Unit tests for the util substrate: bit ops, saturating counters,
 * hashing, RNG, statistics and table formatting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "util/bitops.hh"
#include "util/hash.hh"
#include "util/rng.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "util/types.hh"

namespace sdbp
{
namespace
{

TEST(BitOps, IsPowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(1ull << 40));
    EXPECT_FALSE(isPowerOfTwo((1ull << 40) + 1));
}

TEST(BitOps, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(2048), 11u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1ull << 63), 63u);
}

TEST(BitOps, Mask)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(15), 0x7fffu);
    EXPECT_EQ(mask(64), ~std::uint64_t(0));
}

TEST(BitOps, BitsExtract)
{
    EXPECT_EQ(bits(0xabcd, 4, 8), 0xbcu);
    EXPECT_EQ(bits(0xff00, 8, 8), 0xffu);
    EXPECT_EQ(bits(0xff00, 0, 8), 0x00u);
}

TEST(SatCounterTest, SaturatesHigh)
{
    SatCounter<2> c;
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 3u);
}

TEST(SatCounterTest, SaturatesLow)
{
    SatCounter<2> c(3);
    for (int i = 0; i < 10; ++i)
        c.decrement();
    EXPECT_EQ(c.value(), 0u);
}

TEST(SatCounterTest, InitialAndReset)
{
    SatCounter<4> c(9);
    EXPECT_EQ(c.value(), 9u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Hash, SignatureIsBounded)
{
    for (PC pc : {0x400000ull, 0x400004ull, 0xdeadbeefull})
        EXPECT_LE(makeSignature(pc, 15), mask(15));
}

TEST(Hash, NearbyPcsGetDistinctSignatures)
{
    // The low bits of the PC must still influence the signature.
    std::set<std::uint64_t> sigs;
    for (PC pc = 0x400000; pc < 0x400000 + 64 * 4; pc += 4)
        sigs.insert(makeSignature(pc, 15));
    EXPECT_GE(sigs.size(), 60u); // near-collision-free for 64 PCs
}

TEST(Hash, SkewHashesAreIndependent)
{
    // Two signatures that collide in one table should generally not
    // collide in the others.
    unsigned joint_collisions = 0;
    unsigned single_collisions = 0;
    Rng rng(7);
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t a = rng.below(1 << 15);
        const std::uint64_t b = rng.below(1 << 15);
        if (a == b)
            continue;
        const bool c0 = skewHash(a, 0, 12) == skewHash(b, 0, 12);
        const bool c1 = skewHash(a, 1, 12) == skewHash(b, 1, 12);
        const bool c2 = skewHash(a, 2, 12) == skewHash(b, 2, 12);
        single_collisions += c0;
        joint_collisions += (c0 && c1) || (c0 && c2) || (c1 && c2);
    }
    // With 4096-entry tables, pairwise collisions happen but joint
    // collisions should be rare.
    EXPECT_LT(joint_collisions, single_collisions / 4 + 2);
}

TEST(Hash, SkewHashRespectsIndexBits)
{
    for (unsigned t = 0; t < 3; ++t)
        for (std::uint64_t s = 0; s < 100; ++s)
            EXPECT_LE(skewHash(s, t, 12), mask(12));
}

TEST(RngTest, DeterministicGivenSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, ReseedRestartsSequence)
{
    Rng a(42);
    std::vector<std::uint64_t> first;
    for (int i = 0; i < 10; ++i)
        first.push_back(a.next());
    a.reseed(42);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(a.next(), first[i]);
}

TEST(RngTest, BelowIsInRange)
{
    Rng r(1);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(RngTest, BelowIsRoughlyUniform)
{
    Rng r(3);
    std::vector<int> buckets(8, 0);
    const int n = 80000;
    for (int i = 0; i < n; ++i)
        ++buckets[r.below(8)];
    for (int count : buckets) {
        EXPECT_GT(count, n / 8 - n / 80);
        EXPECT_LT(count, n / 8 + n / 80);
    }
}

TEST(RngTest, ChanceProbability)
{
    Rng r(5);
    int hits = 0;
    const int n = 64000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(1, 32);
    EXPECT_NEAR(static_cast<double>(hits) / n, 1.0 / 32, 0.005);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Stats, AmeanAndGmean)
{
    EXPECT_DOUBLE_EQ(amean({1, 2, 3}), 2.0);
    EXPECT_DOUBLE_EQ(amean({}), 0.0);
    EXPECT_NEAR(gmean({1, 4}), 2.0, 1e-12);
    EXPECT_NEAR(gmean({2, 2, 2}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(gmean({}), 0.0);
}

TEST(Stats, Mpki)
{
    EXPECT_DOUBLE_EQ(mpki(5, 1000), 5.0);
    EXPECT_DOUBLE_EQ(mpki(1, 1000000), 0.001);
    EXPECT_DOUBLE_EQ(mpki(7, 0), 0.0);
}

TEST(Stats, HistogramBucketsAndMean)
{
    Histogram h(4, 10.0);
    h.add(5);   // bucket 0
    h.add(15);  // bucket 1
    h.add(100); // clamped to bucket 3
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_NEAR(h.mean(), 40.0, 1e-12);
}

TEST(Stats, HistogramQuantile)
{
    Histogram h(10, 1.0);
    for (int i = 0; i < 100; ++i)
        h.add(i < 50 ? 0.5 : 5.5);
    EXPECT_LT(h.quantile(0.25), 1.0);
    EXPECT_GT(h.quantile(0.9), 5.0);
}

TEST(Stats, HistogramQuantileEmpty)
{
    Histogram h(4, 1.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(Stats, HistogramQuantileSingleSample)
{
    // Every quantile of a one-sample histogram is that sample's
    // bucket midpoint — including q=0, whose rank clamps up to 1.
    Histogram h(8, 2.0);
    h.add(5.0); // bucket 2, midpoint 5.0
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 5.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 5.0);
}

TEST(Stats, HistogramQuantileEndpointsLandInOccupiedBuckets)
{
    // Bucket 0 is empty: q=0 must report the first *sample* (bucket
    // 3), not the midpoint of the empty bucket 0; q=1 the last
    // sample (bucket 7).
    Histogram h(10, 1.0);
    for (int i = 0; i < 5; ++i)
        h.add(3.5);
    h.add(7.5);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 3.5);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 7.5);
}

TEST(Stats, HistogramQuantileClampedOverflow)
{
    // Samples past the last bucket clamp into it; quantiles of an
    // all-overflow histogram report the last bucket's midpoint.
    Histogram h(4, 10.0);
    h.add(1e9);
    h.add(2e9);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 35.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 35.0);
}

TEST(Stats, RunningStat)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_NEAR(s.mean(), 5.0, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Table, RendersAlignedColumns)
{
    TextTable t({"name", "value"});
    t.row().cell("a").cell(1.5, 1);
    t.row().cell("long-name").cell(std::uint64_t(42));
    const std::string out = t.render();
    EXPECT_NE(out.find("| name"), std::string::npos);
    EXPECT_NE(out.find("1.5"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(Table, FormatHelpers)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatPercent(0.1234), "12.3%");
    EXPECT_EQ(formatPercent(1.0, 0), "100%");
}

} // anonymous namespace
} // namespace sdbp
