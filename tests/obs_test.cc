/**
 * @file
 * Tests of the observability layer (DESIGN.md §9): stat registry
 * registration and lookup, interval timeline semantics, confusion
 * matrix accounting against a real instrumented run, JSON/CSV
 * round-trips, trace-sink ring behaviour, and the profiler.
 */

#include <gtest/gtest.h>

#include "obs/artifacts.hh"
#include "obs/confusion.hh"
#include "obs/interval.hh"
#include "obs/json.hh"
#include "obs/profiler.hh"
#include "obs/stat_registry.hh"
#include "obs/trace_sink.hh"
#include "sim/runner.hh"

using namespace sdbp;
using namespace sdbp::obs;

namespace
{

/** Small instrumented run with an LLC small enough to evict. */
RunResult
instrumentedRun(InstCount warmup = 0)
{
    RunConfig cfg = RunConfig::singleCore();
    cfg.warmupInstructions = warmup;
    cfg.measureInstructions = 200000;
    cfg.hierarchy.llc.numSets = 64; // force evictions quickly
    cfg.obs.collect = true;
    cfg.obs.intervalInstructions = 50000;
    return runSingleCore("456.hmmer", PolicyKind::Sampler, cfg);
}

} // anonymous namespace

TEST(StatRegistry, RegistrationAndLookup)
{
    StatRegistry reg;
    std::uint64_t hits = 7;
    double level = 0.25;
    reg.addCounter("llc.hits", &hits);
    reg.addGauge("llc.level", [&] { return level; });

    EXPECT_TRUE(reg.has("llc.hits"));
    EXPECT_TRUE(reg.has("llc.level"));
    EXPECT_FALSE(reg.has("llc.misses"));
    EXPECT_EQ(reg.size(), 2u);
    EXPECT_EQ(reg.names(),
              (std::vector<std::string>{"llc.hits", "llc.level"}));

    StatSnapshot snap = reg.snapshot(42);
    EXPECT_EQ(snap.tick, 42u);
    EXPECT_EQ(snap.counter("llc.hits"), 7u);
    EXPECT_DOUBLE_EQ(snap.value("llc.level"), 0.25);
    EXPECT_EQ(snap.find("nope"), nullptr);
    EXPECT_DOUBLE_EQ(snap.value("nope", -1.0), -1.0);

    // The registry pulls: later mutations show up in later snapshots,
    // while the earlier snapshot stays frozen.
    hits = 9;
    level = 0.5;
    EXPECT_EQ(snap.counter("llc.hits"), 7u);
    EXPECT_EQ(reg.snapshot().counter("llc.hits"), 9u);
}

TEST(StatRegistry, Join)
{
    EXPECT_EQ(StatRegistry::join("llc", "hits"), "llc.hits");
    EXPECT_EQ(StatRegistry::join("", "hits"), "hits");
}

using StatRegistryDeathTest = ::testing::Test;

TEST(StatRegistryDeathTest, DuplicateNamePanics)
{
    StatRegistry reg;
    std::uint64_t c = 0;
    reg.addCounter("dup", &c);
    EXPECT_DEATH(reg.addCounter("dup", &c), "duplicate stat name");
    EXPECT_DEATH(reg.addGauge("dup", [] { return 0.0; }),
                 "duplicate stat name");
}

TEST(IntervalTimeline, SampleDedupAndDeltas)
{
    StatRegistry reg;
    std::uint64_t insts = 0;
    reg.addCounter("sys.instructions", &insts);

    IntervalTimeline tl(&reg);
    tl.sample(0);
    insts = 100;
    tl.sample(10);
    tl.sample(10); // duplicate tick: dropped
    insts = 250;
    tl.sample(20);

    ASSERT_EQ(tl.snapshots().size(), 3u);
    EXPECT_EQ(tl.numIntervals(), 2u);
    const auto deltas = tl.deltaSeries("sys.instructions");
    ASSERT_EQ(deltas.size(), 2u);
    EXPECT_DOUBLE_EQ(deltas[0], 100.0);
    EXPECT_DOUBLE_EQ(deltas[1], 150.0);
}

TEST(Obs, RunCountersMonotoneAcrossIntervals)
{
    const RunResult res = instrumentedRun();
    ASSERT_NE(res.artifacts, nullptr);
    const auto &art = *res.artifacts;
    ASSERT_GE(art.intervals.size(), 2u);

    // Every counter is cumulative, so each interval snapshot must be
    // >= the previous one for every counter stat.
    for (std::size_t i = 1; i < art.intervals.size(); ++i) {
        const auto &prev = art.intervals[i - 1];
        const auto &cur = art.intervals[i];
        EXPECT_GT(cur.tick, prev.tick);
        ASSERT_EQ(cur.samples.size(), prev.samples.size());
        for (std::size_t s = 0; s < cur.samples.size(); ++s) {
            if (cur.samples[s].kind != StatKind::Counter)
                continue;
            EXPECT_GE(cur.samples[s].counter, prev.samples[s].counter)
                << cur.samples[s].name << " decreased in interval "
                << i;
        }
    }

    // Derived series cover every interval.
    for (const auto &series : art.series)
        EXPECT_EQ(series.values.size(), art.intervals.size() - 1)
            << series.name;
}

TEST(Obs, ConfusionMatchesEvictionCount)
{
    // With no warm-up, every eviction the policy observed is
    // classified in the confusion matrix, so the dead/live eviction
    // cells partition llc.evictions exactly.
    const RunResult res = instrumentedRun(/*warmup=*/0);
    ASSERT_NE(res.artifacts, nullptr);
    const auto &art = *res.artifacts;
    ASSERT_TRUE(art.hasConfusion);

    const std::uint64_t evictions =
        art.finalSnapshot.counter("llc.evictions");
    ASSERT_GT(evictions, 0u) << "run too small to evict";
    EXPECT_EQ(art.confusion.evictionsObserved(), evictions);

    // Confusion cells also appear as registry counters.
    EXPECT_EQ(art.finalSnapshot.counter("dbrb.confusion.dead_evicted"),
              art.confusion.deadEvicted);
    EXPECT_EQ(art.finalSnapshot.counter("dbrb.confusion.live_hit"),
              art.confusion.liveHit);
}

TEST(Obs, ArtifactJsonRoundTrip)
{
    const RunResult res = instrumentedRun();
    ASSERT_NE(res.artifacts, nullptr);
    const std::string text = res.artifacts->toJson().dump();

    std::string error;
    const auto parsed = JsonValue::parse(text, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    ASSERT_TRUE(parsed->isObject());
    ASSERT_NE(parsed->find("schema"), nullptr);
    EXPECT_EQ(parsed->find("schema")->asString(),
              "sdbp.run_artifacts/1");
    EXPECT_EQ(parsed->find("benchmark")->asString(), "456.hmmer");
    EXPECT_EQ(parsed->find("policy")->asString(), "Sampler");

    // Final snapshot: {"tick": ..., "stats": {flat name -> value}}.
    const JsonValue *final_snap = parsed->find("stats");
    ASSERT_NE(final_snap, nullptr);
    const JsonValue *final_stats = final_snap->find("stats");
    ASSERT_NE(final_stats, nullptr);
    ASSERT_NE(final_stats->find("llc.demand_misses"), nullptr);
    EXPECT_EQ(final_stats->find("llc.demand_misses")->asUInt(),
              res.artifacts->finalSnapshot.counter(
                  "llc.demand_misses"));
}

TEST(Obs, TimelineCsvShape)
{
    const RunResult res = instrumentedRun();
    ASSERT_NE(res.artifacts, nullptr);
    const auto &art = *res.artifacts;
    const std::string csv = art.timelineCsv();

    const std::size_t lines =
        static_cast<std::size_t>(std::count(csv.begin(), csv.end(),
                                            '\n'));
    // Header + one row per interval.
    EXPECT_EQ(lines, art.intervals.size());
    EXPECT_EQ(csv.rfind("interval,tick_end", 0), 0u);
}

TEST(JsonValue, EscapingRoundTrip)
{
    JsonValue doc = JsonValue::object();
    doc.set("text", "quote\" slash\\ newline\n tab\t");
    doc.set("n", std::uint64_t{18446744073709551615ull});
    doc.set("x", 1.5);

    const auto parsed = JsonValue::parse(doc.dump(0));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->find("text")->asString(),
              "quote\" slash\\ newline\n tab\t");
    EXPECT_EQ(parsed->find("n")->asUInt(),
              18446744073709551615ull);
    EXPECT_DOUBLE_EQ(parsed->find("x")->asNumber(), 1.5);
}

TEST(TraceSink, RingDropsOldest)
{
    TraceSink sink(4);
    for (std::uint64_t i = 0; i < 10; ++i) {
        TraceEvent e;
        e.tick = i;
        e.kind = TraceEventKind::Fill;
        sink.record(e);
    }
    EXPECT_EQ(sink.recorded(), 10u);
    EXPECT_EQ(sink.size(), 4u);
    EXPECT_EQ(sink.dropped(), 6u);
    const auto events = sink.events();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events.front().tick, 6u); // oldest surviving
    EXPECT_EQ(events.back().tick, 9u);
}

TEST(TraceSink, JsonlLineParses)
{
    TraceEvent e;
    e.tick = 5;
    e.kind = TraceEventKind::Eviction;
    e.set = 3;
    e.blockAddr = 0xdeadbeef;
    e.pc = 0x400000;
    e.predictedDead = true;
    const auto parsed = JsonValue::parse(TraceSink::toJsonl(e));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->find("event")->asString(), "eviction");
    EXPECT_EQ(parsed->find("tick")->asUInt(), 5u);
    EXPECT_TRUE(parsed->find("dead")->asBool());
}

TEST(ConfusionMatrix, Rates)
{
    ConfusionMatrix c;
    c.deadEvicted = 6; // TP
    c.deadHit = 2;     // FP
    c.liveEvicted = 1; // FN
    c.liveHit = 11;    // TN
    EXPECT_EQ(c.evictionsObserved(), 7u);
    EXPECT_EQ(c.total(), 20u);
    EXPECT_DOUBLE_EQ(c.accuracy(), 17.0 / 20.0);
    EXPECT_DOUBLE_EQ(c.falseDiscoveryRate(), 2.0 / 8.0);
    EXPECT_DOUBLE_EQ(ConfusionMatrix{}.accuracy(), 0.0);
}

TEST(Profiler, ScopesAccumulate)
{
    Profiler prof;
    {
        auto s = prof.scope("work");
        prof.addEvents("work", 100);
    }
    {
        auto s = prof.scope("work");
        prof.addEvents("work", 50);
    }
    const auto stats = prof.summary();
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_EQ(stats[0].name, "work");
    EXPECT_EQ(stats[0].calls, 2u);
    EXPECT_EQ(stats[0].events, 150u);
    EXPECT_GE(stats[0].seconds, 0.0);
}
