/**
 * @file
 * Tests for storage accounting (Table I) and the analytical power
 * model (Table II).
 */

#include <gtest/gtest.h>

#include "core/sdbp.hh"
#include "power/model.hh"
#include "power/storage.hh"
#include "predictor/counting.hh"
#include "predictor/reftrace.hh"

namespace sdbp
{
namespace
{

constexpr std::uint64_t llcBlocks = 32768; // 2 MB of 64 B blocks

TEST(Storage, RefTraceTotalsMatchTableI)
{
    RefTracePredictor p;
    const StorageBreakdown b = storageOf(p, llcBlocks);
    EXPECT_DOUBLE_EQ(b.predictorKB(), 8.0);
    EXPECT_DOUBLE_EQ(b.metadataKB(), 64.0);
    EXPECT_DOUBLE_EQ(b.totalKB(), 72.0);
    // "3.5% of the data capacity of the LLC"
    EXPECT_NEAR(b.fractionOfCache(2 * 1024 * 1024), 0.035, 0.0005);
}

TEST(Storage, CountingTotalsMatchTableI)
{
    CountingPredictor p;
    const StorageBreakdown b = storageOf(p, llcBlocks);
    EXPECT_DOUBLE_EQ(b.predictorKB(), 40.0);
    EXPECT_DOUBLE_EQ(b.metadataKB(), 68.0);
    EXPECT_DOUBLE_EQ(b.totalKB(), 108.0);
    EXPECT_NEAR(b.fractionOfCache(2 * 1024 * 1024), 0.053, 0.0005);
}

TEST(Storage, SamplerIsWellUnderOnePercent)
{
    SamplingDeadBlockPredictor p;
    const StorageBreakdown b = storageOf(p, llcBlocks);
    // Tables: 3 KB.  Sampler: 32 x 12 x 36 bits = 1.6875 KB (the
    // paper reports 6.75 KB for this structure; see EXPERIMENTS.md).
    EXPECT_NEAR(b.predictorKB(), 3.0 + 1.6875, 1e-9);
    EXPECT_DOUBLE_EQ(b.metadataKB(), 4.0);
    EXPECT_LT(b.fractionOfCache(2 * 1024 * 1024), 0.01);
}

TEST(Storage, SamplerUsesFarLessThanBaselines)
{
    SamplingDeadBlockPredictor sampler;
    RefTracePredictor reftrace;
    CountingPredictor counting;
    const auto s = storageOf(sampler, llcBlocks).totalBits();
    const auto r = storageOf(reftrace, llcBlocks).totalBits();
    const auto c = storageOf(counting, llcBlocks).totalBits();
    EXPECT_LT(s * 5, r); // >5x smaller than reftrace
    EXPECT_LT(s * 8, c); // >8x smaller than counting
}

TEST(PowerModel, CalibratedToBaselineLlc)
{
    PowerModel model;
    const auto llc = model.estimate(PowerModel::baselineLlcGeometry());
    EXPECT_NEAR(llc.leakageW, 0.512, 1e-9);
    EXPECT_NEAR(llc.peakDynamicW, 2.75, 1e-9);
}

TEST(PowerModel, LeakageProportionalToBits)
{
    PowerModel model;
    SramGeometry a{.name = "a", .totalBits = 1000, .accessBits = 8};
    SramGeometry b{.name = "b", .totalBits = 2000, .accessBits = 8};
    EXPECT_NEAR(model.estimate(b).leakageW,
                2 * model.estimate(a).leakageW, 1e-12);
}

TEST(PowerModel, DynamicGrowsSublinearly)
{
    PowerModel model;
    SramGeometry small{.name = "s", .totalBits = 1 << 16,
                       .accessBits = 2};
    SramGeometry big{.name = "b", .totalBits = 1 << 20,
                     .accessBits = 2};
    const double ps = model.estimate(small).peakDynamicW;
    const double pb = model.estimate(big).peakDynamicW;
    EXPECT_GT(pb, ps);
    EXPECT_LT(pb, 16 * ps); // 16x capacity, far less than 16x power
}

TEST(PowerModel, ActivityScalesEffectiveDynamicOnly)
{
    PowerModel model;
    SramGeometry g{.name = "g", .totalBits = 4096, .accessBits = 4,
                   .activity = 0.016};
    const auto e = model.estimate(g);
    EXPECT_NEAR(e.effectiveDynamicW, e.peakDynamicW * 0.016, 1e-12);
}

TEST(PowerModel, PredictorOrderingMatchesPaper)
{
    // The Table II ordering: sampler < reftrace < counting for both
    // leakage and dynamic power (predictor structures + metadata).
    PowerModel model;
    SamplingDeadBlockPredictor sampler;
    RefTracePredictor reftrace;
    CountingPredictor counting;

    auto total = [&](const DeadBlockPredictor &p) {
        SramGeometry structures{.name = "s",
                                .totalBits = p.storageBits(),
                                .accessBits = 8};
        const auto meta = PowerModel::metadataGeometry(
            "m", p.metadataBitsPerBlock(), llcBlocks);
        const auto a = model.estimate(structures);
        const auto b = model.estimate(meta);
        return std::pair{a.leakageW + b.leakageW,
                         a.peakDynamicW + b.peakDynamicW};
    };

    const auto [ls, ds] = total(sampler);
    const auto [lr, dr] = total(reftrace);
    const auto [lc, dc] = total(counting);
    EXPECT_LT(ls, lr);
    EXPECT_LT(lr, lc);
    EXPECT_LT(ds, dr);
    EXPECT_LT(dr, dc);

    // Leakage fractions of the 0.512 W LLC stay in the low percent
    // range, as in Sec. IV-D2.
    EXPECT_LT(ls / 0.512, 0.03);
    EXPECT_LT(lc / 0.512, 0.08);
}

} // anonymous namespace
} // namespace sdbp
