/**
 * @file
 * SIMD / scalar scan-kernel equivalence (DESIGN.md §15).
 *
 * The AVX2 kernels in util/simd.hh must be drop-in replacements for
 * their scalar references: same result for every lane content the
 * cache can produce, including widths that are not a multiple of the
 * vector width (tail path), sentinel-laden lanes (kNoBlock never
 * matches because it is never a legal probe key), and tied stamps
 * (first minimum wins, exactly like the scalar strict-< walk).
 *
 * On top of the kernel-level checks, a full-run check pins the
 * system-level consequence: a simulation executed with the vector
 * path selected and one with the scalar path forced produce
 * bit-identical RunResults for every sealed policy kind.
 *
 * On hosts without AVX2 (or with -DSDBP_SIMD=OFF builds) the kernel
 * tests still run — setEnabledForTest(true) is then a no-op and both
 * sides take the scalar path, making the equivalence trivially true.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cache/cache.hh"
#include "sim/runner.hh"
#include "util/rng.hh"
#include "util/simd.hh"

namespace sdbp
{
namespace
{

/** Run @p fn with the vector path selected, restoring on exit. */
template <class Fn>
auto
withSimd(bool on, Fn &&fn)
{
    const bool prev = simd::setEnabledForTest(on);
    auto result = fn();
    simd::setEnabledForTest(prev);
    return result;
}

/** Associativities covering sub-vector, aligned and tail widths. */
const std::uint32_t kWidths[] = {1, 2, 3, 4, 6, 8, 12, 16, 17};

TEST(SimdScanTest, FindTagMatchesScalarOnRandomLanes)
{
    Rng rng(0x51D0);
    for (const std::uint32_t n : kWidths) {
        std::vector<std::uint64_t> tags(n);
        for (int iter = 0; iter < 2000; ++iter) {
            // Distinct tags (the no-duplicate set invariant the
            // equivalence contract is scoped to — with duplicates the
            // kernels may legitimately pick different matches);
            // occasional sentinel writes model invalid frames.  A
            // small key range over base..base+2n makes both hits and
            // misses frequent.
            const std::uint64_t base = rng.below(1 << 20) * n * 2;
            for (std::uint32_t w = 0; w < n; ++w) {
                tags[w] = rng.chance(1, 8) ? SetView::kNoBlock
                                           : base + 2 * w;
            }
            const std::uint64_t key = base + rng.below(2 * n);
            const int scalar = simd::findTagScalar(tags.data(), n, key);
            const int vec = withSimd(true, [&] {
                return simd::findTag(tags.data(), n, key);
            });
            ASSERT_EQ(vec, scalar)
                << "n=" << n << " iter=" << iter << " key=" << key;
        }
    }
}

TEST(SimdScanTest, FindTagNeverMatchesTheSentinel)
{
    // A lane of invalid frames must miss for every legal key, and
    // must miss even for keys adjacent to the sentinel encoding.
    for (const std::uint32_t n : kWidths) {
        std::vector<std::uint64_t> tags(n, SetView::kNoBlock);
        const std::uint64_t keys[] = {0, 1, SetView::kNoBlock - 1};
        for (const std::uint64_t key : keys) {
            EXPECT_EQ(withSimd(true,
                               [&] {
                                   return simd::findTag(tags.data(), n,
                                                        key);
                               }),
                      -1)
                << "n=" << n << " key=" << key;
        }
    }
}

TEST(SimdScanTest, MinStampMatchesScalarOnRandomLanes)
{
    Rng rng(0x51D1);
    for (const std::uint32_t n : kWidths) {
        std::vector<std::int64_t> stamps(n);
        for (int iter = 0; iter < 2000; ++iter) {
            // Narrow range makes ties common; also exercise negative
            // stamps (the kernel compares signed).
            for (auto &s : stamps)
                s = static_cast<std::int64_t>(rng.below(8)) - 4;
            const std::uint32_t scalar =
                simd::minStampIndexScalar(stamps.data(), n);
            const std::uint32_t vec = withSimd(true, [&] {
                return simd::minStampIndex(stamps.data(), n);
            });
            ASSERT_EQ(vec, scalar) << "n=" << n << " iter=" << iter;
        }
    }
}

TEST(SimdScanTest, MinStampTieBreaksToTheFirstMinimum)
{
    // Every lane equal: the scalar strict-< walk returns index 0,
    // and so must the vector find-first-equal pass — for every
    // width, aligned or not.
    for (const std::uint32_t n : kWidths) {
        std::vector<std::int64_t> stamps(n, 7);
        EXPECT_EQ(withSimd(true,
                           [&] {
                               return simd::minStampIndex(stamps.data(),
                                                          n);
                           }),
                  0u)
            << "n=" << n;
        if (n >= 6) {
            // Duplicate minimum straddling a vector boundary.
            stamps[3] = -1;
            stamps[5] = -1;
            EXPECT_EQ(withSimd(true,
                               [&] {
                                   return simd::minStampIndex(
                                       stamps.data(), n);
                               }),
                      3u)
                << "n=" << n;
        }
    }
}

// ---- Full-run equivalence --------------------------------------

using SimdRunParam = std::tuple<PolicyKind, std::string>;

class SimdRunEquivalence
    : public ::testing::TestWithParam<SimdRunParam>
{
};

TEST_P(SimdRunEquivalence, VectorAndScalarRunsAreBitIdentical)
{
    const auto [kind, benchmark] = GetParam();

    RunConfig cfg = RunConfig::singleCore();
    cfg.warmupInstructions = 20'000;
    cfg.measureInstructions = 60'000;

    const RunResult vec = withSimd(
        true, [&] { return runSingleCore(benchmark, kind, cfg); });
    const RunResult sca = withSimd(
        false, [&] { return runSingleCore(benchmark, kind, cfg); });

    EXPECT_EQ(vec.instructions, sca.instructions);
    EXPECT_EQ(vec.cycles, sca.cycles);
    EXPECT_EQ(vec.ipc, sca.ipc);
    EXPECT_EQ(vec.mpki, sca.mpki);
    EXPECT_EQ(vec.llcAccesses, sca.llcAccesses);
    EXPECT_EQ(vec.llcMisses, sca.llcMisses);
    EXPECT_EQ(vec.llcBypasses, sca.llcBypasses);
    EXPECT_EQ(vec.llcEfficiency, sca.llcEfficiency);
}

std::string
simdParamName(const ::testing::TestParamInfo<SimdRunParam> &info)
{
    std::string name = policyName(std::get<0>(info.param)) + "_" +
                       std::get<1>(info.param);
    for (char &c : name)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, SimdRunEquivalence,
    ::testing::Combine(::testing::ValuesIn(allPolicyKinds()),
                       ::testing::Values("456.hmmer", "429.mcf")),
    simdParamName);

} // anonymous namespace
} // namespace sdbp
