/**
 * @file
 * Unit tests for the replacement policies: LRU, random, DIP/TADIP,
 * RRIP, and the dead-block replacement/bypass wrapper.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "cache/cache.hh"
#include "cache/dead_block_policy.hh"
#include "cache/dip.hh"
#include "cache/lru.hh"
#include "cache/random_repl.hh"
#include "cache/rrip.hh"

namespace sdbp
{
namespace
{

Access
demand(Addr block_addr, PC pc = 0x400000, ThreadId thread = 0)
{
    return Access::atBlock(block_addr, pc, thread);
}

/**
 * Owning backing store for a SetView, for tests that drive a policy
 * directly without a cache around it.
 */
struct FrameSet
{
    std::vector<Addr> tags;
    std::vector<std::uint8_t> state;

    explicit FrameSet(std::uint32_t assoc, bool all_valid = false)
        : tags(assoc, SetView::kNoBlock), state(assoc, 0)
    {
        if (all_valid)
            for (std::uint32_t w = 0; w < assoc; ++w) {
                tags[w] = w;
                state[w] = SetView::kValid;
            }
    }

    SetView
    view()
    {
        return SetView(tags.data(), state.data(),
                       static_cast<std::uint32_t>(tags.size()));
    }
};

// ---- LRU ----

TEST(LruPolicyTest, StackPositionsStayAPermutation)
{
    LruPolicy lru(2, 4);
    FrameSet fs(4, true);
    const Access info = demand(0);
    lru.onAccess(0, 2, fs.view(), info);
    lru.onAccess(0, 3, fs.view(), info);
    lru.onAccess(0, 2, fs.view(), info);
    std::set<std::uint32_t> positions;
    for (std::uint32_t w = 0; w < 4; ++w)
        positions.insert(lru.stackPosition(0, w));
    EXPECT_EQ(positions.size(), 4u);
    EXPECT_EQ(lru.stackPosition(0, 2), 0u);
    EXPECT_EQ(lru.stackPosition(0, 3), 1u);
}

TEST(LruPolicyTest, VictimIsLeastRecentlyUsed)
{
    LruPolicy lru(1, 4);
    FrameSet fs(4, true);
    const Access info = demand(0);
    for (int w : {0, 1, 2, 3})
        lru.onAccess(0, w, fs.view(), info);
    EXPECT_EQ(lru.victim(0, fs.view(), info), 0u);
    lru.onAccess(0, 0, fs.view(), info);
    EXPECT_EQ(lru.victim(0, fs.view(), info), 1u);
}

TEST(LruPolicyTest, MoveToLruPosition)
{
    LruPolicy lru(1, 4);
    lru.moveTo(0, 0, 3);
    EXPECT_EQ(lru.stackPosition(0, 0), 3u);
    // Others shifted up consistently.
    std::set<std::uint32_t> positions;
    for (std::uint32_t w = 0; w < 4; ++w)
        positions.insert(lru.stackPosition(0, w));
    EXPECT_EQ(positions.size(), 4u);
}

TEST(LruPolicyTest, RankMatchesStackPosition)
{
    LruPolicy lru(1, 4);
    FrameSet fs(4, true);
    const Access info = demand(0);
    lru.onAccess(0, 1, fs.view(), info);
    EXPECT_EQ(lru.rank(0, 1), 0u);
    EXPECT_GT(lru.rank(0, 0), 0u);
}

TEST(LruPolicyTest, SetsAreIndependent)
{
    LruPolicy lru(2, 2);
    FrameSet fs(2, true);
    const Access info = demand(0);
    lru.onAccess(0, 1, fs.view(), info);
    EXPECT_EQ(lru.stackPosition(1, 0), 0u);
    EXPECT_EQ(lru.stackPosition(1, 1), 1u);
}

// ---- Random ----

TEST(RandomPolicyTest, VictimsCoverAllWaysDeterministically)
{
    RandomPolicy a(1, 4, 42), b(1, 4, 42);
    FrameSet fs(4, true);
    const Access info = demand(0);
    std::set<std::uint32_t> seen;
    for (int i = 0; i < 100; ++i) {
        const std::uint32_t va = a.victim(0, fs.view(), info);
        EXPECT_EQ(va, b.victim(0, fs.view(), info));
        EXPECT_LT(va, 4u);
        seen.insert(va);
    }
    EXPECT_EQ(seen.size(), 4u);
}

// ---- DIP ----

TEST(DipPolicyTest, LeaderSetsAreDisjointAndCounted)
{
    DipPolicy dip(2048, 16);
    unsigned lru_leaders = 0, bip_leaders = 0;
    for (std::uint32_t s = 0; s < 2048; ++s) {
        const bool l = dip.isLruLeader(s, 0);
        const bool b = dip.isBipLeader(s, 0);
        EXPECT_FALSE(l && b);
        lru_leaders += l;
        bip_leaders += b;
    }
    EXPECT_EQ(lru_leaders, 32u);
    EXPECT_EQ(bip_leaders, 32u);
}

TEST(DipPolicyTest, MissesInLeadersMovePsel)
{
    DipPolicy dip(2048, 16);
    FrameSet fs(16, true);
    const std::uint32_t initial = dip.psel(0);
    // Find an LRU leader set and miss in it repeatedly.
    std::uint32_t lru_leader = 0;
    while (!dip.isLruLeader(lru_leader, 0))
        ++lru_leader;
    for (int i = 0; i < 10; ++i)
        dip.onAccess(lru_leader, -1, fs.view(), demand(0));
    EXPECT_EQ(dip.psel(0), initial + 10);

    std::uint32_t bip_leader = 0;
    while (!dip.isBipLeader(bip_leader, 0))
        ++bip_leader;
    for (int i = 0; i < 20; ++i)
        dip.onAccess(bip_leader, -1, fs.view(), demand(0));
    EXPECT_EQ(dip.psel(0), initial - 10);
}

TEST(DipPolicyTest, WritebackMissesDoNotTrainPsel)
{
    DipPolicy dip(2048, 16);
    FrameSet fs(16, true);
    const std::uint32_t initial = dip.psel(0);
    Access wb = demand(0);
    wb.isWriteback = true;
    std::uint32_t lru_leader = 0;
    while (!dip.isLruLeader(lru_leader, 0))
        ++lru_leader;
    dip.onAccess(lru_leader, -1, fs.view(), wb);
    EXPECT_EQ(dip.psel(0), initial);
}

TEST(DipPolicyTest, BipLeaderInsertsAtLruMostly)
{
    DipPolicy dip(2048, 16);
    FrameSet fs(16, true);
    std::uint32_t bip_leader = 0;
    while (!dip.isBipLeader(bip_leader, 0))
        ++bip_leader;
    unsigned lru_inserts = 0;
    for (int i = 0; i < 320; ++i) {
        dip.onFill(bip_leader, 3, fs.view(), demand(0));
        lru_inserts += dip.rank(bip_leader, 3) == 15;
    }
    // All but ~1/32 of fills land at the LRU position.
    EXPECT_GT(lru_inserts, 280u);
    EXPECT_LT(lru_inserts, 320u); // epsilon occasionally promotes
}

TEST(DipPolicyTest, LruLeaderInsertsAtMru)
{
    DipPolicy dip(2048, 16);
    FrameSet fs(16, true);
    std::uint32_t lru_leader = 0;
    while (!dip.isLruLeader(lru_leader, 0))
        ++lru_leader;
    dip.onFill(lru_leader, 5, fs.view(), demand(0));
    EXPECT_EQ(dip.rank(lru_leader, 5), 0u);
}

TEST(DipPolicyTest, TadipKeepsPerThreadPsel)
{
    DipConfig cfg;
    cfg.numThreads = 4;
    DipPolicy dip(2048, 16, cfg);
    FrameSet fs(16, true);
    std::uint32_t t2_leader = 0;
    while (!dip.isLruLeader(t2_leader, 2))
        ++t2_leader;
    const std::uint32_t initial = dip.psel(2);
    dip.onAccess(t2_leader, -1, fs.view(), demand(0, 0x400000, 2));
    EXPECT_EQ(dip.psel(2), initial + 1);
    EXPECT_EQ(dip.psel(0), initial); // other threads untouched
    // Thread 0 accessing thread 2's leader set is a follower there.
    dip.onAccess(t2_leader, -1, fs.view(), demand(0, 0x400000, 0));
    EXPECT_EQ(dip.psel(0), initial);
    EXPECT_EQ(dip.name(), "tadip");
}

TEST(DipPolicyTest, ThreadLeaderSetsAreDistinct)
{
    DipConfig cfg;
    cfg.numThreads = 4;
    DipPolicy dip(2048, 16, cfg);
    for (std::uint32_t s = 0; s < 2048; ++s)
        for (ThreadId a = 0; a < 4; ++a)
            for (ThreadId b = a + 1; b < 4; ++b) {
                EXPECT_FALSE(dip.isLruLeader(s, a) &&
                             dip.isLruLeader(s, b));
                EXPECT_FALSE(dip.isBipLeader(s, a) &&
                             dip.isBipLeader(s, b));
            }
}

// ---- RRIP ----

TEST(RripPolicyTest, SrripInsertsLongAndPromotesOnHit)
{
    RripConfig cfg;
    cfg.mode = RripMode::SRrip;
    RripPolicy rrip(16, 4, cfg);
    FrameSet fs(4, true);
    rrip.onFill(0, 0, fs.view(), demand(0));
    EXPECT_EQ(rrip.rrpv(0, 0), 2u); // rrpvMax - 1
    rrip.onAccess(0, 0, fs.view(), demand(0));
    EXPECT_EQ(rrip.rrpv(0, 0), 0u);
}

TEST(RripPolicyTest, VictimIsDistantBlockAndAgesSet)
{
    RripConfig cfg;
    cfg.mode = RripMode::SRrip;
    RripPolicy rrip(1, 4, cfg);
    FrameSet fs(4, true);
    for (std::uint32_t w = 0; w < 4; ++w)
        rrip.onFill(0, w, fs.view(), demand(w));
    // All RRPVs are 2: victim search must age everyone to 3 and
    // return way 0.
    EXPECT_EQ(rrip.victim(0, fs.view(), demand(9)), 0u);
    for (std::uint32_t w = 1; w < 4; ++w)
        EXPECT_EQ(rrip.rrpv(0, w), 3u);
}

TEST(RripPolicyTest, HitProtectsFromEviction)
{
    RripConfig cfg;
    cfg.mode = RripMode::SRrip;
    RripPolicy rrip(1, 2, cfg);
    FrameSet fs(2, true);
    rrip.onFill(0, 0, fs.view(), demand(0));
    rrip.onFill(0, 1, fs.view(), demand(1));
    rrip.onAccess(0, 0, fs.view(), demand(0));
    EXPECT_EQ(rrip.victim(0, fs.view(), demand(2)), 1u);
}

TEST(RripPolicyTest, BrripMostlyInsertsDistant)
{
    RripConfig cfg;
    cfg.mode = RripMode::BRrip;
    RripPolicy rrip(16, 4, cfg);
    FrameSet fs(4, true);
    unsigned distant = 0;
    for (int i = 0; i < 320; ++i) {
        rrip.onFill(0, 0, fs.view(), demand(0));
        distant += rrip.rrpv(0, 0) == 3;
    }
    EXPECT_GT(distant, 280u);
    EXPECT_LT(distant, 320u);
}

TEST(RripPolicyTest, DrripDuelsViaPsel)
{
    RripPolicy rrip(2048, 16); // DRRIP default
    FrameSet fs(16, true);
    std::uint32_t srrip_leader = 0;
    while (!rrip.isSrripLeader(srrip_leader, 0))
        ++srrip_leader;
    const bool before = rrip.followerUsesBrrip(0);
    for (int i = 0; i < 600; ++i)
        rrip.onAccess(srrip_leader, -1, fs.view(), demand(0));
    EXPECT_TRUE(rrip.followerUsesBrrip(0));
    (void)before;
    EXPECT_EQ(rrip.name(), "drrip");
}

// ---- Dead-block wrapper ----

/** Scripted predictor: predicts "dead" iff the PC is in a set. */
class ScriptedPredictor : public DeadBlockPredictor
{
  public:
    std::set<PC> deadPcs;
    std::uint64_t evicts = 0;
    std::uint64_t fills = 0;

    bool
    onAccess(std::uint32_t, const Access &a) override
    {
        return deadPcs.count(a.pc) > 0;
    }
    void
    onFill(std::uint32_t, const Access &) override
    {
        ++fills;
    }
    void
    onEvict(std::uint32_t, const Access &) override
    {
        ++evicts;
    }
    std::string name() const override { return "scripted"; }
    std::uint64_t storageBits() const override { return 0; }
    std::uint64_t metadataBitsPerBlock() const override { return 1; }
};

std::unique_ptr<Cache>
makeDbrbCache(ScriptedPredictor *&predictor_out,
              const DeadBlockPolicyConfig &cfg = {},
              std::uint32_t assoc = 2)
{
    auto predictor = std::make_unique<ScriptedPredictor>();
    predictor_out = predictor.get();
    auto policy = std::make_unique<DeadBlockPolicy>(
        std::make_unique<LruPolicy>(4, assoc), std::move(predictor),
        cfg);
    CacheConfig ccfg;
    ccfg.numSets = 4;
    ccfg.assoc = assoc;
    return std::make_unique<Cache>(ccfg, std::move(policy));
}

const DeadBlockPolicyBase &
dbrbOf(const Cache &cache)
{
    return dynamic_cast<const DeadBlockPolicyBase &>(cache.policy());
}

TEST(DeadBlockPolicyTest, DeadOnArrivalBypasses)
{
    ScriptedPredictor *pred = nullptr;
    auto cache = makeDbrbCache(pred);
    pred->deadPcs.insert(0x400000);
    cache->access(demand(0x10, 0x400000), 0);
    cache->fill(demand(0x10, 0x400000), 0);
    EXPECT_FALSE(cache->probe(0x10));
    EXPECT_EQ(cache->stats().bypasses, 1u);
    const auto &policy = dbrbOf(*cache);
    EXPECT_EQ(policy.dbrbStats().bypasses, 1u);
    EXPECT_EQ(policy.dbrbStats().positives, 1u);
}

TEST(DeadBlockPolicyTest, LiveBlocksFillNormally)
{
    ScriptedPredictor *pred = nullptr;
    auto cache = makeDbrbCache(pred);
    cache->access(demand(0x10), 0);
    cache->fill(demand(0x10), 0);
    EXPECT_TRUE(cache->probe(0x10));
    EXPECT_EQ(pred->fills, 1u);
}

TEST(DeadBlockPolicyTest, PredictedDeadBlockEvictedBeforeLru)
{
    ScriptedPredictor *pred = nullptr;
    auto cache = makeDbrbCache(pred, {}, 4);
    // Fill all four ways of set 0 with live blocks.
    for (Addr a : {0x00, 0x04, 0x08, 0x0c}) {
        cache->access(demand(a, 0x400000), 0);
        cache->fill(demand(a, 0x400000), 0);
    }
    // Re-touch 0x04 with a PC now predicted dead (marks it dead and
    // MRU), then age it into the cold half of the stack.
    pred->deadPcs.insert(0x400abc);
    cache->access(demand(0x04, 0x400abc), 1);
    pred->deadPcs.clear();
    cache->access(demand(0x08, 0x400000), 2);
    cache->access(demand(0x0c, 0x400000), 3);
    // New block: victim must be the predicted-dead block 0x04 (now
    // past the recency grace), not the true-LRU block 0x00.
    cache->access(demand(0x10, 0x400000), 4);
    cache->fill(demand(0x10, 0x400000), 4);
    EXPECT_FALSE(cache->probe(0x04));
    EXPECT_TRUE(cache->probe(0x00));
    const auto &policy = dbrbOf(*cache);
    EXPECT_EQ(policy.dbrbStats().deadEvictions, 1u);
    EXPECT_EQ(policy.dbrbStats().falsePositiveHits, 0u);
}

TEST(DeadBlockPolicyTest, FreshDeadMarksGetARecencyGrace)
{
    // A dead-marked block still in the warm half of the stack is
    // not preferred over the default victim.
    ScriptedPredictor *pred = nullptr;
    auto cache = makeDbrbCache(pred, {}, 4);
    for (Addr a : {0x00, 0x04, 0x08, 0x0c}) {
        cache->access(demand(a, 0x400000), 0);
        cache->fill(demand(a, 0x400000), 0);
    }
    pred->deadPcs.insert(0x400abc);
    cache->access(demand(0x0c, 0x400abc), 1); // dead + MRU
    pred->deadPcs.clear();
    cache->access(demand(0x10, 0x400000), 2);
    cache->fill(demand(0x10, 0x400000), 2);
    // The fresh dead mark survived; the true LRU (0x00) went.
    EXPECT_TRUE(cache->probe(0x0c));
    EXPECT_FALSE(cache->probe(0x00));
}

TEST(DeadBlockPolicyTest, HitOnDeadBlockCountsFalsePositive)
{
    ScriptedPredictor *pred = nullptr;
    auto cache = makeDbrbCache(pred);
    cache->access(demand(0x00, 0x400000), 0);
    cache->fill(demand(0x00, 0x400000), 0);
    pred->deadPcs.insert(0x400abc);
    cache->access(demand(0x00, 0x400abc), 1); // marks dead
    pred->deadPcs.clear();
    cache->access(demand(0x00, 0x400000), 2); // hit on "dead" block
    const auto &policy = dbrbOf(*cache);
    EXPECT_EQ(policy.dbrbStats().falsePositiveHits, 1u);
}

TEST(DeadBlockPolicyTest, BypassReuseCountsFalsePositive)
{
    ScriptedPredictor *pred = nullptr;
    auto cache = makeDbrbCache(pred);
    pred->deadPcs.insert(0x400000);
    cache->access(demand(0x10, 0x400000), 0);
    cache->fill(demand(0x10, 0x400000), 0); // bypassed
    pred->deadPcs.clear();
    cache->access(demand(0x10, 0x400000), 1); // re-miss soon after
    const auto &policy = dbrbOf(*cache);
    EXPECT_EQ(policy.dbrbStats().bypassReuses, 1u);
}

TEST(DeadBlockPolicyTest, BypassDisabledStillMarksBlocks)
{
    ScriptedPredictor *pred = nullptr;
    DeadBlockPolicyConfig cfg;
    cfg.enableBypass = false;
    auto cache = makeDbrbCache(pred, cfg);
    pred->deadPcs.insert(0x400000);
    cache->access(demand(0x10, 0x400000), 0);
    cache->fill(demand(0x10, 0x400000), 0);
    EXPECT_TRUE(cache->probe(0x10)); // installed despite prediction
    EXPECT_EQ(cache->stats().bypasses, 0u);
}

TEST(DeadBlockPolicyTest, WritebacksSkipThePredictor)
{
    ScriptedPredictor *pred = nullptr;
    auto cache = makeDbrbCache(pred);
    pred->deadPcs.insert(0); // writebacks carry pc 0
    const Access wb = Access::writebackOf(0x20, 0);
    cache->access(wb, 0);
    cache->fill(wb, 0);
    EXPECT_TRUE(cache->probe(0x20)); // not bypassed
    const auto &policy = dbrbOf(*cache);
    EXPECT_EQ(policy.dbrbStats().predictions, 0u);
    EXPECT_EQ(pred->fills, 0u);
}

TEST(DeadBlockPolicyTest, EvictNotifiesPredictor)
{
    ScriptedPredictor *pred = nullptr;
    auto cache = makeDbrbCache(pred);
    for (Addr a : {0x00, 0x04, 0x08}) { // 3 blocks into 2-way set 0
        cache->access(demand(a), a);
        cache->fill(demand(a), a);
    }
    EXPECT_EQ(pred->evicts, 1u);
}

TEST(DeadBlockPolicyTest, CoverageAndFalsePositiveMath)
{
    DbrbStats s;
    s.predictions = 200;
    s.positives = 118;
    s.falsePositiveHits = 5;
    s.bypassReuses = 1;
    EXPECT_NEAR(s.coverage(), 0.59, 1e-12);
    EXPECT_NEAR(s.falsePositiveRate(), 0.03, 1e-12);
}

} // anonymous namespace
} // namespace sdbp
