/**
 * @file
 * Fast-path / virtual-path equivalence tests (DESIGN.md §12).
 *
 * The sealed engine compositions and the type-erased stack execute
 * the same template code, so every simulated outcome must be
 * bit-identical between them.  These tests pin that contract for
 * every policy kind on two benchmarks: the headline RunResult
 * metrics, the full dbrb.* accounting, and the run-artifact JSON
 * modulo the wall-clock keys (`profile`, `timing`).
 *
 * The file also audits the structure-of-arrays cache layout: the tag
 * sentinel must agree with the valid bit in every frame, the hot
 * lanes seen through SetView must agree with the materialized
 * CacheBlock snapshots, and auditInvariants() must hold after a
 * randomized workload (it panics under SDBP_DCHECK on violation).
 */

#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "cache/cache.hh"
#include "cache/lru.hh"
#include "obs/json.hh"
#include "sim/engine.hh"
#include "sim/runner.hh"
#include "util/rng.hh"

namespace sdbp
{
namespace
{

/** Rebuild a JSON tree without the wall-clock-dependent members. */
obs::JsonValue
stripVolatile(const obs::JsonValue &v)
{
    if (v.isObject()) {
        auto out = obs::JsonValue::object();
        for (const auto &[key, val] : v.members()) {
            if (key == "profile" || key == "timing")
                continue;
            out.set(key, stripVolatile(val));
        }
        return out;
    }
    if (v.isArray()) {
        auto out = obs::JsonValue::array();
        for (std::size_t i = 0; i < v.size(); ++i)
            out.push(stripVolatile(v.at(i)));
        return out;
    }
    return v;
}

using FastpathParam = std::tuple<PolicyKind, std::string>;

class FastpathEquivalence
    : public ::testing::TestWithParam<FastpathParam>
{
};

TEST_P(FastpathEquivalence, FastAndVirtualPathsAreBitIdentical)
{
    const auto [kind, benchmark] = GetParam();

    RunConfig cfg = RunConfig::singleCore();
    cfg.warmupInstructions = 20'000;
    cfg.measureInstructions = 60'000;
    cfg.obs.collect = true;
    cfg.obs.intervalInstructions = 20'000;

    RunConfig vcfg = cfg;
    vcfg.forceVirtualPath = true;

    const RunResult fast = runSingleCore(benchmark, kind, cfg);
    const RunResult virt = runSingleCore(benchmark, kind, vcfg);

    EXPECT_EQ(fast.benchmark, virt.benchmark);
    EXPECT_EQ(fast.policy, virt.policy);
    EXPECT_EQ(fast.instructions, virt.instructions);
    EXPECT_EQ(fast.cycles, virt.cycles);
    EXPECT_EQ(fast.ipc, virt.ipc);
    EXPECT_EQ(fast.mpki, virt.mpki);
    EXPECT_EQ(fast.llcAccesses, virt.llcAccesses);
    EXPECT_EQ(fast.llcMisses, virt.llcMisses);
    EXPECT_EQ(fast.llcBypasses, virt.llcBypasses);
    EXPECT_EQ(fast.llcEfficiency, virt.llcEfficiency);
    EXPECT_EQ(fast.faultsInjected, virt.faultsInjected);

    ASSERT_EQ(fast.hasDbrb, virt.hasDbrb);
    if (fast.hasDbrb) {
        EXPECT_EQ(fast.dbrb.predictions, virt.dbrb.predictions);
        EXPECT_EQ(fast.dbrb.positives, virt.dbrb.positives);
        EXPECT_EQ(fast.dbrb.falsePositiveHits,
                  virt.dbrb.falsePositiveHits);
        EXPECT_EQ(fast.dbrb.bypassReuses, virt.dbrb.bypassReuses);
        EXPECT_EQ(fast.dbrb.deadEvictions, virt.dbrb.deadEvictions);
        EXPECT_EQ(fast.dbrb.bypasses, virt.dbrb.bypasses);
    }

    ASSERT_TRUE(fast.artifacts);
    ASSERT_TRUE(virt.artifacts);
    EXPECT_EQ(stripVolatile(fast.artifacts->toJson()).dump(),
              stripVolatile(virt.artifacts->toJson()).dump());
}

std::string
paramName(const ::testing::TestParamInfo<FastpathParam> &info)
{
    std::string name = policyName(std::get<0>(info.param)) + "_" +
                       std::get<1>(info.param);
    for (char &c : name)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, FastpathEquivalence,
    ::testing::Combine(::testing::ValuesIn(allPolicyKinds()),
                       ::testing::Values("456.hmmer", "429.mcf")),
    paramName);

// ---- Engine path selection ----

TEST(EngineTest, SealedKindsTakeTheFastPath)
{
    HierarchyConfig hcfg;
    for (const PolicyKind kind :
         {PolicyKind::Lru, PolicyKind::Random, PolicyKind::Sampler,
          PolicyKind::RandomSampler, PolicyKind::Dip,
          PolicyKind::Tadip, PolicyKind::Lip, PolicyKind::Rrip}) {
        const Engine eng = makeEngine(kind, hcfg, CoreConfig{});
        EXPECT_TRUE(eng.fastPath) << policyName(kind);
        ASSERT_NE(eng.system, nullptr);
    }
}

TEST(EngineTest, ForceVirtualOverridesSealedKinds)
{
    HierarchyConfig hcfg;
    const Engine eng =
        makeEngine(PolicyKind::Sampler, hcfg, CoreConfig{}, {}, true);
    EXPECT_FALSE(eng.fastPath);
    ASSERT_NE(eng.system, nullptr);
    // The DBRB views survive the type erasure.
    EXPECT_NE(eng.dbrb, nullptr);
    EXPECT_NE(eng.predictor, nullptr);
}

TEST(EngineTest, UnsealedKindsFallBackToTheVirtualStack)
{
    HierarchyConfig hcfg;
    const Engine eng =
        makeEngine(PolicyKind::TreePlru, hcfg, CoreConfig{});
    EXPECT_FALSE(eng.fastPath);
    ASSERT_NE(eng.system, nullptr);
    EXPECT_EQ(eng.dbrb, nullptr);
}

TEST(EngineTest, DbrbViewsPointIntoTheSealedStack)
{
    HierarchyConfig hcfg;
    const Engine eng = makeEngine(PolicyKind::Sampler, hcfg,
                                  CoreConfig{});
    ASSERT_TRUE(eng.fastPath);
    EXPECT_NE(eng.dbrb, nullptr);
    EXPECT_NE(eng.predictor, nullptr);
}

// ---- SoA layout invariants ----

TEST(SoaLayoutTest, TagSentinelAgreesWithValidBit)
{
    CacheConfig cfg;
    cfg.numSets = 16;
    cfg.assoc = 4;
    Cache cache(cfg, std::make_unique<LruPolicy>(16, 4));

    Rng rng(42);
    for (int i = 0; i < 5000; ++i) {
        const Access a = Access::atBlock(rng.below(256), 0x400000);
        if (!cache.access(a, static_cast<std::uint64_t>(i)))
            cache.fill(a, static_cast<std::uint64_t>(i));
        if (rng.chance(1, 50))
            cache.invalidate(rng.below(256));
    }

    for (std::uint32_t set = 0; set < cfg.numSets; ++set) {
        SetView frames = cache.frames(set);
        for (std::uint32_t w = 0; w < cfg.assoc; ++w) {
            if (frames.valid(w))
                EXPECT_NE(frames.blockAddr(w), SetView::kNoBlock);
            else
                EXPECT_EQ(frames.blockAddr(w), SetView::kNoBlock);
        }
    }
    cache.auditInvariants();
}

TEST(SoaLayoutTest, SetViewAgreesWithMaterializedBlocks)
{
    CacheConfig cfg;
    cfg.numSets = 8;
    cfg.assoc = 4;
    Cache cache(cfg, std::make_unique<LruPolicy>(8, 4));

    Rng rng(7);
    for (int i = 0; i < 2000; ++i) {
        Access a = Access::atBlock(rng.below(96), 0x400000);
        a.isWrite = rng.chance(1, 4);
        if (!cache.access(a, static_cast<std::uint64_t>(i)))
            cache.fill(a, static_cast<std::uint64_t>(i));
    }

    for (std::uint32_t set = 0; set < cfg.numSets; ++set) {
        SetView frames = cache.frames(set);
        for (std::uint32_t w = 0; w < cfg.assoc; ++w) {
            const CacheBlock blk = cache.blockAt(set, w);
            EXPECT_EQ(frames.valid(w), blk.valid);
            if (!blk.valid)
                continue;
            EXPECT_EQ(frames.blockAddr(w), blk.blockAddr);
            EXPECT_EQ(frames.dirty(w), blk.dirty);
            EXPECT_EQ(frames.predictedDead(w), blk.predictedDead);
            EXPECT_EQ(cache.findWay(set, blk.blockAddr),
                      static_cast<int>(w));
            EXPECT_TRUE(cache.probe(blk.blockAddr));
        }
    }
    cache.auditInvariants();
}

TEST(SoaLayoutTest, PredictedDeadBitRoundTripsThroughTheLane)
{
    CacheConfig cfg;
    cfg.numSets = 4;
    cfg.assoc = 2;
    Cache cache(cfg, std::make_unique<LruPolicy>(4, 2));

    const Access a = Access::atBlock(0x10);
    cache.access(a, 0);
    cache.fill(a, 0);
    const std::uint32_t set = cache.setIndex(a.blockAddr());
    SetView frames = cache.frames(set);
    const int way = cache.findWay(set, a.blockAddr());
    ASSERT_GE(way, 0);

    frames.setPredictedDead(static_cast<std::uint32_t>(way), true);
    EXPECT_TRUE(cache.blockAt(set, static_cast<std::uint32_t>(way))
                    .predictedDead);
    frames.setPredictedDead(static_cast<std::uint32_t>(way), false);
    EXPECT_FALSE(cache.blockAt(set, static_cast<std::uint32_t>(way))
                     .predictedDead);
    cache.auditInvariants();
}

} // anonymous namespace
} // namespace sdbp
