/**
 * @file
 * Property-based tests: invariants that must hold across swept
 * parameters (associativities, thresholds, seeds, latencies).
 */

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "cache/cache.hh"
#include "cache/lru.hh"
#include "core/sdbp.hh"
#include "cpu/core_model.hh"
#include "opt/belady.hh"
#include "sim/runner.hh"
#include "trace/workload.hh"
#include "util/rng.hh"

namespace sdbp
{
namespace
{

std::vector<Addr>
mixedTrace(std::uint64_t seed, std::size_t n)
{
    Rng rng(seed);
    std::vector<Addr> trace;
    Addr scan = 50000;
    for (std::size_t i = 0; i < n; ++i) {
        switch (rng.below(3)) {
          case 0:
            trace.push_back(rng.below(64)); // hot set
            break;
          case 1:
            trace.push_back(64 + rng.below(512)); // warm region
            break;
          default:
            trace.push_back(scan++); // cold stream
            break;
        }
    }
    return trace;
}

std::uint64_t
lruMisses(const std::vector<Addr> &trace, std::uint32_t sets,
          std::uint32_t assoc)
{
    CacheConfig cfg;
    cfg.numSets = sets;
    cfg.assoc = assoc;
    Cache cache(cfg, std::make_unique<LruPolicy>(sets, assoc));
    std::uint64_t misses = 0;
    for (Addr a : trace) {
        const Access acc = Access::atBlock(a);
        if (!cache.access(acc, 0)) {
            ++misses;
            cache.fill(acc, 0);
        }
    }
    return misses;
}

/**
 * LRU inclusion property: for the same number of sets, a cache with
 * larger associativity never misses more (the LRU stack of the
 * small cache is a prefix of the large one's).
 */
class LruInclusionTest
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(LruInclusionTest, LargerAssocNeverMissesMore)
{
    const auto trace = mixedTrace(GetParam(), 4000);
    std::uint64_t prev = ~0ull;
    for (std::uint32_t assoc : {1, 2, 4, 8, 16}) {
        const std::uint64_t m = lruMisses(trace, 16, assoc);
        EXPECT_LE(m, prev) << "assoc " << assoc;
        prev = m;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LruInclusionTest,
                         ::testing::Values(11, 22, 33, 44, 55));

/**
 * Set isolation: interleaving traffic of disjoint sets cannot change
 * per-set miss counts under any set-indexed policy.
 */
TEST(CacheProperties, SetsAreIsolatedUnderLru)
{
    Rng rng(5);
    std::vector<Addr> even, odd, inter;
    for (int i = 0; i < 2000; ++i) {
        even.push_back(rng.below(128) * 2);     // even sets only
        odd.push_back(rng.below(128) * 2 + 1);  // odd sets only
        inter.push_back(even.back());
        inter.push_back(odd.back());
    }
    EXPECT_EQ(lruMisses(inter, 8, 4),
              lruMisses(even, 8, 4) + lruMisses(odd, 8, 4));
}

/** MIN + bypass misses never exceed plain MIN. */
class MinBypassTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(MinBypassTest, BypassNeverHurtsOptimal)
{
    const auto addrs = mixedTrace(GetParam(), 5000);
    std::vector<LlcRef> trace;
    for (Addr a : addrs)
        trace.push_back({a, 0, 0, false});
    const auto with = optimalMisses(trace, 16, 4, true);
    const auto without = optimalMisses(trace, 16, 4, false);
    EXPECT_LE(with.misses, without.misses);
    // And MIN lower-bounds LRU of the same geometry.
    EXPECT_LE(without.misses, lruMisses(addrs, 16, 4));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinBypassTest,
                         ::testing::Values(3, 7, 13, 19));

/**
 * SDBP threshold monotonicity: raising the confidence threshold can
 * only reduce the fraction of positive (dead) predictions.
 */
TEST(SdbpProperties, CoverageFallsWithThreshold)
{
    double prev_coverage = 1.1;
    for (unsigned threshold : {2u, 5u, 8u}) {
        SdbpConfig cfg = SdbpConfig::paperDefault(64);
        cfg.table.threshold = threshold;
        cfg.sampler.numSets = 4;
        // Plain-LRU sampler keeps the training sequence identical
        // across thresholds, so coverage is strictly comparable.
        cfg.sampler.learnFromOwnEvictions = false;
        SamplingDeadBlockPredictor p(cfg);
        SyntheticWorkload w(specProfile("456.hmmer"));
        std::uint64_t positives = 0, total = 0;
        for (int i = 0; i < 40000; ++i) {
            const Access a = w.next();
            const auto set = static_cast<std::uint32_t>(
                a.blockAddr() & 63);
            positives += p.onAccess(set, a);
            ++total;
        }
        const double coverage =
            static_cast<double>(positives) / static_cast<double>(total);
        EXPECT_LE(coverage, prev_coverage + 1e-12)
            << "threshold " << threshold;
        prev_coverage = coverage;
    }
}

/**
 * Sampler generalization: behaviour learned in the sampled sets
 * predicts accesses in unsampled sets, because the prediction is a
 * pure function of the PC.
 */
TEST(SdbpProperties, PredictionsGeneralizeAcrossSets)
{
    SdbpConfig cfg = SdbpConfig::paperDefault(2048);
    SamplingDeadBlockPredictor p(cfg);
    const PC dead_pc = 0x400abc;
    // Train only via sampled sets.
    for (Addr a = 0; a < 4096; ++a)
        p.onAccess(static_cast<std::uint32_t>((a * 64) & 2047),
                   Access::atBlock((a << 11) | ((a * 64) & 2047),
                                   dead_pc));
    // Consult on never-sampled sets: prediction must carry over.
    unsigned dead = 0;
    for (std::uint32_t set = 1; set < 64; set += 2)
        dead += p.onAccess(set, Access::atBlock(0xabc000 + set,
                                                dead_pc));
    EXPECT_EQ(dead, 32u);
}

/** Core model: memory latency is monotone in cycle cost. */
class CoreLatencyTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CoreLatencyTest, MoreLatencyNeverFewerCycles)
{
    const unsigned n = GetParam();
    Cycle prev = 0;
    for (Cycle lat : {3u, 15u, 45u, 245u}) {
        CoreModel core;
        Rng rng(n);
        for (unsigned i = 0; i < 2000; ++i) {
            core.executeNonMem(static_cast<unsigned>(rng.below(4)));
            core.executeMem(lat, true, rng.chance(1, 4));
        }
        EXPECT_GE(core.cycles(), prev);
        prev = core.cycles();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoreLatencyTest,
                         ::testing::Values(1u, 2u, 3u));

/** Workload memory intensity tracks the configured gap. */
TEST(WorkloadProperties, MemoryIntensityMatchesGap)
{
    for (unsigned gap : {0u, 2u, 8u}) {
        WorkloadProfile p;
        p.name = "t";
        p.meanGap = gap;
        StreamConfig s;
        s.regionBlocks = 256;
        p.streams = {s};
        SyntheticWorkload w(p);
        std::uint64_t instructions = 0, accesses = 0;
        for (int i = 0; i < 20000; ++i) {
            const Access r = w.next();
            instructions += r.gap + 1;
            ++accesses;
        }
        const double intensity = static_cast<double>(accesses) /
            static_cast<double>(instructions);
        EXPECT_NEAR(intensity, 1.0 / (1.0 + gap), 0.02);
    }
}

/**
 * Deterministic replays: the same (benchmark, policy, config) gives
 * bit-identical metrics across process-local repetitions, for every
 * policy kind.
 */
class DeterminismTest
    : public ::testing::TestWithParam<PolicyKind>
{
};

TEST_P(DeterminismTest, RunsAreReproducible)
{
    RunConfig cfg = RunConfig::singleCore();
    cfg.warmupInstructions = 50000;
    cfg.measureInstructions = 100000;
    const RunResult a =
        runSingleCore("434.zeusmp", GetParam(), cfg);
    const RunResult b =
        runSingleCore("434.zeusmp", GetParam(), cfg);
    EXPECT_EQ(a.llcMisses, b.llcMisses);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.llcBypasses, b.llcBypasses);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, DeterminismTest,
    ::testing::Values(PolicyKind::Lru, PolicyKind::Random,
                      PolicyKind::Dip, PolicyKind::Rrip,
                      PolicyKind::Sampler, PolicyKind::Tdbp,
                      PolicyKind::Cdbp, PolicyKind::RandomSampler));

} // anonymous namespace
} // namespace sdbp
