/**
 * @file
 * Unit tests for the sim layer: policy factory, run configs, and
 * metric plumbing.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "cache/dip.hh"
#include "cache/lru.hh"
#include "cache/random_repl.hh"
#include "cache/rrip.hh"
#include "sim/runner.hh"

namespace sdbp
{
namespace
{

TEST(PolicyFactory, BuildsEveryKindWithCorrectGeometry)
{
    const std::vector<PolicyKind> kinds = {
        PolicyKind::Lru,         PolicyKind::Random,
        PolicyKind::Dip,         PolicyKind::Tadip,
        PolicyKind::Rrip,        PolicyKind::Sampler,
        PolicyKind::Tdbp,        PolicyKind::Cdbp,
        PolicyKind::RandomSampler, PolicyKind::RandomCdbp,
        PolicyKind::SamplingCounting,
    };
    for (const auto kind : kinds) {
        PolicyOptions opts;
        opts.numThreads = kind == PolicyKind::Tadip ? 4 : 1;
        auto policy = makePolicy(kind, 2048, 16, opts);
        ASSERT_NE(policy, nullptr) << policyName(kind);
        EXPECT_EQ(policy->numSets(), 2048u);
        EXPECT_EQ(policy->assoc(), 16u);
        EXPECT_FALSE(policyName(kind).empty());
    }
}

TEST(PolicyFactory, DbrbKindsExposePredictors)
{
    auto sampler = makePolicy(PolicyKind::Sampler, 2048, 16);
    auto *dbrb = dynamic_cast<DeadBlockPolicy *>(sampler.get());
    ASSERT_NE(dbrb, nullptr);
    EXPECT_EQ(dbrb->predictor().name(), "sampler");
    EXPECT_EQ(dbrb->inner().name(), "lru");

    auto rc = makePolicy(PolicyKind::RandomCdbp, 2048, 16);
    auto *dbrb2 = dynamic_cast<DeadBlockPolicy *>(rc.get());
    ASSERT_NE(dbrb2, nullptr);
    EXPECT_EQ(dbrb2->predictor().name(), "counting");
    EXPECT_EQ(dbrb2->inner().name(), "random");
}

TEST(PolicyFactory, SdbpOverrideIsHonored)
{
    PolicyOptions opts;
    opts.sdbp = SdbpConfig::singleTable();
    opts.sdbp->useSampler = false;
    auto policy = makePolicy(PolicyKind::Sampler, 2048, 16, opts);
    auto *dbrb = dynamic_cast<DeadBlockPolicy *>(policy.get());
    ASSERT_NE(dbrb, nullptr);
    const auto &pred = dynamic_cast<const SamplingDeadBlockPredictor &>(
        dbrb->predictor());
    EXPECT_FALSE(pred.config().useSampler);
    EXPECT_EQ(pred.config().table.numTables, 1u);
    // llcSets is always patched to the real geometry.
    EXPECT_EQ(pred.config().llcSets, 2048u);
}

TEST(PolicyFactory, BypassDisableFlagPropagates)
{
    PolicyOptions opts;
    opts.dbrb.enableBypass = false;
    auto policy = makePolicy(PolicyKind::Sampler, 64, 4, opts);
    auto *dbrb = dynamic_cast<DeadBlockPolicyBase *>(policy.get());
    ASSERT_NE(dbrb, nullptr);
    EXPECT_FALSE(dbrb->shouldBypass(1, Access::atBlock(1)));
}

TEST(PolicyFactory, PolicyLists)
{
    EXPECT_EQ(lruDefaultPolicies().size(), 5u);
    EXPECT_EQ(randomDefaultPolicies().size(), 3u);
    EXPECT_EQ(multicoreLruPolicies().size(), 5u);
    EXPECT_EQ(multicoreRandomPolicies().size(), 3u);
}

TEST(RunConfigTest, SingleCoreDefaultsMatchPaperGeometry)
{
    const RunConfig cfg = RunConfig::singleCore();
    EXPECT_EQ(cfg.hierarchy.l1.sizeBytes(), 32u * 1024);
    EXPECT_EQ(cfg.hierarchy.l2.sizeBytes(), 256u * 1024);
    EXPECT_EQ(cfg.hierarchy.llc.sizeBytes(), 2u * 1024 * 1024);
    EXPECT_EQ(cfg.hierarchy.llc.assoc, 16u);
    EXPECT_EQ(cfg.core.width, 4u);
    EXPECT_EQ(cfg.core.robSize, 128u);
}

TEST(RunConfigTest, QuadCoreUsesSharedEightMegLlc)
{
    const RunConfig cfg = RunConfig::quadCore();
    EXPECT_EQ(cfg.hierarchy.numCores, 4u);
    EXPECT_EQ(cfg.hierarchy.llc.sizeBytes(), 8u * 1024 * 1024);
    EXPECT_EQ(cfg.policy.numThreads, 4u);
}

TEST(RunConfigTest, EnvironmentOverridesInstructionCounts)
{
    setenv("SDBP_INSTRUCTIONS", "123456", 1);
    setenv("SDBP_WARMUP", "7890", 1);
    const RunConfig cfg = RunConfig::singleCore();
    EXPECT_EQ(cfg.measureInstructions, 123456u);
    EXPECT_EQ(cfg.warmupInstructions, 7890u);
    unsetenv("SDBP_INSTRUCTIONS");
    unsetenv("SDBP_WARMUP");
}

TEST(RunConfigDeathTest, InvalidEnvironmentIsFatal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    // A malformed knob is a one-line fatal diagnostic, never a
    // silent fallback (README environment-variable table).
    setenv("SDBP_INSTRUCTIONS", "not-a-number", 1);
    EXPECT_EXIT(RunConfig::singleCore(), testing::ExitedWithCode(1),
                "not an unsigned integer");
    unsetenv("SDBP_INSTRUCTIONS");
}

TEST(Runner, ResultCarriesBenchmarkAndPolicyNames)
{
    RunConfig cfg = RunConfig::singleCore();
    cfg.warmupInstructions = 20000;
    cfg.measureInstructions = 50000;
    const RunResult r = runSingleCore("416.gamess", PolicyKind::Dip,
                                      cfg);
    EXPECT_EQ(r.benchmark, "416.gamess");
    EXPECT_EQ(r.policy, "DIP");
    EXPECT_GE(r.instructions, 50000u);
    EXPECT_FALSE(r.hasDbrb);
}

TEST(Runner, TraceRecordingMarksMeasureBoundary)
{
    RunConfig cfg = RunConfig::singleCore();
    cfg.warmupInstructions = 50000;
    cfg.measureInstructions = 50000;
    cfg.recordLlcTrace = true;
    const RunResult r = runSingleCore("462.libquantum",
                                      PolicyKind::Lru, cfg);
    EXPECT_GT(r.llcTrace.size(), 0u);
    EXPECT_GT(r.llcTraceMeasureStart, 0u);
    EXPECT_LT(r.llcTraceMeasureStart, r.llcTrace.size());
}

TEST(Runner, MulticoreResultHasPerThreadData)
{
    RunConfig cfg = RunConfig::quadCore();
    cfg.warmupInstructions = 20000;
    cfg.measureInstructions = 50000;
    MixProfile mix{"t", {"416.gamess", "453.povray", "444.namd",
                         "454.calculix"}};
    const auto r = runMulticore(mix, PolicyKind::Tadip, cfg);
    EXPECT_EQ(r.policy, "TADIP");
    EXPECT_EQ(r.ipc.size(), 4u);
    EXPECT_EQ(r.benchmarks.size(), 4u);
    EXPECT_GT(r.totalInstructions, 4u * 50000u - 1);
}

} // anonymous namespace
} // namespace sdbp
