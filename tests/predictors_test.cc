/**
 * @file
 * Unit tests for the baseline dead block predictors: reftrace and
 * counting (LvP).
 */

#include <gtest/gtest.h>

#include "predictor/counting.hh"
#include "predictor/reftrace.hh"
#include "predictor/sampling_counting.hh"

namespace sdbp
{
namespace
{

// ---- reftrace ----

TEST(RefTrace, ColdPredictorPredictsLive)
{
    RefTracePredictor p;
    EXPECT_FALSE(p.onAccess(0, Access::atBlock(0x10, 0x400000, 0)));
}

TEST(RefTrace, LearnsDeathTraceAfterRepeatedGenerations)
{
    RefTracePredictor p;
    // Block filled by PC A, touched by PC B, then evicted; repeat.
    // After two generations the A+B signature saturates to "dead".
    for (int gen = 0; gen < 3; ++gen) {
        const Addr blk = 0x100 + gen; // distinct blocks, same trace
        p.onAccess(0, Access::atBlock(blk, 0xA0, 0));
        p.onFill(0, Access::atBlock(blk, 0xA0));
        p.onAccess(0, Access::atBlock(blk, 0xB0, 0));
        p.onEvict(0, Access::atBlock(blk));
    }
    // A fresh block following the same trace is predicted dead at
    // the same point.
    const Addr blk = 0x900;
    p.onAccess(0, Access::atBlock(blk, 0xA0, 0));
    p.onFill(0, Access::atBlock(blk, 0xA0));
    EXPECT_TRUE(p.onAccess(0, Access::atBlock(blk, 0xB0, 0)));
}

TEST(RefTrace, ReaccessTrainsAgainstPrematureSignature)
{
    RefTracePredictor p;
    // Train signature(A) as a death trace...
    for (int gen = 0; gen < 3; ++gen) {
        const Addr blk = 0x100 + gen;
        p.onAccess(0, Access::atBlock(blk, 0xA0, 0));
        p.onFill(0, Access::atBlock(blk, 0xA0));
        p.onEvict(0, Access::atBlock(blk));
    }
    EXPECT_TRUE(p.onAccess(0, Access::atBlock(0x900, 0xA0, 0))); // dead on arrival
    // ...then observe blocks that survive past it: the dead-on-
    // arrival prediction must eventually flip.
    for (int gen = 0; gen < 4; ++gen) {
        const Addr blk = 0x200 + gen;
        p.onAccess(0, Access::atBlock(blk, 0xA0, 0));
        p.onFill(0, Access::atBlock(blk, 0xA0));
        p.onAccess(0, Access::atBlock(blk, 0xB0, 0)); // re-access decrements sig(A)
        p.onEvict(0, Access::atBlock(blk));
    }
    EXPECT_FALSE(p.onAccess(0, Access::atBlock(0x901, 0xA0, 0)));
}

TEST(RefTrace, SignatureAccumulatesPerBlock)
{
    RefTracePredictor p;
    p.onAccess(0, Access::atBlock(0x10, 0xA0, 0));
    p.onFill(0, Access::atBlock(0x10, 0xA0));
    const std::uint64_t s1 = p.signatureOf(0x10);
    p.onAccess(0, Access::atBlock(0x10, 0xB0, 0));
    const std::uint64_t s2 = p.signatureOf(0x10);
    EXPECT_NE(s1, s2);
    // A different block touched by the same PCs gets the same trace.
    p.onAccess(0, Access::atBlock(0x20, 0xA0, 0));
    p.onFill(0, Access::atBlock(0x20, 0xA0));
    p.onAccess(0, Access::atBlock(0x20, 0xB0, 0));
    EXPECT_EQ(p.signatureOf(0x20), s2);
}

TEST(RefTrace, EvictionOfUnknownBlockIsIgnored)
{
    RefTracePredictor p;
    EXPECT_NO_FATAL_FAILURE(p.onEvict(0, Access::atBlock(0x999)));
}

TEST(RefTrace, StorageMatchesTableI)
{
    RefTracePredictor p;
    // 2^15 two-bit counters = 8 KB of predictor state.
    EXPECT_EQ(p.storageBits(), (1ull << 15) * 2);
    // 15-bit signature + 1 prediction bit per block = 16 bits.
    EXPECT_EQ(p.metadataBitsPerBlock(), 16u);
}

// ---- counting (LvP) ----

TEST(Counting, ColdPredictorPredictsLive)
{
    CountingPredictor p;
    EXPECT_FALSE(p.onAccess(0, Access::atBlock(0x10, 0x400000, 0)));
}

TEST(Counting, PredictsDeadAtLearnedAccessCount)
{
    CountingPredictor p;
    const PC fill_pc = 0x400100;
    // Two generations of exactly 3 accesses (fill + 2 hits) set the
    // count with confidence.
    for (int gen = 0; gen < 2; ++gen) {
        const Addr blk = 0x40;
        p.onAccess(0, Access::atBlock(blk, fill_pc, 0));
        p.onFill(0, Access::atBlock(blk, fill_pc));
        p.onAccess(0, Access::atBlock(blk, fill_pc, 0));
        p.onAccess(0, Access::atBlock(blk, fill_pc, 0));
        p.onEvict(0, Access::atBlock(blk));
    }
    // Third generation: live until the 3rd access, dead at it.
    const Addr blk = 0x40;
    p.onAccess(0, Access::atBlock(blk, fill_pc, 0));
    p.onFill(0, Access::atBlock(blk, fill_pc));
    EXPECT_FALSE(p.onAccess(0, Access::atBlock(blk, fill_pc, 0)));
    EXPECT_TRUE(p.onAccess(0, Access::atBlock(blk, fill_pc, 0)));
}

TEST(Counting, ConfidenceDropsWhenCountsDisagree)
{
    CountingPredictor p;
    const PC fill_pc = 0x400100;
    const Addr blk = 0x40;
    // Generation of 2 accesses, then generation of 4: no confidence.
    p.onAccess(0, Access::atBlock(blk, fill_pc, 0));
    p.onFill(0, Access::atBlock(blk, fill_pc));
    p.onAccess(0, Access::atBlock(blk, fill_pc, 0));
    p.onEvict(0, Access::atBlock(blk));
    p.onAccess(0, Access::atBlock(blk, fill_pc, 0));
    p.onFill(0, Access::atBlock(blk, fill_pc));
    for (int i = 0; i < 3; ++i)
        p.onAccess(0, Access::atBlock(blk, fill_pc, 0));
    p.onEvict(0, Access::atBlock(blk));
    // New generation: even at matching counts, no confident "dead".
    p.onAccess(0, Access::atBlock(blk, fill_pc, 0));
    p.onFill(0, Access::atBlock(blk, fill_pc));
    for (int i = 0; i < 6; ++i)
        EXPECT_FALSE(p.onAccess(0, Access::atBlock(blk, fill_pc, 0)));
}

TEST(Counting, DeadOnArrivalForSingleAccessGenerations)
{
    CountingPredictor p;
    const PC fill_pc = 0x400200;
    const Addr blk = 0x80;
    for (int gen = 0; gen < 2; ++gen) {
        p.onAccess(0, Access::atBlock(blk, fill_pc, 0));
        p.onFill(0, Access::atBlock(blk, fill_pc));
        p.onEvict(0, Access::atBlock(blk));
    }
    // Never-reused blocks are predicted dead on arrival (bypass).
    EXPECT_TRUE(p.onAccess(0, Access::atBlock(blk, fill_pc, 0)));
}

TEST(Counting, DistinctBlocksUseDistinctEntries)
{
    CountingPredictor p;
    const PC fill_pc = 0x400300;
    // Train block A for single-access generations.
    for (int gen = 0; gen < 2; ++gen) {
        p.onAccess(0, Access::atBlock(0x1000, fill_pc, 0));
        p.onFill(0, Access::atBlock(0x1000, fill_pc));
        p.onEvict(0, Access::atBlock(0x1000));
    }
    EXPECT_TRUE(p.onAccess(0, Access::atBlock(0x1000, fill_pc, 0)));
    // Block B (different address hash) is still cold.
    EXPECT_FALSE(p.onAccess(0, Access::atBlock(0x2000, fill_pc, 0)));
}

TEST(Counting, StorageMatchesTableI)
{
    CountingPredictor p;
    // 2^16 entries x (4-bit counter + 1 confidence bit) = 40 KB.
    EXPECT_EQ(p.storageBits(), (1ull << 16) * 5);
    // 8-bit PC + 4 + 4 counters + confidence = 17 bits per block.
    EXPECT_EQ(p.metadataBitsPerBlock(), 17u);
}

TEST(Counting, EvictionOfUnknownBlockIsIgnored)
{
    CountingPredictor p;
    EXPECT_NO_FATAL_FAILURE(p.onEvict(0, Access::atBlock(0x999)));
}

TEST(RefTrace, BypassedFillsNeverRetrain)
{
    // The structural weakness the paper exploits: once a fill
    // signature is predicted dead and its blocks bypass the cache,
    // no per-block metadata exists, so nothing can ever decrement
    // the counter again — the bypass decision is self-sustaining.
    RefTracePredictor p;
    // Two thrashing generations lock sig(A) at the threshold.
    for (int gen = 0; gen < 2; ++gen) {
        const Addr blk = 0x100 + gen;
        p.onAccess(0, Access::atBlock(blk, 0xA0, 0));
        p.onFill(0, Access::atBlock(blk, 0xA0));
        p.onEvict(0, Access::atBlock(blk));
    }
    EXPECT_TRUE(p.onAccess(0, Access::atBlock(0x900, 0xA0, 0)));
    // From now on the DBRB policy would bypass: simulate many
    // accesses with NO fill/evict (bypassed blocks get no metadata).
    for (Addr a = 0; a < 100; ++a)
        EXPECT_TRUE(p.onAccess(0, Access::atBlock(0x1000 + a, 0xA0, 0)));
    // Still predicted dead: no recovery path exists.
    EXPECT_TRUE(p.onAccess(0, Access::atBlock(0x2000, 0xA0, 0)));
}

// ---- sampling counting (paper Sec. VIII future work) ----

SamplingCountingConfig
tinySamplingCounting()
{
    SamplingCountingConfig cfg;
    cfg.llcSets = 64;
    cfg.samplerSets = 1;
    cfg.samplerAssoc = 4;
    return cfg;
}

TEST(SamplingCounting, ColdPredictorPredictsLive)
{
    SamplingCountingPredictor p(tinySamplingCounting());
    EXPECT_FALSE(p.onAccess(0, Access::atBlock(0x10, 0x400000, 0)));
}

TEST(SamplingCounting, OnlySampledSetsTrain)
{
    SamplingCountingPredictor p(tinySamplingCounting());
    EXPECT_TRUE(p.isSampledSet(0));
    EXPECT_FALSE(p.isSampledSet(1));
    EXPECT_FALSE(p.isSampledSet(63));
}

TEST(SamplingCounting, LearnsSingleAccessGenerationsFromSampler)
{
    SamplingCountingPredictor p(tinySamplingCounting());
    const PC pc = 0x400500;
    // Stream distinct blocks through sampled set 0: each tag is
    // touched once and evicted from the tiny sampler with count 1.
    // Three consistent generations build the 2-of-3 confidence.
    for (Addr a = 0; a < 64; ++a)
        p.onAccess(0, Access::atBlock(a << 6, pc, 0));
    // Dead-on-arrival: a fresh block of this PC is predicted dead.
    EXPECT_TRUE(p.onAccess(0, Access::atBlock(0xffff << 6, pc, 0)));
}

TEST(SamplingCounting, PredictsDeadAtLearnedCount)
{
    SamplingCountingPredictor p(tinySamplingCounting());
    const PC pc = 0x400600;
    // Sampler sees generations of exactly 2 touches.
    for (int round = 0; round < 24; ++round) {
        // Two-touch visits to rotating tags in the sampled set;
        // with 4 sampler ways and 8 live tags, entries are evicted
        // between rounds, closing each generation at count 2.
        for (Addr t = 0; t < 8; ++t) {
            const Addr blk = (0x100 + round * 8 + t) << 6;
            p.onAccess(0, Access::atBlock(blk, pc, 0));
            p.onAccess(0, Access::atBlock(blk, pc, 0));
        }
    }
    // LLC side: a resident block of this PC becomes dead at its 2nd
    // access.
    const Addr blk = 0x555000;
    p.onAccess(5, Access::atBlock(blk, pc, 0)); // miss query
    p.onFill(5, Access::atBlock(blk, pc));
    EXPECT_TRUE(p.onAccess(5, Access::atBlock(blk, pc, 0)));
}

TEST(SamplingCounting, CacheEvictionsDoNotTrain)
{
    SamplingCountingPredictor p(tinySamplingCounting());
    const PC pc = 0x400700;
    // Evictions in unsampled sets never touch the table.
    for (Addr a = 0; a < 100; ++a) {
        p.onAccess(3, Access::atBlock(a, pc, 0));
        p.onFill(3, Access::atBlock(a, pc));
        p.onEvict(3, Access::atBlock(a));
    }
    EXPECT_FALSE(p.onAccess(3, Access::atBlock(0x999, pc, 0)));
}

TEST(SamplingCounting, StorageIsSmall)
{
    SamplingCountingPredictor p; // default geometry
    // Table 4096 x 6 bits + sampler state: well under reftrace's
    // 72 KB total.
    EXPECT_LT(p.storageBits() / 8, 8 * 1024u);
    EXPECT_LT(p.metadataBitsPerBlock(), 17u + 1);
}

} // anonymous namespace
} // namespace sdbp
