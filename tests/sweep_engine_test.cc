/**
 * @file
 * Tests for the parallel experiment engine (`sim/sweep`): the
 * determinism contract (parallel grids bit-identical to the serial
 * loop), parallelFor semantics, SDBP_JOBS parsing, per-cell artifact
 * path derivation, and thread-safety of the isolatedIpc memo.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "obs/json.hh"
#include "sim/runner.hh"
#include "sim/sweep.hh"
#include "trace/spec_profiles.hh"

namespace sdbp
{
namespace
{

/** Tiny budget: determinism does not need long runs. */
RunConfig
tinyConfig()
{
    RunConfig cfg = RunConfig::singleCore();
    cfg.warmupInstructions = 50000;
    cfg.measureInstructions = 200000;
    return cfg;
}

void
expectSameRun(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.benchmark, b.benchmark);
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.mpki, b.mpki);
    EXPECT_EQ(a.llcAccesses, b.llcAccesses);
    EXPECT_EQ(a.llcMisses, b.llcMisses);
    EXPECT_EQ(a.llcBypasses, b.llcBypasses);
    EXPECT_EQ(a.hasDbrb, b.hasDbrb);
    EXPECT_EQ(a.dbrb.predictions, b.dbrb.predictions);
    EXPECT_EQ(a.dbrb.positives, b.dbrb.positives);
    EXPECT_EQ(a.dbrb.falsePositiveHits, b.dbrb.falsePositiveHits);
    EXPECT_EQ(a.dbrb.bypassReuses, b.dbrb.bypassReuses);
    EXPECT_EQ(a.dbrb.deadEvictions, b.dbrb.deadEvictions);
    EXPECT_EQ(a.dbrb.bypasses, b.dbrb.bypasses);
}

TEST(SweepEngine, GridMatchesSerialLoop)
{
    const RunConfig cfg = tinyConfig();
    const std::vector<std::string> benches = {"456.hmmer", "429.mcf",
                                              "450.soplex"};
    const std::vector<PolicyKind> policies = {PolicyKind::Lru,
                                              PolicyKind::Sampler};

    const sweep::Grid par = sweep::runGrid(benches, policies, cfg, 4);
    ASSERT_EQ(par.cells.size(), benches.size() * policies.size());
    EXPECT_EQ(par.benchmarks, benches);

    for (std::size_t b = 0; b < benches.size(); ++b)
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const RunResult serial =
                runSingleCore(benches[b], policies[p], cfg);
            expectSameRun(par.at(b, p), serial);
        }
}

TEST(SweepEngine, JobCountDoesNotChangeResults)
{
    const RunConfig cfg = tinyConfig();
    const std::vector<std::string> benches = {"429.mcf", "403.gcc"};
    const std::vector<PolicyKind> policies = {PolicyKind::Sampler};

    const sweep::Grid one = sweep::runGrid(benches, policies, cfg, 1);
    const sweep::Grid four = sweep::runGrid(benches, policies, cfg, 4);
    ASSERT_EQ(one.cells.size(), four.cells.size());
    for (std::size_t i = 0; i < one.cells.size(); ++i)
        expectSameRun(one.cells[i], four.cells[i]);
}

/** Artifact JSON with wall-clock-dependent members removed. */
obs::JsonValue
scrubbed(const obs::JsonValue &doc)
{
    obs::JsonValue out = obs::JsonValue::object();
    for (const auto &[key, value] : doc.members())
        if (key != "profile" && key != "timing")
            out.set(key, value);
    return out;
}

TEST(SweepEngine, ArtifactsAreDeterministicModuloProfile)
{
    RunConfig cfg = tinyConfig();
    cfg.obs.collect = true;

    const std::vector<std::string> benches = {"456.hmmer"};
    const std::vector<PolicyKind> policies = {PolicyKind::Sampler};

    const sweep::Grid a = sweep::runGrid(benches, policies, cfg, 1);
    const sweep::Grid b = sweep::runGrid(benches, policies, cfg, 2);
    ASSERT_TRUE(a.at(0, 0).artifacts);
    ASSERT_TRUE(b.at(0, 0).artifacts);
    // The profiler section carries wall-clock seconds; everything
    // else (stats, intervals, config echo) must match byte for byte.
    EXPECT_EQ(scrubbed(a.at(0, 0).artifacts->toJson()).dump(),
              scrubbed(b.at(0, 0).artifacts->toJson()).dump());
}

TEST(SweepEngine, MixGridMatchesSerialLoop)
{
    RunConfig cfg = RunConfig::quadCore();
    cfg.warmupInstructions = 40000;
    cfg.measureInstructions = 120000;

    const auto &all = multicoreMixes();
    ASSERT_GE(all.size(), 2u);
    const std::vector<MixProfile> mixes(all.begin(), all.begin() + 2);
    const std::vector<PolicyKind> policies = {PolicyKind::Lru,
                                              PolicyKind::Sampler};

    const sweep::MixGrid par =
        sweep::runMixGrid(mixes, policies, cfg, 4);
    ASSERT_EQ(par.cells.size(), mixes.size() * policies.size());

    for (std::size_t m = 0; m < mixes.size(); ++m)
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const MulticoreRunResult serial =
                runMulticore(mixes[m], policies[p], cfg);
            const MulticoreRunResult &cell = par.at(m, p);
            EXPECT_EQ(cell.mix, serial.mix);
            EXPECT_EQ(cell.policy, serial.policy);
            EXPECT_EQ(cell.ipc, serial.ipc);
            EXPECT_EQ(cell.llcMisses, serial.llcMisses);
            EXPECT_EQ(cell.totalInstructions,
                      serial.totalInstructions);
            EXPECT_EQ(cell.mpki, serial.mpki);
        }
}

TEST(SweepEngine, DefaultJobsHonorsEnvironment)
{
    ::setenv("SDBP_JOBS", "3", 1);
    EXPECT_EQ(sweep::defaultJobs(), 3u);

    ::setenv("SDBP_JOBS", "1", 1);
    EXPECT_EQ(sweep::defaultJobs(), 1u);

    ::unsetenv("SDBP_JOBS");
    EXPECT_GE(sweep::defaultJobs(), 1u);
}

TEST(SweepEngineDeathTest, MalformedJobsEnvironmentIsFatal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    // Malformed or out-of-range SDBP_JOBS is a hard error with a
    // one-line diagnostic, never a silent fallback.
    ::setenv("SDBP_JOBS", "0", 1);
    EXPECT_EXIT(sweep::defaultJobs(), testing::ExitedWithCode(1),
                "SDBP_JOBS");
    ::setenv("SDBP_JOBS", "banana", 1);
    EXPECT_EXIT(sweep::defaultJobs(), testing::ExitedWithCode(1),
                "not an unsigned integer");
    ::setenv("SDBP_JOBS", "12banana", 1);
    EXPECT_EXIT(sweep::defaultJobs(), testing::ExitedWithCode(1),
                "not an unsigned integer");
    ::setenv("SDBP_JOBS", "-2", 1);
    EXPECT_EXIT(sweep::defaultJobs(), testing::ExitedWithCode(1),
                "not an unsigned integer");
    ::setenv("SDBP_JOBS", "5000", 1);
    EXPECT_EXIT(sweep::defaultJobs(), testing::ExitedWithCode(1),
                "out of range");
    ::unsetenv("SDBP_JOBS");
}

TEST(SweepEngine, DefaultRetriesHonorsEnvironment)
{
    ::setenv("SDBP_RETRIES", "2", 1);
    EXPECT_EQ(sweep::defaultRetries(), 2u);
    ::unsetenv("SDBP_RETRIES");
    EXPECT_EQ(sweep::defaultRetries(), 0u);
}

TEST(SweepEngineDeathTest, MalformedRetriesEnvironmentIsFatal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    ::setenv("SDBP_RETRIES", "17", 1);
    EXPECT_EXIT(sweep::defaultRetries(), testing::ExitedWithCode(1),
                "out of range");
    ::setenv("SDBP_RETRIES", "two", 1);
    EXPECT_EXIT(sweep::defaultRetries(), testing::ExitedWithCode(1),
                "not an unsigned integer");
    ::unsetenv("SDBP_RETRIES");
}

TEST(SweepEngine, CellArtifactPathDerivation)
{
    EXPECT_EQ(sweep::cellArtifactPath("run.json", "456.hmmer",
                                      "Random Sampler"),
              "run.456_hmmer.random_sampler.json");
    EXPECT_EQ(sweep::cellArtifactPath("out/stats.json", "429.mcf",
                                      "LRU"),
              "out/stats.429_mcf.lru.json");
    // No extension: suffixes are appended.
    EXPECT_EQ(sweep::cellArtifactPath("artifacts", "mix1", "LRU"),
              "artifacts.mix1.lru");
    // Dots in directory names must not be mistaken for extensions.
    EXPECT_EQ(sweep::cellArtifactPath("a.b/stats", "x", "LRU"),
              "a.b/stats.x.lru");
}

TEST(SweepEngine, ParallelForCoversEveryIndexOnce)
{
    for (unsigned jobs : {1u, 2u, 8u}) {
        std::vector<std::atomic<int>> hits(64);
        sweep::parallelFor(hits.size(), jobs,
                           [&](std::size_t i) { ++hits[i]; });
        for (const auto &h : hits)
            EXPECT_EQ(h.load(), 1);
    }
}

TEST(SweepEngine, ParallelForEdgeCases)
{
    // n == 0: no calls, no hang.
    sweep::parallelFor(0, 4, [](std::size_t) { FAIL(); });

    // jobs > n: every index still runs exactly once.
    std::vector<std::atomic<int>> hits(3);
    sweep::parallelFor(hits.size(), 16,
                       [&](std::size_t i) { ++hits[i]; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(SweepEngine, ParallelForRethrowsLowestFailingIndex)
{
    std::atomic<int> ran{0};
    try {
        sweep::parallelFor(8, 4, [&](std::size_t i) {
            ++ran;
            if (i == 5)
                throw std::runtime_error("five");
            if (i == 2)
                throw std::runtime_error("two");
        });
        FAIL() << "expected parallelFor to rethrow";
    } catch (const std::runtime_error &e) {
        // Deterministic error reporting: the lowest failing index
        // wins, matching what a serial loop would hit first.
        EXPECT_STREQ(e.what(), "two");
    }
    // Every task still ran to completion before the rethrow.
    EXPECT_EQ(ran.load(), 8);
}

TEST(SweepEngine, IsolatedIpcIsThreadSafeAndConsistent)
{
    RunConfig cfg = RunConfig::quadCore();
    cfg.warmupInstructions = 40000;
    cfg.measureInstructions = 120000;

    const std::string bench = "429.mcf";
    const double expected = isolatedIpc(bench, cfg);

    std::vector<double> got(8);
    sweep::parallelFor(got.size(), 4, [&](std::size_t i) {
        got[i] = isolatedIpc(bench, cfg);
    });
    for (double v : got)
        EXPECT_EQ(v, expected);
}

} // namespace
} // namespace sdbp
