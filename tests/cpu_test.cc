/**
 * @file
 * Unit tests for the core timing model and the multi-core system.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>

#include "cache/lru.hh"
#include "cpu/core_model.hh"
#include "cpu/system.hh"

namespace sdbp
{
namespace
{

TEST(CoreModelTest, PeakIpcIsWidth)
{
    CoreModel core;
    core.executeNonMem(4000);
    const double ipc = static_cast<double>(core.instructions()) /
        static_cast<double>(core.cycles());
    EXPECT_GT(ipc, 3.5);
    EXPECT_LE(ipc, 4.0);
}

TEST(CoreModelTest, PipelineFillDelaysFirstInstructions)
{
    CoreModel core;
    core.executeNonMem(1);
    EXPECT_GE(core.cycles(), 8u); // 8-stage pipeline fill
}

TEST(CoreModelTest, IndependentLoadsOverlap)
{
    // 32 independent 200-cycle loads fit in the 128-entry window:
    // total time must be near 200, not 32 x 200.
    CoreModel core;
    for (int i = 0; i < 32; ++i)
        core.executeMem(200, true, false);
    EXPECT_LT(core.cycles(), 300u);
}

TEST(CoreModelTest, DependentLoadsSerialize)
{
    CoreModel core;
    for (int i = 0; i < 32; ++i)
        core.executeMem(200, true, true);
    EXPECT_GE(core.cycles(), 32u * 200);
}

TEST(CoreModelTest, WindowLimitsMemoryLevelParallelism)
{
    // 256 independent long loads cannot all overlap in a 128-entry
    // window: at least two "waves" are needed.
    CoreModel core;
    for (int i = 0; i < 256; ++i)
        core.executeMem(400, true, false);
    EXPECT_GE(core.cycles(), 2u * 400);
    EXPECT_LT(core.cycles(), 5u * 400);
}

TEST(CoreModelTest, StoresDoNotStall)
{
    CoreModel core;
    for (int i = 0; i < 100; ++i)
        core.executeMem(200, false, false);
    EXPECT_LT(core.cycles(), 200u);
}

TEST(CoreModelTest, ResetClearsEverything)
{
    CoreModel core;
    core.executeMem(500, true, false);
    core.reset();
    EXPECT_EQ(core.instructions(), 0u);
    core.executeNonMem(40);
    EXPECT_LT(core.cycles(), 30u);
}

TEST(CoreModelTest, SmallWindowStallsSooner)
{
    CoreConfig small;
    small.robSize = 4;
    CoreModel core(small);
    // One long load followed by many quick instructions: the window
    // fills and dispatch stalls behind the load.
    core.executeMem(1000, true, false);
    core.executeNonMem(100);
    EXPECT_GE(core.cycles(), 1000u);
}

// ---- System ----

HierarchyConfig
tinyHierarchy(std::uint32_t cores)
{
    HierarchyConfig cfg;
    cfg.l1 = {.name = "L1", .numSets = 8, .assoc = 2, .latency = 3};
    cfg.l2 = {.name = "L2", .numSets = 16, .assoc = 4, .latency = 12};
    cfg.llc = {.name = "LLC", .numSets = 64, .assoc = 8, .latency = 30};
    cfg.numCores = cores;
    return cfg;
}

/** Trivial generator: sequential scan, no gaps. */
class ScanGen : public AccessGenerator
{
  public:
    explicit ScanGen(Addr base, std::uint64_t blocks)
        : base_(base), blocks_(blocks)
    {
    }
    void
    nextBatch(std::span<Access> out) override
    {
        for (auto &r : out) {
            r = Access{};
            r.gap = 1;
            r.pc = 0x400000;
            r.addr = base_ + (pos_++ % blocks_) * blockBytes;
            ++emitted_;
        }
    }
    void
    reset() override
    {
        pos_ = 0;
        ++resets_;
    }
    std::uint64_t emitted_ = 0;
    unsigned resets_ = 0;

  private:
    Addr base_;
    std::uint64_t blocks_;
    std::uint64_t pos_ = 0;
};

TEST(SystemTest, SingleCoreRunsExactInstructionBudget)
{
    System sys(tinyHierarchy(1), CoreConfig{},
               std::make_unique<LruPolicy>(64, 8));
    ScanGen gen(0, 1024);
    const auto results = sys.run({&gen}, 0, 10000);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_GE(results[0].instructions, 10000u);
    EXPECT_LE(results[0].instructions, 10002u);
    EXPECT_GT(results[0].ipc, 0.0);
    EXPECT_LE(results[0].ipc, 4.0);
}

TEST(SystemTest, ExpiredDeadlineThrowsSimulationTimeout)
{
    System sys(tinyHierarchy(1), CoreConfig{},
               std::make_unique<LruPolicy>(64, 8));
    sys.setDeadline(std::chrono::steady_clock::now() -
                    std::chrono::seconds(1));
    ScanGen gen(0, 1024);
    // The deadline check strides every 2^15 steps, so give the run
    // enough budget to hit it.
    EXPECT_THROW(sys.run({&gen}, 0, 1000000), SimulationTimeout);
}

TEST(SystemTest, GenerousDeadlineDoesNotFire)
{
    System sys(tinyHierarchy(1), CoreConfig{},
               std::make_unique<LruPolicy>(64, 8));
    sys.setDeadline(std::chrono::steady_clock::now() +
                    std::chrono::hours(1));
    ScanGen gen(0, 1024);
    const auto results = sys.run({&gen}, 0, 100000);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_GE(results[0].instructions, 100000u);
}

TEST(SystemTest, WarmupClearsStatsButKeepsContent)
{
    System sys(tinyHierarchy(1), CoreConfig{},
               std::make_unique<LruPolicy>(64, 8));
    // Working set fits every cache: after warm-up there must be no
    // further LLC misses at all.
    ScanGen gen(0, 8);
    sys.run({&gen}, 2000, 2000);
    EXPECT_EQ(sys.hierarchy().llc().stats().demandMisses, 0u);
}

TEST(SystemTest, AllCoresFinishAndRestart)
{
    System sys(tinyHierarchy(2), CoreConfig{},
               std::make_unique<LruPolicy>(64, 8));
    ScanGen fast(0, 8);            // tiny working set: high IPC
    ScanGen slow(1ull << 30, 4096); // streams through the LLC
    const auto results = sys.run({&fast, &slow}, 0, 5000);
    ASSERT_EQ(results.size(), 2u);
    for (const auto &r : results) {
        EXPECT_GE(r.instructions, 5000u);
        EXPECT_GT(r.ipc, 0.0);
    }
    // The fast core finished first and was restarted at least once.
    EXPECT_EQ(fast.resets_, 1u);
    EXPECT_EQ(slow.resets_, 1u);
    // The fast core must have kept issuing accesses after finishing
    // (contention is preserved until everyone is done).
    EXPECT_GT(fast.emitted_ * 2, 5000u / 2);
}

TEST(SystemTest, FasterCoreGetsHigherIpc)
{
    System sys(tinyHierarchy(2), CoreConfig{},
               std::make_unique<LruPolicy>(64, 8));
    ScanGen fast(0, 8);
    ScanGen slow(1ull << 30, 65536);
    const auto results = sys.run({&fast, &slow}, 500, 5000);
    EXPECT_GT(results[0].ipc, results[1].ipc);
}

TEST(SystemTest, SharedMemoryBandwidthThrottles)
{
    // Two cores streaming through memory: a bounded DRAM service
    // interval must cost cycles relative to unlimited bandwidth.
    auto run_with = [](Cycle interval) {
        HierarchyConfig cfg = tinyHierarchy(2);
        cfg.memServiceInterval = interval;
        System sys(cfg, CoreConfig{},
                   std::make_unique<LruPolicy>(64, 8));
        ScanGen a(0, 1 << 20);            // pure miss streams
        ScanGen b(1ull << 30, 1 << 20);
        const auto results = sys.run({&a, &b}, 0, 20000);
        return results[0].cycles + results[1].cycles;
    };
    const Cycle unlimited = run_with(0);
    const Cycle bounded = run_with(64);
    EXPECT_GT(bounded, unlimited + unlimited / 10);
}

TEST(SystemTest, BandwidthIrrelevantWhenHitting)
{
    // A workload that never misses after warm-up pays nothing for a
    // tight memory channel.
    auto run_with = [](Cycle interval) {
        HierarchyConfig cfg = tinyHierarchy(1);
        cfg.memServiceInterval = interval;
        System sys(cfg, CoreConfig{},
                   std::make_unique<LruPolicy>(64, 8));
        ScanGen gen(0, 8);
        const auto results = sys.run({&gen}, 5000, 20000);
        return results[0].cycles;
    };
    EXPECT_EQ(run_with(0), run_with(200));
}

TEST(SystemTest, SymmetricCoresGetSymmetricIpc)
{
    // Four cores running identical (but independently seeded)
    // workload shapes through a shared LLC should end up with
    // comparable IPCs — the interleaving scheduler must not starve
    // anyone.
    HierarchyConfig cfg = tinyHierarchy(4);
    System sys(cfg, CoreConfig{}, std::make_unique<LruPolicy>(64, 8));
    ScanGen g0(0ull << 32, 4096), g1(1ull << 32, 4096),
        g2(2ull << 32, 4096), g3(3ull << 32, 4096);
    const auto results = sys.run({&g0, &g1, &g2, &g3}, 2000, 20000);
    double min_ipc = 1e9, max_ipc = 0;
    for (const auto &r : results) {
        min_ipc = std::min(min_ipc, r.ipc);
        max_ipc = std::max(max_ipc, r.ipc);
    }
    EXPECT_LT(max_ipc, min_ipc * 1.2 + 0.01);
}

TEST(SystemTest, TickAdvancesWithInstructions)
{
    System sys(tinyHierarchy(1), CoreConfig{},
               std::make_unique<LruPolicy>(64, 8));
    ScanGen gen(0, 64);
    sys.run({&gen}, 0, 1000);
    EXPECT_GE(sys.tick(), 1000u);
}

} // anonymous namespace
} // namespace sdbp
