/**
 * @file
 * Unit tests for the paper's contribution: the skewed table, the
 * sampler, and the sampling dead block predictor.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/sampler.hh"
#include "core/sdbp.hh"
#include "core/skewed_table.hh"
#include "util/rng.hh"

namespace sdbp
{
namespace
{

// ---- skewed table ----

TEST(SkewedTableTest, ColdTableHasZeroConfidence)
{
    SkewedTable t;
    EXPECT_EQ(t.confidence(0x1234), 0u);
    EXPECT_FALSE(t.predict(0x1234));
}

TEST(SkewedTableTest, IncrementRaisesAllThreeBanks)
{
    SkewedTable t;
    t.increment(0x1234);
    EXPECT_EQ(t.confidence(0x1234), 3u);
}

TEST(SkewedTableTest, SaturatesAtMaxConfidence)
{
    SkewedTable t;
    for (int i = 0; i < 10; ++i)
        t.increment(0x42);
    EXPECT_EQ(t.confidence(0x42), t.maxConfidence());
    EXPECT_EQ(t.maxConfidence(), 9u);
    EXPECT_TRUE(t.predict(0x42));
}

TEST(SkewedTableTest, ThresholdEightNeedsNearSaturation)
{
    SkewedTable t;
    t.increment(0x42);
    t.increment(0x42); // confidence 6
    EXPECT_FALSE(t.predict(0x42));
    t.increment(0x42); // confidence 9
    EXPECT_TRUE(t.predict(0x42));
}

TEST(SkewedTableTest, DecrementUndoesIncrement)
{
    SkewedTable t;
    t.increment(0x42);
    t.increment(0x42);
    t.decrement(0x42);
    EXPECT_EQ(t.confidence(0x42), 3u);
    t.decrement(0x42);
    t.decrement(0x42); // saturates at 0
    EXPECT_EQ(t.confidence(0x42), 0u);
}

TEST(SkewedTableTest, ConflictingSignatureOnlyPartiallyAliases)
{
    // Train one signature to saturation; the confidence bleed into
    // any other signature is bounded by a single bank's counter
    // (that is the point of the skewed organization).
    SkewedTable t;
    for (int i = 0; i < 4; ++i)
        t.increment(0x1111);
    unsigned worst = 0;
    for (std::uint64_t s = 0; s < 4096; ++s) {
        if (s == 0x1111)
            continue;
        worst = std::max(worst, t.confidence(s));
    }
    EXPECT_LE(worst, 6u);      // never all three banks
    EXPECT_FALSE(t.predict(0x2222));
}

TEST(SkewedTableTest, SingleTableConfiguration)
{
    SkewedTableConfig cfg;
    cfg.numTables = 1;
    cfg.indexBits = 14;
    cfg.threshold = 2;
    SkewedTable t(cfg);
    t.increment(0x42);
    EXPECT_EQ(t.confidence(0x42), 1u);
    EXPECT_FALSE(t.predict(0x42));
    t.increment(0x42);
    EXPECT_TRUE(t.predict(0x42));
    EXPECT_EQ(t.maxConfidence(), 3u);
}

TEST(SkewedTableTest, StorageBits)
{
    SkewedTable t; // 3 x 4096 x 2 bits = 3 KB
    EXPECT_EQ(t.storageBits(), 3ull * 4096 * 2);
    EXPECT_EQ(t.storageBits() / 8 / 1024, 3ull);
}

TEST(SkewedTableTest, ResetClearsCounters)
{
    SkewedTable t;
    t.increment(0x42);
    t.reset();
    EXPECT_EQ(t.confidence(0x42), 0u);
}

// ---- sampler ----

TEST(SamplerTest, HitTrainsOldPcTowardLive)
{
    Sampler s;
    SkewedTable table;
    // Pre-train PC 7 as dead.
    for (int i = 0; i < 3; ++i)
        table.increment(7);
    EXPECT_TRUE(table.predict(7));
    // Tag 0x5 enters with PC 7, then is re-accessed with PC 9: the
    // hit proves PC 7 was not a last touch.
    s.access(0, 0x5, 7, table);
    s.access(0, 0x5, 9, table);
    EXPECT_EQ(table.confidence(7), 6u);
    EXPECT_EQ(s.hits(), 1u);
}

TEST(SamplerTest, EvictionTrainsStoredPcTowardDead)
{
    SamplerConfig cfg;
    cfg.numSets = 1;
    cfg.assoc = 2;
    Sampler s(cfg);
    SkewedTable table;
    s.access(0, 0x1, 100, table);
    s.access(0, 0x2, 100, table);
    s.access(0, 0x3, 100, table); // evicts tag 0x1 (LRU)
    EXPECT_EQ(table.confidence(100), 3u);
    EXPECT_EQ(s.trainedEvictions(), 1u);
}

TEST(SamplerTest, LruOrderWithinSamplerSet)
{
    SamplerConfig cfg;
    cfg.numSets = 1;
    cfg.assoc = 2;
    cfg.learnFromOwnEvictions = false;
    Sampler s(cfg);
    SkewedTable table;
    s.access(0, 0x1, 1, table);
    s.access(0, 0x2, 2, table);
    s.access(0, 0x1, 3, table); // promote 0x1
    s.access(0, 0x3, 4, table); // must evict 0x2
    // 0x1 still resident: a re-access hits (hits goes to 2).
    s.access(0, 0x1, 5, table);
    EXPECT_EQ(s.hits(), 2u);
    // 0x2 gone: re-access replaces.
    const auto replacements = s.replacements();
    s.access(0, 0x2, 6, table);
    EXPECT_EQ(s.replacements(), replacements + 1);
}

TEST(SamplerTest, PredictedDeadEntriesEvictedFirstWhenEnabled)
{
    SamplerConfig cfg;
    cfg.numSets = 1;
    cfg.assoc = 3;
    Sampler s(cfg);
    SkewedTable table;
    // PC 50 is strongly dead.
    for (int i = 0; i < 3; ++i)
        table.increment(50);
    s.access(0, 0x1, 10, table);
    s.access(0, 0x2, 50, table); // entry predicted dead
    s.access(0, 0x3, 11, table);
    // Set full; new tag must replace 0x2 (dead) rather than 0x1
    // (LRU).
    s.access(0, 0x4, 12, table);
    // 0x1 must still be resident.
    const auto hits = s.hits();
    s.access(0, 0x1, 13, table);
    EXPECT_EQ(s.hits(), hits + 1);
    // 0x2 must be gone.
    const auto repl = s.replacements();
    s.access(0, 0x2, 14, table);
    EXPECT_EQ(s.replacements(), repl + 1);
}

TEST(SamplerTest, DeadPreferenceRespectsGracePeriod)
{
    // A dead-marked entry younger than assoc/2 LRU positions must
    // not be chosen over an older dead entry.
    SamplerConfig cfg;
    cfg.numSets = 1;
    cfg.assoc = 6; // grace = 3
    Sampler s(cfg);
    SkewedTable table;
    for (int i = 0; i < 3; ++i)
        table.increment(50); // PC 50 is dead
    // Fill the set: first three tags with live PCs, then three with
    // the dead PC.
    for (Addr t = 1; t <= 3; ++t)
        s.access(0, static_cast<std::uint16_t>(t), 10, table);
    for (Addr t = 4; t <= 6; ++t)
        s.access(0, static_cast<std::uint16_t>(t), 50, table);
    // Set layout (MRU..LRU): 6,5,4,3,2,1; dead entries 6,5,4 at
    // positions 0,1,2 -- all inside the grace window; the dead one
    // at position >= 3 does not exist, so the victim is true LRU
    // (tag 1).
    s.access(0, 0x99, 11, table);
    const auto hits = s.hits();
    s.access(0, 0x4, 50, table); // tag 4 must still be resident
    EXPECT_EQ(s.hits(), hits + 1);
}

TEST(SamplerTest, DeadPreferredEvictionDoesNotTrain)
{
    SamplerConfig cfg;
    cfg.numSets = 1;
    cfg.assoc = 2; // grace = 1
    Sampler s(cfg);
    SkewedTable table;
    for (int i = 0; i < 3; ++i)
        table.increment(50);
    const unsigned conf_before = table.confidence(50);
    s.access(0, 0x1, 50, table); // dead-marked entry
    s.access(0, 0x2, 10, table); // pushes 0x1 to LRU (pos 1)
    // Miss: victim = dead entry 0x1 (pos >= grace). Its eviction is
    // predictor-caused, so PC 50 must NOT be trained again.
    s.access(0, 0x3, 11, table);
    EXPECT_EQ(table.confidence(50), conf_before);
    EXPECT_EQ(s.trainedEvictions(), 0u);
}

TEST(SamplerTest, StorageBitsFormula)
{
    Sampler s; // 32 sets x 12 ways x (15+15+1+1+4) bits
    EXPECT_EQ(s.storageBits(), 32ull * 12 * 36);
}

TEST(SamplerTest, ResetClearsEntries)
{
    Sampler s;
    SkewedTable table;
    s.access(0, 0x1, 1, table);
    s.reset();
    EXPECT_EQ(s.replacements(), 0u);
    EXPECT_FALSE(s.entry(0, 0).valid);
}

// ---- SDBP ----

TEST(SdbpTest, SampledSetsAreEverySixtyFourth)
{
    SamplingDeadBlockPredictor p(SdbpConfig::paperDefault(2048));
    unsigned sampled = 0;
    for (std::uint32_t set = 0; set < 2048; ++set)
        sampled += p.isSampledSet(set);
    EXPECT_EQ(sampled, 32u);
    EXPECT_TRUE(p.isSampledSet(0));
    EXPECT_TRUE(p.isSampledSet(64));
    EXPECT_FALSE(p.isSampledSet(1));
}

TEST(SdbpTest, OnlySampledSetsUpdateState)
{
    SamplingDeadBlockPredictor p;
    p.onAccess(1, Access::atBlock(0x10, 0x400000, 0));
    p.onAccess(63, Access::atBlock(0x20, 0x400000, 0));
    EXPECT_EQ(p.updates(), 0u);
    p.onAccess(64, Access::atBlock(0x30, 0x400000, 0));
    EXPECT_EQ(p.updates(), 1u);
    EXPECT_EQ(p.lookups(), 3u);
}

TEST(SdbpTest, LearnsDeadPcFromSampledEvictions)
{
    SdbpConfig cfg = SdbpConfig::paperDefault(64);
    cfg.sampler.numSets = 1;
    cfg.sampler.assoc = 2;
    SamplingDeadBlockPredictor p(cfg);
    const PC dead_pc = 0x400abc;
    // Stream distinct blocks through sampled set 0 with one PC:
    // every block is touched once and then evicted from the tiny
    // sampler, training the PC as a last-touch PC.
    bool predicted = false;
    for (Addr a = 0; a < 64; ++a)
        predicted = p.onAccess(0, Access::atBlock(a << 6, dead_pc, 0));
    EXPECT_TRUE(predicted);
    // An unrelated PC stays live.
    EXPECT_FALSE(p.onAccess(0, Access::atBlock(0x9999 << 6, 0x500000, 0)));
}

TEST(SdbpTest, MispredictedDeadPcRecovers)
{
    // A PC wrongly trained dead must recover once its blocks'
    // reuse becomes observable: the sampler's victim choice gives
    // older dead-marked entries a grace period while genuinely dead
    // traffic (a streaming PC) churns through the young slots.
    SdbpConfig cfg = SdbpConfig::paperDefault(64);
    cfg.sampler.numSets = 1;
    cfg.sampler.assoc = 8;
    SamplingDeadBlockPredictor p(cfg);
    const PC hot_pc = 0x400abc;
    const PC stream_pc = 0x500000;
    // Phase 1: the hot PC streams once over many blocks -> trained
    // dead.
    for (Addr a = 0; a < 64; ++a)
        p.onAccess(0, Access::atBlock(a << 6, hot_pc, 0));
    EXPECT_TRUE(p.onAccess(0, Access::atBlock(0x10000, hot_pc, 0)));
    // Phase 2: the hot PC now cycles a small resident set while a
    // streaming PC provides churn fodder.
    Addr stream = 0x900000;
    bool hot_pred = true;
    for (int i = 0; i < 300; ++i) {
        for (Addr a = 0; a < 3; ++a)
            hot_pred = p.onAccess(0, Access::atBlock(0x20000 + (a << 6), hot_pc, 0));
        p.onAccess(0, Access::atBlock(stream, stream_pc, 0));
        stream += 64;
    }
    EXPECT_FALSE(hot_pred);
    // The streaming PC stays dead.
    EXPECT_TRUE(p.onAccess(0, Access::atBlock(stream, stream_pc, 0)));
}

TEST(SdbpTest, PredictionIsPurelyPcBased)
{
    SamplingDeadBlockPredictor p;
    // Saturate a PC via direct table training.
    const std::uint64_t sig = p.signature(0x400abc);
    for (int i = 0; i < 3; ++i)
        p.table().increment(sig);
    // Any set, any address: the PC alone decides.
    EXPECT_TRUE(p.onAccess(5, Access::atBlock(0xdead00, 0x400abc, 0)));
    EXPECT_TRUE(p.onAccess(1999, Access::atBlock(0x123456, 0x400abc, 3)));
    EXPECT_FALSE(p.onAccess(5, Access::atBlock(0xdead00, 0x400b00, 0)));
}

TEST(SdbpTest, StorageUnderOnePercentOfLlc)
{
    SamplingDeadBlockPredictor p;
    // Tables 3 KB + sampler 1.6875 KB, plus 1 bit per block.
    const double predictor_kb =
        static_cast<double>(p.storageBits()) / 8 / 1024;
    const double metadata_kb = 32768.0 * 1 / 8 / 1024;
    EXPECT_LT(predictor_kb + metadata_kb, 0.01 * 2048);
    EXPECT_EQ(p.metadataBitsPerBlock(), 1u);
}

TEST(SdbpTest, NoSamplerAblationTrainsOnEverySet)
{
    SdbpConfig cfg = SdbpConfig::singleTable(64);
    cfg.useSampler = false;
    SamplingDeadBlockPredictor p(cfg);
    const PC pc = 0x400abc;
    // fill/evict cycles on arbitrary (unsampled in the default
    // scheme) sets still train.
    for (Addr a = 0; a < 4; ++a) {
        p.onAccess(17, Access::atBlock(a, pc, 0));
        p.onFill(17, Access::atBlock(a, pc));
        p.onEvict(17, Access::atBlock(a));
    }
    EXPECT_TRUE(p.onAccess(23, Access::atBlock(0x999, pc, 0)));
    EXPECT_EQ(p.updates(), 5u); // every access updates
}

TEST(SdbpTest, PartialTagsDoNotAliasAcrossAddressSpaces)
{
    // Regression test: blocks that differ only in high address bits
    // (different cores' address spaces) must not produce false
    // sampler hits — the partial tag hashes the full block address.
    SdbpConfig cfg = SdbpConfig::paperDefault(64);
    cfg.sampler.numSets = 1;
    cfg.sampler.assoc = 4;
    SamplingDeadBlockPredictor p(cfg);
    const Addr a = (Addr(1) << 34) | 0x40; // same low bits,
    const Addr b = (Addr(2) << 34) | 0x40; // different space
    p.onAccess(0, Access::atBlock(a, 0x400000, 0));
    const auto hits_before = p.sampler().hits();
    p.onAccess(0, Access::atBlock(b, 0x500000, 1));
    EXPECT_EQ(p.sampler().hits(), hits_before); // no false match
    // The genuine block still hits.
    p.onAccess(0, Access::atBlock(a, 0x400000, 0));
    EXPECT_EQ(p.sampler().hits(), hits_before + 1);
}

TEST(SdbpTest, UpdateFractionMatchesSampledSetRatio)
{
    // Sec. III-A: with 32 sampled sets of 2048, ~1.6% of uniformly
    // distributed accesses update predictor state.
    SamplingDeadBlockPredictor p(SdbpConfig::paperDefault(2048));
    Rng rng(17);
    const std::uint64_t n = 200000;
    for (std::uint64_t i = 0; i < n; ++i) {
        const Addr blk = rng.below(1 << 20);
        p.onAccess(static_cast<std::uint32_t>(blk & 2047), Access::atBlock(blk, 0x400000 + 4 * rng.below(64), 0));
    }
    const double fraction =
        static_cast<double>(p.updates()) / static_cast<double>(n);
    EXPECT_NEAR(fraction, 32.0 / 2048.0, 0.002);
    EXPECT_EQ(p.lookups(), n);
}

TEST(SdbpTest, ConfigFactories)
{
    const SdbpConfig def = SdbpConfig::paperDefault();
    EXPECT_EQ(def.sampler.numSets, 32u);
    EXPECT_EQ(def.sampler.assoc, 12u);
    EXPECT_EQ(def.table.numTables, 3u);
    EXPECT_EQ(def.table.threshold, 8u);
    const SdbpConfig single = SdbpConfig::singleTable();
    EXPECT_EQ(single.table.numTables, 1u);
    EXPECT_EQ(std::size_t(1) << single.table.indexBits, 16384u);
}

} // anonymous namespace
} // namespace sdbp
