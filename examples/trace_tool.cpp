/**
 * @file
 * Trace utility: capture synthetic benchmark traces to disk, inspect
 * them, and replay them through the simulator.
 *
 *   ./trace_tool capture <benchmark> <records> <file>
 *   ./trace_tool info <file>
 *   ./trace_tool replay <file> [policy]
 *
 * Example:
 *   ./trace_tool capture 456.hmmer 2000000 hmmer.sdbptrace
 *   ./trace_tool info hmmer.sdbptrace
 *   ./trace_tool replay hmmer.sdbptrace Sampler
 */

#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

#include "cpu/system.hh"
#include "sim/policy_factory.hh"
#include "trace/spec_profiles.hh"
#include "trace/trace_file.hh"
#include "util/table.hh"

using namespace sdbp;

namespace
{

int
usage()
{
    std::cerr <<
        "usage:\n"
        "  trace_tool capture <benchmark> <records> <file>\n"
        "  trace_tool info <file>\n"
        "  trace_tool replay <file> [policy]\n";
    return 2;
}

PolicyKind
policyByName(const std::string &name)
{
    static const std::map<std::string, PolicyKind> kinds = {
        {"LRU", PolicyKind::Lru},       {"Random", PolicyKind::Random},
        {"DIP", PolicyKind::Dip},       {"RRIP", PolicyKind::Rrip},
        {"TDBP", PolicyKind::Tdbp},     {"CDBP", PolicyKind::Cdbp},
        {"Sampler", PolicyKind::Sampler},
        {"AIP", PolicyKind::Aip},       {"NRU", PolicyKind::Nru},
    };
    auto it = kinds.find(name);
    if (it == kinds.end()) {
        std::cerr << "unknown policy '" << name << "', using Sampler\n";
        return PolicyKind::Sampler;
    }
    return it->second;
}

int
doCapture(const std::string &bench, std::uint64_t n,
          const std::string &path)
{
    SyntheticWorkload gen(specProfile(bench));
    captureTrace(gen, n, path);
    std::cout << "captured " << n << " records of " << bench
              << " into " << path << "\n";
    return 0;
}

int
doInfo(const std::string &path)
{
    const auto records = readTraceFile(path);
    std::uint64_t instructions = 0, writes = 0, dependent = 0;
    std::map<PC, std::uint64_t> pcs;
    for (const auto &r : records) {
        instructions += r.gap + 1;
        writes += r.isWrite;
        dependent += r.dependsOnPrevLoad;
        ++pcs[r.pc];
    }
    TextTable t({"metric", "value"});
    t.row().cell("records").cell(std::uint64_t(records.size()));
    t.row().cell("instructions").cell(instructions);
    t.row().cell("distinct PCs").cell(std::uint64_t(pcs.size()));
    t.row().cell("store fraction")
        .cell(formatPercent(
            static_cast<double>(writes) /
            static_cast<double>(records.size())));
    t.row().cell("dependent loads")
        .cell(formatPercent(
            static_cast<double>(dependent) /
            static_cast<double>(records.size())));
    t.print(std::cout);
    return 0;
}

int
doReplay(const std::string &path, const std::string &policy_name)
{
    const PolicyKind kind = policyByName(policy_name);
    TraceReplayGenerator replay(path);
    HierarchyConfig cfg;
    System sys(cfg, CoreConfig{},
               makePolicy(kind, cfg.llc.numSets, cfg.llc.assoc));
    std::vector<AccessGenerator *> gens = {&replay};
    // One pass over the trace, capped to its instruction content.
    std::uint64_t instructions = 0;
    for (const auto &r : readTraceFile(path))
        instructions += r.gap + 1;
    const auto results =
        sys.run(gens, 0, std::max<std::uint64_t>(instructions, 1000));

    const auto &llc = sys.hierarchy().llc().stats();
    TextTable t({"metric", "value"});
    t.row().cell("policy").cell(policyName(kind));
    t.row().cell("instructions").cell(results[0].instructions);
    t.row().cell("IPC").cell(results[0].ipc, 3);
    t.row().cell("LLC accesses").cell(llc.demandAccesses);
    t.row().cell("LLC misses").cell(llc.demandMisses);
    t.row().cell("LLC bypasses").cell(llc.bypasses);
    t.print(std::cout);
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    const std::string cmd = argv[1];
    if (cmd == "capture" && argc == 5) {
        return doCapture(argv[2],
                         std::strtoull(argv[3], nullptr, 10), argv[4]);
    }
    if (cmd == "info" && argc == 3)
        return doInfo(argv[2]);
    if (cmd == "replay" && (argc == 3 || argc == 4))
        return doReplay(argv[2], argc == 4 ? argv[3] : "Sampler");
    return usage();
}
