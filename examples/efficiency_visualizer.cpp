/**
 * @file
 * Cache-efficiency visualizer (Fig. 1): runs a benchmark with a
 * 1 MB LLC under LRU and under sampler-driven dead-block
 * replacement, prints an ASCII preview, and writes PGM greyscale
 * heat maps (one pixel per cache frame; darker = dead longer),
 * matching the rendering of Fig. 1.
 *
 *   ./efficiency_visualizer [benchmark] [out_prefix]
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "sim/runner.hh"
#include "util/table.hh"

using namespace sdbp;

namespace
{

void
writePgm(const std::string &path, const std::vector<double> &eff,
         std::uint32_t sets, std::uint32_t assoc)
{
    std::ofstream out(path, std::ios::binary);
    // One row per way, one column per set: a wide, short image like
    // the paper's figure (transposed for aspect ratio).
    out << "P5\n" << sets << " " << assoc << "\n255\n";
    for (std::uint32_t w = 0; w < assoc; ++w) {
        for (std::uint32_t s = 0; s < sets; ++s) {
            const double e = eff[static_cast<std::size_t>(s) * assoc +
                                 w];
            out.put(static_cast<char>(
                static_cast<unsigned char>(255.0 * e)));
        }
    }
    std::cout << "wrote " << path << " (" << sets << "x" << assoc
              << " PGM; bright = live, dark = dead)\n";
}

void
asciiPreview(const std::vector<double> &eff, std::uint32_t sets,
             std::uint32_t assoc)
{
    static const char shades[] = " .:-=+*#%@";
    const std::uint32_t cols = 64;
    const std::uint32_t stride = sets / cols;
    for (std::uint32_t w = 0; w < assoc; w += 2) {
        for (std::uint32_t c = 0; c < cols; ++c) {
            double sum = 0;
            for (std::uint32_t s = c * stride; s < (c + 1) * stride;
                 ++s)
                sum += eff[static_cast<std::size_t>(s) * assoc + w];
            const auto level = static_cast<std::size_t>(
                (sum / stride) * 9.999);
            std::cout << shades[std::min<std::size_t>(level, 9)];
        }
        std::cout << "\n";
    }
}

RunResult
runTracked(const std::string &benchmark, PolicyKind kind)
{
    RunConfig cfg = RunConfig::singleCore();
    cfg.hierarchy.llc.numSets = 1024; // 1 MB, as in Fig. 1
    cfg.trackEfficiency = true;
    return runSingleCore(benchmark, kind, cfg);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const std::string benchmark = argc > 1 ? argv[1] : "456.hmmer";
    const std::string prefix = argc > 2 ? argv[2] : "efficiency";

    std::cout << "Fig. 1 style efficiency maps for " << benchmark
              << " (1MB LLC)\n\n";

    const RunResult lru = runTracked(benchmark, PolicyKind::Lru);
    const RunResult dbrb = runTracked(benchmark, PolicyKind::Sampler);

    std::cout << "(a) LRU         efficiency "
              << formatPercent(lru.llcEfficiency, 1) << "\n";
    asciiPreview(lru.frameEfficiency, 1024, 16);
    std::cout << "\n(b) sampler DBRB efficiency "
              << formatPercent(dbrb.llcEfficiency, 1) << "\n";
    asciiPreview(dbrb.frameEfficiency, 1024, 16);

    writePgm(prefix + "_lru.pgm", lru.frameEfficiency, 1024, 16);
    writePgm(prefix + "_sampler.pgm", dbrb.frameEfficiency, 1024, 16);

    std::cout << "\nPaper reference: 22% for LRU, 87% with dead-block "
                 "replacement and bypass.\n";
    return 0;
}
