/**
 * @file
 * Policy explorer: compare every LLC policy on a chosen benchmark
 * (or on the whole memory-intensive subset), at a chosen LLC size.
 *
 *   ./policy_explorer [benchmark|subset] [llc_kb]
 *
 * Examples:
 *   ./policy_explorer 462.libquantum
 *   ./policy_explorer subset 1024
 */

#include <iostream>
#include <string>
#include <vector>

#include "sim/runner.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace sdbp;

namespace
{

const std::vector<PolicyKind> kAllPolicies = {
    PolicyKind::Lru,         PolicyKind::Random,
    PolicyKind::Dip,         PolicyKind::Rrip,
    PolicyKind::Tdbp,        PolicyKind::Cdbp,
    PolicyKind::Sampler,     PolicyKind::RandomCdbp,
    PolicyKind::RandomSampler,
};

void
exploreOne(const std::string &benchmark, const RunConfig &cfg)
{
    std::cout << "\n== " << benchmark << " (LLC "
              << cfg.hierarchy.llc.sizeBytes() / 1024 << " KB) ==\n";
    TextTable t({"Policy", "MPKI", "IPC", "norm. misses", "coverage",
                 "FP rate"});
    double lru_misses = 0, base_ipc = 0;
    for (const auto kind : kAllPolicies) {
        const RunResult r = runSingleCore(benchmark, kind, cfg);
        if (kind == PolicyKind::Lru) {
            lru_misses = static_cast<double>(r.llcMisses);
            base_ipc = r.ipc;
        }
        (void)base_ipc;
        t.row()
            .cell(r.policy)
            .cell(r.mpki, 2)
            .cell(r.ipc, 3)
            .cell(lru_misses > 0
                      ? static_cast<double>(r.llcMisses) / lru_misses
                      : 1.0,
                  3)
            .cell(r.hasDbrb ? formatPercent(r.dbrb.coverage(), 1)
                            : std::string("-"))
            .cell(r.hasDbrb
                      ? formatPercent(r.dbrb.falsePositiveRate(), 1)
                      : std::string("-"));
    }
    t.print(std::cout);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const std::string target = argc > 1 ? argv[1] : "450.soplex";
    RunConfig cfg = RunConfig::singleCore();
    if (argc > 2) {
        const unsigned kb = static_cast<unsigned>(std::stoul(argv[2]));
        // 16-way, 64 B blocks: sets = bytes / (16 * 64).
        cfg.hierarchy.llc.numSets = kb * 1024 / (16 * 64);
    }

    if (target == "subset") {
        for (const auto &bench : memoryIntensiveSubset())
            exploreOne(bench, cfg);
    } else {
        exploreOne(target, cfg);
    }
    return 0;
}
