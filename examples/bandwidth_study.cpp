/**
 * @file
 * Shared-DRAM bandwidth study: shows how the value of a shared-LLC
 * miss reduction grows when cores queue behind a bounded memory
 * channel — the effect that amplifies the paper's multi-core
 * weighted speedups (Sec. VII-D).
 *
 *   ./bandwidth_study [mixN]
 *
 * Runs one quad-core mix under LRU and under the sampling
 * dead-block policy at several DRAM service intervals (0 =
 * unlimited bandwidth) and reports misses and weighted IPC.
 */

#include <iostream>
#include <string>
#include <vector>

#include "sim/runner.hh"
#include "util/table.hh"

using namespace sdbp;

int
main(int argc, char **argv)
{
    MixProfile mix = multicoreMixes()[0];
    if (argc == 2) {
        for (const auto &m : multicoreMixes())
            if (m.name == argv[1])
                mix = m;
    }

    std::cout << "DRAM bandwidth sensitivity for quad-core mix '"
              << mix.name << "'\n(service interval = min cycles "
              << "between DRAM accesses; 0 = unlimited)\n\n";

    TextTable t({"Service interval", "LRU misses", "Sampler misses",
                 "miss reduction", "LRU wIPC", "Sampler wIPC",
                 "weighted speedup"});

    for (const Cycle interval : {0u, 6u, 12u, 24u}) {
        RunConfig cfg = RunConfig::quadCore();
        cfg.hierarchy.memServiceInterval = interval;

        const auto lru = runMulticore(mix, PolicyKind::Lru, cfg);
        const auto smp = runMulticore(mix, PolicyKind::Sampler, cfg);
        const double lru_w = weightedIpc(lru, cfg);
        const double smp_w = weightedIpc(smp, cfg);
        const double reduction = lru.llcMisses == 0
            ? 0.0
            : 1.0 - static_cast<double>(smp.llcMisses) /
                  static_cast<double>(lru.llcMisses);
        t.row()
            .cell(static_cast<std::uint64_t>(interval))
            .cell(lru.llcMisses)
            .cell(smp.llcMisses)
            .cell(formatPercent(reduction, 1))
            .cell(lru_w, 3)
            .cell(smp_w, 3)
            .cell(lru_w > 0 ? smp_w / lru_w : 1.0, 3);
    }
    t.print(std::cout);

    std::cout << "\nThe same miss reduction buys more weighted "
                 "speedup as the channel gets tighter:\nqueueing "
                 "delay behind the DRAM bound is super-linear in the "
                 "miss rate.\n";
    return 0;
}
