/**
 * @file
 * Quickstart: the smallest useful program against the public API.
 *
 * Builds the paper's configuration — a 2 MB LLC managed by
 * dead-block replacement and bypass driven by the sampling dead
 * block predictor — runs a synthetic memory-intensive workload
 * through the three-level hierarchy, and compares misses and IPC
 * against the LRU baseline.
 *
 *   ./quickstart [benchmark]           (default 456.hmmer)
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "sim/runner.hh"
#include "util/table.hh"

using namespace sdbp;

int
main(int argc, char **argv)
{
    const std::string benchmark = argc > 1 ? argv[1] : "456.hmmer";

    std::cout << "Sampling Dead Block Prediction quickstart\n"
              << "benchmark: " << benchmark << "\n\n";

    // A RunConfig bundles the Nehalem-like hierarchy of the paper:
    // 32 KB L1, 256 KB L2, 2 MB 16-way LLC, 200-cycle DRAM.
    const RunConfig cfg = RunConfig::singleCore();

    // Baseline: plain LRU replacement in the LLC.
    const RunResult lru = runSingleCore(benchmark, PolicyKind::Lru,
                                        cfg);

    // The paper's technique: SDBP driving replacement and bypass.
    const RunResult sampler =
        runSingleCore(benchmark, PolicyKind::Sampler, cfg);

    TextTable t({"Policy", "LLC misses", "MPKI", "IPC", "bypasses"});
    t.row()
        .cell("LRU")
        .cell(lru.llcMisses)
        .cell(lru.mpki, 2)
        .cell(lru.ipc, 3)
        .cell(std::uint64_t(0));
    t.row()
        .cell("Sampler DBRB")
        .cell(sampler.llcMisses)
        .cell(sampler.mpki, 2)
        .cell(sampler.ipc, 3)
        .cell(sampler.llcBypasses);
    t.print(std::cout);

    const double miss_reduction = lru.llcMisses == 0
        ? 0.0
        : 1.0 - static_cast<double>(sampler.llcMisses) /
              static_cast<double>(lru.llcMisses);
    std::cout << "\nMiss reduction: "
              << formatPercent(miss_reduction, 1) << ", speedup: "
              << formatDouble(lru.ipc > 0 ? sampler.ipc / lru.ipc : 1,
                              3)
              << "x\n";
    std::cout << "Predictor coverage: "
              << formatPercent(sampler.dbrb.coverage(), 1)
              << ", false positives: "
              << formatPercent(sampler.dbrb.falsePositiveRate(), 1)
              << "\n";
    return 0;
}
