/**
 * @file
 * Multi-core shared-cache study: run one of the paper's quad-core
 * mixes (or a custom set of four benchmarks) against the shared
 * 8 MB LLC under LRU, TADIP, RRIP and the sampling dead-block
 * policy; report per-thread IPC and normalized weighted speedup.
 *
 *   ./multicore_contention [mixN]
 *   ./multicore_contention 429.mcf 456.hmmer 462.libquantum 470.lbm
 */

#include <iostream>
#include <string>
#include <vector>

#include "sim/runner.hh"
#include "util/table.hh"

using namespace sdbp;

int
main(int argc, char **argv)
{
    MixProfile mix = multicoreMixes()[0];
    if (argc == 2) {
        for (const auto &m : multicoreMixes())
            if (m.name == argv[1])
                mix = m;
    } else if (argc == 5) {
        mix.name = "custom";
        mix.benchmarks = {argv[1], argv[2], argv[3], argv[4]};
    }

    const RunConfig cfg = RunConfig::quadCore();
    std::cout << "Quad-core mix '" << mix.name << "' on an 8MB "
              << "shared LLC:\n";
    for (const auto &b : mix.benchmarks)
        std::cout << "  " << b << " (isolated IPC "
                  << formatDouble(isolatedIpc(b, cfg), 3) << ")\n";

    const std::vector<PolicyKind> policies = {
        PolicyKind::Lru, PolicyKind::Tadip, PolicyKind::Rrip,
        PolicyKind::Cdbp, PolicyKind::Sampler,
        PolicyKind::RandomSampler};

    double lru_weighted = 0;
    TextTable t({"Policy", "IPC0", "IPC1", "IPC2", "IPC3",
                 "weighted IPC", "norm. weighted speedup", "MPKI"});
    for (const auto kind : policies) {
        const auto r = runMulticore(mix, kind, cfg);
        const double w = weightedIpc(r, cfg);
        if (kind == PolicyKind::Lru)
            lru_weighted = w;
        auto &row = t.row().cell(r.policy);
        for (double ipc : r.ipc)
            row.cell(ipc, 3);
        row.cell(w, 3)
            .cell(lru_weighted > 0 ? w / lru_weighted : 1.0, 3)
            .cell(r.mpki, 2);
    }
    t.print(std::cout);
    std::cout << "\nWeighted IPC = sum_i IPC_i / SingleIPC_i "
                 "(Sec. VI-A2); the last column normalizes to LRU "
                 "as in Fig. 10.\n";
    return 0;
}
