# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_smoke_quickstart "/root/repo/build/examples/quickstart" "445.gobmk")
set_tests_properties(example_smoke_quickstart PROPERTIES  ENVIRONMENT "SDBP_INSTRUCTIONS=60000;SDBP_WARMUP=30000" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;21;sdbp_example_smoke;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_smoke_policy_explorer "/root/repo/build/examples/policy_explorer" "416.gamess")
set_tests_properties(example_smoke_policy_explorer PROPERTIES  ENVIRONMENT "SDBP_INSTRUCTIONS=60000;SDBP_WARMUP=30000" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;22;sdbp_example_smoke;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_smoke_multicore_contention "/root/repo/build/examples/multicore_contention" "mix9")
set_tests_properties(example_smoke_multicore_contention PROPERTIES  ENVIRONMENT "SDBP_INSTRUCTIONS=60000;SDBP_WARMUP=30000" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;23;sdbp_example_smoke;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_smoke_efficiency_visualizer "/root/repo/build/examples/efficiency_visualizer" "445.gobmk" "/root/repo/build/examples/smoke_eff")
set_tests_properties(example_smoke_efficiency_visualizer PROPERTIES  ENVIRONMENT "SDBP_INSTRUCTIONS=60000;SDBP_WARMUP=30000" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;24;sdbp_example_smoke;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_smoke_bandwidth_study "/root/repo/build/examples/bandwidth_study" "mix9")
set_tests_properties(example_smoke_bandwidth_study PROPERTIES  ENVIRONMENT "SDBP_INSTRUCTIONS=60000;SDBP_WARMUP=30000" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;26;sdbp_example_smoke;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_smoke_trace_tool "sh" "-c" "\"/root/repo/build/examples/trace_tool\" capture 416.gamess 5000 smoke.sdbptrace && \"/root/repo/build/examples/trace_tool\" info smoke.sdbptrace && \"/root/repo/build/examples/trace_tool\" replay smoke.sdbptrace LRU")
set_tests_properties(example_smoke_trace_tool PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
