file(REMOVE_RECURSE
  "CMakeFiles/policy_explorer.dir/policy_explorer.cpp.o"
  "CMakeFiles/policy_explorer.dir/policy_explorer.cpp.o.d"
  "policy_explorer"
  "policy_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
