file(REMOVE_RECURSE
  "CMakeFiles/efficiency_visualizer.dir/efficiency_visualizer.cpp.o"
  "CMakeFiles/efficiency_visualizer.dir/efficiency_visualizer.cpp.o.d"
  "efficiency_visualizer"
  "efficiency_visualizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efficiency_visualizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
