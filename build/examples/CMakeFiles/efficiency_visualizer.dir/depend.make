# Empty dependencies file for efficiency_visualizer.
# This may be replaced when dependencies are built.
