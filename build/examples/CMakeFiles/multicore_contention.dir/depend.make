# Empty dependencies file for multicore_contention.
# This may be replaced when dependencies are built.
