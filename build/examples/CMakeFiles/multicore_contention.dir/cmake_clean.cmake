file(REMOVE_RECURSE
  "CMakeFiles/multicore_contention.dir/multicore_contention.cpp.o"
  "CMakeFiles/multicore_contention.dir/multicore_contention.cpp.o.d"
  "multicore_contention"
  "multicore_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicore_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
