# Empty compiler generated dependencies file for bandwidth_study.
# This may be replaced when dependencies are built.
