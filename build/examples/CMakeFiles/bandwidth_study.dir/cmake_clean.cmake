file(REMOVE_RECURSE
  "CMakeFiles/bandwidth_study.dir/bandwidth_study.cpp.o"
  "CMakeFiles/bandwidth_study.dir/bandwidth_study.cpp.o.d"
  "bandwidth_study"
  "bandwidth_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bandwidth_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
