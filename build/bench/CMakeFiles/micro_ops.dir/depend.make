# Empty dependencies file for micro_ops.
# This may be replaced when dependencies are built.
