# Empty dependencies file for fig10_multicore.
# This may be replaced when dependencies are built.
