file(REMOVE_RECURSE
  "CMakeFiles/fig10_multicore.dir/fig10_multicore.cc.o"
  "CMakeFiles/fig10_multicore.dir/fig10_multicore.cc.o.d"
  "fig10_multicore"
  "fig10_multicore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_multicore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
