file(REMOVE_RECURSE
  "CMakeFiles/fig7_random_mpki.dir/fig7_random_mpki.cc.o"
  "CMakeFiles/fig7_random_mpki.dir/fig7_random_mpki.cc.o.d"
  "fig7_random_mpki"
  "fig7_random_mpki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_random_mpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
