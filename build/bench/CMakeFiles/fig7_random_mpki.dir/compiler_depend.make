# Empty compiler generated dependencies file for fig7_random_mpki.
# This may be replaced when dependencies are built.
