file(REMOVE_RECURSE
  "CMakeFiles/fig4_mpki.dir/fig4_mpki.cc.o"
  "CMakeFiles/fig4_mpki.dir/fig4_mpki.cc.o.d"
  "fig4_mpki"
  "fig4_mpki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_mpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
