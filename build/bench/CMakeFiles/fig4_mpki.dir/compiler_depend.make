# Empty compiler generated dependencies file for fig4_mpki.
# This may be replaced when dependencies are built.
