file(REMOVE_RECURSE
  "CMakeFiles/table4_mixes.dir/table4_mixes.cc.o"
  "CMakeFiles/table4_mixes.dir/table4_mixes.cc.o.d"
  "table4_mixes"
  "table4_mixes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_mixes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
