# Empty dependencies file for table4_mixes.
# This may be replaced when dependencies are built.
