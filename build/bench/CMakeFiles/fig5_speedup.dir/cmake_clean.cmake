file(REMOVE_RECURSE
  "CMakeFiles/fig5_speedup.dir/fig5_speedup.cc.o"
  "CMakeFiles/fig5_speedup.dir/fig5_speedup.cc.o.d"
  "fig5_speedup"
  "fig5_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
