# Empty compiler generated dependencies file for fig5_speedup.
# This may be replaced when dependencies are built.
