# Empty compiler generated dependencies file for table1_storage.
# This may be replaced when dependencies are built.
