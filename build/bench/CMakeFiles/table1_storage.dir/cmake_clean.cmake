file(REMOVE_RECURSE
  "CMakeFiles/table1_storage.dir/table1_storage.cc.o"
  "CMakeFiles/table1_storage.dir/table1_storage.cc.o.d"
  "table1_storage"
  "table1_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
