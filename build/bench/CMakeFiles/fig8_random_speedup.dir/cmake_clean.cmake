file(REMOVE_RECURSE
  "CMakeFiles/fig8_random_speedup.dir/fig8_random_speedup.cc.o"
  "CMakeFiles/fig8_random_speedup.dir/fig8_random_speedup.cc.o.d"
  "fig8_random_speedup"
  "fig8_random_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_random_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
