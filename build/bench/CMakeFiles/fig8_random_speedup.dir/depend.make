# Empty dependencies file for fig8_random_speedup.
# This may be replaced when dependencies are built.
