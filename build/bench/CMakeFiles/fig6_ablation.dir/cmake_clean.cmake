file(REMOVE_RECURSE
  "CMakeFiles/fig6_ablation.dir/fig6_ablation.cc.o"
  "CMakeFiles/fig6_ablation.dir/fig6_ablation.cc.o.d"
  "fig6_ablation"
  "fig6_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
