# Empty compiler generated dependencies file for fig6_ablation.
# This may be replaced when dependencies are built.
