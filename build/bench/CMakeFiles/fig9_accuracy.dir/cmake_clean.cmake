file(REMOVE_RECURSE
  "CMakeFiles/fig9_accuracy.dir/fig9_accuracy.cc.o"
  "CMakeFiles/fig9_accuracy.dir/fig9_accuracy.cc.o.d"
  "fig9_accuracy"
  "fig9_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
