# Empty dependencies file for fig9_accuracy.
# This may be replaced when dependencies are built.
