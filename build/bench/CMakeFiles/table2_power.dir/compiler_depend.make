# Empty compiler generated dependencies file for table2_power.
# This may be replaced when dependencies are built.
