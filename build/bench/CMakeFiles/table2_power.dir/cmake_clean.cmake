file(REMOVE_RECURSE
  "CMakeFiles/table2_power.dir/table2_power.cc.o"
  "CMakeFiles/table2_power.dir/table2_power.cc.o.d"
  "table2_power"
  "table2_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
