# Empty compiler generated dependencies file for table3_characterization.
# This may be replaced when dependencies are built.
