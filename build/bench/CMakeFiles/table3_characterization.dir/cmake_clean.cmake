file(REMOVE_RECURSE
  "CMakeFiles/table3_characterization.dir/table3_characterization.cc.o"
  "CMakeFiles/table3_characterization.dir/table3_characterization.cc.o.d"
  "table3_characterization"
  "table3_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
