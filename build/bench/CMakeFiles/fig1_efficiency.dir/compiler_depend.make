# Empty compiler generated dependencies file for fig1_efficiency.
# This may be replaced when dependencies are built.
