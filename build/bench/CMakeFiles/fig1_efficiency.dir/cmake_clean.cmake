file(REMOVE_RECURSE
  "CMakeFiles/fig1_efficiency.dir/fig1_efficiency.cc.o"
  "CMakeFiles/fig1_efficiency.dir/fig1_efficiency.cc.o.d"
  "fig1_efficiency"
  "fig1_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
