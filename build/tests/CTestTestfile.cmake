# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_policies[1]_include.cmake")
include("/root/repo/build/tests/test_predictors[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_opt[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_tracefile[1]_include.cmake")
include("/root/repo/build/tests/test_prefetch[1]_include.cmake")
include("/root/repo/build/tests/test_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
