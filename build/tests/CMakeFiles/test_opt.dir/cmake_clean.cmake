file(REMOVE_RECURSE
  "CMakeFiles/test_opt.dir/opt_test.cc.o"
  "CMakeFiles/test_opt.dir/opt_test.cc.o.d"
  "test_opt"
  "test_opt.pdb"
  "test_opt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
