file(REMOVE_RECURSE
  "CMakeFiles/test_property.dir/property_test.cc.o"
  "CMakeFiles/test_property.dir/property_test.cc.o.d"
  "test_property"
  "test_property.pdb"
  "test_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
