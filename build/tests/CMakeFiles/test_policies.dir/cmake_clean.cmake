file(REMOVE_RECURSE
  "CMakeFiles/test_policies.dir/policies_test.cc.o"
  "CMakeFiles/test_policies.dir/policies_test.cc.o.d"
  "test_policies"
  "test_policies.pdb"
  "test_policies[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
