file(REMOVE_RECURSE
  "CMakeFiles/test_sweep.dir/sweep_test.cc.o"
  "CMakeFiles/test_sweep.dir/sweep_test.cc.o.d"
  "test_sweep"
  "test_sweep.pdb"
  "test_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
