# Empty dependencies file for test_tracefile.
# This may be replaced when dependencies are built.
