file(REMOVE_RECURSE
  "CMakeFiles/test_tracefile.dir/tracefile_test.cc.o"
  "CMakeFiles/test_tracefile.dir/tracefile_test.cc.o.d"
  "test_tracefile"
  "test_tracefile.pdb"
  "test_tracefile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tracefile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
