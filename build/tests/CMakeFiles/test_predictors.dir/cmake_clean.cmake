file(REMOVE_RECURSE
  "CMakeFiles/test_predictors.dir/predictors_test.cc.o"
  "CMakeFiles/test_predictors.dir/predictors_test.cc.o.d"
  "test_predictors"
  "test_predictors.pdb"
  "test_predictors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_predictors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
