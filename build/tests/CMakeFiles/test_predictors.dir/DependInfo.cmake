
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/predictors_test.cc" "tests/CMakeFiles/test_predictors.dir/predictors_test.cc.o" "gcc" "tests/CMakeFiles/test_predictors.dir/predictors_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sdbp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sdbp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/sdbp_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/sdbp_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/sdbp_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sdbp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/sdbp_power.dir/DependInfo.cmake"
  "/root/repo/build/src/predictor/CMakeFiles/sdbp_predictor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sdbp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
