file(REMOVE_RECURSE
  "CMakeFiles/sdbp_trace.dir/spec_profiles.cc.o"
  "CMakeFiles/sdbp_trace.dir/spec_profiles.cc.o.d"
  "CMakeFiles/sdbp_trace.dir/stream.cc.o"
  "CMakeFiles/sdbp_trace.dir/stream.cc.o.d"
  "CMakeFiles/sdbp_trace.dir/trace_file.cc.o"
  "CMakeFiles/sdbp_trace.dir/trace_file.cc.o.d"
  "CMakeFiles/sdbp_trace.dir/workload.cc.o"
  "CMakeFiles/sdbp_trace.dir/workload.cc.o.d"
  "libsdbp_trace.a"
  "libsdbp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdbp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
