# Empty dependencies file for sdbp_trace.
# This may be replaced when dependencies are built.
