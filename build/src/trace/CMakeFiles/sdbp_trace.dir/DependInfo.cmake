
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/spec_profiles.cc" "src/trace/CMakeFiles/sdbp_trace.dir/spec_profiles.cc.o" "gcc" "src/trace/CMakeFiles/sdbp_trace.dir/spec_profiles.cc.o.d"
  "/root/repo/src/trace/stream.cc" "src/trace/CMakeFiles/sdbp_trace.dir/stream.cc.o" "gcc" "src/trace/CMakeFiles/sdbp_trace.dir/stream.cc.o.d"
  "/root/repo/src/trace/trace_file.cc" "src/trace/CMakeFiles/sdbp_trace.dir/trace_file.cc.o" "gcc" "src/trace/CMakeFiles/sdbp_trace.dir/trace_file.cc.o.d"
  "/root/repo/src/trace/workload.cc" "src/trace/CMakeFiles/sdbp_trace.dir/workload.cc.o" "gcc" "src/trace/CMakeFiles/sdbp_trace.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sdbp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
