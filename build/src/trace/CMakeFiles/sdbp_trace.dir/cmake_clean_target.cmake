file(REMOVE_RECURSE
  "libsdbp_trace.a"
)
