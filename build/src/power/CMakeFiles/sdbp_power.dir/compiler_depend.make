# Empty compiler generated dependencies file for sdbp_power.
# This may be replaced when dependencies are built.
