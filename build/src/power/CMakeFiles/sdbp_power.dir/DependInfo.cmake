
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/model.cc" "src/power/CMakeFiles/sdbp_power.dir/model.cc.o" "gcc" "src/power/CMakeFiles/sdbp_power.dir/model.cc.o.d"
  "/root/repo/src/power/storage.cc" "src/power/CMakeFiles/sdbp_power.dir/storage.cc.o" "gcc" "src/power/CMakeFiles/sdbp_power.dir/storage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sdbp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/predictor/CMakeFiles/sdbp_predictor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
