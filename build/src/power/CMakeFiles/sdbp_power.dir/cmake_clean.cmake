file(REMOVE_RECURSE
  "CMakeFiles/sdbp_power.dir/model.cc.o"
  "CMakeFiles/sdbp_power.dir/model.cc.o.d"
  "CMakeFiles/sdbp_power.dir/storage.cc.o"
  "CMakeFiles/sdbp_power.dir/storage.cc.o.d"
  "libsdbp_power.a"
  "libsdbp_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdbp_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
