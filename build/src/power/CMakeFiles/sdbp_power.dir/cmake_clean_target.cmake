file(REMOVE_RECURSE
  "libsdbp_power.a"
)
