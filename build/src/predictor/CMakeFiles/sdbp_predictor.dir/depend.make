# Empty dependencies file for sdbp_predictor.
# This may be replaced when dependencies are built.
