
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predictor/aip.cc" "src/predictor/CMakeFiles/sdbp_predictor.dir/aip.cc.o" "gcc" "src/predictor/CMakeFiles/sdbp_predictor.dir/aip.cc.o.d"
  "/root/repo/src/predictor/burst_trace.cc" "src/predictor/CMakeFiles/sdbp_predictor.dir/burst_trace.cc.o" "gcc" "src/predictor/CMakeFiles/sdbp_predictor.dir/burst_trace.cc.o.d"
  "/root/repo/src/predictor/counting.cc" "src/predictor/CMakeFiles/sdbp_predictor.dir/counting.cc.o" "gcc" "src/predictor/CMakeFiles/sdbp_predictor.dir/counting.cc.o.d"
  "/root/repo/src/predictor/reftrace.cc" "src/predictor/CMakeFiles/sdbp_predictor.dir/reftrace.cc.o" "gcc" "src/predictor/CMakeFiles/sdbp_predictor.dir/reftrace.cc.o.d"
  "/root/repo/src/predictor/sampling_counting.cc" "src/predictor/CMakeFiles/sdbp_predictor.dir/sampling_counting.cc.o" "gcc" "src/predictor/CMakeFiles/sdbp_predictor.dir/sampling_counting.cc.o.d"
  "/root/repo/src/predictor/time_based.cc" "src/predictor/CMakeFiles/sdbp_predictor.dir/time_based.cc.o" "gcc" "src/predictor/CMakeFiles/sdbp_predictor.dir/time_based.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sdbp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
