file(REMOVE_RECURSE
  "libsdbp_predictor.a"
)
