file(REMOVE_RECURSE
  "CMakeFiles/sdbp_predictor.dir/aip.cc.o"
  "CMakeFiles/sdbp_predictor.dir/aip.cc.o.d"
  "CMakeFiles/sdbp_predictor.dir/burst_trace.cc.o"
  "CMakeFiles/sdbp_predictor.dir/burst_trace.cc.o.d"
  "CMakeFiles/sdbp_predictor.dir/counting.cc.o"
  "CMakeFiles/sdbp_predictor.dir/counting.cc.o.d"
  "CMakeFiles/sdbp_predictor.dir/reftrace.cc.o"
  "CMakeFiles/sdbp_predictor.dir/reftrace.cc.o.d"
  "CMakeFiles/sdbp_predictor.dir/sampling_counting.cc.o"
  "CMakeFiles/sdbp_predictor.dir/sampling_counting.cc.o.d"
  "CMakeFiles/sdbp_predictor.dir/time_based.cc.o"
  "CMakeFiles/sdbp_predictor.dir/time_based.cc.o.d"
  "libsdbp_predictor.a"
  "libsdbp_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdbp_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
