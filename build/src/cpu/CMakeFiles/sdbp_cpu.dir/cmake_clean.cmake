file(REMOVE_RECURSE
  "CMakeFiles/sdbp_cpu.dir/core_model.cc.o"
  "CMakeFiles/sdbp_cpu.dir/core_model.cc.o.d"
  "CMakeFiles/sdbp_cpu.dir/system.cc.o"
  "CMakeFiles/sdbp_cpu.dir/system.cc.o.d"
  "libsdbp_cpu.a"
  "libsdbp_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdbp_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
