# Empty dependencies file for sdbp_cpu.
# This may be replaced when dependencies are built.
