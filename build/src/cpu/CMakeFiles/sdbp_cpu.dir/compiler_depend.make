# Empty compiler generated dependencies file for sdbp_cpu.
# This may be replaced when dependencies are built.
