file(REMOVE_RECURSE
  "libsdbp_cpu.a"
)
