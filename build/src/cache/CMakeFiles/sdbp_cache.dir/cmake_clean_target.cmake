file(REMOVE_RECURSE
  "libsdbp_cache.a"
)
