
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache.cc" "src/cache/CMakeFiles/sdbp_cache.dir/cache.cc.o" "gcc" "src/cache/CMakeFiles/sdbp_cache.dir/cache.cc.o.d"
  "/root/repo/src/cache/dead_block_policy.cc" "src/cache/CMakeFiles/sdbp_cache.dir/dead_block_policy.cc.o" "gcc" "src/cache/CMakeFiles/sdbp_cache.dir/dead_block_policy.cc.o.d"
  "/root/repo/src/cache/dip.cc" "src/cache/CMakeFiles/sdbp_cache.dir/dip.cc.o" "gcc" "src/cache/CMakeFiles/sdbp_cache.dir/dip.cc.o.d"
  "/root/repo/src/cache/hierarchy.cc" "src/cache/CMakeFiles/sdbp_cache.dir/hierarchy.cc.o" "gcc" "src/cache/CMakeFiles/sdbp_cache.dir/hierarchy.cc.o.d"
  "/root/repo/src/cache/lru.cc" "src/cache/CMakeFiles/sdbp_cache.dir/lru.cc.o" "gcc" "src/cache/CMakeFiles/sdbp_cache.dir/lru.cc.o.d"
  "/root/repo/src/cache/plru.cc" "src/cache/CMakeFiles/sdbp_cache.dir/plru.cc.o" "gcc" "src/cache/CMakeFiles/sdbp_cache.dir/plru.cc.o.d"
  "/root/repo/src/cache/prefetcher.cc" "src/cache/CMakeFiles/sdbp_cache.dir/prefetcher.cc.o" "gcc" "src/cache/CMakeFiles/sdbp_cache.dir/prefetcher.cc.o.d"
  "/root/repo/src/cache/random_repl.cc" "src/cache/CMakeFiles/sdbp_cache.dir/random_repl.cc.o" "gcc" "src/cache/CMakeFiles/sdbp_cache.dir/random_repl.cc.o.d"
  "/root/repo/src/cache/rrip.cc" "src/cache/CMakeFiles/sdbp_cache.dir/rrip.cc.o" "gcc" "src/cache/CMakeFiles/sdbp_cache.dir/rrip.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sdbp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sdbp_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
