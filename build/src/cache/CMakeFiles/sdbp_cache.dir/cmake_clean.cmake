file(REMOVE_RECURSE
  "CMakeFiles/sdbp_cache.dir/cache.cc.o"
  "CMakeFiles/sdbp_cache.dir/cache.cc.o.d"
  "CMakeFiles/sdbp_cache.dir/dead_block_policy.cc.o"
  "CMakeFiles/sdbp_cache.dir/dead_block_policy.cc.o.d"
  "CMakeFiles/sdbp_cache.dir/dip.cc.o"
  "CMakeFiles/sdbp_cache.dir/dip.cc.o.d"
  "CMakeFiles/sdbp_cache.dir/hierarchy.cc.o"
  "CMakeFiles/sdbp_cache.dir/hierarchy.cc.o.d"
  "CMakeFiles/sdbp_cache.dir/lru.cc.o"
  "CMakeFiles/sdbp_cache.dir/lru.cc.o.d"
  "CMakeFiles/sdbp_cache.dir/plru.cc.o"
  "CMakeFiles/sdbp_cache.dir/plru.cc.o.d"
  "CMakeFiles/sdbp_cache.dir/prefetcher.cc.o"
  "CMakeFiles/sdbp_cache.dir/prefetcher.cc.o.d"
  "CMakeFiles/sdbp_cache.dir/random_repl.cc.o"
  "CMakeFiles/sdbp_cache.dir/random_repl.cc.o.d"
  "CMakeFiles/sdbp_cache.dir/rrip.cc.o"
  "CMakeFiles/sdbp_cache.dir/rrip.cc.o.d"
  "libsdbp_cache.a"
  "libsdbp_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdbp_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
