# Empty compiler generated dependencies file for sdbp_cache.
# This may be replaced when dependencies are built.
