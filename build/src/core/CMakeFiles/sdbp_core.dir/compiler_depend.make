# Empty compiler generated dependencies file for sdbp_core.
# This may be replaced when dependencies are built.
