
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/sampler.cc" "src/core/CMakeFiles/sdbp_core.dir/sampler.cc.o" "gcc" "src/core/CMakeFiles/sdbp_core.dir/sampler.cc.o.d"
  "/root/repo/src/core/sdbp.cc" "src/core/CMakeFiles/sdbp_core.dir/sdbp.cc.o" "gcc" "src/core/CMakeFiles/sdbp_core.dir/sdbp.cc.o.d"
  "/root/repo/src/core/skewed_table.cc" "src/core/CMakeFiles/sdbp_core.dir/skewed_table.cc.o" "gcc" "src/core/CMakeFiles/sdbp_core.dir/skewed_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sdbp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
