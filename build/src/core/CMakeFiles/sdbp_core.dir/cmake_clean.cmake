file(REMOVE_RECURSE
  "CMakeFiles/sdbp_core.dir/sampler.cc.o"
  "CMakeFiles/sdbp_core.dir/sampler.cc.o.d"
  "CMakeFiles/sdbp_core.dir/sdbp.cc.o"
  "CMakeFiles/sdbp_core.dir/sdbp.cc.o.d"
  "CMakeFiles/sdbp_core.dir/skewed_table.cc.o"
  "CMakeFiles/sdbp_core.dir/skewed_table.cc.o.d"
  "libsdbp_core.a"
  "libsdbp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdbp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
