file(REMOVE_RECURSE
  "libsdbp_core.a"
)
