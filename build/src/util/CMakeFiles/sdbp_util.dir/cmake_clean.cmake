file(REMOVE_RECURSE
  "CMakeFiles/sdbp_util.dir/stats.cc.o"
  "CMakeFiles/sdbp_util.dir/stats.cc.o.d"
  "CMakeFiles/sdbp_util.dir/table.cc.o"
  "CMakeFiles/sdbp_util.dir/table.cc.o.d"
  "libsdbp_util.a"
  "libsdbp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdbp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
