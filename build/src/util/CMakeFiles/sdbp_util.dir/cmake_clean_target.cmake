file(REMOVE_RECURSE
  "libsdbp_util.a"
)
