# Empty compiler generated dependencies file for sdbp_util.
# This may be replaced when dependencies are built.
