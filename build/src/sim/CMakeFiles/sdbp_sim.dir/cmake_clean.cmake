file(REMOVE_RECURSE
  "CMakeFiles/sdbp_sim.dir/policy_factory.cc.o"
  "CMakeFiles/sdbp_sim.dir/policy_factory.cc.o.d"
  "CMakeFiles/sdbp_sim.dir/runner.cc.o"
  "CMakeFiles/sdbp_sim.dir/runner.cc.o.d"
  "libsdbp_sim.a"
  "libsdbp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdbp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
