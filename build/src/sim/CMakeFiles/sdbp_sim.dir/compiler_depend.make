# Empty compiler generated dependencies file for sdbp_sim.
# This may be replaced when dependencies are built.
