file(REMOVE_RECURSE
  "libsdbp_sim.a"
)
