file(REMOVE_RECURSE
  "CMakeFiles/sdbp_opt.dir/belady.cc.o"
  "CMakeFiles/sdbp_opt.dir/belady.cc.o.d"
  "libsdbp_opt.a"
  "libsdbp_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdbp_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
