# Empty dependencies file for sdbp_opt.
# This may be replaced when dependencies are built.
