file(REMOVE_RECURSE
  "libsdbp_opt.a"
)
