#include "fault/fault_injector.hh"

#include <algorithm>

#include "obs/stat_registry.hh"
#include "util/logging.hh"

namespace sdbp::fault
{

FaultInjector::FaultInjector(const FaultInjectorConfig &cfg)
    : cfg_(cfg), rng_(cfg.seed)
{
    if (cfg_.faultsPerMillion > 1'000'000)
        fatal("fault rate exceeds 1e6 faults per million accesses");
}

void
FaultInjector::addTarget(FaultTarget target)
{
    if (frozen_)
        panic("FaultInjector: addTarget after freeze");
    if (!target.flip)
        panic("FaultInjector: target '" + target.name +
              "' has no flip callback");
    targets_.push_back(std::move(target));
}

void
FaultInjector::freeze()
{
    frozen_ = true;
    firstBit_.clear();
    firstBit_.reserve(targets_.size());
    totalBits_ = 0;
    for (const FaultTarget &t : targets_) {
        firstBit_.push_back(totalBits_);
        totalBits_ += t.words * t.bitsPerWord;
    }
    perTarget_.assign(targets_.size(), 0);
}

void
FaultInjector::injectOne()
{
    const std::uint64_t offset = rng_.below(totalBits_);
    // Targets are few (≤ ~10); upper_bound on the prefix sums finds
    // the region in O(log n).
    const auto it = std::upper_bound(firstBit_.begin(),
                                     firstBit_.end(), offset);
    const std::size_t idx =
        static_cast<std::size_t>(it - firstBit_.begin()) - 1;
    const FaultTarget &t = targets_[idx];
    const std::uint64_t local = offset - firstBit_[idx];
    t.flip(local / t.bitsPerWord,
           static_cast<unsigned>(local % t.bitsPerWord));
    ++injected_;
    ++perTarget_[idx];
}

std::uint64_t
FaultInjector::injectedInto(const std::string &name) const
{
    for (std::size_t i = 0; i < targets_.size(); ++i)
        if (targets_[i].name == name)
            return i < perTarget_.size() ? perTarget_[i] : 0;
    return 0;
}

void
FaultInjector::registerStats(obs::StatRegistry &reg,
                             const std::string &prefix)
{
    using obs::StatRegistry;
    if (!frozen_)
        freeze();
    reg.addCounter(StatRegistry::join(prefix, "injected"),
                   &injected_);
    reg.addGauge(StatRegistry::join(prefix, "surface_bits"), [this] {
        return static_cast<double>(totalBits_);
    });
    reg.addGauge(StatRegistry::join(prefix, "rate_per_million"),
                 [this] {
                     return static_cast<double>(
                         cfg_.faultsPerMillion);
                 });
    for (std::size_t i = 0; i < targets_.size(); ++i)
        reg.addCounter(StatRegistry::join(prefix, targets_[i].name),
                       &perTarget_[i]);
}

} // namespace sdbp::fault
