/**
 * @file
 * Soft-error fault injection for predictor state (DESIGN.md §11).
 *
 * The paper's central safety argument is that dead-block predictions
 * are *hints*: a corrupted predictor can cost performance (extra
 * misses, bad bypasses) but never correctness.  This subsystem makes
 * that claim testable.  Components expose their SRAM-like state as
 * FaultTargets — named bit regions with a flip callback — and a
 * seeded FaultInjector flips uniformly chosen bits at a configured
 * rate (expected faults per million predictor consultations).
 *
 * Determinism contract: the injector draws from its own
 * xoshiro-based Rng, seeded from the config, and is ticked exactly
 * once per predictor consultation, so a (seed, rate) pair produces
 * the identical fault sequence on every run and for any SDBP_JOBS
 * value (each sweep cell owns its own injector).
 *
 * Fault model boundary: targets flip bits only *within the
 * configured width* of each field (a 2-bit counter's two bits, a
 * 15-bit tag's fifteen bits), and structurally-encoded state (the
 * sampler LRU stack) re-decodes the corrupted value into a valid
 * ordering — exactly as hardware recency logic decodes any raw bit
 * pattern.  auditInvariants() therefore holds at every fault rate;
 * only prediction quality degrades.
 */

#ifndef SDBP_FAULT_FAULT_INJECTOR_HH
#define SDBP_FAULT_FAULT_INJECTOR_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/rng.hh"

namespace sdbp
{

namespace obs
{
class StatRegistry;
} // namespace obs

namespace fault
{

/**
 * One faultable region of predictor state: @p words entries of
 * @p bitsPerWord faultable bits each.  flip(word, bit) must XOR the
 * addressed bit (or apply the structural equivalent) while keeping
 * the component's invariants intact.
 */
struct FaultTarget
{
    std::string name;
    std::uint64_t words = 0;
    unsigned bitsPerWord = 0;
    std::function<void(std::uint64_t word, unsigned bit)> flip;
};

struct FaultInjectorConfig
{
    /**
     * Expected bit flips per million predictor consultations across
     * the whole registered fault surface; 0 disables injection.
     * Capped at 1'000'000 (one fault per consultation).
     */
    std::uint64_t faultsPerMillion = 0;
    /** Seed of the injector's private deterministic Rng. */
    std::uint64_t seed = 0x50f7e44dULL;

    bool enabled() const { return faultsPerMillion > 0; }
};

class FaultInjector
{
  public:
    explicit FaultInjector(const FaultInjectorConfig &cfg);

    /**
     * Register a faultable region.  All targets must be registered
     * before the first onAccess()/registerStats() call (the injector
     * freezes its bit map on first use and panics on late adds).
     */
    void addTarget(FaultTarget target);

    /**
     * One predictor consultation: with probability
     * faultsPerMillion/1e6, flip one uniformly chosen bit of the
     * registered fault surface.
     */
    void
    onAccess()
    {
        if (!cfg_.enabled())
            return;
        if (!frozen_)
            freeze();
        if (totalBits_ == 0)
            return;
        if (rng_.chance(cfg_.faultsPerMillion, 1'000'000))
            injectOne();
    }

    /** Bits across all registered targets. */
    std::uint64_t totalBits() const { return totalBits_; }
    /** Total faults injected so far. */
    std::uint64_t injected() const { return injected_; }
    /** Faults injected into the named target; 0 for unknown names. */
    std::uint64_t injectedInto(const std::string &name) const;

    std::size_t targetCount() const { return targets_.size(); }
    const FaultTarget &target(std::size_t i) const
    {
        return targets_[i];
    }

    const FaultInjectorConfig &config() const { return cfg_; }

    /**
     * Register "<prefix>.injected", "<prefix>.surface_bits" and one
     * "<prefix>.<target>" counter per target.  Freezes the target
     * set.
     */
    void registerStats(obs::StatRegistry &reg,
                       const std::string &prefix);

  private:
    void freeze();
    void injectOne();

    FaultInjectorConfig cfg_;
    Rng rng_;
    bool frozen_ = false;
    std::uint64_t totalBits_ = 0;
    std::uint64_t injected_ = 0;
    std::vector<FaultTarget> targets_;
    /** Exclusive prefix sums of per-target bit counts. */
    std::vector<std::uint64_t> firstBit_;
    /** Per-target injection counters (index-parallel to targets_;
     *  stable addresses after freeze, as the registry requires). */
    std::vector<std::uint64_t> perTarget_;
};

} // namespace fault
} // namespace sdbp

#endif // SDBP_FAULT_FAULT_INJECTOR_HH
