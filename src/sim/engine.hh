/**
 * @file
 * The hot-path engine: maps a PolicyKind onto a sealed, fully
 * devirtualized System composition when one exists, or onto the
 * type-erased (virtual-dispatch) stack otherwise (DESIGN.md §12).
 *
 * The sealed compositions cover the configurations the paper's
 * figures spend almost all their simulation time in:
 *
 *   LRU                  -> BasicSystem<LruPolicy>
 *   Random               -> BasicSystem<RandomPolicy>
 *   Sampler (DBRB/SDBP)  -> BasicSystem<BasicDeadBlockPolicy<
 *                               LruPolicy, SamplingDeadBlockPredictor>>
 *   Random Sampler       -> same with RandomPolicy inside
 *
 * Every other kind — and every kind when the caller forces the
 * virtual path — runs on BasicSystem<ReplacementPolicy>, the
 * extension point where user-supplied policies and predictors plug
 * in through the virtual interfaces.  Both paths execute the same
 * template code, so their simulated outcomes are bit-identical
 * (pinned by tests/fastpath_test.cc).
 */

#ifndef SDBP_SIM_ENGINE_HH
#define SDBP_SIM_ENGINE_HH

#include <memory>

#include "cpu/system.hh"
#include "sim/policy_factory.hh"
#include "util/arena.hh"

namespace sdbp
{

/**
 * A ready-to-run System plus typed views into its LLC policy stack
 * (same contract as PolicyBundle's views: non-owning, nullptr when
 * the stack has no such part).
 */
struct Engine
{
    /**
     * The run's bump arena: every fixed-size storage lane of the
     * System below (cache lanes, policy recency lanes, sampler and
     * table storage) lives in this slab.  First member on purpose —
     * members destroy in reverse declaration order, so the arena
     * outlives the System and every lane it backs (DESIGN.md §15).
     */
    std::unique_ptr<Arena> arena;
    std::unique_ptr<SystemBase> system;
    /** The DBRB wrapper, when `kind` is a DBRB technique. */
    DeadBlockPolicyBase *dbrb = nullptr;
    /** The wrapped dead block predictor, when DBRB. */
    DeadBlockPredictor *predictor = nullptr;
    /** The fault injector, when fault injection is configured. */
    const fault::FaultInjector *faults = nullptr;
    /** True when a sealed composition was selected. */
    bool fastPath = false;
};

/**
 * Build the System for @p kind.
 *
 * @param force_virtual route even sealed kinds through the
 *        type-erased stack (equivalence testing, SDBP_NO_FASTPATH)
 */
Engine makeEngine(PolicyKind kind, const HierarchyConfig &hcfg,
                  const CoreConfig &ccfg,
                  const PolicyOptions &opts = {},
                  bool force_virtual = false);

} // namespace sdbp

#endif // SDBP_SIM_ENGINE_HH
