#include "sim/sweep_manifest.hh"

#include <optional>

#include "util/file.hh"
#include "util/logging.hh"

namespace sdbp::sweep
{

namespace
{

const char *
statusName(CellStatus s)
{
    switch (s) {
    case CellStatus::Pending: return "pending";
    case CellStatus::Leased: return "leased";
    case CellStatus::Completed: return "completed";
    case CellStatus::Failed: return "failed";
    case CellStatus::Skipped: return "skipped";
    }
    return "pending";
}

CellStatus
statusFromName(const std::string &name)
{
    if (name == "leased")
        return CellStatus::Leased;
    if (name == "completed")
        return CellStatus::Completed;
    if (name == "failed")
        return CellStatus::Failed;
    if (name == "skipped")
        return CellStatus::Skipped;
    return CellStatus::Pending;
}

std::uint64_t
u64Field(const obs::JsonValue &v, const std::string &key)
{
    const obs::JsonValue *f = v.find(key);
    return f ? f->asUInt() : 0;
}

double
numField(const obs::JsonValue &v, const std::string &key)
{
    const obs::JsonValue *f = v.find(key);
    return f ? f->asNumber() : 0.0;
}

std::string
strField(const obs::JsonValue &v, const std::string &key)
{
    const obs::JsonValue *f = v.find(key);
    return f ? f->asString() : std::string{};
}

bool
boolField(const obs::JsonValue &v, const std::string &key)
{
    const obs::JsonValue *f = v.find(key);
    return f && f->asBool();
}

obs::JsonValue
stringArray(const std::vector<std::string> &items)
{
    obs::JsonValue arr = obs::JsonValue::array();
    for (const auto &s : items)
        arr.push(s);
    return arr;
}

bool
matchesStringArray(const obs::JsonValue *arr,
                   const std::vector<std::string> &items)
{
    if (!arr || !arr->isArray() || arr->size() != items.size())
        return false;
    for (std::size_t i = 0; i < items.size(); ++i)
        if (arr->at(i).asString() != items[i])
            return false;
    return true;
}

} // anonymous namespace

SweepManifest::SweepManifest(std::string path, std::string kind,
                             std::vector<std::string> runs,
                             std::vector<std::string> policies,
                             InstCount warmup, InstCount measure)
    : path_(std::move(path)), kind_(std::move(kind)),
      runs_(std::move(runs)), policies_(std::move(policies)),
      warmup_(warmup), measure_(measure),
      cells_(runs_.size() * policies_.size())
{
}

std::size_t
SweepManifest::loadCompleted()
{
    bool ok = false;
    const std::string text = util::readFile(path_, &ok);
    if (!ok)
        return 0; // no checkpoint yet: fresh start

    std::string err;
    const auto doc = obs::JsonValue::parse(text, &err);
    if (!doc)
        fatal("sweep manifest " + path_ + " is not valid JSON (" +
              err + "); delete it to start fresh");
    // v1 checkpoints stay readable: cells only gained fields.
    const std::uint64_t schema = u64Field(*doc, "schema");
    if (schema < 1 || schema > kSchemaVersion)
        fatal("sweep manifest " + path_ +
              " has an unsupported schema version");
    const obs::JsonValue *fp = doc->find("fingerprint");
    if (strField(*doc, "kind") != kind_ || !fp ||
        !matchesStringArray(fp->find("runs"), runs_) ||
        !matchesStringArray(fp->find("policies"), policies_) ||
        u64Field(*fp, "warmup_instructions") != warmup_ ||
        u64Field(*fp, "measure_instructions") != measure_)
        fatal("sweep manifest " + path_ +
              " describes a different sweep (benchmarks, policies or "
              "instruction budget changed); delete it to start fresh");

    const obs::JsonValue *cells = doc->find("cells");
    if (!cells || !cells->isArray() || cells->size() != cells_.size())
        fatal("sweep manifest " + path_ + " has the wrong cell count");

    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t restored = 0;
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        const obs::JsonValue &c = cells->at(i);
        if (strField(c, "status") != "completed")
            continue;
        const obs::JsonValue *metrics = c.find("metrics");
        if (!metrics || !metrics->isObject())
            continue;
        cells_[i].status = CellStatus::Completed;
        cells_[i].metrics = *metrics;
        ++restored;
    }
    return restored;
}

bool
SweepManifest::isCompleted(std::size_t index) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cells_.at(index).status == CellStatus::Completed;
}

obs::JsonValue
SweepManifest::completedMetrics(std::size_t index) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cells_.at(index).metrics;
}

void
SweepManifest::markCompleted(std::size_t index, obs::JsonValue metrics)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::optional<util::FileLock> flk;
    if (shared_) {
        flk.emplace(path_ + ".lock");
        reloadLocked();
    }
    Cell &c = cells_.at(index);
    c.status = CellStatus::Completed;
    c.metrics = std::move(metrics);
    c.error.clear();
    flushLocked();
}

void
SweepManifest::markFailed(const CellError &err)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::optional<util::FileLock> flk;
    if (shared_) {
        flk.emplace(path_ + ".lock");
        reloadLocked();
    }
    Cell &c = cells_.at(err.index);
    c.status = CellStatus::Failed;
    c.error = err.message;
    c.attempts = err.attempts;
    c.timedOut = err.timedOut;
    c.crashed = err.crashed;
    c.signal = err.signal;
    if (err.leaseGeneration > 0)
        c.generation = err.leaseGeneration;
    flushLocked();
}

void
SweepManifest::markSkipped(std::size_t index)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::optional<util::FileLock> flk;
    if (shared_) {
        flk.emplace(path_ + ".lock");
        reloadLocked();
    }
    Cell &c = cells_.at(index);
    if (c.status == CellStatus::Pending)
        c.status = CellStatus::Skipped;
    flushLocked();
}

void
SweepManifest::flush()
{
    std::lock_guard<std::mutex> lock(mutex_);
    flushLocked();
}

void
SweepManifest::setConfig(obs::JsonValue config)
{
    std::lock_guard<std::mutex> lock(mutex_);
    config_ = std::move(config);
}

void
SweepManifest::setMixes(obs::JsonValue mixes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    mixes_ = std::move(mixes);
}

void
SweepManifest::enableSharedAccess()
{
    std::lock_guard<std::mutex> lock(mutex_);
    shared_ = true;
}

std::optional<SweepManifest::Claim>
SweepManifest::tryClaim(std::int64_t pid, std::uint64_t now_ms,
                        std::uint64_t ttl_ms)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::optional<util::FileLock> flk;
    if (shared_) {
        flk.emplace(path_ + ".lock");
        reloadLocked();
    }
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        Cell &c = cells_[i];
        const bool stale = c.status == CellStatus::Leased &&
            now_ms > c.heartbeatMs && now_ms - c.heartbeatMs > ttl_ms;
        if (c.status != CellStatus::Pending && !stale)
            continue;
        if (stale)
            warn("reclaiming stale lease on cell " +
                 std::to_string(i) + " (worker pid " +
                 std::to_string(c.leasePid) + " stopped heartbeating)");
        c.status = CellStatus::Leased;
        c.leasePid = pid;
        c.claimedMs = now_ms;
        c.heartbeatMs = now_ms;
        ++c.generation;
        flushLocked();
        return Claim{i, c.generation};
    }
    return std::nullopt;
}

void
SweepManifest::heartbeat(std::size_t index, std::int64_t pid,
                         std::uint64_t generation, std::uint64_t now_ms)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::optional<util::FileLock> flk;
    if (shared_) {
        flk.emplace(path_ + ".lock");
        reloadLocked();
    }
    Cell &c = cells_.at(index);
    if (c.status != CellStatus::Leased || c.leasePid != pid ||
        c.generation != generation)
        return; // reclaimed from under us: nothing to refresh
    c.heartbeatMs = now_ms;
    flushLocked();
}

void
SweepManifest::completeClaimed(std::size_t index, std::int64_t pid,
                               std::uint64_t generation,
                               obs::JsonValue metrics,
                               std::uint64_t started_ms,
                               std::uint64_t finished_ms)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::optional<util::FileLock> flk;
    if (shared_) {
        flk.emplace(path_ + ".lock");
        reloadLocked();
    }
    Cell &c = cells_.at(index);
    if (c.status != CellStatus::Leased || c.leasePid != pid ||
        c.generation != generation)
        return; // reclaimed; the new owner's result wins
    c.status = CellStatus::Completed;
    c.metrics = std::move(metrics);
    c.error.clear();
    c.attempts = static_cast<unsigned>(c.generation);
    c.timedOut = false;
    c.crashed = false;
    c.signal = 0;
    c.leasePid = 0;
    c.claimedMs = 0;
    c.heartbeatMs = 0;
    c.startedMs = started_ms;
    c.finishedMs = finished_ms;
    c.workerPid = pid;
    flushLocked();
}

CellStatus
SweepManifest::failClaimed(std::size_t index, const CellError &err,
                           std::int64_t pid, std::uint64_t generation,
                           unsigned max_attempts,
                           std::uint64_t started_ms,
                           std::uint64_t finished_ms)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::optional<util::FileLock> flk;
    if (shared_) {
        flk.emplace(path_ + ".lock");
        reloadLocked();
    }
    Cell &c = cells_.at(index);
    if (c.status != CellStatus::Leased || c.leasePid != pid ||
        c.generation != generation)
        return c.status;
    c.startedMs = started_ms;
    c.finishedMs = finished_ms;
    c.workerPid = pid;
    const CellStatus out = requeueOrFailLocked(c, err, max_attempts);
    flushLocked();
    return out;
}

CellStatus
SweepManifest::chargeCrash(std::size_t index, std::int64_t pid,
                           const std::string &message, int sig,
                           bool timed_out, unsigned max_attempts,
                           std::uint64_t now_ms)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::optional<util::FileLock> flk;
    if (shared_) {
        flk.emplace(path_ + ".lock");
        reloadLocked();
    }
    Cell &c = cells_.at(index);
    if (c.status != CellStatus::Leased || c.leasePid != pid)
        return c.status; // completed/failed in-band or reclaimed
    CellError err;
    err.message = message;
    err.timedOut = timed_out;
    err.crashed = true;
    err.signal = sig;
    c.startedMs = c.claimedMs;
    c.finishedMs = now_ms;
    c.workerPid = pid;
    const CellStatus out = requeueOrFailLocked(c, err, max_attempts);
    flushLocked();
    return out;
}

CellStatus
SweepManifest::requeueOrFailLocked(Cell &c, const CellError &err,
                                   unsigned max_attempts)
{
    c.attempts = static_cast<unsigned>(c.generation);
    c.leasePid = 0;
    c.claimedMs = 0;
    c.heartbeatMs = 0;
    if (c.generation < max_attempts) {
        c.status = CellStatus::Pending;
        c.error = err.message; // diagnostic; pending cells re-run
        c.timedOut = err.timedOut;
        c.crashed = err.crashed;
        c.signal = err.signal;
        return CellStatus::Pending;
    }
    c.status = CellStatus::Failed;
    c.error = err.message;
    c.timedOut = err.timedOut;
    c.crashed = err.crashed;
    c.signal = err.signal;
    return CellStatus::Failed;
}

void
SweepManifest::resetLeases()
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::optional<util::FileLock> flk;
    if (shared_) {
        flk.emplace(path_ + ".lock");
        reloadLocked();
    }
    for (Cell &c : cells_) {
        if (c.status == CellStatus::Completed)
            continue;
        // Any lease or failure in the file predates this
        // coordinator; re-run those cells with a fresh budget, as
        // the in-process resume path does.
        c.status = CellStatus::Pending;
        c.leasePid = 0;
        c.claimedMs = 0;
        c.heartbeatMs = 0;
        c.attempts = 0;
        c.generation = 0;
        c.timedOut = false;
        c.crashed = false;
        c.signal = 0;
        c.workerPid = 0;
        c.error.clear();
    }
    flushLocked();
}

void
SweepManifest::markSkippedPending()
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::optional<util::FileLock> flk;
    if (shared_) {
        flk.emplace(path_ + ".lock");
        reloadLocked();
    }
    for (Cell &c : cells_)
        if (c.status == CellStatus::Pending)
            c.status = CellStatus::Skipped;
    flushLocked();
}

std::vector<SweepManifest::CellView>
SweepManifest::snapshotCells()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (shared_) {
        // Read-only: tmp+rename keeps the file consistent without
        // the flock, so polling never contends with the workers.
        reloadLocked();
    }
    std::vector<CellView> out;
    out.reserve(cells_.size());
    for (const Cell &c : cells_) {
        CellView v;
        v.status = c.status;
        v.leasePid = c.leasePid;
        v.leaseGeneration = c.generation;
        v.claimedMs = c.claimedMs;
        v.heartbeatMs = c.heartbeatMs;
        v.startedMs = c.startedMs;
        v.finishedMs = c.finishedMs;
        v.attempts = c.attempts;
        v.timedOut = c.timedOut;
        v.crashed = c.crashed;
        v.signal = c.signal;
        v.workerPid = c.workerPid;
        v.error = c.error;
        out.push_back(std::move(v));
    }
    return out;
}

void
SweepManifest::reloadLocked()
{
    bool ok = false;
    const std::string text = util::readFile(path_, &ok);
    if (!ok)
        fatal("sweep manifest " + path_ +
              " disappeared mid-sweep; cannot coordinate workers");
    std::string err;
    const auto doc = obs::JsonValue::parse(text, &err);
    if (!doc)
        fatal("sweep manifest " + path_ +
              " became invalid JSON mid-sweep (" + err + ")");
    const obs::JsonValue *cells = doc->find("cells");
    if (!cells || !cells->isArray() || cells->size() != cells_.size())
        fatal("sweep manifest " + path_ +
              " changed cell count mid-sweep");
    if (const obs::JsonValue *cfg = doc->find("config"))
        config_ = *cfg;
    if (const obs::JsonValue *mixes = doc->find("mixes"))
        mixes_ = *mixes;
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        const obs::JsonValue &jc = cells->at(i);
        Cell &c = cells_[i];
        c.status = statusFromName(strField(jc, "status"));
        if (const obs::JsonValue *m = jc.find("metrics"))
            c.metrics = *m;
        c.error = strField(jc, "error");
        c.attempts = static_cast<unsigned>(u64Field(jc, "attempts"));
        c.timedOut = boolField(jc, "timed_out");
        c.crashed = boolField(jc, "crashed");
        c.signal = static_cast<int>(u64Field(jc, "signal"));
        c.generation = u64Field(jc, "lease_generation");
        c.startedMs = u64Field(jc, "started_ms");
        c.finishedMs = u64Field(jc, "finished_ms");
        c.workerPid =
            static_cast<std::int64_t>(u64Field(jc, "worker_pid"));
        if (const obs::JsonValue *lease = jc.find("lease")) {
            c.leasePid =
                static_cast<std::int64_t>(u64Field(*lease, "pid"));
            c.claimedMs = u64Field(*lease, "claimed_ms");
            c.heartbeatMs = u64Field(*lease, "heartbeat_ms");
        } else {
            c.leasePid = 0;
            c.claimedMs = 0;
            c.heartbeatMs = 0;
        }
    }
}

obs::JsonValue
SweepManifest::toJsonLocked() const
{
    obs::JsonValue doc = obs::JsonValue::object();
    doc.set("schema", kSchemaVersion);
    doc.set("kind", kind_);
    obs::JsonValue fp = obs::JsonValue::object();
    fp.set("runs", stringArray(runs_));
    fp.set("policies", stringArray(policies_));
    fp.set("warmup_instructions", std::uint64_t{warmup_});
    fp.set("measure_instructions", std::uint64_t{measure_});
    doc.set("fingerprint", std::move(fp));
    if (!config_.isNull())
        doc.set("config", config_);
    if (!mixes_.isNull())
        doc.set("mixes", mixes_);

    obs::JsonValue cells = obs::JsonValue::array();
    const std::size_t cols = policies_.size();
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        const Cell &c = cells_[i];
        obs::JsonValue cell = obs::JsonValue::object();
        cell.set("run", runs_[i / cols]);
        cell.set("policy", policies_[i % cols]);
        cell.set("status", statusName(c.status));
        if (c.status == CellStatus::Completed)
            cell.set("metrics", c.metrics);
        if (c.status == CellStatus::Failed) {
            cell.set("error", c.error);
            cell.set("attempts", std::uint64_t{c.attempts});
            cell.set("timed_out", c.timedOut);
            if (c.crashed) {
                cell.set("crashed", true);
                cell.set("signal",
                         static_cast<std::uint64_t>(c.signal));
            }
        }
        if (c.generation > 0)
            cell.set("lease_generation", c.generation);
        if (c.status == CellStatus::Leased) {
            obs::JsonValue lease = obs::JsonValue::object();
            lease.set("pid", static_cast<std::uint64_t>(c.leasePid));
            lease.set("claimed_ms", c.claimedMs);
            lease.set("heartbeat_ms", c.heartbeatMs);
            cell.set("lease", std::move(lease));
        }
        if (c.startedMs > 0)
            cell.set("started_ms", c.startedMs);
        if (c.finishedMs > 0)
            cell.set("finished_ms", c.finishedMs);
        if (c.workerPid != 0)
            cell.set("worker_pid",
                     static_cast<std::uint64_t>(c.workerPid));
        cells.push(std::move(cell));
    }
    doc.set("cells", std::move(cells));
    return doc;
}

void
SweepManifest::flushLocked() const
{
    if (!util::atomicWriteFile(path_, toJsonLocked().dump(2) + "\n"))
        warn("cannot write sweep manifest " + path_);
}

obs::JsonValue
runResultToJson(const RunResult &r)
{
    obs::JsonValue v = obs::JsonValue::object();
    v.set("benchmark", r.benchmark);
    v.set("policy", r.policy);
    v.set("instructions", std::uint64_t{r.instructions});
    v.set("cycles", std::uint64_t{r.cycles});
    v.set("ipc", r.ipc);
    v.set("mpki", r.mpki);
    v.set("llc_accesses", r.llcAccesses);
    v.set("llc_misses", r.llcMisses);
    v.set("llc_bypasses", r.llcBypasses);
    v.set("llc_efficiency", r.llcEfficiency);
    v.set("has_dbrb", r.hasDbrb);
    if (r.hasDbrb) {
        obs::JsonValue d = obs::JsonValue::object();
        d.set("predictions", r.dbrb.predictions);
        d.set("positives", r.dbrb.positives);
        d.set("false_positive_hits", r.dbrb.falsePositiveHits);
        d.set("bypass_reuses", r.dbrb.bypassReuses);
        d.set("dead_evictions", r.dbrb.deadEvictions);
        d.set("bypasses", r.dbrb.bypasses);
        v.set("dbrb", std::move(d));
    }
    v.set("faults_injected", r.faultsInjected);
    v.set("wall_seconds", r.wallSeconds);
    // Present only for interval-selected runs so plain sweep cells
    // keep their established shape byte for byte.
    if (r.intervalSelected) {
        obs::JsonValue iv = obs::JsonValue::object();
        iv.set("trace_instructions", r.traceInstructions);
        iv.set("intervals_total", r.intervalsTotal);
        iv.set("intervals_simulated", r.intervalsSimulated);
        iv.set("simulated_instructions", r.simulatedInstructions);
        v.set("interval", std::move(iv));
    }
    return v;
}

RunResult
runResultFromJson(const obs::JsonValue &v)
{
    RunResult r;
    r.benchmark = strField(v, "benchmark");
    r.policy = strField(v, "policy");
    r.instructions = u64Field(v, "instructions");
    r.cycles = u64Field(v, "cycles");
    r.ipc = numField(v, "ipc");
    r.mpki = numField(v, "mpki");
    r.llcAccesses = u64Field(v, "llc_accesses");
    r.llcMisses = u64Field(v, "llc_misses");
    r.llcBypasses = u64Field(v, "llc_bypasses");
    r.llcEfficiency = numField(v, "llc_efficiency");
    r.hasDbrb = boolField(v, "has_dbrb");
    if (const obs::JsonValue *d = v.find("dbrb"); d && r.hasDbrb) {
        r.dbrb.predictions = u64Field(*d, "predictions");
        r.dbrb.positives = u64Field(*d, "positives");
        r.dbrb.falsePositiveHits = u64Field(*d, "false_positive_hits");
        r.dbrb.bypassReuses = u64Field(*d, "bypass_reuses");
        r.dbrb.deadEvictions = u64Field(*d, "dead_evictions");
        r.dbrb.bypasses = u64Field(*d, "bypasses");
    }
    r.faultsInjected = u64Field(v, "faults_injected");
    r.wallSeconds = numField(v, "wall_seconds");
    if (const obs::JsonValue *iv = v.find("interval")) {
        r.intervalSelected = true;
        r.traceInstructions = u64Field(*iv, "trace_instructions");
        r.intervalsTotal = u64Field(*iv, "intervals_total");
        r.intervalsSimulated = u64Field(*iv, "intervals_simulated");
        r.simulatedInstructions =
            u64Field(*iv, "simulated_instructions");
    }
    return r;
}

obs::JsonValue
multicoreResultToJson(const MulticoreRunResult &r)
{
    obs::JsonValue v = obs::JsonValue::object();
    v.set("mix", r.mix);
    v.set("policy", r.policy);
    v.set("benchmarks", stringArray(r.benchmarks));
    obs::JsonValue ipc = obs::JsonValue::array();
    for (const double d : r.ipc)
        ipc.push(d);
    v.set("ipc", std::move(ipc));
    v.set("llc_misses", r.llcMisses);
    v.set("total_instructions", std::uint64_t{r.totalInstructions});
    v.set("mpki", r.mpki);
    v.set("faults_injected", r.faultsInjected);
    v.set("wall_seconds", r.wallSeconds);
    return v;
}

MulticoreRunResult
multicoreResultFromJson(const obs::JsonValue &v)
{
    MulticoreRunResult r;
    r.mix = strField(v, "mix");
    r.policy = strField(v, "policy");
    if (const obs::JsonValue *b = v.find("benchmarks");
        b && b->isArray())
        for (std::size_t i = 0; i < b->size(); ++i)
            r.benchmarks.push_back(b->at(i).asString());
    if (const obs::JsonValue *ipc = v.find("ipc");
        ipc && ipc->isArray())
        for (std::size_t i = 0; i < ipc->size(); ++i)
            r.ipc.push_back(ipc->at(i).asNumber());
    r.llcMisses = u64Field(v, "llc_misses");
    r.totalInstructions = u64Field(v, "total_instructions");
    r.mpki = numField(v, "mpki");
    r.faultsInjected = u64Field(v, "faults_injected");
    r.wallSeconds = numField(v, "wall_seconds");
    return r;
}

} // namespace sdbp::sweep
