#include "sim/sweep_manifest.hh"

#include "util/file.hh"
#include "util/logging.hh"

namespace sdbp::sweep
{

namespace
{

const char *
statusName(CellStatus s)
{
    switch (s) {
    case CellStatus::Pending: return "pending";
    case CellStatus::Completed: return "completed";
    case CellStatus::Failed: return "failed";
    case CellStatus::Skipped: return "skipped";
    }
    return "pending";
}

std::uint64_t
u64Field(const obs::JsonValue &v, const std::string &key)
{
    const obs::JsonValue *f = v.find(key);
    return f ? f->asUInt() : 0;
}

double
numField(const obs::JsonValue &v, const std::string &key)
{
    const obs::JsonValue *f = v.find(key);
    return f ? f->asNumber() : 0.0;
}

std::string
strField(const obs::JsonValue &v, const std::string &key)
{
    const obs::JsonValue *f = v.find(key);
    return f ? f->asString() : std::string{};
}

bool
boolField(const obs::JsonValue &v, const std::string &key)
{
    const obs::JsonValue *f = v.find(key);
    return f && f->asBool();
}

obs::JsonValue
stringArray(const std::vector<std::string> &items)
{
    obs::JsonValue arr = obs::JsonValue::array();
    for (const auto &s : items)
        arr.push(s);
    return arr;
}

bool
matchesStringArray(const obs::JsonValue *arr,
                   const std::vector<std::string> &items)
{
    if (!arr || !arr->isArray() || arr->size() != items.size())
        return false;
    for (std::size_t i = 0; i < items.size(); ++i)
        if (arr->at(i).asString() != items[i])
            return false;
    return true;
}

} // anonymous namespace

SweepManifest::SweepManifest(std::string path, std::string kind,
                             std::vector<std::string> runs,
                             std::vector<std::string> policies,
                             InstCount warmup, InstCount measure)
    : path_(std::move(path)), kind_(std::move(kind)),
      runs_(std::move(runs)), policies_(std::move(policies)),
      warmup_(warmup), measure_(measure),
      cells_(runs_.size() * policies_.size())
{
}

std::size_t
SweepManifest::loadCompleted()
{
    bool ok = false;
    const std::string text = util::readFile(path_, &ok);
    if (!ok)
        return 0; // no checkpoint yet: fresh start

    std::string err;
    const auto doc = obs::JsonValue::parse(text, &err);
    if (!doc)
        fatal("sweep manifest " + path_ + " is not valid JSON (" +
              err + "); delete it to start fresh");
    if (u64Field(*doc, "schema") != kSchemaVersion)
        fatal("sweep manifest " + path_ +
              " has an unsupported schema version");
    const obs::JsonValue *fp = doc->find("fingerprint");
    if (strField(*doc, "kind") != kind_ || !fp ||
        !matchesStringArray(fp->find("runs"), runs_) ||
        !matchesStringArray(fp->find("policies"), policies_) ||
        u64Field(*fp, "warmup_instructions") != warmup_ ||
        u64Field(*fp, "measure_instructions") != measure_)
        fatal("sweep manifest " + path_ +
              " describes a different sweep (benchmarks, policies or "
              "instruction budget changed); delete it to start fresh");

    const obs::JsonValue *cells = doc->find("cells");
    if (!cells || !cells->isArray() || cells->size() != cells_.size())
        fatal("sweep manifest " + path_ + " has the wrong cell count");

    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t restored = 0;
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        const obs::JsonValue &c = cells->at(i);
        if (strField(c, "status") != "completed")
            continue;
        const obs::JsonValue *metrics = c.find("metrics");
        if (!metrics || !metrics->isObject())
            continue;
        cells_[i].status = CellStatus::Completed;
        cells_[i].metrics = *metrics;
        ++restored;
    }
    return restored;
}

bool
SweepManifest::isCompleted(std::size_t index) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cells_.at(index).status == CellStatus::Completed;
}

obs::JsonValue
SweepManifest::completedMetrics(std::size_t index) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cells_.at(index).metrics;
}

void
SweepManifest::markCompleted(std::size_t index, obs::JsonValue metrics)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Cell &c = cells_.at(index);
    c.status = CellStatus::Completed;
    c.metrics = std::move(metrics);
    c.error.clear();
    flushLocked();
}

void
SweepManifest::markFailed(const CellError &err)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Cell &c = cells_.at(err.index);
    c.status = CellStatus::Failed;
    c.error = err.message;
    c.attempts = err.attempts;
    c.timedOut = err.timedOut;
    flushLocked();
}

void
SweepManifest::markSkipped(std::size_t index)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Cell &c = cells_.at(index);
    if (c.status == CellStatus::Pending)
        c.status = CellStatus::Skipped;
    flushLocked();
}

void
SweepManifest::flush()
{
    std::lock_guard<std::mutex> lock(mutex_);
    flushLocked();
}

obs::JsonValue
SweepManifest::toJsonLocked() const
{
    obs::JsonValue doc = obs::JsonValue::object();
    doc.set("schema", kSchemaVersion);
    doc.set("kind", kind_);
    obs::JsonValue fp = obs::JsonValue::object();
    fp.set("runs", stringArray(runs_));
    fp.set("policies", stringArray(policies_));
    fp.set("warmup_instructions", std::uint64_t{warmup_});
    fp.set("measure_instructions", std::uint64_t{measure_});
    doc.set("fingerprint", std::move(fp));

    obs::JsonValue cells = obs::JsonValue::array();
    const std::size_t cols = policies_.size();
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        const Cell &c = cells_[i];
        obs::JsonValue cell = obs::JsonValue::object();
        cell.set("run", runs_[i / cols]);
        cell.set("policy", policies_[i % cols]);
        cell.set("status", statusName(c.status));
        if (c.status == CellStatus::Completed)
            cell.set("metrics", c.metrics);
        if (c.status == CellStatus::Failed) {
            cell.set("error", c.error);
            cell.set("attempts", std::uint64_t{c.attempts});
            cell.set("timed_out", c.timedOut);
        }
        cells.push(std::move(cell));
    }
    doc.set("cells", std::move(cells));
    return doc;
}

void
SweepManifest::flushLocked() const
{
    if (!util::atomicWriteFile(path_, toJsonLocked().dump(2) + "\n"))
        warn("cannot write sweep manifest " + path_);
}

obs::JsonValue
runResultToJson(const RunResult &r)
{
    obs::JsonValue v = obs::JsonValue::object();
    v.set("benchmark", r.benchmark);
    v.set("policy", r.policy);
    v.set("instructions", std::uint64_t{r.instructions});
    v.set("cycles", std::uint64_t{r.cycles});
    v.set("ipc", r.ipc);
    v.set("mpki", r.mpki);
    v.set("llc_accesses", r.llcAccesses);
    v.set("llc_misses", r.llcMisses);
    v.set("llc_bypasses", r.llcBypasses);
    v.set("llc_efficiency", r.llcEfficiency);
    v.set("has_dbrb", r.hasDbrb);
    if (r.hasDbrb) {
        obs::JsonValue d = obs::JsonValue::object();
        d.set("predictions", r.dbrb.predictions);
        d.set("positives", r.dbrb.positives);
        d.set("false_positive_hits", r.dbrb.falsePositiveHits);
        d.set("bypass_reuses", r.dbrb.bypassReuses);
        d.set("dead_evictions", r.dbrb.deadEvictions);
        d.set("bypasses", r.dbrb.bypasses);
        v.set("dbrb", std::move(d));
    }
    v.set("faults_injected", r.faultsInjected);
    v.set("wall_seconds", r.wallSeconds);
    return v;
}

RunResult
runResultFromJson(const obs::JsonValue &v)
{
    RunResult r;
    r.benchmark = strField(v, "benchmark");
    r.policy = strField(v, "policy");
    r.instructions = u64Field(v, "instructions");
    r.cycles = u64Field(v, "cycles");
    r.ipc = numField(v, "ipc");
    r.mpki = numField(v, "mpki");
    r.llcAccesses = u64Field(v, "llc_accesses");
    r.llcMisses = u64Field(v, "llc_misses");
    r.llcBypasses = u64Field(v, "llc_bypasses");
    r.llcEfficiency = numField(v, "llc_efficiency");
    r.hasDbrb = boolField(v, "has_dbrb");
    if (const obs::JsonValue *d = v.find("dbrb"); d && r.hasDbrb) {
        r.dbrb.predictions = u64Field(*d, "predictions");
        r.dbrb.positives = u64Field(*d, "positives");
        r.dbrb.falsePositiveHits = u64Field(*d, "false_positive_hits");
        r.dbrb.bypassReuses = u64Field(*d, "bypass_reuses");
        r.dbrb.deadEvictions = u64Field(*d, "dead_evictions");
        r.dbrb.bypasses = u64Field(*d, "bypasses");
    }
    r.faultsInjected = u64Field(v, "faults_injected");
    r.wallSeconds = numField(v, "wall_seconds");
    return r;
}

obs::JsonValue
multicoreResultToJson(const MulticoreRunResult &r)
{
    obs::JsonValue v = obs::JsonValue::object();
    v.set("mix", r.mix);
    v.set("policy", r.policy);
    v.set("benchmarks", stringArray(r.benchmarks));
    obs::JsonValue ipc = obs::JsonValue::array();
    for (const double d : r.ipc)
        ipc.push(d);
    v.set("ipc", std::move(ipc));
    v.set("llc_misses", r.llcMisses);
    v.set("total_instructions", std::uint64_t{r.totalInstructions});
    v.set("mpki", r.mpki);
    v.set("faults_injected", r.faultsInjected);
    v.set("wall_seconds", r.wallSeconds);
    return v;
}

MulticoreRunResult
multicoreResultFromJson(const obs::JsonValue &v)
{
    MulticoreRunResult r;
    r.mix = strField(v, "mix");
    r.policy = strField(v, "policy");
    if (const obs::JsonValue *b = v.find("benchmarks");
        b && b->isArray())
        for (std::size_t i = 0; i < b->size(); ++i)
            r.benchmarks.push_back(b->at(i).asString());
    if (const obs::JsonValue *ipc = v.find("ipc");
        ipc && ipc->isArray())
        for (std::size_t i = 0; i < ipc->size(); ++i)
            r.ipc.push_back(ipc->at(i).asNumber());
    r.llcMisses = u64Field(v, "llc_misses");
    r.totalInstructions = u64Field(v, "total_instructions");
    r.mpki = numField(v, "mpki");
    r.faultsInjected = u64Field(v, "faults_injected");
    r.wallSeconds = numField(v, "wall_seconds");
    return r;
}

} // namespace sdbp::sweep
