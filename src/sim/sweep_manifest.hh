/**
 * @file
 * Sweep checkpoint manifest: a JSON sidecar recording the outcome of
 * every (run, policy) cell of a sweep, written atomically after each
 * cell completes.  A crashed or interrupted sweep can be re-launched
 * with SDBP_RESUME=1 and only the failed or missing cells re-execute;
 * completed cells restore their metrics from the manifest.
 *
 * Schema v2 (DESIGN.md §16) extends the manifest into the
 * coordination substrate of multi-process sweeps: cells carry lease
 * records ({pid, generation, claimed_ms, heartbeat_ms} on the
 * system-wide monotonic clock) that worker subprocesses claim via
 * atomic tmp+rename under a flock(2)'d sidecar, plus structured
 * crash fields (crashed/signal/lease_generation) per failed cell and
 * an opaque RunConfig blob so a worker is self-contained.  Schema v1
 * manifests are still readable (same fingerprint guard); writes are
 * always v2.
 *
 * The manifest stores metrics only (the scalar RunResult payload).
 * In-memory artifacts — the LLC reference trace, per-frame
 * efficiency, RunArtifacts — are not persisted, so sweeps that need
 * them (recordLlcTrace / trackEfficiency) are non-resumable and
 * always re-run their cells.
 */

#ifndef SDBP_SIM_SWEEP_MANIFEST_HH
#define SDBP_SIM_SWEEP_MANIFEST_HH

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "sim/runner.hh"

namespace sdbp::sweep
{

/** Outcome of one failed sweep cell (also serialized to the
 *  manifest, so a partial sweep is diagnosable from disk alone). */
struct CellError
{
    /** Row-major cell index in its grid. */
    std::size_t index = 0;
    /** Benchmark or mix name. */
    std::string run;
    std::string policy;
    /** what() of the last failing attempt. */
    std::string message;
    /** Attempts made (1 + retries actually used). */
    unsigned attempts = 0;
    /** The last failure was a SimulationTimeout (or a hard-timeout
     *  kill in multi-process mode). */
    bool timedOut = false;
    /** The worker process running the cell died (signal or nonzero
     *  exit) instead of reporting a failure in-band. */
    bool crashed = false;
    /** Terminating signal of the crashed worker (0 = exit-code
     *  death or not a crash). */
    int signal = 0;
    /** Lease generation of the last claim (multi-process sweeps;
     *  0 = cell never ran under a lease). */
    std::uint64_t leaseGeneration = 0;
};

enum class CellStatus { Pending, Leased, Completed, Failed, Skipped };

/**
 * One sweep's checkpoint file.  All mutators are thread-safe (sweep
 * workers complete cells concurrently) and every mutation rewrites
 * the manifest via an atomic tmp+rename, so the on-disk file is a
 * well-formed JSON document at every instant — even across SIGKILL.
 *
 * With enableSharedAccess() the manifest additionally becomes safe
 * against concurrent *processes*: every mutator then re-reads the
 * file under an exclusive flock on "<path>.lock" before applying its
 * change, so coordinator and workers see one serialized history.
 */
class SweepManifest
{
  public:
    static constexpr std::uint64_t kSchemaVersion = 2;

    /** One successful lease acquisition. */
    struct Claim
    {
        std::size_t index = 0;
        /** 1-based count of claims this cell has ever received. */
        std::uint64_t generation = 0;
    };

    /** Read-only view of one cell, for coordinator supervision. */
    struct CellView
    {
        CellStatus status = CellStatus::Pending;
        std::int64_t leasePid = 0;
        std::uint64_t leaseGeneration = 0;
        std::uint64_t claimedMs = 0;
        std::uint64_t heartbeatMs = 0;
        std::uint64_t startedMs = 0;
        std::uint64_t finishedMs = 0;
        unsigned attempts = 0;
        bool timedOut = false;
        bool crashed = false;
        int signal = 0;
        /** Pid that last ran the cell (telemetry; 0 = in-process). */
        std::int64_t workerPid = 0;
        std::string error;
    };

    /**
     * Describe a grid about to run: @p kind is "grid" or "mix_grid",
     * @p runs the row labels (benchmarks or mix names), @p policies
     * the column labels.  Together with the instruction budget these
     * form the fingerprint that a resume must match.
     */
    SweepManifest(std::string path, std::string kind,
                  std::vector<std::string> runs,
                  std::vector<std::string> policies,
                  InstCount warmup, InstCount measure);

    /**
     * Restore completed cells from the file at path(), if present.
     * A missing file is a fresh start (returns 0).  A malformed file
     * or one whose fingerprint (kind, runs, policies, instruction
     * budget) differs is fatal(): resuming a *different* sweep would
     * silently mix experiments.  Accepts schema v1 and v2 files.
     *
     * @return number of cells restored to Completed
     */
    std::size_t loadCompleted();

    bool isCompleted(std::size_t index) const;
    /** Stored metrics of a completed cell; Null JSON otherwise. */
    obs::JsonValue completedMetrics(std::size_t index) const;

    void markCompleted(std::size_t index, obs::JsonValue metrics);
    void markFailed(const CellError &err);
    void markSkipped(std::size_t index);

    /** Write the current state (atomic tmp+rename). */
    void flush();

    const std::string &path() const { return path_; }
    std::size_t cellCount() const { return cells_.size(); }

    // ---- multi-process fabric (schema v2) -------------------------

    /**
     * Opaque payloads a worker subprocess needs to be self-contained:
     * the sweep's RunConfig as JSON, and — for mix grids — each mix's
     * benchmark list.  Written at the manifest top level; neither is
     * part of the resume fingerprint (the instruction budget and
     * labels already pin the experiment).
     */
    void setConfig(obs::JsonValue config);
    void setMixes(obs::JsonValue mixes);

    /**
     * Serialize every mutator against other *processes* through an
     * exclusive flock on "<path>.lock": lock, re-read the file,
     * apply, atomic-rewrite, unlock.  The in-process mutex still
     * guards against sibling threads.
     */
    void enableSharedAccess();

    /**
     * Claim the first claimable cell: Pending, or Leased with a
     * heartbeat older than @p ttl_ms (a stale lease — its worker is
     * dead or wedged, so the cell is re-farmed).  nullopt when no
     * cell is claimable.  @p now_ms is util::monotonicMs().
     */
    std::optional<Claim> tryClaim(std::int64_t pid,
                                  std::uint64_t now_ms,
                                  std::uint64_t ttl_ms);

    /** Refresh the heartbeat of a lease still held by (pid, gen);
     *  no-op if the cell was reclaimed from under the caller. */
    void heartbeat(std::size_t index, std::int64_t pid,
                   std::uint64_t generation, std::uint64_t now_ms);

    /** Complete a leased cell: store metrics + timing, clear the
     *  lease.  No-op if (pid, gen) no longer owns the cell. */
    void completeClaimed(std::size_t index, std::int64_t pid,
                         std::uint64_t generation,
                         obs::JsonValue metrics,
                         std::uint64_t started_ms,
                         std::uint64_t finished_ms);

    /**
     * Fail a leased cell in-band (the worker caught the exception):
     * requeue as Pending while generation < max_attempts, else mark
     * Failed with @p err.  Returns the resulting status.
     */
    CellStatus failClaimed(std::size_t index, const CellError &err,
                           std::int64_t pid, std::uint64_t generation,
                           unsigned max_attempts,
                           std::uint64_t started_ms,
                           std::uint64_t finished_ms);

    /**
     * Coordinator-side crash charge: the worker owning this cell
     * died (signal @p sig, or nonzero exit when sig == 0) without
     * reporting.  Same requeue-or-fail policy as failClaimed.  No-op
     * (returns current status) unless @p pid still owns the lease.
     */
    CellStatus chargeCrash(std::size_t index, std::int64_t pid,
                           const std::string &message, int sig,
                           bool timed_out, unsigned max_attempts,
                           std::uint64_t now_ms);

    /**
     * Coordinator startup: clear leftover leases (their owners died
     * with a previous coordinator) and reset the attempt count of
     * every non-completed cell, so a resumed sweep gets a fresh
     * retry budget — matching the in-process resume semantics.
     */
    void resetLeases();

    /** Mark every Pending cell Skipped (coordinator shutdown). */
    void markSkippedPending();

    /** Per-cell view of the current state (reloads from disk first
     *  in shared mode). */
    std::vector<CellView> snapshotCells();

  private:
    struct Cell
    {
        CellStatus status = CellStatus::Pending;
        obs::JsonValue metrics;
        std::string error;
        unsigned attempts = 0;
        bool timedOut = false;
        bool crashed = false;
        int signal = 0;
        /** Claims this cell has ever received (lease generation). */
        std::uint64_t generation = 0;
        /** Live lease (status == Leased only). */
        std::int64_t leasePid = 0;
        std::uint64_t claimedMs = 0;
        std::uint64_t heartbeatMs = 0;
        /** Worker-side cell execution window (monotonic ms). */
        std::uint64_t startedMs = 0;
        std::uint64_t finishedMs = 0;
        /** Pid that last ran the cell (telemetry; 0 = in-process). */
        std::int64_t workerPid = 0;
    };

    void flushLocked() const;
    obs::JsonValue toJsonLocked() const;
    /** Shared mode: absorb the on-disk state before mutating. */
    void reloadLocked();
    CellStatus requeueOrFailLocked(Cell &c, const CellError &err,
                                   unsigned max_attempts);

    mutable std::mutex mutex_;
    std::string path_;
    std::string kind_;
    std::vector<std::string> runs_;
    std::vector<std::string> policies_;
    InstCount warmup_ = 0;
    InstCount measure_ = 0;
    std::vector<Cell> cells_;
    obs::JsonValue config_;
    obs::JsonValue mixes_;
    bool shared_ = false;
};

/**
 * Scalar (checkpointable) payload of a RunResult as JSON.  The
 * llcTrace / frameEfficiency / artifacts members are deliberately
 * omitted — see the file comment.
 */
obs::JsonValue runResultToJson(const RunResult &r);
RunResult runResultFromJson(const obs::JsonValue &v);

obs::JsonValue multicoreResultToJson(const MulticoreRunResult &r);
MulticoreRunResult multicoreResultFromJson(const obs::JsonValue &v);

} // namespace sdbp::sweep

#endif // SDBP_SIM_SWEEP_MANIFEST_HH
