/**
 * @file
 * Sweep checkpoint manifest: a JSON sidecar recording the outcome of
 * every (run, policy) cell of a sweep, written atomically after each
 * cell completes.  A crashed or interrupted sweep can be re-launched
 * with SDBP_RESUME=1 and only the failed or missing cells re-execute;
 * completed cells restore their metrics from the manifest.
 *
 * The manifest stores metrics only (the scalar RunResult payload).
 * In-memory artifacts — the LLC reference trace, per-frame
 * efficiency, RunArtifacts — are not persisted, so sweeps that need
 * them (recordLlcTrace / trackEfficiency) are non-resumable and
 * always re-run their cells.
 */

#ifndef SDBP_SIM_SWEEP_MANIFEST_HH
#define SDBP_SIM_SWEEP_MANIFEST_HH

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "sim/runner.hh"

namespace sdbp::sweep
{

/** Outcome of one failed sweep cell (also serialized to the
 *  manifest, so a partial sweep is diagnosable from disk alone). */
struct CellError
{
    /** Row-major cell index in its grid. */
    std::size_t index = 0;
    /** Benchmark or mix name. */
    std::string run;
    std::string policy;
    /** what() of the last failing attempt. */
    std::string message;
    /** Attempts made (1 + retries actually used). */
    unsigned attempts = 0;
    /** The last failure was a SimulationTimeout. */
    bool timedOut = false;
};

enum class CellStatus { Pending, Completed, Failed, Skipped };

/**
 * One sweep's checkpoint file.  All mutators are thread-safe (sweep
 * workers complete cells concurrently) and every mutation rewrites
 * the manifest via an atomic tmp+rename, so the on-disk file is a
 * well-formed JSON document at every instant — even across SIGKILL.
 */
class SweepManifest
{
  public:
    static constexpr std::uint64_t kSchemaVersion = 1;

    /**
     * Describe a grid about to run: @p kind is "grid" or "mix_grid",
     * @p runs the row labels (benchmarks or mix names), @p policies
     * the column labels.  Together with the instruction budget these
     * form the fingerprint that a resume must match.
     */
    SweepManifest(std::string path, std::string kind,
                  std::vector<std::string> runs,
                  std::vector<std::string> policies,
                  InstCount warmup, InstCount measure);

    /**
     * Restore completed cells from the file at path(), if present.
     * A missing file is a fresh start (returns 0).  A malformed file
     * or one whose fingerprint (kind, runs, policies, instruction
     * budget) differs is fatal(): resuming a *different* sweep would
     * silently mix experiments.
     *
     * @return number of cells restored to Completed
     */
    std::size_t loadCompleted();

    bool isCompleted(std::size_t index) const;
    /** Stored metrics of a completed cell; Null JSON otherwise. */
    obs::JsonValue completedMetrics(std::size_t index) const;

    void markCompleted(std::size_t index, obs::JsonValue metrics);
    void markFailed(const CellError &err);
    void markSkipped(std::size_t index);

    /** Write the current state (atomic tmp+rename). */
    void flush();

    const std::string &path() const { return path_; }
    std::size_t cellCount() const { return cells_.size(); }

  private:
    struct Cell
    {
        CellStatus status = CellStatus::Pending;
        obs::JsonValue metrics;
        std::string error;
        unsigned attempts = 0;
        bool timedOut = false;
    };

    void flushLocked() const;
    obs::JsonValue toJsonLocked() const;

    mutable std::mutex mutex_;
    std::string path_;
    std::string kind_;
    std::vector<std::string> runs_;
    std::vector<std::string> policies_;
    InstCount warmup_ = 0;
    InstCount measure_ = 0;
    std::vector<Cell> cells_;
};

/**
 * Scalar (checkpointable) payload of a RunResult as JSON.  The
 * llcTrace / frameEfficiency / artifacts members are deliberately
 * omitted — see the file comment.
 */
obs::JsonValue runResultToJson(const RunResult &r);
RunResult runResultFromJson(const obs::JsonValue &v);

obs::JsonValue multicoreResultToJson(const MulticoreRunResult &r);
MulticoreRunResult multicoreResultFromJson(const obs::JsonValue &v);

} // namespace sdbp::sweep

#endif // SDBP_SIM_SWEEP_MANIFEST_HH
