#include "sim/policy_factory.hh"

#include <cctype>

#include "cache/dip.hh"
#include "cache/lru.hh"
#include "cache/random_repl.hh"
#include "cache/plru.hh"
#include "cache/rrip.hh"
#include "predictor/counting.hh"
#include "predictor/sampling_counting.hh"
#include "predictor/aip.hh"
#include "predictor/burst_trace.hh"
#include "predictor/reftrace.hh"
#include "predictor/time_based.hh"
#include "util/logging.hh"

namespace sdbp
{

std::string
policyName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Lru:
        return "LRU";
      case PolicyKind::Random:
        return "Random";
      case PolicyKind::Dip:
        return "DIP";
      case PolicyKind::Tadip:
        return "TADIP";
      case PolicyKind::Rrip:
        return "RRIP";
      case PolicyKind::Sampler:
        return "Sampler";
      case PolicyKind::Tdbp:
        return "TDBP";
      case PolicyKind::Cdbp:
        return "CDBP";
      case PolicyKind::RandomSampler:
        return "Random Sampler";
      case PolicyKind::RandomCdbp:
        return "Random CDBP";
      case PolicyKind::SamplingCounting:
        return "Sampling CDBP";
      case PolicyKind::TreePlru:
        return "Tree-PLRU";
      case PolicyKind::Nru:
        return "NRU";
      case PolicyKind::Lip:
        return "LIP";
      case PolicyKind::Aip:
        return "AIP";
      case PolicyKind::TimeDbp:
        return "TimeDBP";
      case PolicyKind::BurstDbp:
        return "BurstDBP";
    }
    return "?";
}

const std::vector<PolicyKind> &
allPolicyKinds()
{
    static const std::vector<PolicyKind> kinds = {
        PolicyKind::Lru,           PolicyKind::Random,
        PolicyKind::Dip,           PolicyKind::Tadip,
        PolicyKind::Rrip,          PolicyKind::Sampler,
        PolicyKind::Tdbp,          PolicyKind::Cdbp,
        PolicyKind::RandomSampler, PolicyKind::RandomCdbp,
        PolicyKind::SamplingCounting,
        PolicyKind::TreePlru,      PolicyKind::Nru,
        PolicyKind::Lip,           PolicyKind::Aip,
        PolicyKind::TimeDbp,       PolicyKind::BurstDbp,
    };
    return kinds;
}

namespace
{

/** Lower-case with separators (space/dash/underscore) removed. */
std::string
canonicalPolicyName(const std::string &name)
{
    std::string out;
    for (const char c : name) {
        if (c == ' ' || c == '-' || c == '_')
            continue;
        out.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
    }
    return out;
}

} // anonymous namespace

std::optional<PolicyKind>
parsePolicyKind(const std::string &name)
{
    const std::string want = canonicalPolicyName(name);
    if (want.empty())
        return std::nullopt;
    for (const PolicyKind kind : allPolicyKinds())
        if (canonicalPolicyName(policyName(kind)) == want)
            return kind;
    return std::nullopt;
}

SdbpConfig
resolveSdbpConfig(std::uint32_t num_sets, const PolicyOptions &opts)
{
    SdbpConfig cfg = opts.sdbp ? *opts.sdbp
                               : SdbpConfig::paperDefault(num_sets);
    cfg.llcSets = num_sets;
    return cfg;
}

namespace
{

std::unique_ptr<DeadBlockPredictor>
makeSdbp(std::uint32_t num_sets, const PolicyOptions &opts)
{
    return std::make_unique<SamplingDeadBlockPredictor>(
        resolveSdbpConfig(num_sets, opts));
}

PolicyBundle
plain(std::unique_ptr<ReplacementPolicy> policy)
{
    PolicyBundle b;
    b.policy = std::move(policy);
    return b;
}

PolicyBundle
wrapDbrb(std::unique_ptr<ReplacementPolicy> inner,
         std::unique_ptr<DeadBlockPredictor> predictor,
         const PolicyOptions &opts)
{
    auto dbrb = std::make_unique<DeadBlockPolicy>(std::move(inner),
                                                  std::move(predictor),
                                                  opts.dbrb);
    PolicyBundle b;
    b.dbrb = dbrb.get();
    b.predictor = &dbrb->predictor();
    b.faultInjector = dbrb->faultInjector();
    b.policy = std::move(dbrb);
    return b;
}

} // anonymous namespace

std::unique_ptr<ReplacementPolicy>
makePolicy(PolicyKind kind, std::uint32_t num_sets, std::uint32_t assoc,
           const PolicyOptions &opts)
{
    return makeBundle(kind, num_sets, assoc, opts).policy;
}

PolicyBundle
makeBundle(PolicyKind kind, std::uint32_t num_sets,
           std::uint32_t assoc, const PolicyOptions &opts)
{
    switch (kind) {
      case PolicyKind::Lru:
        return plain(std::make_unique<LruPolicy>(num_sets, assoc));
      case PolicyKind::Random:
        return plain(std::make_unique<RandomPolicy>(num_sets, assoc,
                                                    opts.seed));
      case PolicyKind::Dip: {
        DipConfig cfg;
        cfg.seed = opts.seed;
        return plain(std::make_unique<DipPolicy>(num_sets, assoc,
                                                 cfg));
      }
      case PolicyKind::Tadip: {
        DipConfig cfg;
        cfg.numThreads = std::max<std::uint32_t>(2, opts.numThreads);
        cfg.seed = opts.seed;
        return plain(std::make_unique<DipPolicy>(num_sets, assoc,
                                                 cfg));
      }
      case PolicyKind::Rrip: {
        RripConfig cfg;
        cfg.numThreads = opts.numThreads;
        cfg.seed = opts.seed;
        return plain(std::make_unique<RripPolicy>(num_sets, assoc,
                                                  cfg));
      }
      case PolicyKind::Sampler:
        return wrapDbrb(std::make_unique<LruPolicy>(num_sets, assoc),
                        makeSdbp(num_sets, opts), opts);
      case PolicyKind::Tdbp:
        return wrapDbrb(std::make_unique<LruPolicy>(num_sets, assoc),
                        std::make_unique<RefTracePredictor>(), opts);
      case PolicyKind::Cdbp:
        return wrapDbrb(std::make_unique<LruPolicy>(num_sets, assoc),
                        std::make_unique<CountingPredictor>(), opts);
      case PolicyKind::RandomSampler:
        return wrapDbrb(std::make_unique<RandomPolicy>(num_sets, assoc,
                                                       opts.seed),
                        makeSdbp(num_sets, opts), opts);
      case PolicyKind::RandomCdbp:
        return wrapDbrb(std::make_unique<RandomPolicy>(num_sets, assoc,
                                                       opts.seed),
                        std::make_unique<CountingPredictor>(), opts);
      case PolicyKind::SamplingCounting: {
        SamplingCountingConfig cfg;
        cfg.llcSets = num_sets;
        return wrapDbrb(
            std::make_unique<LruPolicy>(num_sets, assoc),
            std::make_unique<SamplingCountingPredictor>(cfg), opts);
      }
      case PolicyKind::TreePlru:
        return plain(std::make_unique<TreePlruPolicy>(num_sets,
                                                      assoc));
      case PolicyKind::Nru:
        return plain(std::make_unique<NruPolicy>(num_sets,
                                                 assoc));
      case PolicyKind::Lip: {
        // LIP: every fill goes to the LRU position.
        DipConfig cfg;
        cfg.seed = opts.seed;
        cfg.staticBip = true;
        cfg.bipEpsilonDenom = 1u << 30; // never insert at MRU
        return plain(std::make_unique<DipPolicy>(num_sets, assoc,
                                                 cfg));
      }
      case PolicyKind::Aip: {
        AipConfig cfg;
        cfg.llcSets = num_sets;
        return wrapDbrb(std::make_unique<LruPolicy>(num_sets, assoc),
                        std::make_unique<AipPredictor>(cfg), opts);
      }
      case PolicyKind::TimeDbp: {
        TimeBasedConfig cfg;
        cfg.llcSets = num_sets;
        return wrapDbrb(
            std::make_unique<LruPolicy>(num_sets, assoc),
            std::make_unique<TimeBasedPredictor>(cfg), opts);
      }
      case PolicyKind::BurstDbp: {
        BurstTraceConfig cfg;
        cfg.llcSets = num_sets;
        return wrapDbrb(
            std::make_unique<LruPolicy>(num_sets, assoc),
            std::make_unique<BurstTracePredictor>(cfg), opts);
      }
    }
    fatal("makeBundle: unknown policy kind");
}

const std::vector<PolicyKind> &
lruDefaultPolicies()
{
    static const std::vector<PolicyKind> v = {
        PolicyKind::Tdbp, PolicyKind::Cdbp, PolicyKind::Dip,
        PolicyKind::Rrip, PolicyKind::Sampler,
    };
    return v;
}

const std::vector<PolicyKind> &
randomDefaultPolicies()
{
    static const std::vector<PolicyKind> v = {
        PolicyKind::Random, PolicyKind::RandomCdbp,
        PolicyKind::RandomSampler,
    };
    return v;
}

const std::vector<PolicyKind> &
multicoreLruPolicies()
{
    static const std::vector<PolicyKind> v = {
        PolicyKind::Tdbp, PolicyKind::Cdbp, PolicyKind::Tadip,
        PolicyKind::Rrip, PolicyKind::Sampler,
    };
    return v;
}

const std::vector<PolicyKind> &
multicoreRandomPolicies()
{
    static const std::vector<PolicyKind> v = {
        PolicyKind::Random, PolicyKind::RandomCdbp,
        PolicyKind::RandomSampler,
    };
    return v;
}

} // namespace sdbp
