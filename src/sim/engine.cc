#include "sim/engine.hh"

#include "cache/lru.hh"
#include "cache/random_repl.hh"
#include "core/sdbp.hh"

namespace sdbp
{

namespace
{

template <class P>
Engine
sealedPlain(const HierarchyConfig &hcfg, const CoreConfig &ccfg,
            std::unique_ptr<P> policy)
{
    Engine e;
    e.system = std::make_unique<BasicSystem<P>>(hcfg, ccfg,
                                                std::move(policy));
    e.fastPath = true;
    return e;
}

template <class Inner>
Engine
sealedSampler(const HierarchyConfig &hcfg, const CoreConfig &ccfg,
              std::unique_ptr<Inner> inner, const PolicyOptions &opts)
{
    using Dbrb =
        BasicDeadBlockPolicy<Inner, SamplingDeadBlockPredictor>;
    auto pred = std::make_unique<SamplingDeadBlockPredictor>(
        resolveSdbpConfig(hcfg.llc.numSets, opts));
    auto dbrb = std::make_unique<Dbrb>(std::move(inner),
                                       std::move(pred), opts.dbrb);
    Engine e;
    e.dbrb = dbrb.get();
    e.predictor = &dbrb->predictor();
    e.faults = dbrb->faultInjector();
    e.system = std::make_unique<BasicSystem<Dbrb>>(hcfg, ccfg,
                                                   std::move(dbrb));
    e.fastPath = true;
    return e;
}

} // anonymous namespace

Engine
makeEngine(PolicyKind kind, const HierarchyConfig &hcfg,
           const CoreConfig &ccfg, const PolicyOptions &opts,
           bool force_virtual)
{
    const std::uint32_t sets = hcfg.llc.numSets;
    const std::uint32_t assoc = hcfg.llc.assoc;

    if (!force_virtual) {
        switch (kind) {
          case PolicyKind::Lru:
            return sealedPlain(
                hcfg, ccfg,
                std::make_unique<LruPolicy>(sets, assoc));
          case PolicyKind::Random:
            return sealedPlain(
                hcfg, ccfg,
                std::make_unique<RandomPolicy>(sets, assoc,
                                               opts.seed));
          case PolicyKind::Sampler:
            return sealedSampler(
                hcfg, ccfg,
                std::make_unique<LruPolicy>(sets, assoc), opts);
          case PolicyKind::RandomSampler:
            return sealedSampler(
                hcfg, ccfg,
                std::make_unique<RandomPolicy>(sets, assoc,
                                               opts.seed),
                opts);
          default:
            break;
        }
    }

    // Type-erased stack: the extension point, and the reference the
    // sealed compositions are tested against.
    PolicyBundle b = makeBundle(kind, sets, assoc, opts);
    Engine e;
    e.dbrb = b.dbrb;
    e.predictor = b.predictor;
    e.faults = b.faultInjector;
    e.system = std::make_unique<System>(hcfg, ccfg,
                                        std::move(b.policy));
    e.fastPath = false;
    return e;
}

} // namespace sdbp
