#include "sim/engine.hh"

#include <algorithm>

#include "cache/dip.hh"
#include "cache/lru.hh"
#include "cache/random_repl.hh"
#include "cache/rrip.hh"
#include "core/sdbp.hh"

namespace sdbp
{

namespace
{

template <class P>
Engine
sealedPlain(const HierarchyConfig &hcfg, const CoreConfig &ccfg,
            std::unique_ptr<P> policy)
{
    Engine e;
    e.system = std::make_unique<BasicSystem<P>>(hcfg, ccfg,
                                                std::move(policy));
    e.fastPath = true;
    return e;
}

template <class Inner>
Engine
sealedSampler(const HierarchyConfig &hcfg, const CoreConfig &ccfg,
              std::unique_ptr<Inner> inner, const PolicyOptions &opts)
{
    using Dbrb =
        BasicDeadBlockPolicy<Inner, SamplingDeadBlockPredictor>;
    auto pred = std::make_unique<SamplingDeadBlockPredictor>(
        resolveSdbpConfig(hcfg.llc.numSets, opts));
    auto dbrb = std::make_unique<Dbrb>(std::move(inner),
                                       std::move(pred), opts.dbrb);
    Engine e;
    e.dbrb = dbrb.get();
    e.predictor = &dbrb->predictor();
    e.faults = dbrb->faultInjector();
    e.system = std::make_unique<BasicSystem<Dbrb>>(hcfg, ccfg,
                                                   std::move(dbrb));
    e.fastPath = true;
    return e;
}

} // anonymous namespace

Engine
makeEngine(PolicyKind kind, const HierarchyConfig &hcfg,
           const CoreConfig &ccfg, const PolicyOptions &opts,
           bool force_virtual)
{
    const std::uint32_t sets = hcfg.llc.numSets;
    const std::uint32_t assoc = hcfg.llc.assoc;

    // Everything below — caches, policies, predictor — is built
    // under this scope, so every storage lane bump-allocates from
    // the engine's own arena, contiguous in construction (= walk)
    // order.  The named helpers return before `e.arena` is attached;
    // attachArena rebinds ownership without re-running construction.
    auto arena = std::make_unique<Arena>();
    ArenaScope scope(*arena);
    const auto attachArena = [&arena](Engine e) {
        e.arena = std::move(arena);
        return e;
    };

    if (!force_virtual) {
        switch (kind) {
          case PolicyKind::Lru:
            return attachArena(sealedPlain(
                hcfg, ccfg,
                std::make_unique<LruPolicy>(sets, assoc)));
          case PolicyKind::Random:
            return attachArena(sealedPlain(
                hcfg, ccfg,
                std::make_unique<RandomPolicy>(sets, assoc,
                                               opts.seed)));
          case PolicyKind::Sampler:
            return attachArena(sealedSampler(
                hcfg, ccfg,
                std::make_unique<LruPolicy>(sets, assoc), opts));
          case PolicyKind::RandomSampler:
            return attachArena(sealedSampler(
                hcfg, ccfg,
                std::make_unique<RandomPolicy>(sets, assoc,
                                               opts.seed),
                opts));
          // The insertion-policy family: configurations mirror
          // makeBundle exactly (pinned by fastpath_test's sealed
          // vs. virtual RunResult equality).
          case PolicyKind::Dip: {
            DipConfig cfg;
            cfg.seed = opts.seed;
            return attachArena(sealedPlain(hcfg, ccfg,
                               std::make_unique<DipPolicy>(
                                   sets, assoc, cfg)));
          }
          case PolicyKind::Tadip: {
            DipConfig cfg;
            cfg.numThreads =
                std::max<std::uint32_t>(2, opts.numThreads);
            cfg.seed = opts.seed;
            return attachArena(sealedPlain(hcfg, ccfg,
                               std::make_unique<DipPolicy>(
                                   sets, assoc, cfg)));
          }
          case PolicyKind::Lip: {
            // LIP: every fill goes to the LRU position.
            DipConfig cfg;
            cfg.seed = opts.seed;
            cfg.staticBip = true;
            cfg.bipEpsilonDenom = 1u << 30; // never insert at MRU
            return attachArena(sealedPlain(hcfg, ccfg,
                               std::make_unique<DipPolicy>(
                                   sets, assoc, cfg)));
          }
          case PolicyKind::Rrip: {
            RripConfig cfg;
            cfg.numThreads = opts.numThreads;
            cfg.seed = opts.seed;
            return attachArena(sealedPlain(hcfg, ccfg,
                               std::make_unique<RripPolicy>(
                                   sets, assoc, cfg)));
          }
          default:
            break;
        }
    }

    // Type-erased stack: the extension point, and the reference the
    // sealed compositions are tested against.
    PolicyBundle b = makeBundle(kind, sets, assoc, opts);
    Engine e;
    e.dbrb = b.dbrb;
    e.predictor = b.predictor;
    e.faults = b.faultInjector;
    e.system = std::make_unique<System>(hcfg, ccfg,
                                        std::move(b.policy));
    e.fastPath = false;
    return attachArena(std::move(e));
}

} // namespace sdbp
