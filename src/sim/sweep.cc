#include "sim/sweep.hh"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "obs/span_tracer.hh"
#include "sim/worker.hh"
#include "util/env.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace sdbp::sweep
{

namespace
{

std::atomic<bool> g_shutdown{false};

extern "C" void
sweepSignalHandler(int sig)
{
    // First signal: request a graceful drain (queued cells skip,
    // in-flight cells finish and checkpoint).  Restoring the default
    // disposition means a second signal kills the process outright.
    g_shutdown.store(true, std::memory_order_relaxed);
    std::signal(sig, SIG_DFL);
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** "Random Sampler" -> "random_sampler"; "456.hmmer" -> "456_hmmer". */
std::string
slug(const std::string &name)
{
    std::string out;
    for (const char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            out.push_back(static_cast<char>(
                std::tolower(static_cast<unsigned char>(c))));
        else if (!out.empty() && out.back() != '_')
            out.push_back('_');
    }
    while (!out.empty() && out.back() == '_')
        out.pop_back();
    return out;
}

/**
 * Run @p attempt up to 1 + retries times with exponential backoff.
 * Returns true on success; otherwise @p err holds the last failure.
 */
bool
runWithRetries(std::size_t index, const std::string &run,
               const std::string &policy, unsigned retries,
               const std::function<void()> &attempt, CellError &err)
{
    err.index = index;
    err.run = run;
    err.policy = policy;
    const unsigned max_attempts = retries + 1;
    for (unsigned a = 1; a <= max_attempts; ++a) {
        err.attempts = a;
        try {
            // Test hook: make exactly this cell throw, so the
            // end-to-end failure path (retries, CellError, manifest,
            // exit code) is exercisable from tests and CI.
            if (const std::string f =
                    env::str("SDBP_TEST_FAIL_CELL");
                !f.empty() && run + "/" + policy == f)
                throw std::runtime_error(
                    "SDBP_TEST_FAIL_CELL forced failure");
            attempt();
            return true;
        } catch (const SimulationTimeout &e) {
            err.timedOut = true;
            err.message = e.what();
        } catch (const std::exception &e) {
            err.timedOut = false;
            err.message = e.what();
        } catch (...) {
            err.timedOut = false;
            err.message = "unknown exception";
        }
        if (a < max_attempts && !shutdownRequested()) {
            warn("cell " + run + "/" + policy + " failed (attempt " +
                 std::to_string(a) + "/" +
                 std::to_string(max_attempts) + "): " + err.message);
            const unsigned delay_ms =
                std::min(100u << (a - 1), 2000u);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(delay_ms));
        }
    }
    return false;
}

/** True when stderr is an interactive terminal. */
bool
stderrIsTty()
{
#if defined(__unix__) || defined(__APPLE__)
    return ::isatty(::fileno(stderr)) != 0;
#else
    return false;
#endif
}

/**
 * Live sweep progress on stderr: one \r-rewritten line with
 * done/failed counts and an ETA extrapolated from the mean cell
 * time so far.  Gated by SDBP_PROGRESS (default: on iff stderr is a
 * TTY); single-cell "sweeps" stay silent.  Writes stderr only —
 * figure/table stdout stays byte-identical with the meter on or off.
 */
class ProgressMeter
{
  public:
    ProgressMeter(std::size_t total)
        : total_(total),
          enabled_(total > 1 &&
                   env::u64("SDBP_PROGRESS", stderrIsTty() ? 1 : 0, 0,
                            1) == 1),
          // Host-side ETA only, never simulated state:
          start_(std::chrono::steady_clock::now()) // sdbp-lint: allow(det-wallclock)
    {
    }

    ~ProgressMeter()
    {
        if (enabled_ && done_ > 0)
            std::fputc('\n', stderr);
    }

    /** One cell finished (any outcome); repaints the line. */
    void update(bool failed)
    {
        if (!enabled_)
            return;
        std::lock_guard<std::mutex> lock(mutex_);
        ++done_;
        if (failed)
            ++failed_;
        const double elapsed = secondsSince(start_);
        const double eta = elapsed / static_cast<double>(done_) *
            static_cast<double>(total_ - done_);
        std::fprintf(stderr,
                     "\r[sweep] %zu/%zu cells done, %zu failed, "
                     "ETA %.0fs ",
                     done_, total_, failed_, eta);
        std::fflush(stderr);
    }

  private:
    const std::size_t total_;
    const bool enabled_;
    const std::chrono::steady_clock::time_point start_;
    std::mutex mutex_;
    std::size_t done_ = 0;
    std::size_t failed_ = 0;
};

} // anonymous namespace

unsigned
defaultJobs()
{
    const std::uint64_t jobs = env::u64("SDBP_JOBS", 0, 1, 4096);
    if (jobs > 0)
        return static_cast<unsigned>(jobs);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

unsigned
defaultRetries()
{
    return static_cast<unsigned>(env::u64("SDBP_RETRIES", 0, 0, 16));
}

void
installShutdownHandler()
{
    std::signal(SIGINT, sweepSignalHandler);
    std::signal(SIGTERM, sweepSignalHandler);
}

void
requestShutdown()
{
    g_shutdown.store(true, std::memory_order_relaxed);
}

bool
shutdownRequested()
{
    return g_shutdown.load(std::memory_order_relaxed);
}

void
resetShutdown()
{
    g_shutdown.store(false, std::memory_order_relaxed);
}

SweepOptions
SweepOptions::fromEnvironment()
{
    SweepOptions opts;
    opts.jobs = defaultJobs();
    opts.retries = defaultRetries();
    opts.resume = env::u64("SDBP_RESUME", 0, 0, 1) == 1;
    opts.workers = defaultWorkers();
    return opts;
}

void
parallelFor(std::size_t n, unsigned jobs,
            const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(jobs, n));
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    util::ThreadPool pool(workers);
    std::vector<std::future<void>> futures;
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        futures.push_back(pool.submit([&fn, i] { fn(i); }));
    // Drain every future, then fail with the lowest-index error so a
    // parallel sweep reports the same failure the serial loop would.
    std::exception_ptr first;
    for (auto &f : futures) {
        try {
            f.get();
        } catch (...) {
            if (!first)
                first = std::current_exception();
        }
    }
    if (first)
        std::rethrow_exception(first);
}

RunConfig
cellConfig(const RunConfig &cfg, bool multi_cell,
           const std::string &run, const std::string &policy)
{
    if (!multi_cell)
        return cfg;
    RunConfig out = cfg;
    if (!out.obs.statsJsonPath.empty())
        out.obs.statsJsonPath =
            cellArtifactPath(out.obs.statsJsonPath, run, policy);
    if (!out.obs.timelineCsvPath.empty())
        out.obs.timelineCsvPath =
            cellArtifactPath(out.obs.timelineCsvPath, run, policy);
    if (!out.obs.traceJsonlPath.empty())
        out.obs.traceJsonlPath =
            cellArtifactPath(out.obs.traceJsonlPath, run, policy);
    return out;
}

std::string
cellArtifactPath(const std::string &base, const std::string &run,
                 const std::string &policy)
{
    const std::string suffix = "." + slug(run) + "." + slug(policy);
    const auto slash = base.find_last_of('/');
    const auto dot = base.find_last_of('.');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash))
        return base + suffix;
    return base.substr(0, dot) + suffix + base.substr(dot);
}

double
Grid::runSecondsTotal() const
{
    double sum = 0;
    for (const auto &cell : cells)
        sum += cell.wallSeconds;
    return sum;
}

double
MixGrid::runSecondsTotal() const
{
    double sum = 0;
    for (const auto &cell : cells)
        sum += cell.wallSeconds;
    return sum;
}

Grid
runGrid(std::vector<std::string> benchmarks,
        std::vector<PolicyKind> policies, const RunConfig &cfg,
        const SweepOptions &opts)
{
    Grid grid;
    grid.benchmarks = std::move(benchmarks);
    grid.policies = std::move(policies);
    grid.jobs = opts.jobs ? opts.jobs : defaultJobs();
    const std::size_t cols = grid.policies.size();
    const std::size_t n = grid.benchmarks.size() * cols;
    grid.cells.resize(n);
    const bool multi = n > 1;

    std::vector<std::string> policy_names;
    policy_names.reserve(cols);
    for (const PolicyKind kind : grid.policies)
        policy_names.push_back(policyName(kind));

    // In-memory payloads (the LLC reference trace, per-frame
    // efficiency) are not checkpointed, so such grids must re-run.
    const bool can_resume =
        !cfg.recordLlcTrace && !cfg.trackEfficiency;
    std::unique_ptr<SweepManifest> manifest;
    bool resume = false;
    if (!opts.manifestPath.empty()) {
        manifest = std::make_unique<SweepManifest>(
            opts.manifestPath, "grid", grid.benchmarks, policy_names,
            cfg.warmupInstructions, cfg.measureInstructions);
        resume = opts.resume && can_resume;
        if (opts.resume && !can_resume)
            warn("sweep records in-memory artifacts; ignoring resume "
                 "and re-running every cell");
        if (resume)
            manifest->loadCompleted();
        // Persist the initial state so an interrupt before the first
        // cell completes still leaves a well-formed checkpoint.
        manifest->flush();
    }

    obs::SpanTracer &tracer = obs::SpanTracer::global();

    // Multi-process mode (DESIGN.md §16): this call becomes the
    // coordinator, worker subprocesses run the cells.  Any unmet
    // requirement warns and falls back to the in-process path — a
    // sweep never silently loses its workers option.
    if (opts.workers > 0 && n > 0) {
        const char *why = nullptr;
        if (!manifest)
            why = "SDBP_WORKERS needs a sweep manifest";
        else if (!can_resume)
            why = "sweep records in-memory artifacts that cannot "
                  "cross process boundaries";
        else if (!workerCapable())
            why = "this binary's main() never called "
                  "sweep::maybeWorkerMain";
        if (why) {
            warn(std::string(why) + "; running the sweep in-process");
        } else {
            const auto start = std::chrono::steady_clock::now();
            manifest->setConfig(runConfigToJson(cfg));
            manifest->enableSharedAccess();
            // Clear leases/failures a dead coordinator left behind
            // (also persists the config blob for the workers).
            manifest->resetLeases();
            ProgressMeter progress(n);
            std::size_t restored = 0;
            for (std::size_t i = 0; i < n; ++i) {
                if (!(resume && manifest->isCompleted(i)))
                    continue;
                ++restored;
                auto span = tracer.span(
                    "cell", grid.benchmarks[i / cols] + "/" +
                        policy_names[i % cols]);
                span.setResumed();
                progress.update(false);
            }
            const FabricResult fabric = superviseWorkers(
                *manifest, grid.benchmarks, policy_names,
                opts.workers, opts.retries,
                [&progress](bool failed) { progress.update(failed); });
            if (!fabric.fallback) {
                grid.jobs = opts.workers;
                grid.resumed = restored;
                grid.skipped = fabric.skipped;
                grid.errors = fabric.errors;
                for (std::size_t i = 0; i < n; ++i) {
                    if (manifest->isCompleted(i)) {
                        grid.cells[i] = runResultFromJson(
                            manifest->completedMetrics(i));
                    } else {
                        grid.cells[i] = RunResult{};
                        grid.cells[i].benchmark =
                            grid.benchmarks[i / cols];
                        grid.cells[i].policy = policy_names[i % cols];
                    }
                }
                grid.wallSeconds = secondsSince(start);
                return grid;
            }
        }
    }

    std::mutex book_mutex;
    ProgressMeter progress(n);
    const auto start = std::chrono::steady_clock::now();
    parallelFor(n, grid.jobs, [&](std::size_t i) {
        const auto &bench = grid.benchmarks[i / cols];
        const PolicyKind kind = grid.policies[i % cols];
        const std::string &pol = policy_names[i % cols];
        auto span = tracer.span("cell", bench + "/" + pol);

        if (resume && manifest->isCompleted(i)) {
            grid.cells[i] =
                runResultFromJson(manifest->completedMetrics(i));
            span.setResumed();
            progress.update(false);
            std::lock_guard<std::mutex> lock(book_mutex);
            ++grid.resumed;
            return;
        }
        if (shutdownRequested()) {
            if (manifest)
                manifest->markSkipped(i);
            span.setSkipped();
            progress.update(false);
            std::lock_guard<std::mutex> lock(book_mutex);
            ++grid.skipped;
            return;
        }

        CellError err;
        const bool ok = runWithRetries(
            i, bench, pol, opts.retries,
            [&] {
                grid.cells[i] = runSingleCore(
                    bench, kind, cellConfig(cfg, multi, bench, pol));
            },
            err);
        span.setAttempts(err.attempts);
        if (ok) {
            if (manifest)
                manifest->markCompleted(
                    i, runResultToJson(grid.cells[i]));
            progress.update(false);
            return;
        }
        span.setFailed(err.timedOut);
        progress.update(true);
        grid.cells[i] = RunResult{};
        grid.cells[i].benchmark = bench;
        grid.cells[i].policy = pol;
        if (manifest)
            manifest->markFailed(err);
        std::lock_guard<std::mutex> lock(book_mutex);
        grid.errors.push_back(std::move(err));
    });
    grid.wallSeconds = secondsSince(start);
    // Workers push errors in completion order; report them in cell
    // order, as the serial loop would.
    std::sort(grid.errors.begin(), grid.errors.end(),
              [](const CellError &a, const CellError &b) {
                  return a.index < b.index;
              });
    return grid;
}

MixGrid
runMixGrid(std::vector<MixProfile> mixes,
           std::vector<PolicyKind> policies, const RunConfig &cfg,
           const SweepOptions &opts)
{
    MixGrid grid;
    grid.mixes = std::move(mixes);
    grid.policies = std::move(policies);
    grid.jobs = opts.jobs ? opts.jobs : defaultJobs();
    const std::size_t cols = grid.policies.size();
    const std::size_t n = grid.mixes.size() * cols;
    grid.cells.resize(n);
    const bool multi = n > 1;

    std::vector<std::string> run_names;
    run_names.reserve(grid.mixes.size());
    for (const MixProfile &mix : grid.mixes)
        run_names.push_back(mix.name);
    std::vector<std::string> policy_names;
    policy_names.reserve(cols);
    for (const PolicyKind kind : grid.policies)
        policy_names.push_back(policyName(kind));

    std::unique_ptr<SweepManifest> manifest;
    bool resume = false;
    if (!opts.manifestPath.empty()) {
        manifest = std::make_unique<SweepManifest>(
            opts.manifestPath, "mix_grid", run_names, policy_names,
            cfg.warmupInstructions, cfg.measureInstructions);
        // Unlike runGrid, no can_resume guard is needed here:
        // runMulticore never records the in-memory payloads that
        // make a grid non-resumable (MulticoreRunResult has no
        // llcTrace / frameEfficiency members, and the multicore
        // engine ignores cfg.recordLlcTrace / cfg.trackEfficiency),
        // so every mix grid checkpoints completely.  See
        // SweepResilienceTest.MixGridResumeIgnoresArtifactFlags.
        resume = opts.resume;
        if (resume)
            manifest->loadCompleted();
        manifest->flush();
    }

    obs::SpanTracer &tracer = obs::SpanTracer::global();

    // Multi-process mode; see runGrid for the fallback rules.  The
    // manifest additionally carries each mix's benchmark list so a
    // worker can rebuild MixProfiles without re-running main().
    if (opts.workers > 0 && n > 0) {
        const char *why = nullptr;
        if (!manifest)
            why = "SDBP_WORKERS needs a sweep manifest";
        else if (!workerCapable())
            why = "this binary's main() never called "
                  "sweep::maybeWorkerMain";
        if (why) {
            warn(std::string(why) + "; running the sweep in-process");
        } else {
            const auto start = std::chrono::steady_clock::now();
            manifest->setConfig(runConfigToJson(cfg));
            obs::JsonValue jmixes = obs::JsonValue::array();
            for (const MixProfile &mix : grid.mixes) {
                obs::JsonValue jm = obs::JsonValue::object();
                jm.set("name", mix.name);
                obs::JsonValue jb = obs::JsonValue::array();
                for (const std::string &b : mix.benchmarks)
                    jb.push(b);
                jm.set("benchmarks", std::move(jb));
                jmixes.push(std::move(jm));
            }
            manifest->setMixes(std::move(jmixes));
            manifest->enableSharedAccess();
            manifest->resetLeases();
            ProgressMeter progress(n);
            std::size_t restored = 0;
            for (std::size_t i = 0; i < n; ++i) {
                if (!(resume && manifest->isCompleted(i)))
                    continue;
                ++restored;
                auto span = tracer.span(
                    "cell", run_names[i / cols] + "/" +
                        policy_names[i % cols]);
                span.setResumed();
                progress.update(false);
            }
            const FabricResult fabric = superviseWorkers(
                *manifest, run_names, policy_names, opts.workers,
                opts.retries,
                [&progress](bool failed) { progress.update(failed); });
            if (!fabric.fallback) {
                grid.jobs = opts.workers;
                grid.resumed = restored;
                grid.skipped = fabric.skipped;
                grid.errors = fabric.errors;
                for (std::size_t i = 0; i < n; ++i) {
                    if (manifest->isCompleted(i)) {
                        grid.cells[i] = multicoreResultFromJson(
                            manifest->completedMetrics(i));
                    } else {
                        grid.cells[i] = MulticoreRunResult{};
                        grid.cells[i].mix = run_names[i / cols];
                        grid.cells[i].policy = policy_names[i % cols];
                    }
                }
                grid.wallSeconds = secondsSince(start);
                return grid;
            }
        }
    }

    std::mutex book_mutex;
    ProgressMeter progress(n);
    const auto start = std::chrono::steady_clock::now();
    parallelFor(n, grid.jobs, [&](std::size_t i) {
        const auto &mix = grid.mixes[i / cols];
        const PolicyKind kind = grid.policies[i % cols];
        const std::string &pol = policy_names[i % cols];
        auto span = tracer.span("cell", mix.name + "/" + pol);

        if (resume && manifest->isCompleted(i)) {
            grid.cells[i] = multicoreResultFromJson(
                manifest->completedMetrics(i));
            span.setResumed();
            progress.update(false);
            std::lock_guard<std::mutex> lock(book_mutex);
            ++grid.resumed;
            return;
        }
        if (shutdownRequested()) {
            if (manifest)
                manifest->markSkipped(i);
            span.setSkipped();
            progress.update(false);
            std::lock_guard<std::mutex> lock(book_mutex);
            ++grid.skipped;
            return;
        }

        CellError err;
        const bool ok = runWithRetries(
            i, mix.name, pol, opts.retries,
            [&] {
                grid.cells[i] = runMulticore(
                    mix, kind,
                    cellConfig(cfg, multi, mix.name, pol));
            },
            err);
        span.setAttempts(err.attempts);
        if (ok) {
            if (manifest)
                manifest->markCompleted(
                    i, multicoreResultToJson(grid.cells[i]));
            progress.update(false);
            return;
        }
        span.setFailed(err.timedOut);
        progress.update(true);
        grid.cells[i] = MulticoreRunResult{};
        grid.cells[i].mix = mix.name;
        grid.cells[i].policy = pol;
        if (manifest)
            manifest->markFailed(err);
        std::lock_guard<std::mutex> lock(book_mutex);
        grid.errors.push_back(std::move(err));
    });
    grid.wallSeconds = secondsSince(start);
    std::sort(grid.errors.begin(), grid.errors.end(),
              [](const CellError &a, const CellError &b) {
                  return a.index < b.index;
              });
    return grid;
}

Grid
runGrid(std::vector<std::string> benchmarks,
        std::vector<PolicyKind> policies, const RunConfig &cfg,
        unsigned jobs)
{
    SweepOptions opts;
    opts.jobs = jobs;
    opts.retries = defaultRetries();
    return runGrid(std::move(benchmarks), std::move(policies), cfg,
                   opts);
}

MixGrid
runMixGrid(std::vector<MixProfile> mixes,
           std::vector<PolicyKind> policies, const RunConfig &cfg,
           unsigned jobs)
{
    SweepOptions opts;
    opts.jobs = jobs;
    opts.retries = defaultRetries();
    return runMixGrid(std::move(mixes), std::move(policies), cfg,
                      opts);
}

} // namespace sdbp::sweep
