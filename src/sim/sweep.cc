#include "sim/sweep.hh"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <thread>

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace sdbp::sweep
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** "Random Sampler" -> "random_sampler"; "456.hmmer" -> "456_hmmer". */
std::string
slug(const std::string &name)
{
    std::string out;
    for (const char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            out.push_back(static_cast<char>(
                std::tolower(static_cast<unsigned char>(c))));
        else if (!out.empty() && out.back() != '_')
            out.push_back('_');
    }
    while (!out.empty() && out.back() == '_')
        out.pop_back();
    return out;
}

/**
 * Per-cell copy of cfg.  A multi-cell sweep rewrites any artifact
 * paths so concurrent cells never share an output file; a single
 * cell keeps the caller's exact paths.
 */
RunConfig
cellConfig(const RunConfig &cfg, bool multi_cell,
           const std::string &run, const std::string &policy)
{
    if (!multi_cell)
        return cfg;
    RunConfig out = cfg;
    if (!out.obs.statsJsonPath.empty())
        out.obs.statsJsonPath =
            cellArtifactPath(out.obs.statsJsonPath, run, policy);
    if (!out.obs.timelineCsvPath.empty())
        out.obs.timelineCsvPath =
            cellArtifactPath(out.obs.timelineCsvPath, run, policy);
    if (!out.obs.traceJsonlPath.empty())
        out.obs.traceJsonlPath =
            cellArtifactPath(out.obs.traceJsonlPath, run, policy);
    return out;
}

} // anonymous namespace

unsigned
defaultJobs()
{
    if (const char *value = std::getenv("SDBP_JOBS");
        value && *value) {
        char *end = nullptr;
        const unsigned long parsed = std::strtoul(value, &end, 10);
        if (end != value && *end == '\0' && parsed >= 1 &&
            parsed <= 4096)
            return static_cast<unsigned>(parsed);
        warn("SDBP_JOBS: ignoring invalid value");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

void
parallelFor(std::size_t n, unsigned jobs,
            const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(jobs, n));
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    util::ThreadPool pool(workers);
    std::vector<std::future<void>> futures;
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        futures.push_back(pool.submit([&fn, i] { fn(i); }));
    // Drain every future, then fail with the lowest-index error so a
    // parallel sweep reports the same failure the serial loop would.
    std::exception_ptr first;
    for (auto &f : futures) {
        try {
            f.get();
        } catch (...) {
            if (!first)
                first = std::current_exception();
        }
    }
    if (first)
        std::rethrow_exception(first);
}

std::string
cellArtifactPath(const std::string &base, const std::string &run,
                 const std::string &policy)
{
    const std::string suffix = "." + slug(run) + "." + slug(policy);
    const auto slash = base.find_last_of('/');
    const auto dot = base.find_last_of('.');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash))
        return base + suffix;
    return base.substr(0, dot) + suffix + base.substr(dot);
}

double
Grid::runSecondsTotal() const
{
    double sum = 0;
    for (const auto &cell : cells)
        sum += cell.wallSeconds;
    return sum;
}

double
MixGrid::runSecondsTotal() const
{
    double sum = 0;
    for (const auto &cell : cells)
        sum += cell.wallSeconds;
    return sum;
}

Grid
runGrid(std::vector<std::string> benchmarks,
        std::vector<PolicyKind> policies, const RunConfig &cfg,
        unsigned jobs)
{
    Grid grid;
    grid.benchmarks = std::move(benchmarks);
    grid.policies = std::move(policies);
    grid.jobs = jobs;
    const std::size_t cols = grid.policies.size();
    const std::size_t n = grid.benchmarks.size() * cols;
    grid.cells.resize(n);
    const bool multi = n > 1;
    const auto start = std::chrono::steady_clock::now();
    parallelFor(n, jobs, [&](std::size_t i) {
        const auto &bench = grid.benchmarks[i / cols];
        const PolicyKind kind = grid.policies[i % cols];
        grid.cells[i] = runSingleCore(
            bench, kind,
            cellConfig(cfg, multi, bench, policyName(kind)));
    });
    grid.wallSeconds = secondsSince(start);
    return grid;
}

MixGrid
runMixGrid(std::vector<MixProfile> mixes,
           std::vector<PolicyKind> policies, const RunConfig &cfg,
           unsigned jobs)
{
    MixGrid grid;
    grid.mixes = std::move(mixes);
    grid.policies = std::move(policies);
    grid.jobs = jobs;
    const std::size_t cols = grid.policies.size();
    const std::size_t n = grid.mixes.size() * cols;
    grid.cells.resize(n);
    const bool multi = n > 1;
    const auto start = std::chrono::steady_clock::now();
    parallelFor(n, jobs, [&](std::size_t i) {
        const auto &mix = grid.mixes[i / cols];
        const PolicyKind kind = grid.policies[i % cols];
        grid.cells[i] = runMulticore(
            mix, kind,
            cellConfig(cfg, multi, mix.name, policyName(kind)));
    });
    grid.wallSeconds = secondsSince(start);
    return grid;
}

} // namespace sdbp::sweep
