/**
 * @file
 * Parallel experiment engine: deterministic fan-out of independent
 * (benchmark, policy) simulations across a fixed thread pool.
 *
 * Every cell of a grid owns its own System and seeded workload
 * stream, so results are bit-identical to the serial loop for any
 * job count; results are collected by (row, column) index, never by
 * completion order (DESIGN.md §10).
 */

#ifndef SDBP_SIM_SWEEP_HH
#define SDBP_SIM_SWEEP_HH

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/runner.hh"
#include "sim/sweep_manifest.hh"

namespace sdbp::sweep
{

/**
 * Worker count for sweeps: the SDBP_JOBS environment variable when
 * set, else hardware_concurrency (minimum 1).  1 means serial
 * execution.  A malformed SDBP_JOBS is a hard error, not a silent
 * fallback.
 */
unsigned defaultJobs();

/**
 * Per-cell retry budget: SDBP_RETRIES (0..16), default 0.  A cell
 * that throws (including SimulationTimeout) is re-attempted with
 * exponential backoff before being recorded as a CellError.
 */
unsigned defaultRetries();

/**
 * Cooperative shutdown for in-flight sweeps.  installShutdownHandler
 * routes SIGINT/SIGTERM to requestShutdown(); once requested, queued
 * cells are skipped (and marked so in the manifest) while cells
 * already executing drain normally — so ^C during a long sweep still
 * leaves a resumable checkpoint, and a second ^C kills the process
 * the usual way.
 */
void installShutdownHandler();
void requestShutdown();
bool shutdownRequested();
/** Test hook: clear a previously requested shutdown. */
void resetShutdown();

/** Execution knobs of one sweep. */
struct SweepOptions
{
    unsigned jobs = 0;    ///< 0 = defaultJobs()
    unsigned retries = 0; ///< extra attempts per failing cell
    /** When non-empty, checkpoint every cell outcome here. */
    std::string manifestPath;
    /** Restore completed cells from the manifest instead of
     *  re-running them (requires manifestPath). */
    bool resume = false;
    /**
     * Crash-isolated multi-process mode (DESIGN.md §16): 0 (the
     * default) keeps the in-process thread-pool behavior; N > 0
     * makes the sweep a coordinator that re-execs this binary as N
     * worker subprocesses claiming cells through manifest leases.
     * Requires manifestPath and a main() that calls
     * maybeWorkerMain(); otherwise the sweep warns and runs
     * in-process.
     */
    unsigned workers = 0;

    /** jobs/retries/resume/workers from SDBP_JOBS / SDBP_RETRIES /
     *  SDBP_RESUME / SDBP_WORKERS; manifestPath stays empty
     *  (caller's choice). */
    static SweepOptions fromEnvironment();
};

/**
 * Run fn(0) .. fn(n-1) across @p jobs workers.  Tasks must be
 * independent; completion order is unspecified but error reporting
 * is deterministic: if tasks throw, every task still finishes and
 * then the exception of the lowest failing index is rethrown — the
 * same failure the serial loop would report first.  jobs <= 1
 * executes inline.
 */
void parallelFor(std::size_t n, unsigned jobs,
                 const std::function<void(std::size_t)> &fn);

/**
 * Derive the per-cell artifact path of a multi-cell sweep, so
 * concurrent runs never write the same file:
 * ("run.json", "456.hmmer", "Random Sampler") ->
 * "run.456_hmmer.random_sampler.json".  Deterministic, so serial
 * and parallel sweeps produce identical files.
 */
std::string cellArtifactPath(const std::string &base,
                             const std::string &run,
                             const std::string &policy);

/**
 * Per-cell copy of cfg.  A multi-cell sweep rewrites any artifact
 * paths via cellArtifactPath so concurrent cells never share an
 * output file; a single cell keeps the caller's exact paths.  Shared
 * with the worker subprocess entry (sim/worker) so in-process and
 * multi-process cells build identical configurations.
 */
RunConfig cellConfig(const RunConfig &cfg, bool multi_cell,
                     const std::string &run, const std::string &policy);

/**
 * Results of a benchmarks x policies sweep, row-major in input
 * order.
 */
struct Grid
{
    std::vector<std::string> benchmarks;
    std::vector<PolicyKind> policies;
    /** benchmarks.size() * policies.size() cells, row-major.  Failed
     *  and skipped cells hold a default RunResult with only the
     *  benchmark/policy labels filled in. */
    std::vector<RunResult> cells;
    /** Cells that exhausted their attempts, ordered by index. */
    std::vector<CellError> errors;
    /** Cells skipped because shutdown was requested. */
    std::size_t skipped = 0;
    /** Cells restored from the manifest instead of re-run. */
    std::size_t resumed = 0;
    /** Workers the sweep ran with. */
    unsigned jobs = 1;
    /** Whole-grid wall clock, seconds. */
    double wallSeconds = 0;

    /** Every cell holds a real result. */
    bool ok() const { return errors.empty() && skipped == 0; }

    const RunResult &
    at(std::size_t b, std::size_t p) const
    {
        return cells[b * policies.size() + p];
    }

    /** Sum of per-run wall clocks (the serial-equivalent cost). */
    double runSecondsTotal() const;
};

/** Multicore-mix equivalent of Grid. */
struct MixGrid
{
    std::vector<MixProfile> mixes;
    std::vector<PolicyKind> policies;
    /** mixes.size() * policies.size() cells, row-major. */
    std::vector<MulticoreRunResult> cells;
    std::vector<CellError> errors;
    std::size_t skipped = 0;
    std::size_t resumed = 0;
    unsigned jobs = 1;
    double wallSeconds = 0;

    bool ok() const { return errors.empty() && skipped == 0; }

    const MulticoreRunResult &
    at(std::size_t m, std::size_t p) const
    {
        return cells[m * policies.size() + p];
    }

    double runSecondsTotal() const;
};

/**
 * Simulate every (benchmark, policy) cell with runSingleCore, fanned
 * across opts.jobs threads.  When cfg carries artifact paths and the
 * grid has more than one cell, each cell writes to its
 * cellArtifactPath-derived file instead.
 *
 * Failure isolation: a throwing cell (SimulationTimeout included) is
 * retried opts.retries times with exponential backoff and, if it
 * still fails, recorded as a CellError — the remaining cells run to
 * completion regardless.  With opts.manifestPath set, every cell
 * outcome is checkpointed atomically; with opts.resume additionally
 * set, cells the manifest records as completed restore their metrics
 * instead of re-running (unless cfg needs in-memory artifacts —
 * recordLlcTrace / trackEfficiency — which cannot be checkpointed;
 * those grids always re-run).
 */
Grid runGrid(std::vector<std::string> benchmarks,
             std::vector<PolicyKind> policies, const RunConfig &cfg,
             const SweepOptions &opts);

/** Simulate every (mix, policy) cell with runMulticore, with the
 *  same failure isolation and checkpointing as runGrid. */
MixGrid runMixGrid(std::vector<MixProfile> mixes,
                   std::vector<PolicyKind> policies,
                   const RunConfig &cfg, const SweepOptions &opts);

/** Back-compat convenience: plain sweep with @p jobs workers. */
Grid runGrid(std::vector<std::string> benchmarks,
             std::vector<PolicyKind> policies, const RunConfig &cfg,
             unsigned jobs = defaultJobs());
MixGrid runMixGrid(std::vector<MixProfile> mixes,
                   std::vector<PolicyKind> policies,
                   const RunConfig &cfg,
                   unsigned jobs = defaultJobs());

} // namespace sdbp::sweep

#endif // SDBP_SIM_SWEEP_HH
