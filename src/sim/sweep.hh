/**
 * @file
 * Parallel experiment engine: deterministic fan-out of independent
 * (benchmark, policy) simulations across a fixed thread pool.
 *
 * Every cell of a grid owns its own System and seeded workload
 * stream, so results are bit-identical to the serial loop for any
 * job count; results are collected by (row, column) index, never by
 * completion order (DESIGN.md §10).
 */

#ifndef SDBP_SIM_SWEEP_HH
#define SDBP_SIM_SWEEP_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "sim/runner.hh"

namespace sdbp::sweep
{

/**
 * Worker count for sweeps: the SDBP_JOBS environment variable when
 * set to a valid positive integer, else hardware_concurrency
 * (minimum 1).  1 means serial execution.
 */
unsigned defaultJobs();

/**
 * Run fn(0) .. fn(n-1) across @p jobs workers.  Tasks must be
 * independent; completion order is unspecified but error reporting
 * is deterministic: if tasks throw, every task still finishes and
 * then the exception of the lowest failing index is rethrown — the
 * same failure the serial loop would report first.  jobs <= 1
 * executes inline.
 */
void parallelFor(std::size_t n, unsigned jobs,
                 const std::function<void(std::size_t)> &fn);

/**
 * Derive the per-cell artifact path of a multi-cell sweep, so
 * concurrent runs never write the same file:
 * ("run.json", "456.hmmer", "Random Sampler") ->
 * "run.456_hmmer.random_sampler.json".  Deterministic, so serial
 * and parallel sweeps produce identical files.
 */
std::string cellArtifactPath(const std::string &base,
                             const std::string &run,
                             const std::string &policy);

/**
 * Results of a benchmarks x policies sweep, row-major in input
 * order.
 */
struct Grid
{
    std::vector<std::string> benchmarks;
    std::vector<PolicyKind> policies;
    /** benchmarks.size() * policies.size() cells, row-major. */
    std::vector<RunResult> cells;
    /** Workers the sweep ran with. */
    unsigned jobs = 1;
    /** Whole-grid wall clock, seconds. */
    double wallSeconds = 0;

    const RunResult &
    at(std::size_t b, std::size_t p) const
    {
        return cells[b * policies.size() + p];
    }

    /** Sum of per-run wall clocks (the serial-equivalent cost). */
    double runSecondsTotal() const;
};

/** Multicore-mix equivalent of Grid. */
struct MixGrid
{
    std::vector<MixProfile> mixes;
    std::vector<PolicyKind> policies;
    /** mixes.size() * policies.size() cells, row-major. */
    std::vector<MulticoreRunResult> cells;
    unsigned jobs = 1;
    double wallSeconds = 0;

    const MulticoreRunResult &
    at(std::size_t m, std::size_t p) const
    {
        return cells[m * policies.size() + p];
    }

    double runSecondsTotal() const;
};

/**
 * Simulate every (benchmark, policy) cell with runSingleCore, fanned
 * across @p jobs threads.  When cfg carries artifact paths and the
 * grid has more than one cell, each cell writes to its
 * cellArtifactPath-derived file instead.
 */
Grid runGrid(std::vector<std::string> benchmarks,
             std::vector<PolicyKind> policies, const RunConfig &cfg,
             unsigned jobs = defaultJobs());

/** Simulate every (mix, policy) cell with runMulticore. */
MixGrid runMixGrid(std::vector<MixProfile> mixes,
                   std::vector<PolicyKind> policies,
                   const RunConfig &cfg,
                   unsigned jobs = defaultJobs());

} // namespace sdbp::sweep

#endif // SDBP_SIM_SWEEP_HH
