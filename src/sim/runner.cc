#include "sim/runner.hh"

#include "sim/engine.hh"

#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

#include <cmath>

#include "obs/span_tracer.hh"
#include "obs/trace_sink.hh"
#include "trace/interval_select.hh"
#include "trace/trace_file.hh"
#include "util/env.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace sdbp
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

InstCount
envInstCount(const char *name, InstCount fallback)
{
    return env::u64(name, fallback, 1);
}

/**
 * Everything the observability layer attaches to one System for one
 * run.  Allocated only when cfg.obs.collect is set; an uncollected
 * run carries no registry, heartbeat, profiler or trace sink at all.
 */
struct ObsHarness
{
    obs::StatRegistry registry;
    obs::IntervalTimeline timeline{&registry};
    obs::Profiler profiler;
    obs::TraceSink trace;

    explicit ObsHarness(const ObsOptions &opt) : trace(opt.traceCapacity)
    {
    }
};

/** Attach registry/heartbeat/profiler/trace to the engine. */
std::unique_ptr<ObsHarness>
attachObs(Engine &eng, const ObsOptions &opt, const std::string &cell)
{
    if (!opt.collect)
        return nullptr;
    auto h = std::make_unique<ObsHarness>(opt);
    SystemBase &sys = *eng.system;
    sys.registerStats(h->registry);
    if (eng.dbrb) {
        eng.dbrb->registerStats(h->registry, "dbrb");
        eng.dbrb->setTraceSink(&h->trace);
    }
    if (obs::SpanTracer::global().enabled())
        h->profiler.mirrorSpans(&obs::SpanTracer::global(), cell);
    h->profiler.enableHostCounters();
    sys.setProfiler(&h->profiler);
    sys.setHeartbeat(opt.intervalInstructions,
                     [harness = h.get()](std::uint64_t tick) {
                         harness->timeline.sample(tick);
                     });
    if (!opt.traceJsonlPath.empty() &&
        !h->trace.openJsonl(opt.traceJsonlPath))
        warn("cannot open trace JSONL file " + opt.traceJsonlPath);
    sys.hierarchy().setTraceSink(&h->trace);
    return h;
}

/**
 * Phase spans without a full harness: when the global tracer is on
 * but artifact collection is off (the common sweep case), a bare
 * Profiler is attached purely to mirror the warmup/measure scopes as
 * spans attributed to @p cell.
 */
std::unique_ptr<obs::Profiler>
attachSpanProfiler(SystemBase &sys, const std::string &cell)
{
    if (!obs::SpanTracer::global().enabled())
        return nullptr;
    auto prof = std::make_unique<obs::Profiler>();
    prof->mirrorSpans(&obs::SpanTracer::global(), cell);
    sys.setProfiler(prof.get());
    return prof;
}

/**
 * Assemble, export (per the SDBP_STATS_JSON-style options) and
 * return the run artifact.  Takes the final snapshot now, while the
 * System's registered counters are still alive.
 */
std::shared_ptr<const obs::RunArtifacts>
collectObs(ObsHarness &h, const Engine &eng, const ObsOptions &opt,
           const std::string &benchmark, const std::string &policy,
           const RunConfig &cfg, double wallSeconds,
           std::uint64_t simInstructions,
           const util::PerfCounters::Sample &hostPerf)
{
    auto art = std::make_shared<obs::RunArtifacts>();
    art->benchmark = benchmark;
    art->policy = policy;
    art->wallSeconds = wallSeconds;
    art->simulatedInstructions = simInstructions;
    art->hostPerf = hostPerf;
    art->warmupInstructions = cfg.warmupInstructions;
    art->measureInstructions = cfg.measureInstructions;
    art->intervalInstructions = opt.intervalInstructions;
    art->finalSnapshot = h.registry.snapshot(eng.system->tick());
    art->intervals = h.timeline.snapshots();
    art->series = obs::standardSeries(h.timeline);
    if (eng.dbrb) {
        art->hasConfusion = true;
        art->confusion = eng.dbrb->confusion();
    }
    art->profile = h.profiler.summary();
    art->traceEventsRecorded = h.trace.recorded();
    art->traceEventsDropped = h.trace.dropped();

    if (!opt.statsJsonPath.empty() &&
        !art->writeJson(opt.statsJsonPath))
        warn("cannot write stats JSON to " + opt.statsJsonPath);
    if (!opt.timelineCsvPath.empty() &&
        !art->writeTimelineCsv(opt.timelineCsvPath))
        warn("cannot write timeline CSV to " + opt.timelineCsvPath);
    return art;
}

/**
 * Apply the SDBP_CELL_TIMEOUT wall-clock budget (seconds; 0 or unset
 * disables).  The deadline starts when the System is armed, so each
 * retry of a failed sweep cell gets a fresh budget.
 */
void
applyCellTimeout(SystemBase &sys)
{
    const std::uint64_t secs = env::u64("SDBP_CELL_TIMEOUT", 0);
    if (secs > 0)
        sys.setDeadline(std::chrono::steady_clock::now() +
                        std::chrono::seconds(secs));
}

} // anonymous namespace

RunConfig
RunConfig::singleCore()
{
    RunConfig cfg;
    cfg.measureInstructions =
        envInstCount("SDBP_INSTRUCTIONS", cfg.measureInstructions);
    cfg.warmupInstructions =
        envInstCount("SDBP_WARMUP", cfg.warmupInstructions);
    if (const std::string path = env::outputPath("SDBP_STATS_JSON");
        !path.empty()) {
        cfg.obs.collect = true;
        cfg.obs.statsJsonPath = path;
    }
    cfg.obs.intervalInstructions =
        envInstCount("SDBP_INTERVAL", cfg.obs.intervalInstructions);
    cfg.policy.dbrb.fault.faultsPerMillion =
        env::u64("SDBP_FAULT_RATE",
                 cfg.policy.dbrb.fault.faultsPerMillion, 0, 1'000'000);
    cfg.policy.dbrb.fault.seed =
        env::u64("SDBP_FAULT_SEED", cfg.policy.dbrb.fault.seed);
    cfg.forceVirtualPath =
        env::u64("SDBP_NO_FASTPATH", 0, 0, 1) != 0;
    return cfg;
}

RunConfig
RunConfig::quadCore()
{
    RunConfig cfg = singleCore();
    cfg.hierarchy.numCores = 4;
    cfg.hierarchy.llc.numSets = 8192; // 8 MB shared LLC
    cfg.policy.numThreads = 4;
    return cfg;
}

namespace
{

/** The single-core run proper, over an already-built generator. */
RunResult
runSingleCoreWith(AccessGenerator &workload,
                  const std::string &benchmark, PolicyKind kind,
                  const RunConfig &cfg_in)
{
    RunConfig cfg = cfg_in;
    const auto wall_start = std::chrono::steady_clock::now();
    cfg.hierarchy.numCores = 1;
    cfg.hierarchy.llc.trackEfficiency = cfg.trackEfficiency;
    cfg.policy.numThreads = 1;

    Engine eng = makeEngine(kind, cfg.hierarchy, cfg.core,
                            cfg.policy, cfg.forceVirtualPath);
    SystemBase &sys = *eng.system;

    RunResult res;
    res.benchmark = benchmark;
    res.policy = policyName(kind);
    if (cfg.recordLlcTrace)
        sys.hierarchy().recordLlcTrace(&res.llcTrace);
    applyCellTimeout(sys);
    auto harness = attachObs(eng, cfg.obs,
                             benchmark + "/" + res.policy);
    std::unique_ptr<obs::Profiler> spanProf;
    if (!harness)
        spanProf = attachSpanProfiler(sys,
                                      benchmark + "/" + res.policy);

    std::vector<AccessGenerator *> gens = {&workload};
    std::unique_ptr<util::PerfCounters> hostCounters;
    if (util::hostCountersEnabled()) {
        hostCounters = std::make_unique<util::PerfCounters>();
        hostCounters->start();
    }
    const auto threads = sys.run(gens, cfg.warmupInstructions,
                                 cfg.measureInstructions);
    if (hostCounters) {
        hostCounters->stop();
        res.hostPerf = hostCounters->sample();
    }
    if (harness) {
        res.artifacts = collectObs(*harness, eng, cfg.obs, benchmark,
                                   res.policy, cfg,
                                   secondsSince(wall_start),
                                   threads[0].instructions,
                                   res.hostPerf);
    }

    const CacheBase &llc = sys.hierarchy().llc();
    res.instructions = threads[0].instructions;
    res.cycles = threads[0].cycles;
    res.ipc = threads[0].ipc;
    res.llcAccesses = llc.stats().demandAccesses;
    res.llcMisses = llc.stats().demandMisses;
    res.llcBypasses = llc.stats().bypasses;
    res.llcTraceMeasureStart = sys.hierarchy().llcTraceMark();
    res.mpki = mpki(res.llcMisses, res.instructions);

    sys.hierarchy().llc().finalizeEfficiency(sys.tick());
    res.llcEfficiency = llc.stats().efficiency();
    if (cfg.trackEfficiency) {
        const auto sets = llc.config().numSets;
        const auto assoc = llc.config().assoc;
        res.frameEfficiency.reserve(
            static_cast<std::size_t>(sets) * assoc);
        for (std::uint32_t s = 0; s < sets; ++s)
            for (std::uint32_t w = 0; w < assoc; ++w)
                res.frameEfficiency.push_back(
                    llc.frameEfficiency(s, w));
    }

    if (eng.dbrb) {
        res.hasDbrb = true;
        res.dbrb = eng.dbrb->dbrbStats();
        if (eng.faults)
            res.faultsInjected = eng.faults->injected();
        // Fault-injected or not, the predictor must end the run with
        // its invariants intact: corruption is confined to hints.
        eng.predictor->auditInvariants();
    }
    res.wallSeconds = secondsSince(wall_start);
    return res;
}

/**
 * Interval-selected run (DESIGN.md §17): fingerprint + cluster the
 * trace, then simulate one representative interval per cluster — each
 * on a fresh engine, warmed by its predecessor interval — and blend
 * the per-representative metrics by cluster instruction share into
 * full-trace estimates.
 */
RunResult
runIntervalSelected(const std::string &benchmark, PolicyKind kind,
                    const RunConfig &cfg)
{
    const auto wall_start = std::chrono::steady_clock::now();
    if (cfg.trace.synthetic())
        fatal("interval selection needs a trace file "
              "(record one with sdbp_inspect --record)");

    auto reader = openTraceReader(cfg.trace.path);
    IntervalSelectConfig isc;
    isc.intervalInstructions = cfg.trace.intervalInstructions;
    isc.clusters = cfg.trace.selectClusters;
    const IntervalSelection sel = selectIntervals(*reader, isc);

    // Materialize each representative and its predecessor (the
    // cache warm-up) in one sequential pass.
    std::vector<std::size_t> wanted;
    for (const auto &rep : sel.reps) {
        if (rep.interval > 0)
            wanted.push_back(rep.interval - 1);
        wanted.push_back(rep.interval);
    }
    auto collected = collectIntervals(*reader, sel, wanted);

    RunResult res;
    res.benchmark = benchmark;
    res.policy = policyName(kind);
    res.intervalSelected = true;
    res.traceInstructions = sel.totalInstructions;
    res.intervalsTotal = sel.intervals.size();
    res.intervalsSimulated = sel.reps.size();

    // Instruction-share weighting: CPI (not IPC) averages linearly
    // over instructions, so IPC blends through its reciprocal.
    double cpi_w = 0, mpki_w = 0, apki_w = 0, bpki_w = 0;
    std::size_t slot = 0;
    for (const auto &rep : sel.reps) {
        std::vector<Access> records;
        InstCount warm_instr = 0;
        if (rep.interval > 0) {
            records = std::move(collected[slot++]);
            warm_instr = sel.intervals[rep.interval - 1].instructions;
        }
        const auto &measure = collected[slot++];
        records.insert(records.end(), measure.begin(), measure.end());

        RunConfig sub = cfg;
        sub.trace = TraceSpec{}; // the records below are the source
        sub.warmupInstructions = warm_instr;
        sub.measureInstructions =
            sel.intervals[rep.interval].instructions;
        sub.obs = ObsOptions{}; // per-rep artifacts are meaningless
        sub.recordLlcTrace = false;
        sub.trackEfficiency = false;

        TraceReplayGenerator gen(std::move(records));
        const RunResult r =
            runSingleCoreWith(gen, benchmark, kind, sub);
        res.simulatedInstructions += warm_instr + r.instructions;
        res.faultsInjected += r.faultsInjected;

        const double w = rep.weight;
        if (r.ipc > 0)
            cpi_w += w / r.ipc;
        mpki_w += w * r.mpki;
        if (r.instructions > 0) {
            const double instr =
                static_cast<double>(r.instructions);
            apki_w += w * 1000.0 *
                static_cast<double>(r.llcAccesses) / instr;
            bpki_w += w * 1000.0 *
                static_cast<double>(r.llcBypasses) / instr;
        }
    }

    const double total =
        static_cast<double>(sel.totalInstructions);
    res.instructions = sel.totalInstructions;
    res.ipc = cpi_w > 0 ? 1.0 / cpi_w : 0;
    res.mpki = mpki_w;
    res.llcMisses = static_cast<std::uint64_t>(
        std::llround(mpki_w * total / 1000.0));
    res.llcAccesses = static_cast<std::uint64_t>(
        std::llround(apki_w * total / 1000.0));
    res.llcBypasses = static_cast<std::uint64_t>(
        std::llround(bpki_w * total / 1000.0));
    res.cycles = res.ipc > 0
        ? static_cast<Cycle>(std::llround(total / res.ipc))
        : 0;
    res.wallSeconds = secondsSince(wall_start);
    return res;
}

} // anonymous namespace

RunResult
runSingleCore(const std::string &benchmark, PolicyKind kind,
              RunConfig cfg)
{
    if (cfg.trace.selectionEnabled())
        return runIntervalSelected(benchmark, kind, cfg);
    const auto gen = makeTraceSource(cfg.trace, benchmark);
    return runSingleCoreWith(*gen, benchmark, kind, cfg);
}

MulticoreRunResult
runMulticore(const MixProfile &mix, PolicyKind kind, RunConfig cfg)
{
    const auto wall_start = std::chrono::steady_clock::now();
    const auto cores = static_cast<std::uint32_t>(
        mix.benchmarks.size());
    cfg.hierarchy.numCores = cores;
    cfg.policy.numThreads = cores;

    Engine eng = makeEngine(kind, cfg.hierarchy, cfg.core,
                            cfg.policy, cfg.forceVirtualPath);
    SystemBase &sys = *eng.system;

    // Interval selection is a single-core methodology; a multi-core
    // mix with a file-backed trace replays the full trace per core.
    std::vector<std::unique_ptr<AccessGenerator>> workloads;
    workloads.reserve(cores);
    for (std::uint32_t c = 0; c < cores; ++c)
        workloads.push_back(
            makeTraceSource(cfg.trace, mix.benchmarks[c], c));
    std::vector<AccessGenerator *> gens;
    for (auto &w : workloads)
        gens.push_back(w.get());
    applyCellTimeout(sys);
    const std::string cell = mix.name + "/" + policyName(kind);
    auto harness = attachObs(eng, cfg.obs, cell);
    std::unique_ptr<obs::Profiler> spanProf;
    if (!harness)
        spanProf = attachSpanProfiler(sys, cell);

    std::unique_ptr<util::PerfCounters> hostCounters;
    if (util::hostCountersEnabled()) {
        hostCounters = std::make_unique<util::PerfCounters>();
        hostCounters->start();
    }
    const auto threads = sys.run(gens, cfg.warmupInstructions,
                                 cfg.measureInstructions);

    MulticoreRunResult res;
    res.mix = mix.name;
    res.policy = policyName(kind);
    if (hostCounters) {
        hostCounters->stop();
        res.hostPerf = hostCounters->sample();
    }
    res.benchmarks = mix.benchmarks;
    for (const auto &t : threads) {
        res.ipc.push_back(t.ipc);
        res.totalInstructions += t.instructions;
    }
    if (harness) {
        res.artifacts = collectObs(*harness, eng, cfg.obs, mix.name,
                                   res.policy, cfg,
                                   secondsSince(wall_start),
                                   res.totalInstructions,
                                   res.hostPerf);
    }
    res.llcMisses = sys.hierarchy().llc().stats().demandMisses;
    res.mpki = mpki(res.llcMisses, res.totalInstructions);
    if (eng.dbrb) {
        if (eng.faults)
            res.faultsInjected = eng.faults->injected();
        eng.predictor->auditInvariants();
    }
    res.wallSeconds = secondsSince(wall_start);
    return res;
}

double
isolatedIpc(const std::string &benchmark, RunConfig cfg)
{
    // Shared across sweep workers: the memo is the only mutable
    // process-wide state in the runner, so it is mutex-guarded.  The
    // key covers the cache geometry and instruction budget so
    // different configurations (quad-core 8 MB, future geometries)
    // never collide.
    static std::mutex memo_mutex;
    static std::map<std::string, double> memo;
    const std::string key = benchmark + "/" +
        std::to_string(cfg.hierarchy.llc.numSets) + "x" +
        std::to_string(cfg.hierarchy.llc.assoc) + "/" +
        std::to_string(cfg.warmupInstructions) + "+" +
        std::to_string(cfg.measureInstructions);
    {
        std::lock_guard<std::mutex> lock(memo_mutex);
        if (auto it = memo.find(key); it != memo.end())
            return it->second;
    }

    // Simulate outside the lock; two workers racing on the same key
    // compute the same deterministic value, and emplace keeps the
    // first.
    RunConfig solo = cfg;
    solo.hierarchy.numCores = 1;
    solo.recordLlcTrace = false;
    solo.trackEfficiency = false;
    const RunResult run = runSingleCore(benchmark, PolicyKind::Lru,
                                        solo);
    std::lock_guard<std::mutex> lock(memo_mutex);
    return memo.emplace(key, run.ipc).first->second;
}

double
weightedIpc(const MulticoreRunResult &run, const RunConfig &cfg)
{
    double sum = 0;
    for (std::size_t i = 0; i < run.benchmarks.size(); ++i)
        sum += ratio(run.ipc[i], isolatedIpc(run.benchmarks[i], cfg));
    return sum;
}

} // namespace sdbp
