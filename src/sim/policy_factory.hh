/**
 * @file
 * Construction of the LLC policies evaluated in the paper
 * (Table V's legend).
 */

#ifndef SDBP_SIM_POLICY_FACTORY_HH
#define SDBP_SIM_POLICY_FACTORY_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/dead_block_policy.hh"
#include "cache/policy.hh"
#include "core/sdbp.hh"

namespace sdbp
{

/** The techniques of Table V. */
enum class PolicyKind
{
    Lru,           ///< baseline LRU
    Random,        ///< baseline random
    Dip,           ///< dynamic insertion policy
    Tadip,         ///< thread-aware DIP (multi-core)
    Rrip,          ///< DRRIP (thread-aware when numThreads > 1)
    Sampler,       ///< DBRB w/ sampling predictor, default LRU
    Tdbp,          ///< DBRB w/ reftrace predictor, default LRU
    Cdbp,          ///< DBRB w/ counting predictor, default LRU
    RandomSampler, ///< DBRB w/ sampling predictor, default random
    RandomCdbp,    ///< DBRB w/ counting predictor, default random
    /**
     * Extension (paper Sec. VIII future work): counting predictor
     * trained through a decoupled sampler, default LRU.
     */
    SamplingCounting,
    TreePlru, ///< tree pseudo-LRU (realistic low-cost LRU substitute)
    Nru,      ///< not-recently-used
    Lip,      ///< LRU-insertion policy (DIP's static component)
    Aip,      ///< DBRB w/ access-interval predictor (Sec. II-A4)
    TimeDbp,  ///< DBRB w/ time-based predictor (Sec. II-A2)
    BurstDbp, ///< DBRB w/ cache-bursts reftrace (Sec. II-A3 / VIII)
};

struct PolicyOptions
{
    /** Number of hardware threads sharing the cache. */
    std::uint32_t numThreads = 1;
    /** Override the sampling predictor configuration (ablations). */
    std::optional<SdbpConfig> sdbp;
    /** DBRB wrapper knobs (bypass on/off etc.). */
    DeadBlockPolicyConfig dbrb;
    std::uint64_t seed = 0xbeef;
};

/**
 * An LLC policy plus typed views into its interesting parts.  The
 * views are non-owning pointers into `policy` (nullptr when the
 * policy has no DBRB wrapper / fault injector), so the runner and
 * tools reach DBRB stats, the predictor and fault accounting without
 * a dynamic_cast.
 */
struct PolicyBundle
{
    std::unique_ptr<ReplacementPolicy> policy;
    /** The DBRB wrapper, when `kind` is a DBRB technique. */
    DeadBlockPolicyBase *dbrb = nullptr;
    /** The wrapped dead block predictor, when DBRB. */
    DeadBlockPredictor *predictor = nullptr;
    /** The fault injector, when fault injection is configured. */
    const fault::FaultInjector *faultInjector = nullptr;
};

/** Display name used in result tables ("Sampler", "TDBP", ...). */
std::string policyName(PolicyKind kind);

/**
 * Parse a policy name as accepted on tool command lines: the display
 * name, case-insensitive, with spaces/dashes/underscores
 * interchangeable ("sampler", "random-cdbp", "Tree-PLRU").
 */
std::optional<PolicyKind> parsePolicyKind(const std::string &name);

/** Every PolicyKind, in declaration order (CLI help text). */
const std::vector<PolicyKind> &allPolicyKinds();

/** Build an LLC policy instance together with its typed views. */
PolicyBundle
makeBundle(PolicyKind kind, std::uint32_t num_sets,
           std::uint32_t assoc, const PolicyOptions &opts = {});

/** Build an LLC policy instance (makeBundle minus the views). */
std::unique_ptr<ReplacementPolicy>
makePolicy(PolicyKind kind, std::uint32_t num_sets, std::uint32_t assoc,
           const PolicyOptions &opts = {});

/**
 * The sampling predictor configuration a policy built by this
 * factory would use: opts.sdbp if set, else the paper default —
 * with llcSets pinned to @p num_sets either way.  Exported so the
 * sealed engine compositions (sim/engine) construct predictors
 * identical to the factory's.
 */
SdbpConfig resolveSdbpConfig(std::uint32_t num_sets,
                             const PolicyOptions &opts);

/** Policies compared in Figs. 4/5 (LRU-default single core). */
const std::vector<PolicyKind> &lruDefaultPolicies();
/** Policies compared in Figs. 7/8 (random-default single core). */
const std::vector<PolicyKind> &randomDefaultPolicies();
/** Policies compared in Fig. 10(a). */
const std::vector<PolicyKind> &multicoreLruPolicies();
/** Policies compared in Fig. 10(b). */
const std::vector<PolicyKind> &multicoreRandomPolicies();

} // namespace sdbp

#endif // SDBP_SIM_POLICY_FACTORY_HH
