/**
 * @file
 * Experiment runner: one call per (benchmark, policy) simulation,
 * returning all the metrics the paper's tables and figures report.
 */

#ifndef SDBP_SIM_RUNNER_HH
#define SDBP_SIM_RUNNER_HH

#include <memory>
#include <string>
#include <vector>

#include "cpu/system.hh"
#include "obs/artifacts.hh"
#include "sim/policy_factory.hh"
#include "trace/spec_profiles.hh"
#include "trace/trace_source.hh"
#include "util/perf_counters.hh"

namespace sdbp
{

/**
 * Observability wiring of one run.  Off by default (zero overhead);
 * when `collect` is set, a StatRegistry is attached to the system,
 * per-interval snapshots are taken, and a RunArtifacts is returned
 * with the result (and optionally exported to disk).
 */
struct ObsOptions
{
    /** Build RunArtifacts for this run. */
    bool collect = false;
    /** Heartbeat period in instructions (global tick). */
    std::uint64_t intervalInstructions = 1'000'000;
    /** When non-empty, write the artifact JSON here. */
    std::string statsJsonPath;
    /** When non-empty, write the derived timeline CSV here. */
    std::string timelineCsvPath;
    /** When non-empty, stream trace events here as JSONL. */
    std::string traceJsonlPath;
    /** Event-trace ring capacity. */
    std::size_t traceCapacity = 4096;
};

struct RunConfig
{
    InstCount warmupInstructions = 2'000'000;
    InstCount measureInstructions = 8'000'000;
    HierarchyConfig hierarchy;
    CoreConfig core;
    /** Record the LLC reference stream for the optimal replay. */
    bool recordLlcTrace = false;
    /** Track per-frame LLC efficiency (Fig. 1). */
    bool trackEfficiency = false;
    /**
     * Route the run through the type-erased (virtual-dispatch)
     * policy stack even when a sealed fast-path composition exists
     * (sim/engine).  Outcomes are bit-identical either way; this
     * exists for equivalence testing and as an escape hatch
     * (SDBP_NO_FASTPATH=1).
     */
    bool forceVirtualPath = false;
    /**
     * Where the reference stream comes from: the benchmark's
     * synthetic workload by default, or a trace file (native or
     * ChampSim), optionally simulated via interval selection
     * (DESIGN.md §17).  Round-trips through sweep manifests so
     * worker-mode sweeps transport trace-driven cells.
     */
    TraceSpec trace;
    PolicyOptions policy;
    ObsOptions obs;

    /**
     * Defaults for a single-core 2 MB-LLC experiment; instruction
     * counts honor the SDBP_INSTRUCTIONS / SDBP_WARMUP environment
     * variables so every bench can be scaled up toward the paper's
     * 1 B-instruction runs.  Setting SDBP_STATS_JSON=<path> turns on
     * artifact collection and writes the run JSON there;
     * SDBP_INTERVAL overrides the snapshot period.
     */
    static RunConfig singleCore();

    /** Quad-core, 8 MB shared LLC (Sec. VI-A2). */
    static RunConfig quadCore();
};

struct RunResult
{
    std::string benchmark;
    std::string policy;
    InstCount instructions = 0;
    Cycle cycles = 0;
    double ipc = 0;
    double mpki = 0;
    std::uint64_t llcAccesses = 0;
    std::uint64_t llcMisses = 0;
    std::uint64_t llcBypasses = 0;
    /** LLC live-time ratio over the measurement phase. */
    double llcEfficiency = 0;
    /** Predictor accounting; meaningful for DBRB policies. */
    bool hasDbrb = false;
    DbrbStats dbrb;
    /** Soft errors injected into predictor state (DESIGN.md §11). */
    std::uint64_t faultsInjected = 0;
    /** LLC reference stream (when recordLlcTrace); includes the
     *  warm-up portion. */
    std::vector<LlcRef> llcTrace;
    /** Index in llcTrace where the measurement phase starts. */
    std::size_t llcTraceMeasureStart = 0;
    /** Per-frame efficiency, sets*assoc (when trackEfficiency). */
    std::vector<double> frameEfficiency;
    /** Run artifacts (when cfg.obs.collect); shared so RunResult
     *  stays cheap to copy. */
    std::shared_ptr<const obs::RunArtifacts> artifacts;
    /** Wall-clock seconds this run took (setup + warmup + measure). */
    double wallSeconds = 0;
    /** Host hardware counters over warmup+measure (valid gated;
     *  no-op hosts report valid=false).  DESIGN.md §14. */
    util::PerfCounters::Sample hostPerf;

    /**
     * Interval-selection summary (when cfg.trace.selectionEnabled()).
     * In that mode `instructions`, `ipc`, `mpki` and the LLC counters
     * above are weighted full-trace *estimates*;
     * `simulatedInstructions` is what actually ran (warm-up intervals
     * included), so traceInstructions / simulatedInstructions is the
     * speedup factor.
     */
    bool intervalSelected = false;
    std::uint64_t traceInstructions = 0;
    std::uint64_t intervalsTotal = 0;
    std::uint64_t intervalsSimulated = 0;
    std::uint64_t simulatedInstructions = 0;

    /** Host nanoseconds per simulated instruction (0 until run). */
    double nsPerInstr() const
    {
        return instructions > 0
            ? wallSeconds * 1e9 / static_cast<double>(instructions)
            : 0;
    }
};

/** Simulate one benchmark under one LLC policy on a single core. */
RunResult runSingleCore(const std::string &benchmark, PolicyKind kind,
                        RunConfig cfg = RunConfig::singleCore());

struct MulticoreRunResult
{
    std::string mix;
    std::string policy;
    std::vector<std::string> benchmarks;
    std::vector<double> ipc; ///< per thread
    std::uint64_t llcMisses = 0;
    InstCount totalInstructions = 0;
    double mpki = 0; ///< misses per kilo-instruction, all threads
    /** Soft errors injected into predictor state (DESIGN.md §11). */
    std::uint64_t faultsInjected = 0;
    /** Run artifacts (when cfg.obs.collect). */
    std::shared_ptr<const obs::RunArtifacts> artifacts;
    /** Wall-clock seconds this run took (setup + warmup + measure). */
    double wallSeconds = 0;
    /** Host hardware counters over warmup+measure (valid gated). */
    util::PerfCounters::Sample hostPerf;

    /** Host nanoseconds per simulated instruction (all threads). */
    double nsPerInstr() const
    {
        return totalInstructions > 0
            ? wallSeconds * 1e9 /
                static_cast<double>(totalInstructions)
            : 0;
    }
};

/** Simulate one quad-core mix under one shared-LLC policy. */
MulticoreRunResult runMulticore(const MixProfile &mix, PolicyKind kind,
                                RunConfig cfg = RunConfig::quadCore());

/**
 * IPC of @p benchmark running alone with an LRU LLC of the
 * multi-core geometry — the SingleIPC denominator of the weighted
 * speedup metric (Sec. VI-A2).  Results are memoized per
 * (benchmark, cache geometry, instruction budget) within the
 * process; the memo is mutex-guarded, so concurrent sweep workers
 * may call this freely.
 */
double isolatedIpc(const std::string &benchmark,
                   RunConfig cfg = RunConfig::quadCore());

/** Weighted speedup of a multi-core run, normalized to nothing:
 *  sum_i IPC_i / SingleIPC_i. */
double weightedIpc(const MulticoreRunResult &run, const RunConfig &cfg);

} // namespace sdbp

#endif // SDBP_SIM_RUNNER_HH
