/**
 * @file
 * Multi-process sweep fabric (DESIGN.md §16): the worker entry point
 * behind the hidden `--sdbp-worker <manifest>` argv flag, and the
 * coordinator that supervises worker subprocesses from inside
 * runGrid / runMixGrid.
 *
 * With SDBP_WORKERS=N (N > 0) a sweep's coordinator re-execs its own
 * binary N times; each worker claims cells through lease records in
 * the schema-v2 SweepManifest, runs them, and reports metrics back
 * through the manifest.  The coordinator merges completed cells into
 * the same row-major grid the serial loop produces — cells are
 * deterministic, so results are bit-identical to an in-process sweep
 * no matter which worker ran which cell, or how often.
 *
 * Crash taxonomy: a worker that dies by signal or nonzero exit
 * charges only its leased cell (CellError with crashed/signal set);
 * the cell is retried on a fresh worker while lease generations
 * remain within 1 + SDBP_RETRIES.  Stale leases (no heartbeat for
 * SDBP_LEASE_TTL) are reclaimed by sibling workers, and
 * SDBP_CELL_TIMEOUT gains a hard tier: after the cooperative
 * deadline plus a grace period the coordinator SIGKILLs the owning
 * worker.
 */

#ifndef SDBP_SIM_WORKER_HH
#define SDBP_SIM_WORKER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "sim/runner.hh"
#include "sim/sweep_manifest.hh"

namespace sdbp::sweep
{

/**
 * Handle the hidden `--sdbp-worker <manifest>` invocation: must be
 * the first statement of every worker-capable main().  In a worker
 * invocation this runs the claim/run/report loop and never returns
 * (the process exits 0 after draining its claimable cells).  In a
 * normal invocation it records that this binary can host workers —
 * runGrid refuses to spawn subprocesses from binaries that never
 * called it, because a re-exec'd binary without this hook would
 * re-run its whole main instead of acting as a worker.
 */
void maybeWorkerMain(int argc, char **argv);

/** True once maybeWorkerMain() ran in this process. */
bool workerCapable();

/** True inside a worker subprocess (test/telemetry hook). */
bool inWorkerProcess();

/** SDBP_WORKERS (0..1024), default 0 = in-process sweeps. */
unsigned defaultWorkers();

/** SDBP_LEASE_TTL in seconds (1..86400, default 60) as ms: a lease
 *  whose heartbeat is older than this is stale and reclaimable. */
std::uint64_t leaseTtlMs();

/**
 * Deterministic chaos hook SDBP_TEST_CRASH_CELL=<idx>:<mode>, the
 * multi-process mirror of SDBP_TEST_FAIL_CELL: the worker claiming
 * cell <idx> dies with <mode> ∈ abort | segv | hang | exit1 right
 * after persisting its claim.  Parsed eagerly; malformed specs are
 * fatal().  Worker-mode only — in-process sweeps ignore it.
 */
struct ChaosSpec
{
    bool enabled = false;
    std::size_t index = 0;
    std::string mode;
};
ChaosSpec chaosSpec();

/** Scalar round-trip of a RunConfig so workers are self-contained
 *  (the blob travels in the manifest's top-level "config" field). */
obs::JsonValue runConfigToJson(const RunConfig &cfg);
RunConfig runConfigFromJson(const obs::JsonValue &v);

/** Outcome of one coordinator supervision run. */
struct FabricResult
{
    /** Workers could not be spawned at all; caller should fall back
     *  to the in-process sweep path. */
    bool fallback = false;
    /** Failed cells, in row-major cell order. */
    std::vector<CellError> errors;
    /** Cells skipped because shutdown was requested. */
    std::size_t skipped = 0;
};

/**
 * Coordinator: spawn up to @p workers subprocesses of this binary
 * against @p manifest (which must have shared access enabled and a
 * flushed on-disk state), supervise them with waitpid, and return
 * once every cell is terminal.  @p on_cell_done fires once per cell
 * reaching a terminal state (argument: failed), for progress
 * accounting.  @p runs / @p policies label errors.
 */
FabricResult superviseWorkers(
    SweepManifest &manifest, const std::vector<std::string> &runs,
    const std::vector<std::string> &policies, unsigned workers,
    unsigned retries, const std::function<void(bool)> &on_cell_done);

} // namespace sdbp::sweep

#endif // SDBP_SIM_WORKER_HH
