#include "sim/worker.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <spawn.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#if defined(__APPLE__)
#include <mach-o/dyld.h>
#endif
extern char **environ;
#endif

#include "obs/span_tracer.hh"
#include "sim/sweep.hh"
#include "util/env.hh"
#include "util/file.hh"
#include "util/logging.hh"

namespace sdbp::sweep
{

namespace
{

std::atomic<bool> g_worker_capable{false};
std::atomic<bool> g_in_worker{false};

std::uint64_t
u64Or(const obs::JsonValue &v, const std::string &key,
      std::uint64_t fallback)
{
    const obs::JsonValue *f = v.find(key);
    return f ? f->asUInt() : fallback;
}

bool
boolOr(const obs::JsonValue &v, const std::string &key, bool fallback)
{
    const obs::JsonValue *f = v.find(key);
    return f ? f->asBool() : fallback;
}

std::string
strOr(const obs::JsonValue &v, const std::string &key,
      const std::string &fallback = {})
{
    const obs::JsonValue *f = v.find(key);
    return f ? f->asString() : fallback;
}

obs::JsonValue
cacheToJson(const CacheConfig &c)
{
    obs::JsonValue v = obs::JsonValue::object();
    v.set("name", c.name);
    v.set("num_sets", std::uint64_t{c.numSets});
    v.set("assoc", std::uint64_t{c.assoc});
    v.set("latency", std::uint64_t{c.latency});
    v.set("track_efficiency", c.trackEfficiency);
    return v;
}

CacheConfig
cacheFromJson(const obs::JsonValue &v, const CacheConfig &def)
{
    CacheConfig c = def;
    c.name = strOr(v, "name", def.name);
    c.numSets =
        static_cast<std::uint32_t>(u64Or(v, "num_sets", def.numSets));
    c.assoc = static_cast<std::uint32_t>(u64Or(v, "assoc", def.assoc));
    c.latency = u64Or(v, "latency", def.latency);
    c.trackEfficiency =
        boolOr(v, "track_efficiency", def.trackEfficiency);
    return c;
}

} // anonymous namespace

obs::JsonValue
runConfigToJson(const RunConfig &cfg)
{
    obs::JsonValue v = obs::JsonValue::object();
    v.set("warmup_instructions", std::uint64_t{cfg.warmupInstructions});
    v.set("measure_instructions",
          std::uint64_t{cfg.measureInstructions});
    v.set("record_llc_trace", cfg.recordLlcTrace);
    v.set("track_efficiency", cfg.trackEfficiency);
    v.set("force_virtual_path", cfg.forceVirtualPath);

    obs::JsonValue h = obs::JsonValue::object();
    h.set("l1", cacheToJson(cfg.hierarchy.l1));
    h.set("l2", cacheToJson(cfg.hierarchy.l2));
    h.set("llc", cacheToJson(cfg.hierarchy.llc));
    h.set("mem_latency", std::uint64_t{cfg.hierarchy.memLatency});
    h.set("mem_service_interval",
          std::uint64_t{cfg.hierarchy.memServiceInterval});
    h.set("num_cores", std::uint64_t{cfg.hierarchy.numCores});
    obs::JsonValue pf = obs::JsonValue::object();
    pf.set("degree", std::uint64_t{cfg.hierarchy.prefetch.degree});
    pf.set("dead_block_directed",
           cfg.hierarchy.prefetch.deadBlockDirected);
    h.set("prefetch", std::move(pf));
    v.set("hierarchy", std::move(h));

    obs::JsonValue core = obs::JsonValue::object();
    core.set("width", std::uint64_t{cfg.core.width});
    core.set("rob_size", std::uint64_t{cfg.core.robSize});
    core.set("pipeline_depth", std::uint64_t{cfg.core.pipelineDepth});
    v.set("core", std::move(core));

    obs::JsonValue pol = obs::JsonValue::object();
    pol.set("num_threads", std::uint64_t{cfg.policy.numThreads});
    pol.set("seed", cfg.policy.seed);
    obs::JsonValue dbrb = obs::JsonValue::object();
    dbrb.set("enable_bypass", cfg.policy.dbrb.enableBypass);
    dbrb.set("enable_dead_replacement",
             cfg.policy.dbrb.enableDeadReplacement);
    dbrb.set("bypass_reuse_window", cfg.policy.dbrb.bypassReuseWindow);
    obs::JsonValue flt = obs::JsonValue::object();
    flt.set("faults_per_million",
            cfg.policy.dbrb.fault.faultsPerMillion);
    flt.set("seed", cfg.policy.dbrb.fault.seed);
    dbrb.set("fault", std::move(flt));
    pol.set("dbrb", std::move(dbrb));
    if (cfg.policy.sdbp) {
        const SdbpConfig &s = *cfg.policy.sdbp;
        obs::JsonValue sd = obs::JsonValue::object();
        sd.set("signature_bits", std::uint64_t{s.signatureBits});
        sd.set("llc_sets", std::uint64_t{s.llcSets});
        sd.set("use_sampler", s.useSampler);
        obs::JsonValue sam = obs::JsonValue::object();
        sam.set("num_sets", std::uint64_t{s.sampler.numSets});
        sam.set("assoc", std::uint64_t{s.sampler.assoc});
        sam.set("tag_bits", std::uint64_t{s.sampler.tagBits});
        sam.set("pc_bits", std::uint64_t{s.sampler.pcBits});
        sam.set("learn_from_own_evictions",
                s.sampler.learnFromOwnEvictions);
        sd.set("sampler", std::move(sam));
        obs::JsonValue tab = obs::JsonValue::object();
        tab.set("num_tables", std::uint64_t{s.table.numTables});
        tab.set("index_bits", std::uint64_t{s.table.indexBits});
        tab.set("counter_bits", std::uint64_t{s.table.counterBits});
        tab.set("threshold", std::uint64_t{s.table.threshold});
        sd.set("table", std::move(tab));
        pol.set("sdbp", std::move(sd));
    }
    v.set("policy", std::move(pol));

    // Emitted only when non-default so manifests of synthetic-only
    // sweeps keep their established shape byte for byte.
    if (cfg.trace != TraceSpec{}) {
        obs::JsonValue tr = obs::JsonValue::object();
        tr.set("kind", traceKindName(cfg.trace.kind));
        tr.set("path", cfg.trace.path);
        tr.set("interval_instructions",
               cfg.trace.intervalInstructions);
        tr.set("select_clusters",
               std::uint64_t{cfg.trace.selectClusters});
        v.set("trace", std::move(tr));
    }

    obs::JsonValue ob = obs::JsonValue::object();
    ob.set("collect", cfg.obs.collect);
    ob.set("interval_instructions", cfg.obs.intervalInstructions);
    ob.set("stats_json_path", cfg.obs.statsJsonPath);
    ob.set("timeline_csv_path", cfg.obs.timelineCsvPath);
    ob.set("trace_jsonl_path", cfg.obs.traceJsonlPath);
    ob.set("trace_capacity", std::uint64_t{cfg.obs.traceCapacity});
    v.set("obs", std::move(ob));
    return v;
}

RunConfig
runConfigFromJson(const obs::JsonValue &v)
{
    RunConfig cfg; // field defaults; every absent key keeps them
    cfg.warmupInstructions =
        u64Or(v, "warmup_instructions", cfg.warmupInstructions);
    cfg.measureInstructions =
        u64Or(v, "measure_instructions", cfg.measureInstructions);
    cfg.recordLlcTrace =
        boolOr(v, "record_llc_trace", cfg.recordLlcTrace);
    cfg.trackEfficiency =
        boolOr(v, "track_efficiency", cfg.trackEfficiency);
    cfg.forceVirtualPath =
        boolOr(v, "force_virtual_path", cfg.forceVirtualPath);

    if (const obs::JsonValue *h = v.find("hierarchy")) {
        if (const obs::JsonValue *c = h->find("l1"))
            cfg.hierarchy.l1 = cacheFromJson(*c, cfg.hierarchy.l1);
        if (const obs::JsonValue *c = h->find("l2"))
            cfg.hierarchy.l2 = cacheFromJson(*c, cfg.hierarchy.l2);
        if (const obs::JsonValue *c = h->find("llc"))
            cfg.hierarchy.llc = cacheFromJson(*c, cfg.hierarchy.llc);
        cfg.hierarchy.memLatency =
            u64Or(*h, "mem_latency", cfg.hierarchy.memLatency);
        cfg.hierarchy.memServiceInterval = u64Or(
            *h, "mem_service_interval",
            cfg.hierarchy.memServiceInterval);
        cfg.hierarchy.numCores = static_cast<std::uint32_t>(
            u64Or(*h, "num_cores", cfg.hierarchy.numCores));
        if (const obs::JsonValue *pf = h->find("prefetch")) {
            cfg.hierarchy.prefetch.degree =
                static_cast<unsigned>(u64Or(
                    *pf, "degree", cfg.hierarchy.prefetch.degree));
            cfg.hierarchy.prefetch.deadBlockDirected =
                boolOr(*pf, "dead_block_directed",
                       cfg.hierarchy.prefetch.deadBlockDirected);
        }
    }
    if (const obs::JsonValue *c = v.find("core")) {
        cfg.core.width = static_cast<unsigned>(
            u64Or(*c, "width", cfg.core.width));
        cfg.core.robSize = static_cast<unsigned>(
            u64Or(*c, "rob_size", cfg.core.robSize));
        cfg.core.pipelineDepth = static_cast<unsigned>(
            u64Or(*c, "pipeline_depth", cfg.core.pipelineDepth));
    }
    if (const obs::JsonValue *p = v.find("policy")) {
        cfg.policy.numThreads = static_cast<std::uint32_t>(
            u64Or(*p, "num_threads", cfg.policy.numThreads));
        cfg.policy.seed = u64Or(*p, "seed", cfg.policy.seed);
        if (const obs::JsonValue *d = p->find("dbrb")) {
            cfg.policy.dbrb.enableBypass = boolOr(
                *d, "enable_bypass", cfg.policy.dbrb.enableBypass);
            cfg.policy.dbrb.enableDeadReplacement =
                boolOr(*d, "enable_dead_replacement",
                       cfg.policy.dbrb.enableDeadReplacement);
            cfg.policy.dbrb.bypassReuseWindow =
                u64Or(*d, "bypass_reuse_window",
                      cfg.policy.dbrb.bypassReuseWindow);
            if (const obs::JsonValue *f = d->find("fault")) {
                cfg.policy.dbrb.fault.faultsPerMillion =
                    u64Or(*f, "faults_per_million",
                          cfg.policy.dbrb.fault.faultsPerMillion);
                cfg.policy.dbrb.fault.seed =
                    u64Or(*f, "seed", cfg.policy.dbrb.fault.seed);
            }
        }
        if (const obs::JsonValue *s = p->find("sdbp")) {
            SdbpConfig sd;
            sd.signatureBits = static_cast<unsigned>(
                u64Or(*s, "signature_bits", sd.signatureBits));
            sd.llcSets = static_cast<std::uint32_t>(
                u64Or(*s, "llc_sets", sd.llcSets));
            sd.useSampler = boolOr(*s, "use_sampler", sd.useSampler);
            if (const obs::JsonValue *sam = s->find("sampler")) {
                sd.sampler.numSets = static_cast<std::uint32_t>(
                    u64Or(*sam, "num_sets", sd.sampler.numSets));
                sd.sampler.assoc = static_cast<std::uint32_t>(
                    u64Or(*sam, "assoc", sd.sampler.assoc));
                sd.sampler.tagBits = static_cast<unsigned>(
                    u64Or(*sam, "tag_bits", sd.sampler.tagBits));
                sd.sampler.pcBits = static_cast<unsigned>(
                    u64Or(*sam, "pc_bits", sd.sampler.pcBits));
                sd.sampler.learnFromOwnEvictions =
                    boolOr(*sam, "learn_from_own_evictions",
                           sd.sampler.learnFromOwnEvictions);
            }
            if (const obs::JsonValue *tab = s->find("table")) {
                sd.table.numTables = static_cast<unsigned>(
                    u64Or(*tab, "num_tables", sd.table.numTables));
                sd.table.indexBits = static_cast<unsigned>(
                    u64Or(*tab, "index_bits", sd.table.indexBits));
                sd.table.counterBits = static_cast<unsigned>(
                    u64Or(*tab, "counter_bits", sd.table.counterBits));
                sd.table.threshold = static_cast<unsigned>(
                    u64Or(*tab, "threshold", sd.table.threshold));
            }
            cfg.policy.sdbp = sd;
        }
    }
    if (const obs::JsonValue *t = v.find("trace")) {
        if (const auto kind = parseTraceKind(strOr(*t, "kind")))
            cfg.trace.kind = *kind;
        cfg.trace.path = strOr(*t, "path");
        cfg.trace.intervalInstructions =
            u64Or(*t, "interval_instructions",
                  cfg.trace.intervalInstructions);
        cfg.trace.selectClusters = static_cast<unsigned>(
            u64Or(*t, "select_clusters", cfg.trace.selectClusters));
    }
    if (const obs::JsonValue *o = v.find("obs")) {
        cfg.obs.collect = boolOr(*o, "collect", cfg.obs.collect);
        cfg.obs.intervalInstructions =
            u64Or(*o, "interval_instructions",
                  cfg.obs.intervalInstructions);
        cfg.obs.statsJsonPath = strOr(*o, "stats_json_path");
        cfg.obs.timelineCsvPath = strOr(*o, "timeline_csv_path");
        cfg.obs.traceJsonlPath = strOr(*o, "trace_jsonl_path");
        cfg.obs.traceCapacity = static_cast<std::size_t>(
            u64Or(*o, "trace_capacity", cfg.obs.traceCapacity));
    }
    return cfg;
}

bool
workerCapable()
{
    return g_worker_capable.load(std::memory_order_relaxed);
}

bool
inWorkerProcess()
{
    return g_in_worker.load(std::memory_order_relaxed);
}

unsigned
defaultWorkers()
{
    return static_cast<unsigned>(env::u64("SDBP_WORKERS", 0, 0, 1024));
}

std::uint64_t
leaseTtlMs()
{
    return env::u64("SDBP_LEASE_TTL", 60, 1, 86400) * 1000u;
}

ChaosSpec
chaosSpec()
{
    ChaosSpec spec;
    const std::string raw = env::str("SDBP_TEST_CRASH_CELL");
    if (raw.empty())
        return spec;
    const auto colon = raw.find(':');
    bool ok = colon != std::string::npos && colon > 0;
    std::size_t index = 0;
    if (ok) {
        try {
            std::size_t used = 0;
            index = std::stoull(raw.substr(0, colon), &used);
            ok = used == colon;
        } catch (...) {
            ok = false;
        }
    }
    const std::string mode = ok ? raw.substr(colon + 1) : "";
    if (!ok ||
        (mode != "abort" && mode != "segv" && mode != "hang" &&
         mode != "exit1"))
        fatal("malformed SDBP_TEST_CRASH_CELL '" + raw +
              "' (expected <cell-index>:abort|segv|hang|exit1)");
    spec.enabled = true;
    spec.index = index;
    spec.mode = mode;
    return spec;
}

#if defined(__unix__) || defined(__APPLE__)

namespace
{

/** Absolute path of the running binary ("" when undiscoverable). */
std::string
selfExePath()
{
#if defined(__linux__)
    char buf[4096];
    const ssize_t n =
        ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return {};
    buf[n] = '\0';
    return buf;
#elif defined(__APPLE__)
    char buf[4096];
    std::uint32_t size = sizeof(buf);
    if (_NSGetExecutablePath(buf, &size) != 0)
        return {};
    return buf;
#else
    return {};
#endif
}

[[noreturn]] void
chaosCrash(const std::string &mode)
{
    warn("SDBP_TEST_CRASH_CELL firing: " + mode);
    if (mode == "abort")
        std::abort();
    if (mode == "segv")
        ::raise(SIGSEGV);
    if (mode == "exit1")
        std::_Exit(1);
    // "hang": a wedged cell that never reaches the cooperative
    // deadline check — only the coordinator's hard SIGKILL tier
    // (or a stale-lease reclaim... which the heartbeat thread
    // prevents, deliberately) can end it.
    for (;;)
        std::this_thread::sleep_for(std::chrono::seconds(1));
    std::abort(); // unreachable; placates [[noreturn]]
}

/**
 * Background lease refresher: while the worker's main thread runs a
 * cell, keep its lease heartbeat fresh so sibling workers don't
 * reclaim the cell as stale mid-run.
 */
class HeartbeatThread
{
  public:
    HeartbeatThread(SweepManifest &manifest, std::int64_t pid,
                    std::uint64_t ttl_ms)
        : manifest_(manifest), pid_(pid),
          periodMs_(std::max<std::uint64_t>(500, ttl_ms / 4)),
          thread_([this] { run(); })
    {
    }

    ~HeartbeatThread()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        thread_.join();
    }

    void
    watch(std::size_t index, std::uint64_t generation)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        active_ = true;
        index_ = index;
        generation_ = generation;
    }

    void
    unwatch()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        active_ = false;
    }

  private:
    void
    run()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        while (!stop_) {
            cv_.wait_for(lock,
                         std::chrono::milliseconds(periodMs_),
                         [this] { return stop_; });
            if (stop_)
                return;
            if (!active_)
                continue;
            const std::size_t index = index_;
            const std::uint64_t generation = generation_;
            lock.unlock();
            manifest_.heartbeat(index, pid_, generation,
                                util::monotonicMs());
            lock.lock();
        }
    }

    SweepManifest &manifest_;
    const std::int64_t pid_;
    const std::uint64_t periodMs_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
    bool active_ = false;
    std::size_t index_ = 0;
    std::uint64_t generation_ = 0;
    std::thread thread_;
};

std::vector<std::string>
jsonStringArray(const obs::JsonValue *arr)
{
    std::vector<std::string> out;
    if (arr && arr->isArray())
        for (std::size_t i = 0; i < arr->size(); ++i)
            out.push_back(arr->at(i).asString());
    return out;
}

/**
 * The worker protocol: bootstrap the sweep description from the
 * manifest file, then claim-run-report until no claimable cell
 * remains.  Exits the process; never returns to main().
 */
[[noreturn]] void
workerMain(const std::string &manifest_path)
{
    g_in_worker.store(true, std::memory_order_relaxed);
    installShutdownHandler();

    bool ok = false;
    const std::string text = util::readFile(manifest_path, &ok);
    if (!ok)
        fatal("worker cannot read sweep manifest " + manifest_path);
    std::string perr;
    const auto doc = obs::JsonValue::parse(text, &perr);
    if (!doc)
        fatal("worker manifest " + manifest_path +
              " is not valid JSON (" + perr + ")");
    const std::string kind = strOr(*doc, "kind");
    const obs::JsonValue *fp = doc->find("fingerprint");
    if (!fp || (kind != "grid" && kind != "mix_grid"))
        fatal("worker manifest " + manifest_path +
              " lacks a sweep fingerprint");
    const std::vector<std::string> runs =
        jsonStringArray(fp->find("runs"));
    const std::vector<std::string> policy_names =
        jsonStringArray(fp->find("policies"));
    if (runs.empty() || policy_names.empty())
        fatal("worker manifest " + manifest_path +
              " has an empty grid");
    const obs::JsonValue *config = doc->find("config");
    if (!config)
        fatal("worker manifest " + manifest_path +
              " carries no worker config — was this sweep started "
              "by a multi-process coordinator?");
    const RunConfig cfg = runConfigFromJson(*config);

    std::vector<PolicyKind> kinds;
    kinds.reserve(policy_names.size());
    for (const std::string &name : policy_names) {
        const auto parsed = parsePolicyKind(name);
        if (!parsed)
            fatal("worker manifest " + manifest_path +
                  " names an unknown policy '" + name + "'");
        kinds.push_back(*parsed);
    }

    std::vector<MixProfile> mixes;
    if (kind == "mix_grid") {
        const obs::JsonValue *jm = doc->find("mixes");
        if (!jm || !jm->isArray() || jm->size() != runs.size())
            fatal("worker manifest " + manifest_path +
                  " lacks the mix benchmark lists");
        for (std::size_t i = 0; i < jm->size(); ++i) {
            MixProfile mix;
            mix.name = strOr(jm->at(i), "name", runs[i]);
            mix.benchmarks =
                jsonStringArray(jm->at(i).find("benchmarks"));
            mixes.push_back(std::move(mix));
        }
    }

    SweepManifest manifest(
        manifest_path, kind, runs, policy_names,
        u64Or(*fp, "warmup_instructions", 0),
        u64Or(*fp, "measure_instructions", 0));
    manifest.enableSharedAccess();

    const std::size_t cols = policy_names.size();
    const bool multi = runs.size() * cols > 1;
    const unsigned max_attempts = defaultRetries() + 1;
    const std::uint64_t ttl = leaseTtlMs();
    const ChaosSpec chaos = chaosSpec();
    const std::int64_t pid = ::getpid();
    {
        // Scoped so the heartbeat thread joins before std::exit —
        // atexit must not race a thread touching the manifest.
        HeartbeatThread heartbeat(manifest, pid, ttl);

        while (!shutdownRequested()) {
            const auto claim =
                manifest.tryClaim(pid, util::monotonicMs(), ttl);
            if (!claim)
                break; // nothing claimable: drain and exit clean
            const std::size_t i = claim->index;
            const std::string &run = runs[i / cols];
            const std::string &pol = policy_names[i % cols];
            heartbeat.watch(i, claim->generation);
            if (chaos.enabled && chaos.index == i)
                chaosCrash(chaos.mode);

            const std::uint64_t started = util::monotonicMs();
            CellError err;
            err.index = i;
            err.run = run;
            err.policy = pol;
            err.attempts = static_cast<unsigned>(claim->generation);
            err.leaseGeneration = claim->generation;
            bool cell_ok = false;
            obs::JsonValue metrics;
            try {
                // The in-process soft-failure hook works here too.
                if (const std::string f = env::str("SDBP_TEST_FAIL_CELL");
                    !f.empty() && run + "/" + pol == f)
                    throw std::runtime_error(
                        "SDBP_TEST_FAIL_CELL forced failure");
                if (kind == "grid")
                    metrics = runResultToJson(
                        runSingleCore(run, kinds[i % cols],
                                      cellConfig(cfg, multi, run, pol)));
                else
                    metrics = multicoreResultToJson(
                        runMulticore(mixes[i / cols], kinds[i % cols],
                                     cellConfig(cfg, multi, run, pol)));
                cell_ok = true;
            } catch (const SimulationTimeout &e) {
                err.timedOut = true;
                err.message = e.what();
            } catch (const std::exception &e) {
                err.message = e.what();
            } catch (...) {
                err.message = "unknown exception";
            }
            if (cell_ok) {
                manifest.completeClaimed(i, pid, claim->generation,
                                         std::move(metrics), started,
                                         util::monotonicMs());
            } else {
                warn("worker cell " + run + "/" + pol +
                     " failed (attempt " +
                     std::to_string(claim->generation) + "/" +
                     std::to_string(max_attempts) + "): " + err.message);
                manifest.failClaimed(i, err, pid, claim->generation,
                                     max_attempts, started,
                                     util::monotonicMs());
            }
            heartbeat.unwatch();
        }
    }
    std::exit(0);
}

/** "--sdbp-worker <manifest>" scan, shared by maybeWorkerMain. */
std::string
workerManifestArg(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--sdbp-worker") != 0)
            continue;
        if (i + 1 >= argc)
            fatal("--sdbp-worker needs a manifest path");
        return argv[i + 1];
    }
    return {};
}

} // anonymous namespace

void
maybeWorkerMain(int argc, char **argv)
{
    g_worker_capable.store(true, std::memory_order_relaxed);
    const std::string manifest = workerManifestArg(argc, argv);
    if (!manifest.empty())
        workerMain(manifest); // exits; a worker never runs main()
}

namespace
{

/** One live worker subprocess under coordinator supervision. */
struct WorkerProc
{
    pid_t pid = -1;
    unsigned id = 0;
    std::chrono::steady_clock::time_point spawned;
};

bool
isTerminal(CellStatus s)
{
    return s == CellStatus::Completed || s == CellStatus::Failed ||
        s == CellStatus::Skipped;
}

/** Spawn one worker subprocess; -1 on failure.  The child's
 *  environment drops SDBP_WORKERS (workers never spawn workers) and
 *  pins SDBP_RETRIES to the coordinator's budget. */
pid_t
spawnWorker(const std::string &exe, const std::string &manifest_path,
            unsigned id, unsigned retries)
{
    std::vector<std::string> env_strings;
    for (char **e = environ; e && *e; ++e) {
        const std::string s = *e;
        if (s.rfind("SDBP_WORKERS=", 0) == 0 ||
            s.rfind("SDBP_WORKER_ID=", 0) == 0 ||
            s.rfind("SDBP_RETRIES=", 0) == 0)
            continue;
        env_strings.push_back(s);
    }
    env_strings.push_back("SDBP_WORKERS=0");
    env_strings.push_back("SDBP_WORKER_ID=" + std::to_string(id));
    env_strings.push_back("SDBP_RETRIES=" + std::to_string(retries));

    std::vector<char *> envp;
    envp.reserve(env_strings.size() + 1);
    for (std::string &s : env_strings)
        envp.push_back(s.data());
    envp.push_back(nullptr);

    std::string arg_flag = "--sdbp-worker";
    std::string arg_exe = exe;
    std::string arg_manifest = manifest_path;
    char *argv[] = {arg_exe.data(), arg_flag.data(),
                    arg_manifest.data(), nullptr};

    pid_t pid = -1;
    const int rc = ::posix_spawn(&pid, exe.c_str(), nullptr, nullptr,
                                 argv, envp.data());
    if (rc != 0) {
        warn("cannot spawn sweep worker: " +
             std::string(std::strerror(rc)));
        return -1;
    }
    return pid;
}

std::string
describeDeath(int status, bool hard_timeout)
{
    if (hard_timeout)
        return "hard timeout: coordinator killed the worker after "
               "the cell exceeded SDBP_CELL_TIMEOUT plus grace";
    if (WIFSIGNALED(status))
        return std::string("worker died with signal ") +
            std::to_string(WTERMSIG(status)) + " (" +
            strsignal(WTERMSIG(status)) + ")";
    if (WIFEXITED(status))
        return "worker exited with code " +
            std::to_string(WEXITSTATUS(status));
    return "worker died";
}

} // anonymous namespace

FabricResult
superviseWorkers(SweepManifest &manifest,
                 const std::vector<std::string> &runs,
                 const std::vector<std::string> &policies,
                 unsigned workers, unsigned retries,
                 const std::function<void(bool)> &on_cell_done)
{
    FabricResult out;
    const std::string exe = selfExePath();
    if (exe.empty()) {
        warn("cannot locate own executable; running the sweep "
             "in-process instead of with SDBP_WORKERS");
        out.fallback = true;
        return out;
    }

    const std::size_t cols = policies.size();
    const unsigned max_attempts = retries + 1;
    const std::uint64_t timeout_s = env::u64("SDBP_CELL_TIMEOUT", 0);
    // Hard tier: cooperative deadline first, then SIGKILL after a
    // grace period (cells that hang before ever arming the deadline
    // are exactly the ones that need it).
    const std::uint64_t hard_ms = timeout_s > 0
        ? (timeout_s + std::max<std::uint64_t>(2, timeout_s / 4)) *
            1000u
        : 0;

    obs::SpanTracer &tracer = obs::SpanTracer::global();
    std::vector<WorkerProc> alive;
    unsigned next_id = 0;
    const auto spawn = [&]() {
        const pid_t pid =
            spawnWorker(exe, manifest.path(), next_id, retries);
        if (pid < 0)
            return false;
        alive.push_back(
            {pid, next_id,
             std::chrono::steady_clock::now()}); // sdbp-lint: allow(det-wallclock)
        ++next_id;
        return true;
    };

    auto views = manifest.snapshotCells();
    std::size_t nonterminal = 0;
    for (const auto &v : views)
        if (!isTerminal(v.status))
            ++nonterminal;
    const std::size_t want = std::min<std::size_t>(
        workers, std::max<std::size_t>(nonterminal, 1));
    for (std::size_t i = 0; i < want; ++i)
        spawn();
    if (alive.empty()) {
        warn("no sweep worker could be spawned; running in-process");
        out.fallback = true;
        return out;
    }

    // Cells already terminal here (restored by resume) were
    // accounted by the caller; only transitions fire on_cell_done.
    std::vector<CellStatus> last(views.size(), CellStatus::Pending);
    for (std::size_t i = 0; i < views.size(); ++i)
        last[i] = views[i].status;
    std::set<pid_t> killed_for_timeout;
    bool skip_marked = false;

    const auto emitWorkerSpan = [&](const WorkerProc &w) {
        if (!tracer.enabled())
            return;
        obs::SpanRecord rec;
        rec.category = "worker";
        rec.name = "worker-" + std::to_string(w.id);
        rec.workerPid = static_cast<std::uint32_t>(w.pid);
        tracer.emitInterval(
            std::move(rec), w.spawned,
            std::chrono::steady_clock::now()); // sdbp-lint: allow(det-wallclock)
    };

    for (;;) {
        // Reap: a dead worker charges only the cells it had leased.
        for (std::size_t w = 0; w < alive.size();) {
            int status = 0;
            const pid_t p = ::waitpid(alive[w].pid, &status, WNOHANG);
            if (p != alive[w].pid) {
                ++w;
                continue;
            }
            emitWorkerSpan(alive[w]);
            const bool crashed = WIFSIGNALED(status) ||
                (WIFEXITED(status) && WEXITSTATUS(status) != 0);
            if (crashed) {
                const int sig =
                    WIFSIGNALED(status) ? WTERMSIG(status) : 0;
                const bool hard = killed_for_timeout.count(p) > 0;
                const std::string msg = describeDeath(status, hard);
                views = manifest.snapshotCells();
                for (std::size_t i = 0; i < views.size(); ++i)
                    if (views[i].status == CellStatus::Leased &&
                        views[i].leasePid == p)
                        manifest.chargeCrash(i, p, msg, sig, hard,
                                             max_attempts,
                                             util::monotonicMs());
            }
            killed_for_timeout.erase(p);
            alive.erase(alive.begin() +
                        static_cast<std::ptrdiff_t>(w));
        }

        if (shutdownRequested() && !skip_marked) {
            manifest.markSkippedPending();
            skip_marked = true;
        }

        views = manifest.snapshotCells();
        std::size_t pending = 0;
        std::size_t leased = 0;
        bool all_terminal = true;
        const std::uint64_t now = util::monotonicMs();
        for (std::size_t i = 0; i < views.size(); ++i) {
            const auto &v = views[i];
            if (isTerminal(v.status)) {
                if (!isTerminal(last[i]))
                    on_cell_done(v.status == CellStatus::Failed);
            } else {
                all_terminal = false;
                if (v.status == CellStatus::Pending)
                    ++pending;
                else if (v.status == CellStatus::Leased)
                    ++leased;
            }
            last[i] = v.status;
            // Safety net: a lease whose owner is no longer one of
            // our children means the reap-time charge was missed
            // (e.g. waitpid errored); charge it now so the cell is
            // re-farmed instead of wedging the sweep.
            if (v.status == CellStatus::Leased) {
                const pid_t owner = static_cast<pid_t>(v.leasePid);
                const bool owner_alive = std::any_of(
                    alive.begin(), alive.end(),
                    [owner](const WorkerProc &wp) {
                        return wp.pid == owner;
                    });
                if (!owner_alive)
                    manifest.chargeCrash(
                        i, owner,
                        "worker disappeared without reporting", 0,
                        false, max_attempts, now);
            }
            // Hard-timeout tier: SIGKILL the worker whose leased
            // cell outlived the cooperative deadline plus grace.
            if (hard_ms > 0 && v.status == CellStatus::Leased &&
                now > v.claimedMs && now - v.claimedMs > hard_ms) {
                const pid_t owner = static_cast<pid_t>(v.leasePid);
                const bool ours = std::any_of(
                    alive.begin(), alive.end(),
                    [owner](const WorkerProc &wp) {
                        return wp.pid == owner;
                    });
                if (ours && !killed_for_timeout.count(owner)) {
                    warn("cell " + runs[i / cols] + "/" +
                         policies[i % cols] +
                         " exceeded the hard timeout; killing "
                         "worker pid " + std::to_string(owner));
                    killed_for_timeout.insert(owner);
                    ::kill(owner, SIGKILL);
                }
            }
        }

        if (all_terminal && alive.empty())
            break;

        // Keep enough workers alive for the remaining runnable work
        // (one per pending or leased cell, capped at the requested
        // pool size); a worker that exits cleanly while cells are
        // pending — a crash requeued one after it drained — is
        // replaced.  Surplus workers exit 0 on their own.
        if (!shutdownRequested()) {
            const std::size_t target = std::min<std::size_t>(
                workers, pending + leased);
            while (pending > 0 && alive.size() < target) {
                if (!spawn())
                    break;
                --pending;
            }
        }

        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    for (std::size_t i = 0; i < views.size(); ++i) {
        const auto &v = views[i];
        if (v.status == CellStatus::Skipped)
            ++out.skipped;
        if (v.status != CellStatus::Failed)
            continue;
        CellError err;
        err.index = i;
        err.run = runs[i / cols];
        err.policy = policies[i % cols];
        err.message = v.error;
        err.attempts = v.attempts;
        err.timedOut = v.timedOut;
        err.crashed = v.crashed;
        err.signal = v.signal;
        err.leaseGeneration = v.leaseGeneration;
        out.errors.push_back(std::move(err));
    }

    // Mirror worker-executed cells into the span trace, annotated
    // with the executing pid and lease generation.  The lease
    // timestamps share the coordinator's monotonic clock domain, so
    // the intervals line up with the coordinator's own spans.
    if (tracer.enabled()) {
        for (std::size_t i = 0; i < views.size(); ++i) {
            const auto &v = views[i];
            if (v.startedMs == 0 || v.finishedMs < v.startedMs)
                continue;
            obs::SpanRecord rec;
            rec.category = "cell";
            rec.name = runs[i / cols] + "/" + policies[i % cols];
            rec.attempts = v.attempts;
            rec.failed = v.status == CellStatus::Failed;
            rec.timedOut = v.timedOut;
            rec.workerPid = static_cast<std::uint32_t>(v.workerPid);
            rec.leaseGeneration = v.leaseGeneration;
            using namespace std::chrono;
            const auto toTp = [](std::uint64_t ms) {
                return steady_clock::time_point(
                    duration_cast<steady_clock::duration>(
                        milliseconds(ms)));
            };
            tracer.emitInterval(std::move(rec), toTp(v.startedMs),
                                toTp(v.finishedMs));
        }
    }
    return out;
}

#else // !unix: the fabric is unavailable; sweeps stay in-process.

void
maybeWorkerMain(int, char **)
{
    g_worker_capable.store(false, std::memory_order_relaxed);
}

FabricResult
superviseWorkers(SweepManifest &, const std::vector<std::string> &,
                 const std::vector<std::string> &, unsigned, unsigned,
                 const std::function<void(bool)> &)
{
    warn("multi-process sweeps are unsupported on this platform; "
         "running in-process");
    FabricResult out;
    out.fallback = true;
    return out;
}

#endif

} // namespace sdbp::sweep
