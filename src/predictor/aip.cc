#include "predictor/aip.hh"

#include <algorithm>
#include <cassert>

#include "util/bitops.hh"
#include "util/hash.hh"

namespace sdbp
{

AipPredictor::AipPredictor(const AipConfig &cfg) : cfg_(cfg)
{
    assert(cfg_.rowBits + cfg_.colBits <= 24);
    table_.assign(std::size_t(1) << (cfg_.rowBits + cfg_.colBits),
                  TableEntry{});
    setTicks_.assign(cfg_.llcSets, 0);
}

std::uint8_t
AipPredictor::quantize(std::uint32_t interval)
{
    // ceil(log2(interval + 1)), saturated to 15.
    std::uint8_t q = 0;
    while ((1u << q) < interval + 1 && q < 15)
        ++q;
    return q;
}

std::uint32_t
AipPredictor::entryIndexOf(PC pc, Addr block_addr) const
{
    const std::uint64_t row = makeSignature(pc, cfg_.rowBits);
    const std::uint64_t col = mix64(block_addr) & mask(cfg_.colBits);
    return static_cast<std::uint32_t>(row << cfg_.colBits | col);
}

bool
AipPredictor::onAccess(std::uint32_t set, const Access &a)
{
    assert(set < cfg_.llcSets);
    const std::uint32_t now = ++setTicks_[set];

    auto it = meta_.find(a.blockAddr());
    if (it == meta_.end()) {
        // Dead-on-arrival: confident single-touch generations (a
        // learned max interval of zero means "never re-touched").
        const TableEntry &e = table_[entryIndexOf(a.pc, a.blockAddr())];
        return e.confident && e.maxInterval == 0;
    }

    BlockMeta &m = it->second;
    const std::uint32_t interval = now - m.lastTouch;
    m.maxInterval = std::max(m.maxInterval, quantize(interval));
    m.lastTouch = now;
    // At touch time the elapsed interval is zero, so the block is
    // live by definition; deadness is reported via isDeadNow().
    return false;
}

bool
AipPredictor::isDeadNow(std::uint32_t set, Addr block_addr) const
{
    auto it = meta_.find(block_addr);
    if (it == meta_.end())
        return false;
    const BlockMeta &m = it->second;
    if (!m.confident)
        return false;
    const std::uint32_t elapsed = setTicks_[set] - m.lastTouch;
    // Dead once the elapsed interval can no longer be within the
    // learned (quantized) maximum.
    return quantize(elapsed) > m.threshold;
}

void
AipPredictor::onFill(std::uint32_t set, const Access &a)
{
    BlockMeta m;
    m.entryIndex = entryIndexOf(a.pc, a.blockAddr());
    m.lastTouch = setTicks_[set];
    m.maxInterval = 0;
    const TableEntry &e = table_[m.entryIndex];
    m.threshold = e.maxInterval;
    m.confident = e.confident;
    meta_[a.blockAddr()] = m;
}

void
AipPredictor::onEvict(std::uint32_t set, const Access &a)
{
    (void)set;
    auto it = meta_.find(a.blockAddr());
    if (it == meta_.end())
        return;
    const BlockMeta &m = it->second;
    TableEntry &e = table_[m.entryIndex];
    e.confident = (e.maxInterval == m.maxInterval);
    e.maxInterval = m.maxInterval;
    meta_.erase(it);
}

std::uint64_t
AipPredictor::storageBits() const
{
    return cfg_.storageBits();
}

std::uint64_t
AipPredictor::metadataBitsPerBlock() const
{
    return cfg_.metadataBitsPerBlock();
}

} // namespace sdbp
