/**
 * @file
 * Sampling counting predictor — the paper's future-work item
 * (Sec. VIII: "we plan to investigate sampling techniques for
 * counting predictors").
 *
 * Like LvP, a block is predicted dead once its access count this
 * generation reaches the count its fill PC historically produces.
 * Like SDBP, the count table is trained only by a small decoupled
 * sampler tag array rather than by every cache eviction, so the
 * predictor table is accessed rarely and per-block cache metadata
 * shrinks to a fill-signature-free small counter.
 */

#ifndef SDBP_PREDICTOR_SAMPLING_COUNTING_HH
#define SDBP_PREDICTOR_SAMPLING_COUNTING_HH

#include <unordered_map>
#include <vector>

#include "predictor/dead_block_predictor.hh"
#include "util/budget.hh"
#include "util/hash.hh"

namespace sdbp
{

struct SamplingCountingConfig
{
    std::uint32_t samplerSets = 32;
    std::uint32_t samplerAssoc = 12;
    unsigned tagBits = 15;
    /** log2 entries of the count table (PC-signature indexed). */
    unsigned tableIndexBits = 12;
    /** Width of live-time counters. */
    unsigned counterBits = 4;
    /** Confidence needed before predictions fire (2-bit counter). */
    unsigned confidenceThreshold = 2;
    std::uint32_t llcSets = 2048;

    /** Count table: count + 2-bit confidence per entry. */
    constexpr budget::TableSpec
    tableSpec() const
    {
        return {std::uint64_t(1) << tableIndexBits, counterBits + 2};
    }

    /** Sampler: tag + fill signature + count + valid + 4 LRU bits. */
    constexpr budget::TableSpec
    samplerSpec() const
    {
        return {std::uint64_t(samplerSets) * samplerAssoc,
                tagBits + tableIndexBits + counterBits + 1 + 4};
    }

    constexpr std::uint64_t
    storageBits() const
    {
        return (tableSpec().total() + samplerSpec().total()).count();
    }

    /** Fill signature + count + prediction bit per block. */
    constexpr std::uint64_t
    metadataBitsPerBlock() const
    {
        return tableIndexBits + counterBits + 1;
    }
};

class SamplingCountingPredictor final : public DeadBlockPredictor
{
  public:
    explicit SamplingCountingPredictor(
        const SamplingCountingConfig &cfg = {});

    bool onAccess(std::uint32_t set, const Access &a) override;
    void onFill(std::uint32_t set, const Access &a) override;
    void onEvict(std::uint32_t set, const Access &a) override;

    std::string name() const override { return "sampling-counting"; }
    std::uint64_t storageBits() const override;
    std::uint64_t metadataBitsPerBlock() const override;

    bool isSampledSet(std::uint32_t set) const;
    const SamplingCountingConfig &config() const { return cfg_; }

  private:
    struct TableEntry
    {
        std::uint8_t count = 0;
        std::uint8_t confidence = 0; // 2-bit
    };

    struct SamplerEntry
    {
        std::uint16_t tag = 0;
        std::uint16_t fillSig = 0;
        std::uint8_t count = 0;
        bool valid = false;
        std::uint8_t lruPos = 0;
    };

    /** Per-resident-LLC-block state (fill signature + count). */
    struct BlockMeta
    {
        std::uint16_t fillSig = 0;
        std::uint8_t count = 0;
    };

    std::uint64_t
    signature(PC pc) const
    {
        return makeSignature(pc, cfg_.tableIndexBits);
    }

    bool predictFromTable(std::uint16_t sig, unsigned count) const;
    void samplerAccess(std::uint32_t sampler_set,
                       std::uint16_t partial_tag, std::uint16_t sig);

    SamplingCountingConfig cfg_;
    unsigned counterMax_;
    std::uint32_t setStride_;
    std::vector<TableEntry> table_;
    std::vector<SamplerEntry> sampler_;
    std::unordered_map<Addr, BlockMeta> meta_;
};

} // namespace sdbp

#endif // SDBP_PREDICTOR_SAMPLING_COUNTING_HH
