#include "predictor/dead_block_predictor.hh"

#include "obs/stat_registry.hh"

namespace sdbp
{

void
DeadBlockPredictor::registerStats(obs::StatRegistry &reg,
                                  const std::string &prefix) const
{
    using obs::StatRegistry;
    reg.addGauge(StatRegistry::join(prefix, "storage_bits"), [this] {
        return static_cast<double>(storageBits());
    });
    reg.addGauge(StatRegistry::join(prefix, "metadata_bits_per_block"),
                 [this] {
                     return static_cast<double>(metadataBitsPerBlock());
                 });
}

} // namespace sdbp
