#include "predictor/sampling_counting.hh"

#include <cassert>

#include "util/bitops.hh"

namespace sdbp
{

SamplingCountingPredictor::SamplingCountingPredictor(
    const SamplingCountingConfig &cfg)
    : cfg_(cfg)
{
    assert(cfg_.llcSets >= cfg_.samplerSets);
    counterMax_ = (1u << cfg_.counterBits) - 1;
    setStride_ = cfg_.llcSets / cfg_.samplerSets;
    table_.assign(std::size_t(1) << cfg_.tableIndexBits, TableEntry{});
    sampler_.assign(static_cast<std::size_t>(cfg_.samplerSets) *
                        cfg_.samplerAssoc,
                    SamplerEntry{});
    for (std::uint32_t s = 0; s < cfg_.samplerSets; ++s)
        for (std::uint32_t w = 0; w < cfg_.samplerAssoc; ++w)
            sampler_[s * cfg_.samplerAssoc + w].lruPos =
                static_cast<std::uint8_t>(w);
}

bool
SamplingCountingPredictor::isSampledSet(std::uint32_t set) const
{
    return set % setStride_ == 0 &&
        set / setStride_ < cfg_.samplerSets;
}

bool
SamplingCountingPredictor::predictFromTable(std::uint16_t sig,
                                            unsigned count) const
{
    const TableEntry &e = table_[sig];
    return e.confidence >= cfg_.confidenceThreshold &&
        count >= e.count && e.count > 0;
}

void
SamplingCountingPredictor::samplerAccess(std::uint32_t sampler_set,
                                         std::uint16_t partial_tag,
                                         std::uint16_t sig)
{
    auto *base = &sampler_[sampler_set * cfg_.samplerAssoc];

    auto move_to_mru = [&](std::uint32_t way) {
        const std::uint8_t old_pos = base[way].lruPos;
        for (std::uint32_t w = 0; w < cfg_.samplerAssoc; ++w)
            if (base[w].lruPos < old_pos)
                ++base[w].lruPos;
        base[way].lruPos = 0;
    };

    for (std::uint32_t w = 0; w < cfg_.samplerAssoc; ++w) {
        if (base[w].valid && base[w].tag == partial_tag) {
            if (base[w].count < counterMax_)
                ++base[w].count;
            move_to_mru(w);
            return;
        }
    }

    // Miss: replace the LRU (or an invalid) entry, training the
    // table with the evicted generation's count.
    std::uint32_t victim = 0;
    for (std::uint32_t w = 0; w < cfg_.samplerAssoc; ++w) {
        if (!base[w].valid) {
            victim = w;
            break;
        }
        if (base[w].lruPos == cfg_.samplerAssoc - 1)
            victim = w;
    }
    SamplerEntry &e = base[victim];
    if (e.valid) {
        TableEntry &t = table_[e.fillSig];
        if (t.count == e.count) {
            if (t.confidence < 3)
                ++t.confidence;
        } else {
            t.count = e.count;
            t.confidence = 0;
        }
    }
    e.valid = true;
    e.tag = partial_tag;
    e.fillSig = sig;
    e.count = 1;
    move_to_mru(victim);
}

bool
SamplingCountingPredictor::onAccess(std::uint32_t set, const Access &a)
{
    const auto sig = static_cast<std::uint16_t>(signature(a.pc));

    if (isSampledSet(set)) {
        const auto partial_tag = static_cast<std::uint16_t>(
            mix64(a.blockAddr()) & mask(cfg_.tagBits));
        samplerAccess(set / setStride_, partial_tag, sig);
    }

    auto it = meta_.find(a.blockAddr());
    if (it == meta_.end()) {
        // Dead-on-arrival query: single-access generations bypass.
        const TableEntry &e = table_[sig];
        return e.confidence >= cfg_.confidenceThreshold &&
            e.count == 1;
    }
    BlockMeta &m = it->second;
    if (m.count < counterMax_)
        ++m.count;
    return predictFromTable(m.fillSig, m.count);
}

void
SamplingCountingPredictor::onFill(std::uint32_t set, const Access &a)
{
    (void)set;
    BlockMeta m;
    m.fillSig = static_cast<std::uint16_t>(signature(a.pc));
    m.count = 1;
    meta_[a.blockAddr()] = m;
}

void
SamplingCountingPredictor::onEvict(std::uint32_t set, const Access &a)
{
    (void)set;
    // The decoupling: cache evictions do NOT train the table.
    meta_.erase(a.blockAddr());
}

std::uint64_t
SamplingCountingPredictor::storageBits() const
{
    return cfg_.storageBits();
}

std::uint64_t
SamplingCountingPredictor::metadataBitsPerBlock() const
{
    return cfg_.metadataBitsPerBlock();
}

} // namespace sdbp
