/**
 * @file
 * Common interface of all dead block predictors (the paper's
 * sampling predictor plus the reftrace and counting baselines).
 */

#ifndef SDBP_PREDICTOR_DEAD_BLOCK_PREDICTOR_HH
#define SDBP_PREDICTOR_DEAD_BLOCK_PREDICTOR_HH

#include <cstdint>
#include <string>

#include "util/types.hh"

namespace sdbp
{

namespace obs
{
class StatRegistry;
} // namespace obs

namespace fault
{
class FaultInjector;
} // namespace fault

/**
 * A dead block predictor, as driven by the dead-block replacement
 * and bypass policy (Sec. V).
 *
 * The LLC consults the predictor on every demand access; predictors
 * that keep per-block metadata additionally receive fill and evict
 * notifications.  Writebacks never reach the predictor.
 */
class DeadBlockPredictor
{
  public:
    virtual ~DeadBlockPredictor() = default;

    /**
     * A demand access (hit or miss) to LLC set @p set.
     *
     * @return true if the block is predicted dead *after* this
     *         access; on a miss this doubles as the dead-on-arrival
     *         (bypass) prediction.
     */
    virtual bool onAccess(std::uint32_t set, Addr block_addr, PC pc,
                          ThreadId thread) = 0;

    /** The LLC installed the block (not called when bypassed). */
    virtual void
    onFill(std::uint32_t set, Addr block_addr, PC pc)
    {
        (void)set;
        (void)block_addr;
        (void)pc;
    }

    /** The LLC evicted the (previously resident) block. */
    virtual void
    onEvict(std::uint32_t set, Addr block_addr)
    {
        (void)set;
        (void)block_addr;
    }

    /**
     * Is the (resident) block dead *right now*?  Interval- and
     * time-based predictors (AIP, IATAC) express deadness as "too
     * long since the last touch", which only becomes true between
     * accesses; the replacement policy consults this during victim
     * selection.  PC-trace predictors leave the default.
     */
    virtual bool
    isDeadNow(std::uint32_t set, Addr block_addr) const
    {
        (void)set;
        (void)block_addr;
        return false;
    }

    /**
     * True when the predictor implements isDeadNow(); lets the
     * replacement policy skip per-way virtual calls otherwise.
     */
    virtual bool hasLiveness() const { return false; }

    virtual std::string name() const = 0;

    /** Bits of state held in predictor-side structures (Table I). */
    virtual std::uint64_t storageBits() const = 0;

    /** Extra metadata bits required per LLC block (Table I). */
    virtual std::uint64_t metadataBitsPerBlock() const = 0;

    /**
     * Register predictor stats under @p prefix.  The default
     * registers the Table I storage budget as gauges; predictors
     * with event counters (the sampling predictor) extend it.
     */
    virtual void registerStats(obs::StatRegistry &reg,
                               const std::string &prefix) const;

    /**
     * Expose this predictor's SRAM-like state to a soft-error fault
     * injector (DESIGN.md §11).  The default registers nothing — a
     * predictor without fault targets simply cannot be perturbed.
     * Implementations must keep every flip within the component's
     * audited invariants (flip only configured-width bits; re-decode
     * structural state).
     */
    virtual void
    registerFaultTargets(fault::FaultInjector &injector)
    {
        (void)injector;
    }

    /**
     * Panic (via SDBP_DCHECK) if internal invariants drifted; the
     * runner calls this after every run when DCHECKs are on, so
     * fault-injected runs prove the perturbation stayed inside the
     * hints-only boundary.  Default: nothing to audit.
     */
    virtual void auditInvariants() const {}
};

} // namespace sdbp

#endif // SDBP_PREDICTOR_DEAD_BLOCK_PREDICTOR_HH
