/**
 * @file
 * Common interface of all dead block predictors (the paper's
 * sampling predictor plus the reftrace and counting baselines).
 */

#ifndef SDBP_PREDICTOR_DEAD_BLOCK_PREDICTOR_HH
#define SDBP_PREDICTOR_DEAD_BLOCK_PREDICTOR_HH

#include <cstdint>
#include <string>

#include "trace/access.hh"
#include "util/hotpath.hh"
#include "util/types.hh"

namespace sdbp
{

namespace obs
{
class StatRegistry;
} // namespace obs

namespace fault
{
class FaultInjector;
} // namespace fault

/**
 * Capability interface of predictors that can answer "is this
 * resident block dead *right now*?".  Interval- and time-based
 * predictors (AIP, IATAC) express deadness as "too long since the
 * last touch", which only becomes true between accesses; the
 * replacement policy consults the probe during victim selection.
 */
class LivenessProbe
{
  public:
    virtual ~LivenessProbe() = default;

    virtual bool isDeadNow(std::uint32_t set,
                           Addr block_addr) const = 0;
};

/**
 * A dead block predictor, as driven by the dead-block replacement
 * and bypass policy (Sec. V).
 *
 * The LLC consults the predictor on every demand access; predictors
 * that keep per-block metadata additionally receive fill and evict
 * notifications.  Writebacks never reach the predictor.
 */
class DeadBlockPredictor
{
  public:
    virtual ~DeadBlockPredictor() = default;

    /**
     * A demand access (hit or miss) to LLC set @p set.  The
     * predictor reads the block address, PC and thread from @p a.
     *
     * @return true if the block is predicted dead *after* this
     *         access; on a miss this doubles as the dead-on-arrival
     *         (bypass) prediction.
     */
    virtual bool onAccess(std::uint32_t set, const Access &a) = 0;

    /** The LLC installed the block (not called when bypassed). */
    virtual void
    onFill(std::uint32_t set, const Access &a)
    {
        (void)set;
        (void)a;
    }

    /**
     * The LLC evicted the (previously resident) block.  The wrapper
     * synthesizes an Access naming the victim's block address; pc
     * and thread are not meaningful here.
     */
    virtual void
    onEvict(std::uint32_t set, const Access &a)
    {
        (void)set;
        (void)a;
    }

    /**
     * The predictor's liveness capability, or nullptr when deadness
     * is only known at access time (PC-trace predictors).  Folding
     * the old isDeadNow/hasLiveness pair into one accessor lets the
     * replacement policy hoist the capability check out of the
     * per-way victim loop and keeps the probe itself a single
     * virtual call.
     */
    SDBP_HOT_PATH virtual const LivenessProbe *livenessProbe() const
    {
        return nullptr;
    }

    virtual std::string name() const = 0;

    /** Bits of state held in predictor-side structures (Table I). */
    virtual std::uint64_t storageBits() const = 0;

    /** Extra metadata bits required per LLC block (Table I). */
    virtual std::uint64_t metadataBitsPerBlock() const = 0;

    /**
     * Register predictor stats under @p prefix.  The default
     * registers the Table I storage budget as gauges; predictors
     * with event counters (the sampling predictor) extend it.
     */
    virtual void registerStats(obs::StatRegistry &reg,
                               const std::string &prefix) const;

    /**
     * Expose this predictor's SRAM-like state to a soft-error fault
     * injector (DESIGN.md §11).  The default registers nothing — a
     * predictor without fault targets simply cannot be perturbed.
     * Implementations must keep every flip within the component's
     * audited invariants (flip only configured-width bits; re-decode
     * structural state).
     */
    virtual void
    registerFaultTargets(fault::FaultInjector &injector)
    {
        (void)injector;
    }

    /**
     * Panic (via SDBP_DCHECK) if internal invariants drifted; the
     * runner calls this after every run when DCHECKs are on, so
     * fault-injected runs prove the perturbation stayed inside the
     * hints-only boundary.  Default: nothing to audit.
     */
    virtual void auditInvariants() const {}
};

} // namespace sdbp

#endif // SDBP_PREDICTOR_DEAD_BLOCK_PREDICTOR_HH
