#include "predictor/reftrace.hh"

#include <cassert>

#include "fault/fault_injector.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace sdbp
{

RefTracePredictor::RefTracePredictor(const RefTraceConfig &cfg)
    : cfg_(cfg)
{
    assert(cfg_.signatureBits >= 4 && cfg_.signatureBits <= 20);
    counterMax_ = (1u << cfg_.counterBits) - 1;
    table_.assign(std::size_t(1) << cfg_.signatureBits, 0);
}

bool
RefTracePredictor::onAccess(std::uint32_t set, const Access &a)
{
    (void)set;
    const std::uint64_t pc_sig = pcSignature(a.pc);
    auto it = sig_.find(a.blockAddr());
    if (it == sig_.end()) {
        // Dead-on-arrival query: the trace so far is just this PC.
        return table_[pc_sig] >= cfg_.threshold;
    }

    // The old signature did not end the generation: train it toward
    // "live", then extend the trace with this access.
    auto &c = table_[it->second];
    if (c > 0)
        --c;
    const auto new_sig = static_cast<std::uint16_t>(
        (it->second + pc_sig) & mask(cfg_.signatureBits));
    it->second = new_sig;
    return table_[new_sig] >= cfg_.threshold;
}

void
RefTracePredictor::onFill(std::uint32_t set, const Access &a)
{
    (void)set;
    sig_[a.blockAddr()] = static_cast<std::uint16_t>(pcSignature(a.pc));
}

void
RefTracePredictor::onEvict(std::uint32_t set, const Access &a)
{
    (void)set;
    auto it = sig_.find(a.blockAddr());
    if (it == sig_.end())
        return;
    // The final signature ended a generation: train toward "dead".
    auto &c = table_[it->second];
    if (c < counterMax_)
        ++c;
    sig_.erase(it);
}

std::uint64_t
RefTracePredictor::signatureOf(Addr block_addr) const
{
    auto it = sig_.find(block_addr);
    return it == sig_.end() ? 0 : it->second;
}

std::uint64_t
RefTracePredictor::storageBits() const
{
    return cfg_.storageBits();
}

std::uint64_t
RefTracePredictor::metadataBitsPerBlock() const
{
    return cfg_.metadataBitsPerBlock();
}

void
RefTracePredictor::registerFaultTargets(fault::FaultInjector &injector)
{
    injector.addTarget(
        {"table.counter", table_.size(), cfg_.counterBits,
         [this](std::uint64_t w, unsigned b) {
             table_[w] = static_cast<std::uint8_t>(
                 table_[w] ^ (1u << b));
         }});
}

void
RefTracePredictor::auditInvariants() const
{
#if SDBP_DCHECK_ENABLED
    SDBP_DCHECK_EQ(table_.size(), cfg_.storageSpec().entries,
                   "reftrace table geometry drifted from config");
    for (std::size_t i = 0; i < table_.size(); ++i)
        SDBP_DCHECK_LE(unsigned{table_[i]}, counterMax_,
                       "reftrace counter overflowed its width");
#endif // SDBP_DCHECK_ENABLED
}

} // namespace sdbp
