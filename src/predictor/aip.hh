/**
 * @file
 * Access Interval Predictor (AIP), the second counting-based
 * predictor of Kharbutli & Solihin (IEEE TC 2008), mentioned in
 * Sec. II-A4 of the paper ("An Access Interval Predictor (AIP) is
 * also described in the same paper, but we focus on LvP").
 *
 * AIP learns, per <fill-PC, block> table entry, the largest interval
 * (in accesses to the block's set) between consecutive touches of a
 * block within one generation.  A resident block is considered dead
 * once the time since its last touch exceeds that learned maximum —
 * deadness that develops *between* accesses and is reported through
 * isDeadNow().
 */

#ifndef SDBP_PREDICTOR_AIP_HH
#define SDBP_PREDICTOR_AIP_HH

#include <unordered_map>
#include <vector>

#include "predictor/dead_block_predictor.hh"
#include "util/budget.hh"

namespace sdbp
{

struct AipConfig
{
    unsigned rowBits = 8; ///< log2 rows (hashed fill PC)
    unsigned colBits = 8; ///< log2 columns (hashed block address)
    /** Intervals are quantized to ceil(log2) in this many bits. */
    unsigned intervalBits = 4;
    std::uint32_t llcSets = 2048;

    /** Interval + confidence bit per entry, plus one per-set
     *  interval counter. */
    constexpr std::uint64_t
    storageBits() const
    {
        const budget::TableSpec table{
            std::uint64_t(1) << (rowBits + colBits),
            intervalBits + 1};
        const budget::TableSpec set_counters{llcSets, intervalBits};
        return (table.total() + set_counters.total()).count();
    }

    /** Hashed PC (8) + last-touch interval + max interval + learned
     *  threshold + confidence + prediction bit. */
    constexpr std::uint64_t
    metadataBitsPerBlock() const
    {
        return 8 + intervalBits * 3 + 1 + 1;
    }
};

class AipPredictor final : public DeadBlockPredictor,
                           public LivenessProbe
{
  public:
    explicit AipPredictor(const AipConfig &cfg = {});

    bool onAccess(std::uint32_t set, const Access &a) override;
    void onFill(std::uint32_t set, const Access &a) override;
    void onEvict(std::uint32_t set, const Access &a) override;
    bool isDeadNow(std::uint32_t set, Addr block_addr) const override;
    const LivenessProbe *livenessProbe() const override
    {
        return this;
    }

    std::string name() const override { return "aip"; }
    std::uint64_t storageBits() const override;
    std::uint64_t metadataBitsPerBlock() const override;

    const AipConfig &config() const { return cfg_; }

  private:
    struct TableEntry
    {
        /** log2-quantized maximum access interval. */
        std::uint8_t maxInterval = 0;
        bool confident = false;
    };

    struct BlockMeta
    {
        std::uint32_t entryIndex = 0;
        /** Set-access count at the last touch. */
        std::uint32_t lastTouch = 0;
        /** Largest quantized interval seen this generation. */
        std::uint8_t maxInterval = 0;
        /** Learned bound captured at fill. */
        std::uint8_t threshold = 0;
        bool confident = false;
    };

    static std::uint8_t quantize(std::uint32_t interval);
    std::uint32_t entryIndexOf(PC pc, Addr block_addr) const;

    AipConfig cfg_;
    std::vector<TableEntry> table_;
    /** Per-set access counters (the predictor's clock). */
    std::vector<std::uint32_t> setTicks_;
    std::unordered_map<Addr, BlockMeta> meta_;
};

} // namespace sdbp

#endif // SDBP_PREDICTOR_AIP_HH
