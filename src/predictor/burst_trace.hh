/**
 * @file
 * Cache-bursts variant of the reference-trace predictor (Liu et al.
 * MICRO 2008, Sec. II-A3 of the paper; evaluating it at the LLC is
 * listed as future work in Sec. VIII).
 *
 * A burst is a run of consecutive accesses to the same block with no
 * intervening access to its set.  The signature is extended and the
 * tables trained once per burst instead of once per access, reducing
 * predictor traffic.  The paper notes bursts buy little at the LLC
 * because the L1 already filters most of them — this implementation
 * lets that claim be measured.
 */

#ifndef SDBP_PREDICTOR_BURST_TRACE_HH
#define SDBP_PREDICTOR_BURST_TRACE_HH

#include <unordered_map>
#include <vector>

#include "predictor/dead_block_predictor.hh"
#include "util/budget.hh"
#include "util/hash.hh"

namespace sdbp
{

struct BurstTraceConfig
{
    unsigned signatureBits = 15;
    unsigned counterBits = 2;
    unsigned threshold = 2;
    std::uint32_t llcSets = 2048;

    /** The burst-history table of saturating counters. */
    constexpr budget::TableSpec
    storageSpec() const
    {
        return {std::uint64_t(1) << signatureBits, counterBits};
    }

    constexpr std::uint64_t
    storageBits() const
    {
        return storageSpec().total().count();
    }

    /** Per-block signature + predicted-dead bit. */
    constexpr std::uint64_t
    metadataBitsPerBlock() const
    {
        return signatureBits + 1;
    }
};

class BurstTracePredictor final : public DeadBlockPredictor
{
  public:
    explicit BurstTracePredictor(const BurstTraceConfig &cfg = {});

    bool onAccess(std::uint32_t set, const Access &a) override;
    void onFill(std::uint32_t set, const Access &a) override;
    void onEvict(std::uint32_t set, const Access &a) override;

    std::string name() const override { return "burst-trace"; }
    std::uint64_t storageBits() const override;
    std::uint64_t metadataBitsPerBlock() const override;

    /** Number of burst boundaries observed (test hook). */
    std::uint64_t bursts() const { return bursts_; }
    /** Accesses folded into an ongoing burst (test hook). */
    std::uint64_t filteredAccesses() const { return filtered_; }

  private:
    std::uint64_t
    pcSignature(PC pc) const
    {
        return makeSignature(pc, cfg_.signatureBits);
    }

    BurstTraceConfig cfg_;
    unsigned counterMax_;
    std::vector<std::uint8_t> table_;
    /** Most recently accessed block per set (burst detection). */
    std::vector<Addr> lastBlock_;
    std::unordered_map<Addr, std::uint16_t> sig_;
    std::uint64_t bursts_ = 0;
    std::uint64_t filtered_ = 0;
};

} // namespace sdbp

#endif // SDBP_PREDICTOR_BURST_TRACE_HH
