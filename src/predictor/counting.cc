#include "predictor/counting.hh"

#include <algorithm>
#include <cassert>

#include "fault/fault_injector.hh"
#include "util/hash.hh"
#include "util/logging.hh"

namespace sdbp
{

CountingPredictor::CountingPredictor(const CountingConfig &cfg)
    : cfg_(cfg)
{
    assert(cfg_.rowBits + cfg_.colBits <= 24);
    counterMax_ = (1u << cfg_.counterBits) - 1;
    table_.assign(std::size_t(1) << (cfg_.rowBits + cfg_.colBits),
                  TableEntry{});
}

std::uint32_t
CountingPredictor::entryIndexOf(PC pc, Addr block_addr) const
{
    const std::uint64_t row = makeSignature(pc, cfg_.rowBits);
    const std::uint64_t col = mix64(block_addr) & mask(cfg_.colBits);
    return static_cast<std::uint32_t>(row << cfg_.colBits | col);
}

bool
CountingPredictor::onAccess(std::uint32_t set, const Access &a)
{
    (void)set;
    auto it = meta_.find(a.blockAddr());
    if (it == meta_.end()) {
        // Dead-on-arrival query: dead if this <PC, block> pair's
        // generations reliably consist of a single access.
        const TableEntry &e = table_[entryIndexOf(a.pc, a.blockAddr())];
        return e.confident && e.count <= 1;
    }

    BlockMeta &m = it->second;
    if (m.count < counterMax_)
        ++m.count;
    return m.confident && m.count >= m.threshold;
}

void
CountingPredictor::onFill(std::uint32_t set, const Access &a)
{
    (void)set;
    const std::uint32_t idx = entryIndexOf(a.pc, a.blockAddr());
    const TableEntry &e = table_[idx];
    BlockMeta m;
    m.entryIndex = idx;
    m.count = 1; // the fill access itself
    m.threshold = e.count;
    m.confident = e.confident;
    meta_[a.blockAddr()] = m;
}

void
CountingPredictor::onEvict(std::uint32_t set, const Access &a)
{
    (void)set;
    auto it = meta_.find(a.blockAddr());
    if (it == meta_.end())
        return;
    const BlockMeta &m = it->second;
    TableEntry &e = table_[m.entryIndex];
    // Confidence is set when two consecutive generations agree.
    e.confident = (e.count == m.count);
    e.count = m.count;
    meta_.erase(it);
}

std::uint64_t
CountingPredictor::storageBits() const
{
    return cfg_.storageBits();
}

std::uint64_t
CountingPredictor::metadataBitsPerBlock() const
{
    return cfg_.metadataBitsPerBlock();
}

void
CountingPredictor::registerFaultTargets(fault::FaultInjector &injector)
{
    injector.addTarget(
        {"table.count", table_.size(), cfg_.counterBits,
         [this](std::uint64_t w, unsigned b) {
             table_[w].count = static_cast<std::uint8_t>(
                 table_[w].count ^ (1u << b));
         }});
    injector.addTarget(
        {"table.confident", table_.size(), 1,
         [this](std::uint64_t w, unsigned) {
             table_[w].confident = !table_[w].confident;
         }});
}

void
CountingPredictor::auditInvariants() const
{
#if SDBP_DCHECK_ENABLED
    SDBP_DCHECK_EQ(table_.size(), cfg_.storageSpec().entries,
                   "counting table geometry drifted from config");
    for (std::size_t i = 0; i < table_.size(); ++i)
        SDBP_DCHECK_LE(unsigned{table_[i].count}, counterMax_,
                       "counting access count overflowed its width");
#endif // SDBP_DCHECK_ENABLED
}

} // namespace sdbp
