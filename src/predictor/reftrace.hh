/**
 * @file
 * Reference-trace dead block predictor (Lai et al., ISCA 2001), the
 * "reftrace" / TDBP baseline of the paper (Sec. II-A1, IV-A).
 *
 * Each resident block carries a 15-bit signature: the truncated sum
 * of the PCs of all instructions that accessed it this generation.
 * A single table of 2-bit counters maps signatures to confidence
 * that the trace ends a generation (the block is dead).
 */

#ifndef SDBP_PREDICTOR_REFTRACE_HH
#define SDBP_PREDICTOR_REFTRACE_HH

#include <unordered_map>
#include <vector>

#include "predictor/dead_block_predictor.hh"
#include "util/budget.hh"
#include "util/hash.hh"

namespace sdbp
{

struct RefTraceConfig
{
    /** Signature width; the table has 2^signatureBits entries. */
    unsigned signatureBits = 15;
    unsigned counterBits = 2;
    unsigned threshold = 2;

    /** The history table: 2^signatureBits saturating counters. */
    constexpr budget::TableSpec
    storageSpec() const
    {
        return {std::uint64_t(1) << signatureBits, counterBits};
    }

    constexpr std::uint64_t
    storageBits() const
    {
        return storageSpec().total().count();
    }

    /** Per-block signature + predicted-dead bit (Sec. IV-A). */
    constexpr std::uint64_t
    metadataBitsPerBlock() const
    {
        return signatureBits + 1;
    }
};

class RefTracePredictor final : public DeadBlockPredictor
{
  public:
    explicit RefTracePredictor(const RefTraceConfig &cfg = {});

    bool onAccess(std::uint32_t set, const Access &a) override;
    void onFill(std::uint32_t set, const Access &a) override;
    void onEvict(std::uint32_t set, const Access &a) override;

    std::string name() const override { return "reftrace"; }
    std::uint64_t storageBits() const override;
    std::uint64_t metadataBitsPerBlock() const override;

    /** Current signature of a resident block (test hook). */
    std::uint64_t signatureOf(Addr block_addr) const;

    const RefTraceConfig &config() const { return cfg_; }

    /**
     * Fault surface: the history table's saturating counters
     * ("table.counter").  The per-block signature map models
     * LLC-side metadata, not predictor SRAM, so it is not exposed.
     */
    void registerFaultTargets(fault::FaultInjector &injector) override;

    /** Every counter within its configured saturation width. */
    void auditInvariants() const override;

  private:
    std::uint64_t
    pcSignature(PC pc) const
    {
        return makeSignature(pc, cfg_.signatureBits);
    }

    unsigned counterMax_;
    RefTraceConfig cfg_;
    std::vector<std::uint8_t> table_;
    /**
     * Per-resident-block signature.  In hardware this lives as
     * metadata beside every cache block (the 64 KB of Table I); the
     * model keys it by block address, which is equivalent.
     */
    std::unordered_map<Addr, std::uint16_t> sig_;
};

} // namespace sdbp

#endif // SDBP_PREDICTOR_REFTRACE_HH
