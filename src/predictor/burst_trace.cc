#include "predictor/burst_trace.hh"

#include <cassert>

#include "util/bitops.hh"

namespace sdbp
{

BurstTracePredictor::BurstTracePredictor(const BurstTraceConfig &cfg)
    : cfg_(cfg)
{
    counterMax_ = (1u << cfg_.counterBits) - 1;
    table_.assign(std::size_t(1) << cfg_.signatureBits, 0);
    lastBlock_.assign(cfg_.llcSets, ~Addr(0));
}

bool
BurstTracePredictor::onAccess(std::uint32_t set, const Access &a)
{
    assert(set < cfg_.llcSets);
    const std::uint64_t pc_sig = pcSignature(a.pc);

    auto it = sig_.find(a.blockAddr());
    if (it == sig_.end()) {
        lastBlock_[set] = a.blockAddr();
        return table_[pc_sig] >= cfg_.threshold;
    }

    if (lastBlock_[set] == a.blockAddr()) {
        // Same burst: fold the access without touching the tables.
        ++filtered_;
        return table_[it->second] >= cfg_.threshold;
    }

    // Burst boundary: the previous burst's signature was not final.
    ++bursts_;
    lastBlock_[set] = a.blockAddr();
    auto &c = table_[it->second];
    if (c > 0)
        --c;
    const auto new_sig = static_cast<std::uint16_t>(
        (it->second + pc_sig) & mask(cfg_.signatureBits));
    it->second = new_sig;
    return table_[new_sig] >= cfg_.threshold;
}

void
BurstTracePredictor::onFill(std::uint32_t set, const Access &a)
{
    (void)set;
    sig_[a.blockAddr()] = static_cast<std::uint16_t>(pcSignature(a.pc));
}

void
BurstTracePredictor::onEvict(std::uint32_t set, const Access &a)
{
    auto it = sig_.find(a.blockAddr());
    if (it == sig_.end())
        return;
    auto &c = table_[it->second];
    if (c < counterMax_)
        ++c;
    sig_.erase(it);
    if (set < cfg_.llcSets && lastBlock_[set] == a.blockAddr())
        lastBlock_[set] = ~Addr(0);
}

std::uint64_t
BurstTracePredictor::storageBits() const
{
    return cfg_.storageBits();
}

std::uint64_t
BurstTracePredictor::metadataBitsPerBlock() const
{
    return cfg_.metadataBitsPerBlock();
}

} // namespace sdbp
