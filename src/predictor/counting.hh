/**
 * @file
 * Counting-based Live-time Predictor (LvP) of Kharbutli & Solihin
 * (IEEE TC 2008), the "counting" / CDBP baseline (Sec. II-A4, IV-B).
 *
 * A block is predicted dead once it has been accessed as many times
 * as in its previous generation, provided the count matched across
 * the last two generations (one-bit confidence).  The table is a
 * matrix indexed by hashed fill PC (rows) and hashed block address
 * (columns).
 */

#ifndef SDBP_PREDICTOR_COUNTING_HH
#define SDBP_PREDICTOR_COUNTING_HH

#include <unordered_map>
#include <vector>

#include "predictor/dead_block_predictor.hh"
#include "util/budget.hh"

namespace sdbp
{

struct CountingConfig
{
    /** log2 of the number of rows (hashed PC). */
    unsigned rowBits = 8;
    /** log2 of the number of columns (hashed block address). */
    unsigned colBits = 8;
    /** Width of the per-entry access counter. */
    unsigned counterBits = 4;

    /** PC x addr matrix of count + confidence-bit entries. */
    constexpr budget::TableSpec
    storageSpec() const
    {
        return {std::uint64_t(1) << (rowBits + colBits),
                counterBits + 1};
    }

    constexpr std::uint64_t
    storageBits() const
    {
        return storageSpec().total().count();
    }

    /** 8-bit hashed PC + two counters + confidence bit (Sec. IV-B). */
    constexpr std::uint64_t
    metadataBitsPerBlock() const
    {
        return 8 + counterBits + counterBits + 1;
    }
};

class CountingPredictor final : public DeadBlockPredictor
{
  public:
    explicit CountingPredictor(const CountingConfig &cfg = {});

    bool onAccess(std::uint32_t set, const Access &a) override;
    void onFill(std::uint32_t set, const Access &a) override;
    void onEvict(std::uint32_t set, const Access &a) override;

    std::string name() const override { return "counting"; }
    std::uint64_t storageBits() const override;
    std::uint64_t metadataBitsPerBlock() const override;

    const CountingConfig &config() const { return cfg_; }

    /**
     * Fault surface: the PC x addr matrix's access counts
     * ("table.count") and confidence bits ("table.confident").
     * Per-block metadata rides with the LLC blocks and is not
     * exposed.
     */
    void registerFaultTargets(fault::FaultInjector &injector) override;

    /** Every table count within its configured counter width. */
    void auditInvariants() const override;

  private:
    struct TableEntry
    {
        std::uint8_t count = 0;
        bool confident = false;
    };

    /** Metadata a real implementation stores beside each block. */
    struct BlockMeta
    {
        std::uint32_t entryIndex = 0;
        std::uint8_t count = 0;
        /** Live-time threshold captured at fill. */
        std::uint8_t threshold = 0;
        bool confident = false;
    };

    std::uint32_t entryIndexOf(PC pc, Addr block_addr) const;

    CountingConfig cfg_;
    unsigned counterMax_;
    std::vector<TableEntry> table_;
    std::unordered_map<Addr, BlockMeta> meta_;
};

} // namespace sdbp

#endif // SDBP_PREDICTOR_COUNTING_HH
