#include "predictor/time_based.hh"

#include <algorithm>
#include <cassert>

#include "util/bitops.hh"

namespace sdbp
{

TimeBasedPredictor::TimeBasedPredictor(const TimeBasedConfig &cfg)
    : cfg_(cfg)
{
    assert(cfg_.multiplier >= 1);
    timeMax_ = (1u << cfg_.timeBits) - 1;
    liveTime_.assign(std::size_t(1) << cfg_.tableIndexBits, 0);
    setTicks_.assign(cfg_.llcSets, 0);
}

bool
TimeBasedPredictor::onAccess(std::uint32_t set, const Access &a)
{
    assert(set < cfg_.llcSets);
    const std::uint32_t now = ++setTicks_[set];
    auto it = meta_.find(a.blockAddr());
    if (it == meta_.end()) {
        // Dead-on-arrival: a learned live time of zero with history
        // means "never re-touched".  Use the table directly.
        return liveTime_[tableIndexOf(a.pc)] == 1;
    }
    it->second.lastTouch = now;
    return false;
}

bool
TimeBasedPredictor::isDeadNow(std::uint32_t set, Addr block_addr) const
{
    auto it = meta_.find(block_addr);
    if (it == meta_.end())
        return false;
    const BlockMeta &m = it->second;
    const std::uint32_t learned = liveTime_[m.tableIndex];
    if (learned == 0)
        return false; // nothing learned yet
    const std::uint32_t idle = setTicks_[set] - m.lastTouch;
    return idle > learned * cfg_.multiplier;
}

void
TimeBasedPredictor::onFill(std::uint32_t set, const Access &a)
{
    BlockMeta m;
    m.tableIndex = tableIndexOf(a.pc);
    m.fillTick = setTicks_[set];
    m.lastTouch = m.fillTick;
    meta_[a.blockAddr()] = m;
}

void
TimeBasedPredictor::onEvict(std::uint32_t set, const Access &a)
{
    (void)set;
    auto it = meta_.find(a.blockAddr());
    if (it == meta_.end())
        return;
    const BlockMeta &m = it->second;
    // Observed live time (in set accesses), clamped; store 1 for
    // never-re-touched generations so "1" doubles as the
    // dead-on-arrival marker.
    const std::uint32_t live = std::min<std::uint32_t>(
        std::max<std::uint32_t>(m.lastTouch - m.fillTick, 1),
        timeMax_);
    std::uint32_t &entry = liveTime_[m.tableIndex];
    // Exponential moving average with alpha = 1/2.
    entry = entry == 0 ? live : (entry + live + 1) / 2;
    meta_.erase(it);
}

std::uint32_t
TimeBasedPredictor::learnedLiveTime(PC pc) const
{
    return liveTime_[tableIndexOf(pc)];
}

std::uint64_t
TimeBasedPredictor::storageBits() const
{
    return cfg_.storageBits();
}

std::uint64_t
TimeBasedPredictor::metadataBitsPerBlock() const
{
    return cfg_.metadataBitsPerBlock();
}

} // namespace sdbp
