/**
 * @file
 * Time-based dead block predictor in the spirit of Hu, Kaxiras &
 * Martonosi (ISCA 2002) and Abella et al.'s IATAC (Sec. II-A2 of
 * the paper): learn how long a block stays live, and declare it
 * dead once it has been idle for twice that long.
 *
 * Live times are learned per fill-PC signature (a practical
 * adaptation: the original learned per block, which costs far more
 * state).  The clock is the per-set access count, as in AIP.
 */

#ifndef SDBP_PREDICTOR_TIME_BASED_HH
#define SDBP_PREDICTOR_TIME_BASED_HH

#include <unordered_map>
#include <vector>

#include "predictor/dead_block_predictor.hh"
#include "util/budget.hh"
#include "util/hash.hh"

namespace sdbp
{

struct TimeBasedConfig
{
    /** log2 entries of the live-time table. */
    unsigned tableIndexBits = 12;
    /** Width of stored (quantized) live times. */
    unsigned timeBits = 5;
    /** Idle threshold = liveTime * multiplier (2 in the paper). */
    unsigned multiplier = 2;
    std::uint32_t llcSets = 2048;

    /** Live-time table plus one per-set coarse-tick counter. */
    constexpr std::uint64_t
    storageBits() const
    {
        const budget::TableSpec table{
            std::uint64_t(1) << tableIndexBits, timeBits};
        const budget::TableSpec set_counters{llcSets, timeBits};
        return (table.total() + set_counters.total()).count();
    }

    /** Fill tick + last touch (quantized) + prediction bit. */
    constexpr std::uint64_t
    metadataBitsPerBlock() const
    {
        return timeBits * 2 + 1;
    }
};

class TimeBasedPredictor final : public DeadBlockPredictor,
                                 public LivenessProbe
{
  public:
    explicit TimeBasedPredictor(const TimeBasedConfig &cfg = {});

    bool onAccess(std::uint32_t set, const Access &a) override;
    void onFill(std::uint32_t set, const Access &a) override;
    void onEvict(std::uint32_t set, const Access &a) override;
    bool isDeadNow(std::uint32_t set, Addr block_addr) const override;
    const LivenessProbe *livenessProbe() const override
    {
        return this;
    }

    std::string name() const override { return "time-based"; }
    std::uint64_t storageBits() const override;
    std::uint64_t metadataBitsPerBlock() const override;

    /** Learned live time for a PC (test hook; 0 = unknown). */
    std::uint32_t learnedLiveTime(PC pc) const;

  private:
    struct BlockMeta
    {
        std::uint32_t tableIndex = 0;
        std::uint32_t fillTick = 0;
        std::uint32_t lastTouch = 0;
    };

    std::uint32_t
    tableIndexOf(PC pc) const
    {
        return static_cast<std::uint32_t>(
            makeSignature(pc, cfg_.tableIndexBits));
    }

    TimeBasedConfig cfg_;
    std::uint32_t timeMax_;
    /** Exponential-average live time per fill-PC signature. */
    std::vector<std::uint32_t> liveTime_;
    std::vector<std::uint32_t> setTicks_;
    std::unordered_map<Addr, BlockMeta> meta_;
};

} // namespace sdbp

#endif // SDBP_PREDICTOR_TIME_BASED_HH
