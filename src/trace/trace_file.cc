#include "trace/trace_file.hh"

#include <cstring>

#include "util/logging.hh"

namespace sdbp
{

TraceWriter::TraceWriter(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_)
        fatal("TraceWriter: cannot open '" + path + "'");
    const NativeTraceHeader header{kNativeTraceMagic,
                                   kNativeTraceVersion, 0};
    if (std::fwrite(&header, sizeof(header), 1, file_) != 1)
        fatal("TraceWriter: header write failed");
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::append(const Access &rec)
{
    if (!file_)
        fatal("TraceWriter: append after close");
    TraceFileRecord r;
    r.pc = rec.pc;
    r.addr = rec.addr;
    r.gap = rec.gap;
    r.isWrite = rec.isWrite ? 1 : 0;
    r.dependsOnPrevLoad = rec.dependsOnPrevLoad ? 1 : 0;
    r.pad = 0;
    if (std::fwrite(&r, sizeof(r), 1, file_) != 1)
        fatal("TraceWriter: record write failed");
    ++count_;
}

void
TraceWriter::close()
{
    if (!file_)
        return;
    // Patch the record count into the header.
    const NativeTraceHeader header{kNativeTraceMagic,
                                   kNativeTraceVersion, count_};
    std::fseek(file_, 0, SEEK_SET);
    if (std::fwrite(&header, sizeof(header), 1, file_) != 1)
        fatal("TraceWriter: header rewrite failed");
    std::fclose(file_);
    file_ = nullptr;
}

std::vector<Access>
readTraceFile(const std::string &path)
{
    NativeTraceReader reader(path);
    std::vector<Access> records;
    records.reserve(reader.declaredRecords());
    Access batch[1024];
    for (;;) {
        const std::size_t n =
            reader.readBatch(std::span<Access>(batch));
        if (n == 0)
            break;
        records.insert(records.end(), batch, batch + n);
    }
    if (records.size() != reader.declaredRecords())
        fatal("trace '" + path + "' record count mismatch");
    return records;
}

void
captureTrace(AccessGenerator &gen, std::uint64_t n,
             const std::string &path)
{
    TraceWriter writer(path);
    for (std::uint64_t i = 0; i < n; ++i)
        writer.append(gen.next());
    writer.close();
}

TraceReplayGenerator::TraceReplayGenerator(
    std::vector<Access> records)
    : records_(std::move(records))
{
    if (records_.empty())
        fatal("TraceReplayGenerator: empty trace");
    knownSize_ = records_.size();
}

TraceReplayGenerator::TraceReplayGenerator(const std::string &path)
    : TraceReplayGenerator(readTraceFile(path))
{
}

TraceReplayGenerator::TraceReplayGenerator(
    std::unique_ptr<TraceReader> reader, std::size_t ring_records)
    : reader_(std::move(reader))
{
    if (ring_records == 0)
        fatal("TraceReplayGenerator: ring must hold records");
    ring_.resize(ring_records);
    refill();
    if (ringFill_ == 0)
        fatal("TraceReplayGenerator: empty trace '" +
              reader_->source() + "'");
}

void
TraceReplayGenerator::refill()
{
    ringPos_ = 0;
    ringFill_ = reader_->readBatch(std::span<Access>(ring_));
    if (ringFill_ > 0) {
        streamed_ += ringFill_;
        return;
    }
    // End of trace: remember its length, wrap around.
    knownSize_ = streamed_;
    streamed_ = 0;
    ++loops_;
    reader_->rewind();
    ringFill_ = reader_->readBatch(std::span<Access>(ring_));
    streamed_ = ringFill_;
    if (ringFill_ == 0)
        fatal("TraceReplayGenerator: trace '" + reader_->source() +
              "' vanished on rewind");
}

void
TraceReplayGenerator::nextBatch(std::span<Access> out)
{
    if (!reader_) {
        for (auto &rec : out) {
            rec = records_[pos_];
            if (++pos_ == records_.size()) {
                pos_ = 0;
                ++loops_;
            }
        }
        return;
    }
    std::size_t produced = 0;
    while (produced < out.size()) {
        if (ringPos_ == ringFill_)
            refill();
        const std::size_t take = std::min(out.size() - produced,
                                          ringFill_ - ringPos_);
        std::memcpy(out.data() + produced, ring_.data() + ringPos_,
                    take * sizeof(Access));
        ringPos_ += take;
        produced += take;
    }
}

void
TraceReplayGenerator::reset()
{
    loops_ = 0;
    if (!reader_) {
        pos_ = 0;
        return;
    }
    reader_->rewind();
    streamed_ = 0;
    ringPos_ = ringFill_ = 0;
    refill();
    loops_ = 0; // refill of a drained ring must not count as a loop
}

} // namespace sdbp
