#include "trace/trace_file.hh"

#include <cstring>

#include "util/logging.hh"

namespace sdbp
{

namespace
{

constexpr std::uint64_t kMagic = 0x534442505452ull; // "SDBPTR"
constexpr std::uint64_t kVersion = 1;

struct FileHeader
{
    std::uint64_t magic;
    std::uint64_t version;
    std::uint64_t count;
};
static_assert(sizeof(FileHeader) == 24, "stable on-disk layout");

} // anonymous namespace

TraceWriter::TraceWriter(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_)
        fatal("TraceWriter: cannot open '" + path + "'");
    const FileHeader header{kMagic, kVersion, 0};
    if (std::fwrite(&header, sizeof(header), 1, file_) != 1)
        fatal("TraceWriter: header write failed");
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::append(const Access &rec)
{
    if (!file_)
        fatal("TraceWriter: append after close");
    TraceFileRecord r;
    r.pc = rec.pc;
    r.addr = rec.addr;
    r.gap = rec.gap;
    r.isWrite = rec.isWrite ? 1 : 0;
    r.dependsOnPrevLoad = rec.dependsOnPrevLoad ? 1 : 0;
    r.pad = 0;
    if (std::fwrite(&r, sizeof(r), 1, file_) != 1)
        fatal("TraceWriter: record write failed");
    ++count_;
}

void
TraceWriter::close()
{
    if (!file_)
        return;
    // Patch the record count into the header.
    const FileHeader header{kMagic, kVersion, count_};
    std::fseek(file_, 0, SEEK_SET);
    if (std::fwrite(&header, sizeof(header), 1, file_) != 1)
        fatal("TraceWriter: header rewrite failed");
    std::fclose(file_);
    file_ = nullptr;
}

std::vector<Access>
readTraceFile(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        fatal("readTraceFile: cannot open '" + path + "'");
    FileHeader header{};
    if (std::fread(&header, sizeof(header), 1, file) != 1)
        fatal("readTraceFile: truncated header in '" + path + "'");
    if (header.magic != kMagic)
        fatal("readTraceFile: '" + path + "' is not an sdbp trace");
    if (header.version != kVersion)
        fatal("readTraceFile: unsupported trace version");

    std::vector<Access> records;
    records.reserve(header.count);
    for (std::uint64_t i = 0; i < header.count; ++i) {
        TraceFileRecord r{};
        if (std::fread(&r, sizeof(r), 1, file) != 1)
            fatal("readTraceFile: truncated record in '" + path + "'");
        Access rec;
        rec.gap = r.gap;
        rec.pc = r.pc;
        rec.addr = r.addr;
        rec.isWrite = r.isWrite != 0;
        rec.dependsOnPrevLoad = r.dependsOnPrevLoad != 0;
        records.push_back(rec);
    }
    std::fclose(file);
    return records;
}

void
captureTrace(AccessGenerator &gen, std::uint64_t n,
             const std::string &path)
{
    TraceWriter writer(path);
    for (std::uint64_t i = 0; i < n; ++i)
        writer.append(gen.next());
    writer.close();
}

TraceReplayGenerator::TraceReplayGenerator(
    std::vector<Access> records)
    : records_(std::move(records))
{
    if (records_.empty())
        fatal("TraceReplayGenerator: empty trace");
}

TraceReplayGenerator::TraceReplayGenerator(const std::string &path)
    : TraceReplayGenerator(readTraceFile(path))
{
}

Access
TraceReplayGenerator::next()
{
    const Access rec = records_[pos_];
    if (++pos_ == records_.size()) {
        pos_ = 0;
        ++loops_;
    }
    return rec;
}

void
TraceReplayGenerator::nextBatch(std::span<Access> out)
{
    for (auto &rec : out)
        rec = next();
}

void
TraceReplayGenerator::reset()
{
    pos_ = 0;
    loops_ = 0;
}

} // namespace sdbp
