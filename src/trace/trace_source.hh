/**
 * @file
 * The unified TraceSource API: a TraceSpec names where a run's
 * reference stream comes from — the synthetic workload generators
 * (the default), a native sdbp trace file, or a ChampSim trace —
 * plus the interval-selection parameters, and makeTraceSource turns
 * it into the AccessGenerator the System consumes.  The spec is
 * embedded in RunConfig and round-trips through the sweep-manifest
 * JSON, so worker-mode sweeps transport trace-driven cells like any
 * other (DESIGN.md §17).
 */

#ifndef SDBP_TRACE_TRACE_SOURCE_HH
#define SDBP_TRACE_TRACE_SOURCE_HH

#include <memory>
#include <optional>
#include <string>

#include "trace/access.hh"

namespace sdbp
{

enum class TraceKind
{
    /** Synthetic workload generator named by the run's benchmark. */
    Synthetic,
    /** Native sdbp trace file (trace/trace_file.hh). */
    Native,
    /** ChampSim instruction trace (trace/champsim.hh). */
    ChampSim,
};

/** Stable spelling for manifests/CLI ("synthetic" etc.). */
std::string traceKindName(TraceKind kind);
std::optional<TraceKind> parseTraceKind(const std::string &name);

/** Where one run's reference stream comes from. */
struct TraceSpec
{
    TraceKind kind = TraceKind::Synthetic;
    /** Trace file path (Native/ChampSim; compressed .gz/.xz ok). */
    std::string path;
    /**
     * Interval-selection parameters (DESIGN.md §17): when both are
     * nonzero the run splits the trace into intervals of
     * intervalInstructions instructions, clusters their fingerprints
     * into selectClusters groups, and simulates one weighted
     * representative per cluster instead of the whole trace.
     */
    std::uint64_t intervalInstructions = 0;
    unsigned selectClusters = 0;

    bool synthetic() const { return kind == TraceKind::Synthetic; }
    bool selectionEnabled() const
    {
        return intervalInstructions > 0 && selectClusters > 0;
    }

    bool operator==(const TraceSpec &) const = default;
};

/**
 * Detect the on-disk kind of @p path by probing its (decompressed)
 * first bytes: the native magic wins, anything else is ChampSim.
 * fatal() when the file is unreadable or empty.
 */
TraceKind detectTraceKind(const std::string &path);

/**
 * Build the generator a run drives: the benchmark's synthetic
 * workload for TraceKind::Synthetic, a streaming TraceReplayGenerator
 * otherwise.  @p address_space disambiguates per-core instances the
 * way SyntheticWorkload does (file-backed kinds replay the same
 * trace on every core).
 */
std::unique_ptr<AccessGenerator>
makeTraceSource(const TraceSpec &spec, const std::string &benchmark,
                unsigned address_space = 0);

} // namespace sdbp

#endif // SDBP_TRACE_TRACE_SOURCE_HH
