/**
 * @file
 * Named synthetic workload profiles standing in for the 29 SPEC CPU
 * 2006 benchmarks of the paper (Table III) and the ten quad-core
 * mixes (Table IV).
 *
 * Each profile is a mix of streams whose working-set sizes, PC/death
 * correlation, and scan/generational/pointer-chase character mimic
 * the published memory behaviour of the benchmark it is named after.
 * See DESIGN.md §3 for the substitution argument.
 */

#ifndef SDBP_TRACE_SPEC_PROFILES_HH
#define SDBP_TRACE_SPEC_PROFILES_HH

#include <string>
#include <vector>

#include "trace/workload.hh"

namespace sdbp
{

/** @return profile for a benchmark name such as "456.hmmer". */
WorkloadProfile specProfile(const std::string &name);

/** All 29 benchmark names, in SPEC numeric order. */
const std::vector<std::string> &allSpecBenchmarks();

/**
 * The 19-benchmark memory-intensive subset used by Figures 4-9
 * (benchmarks whose misses drop by >= 1% under optimal replacement,
 * Sec. VI-A1).
 */
const std::vector<std::string> &memoryIntensiveSubset();

/** One quad-core workload mix of Table IV. */
struct MixProfile
{
    std::string name;
    std::vector<std::string> benchmarks; // exactly 4
};

/** The ten quad-core mixes of Table IV. */
const std::vector<MixProfile> &multicoreMixes();

} // namespace sdbp

#endif // SDBP_TRACE_SPEC_PROFILES_HH
