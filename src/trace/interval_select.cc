#include "trace/interval_select.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace sdbp
{

namespace
{

/** splitmix64 finalizer: spreads PCs across histogram buckets. */
std::uint64_t
mixPc(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

double
squaredDistance(const std::vector<double> &a,
                const std::vector<double> &b)
{
    double d = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double delta = a[i] - b[i];
        d += delta * delta;
    }
    return d;
}

} // namespace

IntervalSelection
selectIntervals(TraceReader &reader, const IntervalSelectConfig &cfg)
{
    if (cfg.intervalInstructions == 0 || cfg.clusters == 0)
        fatal("interval selection needs an interval length and a "
              "cluster count");
    if (cfg.dims == 0)
        fatal("interval selection needs fingerprint dimensions");

    // Pass over the trace: cut intervals at instruction boundaries
    // and histogram each one's access PCs.
    reader.rewind();
    IntervalSelection sel;
    std::vector<std::vector<double>> prints;
    std::vector<double> current(cfg.dims, 0.0);
    std::uint64_t interval_instr = 0;
    std::uint64_t interval_records = 0;
    std::uint64_t first_record = 0;

    auto cut = [&]() {
        TraceInterval iv;
        iv.firstRecord = first_record;
        iv.recordCount = interval_records;
        iv.instructions = interval_instr;
        sel.intervals.push_back(iv);
        // Normalize to unit L1 so interval length (the trailing one
        // may be short) does not dominate the distance metric.
        double total = 0.0;
        for (const double v : current)
            total += v;
        if (total > 0.0)
            for (double &v : current)
                v /= total;
        prints.push_back(current);
        std::fill(current.begin(), current.end(), 0.0);
        first_record += interval_records;
        interval_instr = 0;
        interval_records = 0;
    };

    Access batch[1024];
    for (;;) {
        const std::size_t n =
            reader.readBatch(std::span<Access>(batch));
        if (n == 0)
            break;
        for (std::size_t i = 0; i < n; ++i) {
            const Access &rec = batch[i];
            current[mixPc(rec.pc) % cfg.dims] += 1.0;
            interval_instr += rec.gap + 1;
            ++interval_records;
            sel.totalInstructions += rec.gap + 1;
            ++sel.totalRecords;
            if (interval_instr >= cfg.intervalInstructions)
                cut();
        }
    }
    if (interval_records > 0)
        cut();
    if (sel.intervals.empty())
        fatal("interval selection over empty trace '" +
              reader.source() + "'");

    const std::size_t n_intervals = sel.intervals.size();
    const unsigned k = static_cast<unsigned>(std::min<std::size_t>(
        cfg.clusters, n_intervals));

    // Deterministic k-means: centroids start at evenly spaced
    // intervals, assignment ties break toward the lower cluster
    // index, empty clusters keep their previous centroid.
    std::vector<std::vector<double>> centroids(k);
    for (unsigned c = 0; c < k; ++c)
        centroids[c] = prints[(static_cast<std::size_t>(c) *
                               n_intervals) / k];

    std::vector<unsigned> assign(n_intervals, 0);
    for (unsigned iter = 0; iter < cfg.maxIterations; ++iter) {
        bool changed = false;
        for (std::size_t i = 0; i < n_intervals; ++i) {
            unsigned best = 0;
            double best_d = std::numeric_limits<double>::infinity();
            for (unsigned c = 0; c < k; ++c) {
                const double d =
                    squaredDistance(prints[i], centroids[c]);
                if (d < best_d) {
                    best_d = d;
                    best = c;
                }
            }
            if (assign[i] != best) {
                assign[i] = best;
                changed = true;
            }
        }
        if (!changed && iter > 0)
            break;
        std::vector<std::vector<double>> sums(
            k, std::vector<double>(cfg.dims, 0.0));
        std::vector<std::uint64_t> counts(k, 0);
        for (std::size_t i = 0; i < n_intervals; ++i) {
            for (unsigned d = 0; d < cfg.dims; ++d)
                sums[assign[i]][d] += prints[i][d];
            ++counts[assign[i]];
        }
        for (unsigned c = 0; c < k; ++c) {
            if (counts[c] == 0)
                continue; // keep the previous centroid
            for (unsigned d = 0; d < cfg.dims; ++d)
                centroids[c][d] = sums[c][d] / counts[c];
        }
    }
    for (std::size_t i = 0; i < n_intervals; ++i)
        sel.intervals[i].cluster = assign[i];

    // Representative per cluster: the member closest to the final
    // centroid (ties toward the earlier interval); its weight is the
    // cluster's share of the trace's instructions.
    for (unsigned c = 0; c < k; ++c) {
        std::size_t best = n_intervals;
        double best_d = std::numeric_limits<double>::infinity();
        std::uint64_t cluster_instr = 0;
        for (std::size_t i = 0; i < n_intervals; ++i) {
            if (assign[i] != c)
                continue;
            cluster_instr += sel.intervals[i].instructions;
            const double d = squaredDistance(prints[i], centroids[c]);
            if (d < best_d) {
                best_d = d;
                best = i;
            }
        }
        if (best == n_intervals)
            continue; // empty cluster: nothing to represent
        RepresentativeInterval rep;
        rep.interval = best;
        rep.weight = static_cast<double>(cluster_instr) /
                     static_cast<double>(sel.totalInstructions);
        sel.reps.push_back(rep);
    }
    std::sort(sel.reps.begin(), sel.reps.end(),
              [](const RepresentativeInterval &a,
                 const RepresentativeInterval &b) {
                  return a.interval < b.interval;
              });
    return sel;
}

std::vector<std::vector<Access>>
collectIntervals(TraceReader &reader, const IntervalSelection &sel,
                 const std::vector<std::size_t> &wanted)
{
    // Sort the distinct interval indices so one sequential read of
    // the trace fills them all.
    std::vector<std::size_t> order(wanted);
    std::sort(order.begin(), order.end());
    order.erase(std::unique(order.begin(), order.end()), order.end());

    std::vector<std::vector<Access>> collected(order.size());
    reader.rewind();
    std::uint64_t record = 0;
    std::size_t next = 0;
    Access batch[1024];
    while (next < order.size()) {
        const std::size_t n =
            reader.readBatch(std::span<Access>(batch));
        if (n == 0)
            fatal("trace '" + reader.source() +
                  "' ended before the selected intervals");
        for (std::size_t i = 0; i < n && next < order.size(); ++i) {
            const TraceInterval &iv = sel.intervals[order[next]];
            if (record >= iv.firstRecord &&
                record < iv.firstRecord + iv.recordCount)
                collected[next].push_back(batch[i]);
            ++record;
            if (record == iv.firstRecord + iv.recordCount)
                ++next;
        }
    }

    std::vector<std::vector<Access>> out;
    out.reserve(wanted.size());
    for (const std::size_t idx : wanted) {
        const std::size_t slot = static_cast<std::size_t>(
            std::lower_bound(order.begin(), order.end(), idx) -
            order.begin());
        out.push_back(collected[slot]);
    }
    return out;
}

} // namespace sdbp
