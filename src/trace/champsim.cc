#include "trace/champsim.hh"

#include "util/logging.hh"

namespace sdbp
{

ChampSimTraceWriter::ChampSimTraceWriter(const std::string &path)
    : path_(path)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_)
        fatal("ChampSimTraceWriter: cannot open '" + path + "'");
}

ChampSimTraceWriter::~ChampSimTraceWriter()
{
    close();
}

void
ChampSimTraceWriter::write(const ChampSimRecord &r)
{
    if (std::fwrite(&r, sizeof(r), 1, file_) != 1)
        fatal("ChampSimTraceWriter: write failed on '" + path_ + "'");
    ++instructions_;
}

void
ChampSimTraceWriter::append(const Access &rec)
{
    if (!file_)
        fatal("ChampSimTraceWriter: append after close");
    // gap non-memory instructions first, then the access itself —
    // the decoder recovers gap by counting them.
    ChampSimRecord filler;
    filler.ip = kFillerPc;
    for (std::uint32_t i = 0; i < rec.gap; ++i)
        write(filler);

    ChampSimRecord mem;
    mem.ip = rec.pc;
    mem.sourceRegisters[0] =
        rec.dependsOnPrevLoad ? kLoadDestReg : kIndepReg;
    if (rec.isWrite) {
        mem.destinationMemory[0] = rec.addr;
    } else {
        mem.sourceMemory[0] = rec.addr;
        mem.destinationRegisters[0] = kLoadDestReg;
    }
    write(mem);
}

void
ChampSimTraceWriter::close()
{
    if (!file_)
        return;
    std::fclose(file_);
    file_ = nullptr;
}

std::uint64_t
recordChampSimTrace(AccessGenerator &gen, std::uint64_t instructions,
                    const std::string &path)
{
    ChampSimTraceWriter writer(path);
    while (writer.instructionsWritten() < instructions)
        writer.append(gen.next());
    writer.close();
    return writer.instructionsWritten();
}

// --- ChampSimTraceReader --------------------------------------------

ChampSimTraceReader::ChampSimTraceReader(const std::string &path)
    : input_(path)
{
}

bool
ChampSimTraceReader::decodeRecord(ChampSimRecord &r)
{
    const std::size_t got = input_.read(&r, sizeof(r));
    if (got == 0)
        return false;
    if (got != sizeof(r))
        fatal("truncated ChampSim record in trace '" + input_.path() +
              "'");
    return true;
}

std::size_t
ChampSimTraceReader::readBatch(std::span<Access> out)
{
    std::size_t produced = 0;
    while (produced < out.size()) {
        // Drain accesses already decoded from the current record.
        if (queuePos_ < queued_) {
            out[produced++] = queue_[queuePos_++];
            continue;
        }
        ChampSimRecord r;
        if (!decodeRecord(r))
            break;

        // Dependency recovery, ChampSim-style: the access depends on
        // the previous load iff a source register names that load's
        // destination register.
        bool depends = false;
        for (const std::uint8_t reg : r.sourceRegisters)
            depends |= reg != 0 && reg == lastLoadDest_;

        queued_ = queuePos_ = 0;
        bool is_load = false;
        for (const std::uint64_t addr : r.sourceMemory) {
            if (addr == 0)
                continue;
            Access rec;
            rec.pc = r.ip;
            rec.addr = addr;
            rec.dependsOnPrevLoad = depends;
            queue_[queued_++] = rec;
            is_load = true;
        }
        for (const std::uint64_t addr : r.destinationMemory) {
            if (addr == 0)
                continue;
            Access rec;
            rec.pc = r.ip;
            rec.addr = addr;
            rec.isWrite = true;
            rec.dependsOnPrevLoad = depends;
            queue_[queued_++] = rec;
        }
        if (queued_ == 0) {
            // Non-memory instruction: it becomes gap on the next
            // access.
            ++pendingGap_;
            continue;
        }
        // The accumulated gap belongs to the record's first access;
        // further operands of the same instruction carry gap 0.
        queue_[0].gap = pendingGap_;
        pendingGap_ = 0;
        if (is_load && r.destinationRegisters[0] != 0)
            lastLoadDest_ = r.destinationRegisters[0];
    }
    return produced;
}

void
ChampSimTraceReader::rewind()
{
    input_.rewind();
    pendingGap_ = 0;
    lastLoadDest_ = kLoadDestReg;
    queued_ = queuePos_ = 0;
}

} // namespace sdbp
