#include "trace/trace_reader.hh"

#include <cstring>

#include "trace/champsim.hh"
#include "trace/trace_file.hh"
#include "util/logging.hh"

namespace sdbp
{

namespace
{

/** Compression command for a path, empty for plain files. */
std::string
decompressCommand(const std::string &path)
{
    auto ends_with = [&path](const char *suffix) {
        const std::size_t n = std::strlen(suffix);
        return path.size() >= n &&
               path.compare(path.size() - n, n, suffix) == 0;
    };
    if (ends_with(".gz"))
        return "zcat";
    if (ends_with(".xz"))
        return "xzcat";
    return {};
}

} // anonymous namespace

TraceInput::TraceInput(const std::string &path) : path_(path)
{
    open();
}

TraceInput::~TraceInput()
{
    close();
}

void
TraceInput::open()
{
    const std::string cmd = decompressCommand(path_);
    if (cmd.empty()) {
        piped_ = false;
        file_ = std::fopen(path_.c_str(), "rb");
        if (!file_)
            fatal("cannot open trace file '" + path_ + "'");
        return;
    }
#if defined(__unix__) || defined(__APPLE__)
    // The path is single-quoted for the shell; a quote inside the
    // path would break out of it, so refuse rather than mis-spawn.
    if (path_.find('\'') != std::string::npos)
        fatal("trace path '" + path_ + "' contains a quote");
    piped_ = true;
    const std::string full = cmd + " -- '" + path_ + "'";
    file_ = ::popen(full.c_str(), "r");
    if (!file_)
        fatal("cannot spawn '" + cmd + "' for trace '" + path_ + "'");
#else
    fatal("compressed trace '" + path_ +
          "' needs popen (unsupported platform)");
#endif
}

void
TraceInput::close()
{
    if (!file_)
        return;
#if defined(__unix__) || defined(__APPLE__)
    if (piped_)
        ::pclose(file_);
    else
        std::fclose(file_);
#else
    std::fclose(file_);
#endif
    file_ = nullptr;
}

std::size_t
TraceInput::read(void *buf, std::size_t bytes)
{
    // fread on a pipe may return short counts mid-stream; loop until
    // the request is filled or the stream genuinely ends.
    std::size_t got = 0;
    auto *out = static_cast<unsigned char *>(buf);
    while (got < bytes) {
        const std::size_t n =
            std::fread(out + got, 1, bytes - got, file_);
        if (n == 0)
            break;
        got += n;
    }
    return got;
}

void
TraceInput::rewind()
{
    if (!piped_) {
        std::fseek(file_, 0, SEEK_SET);
        return;
    }
    // Pipes cannot seek; re-spawn the decompressor.
    close();
    open();
}

// --- NativeTraceReader ----------------------------------------------

NativeTraceReader::NativeTraceReader(const std::string &path)
    : input_(path)
{
    readHeader();
}

void
NativeTraceReader::readHeader()
{
    NativeTraceHeader header{};
    if (input_.read(&header, sizeof(header)) != sizeof(header))
        fatal("truncated header in trace '" + input_.path() + "'");
    if (header.magic != kNativeTraceMagic)
        fatal("'" + input_.path() + "' is not an sdbp trace");
    if (header.version != kNativeTraceVersion)
        fatal("unsupported trace version in '" + input_.path() + "'");
    declared_ = header.count;
    consumed_ = 0;
}

std::size_t
NativeTraceReader::readBatch(std::span<Access> out)
{
    std::size_t produced = 0;
    while (produced < out.size() && consumed_ < declared_) {
        TraceFileRecord r{};
        if (input_.read(&r, sizeof(r)) != sizeof(r))
            fatal("truncated record in trace '" + input_.path() + "'");
        Access rec;
        rec.pc = r.pc;
        rec.addr = r.addr;
        rec.gap = r.gap;
        rec.isWrite = r.isWrite != 0;
        rec.dependsOnPrevLoad = r.dependsOnPrevLoad != 0;
        out[produced++] = rec;
        ++consumed_;
    }
    return produced;
}

void
NativeTraceReader::rewind()
{
    input_.rewind();
    readHeader();
}

// --- VectorTraceReader ----------------------------------------------

VectorTraceReader::VectorTraceReader(std::vector<Access> records,
                                     std::string label)
    : records_(std::move(records)), label_(std::move(label))
{
}

std::size_t
VectorTraceReader::readBatch(std::span<Access> out)
{
    std::size_t produced = 0;
    while (produced < out.size() && pos_ < records_.size())
        out[produced++] = records_[pos_++];
    return produced;
}

// --- Format dispatch ------------------------------------------------

std::unique_ptr<TraceReader>
openTraceReader(const std::string &path)
{
    // Probe the first 8 decoded bytes for the native magic; ChampSim
    // traces have no magic, so everything else falls through to the
    // ChampSim decoder (whose record validation catches junk).
    std::uint64_t probe = 0;
    std::size_t got = 0;
    {
        TraceInput input(path);
        got = input.read(&probe, sizeof(probe));
    }
    if (got == 0)
        fatal("trace '" + path + "' is empty (or not decompressible)");
    if (got == sizeof(probe) && probe == kNativeTraceMagic)
        return std::make_unique<NativeTraceReader>(path);
    return std::make_unique<ChampSimTraceReader>(path);
}

} // namespace sdbp
