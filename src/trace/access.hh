/**
 * @file
 * The single memory-access record threaded end-to-end through the
 * simulator: workload generators produce it, the CPU timing model
 * consumes the gap, the cache hierarchy and replacement/prediction
 * hooks read the rest.  One struct, no per-layer repacking
 * (DESIGN.md §12).
 */

#ifndef SDBP_TRACE_ACCESS_HH
#define SDBP_TRACE_ACCESS_HH

#include <cstdint>
#include <span>

#include "util/types.hh"

namespace sdbp
{

/** Cache block size used throughout the paper's configuration. */
constexpr unsigned blockBytes = 64;
constexpr unsigned blockOffsetBits = 6;

/**
 * One dynamic memory reference.
 *
 * Replaces the former trio of MemAccess (generator output),
 * TraceRecord (gap + access) and cache AccessInfo (policy hook
 * argument): every layer reads the fields it cares about from the
 * same record.
 */
struct Access
{
    /** PC of the memory instruction. */
    PC pc = 0;
    /** Byte address accessed. */
    Addr addr = 0;
    /** Non-memory instructions preceding this access. */
    std::uint32_t gap = 0;
    /** Core/thread issuing the access (the System stamps this). */
    ThreadId thread = 0;
    /** True for stores. */
    bool isWrite = false;
    /** True for writebacks travelling down the hierarchy. */
    bool isWriteback = false;
    /**
     * True when this load's address depends on the value of the
     * previous load from the same stream (pointer chasing); the
     * timing model serializes such loads.
     */
    bool dependsOnPrevLoad = false;

    /** Block-aligned address. */
    Addr blockAddr() const { return addr >> blockOffsetBits; }

    /** A demand access landing on block @p block_addr (tests,
     *  prefetch fills, synthesized eviction notices). */
    static constexpr Access
    atBlock(Addr block_addr, PC pc = 0, ThreadId thread = 0)
    {
        Access a;
        a.pc = pc;
        a.addr = block_addr << blockOffsetBits;
        a.thread = thread;
        return a;
    }

    /** The writeback of @p block_addr issued by @p thread. */
    static constexpr Access
    writebackOf(Addr block_addr, ThreadId thread)
    {
        Access a = atBlock(block_addr, 0, thread);
        a.isWrite = true;
        a.isWriteback = true;
        return a;
    }
};

/**
 * Abstract source of a memory reference stream.
 *
 * Generators are deterministic: after reset() the same sequence is
 * produced again, which is what lets the optimal-policy replay and
 * the multi-core restart methodology work without storing traces.
 */
class AccessGenerator
{
  public:
    virtual ~AccessGenerator() = default;

    /**
     * Fill @p out with the next out.size() records — the sole
     * virtual primitive of the generator protocol (the per-record
     * `virtual next()` override point is retired; batching is how
     * every consumer amortizes the dispatch).  Callers that buffer
     * ahead own the unconsumed tail: after a run that read ahead,
     * the generator's position is whatever the batching left it at.
     */
    virtual void nextBatch(std::span<Access> out) = 0;

    /** Restart the stream from the beginning. */
    virtual void reset() = 0;

    /**
     * Convenience for record-at-a-time callers (tests, capture
     * tools): a one-element batch.  Non-virtual on purpose — the
     * record sequence is always the one nextBatch produces.
     */
    Access
    next()
    {
        Access rec;
        nextBatch(std::span<Access>(&rec, 1));
        return rec;
    }
};

} // namespace sdbp

#endif // SDBP_TRACE_ACCESS_HH
