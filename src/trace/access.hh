/**
 * @file
 * The memory access record exchanged between workload generators,
 * the CPU timing model and the cache hierarchy.
 */

#ifndef SDBP_TRACE_ACCESS_HH
#define SDBP_TRACE_ACCESS_HH

#include <cstdint>

#include "util/types.hh"

namespace sdbp
{

/** Cache block size used throughout the paper's configuration. */
constexpr unsigned blockBytes = 64;
constexpr unsigned blockOffsetBits = 6;

/** One dynamic memory access. */
struct MemAccess
{
    /** PC of the memory instruction. */
    PC pc = 0;
    /** Byte address accessed. */
    Addr addr = 0;
    /** True for stores. */
    bool isWrite = false;
    /**
     * True when this load's address depends on the value of the
     * previous load from the same stream (pointer chasing); the
     * timing model serializes such loads.
     */
    bool dependsOnPrevLoad = false;

    /** Block-aligned address. */
    Addr blockAddr() const { return addr >> blockOffsetBits; }
};

/**
 * One record of a trace: a memory access preceded by @c gap
 * non-memory instructions.
 */
struct TraceRecord
{
    /** Number of non-memory instructions before the access. */
    std::uint32_t gap = 0;
    MemAccess access;
};

/**
 * Abstract source of a memory reference stream.
 *
 * Generators are deterministic: after reset() the same sequence is
 * produced again, which is what lets the optimal-policy replay and
 * the multi-core restart methodology work without storing traces.
 */
class AccessGenerator
{
  public:
    virtual ~AccessGenerator() = default;

    /** Produce the next record. */
    virtual TraceRecord next() = 0;

    /** Restart the stream from the beginning. */
    virtual void reset() = 0;
};

} // namespace sdbp

#endif // SDBP_TRACE_ACCESS_HH
