#include "trace/trace_source.hh"

#include <cstring>

#include "trace/champsim.hh"
#include "trace/spec_profiles.hh"
#include "trace/trace_file.hh"
#include "trace/trace_reader.hh"
#include "trace/workload.hh"
#include "util/logging.hh"

namespace sdbp
{

std::string
traceKindName(TraceKind kind)
{
    switch (kind) {
      case TraceKind::Synthetic:
        return "synthetic";
      case TraceKind::Native:
        return "native";
      case TraceKind::ChampSim:
        return "champsim";
    }
    panic("traceKindName: bad kind");
}

std::optional<TraceKind>
parseTraceKind(const std::string &name)
{
    if (name == "synthetic")
        return TraceKind::Synthetic;
    if (name == "native")
        return TraceKind::Native;
    if (name == "champsim")
        return TraceKind::ChampSim;
    return std::nullopt;
}

TraceKind
detectTraceKind(const std::string &path)
{
    TraceInput input(path);
    std::uint64_t magic = 0;
    if (input.read(&magic, sizeof(magic)) != sizeof(magic))
        fatal("trace '" + path + "' is empty (or not decompressible)");
    return magic == kNativeTraceMagic ? TraceKind::Native
                                      : TraceKind::ChampSim;
}

std::unique_ptr<AccessGenerator>
makeTraceSource(const TraceSpec &spec, const std::string &benchmark,
                unsigned address_space)
{
    switch (spec.kind) {
      case TraceKind::Synthetic:
        return std::make_unique<SyntheticWorkload>(
            specProfile(benchmark), address_space);
      case TraceKind::Native:
      case TraceKind::ChampSim:
        if (spec.path.empty())
            fatal("trace spec of kind '" + traceKindName(spec.kind) +
                  "' needs a path");
        // openTraceReader probes the actual format, so a spec whose
        // declared kind disagrees with the file still replays the
        // file faithfully.
        return std::make_unique<TraceReplayGenerator>(
            openTraceReader(spec.path));
    }
    panic("makeTraceSource: bad kind");
}

} // namespace sdbp
