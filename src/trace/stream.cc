#include "trace/stream.hh"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace sdbp
{

Stream::Stream(const StreamConfig &cfg, Addr base_addr, PC base_pc,
               std::uint64_t seed)
    : cfg_(cfg), baseAddr_(base_addr), basePc_(base_pc), seed_(seed),
      rng_(seed)
{
    assert(cfg_.regionBlocks > 0);
    assert(cfg_.touchesPerBlock > 0);
    assert(cfg_.numPcs > 0);
    assert(cfg_.strideBlocks > 0);

    // A multiplicative permutation needs a multiplier coprime to the
    // region size.
    permMul_ = 0x9e3779b9ULL | 1;
    while (std::gcd(permMul_, cfg_.regionBlocks) != 1)
        permMul_ += 2;
    permAdd_ = seed % cfg_.regionBlocks;
    strideStep_ = cfg_.strideBlocks % cfg_.regionBlocks;
    permStep_ = permMul_ % cfg_.regionBlocks;

    reset();
}

void
Stream::reset()
{
    rng_.reseed(seed_);
    pos_ = 0;
    touch_ = 0;
    epoch_ = 0;
    generation_ = 0;
    pcCursor_ = 0;
    strideBlock_ = 0;
    permBlock_ = permAdd_;
    startGeneration();
    if (cfg_.kind == PatternKind::RandomInRegion)
        pos_ = rng_.below(cfg_.regionBlocks);
}

void
Stream::startGeneration()
{
    pos_ = 0;
    epoch_ = 0;
    if (cfg_.randomEpochMax > 0) {
        generationEpochs_ =
            1 + static_cast<unsigned>(rng_.below(cfg_.randomEpochMax));
        // The per-epoch PC comes from a pool shared between dying
        // and surviving epochs, so the last-touch PC is ambiguous.
        epochPcIndex_ = static_cast<unsigned>(
            rng_.below(std::max(1u, cfg_.randomEpochMax)));
    } else {
        generationEpochs_ = std::max(1u, cfg_.epochs);
        if (cfg_.extraEpochProb > 0.0 &&
            rng_.uniform() < cfg_.extraEpochProb) {
            ++generationEpochs_;
        }
        epochPcIndex_ = 0;
    }
    rollEpochScans();
}

void
Stream::rollEpochScans()
{
    scansLeft_ = 1;
    if (cfg_.rescanProb > 0.0 && rng_.uniform() < cfg_.rescanProb)
        scansLeft_ = 2;
}

std::uint64_t
Stream::permute(std::uint64_t idx) const
{
    return (idx * permMul_ + permAdd_) % cfg_.regionBlocks;
}

Addr
Stream::blockToAddr(std::uint64_t block) const
{
    Addr region_base = baseAddr_;
    if (cfg_.kind == PatternKind::Generational) {
        region_base += (generation_ % generationWindow) *
            cfg_.regionBlocks * blockBytes;
    }
    return region_base + block * blockBytes;
}

std::uint64_t
Stream::footprintBlocks() const
{
    if (cfg_.kind == PatternKind::Generational)
        return cfg_.regionBlocks * generationWindow;
    return cfg_.regionBlocks;
}

Access
Stream::next()
{
    // The incremental cursors (pcCursor_, strideBlock_, permBlock_)
    // stand in for the modulo expressions of the original
    // formulation: next() runs once per generated record, and the
    // hardware divides were the most expensive instructions in the
    // whole generator.
    std::uint64_t block = 0;
    unsigned pc_index = pcCursor_; // == touch_ % numPcs
    switch (cfg_.kind) {
      case PatternKind::Sequential:
        block = pos_;
        break;
      case PatternKind::Strided:
        block = strideBlock_; // == (pos_ * strideBlocks) % region
        break;
      case PatternKind::RandomInRegion:
        block = pos_;
        break;
      case PatternKind::PointerChase:
        block = permBlock_; // == permute(pos_)
        break;
      case PatternKind::Generational:
        block = pos_;
        pc_index = epochPcIndex_ * cfg_.numPcs + pcCursor_;
        break;
    }

    Access acc;
    acc.addr = blockToAddr(block);
    acc.pc = basePc_ + pc_index * 4;
    acc.isWrite = rng_.uniform() < cfg_.writeFraction;
    acc.dependsOnPrevLoad =
        cfg_.kind == PatternKind::PointerChase && !acc.isWrite;

    if (++touch_ >= cfg_.touchesPerBlock) {
        touch_ = 0;
        pcCursor_ = 0;
        advance();
    } else if (++pcCursor_ >= cfg_.numPcs) {
        pcCursor_ = 0;
    }
    return acc;
}

void
Stream::advance()
{
    switch (cfg_.kind) {
      case PatternKind::Sequential:
        if (++pos_ >= cfg_.regionBlocks)
            pos_ = 0;
        break;
      case PatternKind::PointerChase:
        if (++pos_ >= cfg_.regionBlocks) {
            pos_ = 0;
            permBlock_ = permAdd_; // == permute(0)
        } else {
            // permute(pos_ + 1) = permute(pos_) + permMul_ (mod
            // region); both addends are already reduced, so one
            // conditional subtract replaces the divide.
            permBlock_ += permStep_;
            if (permBlock_ >= cfg_.regionBlocks)
                permBlock_ -= cfg_.regionBlocks;
        }
        break;
      case PatternKind::Strided: {
        const std::uint64_t steps =
            (cfg_.regionBlocks + cfg_.strideBlocks - 1) /
            cfg_.strideBlocks;
        if (++pos_ >= steps) {
            pos_ = 0;
            strideBlock_ = 0;
        } else {
            strideBlock_ += strideStep_;
            if (strideBlock_ >= cfg_.regionBlocks)
                strideBlock_ -= cfg_.regionBlocks;
        }
        break;
      }
      case PatternKind::RandomInRegion: {
        if (cfg_.popularitySkew <= 1) {
            pos_ = rng_.below(cfg_.regionBlocks);
        } else {
            double u = rng_.uniform();
            double v = u;
            for (unsigned k = 1; k < cfg_.popularitySkew; ++k)
                v *= u;
            pos_ = std::min<std::uint64_t>(
                static_cast<std::uint64_t>(
                    v * static_cast<double>(cfg_.regionBlocks)),
                cfg_.regionBlocks - 1);
        }
        break;
      }
      case PatternKind::Generational:
        if (++pos_ >= cfg_.regionBlocks) {
            pos_ = 0;
            if (scansLeft_ > 1) {
                // Re-scan the region within the same epoch.
                --scansLeft_;
                break;
            }
            if (++epoch_ >= generationEpochs_) {
                ++generation_;
                startGeneration();
            } else if (cfg_.randomEpochMax > 0) {
                epochPcIndex_ = static_cast<unsigned>(
                    rng_.below(std::max(1u, cfg_.randomEpochMax)));
            } else {
                epochPcIndex_ = epoch_;
            }
            rollEpochScans();
        }
        break;
    }
}

} // namespace sdbp
