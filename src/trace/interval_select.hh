/**
 * @file
 * SimPoint-style interval selection (DESIGN.md §17): split a trace
 * into fixed-length instruction intervals, fingerprint each with a
 * BBV-style PC-hashed access histogram, cluster the fingerprints
 * with deterministic k-means, and simulate only one representative
 * interval per cluster, weighted by the cluster's share of the
 * trace's instructions.  Everything here is pure analysis over a
 * TraceReader; the runner owns actually simulating the picks.
 */

#ifndef SDBP_TRACE_INTERVAL_SELECT_HH
#define SDBP_TRACE_INTERVAL_SELECT_HH

#include <cstdint>
#include <vector>

#include "trace/access.hh"
#include "trace/trace_reader.hh"

namespace sdbp
{

struct IntervalSelectConfig
{
    /** Interval length in instructions (gap + 1 per access). */
    std::uint64_t intervalInstructions = 0;
    /** Number of clusters / representatives (k). */
    unsigned clusters = 0;
    /** Fingerprint dimensions (PC hash buckets). */
    unsigned dims = 64;
    /** k-means iteration cap; it usually converges much earlier. */
    unsigned maxIterations = 32;
};

/** One fixed-length interval of the trace. */
struct TraceInterval
{
    /** Index of the interval's first record in the trace. */
    std::uint64_t firstRecord = 0;
    std::uint64_t recordCount = 0;
    /** Instructions the interval covers (last one may be short). */
    std::uint64_t instructions = 0;
    /** Cluster this interval was assigned to. */
    unsigned cluster = 0;
};

/** One simulated pick: an interval standing for its whole cluster. */
struct RepresentativeInterval
{
    /** Index into IntervalSelection::intervals. */
    std::size_t interval = 0;
    /** Cluster's share of total instructions, in [0, 1]. */
    double weight = 0.0;
};

struct IntervalSelection
{
    std::uint64_t totalInstructions = 0;
    std::uint64_t totalRecords = 0;
    std::vector<TraceInterval> intervals;
    /** Sorted by interval index; weights sum to 1. */
    std::vector<RepresentativeInterval> reps;
};

/**
 * Fingerprint + cluster the whole trace behind @p reader (which is
 * rewound first) and pick representatives.  Deterministic: identical
 * traces and configs yield identical selections on any host.
 * fatal() on a config without interval length or clusters, or an
 * empty trace.  When the trace has fewer intervals than clusters,
 * every interval becomes its own representative.
 */
IntervalSelection selectIntervals(TraceReader &reader,
                                  const IntervalSelectConfig &cfg);

/**
 * Second pass: materialize the records of the listed intervals (by
 * index into @p sel.intervals, any order, duplicates ok) in one
 * sequential read of @p reader.  Returns them in the same order as
 * @p wanted.
 */
std::vector<std::vector<Access>>
collectIntervals(TraceReader &reader, const IntervalSelection &sel,
                 const std::vector<std::size_t> &wanted);

} // namespace sdbp

#endif // SDBP_TRACE_INTERVAL_SELECT_HH
