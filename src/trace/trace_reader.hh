/**
 * @file
 * Streaming trace ingestion: a byte source that transparently
 * decompresses .gz/.xz files (popen to zcat/xzcat — no link-time
 * dependency) and the TraceReader interface every on-disk trace
 * format implements.  Readers decode into trace::Access in batches
 * and never materialize the whole trace, so arbitrarily large
 * reference traces stream in bounded memory (DESIGN.md §17).
 */

#ifndef SDBP_TRACE_TRACE_READER_HH
#define SDBP_TRACE_TRACE_READER_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "trace/access.hh"

namespace sdbp
{

/**
 * A (possibly compressed) byte stream over one trace file.  Plain
 * files use fopen; paths ending in .gz/.xz are piped through
 * zcat/xzcat, selected purely by extension.  Malformed paths and
 * open failures are fatal(): a missing trace is a user error, and
 * the one-line diagnostic is the CLI contract (DESIGN.md §11).
 */
class TraceInput
{
  public:
    explicit TraceInput(const std::string &path);
    ~TraceInput();

    TraceInput(const TraceInput &) = delete;
    TraceInput &operator=(const TraceInput &) = delete;

    /** Read up to @p bytes; short counts only at end of stream. */
    std::size_t read(void *buf, std::size_t bytes);

    /** Reopen the stream at the beginning (pipes are re-spawned). */
    void rewind();

    const std::string &path() const { return path_; }
    bool compressed() const { return piped_; }

  private:
    void open();
    void close();

    std::string path_;
    std::FILE *file_ = nullptr;
    bool piped_ = false;
};

/**
 * Abstract decoder of one trace file into Access records.  One
 * readBatch call decodes up to out.size() records and reports how
 * many it produced; 0 means end of trace.  rewind() restarts the
 * decode from the first record.  Corrupt input (bad magic, truncated
 * record) is fatal() with the offending path in the message.
 */
class TraceReader
{
  public:
    virtual ~TraceReader() = default;

    virtual std::size_t readBatch(std::span<Access> out) = 0;
    virtual void rewind() = 0;

    /** Display name of the source (file path, or a label). */
    virtual const std::string &source() const = 0;
};

/** Streaming reader for the native sdbp trace format. */
class NativeTraceReader final : public TraceReader
{
  public:
    explicit NativeTraceReader(const std::string &path);

    std::size_t readBatch(std::span<Access> out) override;
    void rewind() override;
    const std::string &source() const override
    {
        return input_.path();
    }

    /** Record count declared by the header. */
    std::uint64_t declaredRecords() const { return declared_; }

  private:
    void readHeader();

    TraceInput input_;
    std::uint64_t declared_ = 0;
    std::uint64_t consumed_ = 0;
};

/**
 * In-memory reader over a materialized record vector — the adapter
 * that lets interval selection and tests run on synthetic streams
 * without touching the filesystem.
 */
class VectorTraceReader final : public TraceReader
{
  public:
    explicit VectorTraceReader(std::vector<Access> records,
                               std::string label = "<memory>");

    std::size_t readBatch(std::span<Access> out) override;
    void rewind() override { pos_ = 0; }
    const std::string &source() const override { return label_; }

  private:
    std::vector<Access> records_;
    std::string label_;
    std::size_t pos_ = 0;
};

/**
 * Open @p path with the right decoder: the first bytes are probed
 * for the native magic; anything else is treated as a ChampSim
 * trace.  Compression is handled either way.  fatal() on unreadable
 * or unrecognizably corrupt files.
 */
std::unique_ptr<TraceReader> openTraceReader(const std::string &path);

} // namespace sdbp

#endif // SDBP_TRACE_TRACE_READER_HH
