/**
 * @file
 * ChampSim classic trace format: 64-byte per-*instruction* records
 * (ip, branch info, register lists, up to 2 destination and 4 source
 * memory operands).  This repo both ingests such traces and records
 * its synthetic workloads in the format, and the encoding is chosen
 * so a recorded trace replays bit-identically (DESIGN.md §17):
 *
 *  - an Access with gap = g is emitted as g non-memory filler
 *    instructions followed by one memory instruction at Access::pc;
 *  - loads read the address via source_memory[0] and define
 *    destination_registers[0] = kLoadDestReg; stores write it via
 *    destination_memory[0];
 *  - dependsOnPrevLoad is carried the way ChampSim itself would see
 *    it: the dependent instruction's source_registers[0] names the
 *    previous load's destination register (kLoadDestReg), an
 *    independent one names kIndepReg.
 *
 * The decoder implements the general format (multiple memory
 * operands per instruction, arbitrary registers), not just what the
 * recorder emits, so externally produced ChampSim traces ingest too.
 */

#ifndef SDBP_TRACE_CHAMPSIM_HH
#define SDBP_TRACE_CHAMPSIM_HH

#include <cstdio>
#include <string>

#include "trace/access.hh"
#include "trace/trace_reader.hh"

namespace sdbp
{

/** One ChampSim instruction record (the classic input_instr). */
struct ChampSimRecord
{
    std::uint64_t ip = 0;
    std::uint8_t isBranch = 0;
    std::uint8_t branchTaken = 0;
    std::uint8_t destinationRegisters[2] = {0, 0};
    std::uint8_t sourceRegisters[4] = {0, 0, 0, 0};
    std::uint64_t destinationMemory[2] = {0, 0};
    std::uint64_t sourceMemory[4] = {0, 0, 0, 0};
};
static_assert(sizeof(ChampSimRecord) == 64, "stable on-disk layout");

/** Register the recorder assigns to every load's destination. */
constexpr std::uint8_t kLoadDestReg = 9;
/** Source register of accesses independent of the previous load. */
constexpr std::uint8_t kIndepReg = 10;
/** ip of the recorder's non-memory filler instructions. */
constexpr std::uint64_t kFillerPc = 0xf111'0000ull;

/**
 * Streaming writer: one Access becomes gap filler instructions plus
 * one memory instruction.  Plain-file output only (compress with
 * gzip/xz afterwards, as ChampSim distributions do).
 */
class ChampSimTraceWriter
{
  public:
    /** Opens (truncates) @p path; fatal() on failure. */
    explicit ChampSimTraceWriter(const std::string &path);
    ~ChampSimTraceWriter();

    ChampSimTraceWriter(const ChampSimTraceWriter &) = delete;
    ChampSimTraceWriter &operator=(const ChampSimTraceWriter &) =
        delete;

    void append(const Access &rec);
    void close();

    /** Instructions written so far (fillers + memory). */
    std::uint64_t instructionsWritten() const { return instructions_; }

  private:
    void write(const ChampSimRecord &r);

    std::FILE *file_ = nullptr;
    std::string path_;
    std::uint64_t instructions_ = 0;
};

/**
 * Capture at least @p instructions instructions (gap + 1 per access)
 * from @p gen into a ChampSim trace at @p path.
 *
 * @return instructions actually written
 */
std::uint64_t recordChampSimTrace(AccessGenerator &gen,
                                  std::uint64_t instructions,
                                  const std::string &path);

/**
 * Streaming decoder: accumulates non-memory instructions into the
 * next access's gap and emits one Access per memory operand.
 * Truncated (non-multiple-of-64) files are fatal().
 */
class ChampSimTraceReader final : public TraceReader
{
  public:
    explicit ChampSimTraceReader(const std::string &path);

    std::size_t readBatch(std::span<Access> out) override;
    void rewind() override;
    const std::string &source() const override
    {
        return input_.path();
    }

  private:
    /** Decode one instruction record; returns false at EOF. */
    bool decodeRecord(ChampSimRecord &r);

    TraceInput input_;
    /** Non-memory instructions seen since the last memory access. */
    std::uint32_t pendingGap_ = 0;
    /**
     * Destination register of the most recent load, for dependency
     * recovery.  Seeded with kLoadDestReg so a trace whose *first*
     * access is a dependent load (pointer-chase streams start that
     * way) survives the round trip.
     */
    std::uint8_t lastLoadDest_ = kLoadDestReg;
    /** Accesses decoded from the current record not yet emitted. */
    Access queue_[6];
    std::size_t queued_ = 0;
    std::size_t queuePos_ = 0;
};

} // namespace sdbp

#endif // SDBP_TRACE_CHAMPSIM_HH
