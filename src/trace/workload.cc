#include "trace/workload.hh"

#include <algorithm>
#include <cassert>

#include "util/logging.hh"

namespace sdbp
{

namespace
{

/** Align a byte size up to a large boundary to keep regions apart. */
constexpr Addr
alignUp(Addr v, Addr boundary)
{
    return (v + boundary - 1) / boundary * boundary;
}

} // anonymous namespace

SyntheticWorkload::SyntheticWorkload(const WorkloadProfile &profile,
                                     unsigned address_space)
    : name_(profile.name), meanGap_(profile.meanGap),
      seed_(profile.seed ^ (0x9e3779b9ULL * (address_space + 1))),
      rng_(seed_)
{
    if (profile.streams.empty())
        fatal("workload '" + profile.name + "' has no streams");

    // 1 TB per workload instance keeps cores' data disjoint, and
    // each instance gets its own PC region: distinct programs must
    // not alias in PC-indexed predictor tables.
    Addr base = (static_cast<Addr>(address_space) + 1) << 40;
    std::uint64_t cum_weight = 0;
    PC pc_base = 0x400000 +
        (static_cast<PC>(address_space) << 24);
    for (std::size_t i = 0; i < profile.streams.size(); ++i) {
        const auto &scfg = profile.streams[i];
        assert(scfg.weight > 0);
        streams_.emplace_back(scfg, base, pc_base, seed_ + i * 7919);
        const Addr bytes = streams_.back().footprintBlocks() *
            static_cast<Addr>(blockBytes);
        base = alignUp(base + bytes, Addr(1) << 21);
        pc_base += 0x1000;
        cum_weight += scfg.weight;
        cumWeights_.push_back(cum_weight);
    }
}

void
SyntheticWorkload::reset()
{
    rng_.reseed(seed_);
    for (auto &stream : streams_)
        stream.reset();
}

Access
SyntheticWorkload::generate()
{
    const std::uint32_t gap = meanGap_ == 0
        ? 0
        : static_cast<std::uint32_t>(rng_.below(2 * meanGap_ + 1));

    // Weighted choice by linear scan: profiles have a handful of
    // streams, where the scan beats a binary search.
    const std::uint64_t pick = rng_.below(cumWeights_.back());
    std::size_t idx = 0;
    while (cumWeights_[idx] <= pick)
        ++idx;
    Access rec = streams_[idx].next();
    rec.gap = gap;
    return rec;
}

void
SyntheticWorkload::nextBatch(std::span<Access> out)
{
    // One virtual dispatch per batch; the record sequence is
    // identical for any batching of the same stream position.
    for (auto &rec : out)
        rec = generate();
}

} // namespace sdbp
