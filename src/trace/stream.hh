/**
 * @file
 * Building blocks of the synthetic workloads: a "stream" models one
 * static group of memory instructions in a program (a loop nest, a
 * pointer walk, a scan) with its own address region, PC set, and
 * reuse behaviour.
 *
 * The properties that matter for reproducing the paper are the ones
 * the sampling predictor keys on:
 *
 *  - blocks are touched by a *consistent sequence of PCs*, so the PC
 *    of the last touch before death is learnable;
 *  - working-set size relative to the L2 and LLC determines where
 *    the reuse is filtered;
 *  - generational streams produce blocks that die after a fixed
 *    number of epochs, the behaviour dead-block replacement exploits;
 *  - scan streams produce blocks that are dead on arrival, the
 *    behaviour bypass exploits.
 */

#ifndef SDBP_TRACE_STREAM_HH
#define SDBP_TRACE_STREAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/access.hh"
#include "util/rng.hh"

namespace sdbp
{

/** The reference pattern a stream follows within its region. */
enum class PatternKind
{
    /** Scan the region block by block, wrapping around. */
    Sequential,
    /** Scan with a block stride > 1. */
    Strided,
    /** Touch uniformly random blocks of the region. */
    RandomInRegion,
    /**
     * Walk a fixed pseudo-random permutation cycle of the region;
     * loads are address-dependent on each other.
     */
    PointerChase,
    /**
     * Generational: allocate a fresh region, scan it once per epoch
     * for a configured number of epochs (each epoch using its own
     * PC), then abandon it forever and allocate the next region.
     * This is the canonical "block dies after its k-th reuse"
     * behaviour of dead-block prediction papers.
     */
    Generational,
};

/** Static configuration of one stream. */
struct StreamConfig
{
    std::string name = "stream";
    PatternKind kind = PatternKind::Sequential;
    /** Size of the region in cache blocks. */
    std::uint64_t regionBlocks = 1024;
    /** Block stride for Strided. */
    std::uint64_t strideBlocks = 1;
    /** Consecutive touches to a block before moving on. */
    unsigned touchesPerBlock = 1;
    /** Number of distinct PCs rotated over the touches of a block. */
    unsigned numPcs = 1;
    /** Generational only: scans of a region before it dies. */
    unsigned epochs = 2;
    /**
     * Generational only: if nonzero, the epoch count of each
     * generation is drawn uniformly from [1, randomEpochMax] and the
     * per-epoch PC is drawn from a shared pool, destroying the
     * PC/death correlation (used by the astar-like profile).
     */
    unsigned randomEpochMax = 0;
    /**
     * Generational only: probability that a generation runs one
     * extra epoch beyond `epochs`.  Unlike randomEpochMax the
     * per-epoch PCs stay tied to the epoch index, so this models
     * mild lifetime variability: the PC-based predictor keeps
     * partial coverage while exact-count predictors lose confidence.
     */
    double extraEpochProb = 0.0;
    /**
     * Generational only: probability that an epoch scans its region
     * twice instead of once.  The second scan repeats the epoch's
     * PC, so the number of touches a block receives varies while
     * the identity of its *last-touch PC* does not: cumulative
     * reference traces (reftrace) and access counts (LvP) become
     * noisy, but PC-based last-touch prediction stays clean.
     */
    double rescanProb = 0.0;
    /** Fraction of accesses that are stores. */
    double writeFraction = 0.2;
    /** Relative probability of this stream being chosen. */
    unsigned weight = 1;
    /**
     * RandomInRegion only: popularity skew exponent.  1 = uniform;
     * k > 1 draws block index as u^k * region, concentrating
     * touches on a hot "head" of the region the way real working
     * sets concentrate reuse.
     */
    unsigned popularitySkew = 1;
};

/**
 * Dynamic state of a stream; produces one access at a time.
 *
 * Address layout: each stream receives a disjoint base address so
 * streams never alias.  A Generational stream lays its generations
 * out contiguously and cycles through a window of
 * `generationWindow` generations so the simulated footprint stays
 * bounded while reuse across generations stays nil (the window is
 * far larger than any cache).
 */
class Stream
{
  public:
    /**
     * @param cfg static configuration
     * @param base_addr base byte address of this stream's region(s)
     * @param base_pc base PC for this stream's instruction group
     * @param seed per-stream RNG seed
     */
    Stream(const StreamConfig &cfg, Addr base_addr, PC base_pc,
           std::uint64_t seed);

    /** Produce the next access (gap/thread left for the caller).
     *  Plain member function: Stream is a building block below the
     *  AccessGenerator protocol, whose only virtual is nextBatch. */
    Access next();

    /** Restart from the initial state. */
    void reset();

    const StreamConfig &config() const { return cfg_; }

    /** Total distinct footprint in blocks (bounded for Generational). */
    std::uint64_t footprintBlocks() const;

  private:
    Addr blockToAddr(std::uint64_t block) const;
    std::uint64_t permute(std::uint64_t idx) const;
    void advance();
    void startGeneration();
    void rollEpochScans();

    StreamConfig cfg_;
    Addr baseAddr_;
    PC basePc_;
    std::uint64_t seed_;
    Rng rng_;

    /** Current block index within the region. */
    std::uint64_t pos_ = 0;
    /** Touches already issued to the current block. */
    unsigned touch_ = 0;
    /**
     * touch_ % numPcs, maintained incrementally: next() runs once
     * per generated record, and a hardware divide there is the
     * single most expensive instruction in the generator.
     */
    unsigned pcCursor_ = 0;
    /** (pos_ * strideBlocks) % regionBlocks, incremental (Strided). */
    std::uint64_t strideBlock_ = 0;
    /** permute(pos_), incremental (PointerChase). */
    std::uint64_t permBlock_ = 0;
    /** strideBlocks % regionBlocks, precomputed. */
    std::uint64_t strideStep_ = 0;
    /** permMul_ % regionBlocks, precomputed. */
    std::uint64_t permStep_ = 0;
    /** Current epoch (Generational). */
    unsigned epoch_ = 0;
    /** Epochs in the current generation (Generational). */
    unsigned generationEpochs_ = 0;
    /** PC offset selected for the current epoch (Generational). */
    unsigned epochPcIndex_ = 0;
    /** Scans remaining in the current epoch (Generational). */
    unsigned scansLeft_ = 1;
    /** Current generation number (Generational). */
    std::uint64_t generation_ = 0;
    /**
     * Generations kept before the address window recycles.  Large
     * enough that no generational/compulsory stream wraps within the
     * default instruction budgets: a wrap would hand Belady's MIN a
     * spurious reuse horizon that no realizable policy can exploit.
     */
    static constexpr std::uint64_t generationWindow = 1024;
    /** Multiplier of the permutation for PointerChase. */
    std::uint64_t permMul_ = 1;
    std::uint64_t permAdd_ = 0;
};

} // namespace sdbp

#endif // SDBP_TRACE_STREAM_HH
