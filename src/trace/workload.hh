/**
 * @file
 * A synthetic workload: a weighted mix of streams standing in for
 * one SPEC CPU 2006 benchmark (see DESIGN.md §3 for the rationale of
 * this substitution).
 */

#ifndef SDBP_TRACE_WORKLOAD_HH
#define SDBP_TRACE_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "trace/access.hh"
#include "trace/stream.hh"
#include "util/rng.hh"

namespace sdbp
{

/** Full static description of one synthetic benchmark. */
struct WorkloadProfile
{
    std::string name = "workload";
    std::vector<StreamConfig> streams;
    /** Mean number of non-memory instructions between accesses. */
    unsigned meanGap = 2;
    /** Base RNG seed; runs are deterministic given the seed. */
    std::uint64_t seed = 1;
};

/**
 * Generator that interleaves the profile's streams by weight.
 *
 * Address spaces of distinct workload instances are disjoint when
 * constructed with distinct @p address_space values (used to give
 * each core of a multi-core system private data, matching the
 * multiprogrammed SPEC mixes of the paper).
 */
class SyntheticWorkload : public AccessGenerator
{
  public:
    /**
     * @param profile the static description
     * @param address_space which 1 TB address slice to place data in
     */
    explicit SyntheticWorkload(const WorkloadProfile &profile,
                               unsigned address_space = 0);

    void nextBatch(std::span<Access> out) override;
    void reset() override;

    const std::string &name() const { return name_; }
    std::size_t numStreams() const { return streams_.size(); }
    const Stream &stream(std::size_t i) const { return streams_[i]; }

  private:
    Access generate();

    std::string name_;
    unsigned meanGap_;
    std::uint64_t seed_;
    std::vector<Stream> streams_;
    /** Cumulative weights for O(log n) weighted choice. */
    std::vector<std::uint64_t> cumWeights_;
    Rng rng_;
};

} // namespace sdbp

#endif // SDBP_TRACE_WORKLOAD_HH
