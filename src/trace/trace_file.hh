/**
 * @file
 * Binary memory-trace files in the native sdbp format: capture a
 * generator's reference stream to disk and replay it later.  The
 * ChampSim format lives in trace/champsim.hh; both replay through
 * the same streaming TraceReader interface (trace/trace_reader.hh).
 *
 * Format: a 24-byte header (magic, version, record count) followed
 * by fixed-size little-endian records.
 */

#ifndef SDBP_TRACE_TRACE_FILE_HH
#define SDBP_TRACE_TRACE_FILE_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "trace/access.hh"
#include "trace/trace_reader.hh"

namespace sdbp
{

constexpr std::uint64_t kNativeTraceMagic =
    0x534442505452ull; // "SDBPTR"
constexpr std::uint64_t kNativeTraceVersion = 1;

/** On-disk header of a native trace. */
struct NativeTraceHeader
{
    std::uint64_t magic;
    std::uint64_t version;
    std::uint64_t count;
};
static_assert(sizeof(NativeTraceHeader) == 24,
              "stable on-disk layout");

/** On-disk record: one access with its leading instruction gap. */
struct TraceFileRecord
{
    std::uint64_t pc;
    std::uint64_t addr;
    std::uint32_t gap;
    std::uint8_t isWrite;
    std::uint8_t dependsOnPrevLoad;
    std::uint16_t pad = 0;
};
static_assert(sizeof(TraceFileRecord) == 24, "stable on-disk layout");

/** Streaming writer. */
class TraceWriter
{
  public:
    /** Opens (truncates) @p path; fatal() on failure. */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    void append(const Access &rec);

    /** Finalize the header; called automatically by the destructor. */
    void close();

    std::uint64_t recordsWritten() const { return count_; }

  private:
    std::FILE *file_ = nullptr;
    std::uint64_t count_ = 0;
};

/** Loads a whole trace into memory through the streaming reader —
 *  a convenience for tests and small traces; large traces should
 *  stream (TraceReplayGenerator's reader mode).  fatal() on
 *  malformed input. */
std::vector<Access> readTraceFile(const std::string &path);

/** Capture @p n records from a generator into @p path. */
void captureTrace(AccessGenerator &gen, std::uint64_t n,
                  const std::string &path);

/**
 * Generator replaying a trace, looping back to the start when
 * exhausted (so the multi-core restart methodology works).
 *
 * Two modes: in-memory (constructed from a record vector — tests,
 * small traces) and streaming (constructed from a TraceReader — a
 * bounded ring of decoded records is refilled from the reader, so
 * memory stays constant no matter how large the trace is).
 */
class TraceReplayGenerator : public AccessGenerator
{
  public:
    explicit TraceReplayGenerator(std::vector<Access> records);

    /** Convenience: load the whole file into memory. */
    explicit TraceReplayGenerator(const std::string &path);

    /** Streaming mode over @p reader; at most @p ring_records
     *  decoded records are held at any time. */
    explicit TraceReplayGenerator(
        std::unique_ptr<TraceReader> reader,
        std::size_t ring_records = 4096);

    void nextBatch(std::span<Access> out) override;
    void reset() override;

    /** Records in the trace: exact in-memory; in streaming mode 0
     *  until the first wrap-around taught us the length. */
    std::uint64_t size() const { return knownSize_; }
    /** Times the trace wrapped back to the beginning. */
    std::uint64_t loops() const { return loops_; }
    bool streaming() const { return reader_ != nullptr; }
    /** Decoded records currently buffered (streaming mode). */
    std::size_t bufferedRecords() const { return ringFill_; }

  private:
    void refill();

    // In-memory mode.
    std::vector<Access> records_;
    std::size_t pos_ = 0;

    // Streaming mode.
    std::unique_ptr<TraceReader> reader_;
    std::vector<Access> ring_;
    std::size_t ringPos_ = 0;
    std::size_t ringFill_ = 0;
    std::uint64_t streamed_ = 0;

    std::uint64_t knownSize_ = 0;
    std::uint64_t loops_ = 0;
};

} // namespace sdbp

#endif // SDBP_TRACE_TRACE_FILE_HH
