/**
 * @file
 * Binary memory-trace files: capture a generator's reference stream
 * to disk and replay it later, so experiments can also be driven by
 * externally produced traces (e.g. converted ChampSim/CRC traces)
 * instead of the synthetic generators.
 *
 * Format: a 24-byte header (magic, version, record count) followed
 * by fixed-size little-endian records.
 */

#ifndef SDBP_TRACE_TRACE_FILE_HH
#define SDBP_TRACE_TRACE_FILE_HH

#include <cstdio>
#include <string>
#include <vector>

#include "trace/access.hh"

namespace sdbp
{

/** On-disk record: one access with its leading instruction gap. */
struct TraceFileRecord
{
    std::uint64_t pc;
    std::uint64_t addr;
    std::uint32_t gap;
    std::uint8_t isWrite;
    std::uint8_t dependsOnPrevLoad;
    std::uint16_t pad = 0;
};
static_assert(sizeof(TraceFileRecord) == 24, "stable on-disk layout");

/** Streaming writer. */
class TraceWriter
{
  public:
    /** Opens (truncates) @p path; fatal() on failure. */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    void append(const Access &rec);

    /** Finalize the header; called automatically by the destructor. */
    void close();

    std::uint64_t recordsWritten() const { return count_; }

  private:
    std::FILE *file_ = nullptr;
    std::uint64_t count_ = 0;
};

/** Loads a whole trace file into memory; fatal() on malformed input. */
std::vector<Access> readTraceFile(const std::string &path);

/** Capture @p n records from a generator into @p path. */
void captureTrace(AccessGenerator &gen, std::uint64_t n,
                  const std::string &path);

/**
 * Generator replaying a loaded trace, looping back to the start when
 * exhausted (so the multi-core restart methodology works).
 */
class TraceReplayGenerator : public AccessGenerator
{
  public:
    explicit TraceReplayGenerator(std::vector<Access> records);

    /** Convenience: load from file. */
    explicit TraceReplayGenerator(const std::string &path);

    Access next() override;
    void nextBatch(std::span<Access> out) override;
    void reset() override;

    std::size_t size() const { return records_.size(); }
    /** Times the trace wrapped back to the beginning. */
    std::uint64_t loops() const { return loops_; }

  private:
    std::vector<Access> records_;
    std::size_t pos_ = 0;
    std::uint64_t loops_ = 0;
};

} // namespace sdbp

#endif // SDBP_TRACE_TRACE_FILE_HH
