#include "trace/spec_profiles.hh"

#include <map>

#include "util/logging.hh"

namespace sdbp
{

namespace
{

/** Builders for the stream archetypes used by the profiles. */

/**
 * A resident working set, cyclically re-scanned.
 *
 * The memory-intensive profiles pair a small fast-cycling "hot1"
 * region (short reuse distance, observable even in the 12-way
 * sampler at bootstrap) with a larger "hot2" region whose LRU stack
 * distance exceeds the LLC associativity once the dead traffic is
 * added — the prize that dead-block replacement wins back.
 */
StreamConfig
hot(std::uint64_t blocks, unsigned weight, unsigned touches = 4)
{
    StreamConfig s;
    s.name = "hot";
    s.kind = PatternKind::Sequential;
    s.regionBlocks = blocks;
    s.touchesPerBlock = touches;
    s.numPcs = 2;
    s.weight = weight;
    s.writeFraction = 0.15;
    return s;
}

/** A cyclic scan much larger than the LLC (libquantum-style). */
StreamConfig
scan(std::uint64_t blocks, unsigned weight, double writes = 0.25)
{
    StreamConfig s;
    s.name = "scan";
    s.kind = PatternKind::Sequential;
    s.regionBlocks = blocks;
    s.touchesPerBlock = 2;
    s.numPcs = 2;
    s.weight = weight;
    s.writeFraction = writes;
    return s;
}

/**
 * A generational stream: a region is scanned @p epochs times, each
 * epoch from its own PC, then abandoned.  Blocks predictably die
 * after the last epoch's touch.
 */
StreamConfig
generational(std::uint64_t blocks, unsigned epochs, unsigned weight,
             double writes = 0.3)
{
    StreamConfig s;
    s.name = "gen";
    s.kind = PatternKind::Generational;
    s.regionBlocks = blocks;
    s.epochs = epochs;
    s.touchesPerBlock = 2;
    s.numPcs = 1;
    s.weight = weight;
    s.writeFraction = writes;
    return s;
}

/** A compulsory-miss stream: touched once, never reused. */
StreamConfig
compulsory(std::uint64_t blocks, unsigned weight, double writes = 0.3)
{
    StreamConfig s = generational(blocks, 1, weight, writes);
    s.name = "compulsory";
    return s;
}

/** Exactly-two-epoch generational stream (the SDBP showcase). */
StreamConfig
gen2(std::uint64_t blocks, unsigned weight)
{
    return generational(blocks, 2, weight);
}

/**
 * Two-to-three-epoch generational stream: lifetime varies but the
 * per-epoch PCs stay fixed, so PC-based prediction keeps partial
 * coverage while exact-count prediction (LvP) loses confidence.
 * The sampler's near-saturation threshold (8 of 9) keeps it quiet
 * on the hovering second-epoch PC, while reftrace's low threshold
 * (2 of 3) fires on it.
 */
StreamConfig
genJitter(std::uint64_t blocks, unsigned weight)
{
    StreamConfig s = generational(blocks, 2, weight);
    s.name = "gen-jitter";
    s.extraEpochProb = 0.15;
    return s;
}

/**
 * Uniformly random touches over a large region: a gradual,
 * policy-insensitive reuse-distance spread like real benchmarks'
 * live data (LRU and random replacement perform comparably on it).
 * Its PC trains "live" as long as a useful fraction of re-touches
 * are observable in the sampler.
 */
StreamConfig
liveRandom(std::uint64_t blocks, unsigned weight)
{
    StreamConfig s;
    s.name = "live-random";
    s.kind = PatternKind::RandomInRegion;
    s.regionBlocks = blocks;
    s.touchesPerBlock = 2;
    s.numPcs = 2;
    s.weight = weight;
    s.writeFraction = 0.2;
    s.popularitySkew = 3;
    return s;
}

/** Dependent-load pointer chase over a permutation cycle. */
StreamConfig
chase(std::uint64_t blocks, unsigned weight)
{
    StreamConfig s;
    s.name = "chase";
    s.kind = PatternKind::PointerChase;
    s.regionBlocks = blocks;
    s.touchesPerBlock = 1;
    s.numPcs = 1;
    s.weight = weight;
    s.writeFraction = 0.05;
    return s;
}

/** Uniform random touches within a region (branchy integer codes). */
StreamConfig
randomTouch(std::uint64_t blocks, unsigned weight)
{
    StreamConfig s;
    s.name = "random";
    s.kind = PatternKind::RandomInRegion;
    s.regionBlocks = blocks;
    s.touchesPerBlock = 2;
    s.numPcs = 3;
    s.weight = weight;
    s.writeFraction = 0.2;
    s.popularitySkew = 2;
    return s;
}


/**
 * Astar-style unstable stream: generation lifetimes jitter AND the
 * region sits at the L2 boundary, so the partially filtered LLC
 * reference stream carries little usable signal for any predictor.
 */
StreamConfig
unstable(std::uint64_t blocks, unsigned weight)
{
    StreamConfig s = generational(blocks, 2, weight);
    s.name = "unstable";
    s.extraEpochProb = 0.5;
    return s;
}

/**
 * Astar-style unpredictable generational stream: epoch counts and
 * epoch PCs are randomized so the last-touch PC carries little
 * signal.
 */
StreamConfig
unpredictable(std::uint64_t blocks, unsigned max_epochs, unsigned weight)
{
    StreamConfig s = generational(blocks, max_epochs, weight);
    s.name = "unpredictable";
    s.randomEpochMax = max_epochs;
    return s;
}

WorkloadProfile
make(const std::string &name, unsigned mean_gap,
     std::vector<StreamConfig> streams)
{
    WorkloadProfile p;
    p.name = name;
    p.meanGap = mean_gap;
    p.streams = std::move(streams);
    p.seed = 0xabcd1234;
    for (char c : name)
        p.seed = p.seed * 131 + static_cast<unsigned char>(c);
    return p;
}

/**
 * The profile catalog.
 *
 * Reference scale (64 B blocks): L1 = 512 blocks, L2 = 4096 blocks,
 * LLC = 32768 blocks (2 MB).
 */
std::map<std::string, WorkloadProfile>
buildCatalog()
{
    std::map<std::string, WorkloadProfile> c;
    auto add = [&c](WorkloadProfile p) { c[p.name] = std::move(p); };

    // ---- 19-benchmark memory-intensive subset (Figs. 4-9) ----
    //
    // Sizing rules of thumb (2 MB LLC = 32768 blocks, 2048 sets,
    // 16-way; 12-way sampler):
    //  - the aggregate live set (hot anchor + skewed-random head +
    //    live generational window) stays near or under ~12 blocks
    //    per set, so the sampler can observe its reuse once dead
    //    traffic is evicted from it early;
    //  - the dead-allocation rate (final-epoch generational blocks,
    //    compulsory/scan/chase fills) inflates LRU stack distances
    //    past 16 blocks per set, so the baseline loses part of the
    //    live traffic that dead-block replacement and bypass keep;
    //  - generational epoch gaps stay inside the sampler's reach so
    //    intermediate epochs train "live" and only the final
    //    epoch's PC trains "dead";
    //  - hot anchors (1024 blocks) live mostly in the private L2:
    //    they pace instruction throughput without exposing a
    //    sparse, sampler-hostile LLC tail;
    //  - streaming/chase regions are sized to stay thrashy even in
    //    the 8 MB shared quad-core configuration.
    add(make("400.perlbench", 6,
             {hot(1024, 3), liveRandom(24576, 4), gen2(6144, 4),
              compulsory(8192, 1)}));
    add(make("401.bzip2", 4,
             {hot(1024, 2), liveRandom(28672, 4), genJitter(3072, 4),
              compulsory(8192, 1)}));
    add(make("403.gcc", 5,
             {hot(1024, 2), liveRandom(28672, 4), gen2(3072, 4),
              compulsory(16384, 2)}));
    add(make("429.mcf", 1,
             {liveRandom(32768, 5), genJitter(6144, 3),
              chase(262144, 4)}));
    add(make("433.milc", 2,
             {compulsory(65536, 4), scan(98304, 2),
              liveRandom(16384, 1)}));
    add(make("434.zeusmp", 4,
             {hot(1024, 2), liveRandom(28672, 4), genJitter(3072, 4)}));
    add(make("435.gromacs", 5,
             {hot(1024, 4), liveRandom(20480, 3), gen2(6144, 3)}));
    add(make("436.cactusADM", 4,
             {hot(1024, 2), liveRandom(24576, 3), genJitter(3072, 4)}));
    add(make("437.leslie3d", 3,
             {hot(1024, 1), liveRandom(28672, 3), gen2(3072, 3),
              scan(65536, 1)}));
    add(make("450.soplex", 2,
             {hot(1024, 1), liveRandom(28672, 4), genJitter(3072, 3),
              chase(98304, 2)}));
    add(make("456.hmmer", 3,
             {hot(1024, 2), hot(8192, 4, 2), liveRandom(16384, 2),
              gen2(6144, 6)}));
    add(make("459.GemsFDTD", 3,
             {hot(1024, 1), liveRandom(24576, 3), genJitter(3072, 3),
              compulsory(32768, 3)}));
    add(make("462.libquantum", 2,
             {scan(98304, 8, 0.3), hot(512, 1)}));
    add(make("470.lbm", 2,
             {scan(98304, 4, 0.45), compulsory(131072, 3, 0.5)}));
    add(make("471.omnetpp", 3,
             {liveRandom(24576, 4), genJitter(3072, 3),
              chase(131072, 3)}));
    add(make("473.astar", 4,
             {hot(1024, 2), liveRandom(24576, 4),
              unpredictable(4096, 4, 4), unstable(4608, 3)}));
    add(make("481.wrf", 4,
             {hot(1024, 2), liveRandom(28672, 3), genJitter(3072, 3),
              compulsory(8192, 1)}));
    add(make("482.sphinx3", 3,
             {hot(1024, 1), liveRandom(28672, 4), gen2(6144, 3),
              scan(81920, 2)}));
    add(make("483.xalancbmk", 4,
             {hot(1024, 2), liveRandom(24576, 3), genJitter(3072, 3),
              chase(81920, 3)}));

    // ---- the other 10 benchmarks: no significant optimal gain ----
    // Working sets comfortably inside the 2 MB LLC (or purely
    // compulsory traffic), so MIN buys less than 1%.
    add(make("410.bwaves", 3, {compulsory(131072, 4), hot(8192, 3)}));
    add(make("416.gamess", 6, {hot(1024, 6)}));
    add(make("444.namd", 5, {hot(8192, 5)}));
    add(make("445.gobmk", 5, {randomTouch(8192, 2), hot(8192, 4)}));
    add(make("447.dealII", 4, {hot(12288, 5), compulsory(2048, 1)}));
    add(make("453.povray", 6, {hot(4096, 6)}));
    add(make("454.calculix", 5, {hot(8192, 6)}));
    add(make("458.sjeng", 5, {randomTouch(12288, 1), hot(8192, 3)}));
    add(make("464.h264ref", 4,
             {hot(6144, 4), StreamConfig{
                  .name = "stride", .kind = PatternKind::Strided,
                  .regionBlocks = 4096, .strideBlocks = 4,
                  .touchesPerBlock = 2, .numPcs = 2, .weight = 2}}));
    add(make("465.tonto", 5, {hot(8192, 5), compulsory(2048, 1)}));

    return c;
}

const std::map<std::string, WorkloadProfile> &
catalog()
{
    static const std::map<std::string, WorkloadProfile> c = buildCatalog();
    return c;
}

} // anonymous namespace

WorkloadProfile
specProfile(const std::string &name)
{
    const auto &c = catalog();
    auto it = c.find(name);
    if (it == c.end())
        fatal("unknown benchmark profile: " + name);
    return it->second;
}

const std::vector<std::string> &
allSpecBenchmarks()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const auto &[name, profile] : catalog())
            v.push_back(name);
        return v;
    }();
    return names;
}

const std::vector<std::string> &
memoryIntensiveSubset()
{
    static const std::vector<std::string> names = {
        "400.perlbench", "401.bzip2",  "403.gcc",        "429.mcf",
        "433.milc",      "434.zeusmp", "435.gromacs",    "436.cactusADM",
        "437.leslie3d",  "450.soplex", "456.hmmer",      "459.GemsFDTD",
        "462.libquantum","470.lbm",    "471.omnetpp",    "473.astar",
        "481.wrf",       "482.sphinx3","483.xalancbmk",
    };
    return names;
}

const std::vector<MixProfile> &
multicoreMixes()
{
    static const std::vector<MixProfile> mixes = {
        {"mix1", {"429.mcf", "456.hmmer", "462.libquantum",
                  "471.omnetpp"}},
        {"mix2", {"445.gobmk", "450.soplex", "462.libquantum",
                  "470.lbm"}},
        {"mix3", {"434.zeusmp", "437.leslie3d", "462.libquantum",
                  "483.xalancbmk"}},
        {"mix4", {"416.gamess", "436.cactusADM", "450.soplex",
                  "462.libquantum"}},
        {"mix5", {"401.bzip2", "416.gamess", "429.mcf",
                  "482.sphinx3"}},
        {"mix6", {"403.gcc", "454.calculix", "462.libquantum",
                  "482.sphinx3"}},
        {"mix7", {"400.perlbench", "433.milc", "456.hmmer",
                  "470.lbm"}},
        {"mix8", {"401.bzip2", "403.gcc", "445.gobmk", "470.lbm"}},
        {"mix9", {"416.gamess", "429.mcf", "465.tonto",
                  "483.xalancbmk"}},
        {"mix10", {"433.milc", "444.namd", "482.sphinx3",
                   "483.xalancbmk"}},
    };
    return mixes;
}

} // namespace sdbp
