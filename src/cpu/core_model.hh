/**
 * @file
 * Approximate out-of-order core timing model in the spirit of
 * CMP$im (Sec. VI-A): 4-wide, 8-stage, 128-entry instruction
 * window.  It is not cycle-accurate; it models the first-order
 * effects that matter for the paper's IPC comparisons:
 *
 *  - dispatch width limits throughput to `width` IPC;
 *  - independent long-latency loads overlap (memory-level
 *    parallelism) until the instruction window fills;
 *  - a full window stalls dispatch until the oldest instruction
 *    completes (in-order retirement backpressure);
 *  - address-dependent loads (pointer chasing) serialize.
 *
 * The per-instruction methods are inline: they run once per
 * simulated instruction, which makes them the hottest code in the
 * simulator after the L1 lookup.
 */

#ifndef SDBP_CPU_CORE_MODEL_HH
#define SDBP_CPU_CORE_MODEL_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hh"

namespace sdbp
{

namespace obs
{
class StatRegistry;
} // namespace obs

struct CoreConfig
{
    unsigned width = 4;
    unsigned robSize = 128;
    unsigned pipelineDepth = 8;
};

class CoreModel
{
  public:
    explicit CoreModel(const CoreConfig &cfg = {});

    /** Execute @p n single-cycle non-memory instructions. */
    void
    executeNonMem(unsigned n)
    {
        // Fast path for the common steady state behind a long-latency
        // load: the window has room for all n instructions and the
        // latest completion covers every cycle dispatch can reach
        // during them (dispatch advances at most n cycles), so each
        // step would compute retire = maxCompletion_ and never stall.
        // Fill the ring with n copies in closed form instead of n
        // dispatch() round trips; bit-identical to the loop whenever
        // the (conservative) guard holds, and the loop runs
        // otherwise.
        const std::size_t size = window_.size();
        if (n > 0 && count_ + n <= size &&
            maxCompletion_ > dispatchCycle_ + n) {
            std::size_t tail = head_ + count_;
            if (tail >= size)
                tail -= size;
            for (unsigned i = 0; i < n; ++i) {
                window_[tail] = maxCompletion_;
                if (++tail == size)
                    tail = 0;
            }
            count_ += n;
            instructions_ += n;
            slotInCycle_ += n;
            while (slotInCycle_ >= cfg_.width) {
                slotInCycle_ -= cfg_.width;
                ++dispatchCycle_;
            }
            return;
        }
        for (unsigned i = 0; i < n; ++i)
            dispatch(dispatchCycle_ + 1);
    }

    /**
     * Execute one memory instruction.
     *
     * @param latency the access latency reported by the hierarchy
     * @param is_load stores retire through the write buffer and do
     *        not stall the core
     * @param depends_on_prev_load serialize behind the previous load
     */
    void
    executeMem(Cycle latency, bool is_load, bool depends_on_prev_load)
    {
        if (!is_load) {
            // Stores retire via the write buffer.
            dispatch(dispatchCycle_ + 1);
            return;
        }
        Cycle issue = dispatchCycle_;
        if (depends_on_prev_load)
            issue = std::max(issue, lastLoadComplete_);
        const Cycle completion = issue + latency;
        lastLoadComplete_ = completion;
        dispatch(completion);
    }

    /** Instructions executed so far. */
    InstCount instructions() const { return instructions_; }

    /** Current cycle count, including draining in-flight work. */
    Cycle
    cycles() const
    {
        return std::max(dispatchCycle_, maxCompletion_);
    }

    /** Restart counters (window state is cleared too). */
    void reset();

    /**
     * Register "<prefix>.instructions" (counter) and
     * "<prefix>.cycles" (gauge: cycles() drains in-flight work, so
     * it is computed, not a plain counter).
     */
    void registerStats(obs::StatRegistry &reg,
                       const std::string &prefix) const;

  private:
    void
    dispatch(Cycle completion)
    {
        const std::size_t size = window_.size();
        if (count_ == size) {
            // Window full: dispatch stalls until the oldest
            // instruction retires.
            const Cycle oldest = window_[head_];
            if (oldest > dispatchCycle_) {
                dispatchCycle_ = oldest;
                slotInCycle_ = 0;
            }
            if (++head_ == size)
                head_ = 0;
            --count_;
        }
        std::size_t tail = head_ + count_;
        if (tail >= size)
            tail -= size;
        // Retirement is in order: an instruction cannot leave the
        // window before its predecessors, so clamp to the running
        // maximum.
        const Cycle retire = std::max(completion, maxCompletion_);
        window_[tail] = retire;
        ++count_;
        maxCompletion_ = retire;

        ++instructions_;
        if (++slotInCycle_ >= cfg_.width) {
            slotInCycle_ = 0;
            ++dispatchCycle_;
        }
    }

    CoreConfig cfg_;
    InstCount instructions_ = 0;
    /** Cycle in which the next instruction dispatches. */
    Cycle dispatchCycle_;
    /** Instructions already dispatched in dispatchCycle_. */
    unsigned slotInCycle_ = 0;
    /** Completion time of the most recent load. */
    Cycle lastLoadComplete_ = 0;
    /** Completion of the latest-finishing instruction seen. */
    Cycle maxCompletion_ = 0;
    /** Ring buffer of in-flight completion times (the window). */
    std::vector<Cycle> window_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

} // namespace sdbp

#endif // SDBP_CPU_CORE_MODEL_HH
