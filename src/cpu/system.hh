/**
 * @file
 * Single- and multi-core simulated system: cores drive their
 * workload generators through the shared hierarchy.  Implements the
 * paper's multi-core methodology (Sec. VI-A2): all programs run
 * simultaneously, and a program that finishes its instruction quota
 * restarts and keeps generating contention until every program has
 * finished; per-thread statistics freeze at first completion.
 */

#ifndef SDBP_CPU_SYSTEM_HH
#define SDBP_CPU_SYSTEM_HH

#include <chrono>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "cache/hierarchy.hh"
#include "cpu/core_model.hh"
#include "trace/access.hh"

namespace sdbp
{

namespace obs
{
class Profiler;
class StatRegistry;
} // namespace obs

/**
 * Thrown by System::run when a configured deadline passes.  A
 * runaway cell (pathological configuration, scheduling stall) must
 * not wedge a whole sweep; the check is cooperative, so the System
 * is abandoned in a consistent state and the sweep engine can retry
 * or record the cell as failed.
 */
class SimulationTimeout : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Per-thread outcome of a run. */
struct ThreadRunResult
{
    InstCount instructions = 0;
    Cycle cycles = 0;
    double ipc = 0;
};

class System
{
  public:
    /**
     * @param hcfg hierarchy geometry (hcfg.numCores cores)
     * @param ccfg core model parameters
     * @param llc_policy replacement policy for the shared LLC
     */
    System(const HierarchyConfig &hcfg, const CoreConfig &ccfg,
           std::unique_ptr<ReplacementPolicy> llc_policy);

    /**
     * Run every core for @p measure instructions after a @p warmup
     * period (statistics are cleared between the phases).
     *
     * @param gens one generator per core (not owned)
     */
    std::vector<ThreadRunResult>
    run(const std::vector<AccessGenerator *> &gens, InstCount warmup,
        InstCount measure);

    Hierarchy &hierarchy() { return hierarchy_; }
    const Hierarchy &hierarchy() const { return hierarchy_; }

    /** Global tick (total instructions executed by all cores). */
    std::uint64_t tick() const { return tick_; }

    /**
     * Register "sys.instructions" (the global tick), every core's
     * counters ("coreN.*") and the whole hierarchy.
     */
    void registerStats(obs::StatRegistry &reg) const;

    /**
     * Fire @p callback every @p interval ticks during the
     * *measurement* phase of run() (the stats clear at the
     * warmup/measure boundary would break counter monotonicity if
     * warmup were included).  The callback also fires at the phase
     * boundaries, giving interval snapshots a baseline and a final
     * sample.  Costs one integer compare per step; interval 0
     * disables.
     */
    void
    setHeartbeat(std::uint64_t interval,
                 std::function<void(std::uint64_t)> callback)
    {
        heartbeatInterval_ = interval;
        heartbeat_ = std::move(callback);
    }

    /** Attach a wall-clock profiler to run() (nullptr detaches). */
    void setProfiler(obs::Profiler *profiler)
    {
        profiler_ = profiler;
    }

    /**
     * Abort run() with SimulationTimeout once wall clock passes
     * @p deadline.  Checked every few thousand steps (cooperative),
     * so the overshoot is bounded by milliseconds.
     */
    void setDeadline(std::chrono::steady_clock::time_point deadline)
    {
        deadline_ = deadline;
        hasDeadline_ = true;
    }

  private:
    /** Throw SimulationTimeout if the deadline passed (amortized:
     *  only looks at the clock every kDeadlineStride steps). */
    void checkDeadline(const char *phase);
    /** Advance core @p c by one trace record. */
    void step(std::uint32_t c, AccessGenerator &gen);

    HierarchyConfig hcfg_;
    CoreConfig ccfg_;
    Hierarchy hierarchy_;
    std::vector<CoreModel> cores_;
    std::uint64_t tick_ = 0;
    /** Cycle at which the shared DRAM channel is next free. */
    Cycle memFree_ = 0;

    std::uint64_t heartbeatInterval_ = 0;
    std::function<void(std::uint64_t)> heartbeat_;
    obs::Profiler *profiler_ = nullptr;

    bool hasDeadline_ = false;
    std::chrono::steady_clock::time_point deadline_;
    std::uint64_t deadlineTick_ = 0;
};

} // namespace sdbp

#endif // SDBP_CPU_SYSTEM_HH
