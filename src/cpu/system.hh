/**
 * @file
 * Single- and multi-core simulated system: cores drive their
 * workload generators through the shared hierarchy.  Implements the
 * paper's multi-core methodology (Sec. VI-A2): all programs run
 * simultaneously, and a program that finishes its instruction quota
 * restarts and keeps generating contention until every program has
 * finished; per-thread statistics freeze at first completion.
 *
 * Split into SystemBase (the type-erased face: one virtual call per
 * run(), not per access) and BasicSystem<LlcP>, which stacks the
 * matching BasicHierarchy so the whole per-instruction loop —
 * generator batch, core timing, L1/L2/LLC walk, policy and predictor
 * hooks — compiles as one devirtualized unit.  `System` is the
 * type-erased alias.
 *
 * Generators are consumed in ~1 KiB batches to amortize the virtual
 * nextBatch() dispatch (a generator's sole virtual primitive); after
 * run() returns, a generator's position is
 * whatever the read-ahead left it at (callers that reuse a generator
 * must reset() it).  Batching changes no simulated outcome: records
 * are consumed in exactly the order a record-at-a-time loop would,
 * and pending read-ahead is discarded when a finished program
 * restarts.
 */

#ifndef SDBP_CPU_SYSTEM_HH
#define SDBP_CPU_SYSTEM_HH

#include <chrono>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "cache/hierarchy.hh"
#include "cpu/core_model.hh"
#include "obs/profiler.hh"
#include "trace/access.hh"
#include "util/hotpath.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace sdbp
{

namespace obs
{
class StatRegistry;
} // namespace obs

/**
 * Thrown by System::run when a configured deadline passes.  A
 * runaway cell (pathological configuration, scheduling stall) must
 * not wedge a whole sweep; the check is cooperative, so the System
 * is abandoned in a consistent state and the sweep engine can retry
 * or record the cell as failed.
 */
class SimulationTimeout : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Per-thread outcome of a run. */
struct ThreadRunResult
{
    InstCount instructions = 0;
    Cycle cycles = 0;
    double ipc = 0;
};

/**
 * LLC-policy-type-erased part of the system.  The engine holds a
 * SystemBase and pays one virtual dispatch per run()/simulate()
 * call; everything underneath is bound in the subclass.
 */
class SystemBase
{
  public:
    virtual ~SystemBase() = default;

    SystemBase(const SystemBase &) = delete;
    SystemBase &operator=(const SystemBase &) = delete;

    /**
     * Run every core for @p measure instructions after a @p warmup
     * period (statistics are cleared between the phases).
     *
     * @param gens one generator per core (not owned)
     */
    virtual std::vector<ThreadRunResult>
    run(const std::vector<AccessGenerator *> &gens, InstCount warmup,
        InstCount measure) = 0;

    /**
     * Drive core 0 through a pre-materialized trace from the current
     * state — the batched entry point for callers that already hold
     * records (replay tools, micro-benchmarks).  No warmup, no stats
     * clear, no generator involved.
     */
    virtual ThreadRunResult simulate(std::span<const Access> trace) = 0;

    HierarchyBase &hierarchy() { return *hierView_; }
    const HierarchyBase &hierarchy() const { return *hierView_; }

    /** Global tick (total instructions executed by all cores). */
    std::uint64_t tick() const { return tick_; }

    /**
     * Register "sys.instructions" (the global tick), every core's
     * counters ("coreN.*") and the whole hierarchy.
     */
    void registerStats(obs::StatRegistry &reg) const;

    /**
     * Fire @p callback every @p interval ticks during the
     * *measurement* phase of run() (the stats clear at the
     * warmup/measure boundary would break counter monotonicity if
     * warmup were included).  The callback also fires at the phase
     * boundaries, giving interval snapshots a baseline and a final
     * sample.  Costs one integer compare per step; interval 0
     * disables.
     */
    void
    setHeartbeat(std::uint64_t interval,
                 std::function<void(std::uint64_t)> callback)
    {
        heartbeatInterval_ = interval;
        heartbeat_ = std::move(callback);
    }

    /** Attach a wall-clock profiler to run() (nullptr detaches). */
    void setProfiler(obs::Profiler *profiler)
    {
        profiler_ = profiler;
    }

    /**
     * Abort run() with SimulationTimeout once wall clock passes
     * @p deadline.  Checked every few thousand steps (cooperative),
     * so the overshoot is bounded by milliseconds.
     */
    void setDeadline(std::chrono::steady_clock::time_point deadline)
    {
        deadline_ = deadline;
        hasDeadline_ = true;
    }

  protected:
    SystemBase(const HierarchyConfig &hcfg, const CoreConfig &ccfg);

    /** Throw SimulationTimeout if the deadline passed (amortized:
     *  only looks at the clock every kDeadlineStride steps). */
    SDBP_HOT_PATH void
    checkDeadline(const char *phase)
    {
        // One branch per step in the common case; the clock is only
        // read every 32Ki steps.
        constexpr std::uint64_t kDeadlineStride = 1u << 15;
        if (!hasDeadline_ || ++deadlineTick_ % kDeadlineStride != 0)
            return;
        checkDeadlineSlow(phase);
    }

    /** Per-core read-ahead over the generator (see file comment).
     *  256 records (~8 KiB) amortizes the virtual nextBatch dispatch
     *  without evicting the simulated cache lanes from the host L1
     *  on every refill (a 1024-record batch alone is 32 KiB). */
    struct Batch
    {
        static constexpr std::size_t kSize = 256;
        std::vector<Access> records;
        std::size_t pos = 0;
        std::size_t fill = 0;
    };

    SDBP_HOT_PATH const Access &
    fetch(std::uint32_t c, AccessGenerator &gen)
    {
        Batch &b = batch_[c];
        if (b.pos == b.fill) {
            if (b.records.size() != Batch::kSize)
                b.records.resize(Batch::kSize);
            gen.nextBatch(std::span<Access>(b.records));
            b.pos = 0;
            b.fill = Batch::kSize;
        }
        // Stamp the issuing core on the record as it is handed out
        // (the hierarchy and every policy hook read the core from
        // it): one store to an already-hot line, instead of a
        // whole-batch stamping pass over cold memory.
        Access &r = b.records[b.pos++];
        r.thread = static_cast<ThreadId>(c);
        return r;
    }

    HierarchyConfig hcfg_;
    CoreConfig ccfg_;
    std::vector<CoreModel> cores_;
    std::vector<Batch> batch_;
    std::uint64_t tick_ = 0;
    /** Cycle at which the shared DRAM channel is next free. */
    Cycle memFree_ = 0;

    std::uint64_t heartbeatInterval_ = 0;
    std::function<void(std::uint64_t)> heartbeat_;
    obs::Profiler *profiler_ = nullptr;

    bool hasDeadline_ = false;
    std::chrono::steady_clock::time_point deadline_;
    std::uint64_t deadlineTick_ = 0;

    /** Type-erased view of the subclass-owned hierarchy. */
    HierarchyBase *hierView_ = nullptr;

  private:
    void checkDeadlineSlow(const char *phase);
};

/**
 * The system with the LLC policy type bound at compile time.
 */
template <class LlcP>
class BasicSystem final : public SystemBase
{
  public:
    /**
     * @param hcfg hierarchy geometry (hcfg.numCores cores)
     * @param ccfg core model parameters
     * @param llc_policy replacement policy for the shared LLC
     */
    BasicSystem(const HierarchyConfig &hcfg, const CoreConfig &ccfg,
                std::unique_ptr<LlcP> llc_policy)
        : SystemBase(hcfg, ccfg),
          hierarchy_(hcfg, std::move(llc_policy))
    {
        hierView_ = &hierarchy_;
    }

    /** Typed accessor (shadows the HierarchyBase view). */
    BasicHierarchy<LlcP> &hierarchy() { return hierarchy_; }
    const BasicHierarchy<LlcP> &hierarchy() const
    {
        return hierarchy_;
    }

    /**
     * Batch read-ahead distance of the software prefetcher: while
     * access i simulates, the set lanes of access i+k are requested.
     * k must cover the per-record simulation latency (~20 host ns)
     * against the ~100 ns lane-miss it hides, without running so far
     * ahead that the hints are evicted before use; k = 8 measured
     * best on the bench host (DESIGN.md §15).  Hints never cross a
     * batch boundary, so no record is prefetched that the generator
     * has not already produced.
     */
    static constexpr std::size_t kPrefetchDistance = 8;

    std::vector<ThreadRunResult>
    run(const std::vector<AccessGenerator *> &gens, InstCount warmup,
        InstCount measure) override
    {
        const std::uint32_t n = hcfg_.numCores;
        if (gens.size() != n)
            fatal("System::run: need one generator per core");
        assert(measure > 0);

        // Fresh read-ahead: records buffered for a previous run()'s
        // generators must not leak into this one.
        batch_.assign(n, Batch{});

        // Interleave cores by advancing whichever has the smallest
        // local clock, so a stalled core naturally issues fewer
        // accesses.  Single-core runs — the common case — skip the
        // scan entirely.
        auto next_core = [&](const std::vector<bool> &eligible) {
            if (n == 1)
                return 0u;
            std::uint32_t best = 0;
            Cycle best_cycles = std::numeric_limits<Cycle>::max();
            for (std::uint32_t c = 0; c < n; ++c) {
                if (eligible[c] && cores_[c].cycles() < best_cycles) {
                    best = c;
                    best_cycles = cores_[c].cycles();
                }
            }
            return best;
        };

        // --- Warm-up phase ---
        if (warmup > 0) {
            std::optional<obs::Profiler::Scope> prof;
            if (profiler_)
                prof.emplace(profiler_->scope("warmup"));
            const std::uint64_t warmup_start = tick_;
            std::vector<bool> warming(n, true);
            std::uint32_t still_warming = n;
            while (still_warming > 0) {
                const std::uint32_t c = next_core(warming);
                step(c, fetchAndPrefetch(c, *gens[c]));
                checkDeadline("warmup");
                if (cores_[c].instructions() >= warmup) {
                    warming[c] = false;
                    --still_warming;
                }
            }
            hierarchy_.clearStats();
            if (profiler_)
                profiler_->addEvents("warmup", tick_ - warmup_start);
        }

        // --- Measurement phase ---
        std::vector<InstCount> start_insts(n);
        std::vector<Cycle> start_cycles(n);
        for (std::uint32_t c = 0; c < n; ++c) {
            start_insts[c] = cores_[c].instructions();
            start_cycles[c] = cores_[c].cycles();
        }

        std::optional<obs::Profiler::Scope> prof;
        if (profiler_)
            prof.emplace(profiler_->scope("measure"));
        const std::uint64_t measure_start = tick_;

        // Heartbeats only fire in this phase: warmup stats were just
        // cleared, so from here on every registered counter is
        // monotone across snapshots.  The baseline sample anchors
        // interval 0.
        std::uint64_t next_beat =
            std::numeric_limits<std::uint64_t>::max();
        if (heartbeatInterval_ > 0 && heartbeat_) {
            heartbeat_(tick_);
            next_beat = tick_ + heartbeatInterval_;
        }

        std::vector<ThreadRunResult> results(n);

        // Single-core fast loop: the common case (every per-workload
        // figure cell) needs no core interleaving, no eligibility
        // bookkeeping, and no per-record scan for the smallest local
        // clock — just fetch/step/until-quota, with the completion
        // test against a precomputed target.  Record-for-record
        // identical to the general loop below with n == 1.
        if (n == 1) {
            CoreModel &core = cores_[0];
            AccessGenerator &gen = *gens[0];
            const InstCount target = start_insts[0] + measure;
            while (core.instructions() < target) {
                step(0, fetchAndPrefetch(0, gen));
                checkDeadline("measure");
                if (tick_ >= next_beat) {
                    heartbeat_(tick_);
                    next_beat = tick_ + heartbeatInterval_;
                }
            }
            auto &r = results[0];
            r.instructions = core.instructions() - start_insts[0];
            r.cycles = core.cycles() - start_cycles[0];
            r.ipc = ratio(static_cast<double>(r.instructions),
                          static_cast<double>(r.cycles));
            gen.reset();
            batch_[0].pos = batch_[0].fill = 0;
            if (heartbeatInterval_ > 0 && heartbeat_)
                heartbeat_(tick_); // final partial interval
            if (profiler_)
                profiler_->addEvents("measure", tick_ - measure_start);
            return results;
        }

        std::vector<bool> running(n, true);
        std::uint32_t unfinished = n;
        std::vector<bool> all(n, true);
        while (unfinished > 0) {
            // Finished cores keep running (restarted) to preserve
            // contention, so everyone is eligible.
            const std::uint32_t c = next_core(all);
            step(c, fetchAndPrefetch(c, *gens[c]));
            checkDeadline("measure");
            if (tick_ >= next_beat) {
                heartbeat_(tick_);
                next_beat = tick_ + heartbeatInterval_;
            }
            if (running[c] &&
                cores_[c].instructions() - start_insts[c] >= measure) {
                running[c] = false;
                --unfinished;
                auto &r = results[c];
                r.instructions =
                    cores_[c].instructions() - start_insts[c];
                r.cycles = cores_[c].cycles() - start_cycles[c];
                r.ipc = ratio(static_cast<double>(r.instructions),
                              static_cast<double>(r.cycles));
                // Restart the program (Sec. VI-A2); drop the
                // read-ahead so the restarted stream begins at its
                // beginning, exactly as a record-at-a-time loop
                // would see it.
                gens[c]->reset();
                batch_[c].pos = batch_[c].fill = 0;
            }
        }
        if (heartbeatInterval_ > 0 && heartbeat_)
            heartbeat_(tick_); // final partial interval
        if (profiler_)
            profiler_->addEvents("measure", tick_ - measure_start);
        return results;
    }

    ThreadRunResult
    simulate(std::span<const Access> trace) override
    {
        const InstCount start_insts = cores_[0].instructions();
        const Cycle start_cycles = cores_[0].cycles();
        for (std::size_t i = 0; i < trace.size(); ++i) {
            if (i + kPrefetchDistance < trace.size()) {
                hierarchy_.prefetchAhead(
                    trace[i + kPrefetchDistance].blockAddr(), 0);
            }
            Access stamped = trace[i];
            stamped.thread = 0;
            step(0, stamped);
            checkDeadline("simulate");
        }
        ThreadRunResult r;
        r.instructions = cores_[0].instructions() - start_insts;
        r.cycles = cores_[0].cycles() - start_cycles;
        r.ipc = ratio(static_cast<double>(r.instructions),
                      static_cast<double>(r.cycles));
        return r;
    }

  private:
    /**
     * Fetch the next record and, while its simulation is about to
     * run, request the set lanes record i+k of the same batch will
     * touch.  Issued here rather than in fetch() because the
     * prefetch targets live behind the bound hierarchy type.
     */
    SDBP_HOT_PATH const Access &
    fetchAndPrefetch(std::uint32_t c, AccessGenerator &gen)
    {
        const Access &rec = fetch(c, gen);
        const Batch &b = batch_[c];
        // pos already advanced past the current record in fetch().
        const std::size_t ahead = b.pos - 1 + kPrefetchDistance;
        if (ahead < b.fill)
            hierarchy_.prefetchAhead(b.records[ahead].blockAddr(),
                                     static_cast<ThreadId>(c));
        return rec;
    }

    /** Advance core @p c by one trace record (rec.thread == c). */
    SDBP_HOT_PATH void
    step(std::uint32_t c, const Access &rec)
    {
        cores_[c].executeNonMem(rec.gap);
        HierarchyResult res = hierarchy_.access(rec, tick_);
        if (res.level == ServiceLevel::Memory &&
            hcfg_.memServiceInterval > 0) {
            // Shared DRAM channel: back-to-back misses queue behind
            // the service interval.
            const Cycle request = cores_[c].cycles();
            const Cycle start = std::max(request, memFree_);
            res.latency += start - request;
            memFree_ = start + hcfg_.memServiceInterval;
        }
        cores_[c].executeMem(res.latency, !rec.isWrite,
                             rec.dependsOnPrevLoad);
        tick_ += rec.gap + 1;
    }

    BasicHierarchy<LlcP> hierarchy_;
};

/** The type-erased system: virtual LLC policy dispatch. */
using System = BasicSystem<ReplacementPolicy>;

} // namespace sdbp

#endif // SDBP_CPU_SYSTEM_HH
