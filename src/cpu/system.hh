/**
 * @file
 * Single- and multi-core simulated system: cores drive their
 * workload generators through the shared hierarchy.  Implements the
 * paper's multi-core methodology (Sec. VI-A2): all programs run
 * simultaneously, and a program that finishes its instruction quota
 * restarts and keeps generating contention until every program has
 * finished; per-thread statistics freeze at first completion.
 */

#ifndef SDBP_CPU_SYSTEM_HH
#define SDBP_CPU_SYSTEM_HH

#include <memory>
#include <vector>

#include "cache/hierarchy.hh"
#include "cpu/core_model.hh"
#include "trace/access.hh"

namespace sdbp
{

/** Per-thread outcome of a run. */
struct ThreadRunResult
{
    InstCount instructions = 0;
    Cycle cycles = 0;
    double ipc = 0;
};

class System
{
  public:
    /**
     * @param hcfg hierarchy geometry (hcfg.numCores cores)
     * @param ccfg core model parameters
     * @param llc_policy replacement policy for the shared LLC
     */
    System(const HierarchyConfig &hcfg, const CoreConfig &ccfg,
           std::unique_ptr<ReplacementPolicy> llc_policy);

    /**
     * Run every core for @p measure instructions after a @p warmup
     * period (statistics are cleared between the phases).
     *
     * @param gens one generator per core (not owned)
     */
    std::vector<ThreadRunResult>
    run(const std::vector<AccessGenerator *> &gens, InstCount warmup,
        InstCount measure);

    Hierarchy &hierarchy() { return hierarchy_; }
    const Hierarchy &hierarchy() const { return hierarchy_; }

    /** Global tick (total instructions executed by all cores). */
    std::uint64_t tick() const { return tick_; }

  private:
    /** Advance core @p c by one trace record. */
    void step(std::uint32_t c, AccessGenerator &gen);

    HierarchyConfig hcfg_;
    CoreConfig ccfg_;
    Hierarchy hierarchy_;
    std::vector<CoreModel> cores_;
    std::uint64_t tick_ = 0;
    /** Cycle at which the shared DRAM channel is next free. */
    Cycle memFree_ = 0;
};

} // namespace sdbp

#endif // SDBP_CPU_SYSTEM_HH
