#include "cpu/core_model.hh"

#include <cassert>

#include "obs/stat_registry.hh"

namespace sdbp
{

CoreModel::CoreModel(const CoreConfig &cfg)
    : cfg_(cfg), window_(cfg.robSize, 0)
{
    assert(cfg_.width >= 1);
    assert(cfg_.robSize >= 1);
    reset();
}

void
CoreModel::reset()
{
    instructions_ = 0;
    dispatchCycle_ = cfg_.pipelineDepth; // pipeline fill
    slotInCycle_ = 0;
    lastLoadComplete_ = 0;
    maxCompletion_ = 0;
    head_ = 0;
    count_ = 0;
}

void
CoreModel::registerStats(obs::StatRegistry &reg,
                         const std::string &prefix) const
{
    using obs::StatRegistry;
    reg.addCounter(StatRegistry::join(prefix, "instructions"),
                   &instructions_);
    reg.addGauge(StatRegistry::join(prefix, "cycles"), [this] {
        return static_cast<double>(cycles());
    });
}

} // namespace sdbp
