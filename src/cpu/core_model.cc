#include "cpu/core_model.hh"

#include <algorithm>
#include <cassert>

#include "obs/stat_registry.hh"

namespace sdbp
{

CoreModel::CoreModel(const CoreConfig &cfg)
    : cfg_(cfg), window_(cfg.robSize, 0)
{
    assert(cfg_.width >= 1);
    assert(cfg_.robSize >= 1);
    reset();
}

void
CoreModel::reset()
{
    instructions_ = 0;
    dispatchCycle_ = cfg_.pipelineDepth; // pipeline fill
    slotInCycle_ = 0;
    lastLoadComplete_ = 0;
    maxCompletion_ = 0;
    head_ = 0;
    count_ = 0;
}

void
CoreModel::dispatch(Cycle completion)
{
    if (count_ == window_.size()) {
        // Window full: dispatch stalls until the oldest instruction
        // retires.
        const Cycle oldest = window_[head_];
        if (oldest > dispatchCycle_) {
            dispatchCycle_ = oldest;
            slotInCycle_ = 0;
        }
        head_ = (head_ + 1) % window_.size();
        --count_;
    }
    const std::size_t tail = (head_ + count_) % window_.size();
    // Retirement is in order: an instruction cannot leave the window
    // before its predecessors, so clamp to the running maximum.
    const Cycle retire = std::max(completion, maxCompletion_);
    window_[tail] = retire;
    ++count_;
    maxCompletion_ = retire;

    ++instructions_;
    if (++slotInCycle_ >= cfg_.width) {
        slotInCycle_ = 0;
        ++dispatchCycle_;
    }
}

void
CoreModel::executeNonMem(unsigned n)
{
    for (unsigned i = 0; i < n; ++i)
        dispatch(dispatchCycle_ + 1);
}

void
CoreModel::executeMem(Cycle latency, bool is_load,
                      bool depends_on_prev_load)
{
    if (!is_load) {
        // Stores retire via the write buffer.
        dispatch(dispatchCycle_ + 1);
        return;
    }
    Cycle issue = dispatchCycle_;
    if (depends_on_prev_load)
        issue = std::max(issue, lastLoadComplete_);
    const Cycle completion = issue + latency;
    lastLoadComplete_ = completion;
    dispatch(completion);
}

Cycle
CoreModel::cycles() const
{
    return std::max(dispatchCycle_, maxCompletion_);
}

void
CoreModel::registerStats(obs::StatRegistry &reg,
                         const std::string &prefix) const
{
    using obs::StatRegistry;
    reg.addCounter(StatRegistry::join(prefix, "instructions"),
                   &instructions_);
    reg.addGauge(StatRegistry::join(prefix, "cycles"), [this] {
        return static_cast<double>(cycles());
    });
}

} // namespace sdbp
