#include "cpu/system.hh"

#include <cassert>
#include <limits>
#include <optional>

#include "obs/profiler.hh"
#include "obs/stat_registry.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace sdbp
{

System::System(const HierarchyConfig &hcfg, const CoreConfig &ccfg,
               std::unique_ptr<ReplacementPolicy> llc_policy)
    : hcfg_(hcfg), ccfg_(ccfg),
      hierarchy_(hcfg, std::move(llc_policy)),
      cores_(hcfg.numCores, CoreModel(ccfg))
{
}

void
System::step(std::uint32_t c, AccessGenerator &gen)
{
    const TraceRecord rec = gen.next();
    cores_[c].executeNonMem(rec.gap);
    HierarchyResult res = hierarchy_.access(c, rec.access, tick_);
    if (res.level == ServiceLevel::Memory &&
        hcfg_.memServiceInterval > 0) {
        // Shared DRAM channel: back-to-back misses queue behind the
        // service interval.
        const Cycle request = cores_[c].cycles();
        const Cycle start = std::max(request, memFree_);
        res.latency += start - request;
        memFree_ = start + hcfg_.memServiceInterval;
    }
    cores_[c].executeMem(res.latency, !rec.access.isWrite,
                         rec.access.dependsOnPrevLoad);
    tick_ += rec.gap + 1;
}

void
System::checkDeadline(const char *phase)
{
    // One branch per step in the common case; the clock is only read
    // every 32Ki steps.
    constexpr std::uint64_t kDeadlineStride = 1u << 15;
    if (!hasDeadline_ || ++deadlineTick_ % kDeadlineStride != 0)
        return;
    if (std::chrono::steady_clock::now() >= deadline_)
        throw SimulationTimeout(
            std::string("simulation deadline exceeded during ") +
            phase + " after " + std::to_string(tick_) + " ticks");
}

void
System::registerStats(obs::StatRegistry &reg) const
{
    reg.addCounter("sys.instructions", &tick_);
    for (std::uint32_t c = 0; c < hcfg_.numCores; ++c) {
        cores_[c].registerStats(reg,
                                "core" + std::to_string(c));
    }
    hierarchy_.registerStats(reg);
}

std::vector<ThreadRunResult>
System::run(const std::vector<AccessGenerator *> &gens,
            InstCount warmup, InstCount measure)
{
    const std::uint32_t n = hcfg_.numCores;
    if (gens.size() != n)
        fatal("System::run: need one generator per core");
    assert(measure > 0);

    // Interleave cores by advancing whichever has the smallest local
    // clock, so a stalled core naturally issues fewer accesses.
    auto next_core = [&](const std::vector<bool> &eligible) {
        std::uint32_t best = 0;
        Cycle best_cycles = std::numeric_limits<Cycle>::max();
        for (std::uint32_t c = 0; c < n; ++c) {
            if (eligible[c] && cores_[c].cycles() < best_cycles) {
                best = c;
                best_cycles = cores_[c].cycles();
            }
        }
        return best;
    };

    // --- Warm-up phase ---
    if (warmup > 0) {
        std::optional<obs::Profiler::Scope> prof;
        if (profiler_)
            prof.emplace(profiler_->scope("warmup"));
        const std::uint64_t warmup_start = tick_;
        std::vector<bool> warming(n, true);
        std::uint32_t still_warming = n;
        while (still_warming > 0) {
            const std::uint32_t c = next_core(warming);
            step(c, *gens[c]);
            checkDeadline("warmup");
            if (cores_[c].instructions() >= warmup) {
                warming[c] = false;
                --still_warming;
            }
        }
        hierarchy_.clearStats();
        if (profiler_)
            profiler_->addEvents("warmup", tick_ - warmup_start);
    }

    // --- Measurement phase ---
    std::vector<InstCount> start_insts(n);
    std::vector<Cycle> start_cycles(n);
    for (std::uint32_t c = 0; c < n; ++c) {
        start_insts[c] = cores_[c].instructions();
        start_cycles[c] = cores_[c].cycles();
    }

    std::optional<obs::Profiler::Scope> prof;
    if (profiler_)
        prof.emplace(profiler_->scope("measure"));
    const std::uint64_t measure_start = tick_;

    // Heartbeats only fire in this phase: warmup stats were just
    // cleared, so from here on every registered counter is monotone
    // across snapshots.  The baseline sample anchors interval 0.
    std::uint64_t next_beat =
        std::numeric_limits<std::uint64_t>::max();
    if (heartbeatInterval_ > 0 && heartbeat_) {
        heartbeat_(tick_);
        next_beat = tick_ + heartbeatInterval_;
    }

    std::vector<ThreadRunResult> results(n);
    std::vector<bool> running(n, true);
    std::uint32_t unfinished = n;
    std::vector<bool> all(n, true);
    while (unfinished > 0) {
        // Finished cores keep running (restarted) to preserve
        // contention, so everyone is eligible.
        const std::uint32_t c = next_core(all);
        step(c, *gens[c]);
        checkDeadline("measure");
        if (tick_ >= next_beat) {
            heartbeat_(tick_);
            next_beat = tick_ + heartbeatInterval_;
        }
        if (running[c] &&
            cores_[c].instructions() - start_insts[c] >= measure) {
            running[c] = false;
            --unfinished;
            auto &r = results[c];
            r.instructions = cores_[c].instructions() - start_insts[c];
            r.cycles = cores_[c].cycles() - start_cycles[c];
            r.ipc = ratio(static_cast<double>(r.instructions),
                          static_cast<double>(r.cycles));
            // Restart the program (Sec. VI-A2).
            gens[c]->reset();
        }
    }
    if (heartbeatInterval_ > 0 && heartbeat_)
        heartbeat_(tick_); // final partial interval
    if (profiler_)
        profiler_->addEvents("measure", tick_ - measure_start);
    return results;
}

} // namespace sdbp
