#include "cpu/system.hh"

#include "obs/stat_registry.hh"

namespace sdbp
{

SystemBase::SystemBase(const HierarchyConfig &hcfg,
                       const CoreConfig &ccfg)
    : hcfg_(hcfg), ccfg_(ccfg),
      cores_(hcfg.numCores, CoreModel(ccfg)), batch_(hcfg.numCores)
{
}

void
SystemBase::checkDeadlineSlow(const char *phase)
{
    if (std::chrono::steady_clock::now() >= deadline_)
        throw SimulationTimeout(
            std::string("simulation deadline exceeded during ") +
            phase + " after " + std::to_string(tick_) + " ticks");
}

void
SystemBase::registerStats(obs::StatRegistry &reg) const
{
    reg.addCounter("sys.instructions", &tick_);
    for (std::uint32_t c = 0; c < hcfg_.numCores; ++c) {
        cores_[c].registerStats(reg,
                                "core" + std::to_string(c));
    }
    hierView_->registerStats(reg);
}

} // namespace sdbp
