#include "power/storage.hh"

#include <memory>

#include "core/sdbp.hh"
#include "power/budget_audit.hh"
#include "predictor/aip.hh"
#include "predictor/burst_trace.hh"
#include "predictor/counting.hh"
#include "predictor/reftrace.hh"
#include "predictor/sampling_counting.hh"
#include "predictor/time_based.hh"

namespace sdbp
{

namespace
{

double
bitsToKB(std::uint64_t bits)
{
    return static_cast<double>(bits) / 8.0 / 1024.0;
}

} // anonymous namespace

double
StorageBreakdown::totalKB() const
{
    return bitsToKB(totalBits());
}

double
StorageBreakdown::predictorKB() const
{
    return bitsToKB(predictorBits);
}

double
StorageBreakdown::metadataKB() const
{
    return bitsToKB(metadataBits());
}

double
StorageBreakdown::fractionOfCache(std::uint64_t cache_bytes) const
{
    if (cache_bytes == 0)
        return 0.0;
    return static_cast<double>(totalBits()) / 8.0 /
        static_cast<double>(cache_bytes);
}

StorageBreakdown
storageOf(const DeadBlockPredictor &predictor, std::uint64_t num_blocks)
{
    StorageBreakdown b;
    b.predictor = predictor.name();
    b.predictorBits = predictor.storageBits();
    b.metadataBitsPerBlock = predictor.metadataBitsPerBlock();
    b.numBlocks = num_blocks;
    return b;
}

std::vector<StorageModel::Entry>
StorageModel::shipped(std::uint64_t num_blocks)
{
    // Same order as budget_audit::shippedRows() — the pairing below
    // is positional.
    std::vector<std::unique_ptr<DeadBlockPredictor>> predictors;
    predictors.push_back(std::make_unique<SamplingDeadBlockPredictor>(
        SdbpConfig::paperDefault()));
    predictors.push_back(std::make_unique<SamplingDeadBlockPredictor>(
        SdbpConfig::singleTable()));
    predictors.push_back(std::make_unique<RefTracePredictor>());
    predictors.push_back(std::make_unique<CountingPredictor>());
    predictors.push_back(std::make_unique<SamplingCountingPredictor>());
    predictors.push_back(std::make_unique<AipPredictor>());
    predictors.push_back(std::make_unique<TimeBasedPredictor>());
    predictors.push_back(std::make_unique<BurstTracePredictor>());

    constexpr auto rows = budget_audit::shippedRows();
    static_assert(rows.size() == 8,
                  "audit rows and predictor list must stay in sync");

    std::vector<Entry> entries;
    entries.reserve(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
        Entry e;
        e.label = rows[i].label;
        e.breakdown = storageOf(*predictors[i], num_blocks);
        e.auditPredictorBits = rows[i].predictorBits;
        e.auditMetadataBitsPerBlock = rows[i].metadataBitsPerBlock;
        entries.push_back(std::move(e));
    }
    return entries;
}

} // namespace sdbp
