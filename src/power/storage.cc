#include "power/storage.hh"

namespace sdbp
{

namespace
{

double
bitsToKB(std::uint64_t bits)
{
    return static_cast<double>(bits) / 8.0 / 1024.0;
}

} // anonymous namespace

double
StorageBreakdown::totalKB() const
{
    return bitsToKB(totalBits());
}

double
StorageBreakdown::predictorKB() const
{
    return bitsToKB(predictorBits);
}

double
StorageBreakdown::metadataKB() const
{
    return bitsToKB(metadataBits());
}

double
StorageBreakdown::fractionOfCache(std::uint64_t cache_bytes) const
{
    if (cache_bytes == 0)
        return 0.0;
    return static_cast<double>(totalBits()) / 8.0 /
        static_cast<double>(cache_bytes);
}

StorageBreakdown
storageOf(const DeadBlockPredictor &predictor, std::uint64_t num_blocks)
{
    StorageBreakdown b;
    b.predictor = predictor.name();
    b.predictorBits = predictor.storageBits();
    b.metadataBitsPerBlock = predictor.metadataBitsPerBlock();
    b.numBlocks = num_blocks;
    return b;
}

} // namespace sdbp
