#include "power/model.hh"

#include <cmath>

namespace sdbp
{

namespace
{

/** Paper's baseline LLC figures (Sec. IV-D). */
constexpr double llcDynamicW = 2.75;
constexpr double llcLeakageW = 0.512;

} // anonymous namespace

SramGeometry
PowerModel::baselineLlcGeometry()
{
    SramGeometry g;
    g.name = "LLC 2MB";
    // 2 MB data + per-block tag/state (~25 bits) for 32 K blocks.
    const std::uint64_t blocks = 32768;
    g.totalBits = 2ull * 1024 * 1024 * 8 + blocks * 25;
    // One 64 B line plus a 16-way tag group per access.
    g.accessBits = 64 * 8 + 16 * 25;
    return g;
}

SramGeometry
PowerModel::metadataGeometry(const std::string &name,
                             std::uint64_t bits_per_block,
                             std::uint64_t num_blocks)
{
    SramGeometry g;
    g.name = name;
    g.totalBits = bits_per_block * num_blocks;
    // A read-modify-write of the per-block field on each access;
    // the rows live inside the LLC's own arrays.
    g.accessBits = 2 * bits_per_block;
    g.embedded = true;
    return g;
}

PowerModel::PowerModel()
{
    const SramGeometry llc = baselineLlcGeometry();
    leakPerBit_ = llcLeakageW / static_cast<double>(llc.totalBits);
    // Capacity exponent fitted so the predictor tables land near
    // the paper's Table II figures (see DESIGN.md §3).
    alpha_ = 0.5;
    const double llc_units = static_cast<double>(llc.accessBits) +
        std::pow(static_cast<double>(llc.totalBits), alpha_);
    dynCoeff_ = llcDynamicW / llc_units;
}

PowerEstimate
PowerModel::estimate(const SramGeometry &g) const
{
    PowerEstimate e;
    e.leakageW = leakPerBit_ * static_cast<double>(g.totalBits);
    const double capacity_units = g.embedded || g.totalBits == 0
        ? 0.0
        : std::pow(static_cast<double>(g.totalBits), alpha_);
    const double units =
        static_cast<double>(g.accessBits) + capacity_units;
    e.peakDynamicW = dynCoeff_ * units;
    e.effectiveDynamicW = e.peakDynamicW * g.activity;
    return e;
}

} // namespace sdbp
