/**
 * @file
 * The static, `static_assert`-driven hardware-budget audit.
 *
 * Every predictor config exposes constexpr storage accounting built
 * from the spec types of `util/budget.hh`; this header evaluates the
 * shipped configurations at compile time and pins them to the
 * paper's budgets (Table I, Sec. IV).  Because the runtime
 * `storageBits()` of each predictor delegates to the very same
 * constexpr config functions, `power::storageOf()` can never drift
 * from the numbers asserted here: an off-by-one in index width or a
 * widened counter fails the build, not a benchmark three PRs later.
 */

#ifndef SDBP_POWER_BUDGET_AUDIT_HH
#define SDBP_POWER_BUDGET_AUDIT_HH

#include <array>
#include <cstdint>

#include "core/sdbp.hh"
#include "predictor/aip.hh"
#include "predictor/burst_trace.hh"
#include "predictor/counting.hh"
#include "predictor/reftrace.hh"
#include "predictor/sampling_counting.hh"
#include "predictor/time_based.hh"

namespace sdbp
{
namespace budget_audit
{

/** The evaluation LLC: 2 MB of 64 B blocks (Sec. VI-A). */
constexpr std::uint64_t llcBlocks2MB = 32768;
constexpr std::uint64_t llcBytes2MB = 2ull * 1024 * 1024;

/** One predictor configuration's compile-time storage accounting. */
struct Row
{
    const char *label;
    std::uint64_t predictorBits;
    std::uint64_t metadataBitsPerBlock;

    constexpr std::uint64_t
    totalBits(std::uint64_t num_blocks) const
    {
        return predictorBits + metadataBitsPerBlock * num_blocks;
    }
};

/**
 * Every shipped predictor configuration, in the fixed order
 * `power::StorageModel::shipped()` instantiates the live predictors
 * (the pairing is positional — keep the two lists in sync).
 */
constexpr std::array<Row, 8>
shippedRows()
{
    return {{
        {"sampler (paper default)",
         SdbpConfig::paperDefault().storageBits(),
         SdbpConfig::paperDefault().metadataBitsPerBlock()},
        {"sampler (single table)",
         SdbpConfig::singleTable().storageBits(),
         SdbpConfig::singleTable().metadataBitsPerBlock()},
        {"reftrace", RefTraceConfig{}.storageBits(),
         RefTraceConfig{}.metadataBitsPerBlock()},
        {"counting", CountingConfig{}.storageBits(),
         CountingConfig{}.metadataBitsPerBlock()},
        {"sampling-counting", SamplingCountingConfig{}.storageBits(),
         SamplingCountingConfig{}.metadataBitsPerBlock()},
        {"aip", AipConfig{}.storageBits(),
         AipConfig{}.metadataBitsPerBlock()},
        {"time-based", TimeBasedConfig{}.storageBits(),
         TimeBasedConfig{}.metadataBitsPerBlock()},
        {"burst-trace", BurstTraceConfig{}.storageBits(),
         BurstTraceConfig{}.metadataBitsPerBlock()},
    }};
}

// ====================================================================
// The paper's budgets, bit-exact.  A change to any config default or
// storage formula that silently alters a modeled structure fails
// right here.
// ====================================================================

// Skewed tables: three 4096-entry banks of 2-bit counters = 3 KB.
static_assert(SkewedTableConfig{}.storageBits() == 3 * 4096 * 2,
              "skewed table budget drifted from 3x4096x2 bits");
static_assert(SkewedTableConfig{}.counterMax() == 3,
              "2-bit saturating counters saturate at 3");

// Sampler: 32 sets x 12 ways x (15 tag + 15 PC + valid + predicted
// + 4 LRU) = 13824 bits = 1.6875 KB.
static_assert(SamplerConfig{}.lruBits() == 4,
              "12-way sampler needs 4 LRU bits");
static_assert(SamplerConfig{}.storageBits() == 32 * 12 * 36,
              "sampler tag array budget drifted from 32x12x36 bits");

// SDBP: tables + sampler = 38400 bits (4.6875 KB), one metadata bit
// per LLC block.
static_assert(SdbpConfig::paperDefault().storageBits() == 38400,
              "SDBP predictor budget drifted");
static_assert(SdbpConfig::paperDefault().metadataBitsPerBlock() == 1,
              "SDBP stores exactly one predicted-dead bit per block");
// Single-table ablation: one 16384-entry bank (4x one skewed bank).
static_assert(SdbpConfig::singleTable().table.storageBits() ==
                  4 * SkewedTableConfig{}.storageBits() / 3,
              "single-table bank is 4x one skewed bank");

// Reftrace: 8 KB table + 16 metadata bits/block = 72 KB at 2 MB
// (Table I).
static_assert(RefTraceConfig{}.storageBits() == 8 * 8 * 1024,
              "reftrace table budget drifted from 8 KB");
static_assert(RefTraceConfig{}.metadataBitsPerBlock() == 16,
              "reftrace per-block metadata drifted from 16 bits");

// Counting (LvP): 40 KB table + 17 metadata bits/block = 108 KB at
// 2 MB (Table I).
static_assert(CountingConfig{}.storageBits() == 40 * 8 * 1024,
              "counting table budget drifted from 40 KB");
static_assert(CountingConfig{}.metadataBitsPerBlock() == 17,
              "counting per-block metadata drifted from 17 bits");

// Table I totals for the 2 MB LLC.
static_assert(shippedRows()[2].totalBits(llcBlocks2MB) ==
                  72 * 8 * 1024,
              "reftrace Table I total drifted from 72 KB");
static_assert(shippedRows()[3].totalBits(llcBlocks2MB) ==
                  108 * 8 * 1024,
              "counting Table I total drifted from 108 KB");
// The headline claim: SDBP costs ~8.7 KB, well under 1% of the LLC,
// >5x less than reftrace and >8x less than counting.
static_assert(shippedRows()[0].totalBits(llcBlocks2MB) ==
                  38400 + llcBlocks2MB,
              "SDBP Table I total drifted");
static_assert(shippedRows()[0].totalBits(llcBlocks2MB) * 100 <
                  llcBytes2MB * 8,
              "SDBP must stay under 1% of LLC capacity");
static_assert(shippedRows()[0].totalBits(llcBlocks2MB) * 5 <
                  shippedRows()[2].totalBits(llcBlocks2MB),
              "SDBP must stay >5x smaller than reftrace");
static_assert(shippedRows()[0].totalBits(llcBlocks2MB) * 8 <
                  shippedRows()[3].totalBits(llcBlocks2MB),
              "SDBP must stay >8x smaller than counting");

} // namespace budget_audit
} // namespace sdbp

#endif // SDBP_POWER_BUDGET_AUDIT_HH
