/**
 * @file
 * Analytical SRAM storage/power model — the CACTI 5.3 substitute
 * used to reproduce Table II (see DESIGN.md §3).
 *
 * Leakage is proportional to state bits.  Dynamic (peak) power per
 * structure follows a sub-linear capacity law,
 *
 *     P_dyn = k_d * (bits_accessed + (total_bits)^alpha),
 *
 * with the two coefficients calibrated so the paper's baseline 2 MB
 * LLC comes out at 2.75 W dynamic and 0.512 W leakage.  The model is
 * deliberately transparent: every number in the Table II bench is a
 * function of structure geometry plus these two calibrated
 * constants.
 */

#ifndef SDBP_POWER_MODEL_HH
#define SDBP_POWER_MODEL_HH

#include <cstdint>
#include <string>

namespace sdbp
{

/** Geometry of one SRAM structure. */
struct SramGeometry
{
    std::string name;
    /** Total state bits. */
    std::uint64_t totalBits = 0;
    /** Bits read/written per access (row activity). */
    std::uint64_t accessBits = 0;
    /**
     * Fraction of LLC accesses that touch this structure (1.0 =
     * every access).  Used for the "effective" dynamic column; peak
     * power ignores it, as CACTI does.
     */
    double activity = 1.0;
    /**
     * True for per-block metadata embedded in the LLC data array:
     * its rows are activated by the access anyway, so dynamic power
     * counts only the extra bits moved, not a standalone decode.
     */
    bool embedded = false;
};

struct PowerEstimate
{
    double leakageW = 0;
    /** Peak dynamic power (CACTI-style). */
    double peakDynamicW = 0;
    /** Peak scaled by the structure's activity. */
    double effectiveDynamicW = 0;
};

class PowerModel
{
  public:
    /** Calibrated against the paper's 2 MB LLC figures. */
    PowerModel();

    PowerEstimate estimate(const SramGeometry &g) const;

    /** The baseline LLC the percentages of Sec. IV-D refer to. */
    static SramGeometry baselineLlcGeometry();

    /**
     * Geometry of the extra per-block metadata a predictor adds to
     * the LLC data array, modeled (as in the paper) as the delta
     * between the LLC with and without the extra bits.
     */
    static SramGeometry metadataGeometry(const std::string &name,
                                         std::uint64_t bits_per_block,
                                         std::uint64_t num_blocks);

    double leakagePerBit() const { return leakPerBit_; }
    double dynamicCoefficient() const { return dynCoeff_; }
    double capacityExponent() const { return alpha_; }

  private:
    double leakPerBit_;
    double dynCoeff_;
    double alpha_;
};

} // namespace sdbp

#endif // SDBP_POWER_MODEL_HH
