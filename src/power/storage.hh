/**
 * @file
 * Predictor storage accounting (Table I).
 */

#ifndef SDBP_POWER_STORAGE_HH
#define SDBP_POWER_STORAGE_HH

#include <cstdint>
#include <string>

#include "predictor/dead_block_predictor.hh"

namespace sdbp
{

struct StorageBreakdown
{
    std::string predictor;
    /** Predictor-side structure bits (tables, sampler). */
    std::uint64_t predictorBits = 0;
    /** Extra metadata bits per LLC block. */
    std::uint64_t metadataBitsPerBlock = 0;
    /** Number of LLC blocks. */
    std::uint64_t numBlocks = 0;

    std::uint64_t
    metadataBits() const
    {
        return metadataBitsPerBlock * numBlocks;
    }

    std::uint64_t
    totalBits() const
    {
        return predictorBits + metadataBits();
    }

    double totalKB() const;
    double predictorKB() const;
    double metadataKB() const;

    /** Share of a cache of @p cache_bytes bytes. */
    double fractionOfCache(std::uint64_t cache_bytes) const;
};

/** Compute the breakdown for a predictor over an LLC of
 *  @p num_blocks blocks. */
StorageBreakdown storageOf(const DeadBlockPredictor &predictor,
                           std::uint64_t num_blocks);

} // namespace sdbp

#endif // SDBP_POWER_STORAGE_HH
