/**
 * @file
 * Predictor storage accounting (Table I).
 */

#ifndef SDBP_POWER_STORAGE_HH
#define SDBP_POWER_STORAGE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "predictor/dead_block_predictor.hh"

namespace sdbp
{

struct StorageBreakdown
{
    std::string predictor;
    /** Predictor-side structure bits (tables, sampler). */
    std::uint64_t predictorBits = 0;
    /** Extra metadata bits per LLC block. */
    std::uint64_t metadataBitsPerBlock = 0;
    /** Number of LLC blocks. */
    std::uint64_t numBlocks = 0;

    std::uint64_t
    metadataBits() const
    {
        return metadataBitsPerBlock * numBlocks;
    }

    std::uint64_t
    totalBits() const
    {
        return predictorBits + metadataBits();
    }

    double totalKB() const;
    double predictorKB() const;
    double metadataKB() const;

    /** Share of a cache of @p cache_bytes bytes. */
    double fractionOfCache(std::uint64_t cache_bytes) const;
};

/** Compute the breakdown for a predictor over an LLC of
 *  @p num_blocks blocks. */
StorageBreakdown storageOf(const DeadBlockPredictor &predictor,
                           std::uint64_t num_blocks);

/**
 * Runtime view of every shipped predictor configuration, paired
 * with the compile-time budget audit of `power/budget_audit.hh`.
 * `tools/check_budgets` prints it; `budget_test.cc` asserts that the
 * live predictors and the constexpr accounting agree entry by entry.
 */
class StorageModel
{
  public:
    struct Entry
    {
        /** Label from the compile-time audit row. */
        std::string label;
        /** Breakdown measured from a live predictor instance. */
        StorageBreakdown breakdown;
        /** The constexpr audit's numbers for the same config. */
        std::uint64_t auditPredictorBits = 0;
        std::uint64_t auditMetadataBitsPerBlock = 0;

        /** Live predictor and compile-time audit agree. */
        bool
        consistent() const
        {
            return breakdown.predictorBits == auditPredictorBits &&
                breakdown.metadataBitsPerBlock ==
                auditMetadataBitsPerBlock;
        }
    };

    /**
     * Instantiate every shipped predictor config (same order as
     * `budget_audit::shippedRows()`) over an LLC of @p num_blocks
     * blocks.
     */
    static std::vector<Entry> shipped(std::uint64_t num_blocks);
};

} // namespace sdbp

#endif // SDBP_POWER_STORAGE_HH
