/**
 * @file
 * The sampling dead block predictor (SDBP) — the paper's primary
 * contribution (Sec. III).
 *
 * On every LLC demand access the predictor hashes the PC into a
 * 15-bit signature and consults the skewed tables; the block is
 * predicted dead when the summed confidence meets the threshold.
 * Only accesses that fall into one of the 32 sampled LLC sets update
 * any state: they stream through the sampler tag array, whose hits
 * and evictions train the tables.
 *
 * For the component ablation of Fig. 6, the sampler can be disabled
 * (`useSampler = false`); the predictor then keeps a last-touch-PC
 * record for every resident LLC block and trains on every access and
 * eviction — the "DBRB alone" configuration equivalent to reftrace
 * with a PC-only trace.
 */

#ifndef SDBP_CORE_SDBP_HH
#define SDBP_CORE_SDBP_HH

#include <unordered_map>

#include "core/sampler.hh"
#include "core/skewed_table.hh"
#include "predictor/dead_block_predictor.hh"
#include "util/hotpath.hh"

namespace sdbp
{

struct SdbpConfig
{
    SamplerConfig sampler;
    SkewedTableConfig table;
    /** Width of the PC signature fed to the tables. */
    unsigned signatureBits = 15;
    /** Number of sets of the LLC being predicted for. */
    std::uint32_t llcSets = 2048;
    /** Fig. 6 ablation: learn from every set instead of sampling. */
    bool useSampler = true;

    /**
     * The paper's default configuration: 32-set 12-way sampler,
     * three 4096-entry 2-bit banks, threshold 8.  (constexpr so the
     * compile-time budget audit can evaluate shipped configs.)
     */
    static constexpr SdbpConfig
    paperDefault(std::uint32_t llc_sets = 2048)
    {
        SdbpConfig cfg;
        cfg.llcSets = llc_sets;
        return cfg;
    }

    /**
     * The single-table configuration used by the Fig. 6 ablation:
     * one 16384-entry bank (the skewed banks are "each one-fourth
     * the size of the single-table predictor"), threshold 2.
     */
    static constexpr SdbpConfig
    singleTable(std::uint32_t llc_sets = 2048)
    {
        SdbpConfig cfg;
        cfg.llcSets = llc_sets;
        cfg.table.numTables = 1;
        cfg.table.indexBits = 14; // 16384 entries = 4 x 4096
        cfg.table.threshold = 2;
        return cfg;
    }

    /** Predictor-side storage: tables plus (if enabled) sampler. */
    constexpr std::uint64_t
    storageBits() const
    {
        return table.storageBits() +
            (useSampler ? sampler.storageBits() : 0);
    }

    /**
     * One predicted-dead bit per cache block (Sec. III-C); the
     * no-sampler ablation instead needs a per-block signature too.
     */
    constexpr std::uint64_t
    metadataBitsPerBlock() const
    {
        return useSampler ? 1 : 1 + signatureBits;
    }
};

class SamplingDeadBlockPredictor final : public DeadBlockPredictor
{
  public:
    explicit SamplingDeadBlockPredictor(
        const SdbpConfig &cfg = SdbpConfig::paperDefault());

    SDBP_HOT_PATH bool onAccess(std::uint32_t set,
                                const Access &a) override;
    SDBP_HOT_PATH void onFill(std::uint32_t set,
                              const Access &a) override;
    SDBP_HOT_PATH void onEvict(std::uint32_t set,
                               const Access &a) override;

    std::string name() const override { return "sampler"; }
    std::uint64_t storageBits() const override;
    std::uint64_t metadataBitsPerBlock() const override;

    /**
     * Base gauges plus lookup/update counters and the sampler's and
     * table's own stats ("<prefix>.sampler.*", "<prefix>.table.*").
     */
    void registerStats(obs::StatRegistry &reg,
                       const std::string &prefix) const override;

    /** Number of LLC accesses that updated predictor state. */
    std::uint64_t updates() const { return updates_; }
    /** Number of predictor consultations. */
    std::uint64_t lookups() const { return lookups_; }

    const SdbpConfig &config() const { return cfg_; }
    const Sampler &sampler() const { return sampler_; }
    const SkewedTable &table() const { return table_; }
    SkewedTable &table() { return table_; }

    /** True when LLC set @p set is shadowed by a sampler set. */
    SDBP_HOT_PATH bool isSampledSet(std::uint32_t set) const;

    /**
     * Panic (via SDBP_DCHECK) unless the sampler-set map is stable
     * (stride divides the LLC evenly and every sampler set shadows
     * exactly one LLC set) and the sampler/table invariants hold.
     */
    void auditInvariants() const override;

    /**
     * Fault surface: the sampler tag array ("sampler.*") and the
     * skewed counter banks ("table.*") — exactly the Sec. IV-C
     * storage budget.  The transient per-block map of the
     * useSampler=false ablation is not SRAM and is not exposed.
     */
    void registerFaultTargets(fault::FaultInjector &injector) override;

    /** 15-bit signature of a PC. */
    SDBP_HOT_PATH std::uint64_t
    signature(PC pc) const
    {
        return makeSignature(pc, cfg_.signatureBits);
    }

  private:
    SdbpConfig cfg_;
    Sampler sampler_;
    SkewedTable table_;
    /** LLC sets per sampler set. */
    std::uint32_t setStride_;
    /**
     * floorLog2(setStride_) when the stride is a power of two (the
     * paper geometry: 2048/32 = 64), so the per-LLC-access sampled-set
     * test is a mask instead of two hardware divides; UINT32_MAX
     * flags a non-power-of-two stride (divide fallback).
     */
    std::uint32_t strideShift_ = ~0u;
    std::uint64_t updates_ = 0;
    std::uint64_t lookups_ = 0;

    /** useSampler=false: per-resident-block last-touch signature. */
    std::unordered_map<Addr, std::uint16_t> lastSig_;
};

} // namespace sdbp

#endif // SDBP_CORE_SDBP_HH
