#include "core/sampler.hh"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "fault/fault_injector.hh"
#include "obs/stat_registry.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace sdbp
{

Sampler::Sampler(const SamplerConfig &cfg)
    : cfg_(cfg),
      entries_(static_cast<std::size_t>(cfg.numSets) * cfg.assoc)
{
    assert(cfg_.numSets > 0);
    assert(cfg_.assoc > 0 && cfg_.assoc <= 255);
    assert(cfg_.tagBits <= 16 && cfg_.pcBits <= 16);
    reset();
}

void
Sampler::reset()
{
    for (std::uint32_t s = 0; s < cfg_.numSets; ++s) {
        for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
            auto &e = entries_[s * cfg_.assoc + w];
            e = SamplerEntry{};
            e.lruPos = static_cast<std::uint8_t>(w);
        }
    }
    hits_ = 0;
    replacements_ = 0;
    trainedEvictions_ = 0;
    victimTick_ = 0;
}

void
Sampler::moveToMru(std::uint32_t set, std::uint32_t way)
{
    auto *base = &entries_[set * cfg_.assoc];
    const std::uint8_t old_pos = base[way].lruPos;
    for (std::uint32_t w = 0; w < cfg_.assoc; ++w)
        if (base[w].lruPos < old_pos)
            ++base[w].lruPos;
    base[way].lruPos = 0;
}

std::uint32_t
Sampler::pickVictim(std::uint32_t set, bool *dead_preferred)
{
    *dead_preferred = false;
    const auto *base = &entries_[set * cfg_.assoc];

    // 1. An empty way.
    for (std::uint32_t w = 0; w < cfg_.assoc; ++w)
        if (!base[w].valid)
            return w;

    // 2. The youngest predicted-dead entry past a small grace age.
    //    Evicting dead entries early is how the sampler frees space
    //    for live tags, but a grace period of assoc/2 LRU positions
    //    lets a *mispredicted* entry survive to its next touch and
    //    retrain the tables toward "live" — without it, a dead
    //    prediction would be self-sustaining (the tags that could
    //    refute it would always be evicted before their reuse).
    //    Among eligible entries the youngest is chosen, shielding
    //    older entries that may still be awaiting a more distant
    //    reuse.  Every eighth replacement falls back on true LRU so
    //    stale live-predicted entries cannot pin a way forever.
    if (cfg_.learnFromOwnEvictions && ++victimTick_ % 8 != 0) {
        const std::uint8_t grace = static_cast<std::uint8_t>(
            std::max<std::uint32_t>(1, cfg_.assoc / 2));
        int best = -1;
        std::uint8_t best_pos = 0;
        for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
            if (base[w].predictedDead && base[w].lruPos >= grace &&
                (best < 0 || base[w].lruPos < best_pos)) {
                best = static_cast<int>(w);
                best_pos = base[w].lruPos;
            }
        }
        if (best >= 0) {
            *dead_preferred = true;
            return static_cast<std::uint32_t>(best);
        }
    }

    // 3. True LRU.
    for (std::uint32_t w = 0; w < cfg_.assoc; ++w)
        if (base[w].lruPos == cfg_.assoc - 1)
            return w;
    return 0; // unreachable with consistent LRU state
}

void
Sampler::access(std::uint32_t set, std::uint16_t partial_tag,
                std::uint16_t pc_sig, SkewedTable &table)
{
    assert(set < cfg_.numSets);
    auto *base = &entries_[set * cfg_.assoc];

    for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
        if (base[w].valid && base[w].tag == partial_tag) {
            // The previously recorded access was not the block's
            // last touch: train its PC toward "live".
            ++hits_;
            table.decrement(base[w].pc);
            base[w].pc = pc_sig;
            base[w].predictedDead = table.predict(pc_sig);
            moveToMru(set, w);
            return;
        }
    }

    // Miss: every access to a sampled set enters the sampler
    // (tags never bypass it, Sec. V-B).
    bool dead_preferred = false;
    const std::uint32_t victim = pickVictim(set, &dead_preferred);
    SamplerEntry &e = base[victim];
    if (e.valid && !dead_preferred) {
        // The recorded access was the last touch before this natural
        // (LRU) eviction: train its PC toward "dead".  Dead-preferred
        // evictions do NOT train: the predictor itself caused them,
        // and charging the PC again would make any dead prediction
        // self-confirming, with no path back for a mispredicted PC.
        table.increment(e.pc);
        ++trainedEvictions_;
    }
    ++replacements_;
    e.valid = true;
    e.tag = partial_tag;
    e.pc = pc_sig;
    e.predictedDead = table.predict(pc_sig);
    moveToMru(set, victim);

#if SDBP_DCHECK_ENABLED
    // Periodic full audit in debug builds: cheap relative to the
    // 64K accesses it amortizes over, catches drift close to where
    // it was introduced.
    if ((replacements_ & 0xFFFFu) == 0) {
        auditInvariants();
        table.auditInvariants();
    }
#endif
}

void
Sampler::renormalizeLru(std::uint32_t set)
{
    auto *base = &entries_[set * cfg_.assoc];
    std::vector<std::uint32_t> ways(cfg_.assoc);
    std::iota(ways.begin(), ways.end(), 0u);
    // Stable by way index, so equal (corrupted, duplicated) positions
    // decode to the same ordering on every run.
    std::stable_sort(ways.begin(), ways.end(),
                     [base](std::uint32_t a, std::uint32_t b) {
                         return base[a].lruPos < base[b].lruPos;
                     });
    for (std::uint32_t rank = 0; rank < cfg_.assoc; ++rank)
        base[ways[rank]].lruPos = static_cast<std::uint8_t>(rank);
}

void
Sampler::registerFaultTargets(fault::FaultInjector &injector,
                              const std::string &prefix)
{
    const std::uint64_t entries = entries_.size();
    injector.addTarget(
        {prefix + ".tag", entries, cfg_.tagBits,
         [this](std::uint64_t w, unsigned b) {
             entries_[w].tag = static_cast<std::uint16_t>(
                 entries_[w].tag ^ (1u << b));
         }});
    injector.addTarget(
        {prefix + ".pc", entries, cfg_.pcBits,
         [this](std::uint64_t w, unsigned b) {
             entries_[w].pc = static_cast<std::uint16_t>(
                 entries_[w].pc ^ (1u << b));
         }});
    injector.addTarget(
        {prefix + ".lru", entries, cfg_.lruBits(),
         [this](std::uint64_t w, unsigned b) {
             // Flip the raw position bit, then re-decode the set's
             // stack — hardware recency logic maps any bit pattern
             // to *some* valid ordering, and so do we.
             entries_[w].lruPos = static_cast<std::uint8_t>(
                 entries_[w].lruPos ^ (1u << b));
             renormalizeLru(
                 static_cast<std::uint32_t>(w / cfg_.assoc));
         }});
    injector.addTarget(
        {prefix + ".dead", entries, 1,
         [this](std::uint64_t w, unsigned) {
             entries_[w].predictedDead = !entries_[w].predictedDead;
         }});
    injector.addTarget(
        {prefix + ".valid", entries, 1,
         [this](std::uint64_t w, unsigned) {
             entries_[w].valid = !entries_[w].valid;
         }});
}

std::uint64_t
Sampler::storageBits() const
{
    return cfg_.storageBits();
}

void
Sampler::registerStats(obs::StatRegistry &reg,
                       const std::string &prefix) const
{
    using obs::StatRegistry;
    reg.addCounter(StatRegistry::join(prefix, "hits"), &hits_);
    reg.addCounter(StatRegistry::join(prefix, "replacements"),
                   &replacements_);
    reg.addCounter(StatRegistry::join(prefix, "trained_evictions"),
                   &trainedEvictions_);
    reg.addGauge(StatRegistry::join(prefix, "storage_bits"), [this] {
        return static_cast<double>(storageBits());
    });
}

void
Sampler::auditInvariants() const
{
#if SDBP_DCHECK_ENABLED
    SDBP_DCHECK_EQ(entries_.size(),
                   cfg_.storageSpec().entries,
                   "sampler tag array geometry drifted from config");
    std::vector<bool> seen(cfg_.assoc);
    for (std::uint32_t s = 0; s < cfg_.numSets; ++s) {
        seen.assign(cfg_.assoc, false);
        for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
            const SamplerEntry &e = entries_[s * cfg_.assoc + w];
            SDBP_DCHECK_LT(std::uint32_t{e.lruPos}, cfg_.assoc,
                           "sampler LRU position out of range");
            SDBP_DCHECK(!seen[e.lruPos],
                        "sampler LRU stack is not a permutation");
            seen[e.lruPos] = true;
            SDBP_DCHECK_LE(std::uint64_t{e.tag}, mask(cfg_.tagBits),
                           "sampler partial tag exceeds tagBits");
            SDBP_DCHECK_LE(std::uint64_t{e.pc}, mask(cfg_.pcBits),
                           "sampler partial PC exceeds pcBits");
        }
    }
#endif // SDBP_DCHECK_ENABLED
}

} // namespace sdbp
