#include "core/skewed_table.hh"

#include <algorithm>
#include <cassert>

#include "fault/fault_injector.hh"
#include "obs/stat_registry.hh"
#include "util/logging.hh"

namespace sdbp
{

SkewedTable::SkewedTable(const SkewedTableConfig &cfg) : cfg_(cfg)
{
    assert(cfg_.numTables >= 1 && cfg_.numTables <= 4);
    assert(cfg_.indexBits >= 1 && cfg_.indexBits <= 24);
    assert(cfg_.counterBits >= 1 && cfg_.counterBits <= 8);
    counterMax_ = cfg_.counterMax();
    assert(cfg_.threshold <= cfg_.numTables * counterMax_);
    counters_.assign(static_cast<std::size_t>(cfg_.numTables)
                         << cfg_.indexBits,
                     0);
}

void
SkewedTable::reset()
{
    counters_.assign(counters_.size(), 0);
}

void
SkewedTable::increment(std::uint64_t signature)
{
    for (unsigned t = 0; t < cfg_.numTables; ++t) {
        auto &c = counters_[entryIndex(t, signature)];
        if (c < counterMax_)
            ++c;
    }
}

void
SkewedTable::decrement(std::uint64_t signature)
{
    for (unsigned t = 0; t < cfg_.numTables; ++t) {
        auto &c = counters_[entryIndex(t, signature)];
        if (c > 0)
            --c;
    }
}

unsigned
SkewedTable::confidence(std::uint64_t signature) const
{
    unsigned sum = 0;
    for (unsigned t = 0; t < cfg_.numTables; ++t)
        sum += counters_[entryIndex(t, signature)];
    return sum;
}

unsigned
SkewedTable::maxConfidence() const
{
    return cfg_.numTables * counterMax_;
}

std::uint64_t
SkewedTable::storageBits() const
{
    return cfg_.storageBits();
}

void
SkewedTable::registerStats(obs::StatRegistry &reg,
                           const std::string &prefix) const
{
    using obs::StatRegistry;
    reg.addGauge(StatRegistry::join(prefix, "storage_bits"), [this] {
        return static_cast<double>(storageBits());
    });
    reg.addGauge(StatRegistry::join(prefix, "nonzero_frac"), [this] {
        const auto n = std::count_if(counters_.begin(), counters_.end(),
                                     [](std::uint8_t c) {
                                         return c != 0;
                                     });
        return static_cast<double>(n) /
            static_cast<double>(counters_.size());
    });
    reg.addGauge(StatRegistry::join(prefix, "saturated_frac"), [this] {
        const auto n =
            std::count_if(counters_.begin(), counters_.end(),
                          [this](std::uint8_t c) {
                              return unsigned{c} >= counterMax_;
                          });
        return static_cast<double>(n) /
            static_cast<double>(counters_.size());
    });
}

void
SkewedTable::registerFaultTargets(fault::FaultInjector &injector,
                                  const std::string &prefix)
{
    injector.addTarget(
        {prefix + ".counter", counters_.size(), cfg_.counterBits,
         [this](std::uint64_t w, unsigned b) {
             counters_[w] = static_cast<std::uint8_t>(
                 counters_[w] ^ (1u << b));
         }});
}

void
SkewedTable::auditInvariants() const
{
#if SDBP_DCHECK_ENABLED
    SDBP_DCHECK_EQ(counters_.size(),
                   cfg_.storageSpec().entries,
                   "skewed table bank geometry drifted from config");
    for (std::size_t i = 0; i < counters_.size(); ++i)
        SDBP_DCHECK_LE(unsigned{counters_[i]}, counterMax_,
                       "saturating counter overflowed its width");
#endif // SDBP_DCHECK_ENABLED
}

} // namespace sdbp
