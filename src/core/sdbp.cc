#include "core/sdbp.hh"

#include <cassert>

#include "obs/stat_registry.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace sdbp
{

SamplingDeadBlockPredictor::SamplingDeadBlockPredictor(
    const SdbpConfig &cfg)
    : cfg_(cfg), sampler_(cfg.sampler), table_(cfg.table)
{
    assert(cfg_.llcSets >= cfg_.sampler.numSets);
    setStride_ = cfg_.llcSets / cfg_.sampler.numSets;
    assert(setStride_ > 0);
    if (isPowerOfTwo(setStride_))
        strideShift_ = floorLog2(setStride_);
}

bool
SamplingDeadBlockPredictor::isSampledSet(std::uint32_t set) const
{
    // This runs on every LLC demand access; with the usual
    // power-of-two stride the test is one mask and one shift (two
    // hardware divides otherwise).
    if (strideShift_ != ~0u) {
        return (set & (setStride_ - 1)) == 0 &&
            (set >> strideShift_) < cfg_.sampler.numSets;
    }
    return set % setStride_ == 0 &&
        set / setStride_ < cfg_.sampler.numSets;
}

bool
SamplingDeadBlockPredictor::onAccess(std::uint32_t set,
                                     const Access &a)
{
    // a.thread is ignored: the predictor is thread-oblivious
    // (Sec. III-F).
    ++lookups_;
    const Addr block_addr = a.blockAddr();
    const std::uint64_t sig = signature(a.pc);

    if (cfg_.useSampler) {
        if (isSampledSet(set)) {
            ++updates_;
            // The partial tag is a hash of the full block address
            // folded to tagBits.  (The paper keeps the low-order 15
            // tag bits; hashing generalizes that to 64-bit address
            // spaces where distinct regions could otherwise alias
            // after masking, while preserving the storage cost.)
            const auto partial_tag = static_cast<std::uint16_t>(
                mix64(block_addr) & mask(cfg_.sampler.tagBits));
            sampler_.access(set / setStride_, partial_tag,
                            static_cast<std::uint16_t>(sig), table_);
        }
    } else {
        // Ablation: learn from every access using per-block state.
        ++updates_;
        auto it = lastSig_.find(block_addr);
        if (it != lastSig_.end()) {
            table_.decrement(it->second);
            it->second = static_cast<std::uint16_t>(sig);
        }
        // Missing entries are created by onFill.
    }
    return table_.predict(sig);
}

void
SamplingDeadBlockPredictor::onFill(std::uint32_t set, const Access &a)
{
    (void)set;
    if (!cfg_.useSampler)
        lastSig_[a.blockAddr()] =
            static_cast<std::uint16_t>(signature(a.pc));
}

void
SamplingDeadBlockPredictor::onEvict(std::uint32_t set, const Access &a)
{
    (void)set;
    if (!cfg_.useSampler) {
        auto it = lastSig_.find(a.blockAddr());
        if (it != lastSig_.end()) {
            table_.increment(it->second);
            lastSig_.erase(it);
        }
    }
}

std::uint64_t
SamplingDeadBlockPredictor::storageBits() const
{
    return cfg_.storageBits();
}

std::uint64_t
SamplingDeadBlockPredictor::metadataBitsPerBlock() const
{
    return cfg_.metadataBitsPerBlock();
}

void
SamplingDeadBlockPredictor::registerStats(
    obs::StatRegistry &reg, const std::string &prefix) const
{
    using obs::StatRegistry;
    DeadBlockPredictor::registerStats(reg, prefix);
    reg.addCounter(StatRegistry::join(prefix, "lookups"), &lookups_);
    reg.addCounter(StatRegistry::join(prefix, "updates"), &updates_);
    if (cfg_.useSampler) {
        sampler_.registerStats(reg,
                               StatRegistry::join(prefix, "sampler"));
    }
    table_.registerStats(reg, StatRegistry::join(prefix, "table"));
}

void
SamplingDeadBlockPredictor::registerFaultTargets(
    fault::FaultInjector &injector)
{
    if (cfg_.useSampler)
        sampler_.registerFaultTargets(injector, "sampler");
    table_.registerFaultTargets(injector, "table");
}

void
SamplingDeadBlockPredictor::auditInvariants() const
{
#if SDBP_DCHECK_ENABLED
    SDBP_DCHECK_EQ(setStride_, cfg_.llcSets / cfg_.sampler.numSets,
                   "sampler set stride drifted from config");
    SDBP_DCHECK(setStride_ > 0, "sampler set stride must be positive");
    // The set map is stable: exactly numSets LLC sets are shadowed,
    // each by a distinct sampler set.
    std::uint32_t sampled = 0;
    for (std::uint32_t s = 0; s < cfg_.llcSets; ++s)
        sampled += isSampledSet(s) ? 1 : 0;
    SDBP_DCHECK_EQ(sampled, cfg_.sampler.numSets,
                   "sampled-set count drifted from sampler config");
    sampler_.auditInvariants();
    table_.auditInvariants();
#endif // SDBP_DCHECK_ENABLED
}

} // namespace sdbp
