#include "core/sdbp.hh"

#include <cassert>

#include "util/bitops.hh"

namespace sdbp
{

SdbpConfig
SdbpConfig::paperDefault(std::uint32_t llc_sets)
{
    SdbpConfig cfg;
    cfg.llcSets = llc_sets;
    return cfg;
}

SdbpConfig
SdbpConfig::singleTable(std::uint32_t llc_sets)
{
    SdbpConfig cfg;
    cfg.llcSets = llc_sets;
    cfg.table.numTables = 1;
    cfg.table.indexBits = 14; // 16384 entries = 4 x 4096
    cfg.table.threshold = 2;
    return cfg;
}

SamplingDeadBlockPredictor::SamplingDeadBlockPredictor(
    const SdbpConfig &cfg)
    : cfg_(cfg), sampler_(cfg.sampler), table_(cfg.table)
{
    assert(cfg_.llcSets >= cfg_.sampler.numSets);
    setStride_ = cfg_.llcSets / cfg_.sampler.numSets;
    assert(setStride_ > 0);
}

bool
SamplingDeadBlockPredictor::isSampledSet(std::uint32_t set) const
{
    return set % setStride_ == 0 &&
        set / setStride_ < cfg_.sampler.numSets;
}

bool
SamplingDeadBlockPredictor::onAccess(std::uint32_t set, Addr block_addr,
                                     PC pc, ThreadId thread)
{
    (void)thread; // the predictor is thread-oblivious (Sec. III-F)
    ++lookups_;
    const std::uint64_t sig = signature(pc);

    if (cfg_.useSampler) {
        if (isSampledSet(set)) {
            ++updates_;
            // The partial tag is a hash of the full block address
            // folded to tagBits.  (The paper keeps the low-order 15
            // tag bits; hashing generalizes that to 64-bit address
            // spaces where distinct regions could otherwise alias
            // after masking, while preserving the storage cost.)
            const auto partial_tag = static_cast<std::uint16_t>(
                mix64(block_addr) & mask(cfg_.sampler.tagBits));
            sampler_.access(set / setStride_, partial_tag,
                            static_cast<std::uint16_t>(sig), table_);
        }
    } else {
        // Ablation: learn from every access using per-block state.
        ++updates_;
        auto it = lastSig_.find(block_addr);
        if (it != lastSig_.end()) {
            table_.decrement(it->second);
            it->second = static_cast<std::uint16_t>(sig);
        }
        // Missing entries are created by onFill.
    }
    return table_.predict(sig);
}

void
SamplingDeadBlockPredictor::onFill(std::uint32_t set, Addr block_addr,
                                   PC pc)
{
    (void)set;
    if (!cfg_.useSampler)
        lastSig_[block_addr] = static_cast<std::uint16_t>(signature(pc));
}

void
SamplingDeadBlockPredictor::onEvict(std::uint32_t set, Addr block_addr)
{
    (void)set;
    if (!cfg_.useSampler) {
        auto it = lastSig_.find(block_addr);
        if (it != lastSig_.end()) {
            table_.increment(it->second);
            lastSig_.erase(it);
        }
    }
}

std::uint64_t
SamplingDeadBlockPredictor::storageBits() const
{
    std::uint64_t bits = table_.storageBits();
    if (cfg_.useSampler)
        bits += sampler_.storageBits();
    return bits;
}

std::uint64_t
SamplingDeadBlockPredictor::metadataBitsPerBlock() const
{
    // One predicted-dead bit per cache block (Sec. III-C); the
    // no-sampler ablation instead needs a 15-bit signature per block.
    return cfg_.useSampler ? 1 : 1 + cfg_.signatureBits;
}

} // namespace sdbp
