/**
 * @file
 * The skewed prediction table of Sec. III-E: several banks of
 * saturating counters, each indexed by a different hash of the
 * signature; the prediction confidence is the sum of the counters.
 */

#ifndef SDBP_CORE_SKEWED_TABLE_HH
#define SDBP_CORE_SKEWED_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/arena.hh"
#include "util/bitops.hh"
#include "util/budget.hh"
#include "util/hash.hh"
#include "util/hotpath.hh"

namespace sdbp
{

namespace obs
{
class StatRegistry;
} // namespace obs

namespace fault
{
class FaultInjector;
} // namespace fault

struct SkewedTableConfig
{
    /** Number of banks (3 in the paper; 1 = conventional table). */
    unsigned numTables = 3;
    /** log2 entries per bank (12 -> 4096 entries). */
    unsigned indexBits = 12;
    /** Counter width (2 in the paper). */
    unsigned counterBits = 2;
    /** Sum-of-counters confidence threshold (8 in the paper). */
    unsigned threshold = 8;

    /** Largest value one counter can hold. */
    constexpr unsigned
    counterMax() const
    {
        return budget::SaturatingCounterSpec{counterBits}.maxValue();
    }

    /** All banks as one uniform table of saturating counters. */
    constexpr budget::TableSpec
    storageSpec() const
    {
        return {std::uint64_t(numTables) << indexBits, counterBits};
    }

    constexpr std::uint64_t
    storageBits() const
    {
        return storageSpec().total().count();
    }
};

/**
 * Skewed table of 2-bit (configurable) saturating counters.
 *
 * With three 2-bit banks the confidence has ten levels (0..9); the
 * paper finds a threshold of eight gives the best accuracy.
 */
class SkewedTable
{
  public:
    explicit SkewedTable(const SkewedTableConfig &cfg = {});

    /** Train toward "dead" for this signature. */
    SDBP_HOT_PATH void increment(std::uint64_t signature);
    /** Train toward "live" for this signature. */
    SDBP_HOT_PATH void decrement(std::uint64_t signature);

    /** Summed confidence for a signature. */
    SDBP_HOT_PATH unsigned confidence(std::uint64_t signature) const;

    /** Predicted dead iff confidence >= threshold. */
    SDBP_HOT_PATH bool
    predict(std::uint64_t signature) const
    {
        return confidence(signature) >= cfg_.threshold;
    }

    /** Highest reachable confidence (numTables * counterMax). */
    unsigned maxConfidence() const;

    /** Total state in bits (delegates to the config's constexpr
     *  spec, so runtime and compile-time accounting agree). */
    std::uint64_t storageBits() const;

    const SkewedTableConfig &config() const { return cfg_; }

    /** Reset all counters to zero. */
    void reset();

    /**
     * Register "<prefix>.storage_bits" plus occupancy gauges: the
     * fraction of counters that are nonzero and the fraction pinned
     * at saturation.  Gauges scan the banks only at snapshot time.
     */
    void registerStats(obs::StatRegistry &reg,
                       const std::string &prefix) const;

    /**
     * Panic (via SDBP_DCHECK) if any counter exceeds its saturation
     * maximum or the bank geometry drifted from the config.
     */
    void auditInvariants() const;

    /**
     * Expose every bank's saturating counters as one fault target
     * "<prefix>.counter" (counterBits flippable bits per counter, so
     * a flipped counter still satisfies the saturation audit).
     */
    void registerFaultTargets(fault::FaultInjector &injector,
                              const std::string &prefix);

  private:
    SDBP_HOT_PATH std::size_t
    entryIndex(unsigned table, std::uint64_t signature) const
    {
        return static_cast<std::size_t>(table) << cfg_.indexBits
            | skewHash(signature, table, cfg_.indexBits);
    }

    SkewedTableConfig cfg_;
    unsigned counterMax_;
    ArenaVector<std::uint8_t> counters_;
};

} // namespace sdbp

#endif // SDBP_CORE_SKEWED_TABLE_HH
