/**
 * @file
 * The sampler: a small partial-tag array, decoupled from the LLC,
 * that observes accesses to a handful of cache sets and trains the
 * prediction tables (Sec. III-A/B).
 */

#ifndef SDBP_CORE_SAMPLER_HH
#define SDBP_CORE_SAMPLER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/skewed_table.hh"
#include "util/arena.hh"
#include "util/budget.hh"
#include "util/hotpath.hh"
#include "util/types.hh"

namespace sdbp
{

namespace fault
{
class FaultInjector;
} // namespace fault

struct SamplerConfig
{
    /** Number of sampled sets (32 in the paper). */
    std::uint32_t numSets = 32;
    /** Sampler associativity (12 beats 16, Sec. III-B3). */
    std::uint32_t assoc = 12;
    /** Width of the partial tags (15 bits suffice, Sec. III-A). */
    unsigned tagBits = 15;
    /** Width of the stored partial PC signature. */
    unsigned pcBits = 15;
    /**
     * Let the sampler's own replacement prefer predicted-dead
     * entries, feeding the predictor its own evictions (Sec. V-B).
     */
    bool learnFromOwnEvictions = true;

    /** LRU stack position width (4 bits for the paper's 12 ways). */
    constexpr unsigned
    lruBits() const
    {
        return budget::widthForValues(assoc);
    }

    /**
     * The whole tag array as one uniform table: tag + PC + predicted
     * bit + valid bit + LRU position per entry (Sec. IV-C).
     */
    constexpr budget::TableSpec
    storageSpec() const
    {
        return {std::uint64_t(numSets) * assoc,
                tagBits + pcBits + 1 + 1 + lruBits()};
    }

    constexpr std::uint64_t
    storageBits() const
    {
        return storageSpec().total().count();
    }
};

/** One sampler entry (Sec. IV-C: tag, PC, prediction, valid, LRU). */
struct SamplerEntry
{
    std::uint16_t tag = 0;
    std::uint16_t pc = 0;
    bool valid = false;
    bool predictedDead = false;
    std::uint8_t lruPos = 0;
};

/**
 * The sampler tag array.  It owns no prediction state itself; it
 * trains a SkewedTable passed into access().
 */
class Sampler
{
  public:
    explicit Sampler(const SamplerConfig &cfg = {});

    /**
     * Record one access to a sampled set and train the table:
     * a tag hit decrements the previous PC's counters (that access
     * was not the last touch); a replacement of a valid entry
     * increments its stored PC's counters (that access was the last
     * touch).
     *
     * @param set sampler set index
     * @param partial_tag partial tag of the accessed block
     * @param pc_sig partial PC signature of the access
     * @param table prediction table to train and consult
     */
    SDBP_HOT_PATH void access(std::uint32_t set,
                              std::uint16_t partial_tag,
                              std::uint16_t pc_sig,
                              SkewedTable &table);

    const SamplerConfig &config() const { return cfg_; }

    const SamplerEntry &
    entry(std::uint32_t set, std::uint32_t way) const
    {
        return entries_[set * cfg_.assoc + way];
    }

    /** Mutable entry access (test hook: corruption injection). */
    SamplerEntry &
    mutableEntry(std::uint32_t set, std::uint32_t way)
    {
        return entries_[set * cfg_.assoc + way];
    }

    /** Total sampler state in bits (Table I accounting; delegates to
     *  the config's constexpr spec). */
    std::uint64_t storageBits() const;

    /**
     * Panic (via SDBP_DCHECK) unless every set's LRU positions form
     * a permutation of 0..assoc-1 and every stored tag/PC fits its
     * configured width.
     */
    void auditInvariants() const;

    /** Training event counts (power accounting / tests). */
    std::uint64_t hits() const { return hits_; }
    std::uint64_t replacements() const { return replacements_; }
    std::uint64_t trainedEvictions() const { return trainedEvictions_; }

    /**
     * Register the training event counters plus a storage_bits gauge
     * under @p prefix ("...sampler" -> "...sampler.hits", ...).
     */
    void registerStats(obs::StatRegistry &reg,
                       const std::string &prefix) const;

    /**
     * Expose the tag array's per-entry fields (tag, PC, LRU
     * position, predicted-dead bit, valid bit — the exact Sec. IV-C
     * storage budget) as fault targets under "<prefix>.tag" etc.
     * LRU flips re-decode the set's corrupted stack into a valid
     * permutation, so auditInvariants() holds at any fault rate.
     */
    void registerFaultTargets(fault::FaultInjector &injector,
                              const std::string &prefix);

    void reset();

  private:
    SDBP_HOT_PATH std::uint32_t pickVictim(std::uint32_t set,
                                           bool *dead_preferred);
    SDBP_HOT_PATH void moveToMru(std::uint32_t set,
                                 std::uint32_t way);
    /** Re-rank a set's (possibly corrupted) LRU positions into a
     *  permutation of 0..assoc-1, stably by (position, way). */
    void renormalizeLru(std::uint32_t set);

    /** Replacement counter driving the periodic LRU fallback. */
    std::uint64_t victimTick_ = 0;

    SamplerConfig cfg_;
    ArenaVector<SamplerEntry> entries_;
    std::uint64_t hits_ = 0;
    std::uint64_t replacements_ = 0;
    std::uint64_t trainedEvictions_ = 0;
};

} // namespace sdbp

#endif // SDBP_CORE_SAMPLER_HH
