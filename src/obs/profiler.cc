#include "obs/profiler.hh"

#include "obs/span_tracer.hh"

namespace sdbp::obs
{

Profiler::Profiler() = default;
Profiler::~Profiler() = default;

Profiler::Scope::Scope(Profiler *profiler, std::size_t index)
    : profiler_(profiler), index_(index),
      start_(std::chrono::steady_clock::now())
{
    if (profiler_)
        startHost_ = profiler_->hostSample();
}

Profiler::Scope::~Scope()
{
    if (!profiler_)
        return;
    const auto end = std::chrono::steady_clock::now();
    profiler_->commit(index_, start_, end, startHost_);
}

std::size_t
Profiler::indexOf(const std::string &name)
{
    for (std::size_t i = 0; i < scopes_.size(); ++i)
        if (scopes_[i].name == name)
            return i;
    ScopeStats s;
    s.name = name;
    scopes_.push_back(std::move(s));
    return scopes_.size() - 1;
}

Profiler::Scope
Profiler::scope(const std::string &name)
{
    return Scope(this, indexOf(name));
}

void
Profiler::addEvents(const std::string &name, std::uint64_t n)
{
    scopes_[indexOf(name)].events += n;
}

void
Profiler::mirrorSpans(SpanTracer *tracer, std::string cell)
{
    tracer_ = tracer;
    cell_ = std::move(cell);
}

void
Profiler::enableHostCounters()
{
    if (counters_ || !util::hostCountersEnabled())
        return;
    counters_ = std::make_unique<util::PerfCounters>();
    // Free-running: scopes difference consecutive readings, so
    // nested or repeated scopes never fight over a group reset.
    counters_->start();
}

util::PerfCounters::Sample
Profiler::hostSample() const
{
    return counters_ ? counters_->sample()
                     : util::PerfCounters::Sample{};
}

void
Profiler::commit(std::size_t index,
                 std::chrono::steady_clock::time_point start,
                 std::chrono::steady_clock::time_point end,
                 const util::PerfCounters::Sample &startHost)
{
    ScopeStats &s = scopes_[index];
    s.seconds += std::chrono::duration<double>(end - start).count();
    ++s.calls;
    if (startHost.valid) {
        const util::PerfCounters::Sample now = hostSample();
        if (now.valid) {
            s.hostValid = true;
            s.hostCycles += now.cycles - startHost.cycles;
            s.hostInstructions +=
                now.instructions - startHost.instructions;
            s.hostLlcMisses += now.llcMisses - startHost.llcMisses;
            s.hostBranchMisses +=
                now.branchMisses - startHost.branchMisses;
        }
    }
    if (tracer_)
        tracer_->emit("phase", s.name, start, end, cell_);
}

} // namespace sdbp::obs
