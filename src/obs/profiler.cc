#include "obs/profiler.hh"

namespace sdbp::obs
{

Profiler::Scope::~Scope()
{
    if (!profiler_)
        return;
    const auto elapsed =
        std::chrono::steady_clock::now() - start_;
    profiler_->commit(
        index_,
        std::chrono::duration<double>(elapsed).count());
}

std::size_t
Profiler::indexOf(const std::string &name)
{
    for (std::size_t i = 0; i < scopes_.size(); ++i)
        if (scopes_[i].name == name)
            return i;
    ScopeStats s;
    s.name = name;
    scopes_.push_back(std::move(s));
    return scopes_.size() - 1;
}

Profiler::Scope
Profiler::scope(const std::string &name)
{
    return Scope(this, indexOf(name));
}

void
Profiler::addEvents(const std::string &name, std::uint64_t n)
{
    scopes_[indexOf(name)].events += n;
}

void
Profiler::commit(std::size_t index, double seconds)
{
    scopes_[index].seconds += seconds;
    ++scopes_[index].calls;
}

} // namespace sdbp::obs
