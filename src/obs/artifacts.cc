#include "obs/artifacts.hh"

#include "util/file.hh"

namespace sdbp::obs
{

const TimelineSeries *
RunArtifacts::findSeries(const std::string &name) const
{
    for (const auto &s : series)
        if (s.name == name)
            return &s;
    return nullptr;
}

JsonValue
RunArtifacts::toJson() const
{
    JsonValue root = JsonValue::object();
    root.set("schema", "sdbp.run_artifacts/1");
    root.set("benchmark", benchmark);
    root.set("policy", policy);

    JsonValue cfg = JsonValue::object();
    cfg.set("warmup_instructions", JsonValue(warmupInstructions));
    cfg.set("measure_instructions", JsonValue(measureInstructions));
    cfg.set("interval_instructions", JsonValue(intervalInstructions));
    root.set("config", std::move(cfg));

    root.set("stats", snapshotToJson(finalSnapshot));

    JsonValue timeline = JsonValue::object();
    JsonValue ticks = JsonValue::array();
    for (const auto &snap : intervals)
        ticks.push(JsonValue(snap.tick));
    timeline.set("tick", std::move(ticks));
    for (const auto &s : series) {
        JsonValue vals = JsonValue::array();
        for (const double v : s.values)
            vals.push(JsonValue(v));
        timeline.set(s.name, std::move(vals));
    }
    root.set("timeline", std::move(timeline));

    if (hasConfusion) {
        JsonValue c = JsonValue::object();
        c.set("dead_evicted", JsonValue(confusion.deadEvicted));
        c.set("dead_hit", JsonValue(confusion.deadHit));
        c.set("live_evicted", JsonValue(confusion.liveEvicted));
        c.set("live_hit", JsonValue(confusion.liveHit));
        c.set("accuracy", JsonValue(confusion.accuracy()));
        c.set("false_discovery_rate",
              JsonValue(confusion.falseDiscoveryRate()));
        root.set("confusion", std::move(c));
    }

    JsonValue prof = JsonValue::array();
    for (const auto &s : profile) {
        JsonValue p = JsonValue::object();
        p.set("scope", s.name);
        p.set("seconds", JsonValue(s.seconds));
        p.set("calls", JsonValue(s.calls));
        p.set("events", JsonValue(s.events));
        p.set("events_per_sec", JsonValue(s.eventsPerSec()));
        if (s.hostValid) {
            JsonValue host = JsonValue::object();
            host.set("cycles", JsonValue(s.hostCycles));
            host.set("instructions", JsonValue(s.hostInstructions));
            host.set("llc_misses", JsonValue(s.hostLlcMisses));
            host.set("branch_misses",
                     JsonValue(s.hostBranchMisses));
            host.set("ipc", JsonValue(s.hostIpc()));
            p.set("host", std::move(host));
        }
        prof.push(std::move(p));
    }
    root.set("profile", std::move(prof));

    // Simulator-of-the-simulator telemetry (DESIGN.md §14): how fast
    // the host executed this run, in wall clock and — when
    // perf_event is available — hardware counters.
    JsonValue timing = JsonValue::object();
    timing.set("wall_seconds", JsonValue(wallSeconds));
    timing.set("simulated_instructions",
               JsonValue(simulatedInstructions));
    if (simulatedInstructions > 0)
        timing.set("ns_per_instr", JsonValue(nsPerInstr()));
    if (hostPerf.valid) {
        JsonValue host = JsonValue::object();
        host.set("cycles", JsonValue(hostPerf.cycles));
        host.set("instructions", JsonValue(hostPerf.instructions));
        host.set("llc_misses", JsonValue(hostPerf.llcMisses));
        host.set("branch_misses", JsonValue(hostPerf.branchMisses));
        host.set("ipc", JsonValue(hostPerf.hostIpc()));
        timing.set("host", std::move(host));
    }
    root.set("timing", std::move(timing));

    JsonValue trace = JsonValue::object();
    trace.set("recorded", JsonValue(traceEventsRecorded));
    trace.set("dropped", JsonValue(traceEventsDropped));
    root.set("trace", std::move(trace));
    return root;
}

bool
RunArtifacts::writeJson(const std::string &path) const
{
    return util::atomicWriteFile(path, toJson().dump() + "\n");
}

std::string
RunArtifacts::timelineCsv() const
{
    std::string csv = "interval,tick_end";
    for (const auto &s : series)
        csv += "," + s.name;
    csv += "\n";
    const std::size_t n =
        intervals.empty() ? 0 : intervals.size() - 1;
    for (std::size_t i = 0; i < n; ++i) {
        csv += std::to_string(i);
        csv += ",";
        csv += std::to_string(intervals[i + 1].tick);
        for (const auto &s : series) {
            csv += ",";
            csv += i < s.values.size()
                ? JsonValue(s.values[i]).dump(0)
                : std::string("0");
        }
        csv += "\n";
    }
    return csv;
}

bool
RunArtifacts::writeTimelineCsv(const std::string &path) const
{
    return util::atomicWriteFile(path, timelineCsv());
}

std::vector<TimelineSeries>
standardSeries(const IntervalTimeline &timeline)
{
    std::vector<TimelineSeries> out;
    if (timeline.snapshots().empty())
        return out;
    const StatSnapshot &first = timeline.snapshots().front();
    auto have = [&](const char *name) {
        return first.find(name) != nullptr;
    };
    auto add = [&](const char *name, std::vector<double> values) {
        out.push_back({name, std::move(values)});
    };

    if (have("llc.demand_misses") && have("sys.instructions"))
        add("mpki", timeline.rateSeries("llc.demand_misses",
                                        "sys.instructions", 1000.0));
    if (have("core0.instructions") && have("core0.cycles"))
        add("ipc", timeline.rateSeries("core0.instructions",
                                       "core0.cycles"));
    if (have("llc.demand_misses") && have("llc.demand_accesses"))
        add("miss_rate", timeline.rateSeries("llc.demand_misses",
                                             "llc.demand_accesses"));
    if (have("llc.bypasses") && have("llc.demand_misses"))
        add("bypass_rate", timeline.rateSeries("llc.bypasses",
                                               "llc.demand_misses"));
    if (have("dbrb.positives") && have("dbrb.predictions"))
        add("coverage", timeline.rateSeries("dbrb.positives",
                                            "dbrb.predictions"));
    if (have("dbrb.confusion.dead_evicted")) {
        const auto tp =
            timeline.deltaSeries("dbrb.confusion.dead_evicted");
        const auto fp = timeline.deltaSeries("dbrb.confusion.dead_hit");
        const auto fn =
            timeline.deltaSeries("dbrb.confusion.live_evicted");
        const auto tn = timeline.deltaSeries("dbrb.confusion.live_hit");
        std::vector<double> acc;
        acc.reserve(tp.size());
        for (std::size_t i = 0; i < tp.size(); ++i) {
            const double total = tp[i] + fp[i] + fn[i] + tn[i];
            acc.push_back(total > 0 ? (tp[i] + tn[i]) / total : 0.0);
        }
        add("accuracy", std::move(acc));
    }
    return out;
}

} // namespace sdbp::obs
