#include "obs/json.hh"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/logging.hh"

namespace sdbp::obs
{

JsonValue
JsonValue::array()
{
    JsonValue v;
    v.kind_ = Kind::Array;
    return v;
}

JsonValue
JsonValue::object()
{
    JsonValue v;
    v.kind_ = Kind::Object;
    return v;
}

double
JsonValue::asNumber() const
{
    if (kind_ == Kind::UInt)
        return static_cast<double>(uint_);
    return num_;
}

JsonValue &
JsonValue::push(JsonValue v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Array;
    SDBP_DCHECK(kind_ == Kind::Array, "push on a non-array JSON value");
    arr_.push_back(std::move(v));
    return *this;
}

JsonValue &
JsonValue::set(const std::string &key, JsonValue v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Object;
    SDBP_DCHECK(kind_ == Kind::Object, "set on a non-object JSON value");
    for (auto &kv : obj_) {
        if (kv.first == key) {
            kv.second = std::move(v);
            return *this;
        }
    }
    obj_.emplace_back(key, std::move(v));
    return *this;
}

std::size_t
JsonValue::size() const
{
    return kind_ == Kind::Array ? arr_.size() : obj_.size();
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &kv : obj_)
        if (kv.first == key)
            return &kv.second;
    return nullptr;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace
{

void
appendNumber(std::string &out, double d)
{
    if (!std::isfinite(d)) {
        // JSON has no inf/nan; null is the conventional stand-in.
        out += "null";
        return;
    }
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), d);
    out.append(buf, res.ptr);
}

void
appendIndent(std::string &out, int indent, int depth)
{
    out += '\n';
    out.append(static_cast<std::size_t>(indent) *
                   static_cast<std::size_t>(depth),
               ' ');
}

} // anonymous namespace

void
JsonValue::dumpTo(std::string &out, int indent, int depth) const
{
    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::UInt:
        out += std::to_string(uint_);
        break;
      case Kind::Number:
        appendNumber(out, num_);
        break;
      case Kind::String:
        out += '"';
        out += jsonEscape(str_);
        out += '"';
        break;
      case Kind::Array:
        if (arr_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            if (i)
                out += ',';
            if (indent > 0)
                appendIndent(out, indent, depth + 1);
            arr_[i].dumpTo(out, indent, depth + 1);
        }
        if (indent > 0)
            appendIndent(out, indent, depth);
        out += ']';
        break;
      case Kind::Object:
        if (obj_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < obj_.size(); ++i) {
            if (i)
                out += ',';
            if (indent > 0)
                appendIndent(out, indent, depth + 1);
            out += '"';
            out += jsonEscape(obj_[i].first);
            out += indent > 0 ? "\": " : "\":";
            obj_[i].second.dumpTo(out, indent, depth + 1);
        }
        if (indent > 0)
            appendIndent(out, indent, depth);
        out += '}';
        break;
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace
{

/** Recursive-descent JSON parser over a string. */
class Parser
{
  public:
    Parser(const std::string &text) : text_(text) {}

    std::optional<JsonValue>
    run(std::string *error)
    {
        auto v = parseValue();
        if (v) {
            skipWs();
            if (pos_ != text_.size()) {
                fail("trailing characters after document");
                v.reset();
            }
        }
        if (!v && error)
            *error = error_;
        return v;
    }

  private:
    void
    fail(const std::string &what)
    {
        if (error_.empty())
            error_ = what + " at offset " + std::to_string(pos_);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    consumeWord(const char *word)
    {
        const std::size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    std::optional<std::string>
    parseString()
    {
        if (!consume('"')) {
            fail("expected string");
            return std::nullopt;
        }
        std::string out;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    break;
                const char esc = text_[pos_++];
                switch (esc) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (pos_ + 4 > text_.size()) {
                        fail("truncated \\u escape");
                        return std::nullopt;
                    }
                    unsigned code = 0;
                    const auto res = std::from_chars(
                        text_.data() + pos_, text_.data() + pos_ + 4,
                        code, 16);
                    if (res.ptr != text_.data() + pos_ + 4) {
                        fail("bad \\u escape");
                        return std::nullopt;
                    }
                    pos_ += 4;
                    // Only BMP code points below 0x80 are emitted by
                    // our writer; re-encode the rest as UTF-8.
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(0x80 |
                                                 ((code >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                  }
                  default:
                    fail("unknown escape");
                    return std::nullopt;
                }
            } else {
                out += c;
            }
        }
        fail("unterminated string");
        return std::nullopt;
    }

    std::optional<JsonValue>
    parseNumber()
    {
        const std::size_t start = pos_;
        if (consume('-')) {
        }
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        const std::string tok = text_.substr(start, pos_ - start);
        if (tok.empty() || tok == "-") {
            fail("expected number");
            return std::nullopt;
        }
        // Non-negative integers round-trip through the UInt kind so
        // 64-bit counters keep full precision.
        if (tok.find_first_of(".eE-") == std::string::npos) {
            std::uint64_t u = 0;
            const auto res = std::from_chars(
                tok.data(), tok.data() + tok.size(), u, 10);
            if (res.ec == std::errc() &&
                res.ptr == tok.data() + tok.size())
                return JsonValue(u);
        }
        double d = 0;
        const auto res =
            std::from_chars(tok.data(), tok.data() + tok.size(), d);
        if (res.ec != std::errc() ||
            res.ptr != tok.data() + tok.size()) {
            fail("malformed number");
            return std::nullopt;
        }
        return JsonValue(d);
    }

    std::optional<JsonValue>
    parseValue()
    {
        skipWs();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return std::nullopt;
        }
        const char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            JsonValue obj = JsonValue::object();
            skipWs();
            if (consume('}'))
                return obj;
            while (true) {
                skipWs();
                auto key = parseString();
                if (!key)
                    return std::nullopt;
                skipWs();
                if (!consume(':')) {
                    fail("expected ':'");
                    return std::nullopt;
                }
                auto val = parseValue();
                if (!val)
                    return std::nullopt;
                obj.set(*key, std::move(*val));
                skipWs();
                if (consume(','))
                    continue;
                if (consume('}'))
                    return obj;
                fail("expected ',' or '}'");
                return std::nullopt;
            }
        }
        if (c == '[') {
            ++pos_;
            JsonValue arr = JsonValue::array();
            skipWs();
            if (consume(']'))
                return arr;
            while (true) {
                auto val = parseValue();
                if (!val)
                    return std::nullopt;
                arr.push(std::move(*val));
                skipWs();
                if (consume(','))
                    continue;
                if (consume(']'))
                    return arr;
                fail("expected ',' or ']'");
                return std::nullopt;
            }
        }
        if (c == '"') {
            auto s = parseString();
            if (!s)
                return std::nullopt;
            return JsonValue(std::move(*s));
        }
        if (consumeWord("true"))
            return JsonValue(true);
        if (consumeWord("false"))
            return JsonValue(false);
        if (consumeWord("null"))
            return JsonValue();
        return parseNumber();
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    std::string error_;
};

} // anonymous namespace

std::optional<JsonValue>
JsonValue::parse(const std::string &text, std::string *error)
{
    return Parser(text).run(error);
}

} // namespace sdbp::obs
