/**
 * @file
 * Interval engine: snapshots a StatRegistry at every simulation
 * heartbeat (every N instructions), building cumulative per-interval
 * timelines from which rate series — MPKI, IPC, bypass rate,
 * predictor accuracy — are derived by differencing consecutive
 * snapshots.  Interval-resolved statistics are what expose warm-up
 * and phase artifacts (Bueno et al., PAPERS.md).
 */

#ifndef SDBP_OBS_INTERVAL_HH
#define SDBP_OBS_INTERVAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/stat_registry.hh"

namespace sdbp::obs
{

class IntervalTimeline
{
  public:
    /** @param reg registry to snapshot; must outlive the timeline */
    explicit IntervalTimeline(const StatRegistry *reg) : reg_(reg) {}

    /**
     * Take one snapshot at @p tick.  Called by the System heartbeat
     * during the measurement phase; the runner adds a final sample
     * so the tail partial interval is captured too.  Duplicate ticks
     * (e.g. when the run ends exactly on a boundary) are dropped.
     */
    void sample(std::uint64_t tick);

    const std::vector<StatSnapshot> &snapshots() const
    {
        return snapshots_;
    }
    std::size_t numIntervals() const
    {
        return snapshots_.empty() ? 0 : snapshots_.size() - 1;
    }

    /**
     * Per-interval deltas of one cumulative stat: element i is
     * value(i+1) - value(i).  Gauges difference too (useful for
     * cycles exposed as gauges); a missing name yields all-zeros.
     */
    std::vector<double> deltaSeries(const std::string &name) const;

    /**
     * Per-interval ratio of two deltas, scaled: element i is
     * scale * d(num) / d(denom), 0 where the denominator interval
     * delta is 0.  MPKI = rateSeries("llc.demand_misses",
     * "sys.instructions", 1000); IPC = rateSeries(
     * "core0.instructions", "core0.cycles").
     */
    std::vector<double> rateSeries(const std::string &num,
                                   const std::string &denom,
                                   double scale = 1.0) const;

  private:
    const StatRegistry *reg_;
    std::vector<StatSnapshot> snapshots_;
};

} // namespace sdbp::obs

#endif // SDBP_OBS_INTERVAL_HH
