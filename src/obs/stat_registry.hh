/**
 * @file
 * Named hierarchical statistics registry (the hub of the
 * observability layer, DESIGN.md §9).
 *
 * Components *register* their existing counters once at setup time —
 * either a pointer to a live `std::uint64_t` counter, a gauge
 * callback, or a pointer to a `Histogram` / `RunningStat` — and the
 * registry *pulls* values when a snapshot is requested.  Nothing
 * changes in any hot path: when observability is off the registry
 * simply does not exist, and when it is on the simulation only pays
 * at snapshot (heartbeat) boundaries.
 *
 * Names are dot-separated paths ("llc.demand_misses",
 * "core0.cycles", "dbrb.confusion.dead_evicted").  Registering the
 * same name twice is a programming error and panics.
 */

#ifndef SDBP_OBS_STAT_REGISTRY_HH
#define SDBP_OBS_STAT_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "util/stats.hh"

namespace sdbp::obs
{

class JsonValue;

enum class StatKind { Counter, Gauge, Histogram };

/** Value of one stat at one point in time. */
struct StatSample
{
    std::string name;
    StatKind kind = StatKind::Counter;
    /** Counter value (Counter kind only). */
    std::uint64_t counter = 0;
    /** Gauge value, or the counter cast to double. */
    double value = 0;
    /** Histogram kind only. */
    std::vector<std::uint64_t> buckets;
    double bucketWidth = 0;
};

/** All registered stats, sampled atomically at one tick. */
struct StatSnapshot
{
    /** Simulation tick (total instructions) at sampling time. */
    std::uint64_t tick = 0;
    std::vector<StatSample> samples;

    /** Lookup by full name; nullptr when absent. */
    const StatSample *find(const std::string &name) const;
    /** Numeric value by name; @p fallback when absent. */
    double value(const std::string &name, double fallback = 0) const;
    /** Counter value by name; 0 when absent or not a counter. */
    std::uint64_t counter(const std::string &name) const;
};

class StatRegistry
{
  public:
    /**
     * Register a counter backed by @p src, which must outlive the
     * registry (components own their counters; the registry reads).
     */
    void addCounter(const std::string &name, const std::uint64_t *src);

    /** Register a gauge computed on demand. */
    void addGauge(const std::string &name,
                  std::function<double()> src);

    /** Register a histogram backed by @p src. */
    void addHistogram(const std::string &name, const Histogram *src);

    /** Register a RunningStat as mean/min/max/stddev gauges. */
    void addRunningStat(const std::string &name,
                        const RunningStat *src);

    bool has(const std::string &name) const;
    std::size_t size() const { return entries_.size(); }

    /** All registered names, in registration order. */
    std::vector<std::string> names() const;

    /** Sample every stat now. */
    StatSnapshot snapshot(std::uint64_t tick = 0) const;

    /** Join a prefix and a leaf name with '.' ("" prefix = leaf). */
    static std::string join(const std::string &prefix,
                            const std::string &leaf);

  private:
    struct Entry
    {
        std::string name;
        StatKind kind;
        const std::uint64_t *counter = nullptr;
        std::function<double()> gauge;
        const Histogram *hist = nullptr;
    };

    void checkName(const std::string &name);

    std::vector<Entry> entries_;
    std::unordered_set<std::string> names_;
};

/** Snapshot as a flat JSON object name -> value (histograms become
 *  {count, mean, buckets}). */
JsonValue snapshotToJson(const StatSnapshot &snap);

} // namespace sdbp::obs

#endif // SDBP_OBS_STAT_REGISTRY_HH
