#include "obs/stat_registry.hh"

#include "obs/json.hh"
#include "util/logging.hh"

namespace sdbp::obs
{

const StatSample *
StatSnapshot::find(const std::string &name) const
{
    for (const auto &s : samples)
        if (s.name == name)
            return &s;
    return nullptr;
}

double
StatSnapshot::value(const std::string &name, double fallback) const
{
    const StatSample *s = find(name);
    return s ? s->value : fallback;
}

std::uint64_t
StatSnapshot::counter(const std::string &name) const
{
    const StatSample *s = find(name);
    return s && s->kind == StatKind::Counter ? s->counter : 0;
}

void
StatRegistry::checkName(const std::string &name)
{
    if (name.empty())
        panic("StatRegistry: empty stat name");
    if (!names_.insert(name).second)
        panic("StatRegistry: duplicate stat name '" + name + "'");
}

void
StatRegistry::addCounter(const std::string &name,
                         const std::uint64_t *src)
{
    checkName(name);
    Entry e;
    e.name = name;
    e.kind = StatKind::Counter;
    e.counter = src;
    entries_.push_back(std::move(e));
}

void
StatRegistry::addGauge(const std::string &name,
                       std::function<double()> src)
{
    checkName(name);
    Entry e;
    e.name = name;
    e.kind = StatKind::Gauge;
    e.gauge = std::move(src);
    entries_.push_back(std::move(e));
}

void
StatRegistry::addHistogram(const std::string &name,
                           const Histogram *src)
{
    checkName(name);
    Entry e;
    e.name = name;
    e.kind = StatKind::Histogram;
    e.hist = src;
    entries_.push_back(std::move(e));
}

void
StatRegistry::addRunningStat(const std::string &name,
                             const RunningStat *src)
{
    addGauge(name + ".mean", [src] { return src->mean(); });
    addGauge(name + ".min", [src] { return src->min(); });
    addGauge(name + ".max", [src] { return src->max(); });
    addGauge(name + ".stddev", [src] { return src->stddev(); });
}

bool
StatRegistry::has(const std::string &name) const
{
    return names_.count(name) > 0;
}

std::vector<std::string>
StatRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &e : entries_)
        out.push_back(e.name);
    return out;
}

StatSnapshot
StatRegistry::snapshot(std::uint64_t tick) const
{
    StatSnapshot snap;
    snap.tick = tick;
    snap.samples.reserve(entries_.size());
    for (const auto &e : entries_) {
        StatSample s;
        s.name = e.name;
        s.kind = e.kind;
        switch (e.kind) {
          case StatKind::Counter:
            s.counter = *e.counter;
            s.value = static_cast<double>(s.counter);
            break;
          case StatKind::Gauge:
            s.value = e.gauge();
            break;
          case StatKind::Histogram:
            s.value = e.hist->mean();
            s.bucketWidth = e.hist->bucketWidth();
            s.buckets.reserve(e.hist->numBuckets());
            for (unsigned i = 0; i < e.hist->numBuckets(); ++i)
                s.buckets.push_back(e.hist->bucketCount(i));
            break;
        }
        snap.samples.push_back(std::move(s));
    }
    return snap;
}

std::string
StatRegistry::join(const std::string &prefix, const std::string &leaf)
{
    return prefix.empty() ? leaf : prefix + "." + leaf;
}

JsonValue
snapshotToJson(const StatSnapshot &snap)
{
    JsonValue obj = JsonValue::object();
    obj.set("tick", JsonValue(snap.tick));
    JsonValue stats = JsonValue::object();
    for (const auto &s : snap.samples) {
        switch (s.kind) {
          case StatKind::Counter:
            stats.set(s.name, JsonValue(s.counter));
            break;
          case StatKind::Gauge:
            stats.set(s.name, JsonValue(s.value));
            break;
          case StatKind::Histogram: {
            JsonValue h = JsonValue::object();
            std::uint64_t count = 0;
            JsonValue buckets = JsonValue::array();
            for (const auto b : s.buckets) {
                count += b;
                buckets.push(JsonValue(b));
            }
            h.set("count", JsonValue(count));
            h.set("mean", JsonValue(s.value));
            h.set("bucket_width", JsonValue(s.bucketWidth));
            h.set("buckets", std::move(buckets));
            stats.set(s.name, std::move(h));
            break;
          }
        }
    }
    obj.set("stats", std::move(stats));
    return obj;
}

} // namespace sdbp::obs
