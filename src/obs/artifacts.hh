/**
 * @file
 * The machine-readable artifact of one instrumented run: final
 * registry snapshot, per-interval timeline, predictor confusion
 * matrix and wall-clock profile, with JSON and CSV exporters.  This
 * is what `tools/sdbp_inspect` prints and what the SDBP_STATS_JSON
 * path receives.
 */

#ifndef SDBP_OBS_ARTIFACTS_HH
#define SDBP_OBS_ARTIFACTS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/confusion.hh"
#include "obs/interval.hh"
#include "obs/json.hh"
#include "obs/profiler.hh"
#include "obs/stat_registry.hh"
#include "util/perf_counters.hh"

namespace sdbp::obs
{

/** One derived per-interval series ("mpki", "ipc", ...). */
struct TimelineSeries
{
    std::string name;
    std::vector<double> values;
};

struct RunArtifacts
{
    std::string benchmark;
    std::string policy;
    std::uint64_t warmupInstructions = 0;
    std::uint64_t measureInstructions = 0;
    std::uint64_t intervalInstructions = 0;

    /** Registry snapshot at end of run. */
    StatSnapshot finalSnapshot;
    /** Cumulative snapshots at every heartbeat (measurement phase);
     *  the first entry is the measurement-start baseline. */
    std::vector<StatSnapshot> intervals;
    /** Derived per-interval series (one value per interval). */
    std::vector<TimelineSeries> series;

    bool hasConfusion = false;
    ConfusionMatrix confusion;

    std::vector<Profiler::ScopeStats> profile;

    /** Trace-sink accounting (events stream to their own JSONL). */
    std::uint64_t traceEventsRecorded = 0;
    std::uint64_t traceEventsDropped = 0;

    /** Wall-clock seconds of the simulated phases at collect time
     *  (setup + warmup + measure; excludes artifact export). */
    double wallSeconds = 0;
    /** Simulated instructions (all threads), for ns/instr. */
    std::uint64_t simulatedInstructions = 0;
    /** Host hardware counters over the run (valid gated). */
    util::PerfCounters::Sample hostPerf;

    /** Host nanoseconds per simulated instruction. */
    double nsPerInstr() const
    {
        return simulatedInstructions > 0
            ? wallSeconds * 1e9 /
                static_cast<double>(simulatedInstructions)
            : 0;
    }

    const TimelineSeries *findSeries(const std::string &name) const;

    JsonValue toJson() const;
    /** Write toJson() to @p path; false on I/O failure. */
    bool writeJson(const std::string &path) const;

    /**
     * Timeline as CSV: one row per interval with the end tick and
     * every derived series as a column.
     */
    std::string timelineCsv() const;
    bool writeTimelineCsv(const std::string &path) const;
};

/**
 * Compute the standard derived series from a timeline using the
 * canonical stat names (DESIGN.md §9): mpki, ipc, bypass_rate,
 * dead_coverage, confusion accuracy.  Missing stats produce no
 * series, so the helper works for any policy.
 */
std::vector<TimelineSeries>
standardSeries(const IntervalTimeline &timeline);

} // namespace sdbp::obs

#endif // SDBP_OBS_ARTIFACTS_HH
