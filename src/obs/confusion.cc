#include "obs/confusion.hh"

#include "obs/stat_registry.hh"
#include "util/stats.hh"

namespace sdbp::obs
{

double
ConfusionMatrix::accuracy() const
{
    return ratio(static_cast<double>(deadEvicted + liveHit),
                 static_cast<double>(total()));
}

double
ConfusionMatrix::falseDiscoveryRate() const
{
    return ratio(static_cast<double>(deadHit),
                 static_cast<double>(deadHit + deadEvicted));
}

void
ConfusionMatrix::registerStats(StatRegistry &reg,
                               const std::string &prefix) const
{
    reg.addCounter(StatRegistry::join(prefix, "dead_evicted"),
                   &deadEvicted);
    reg.addCounter(StatRegistry::join(prefix, "dead_hit"), &deadHit);
    reg.addCounter(StatRegistry::join(prefix, "live_evicted"),
                   &liveEvicted);
    reg.addCounter(StatRegistry::join(prefix, "live_hit"), &liveHit);
}

} // namespace sdbp::obs
