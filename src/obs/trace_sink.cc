#include "obs/trace_sink.hh"

#include <algorithm>

namespace sdbp::obs
{

const char *
traceEventKindName(TraceEventKind kind)
{
    switch (kind) {
      case TraceEventKind::Prediction: return "prediction";
      case TraceEventKind::Fill: return "fill";
      case TraceEventKind::Hit: return "hit";
      case TraceEventKind::Eviction: return "eviction";
      case TraceEventKind::Bypass: return "bypass";
    }
    return "unknown";
}

TraceSink::TraceSink(std::size_t capacity)
    : ring_(std::max<std::size_t>(capacity, 1))
{
}

bool
TraceSink::openJsonl(const std::string &path)
{
    jsonl_.open(path, std::ios::trunc);
    return jsonl_.is_open();
}

void
TraceSink::closeJsonl()
{
    if (jsonl_.is_open())
        jsonl_.close();
}

void
TraceSink::record(const TraceEvent &e)
{
    ring_[recorded_ % ring_.size()] = e;
    ++recorded_;
    if (jsonl_.is_open())
        jsonl_ << toJsonl(e) << '\n';
}

std::size_t
TraceSink::size() const
{
    return std::min<std::uint64_t>(recorded_, ring_.size());
}

std::uint64_t
TraceSink::dropped() const
{
    return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
}

std::vector<TraceEvent>
TraceSink::events() const
{
    std::vector<TraceEvent> out;
    const std::size_t n = size();
    out.reserve(n);
    const std::uint64_t first = recorded_ - n;
    for (std::uint64_t i = 0; i < n; ++i)
        out.push_back(ring_[(first + i) % ring_.size()]);
    return out;
}

std::string
TraceSink::toJsonl(const TraceEvent &e)
{
    std::string out = "{\"tick\":";
    out += std::to_string(e.tick);
    out += ",\"event\":\"";
    out += traceEventKindName(e.kind);
    out += "\",\"set\":";
    out += std::to_string(e.set);
    out += ",\"block\":";
    out += std::to_string(e.blockAddr);
    out += ",\"pc\":";
    out += std::to_string(e.pc);
    out += ",\"dead\":";
    out += e.predictedDead ? "true" : "false";
    out += "}";
    return out;
}

} // namespace sdbp::obs
