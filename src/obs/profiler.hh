/**
 * @file
 * Wall-clock profiling scopes for the simulator itself: accumulated
 * time per named pipeline stage plus an event counter, so simulated
 * events/second (the "measurably faster" ROADMAP metric) is reported
 * with every instrumented run and performance regressions become
 * visible in the run artifacts.
 */

#ifndef SDBP_OBS_PROFILER_HH
#define SDBP_OBS_PROFILER_HH

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace sdbp::obs
{

class Profiler
{
  public:
    /** RAII scope: commits elapsed wall time on destruction. */
    class Scope
    {
      public:
        Scope(Profiler *profiler, std::size_t index)
            : profiler_(profiler), index_(index),
              start_(std::chrono::steady_clock::now())
        {
        }
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;
        Scope(Scope &&other) noexcept
            : profiler_(other.profiler_), index_(other.index_),
              start_(other.start_)
        {
            other.profiler_ = nullptr;
        }
        Scope &operator=(Scope &&) = delete;
        ~Scope();

      private:
        Profiler *profiler_;
        std::size_t index_;
        std::chrono::steady_clock::time_point start_;
    };

    /** Enter the named scope (created on first use). */
    Scope scope(const std::string &name);

    /**
     * Attribute @p n simulated events (instructions, accesses, ...)
     * to the named scope, for the events/sec report.
     */
    void addEvents(const std::string &name, std::uint64_t n);

    struct ScopeStats
    {
        std::string name;
        double seconds = 0;
        std::uint64_t calls = 0;
        std::uint64_t events = 0;

        double eventsPerSec() const
        {
            return seconds > 0 ? static_cast<double>(events) / seconds
                               : 0;
        }
    };

    const std::vector<ScopeStats> &summary() const { return scopes_; }

  private:
    std::size_t indexOf(const std::string &name);

    std::vector<ScopeStats> scopes_;

    friend class Scope;
    void commit(std::size_t index, double seconds);
};

} // namespace sdbp::obs

#endif // SDBP_OBS_PROFILER_HH
