/**
 * @file
 * Wall-clock profiling scopes for the simulator itself: accumulated
 * time per named pipeline stage plus an event counter, so simulated
 * events/second (the "measurably faster" ROADMAP metric) is reported
 * with every instrumented run and performance regressions become
 * visible in the run artifacts.
 *
 * Two optional attachments extend each scope (DESIGN.md §14):
 *  - mirrorSpans(): every committed scope is re-emitted as a "phase"
 *    span through an obs::SpanTracer, attributed to a sweep cell.
 *  - enableHostCounters(): host hardware counters (cycles,
 *    instructions, LLC/branch misses via util::PerfCounters) are
 *    sampled at scope entry/exit and accumulated per scope, giving
 *    per-phase host IPC next to the wall clock.
 */

#ifndef SDBP_OBS_PROFILER_HH
#define SDBP_OBS_PROFILER_HH

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/perf_counters.hh"

namespace sdbp::obs
{

class SpanTracer;

class Profiler
{
  public:
    Profiler();
    ~Profiler();

    /** RAII scope: commits elapsed wall time on destruction. */
    class Scope
    {
      public:
        Scope(Profiler *profiler, std::size_t index);
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;
        Scope(Scope &&other) noexcept
            : profiler_(other.profiler_), index_(other.index_),
              start_(other.start_), startHost_(other.startHost_)
        {
            other.profiler_ = nullptr;
        }
        Scope &operator=(Scope &&) = delete;
        ~Scope();

      private:
        Profiler *profiler_;
        std::size_t index_;
        std::chrono::steady_clock::time_point start_;
        util::PerfCounters::Sample startHost_;
    };

    /** Enter the named scope (created on first use). */
    Scope scope(const std::string &name);

    /**
     * Attribute @p n simulated events (instructions, accesses, ...)
     * to the named scope, for the events/sec report.
     */
    void addEvents(const std::string &name, std::uint64_t n);

    /**
     * Re-emit every committed scope as a "phase" span on @p tracer,
     * labelled with the scope name and attributed to @p cell
     * ("456.hmmer/Sampler").  nullptr detaches.
     */
    void mirrorSpans(SpanTracer *tracer, std::string cell);

    /**
     * Sample host hardware counters per scope.  Honors the global
     * SDBP_PERF gate; a host without perf_event access keeps the
     * profiler fully functional with hostValid staying false.
     */
    void enableHostCounters();

    struct ScopeStats
    {
        std::string name;
        double seconds = 0;
        std::uint64_t calls = 0;
        std::uint64_t events = 0;
        /** Host-counter deltas accumulated over the scope's calls
         *  (hostValid gates all four). */
        bool hostValid = false;
        std::uint64_t hostCycles = 0;
        std::uint64_t hostInstructions = 0;
        std::uint64_t hostLlcMisses = 0;
        std::uint64_t hostBranchMisses = 0;

        double eventsPerSec() const
        {
            return seconds > 0 ? static_cast<double>(events) / seconds
                               : 0;
        }

        /** Host instructions per host cycle across the scope. */
        double hostIpc() const
        {
            return hostCycles > 0
                ? static_cast<double>(hostInstructions) /
                    static_cast<double>(hostCycles)
                : 0;
        }
    };

    const std::vector<ScopeStats> &summary() const { return scopes_; }

  private:
    std::size_t indexOf(const std::string &name);

    /** Counter reading now (valid=false without counters). */
    util::PerfCounters::Sample hostSample() const;

    std::vector<ScopeStats> scopes_;
    SpanTracer *tracer_ = nullptr;
    std::string cell_;
    /** Free-running group; scopes read deltas between samples. */
    std::unique_ptr<util::PerfCounters> counters_;

    friend class Scope;
    void commit(std::size_t index,
                std::chrono::steady_clock::time_point start,
                std::chrono::steady_clock::time_point end,
                const util::PerfCounters::Sample &startHost);
};

} // namespace sdbp::obs

#endif // SDBP_OBS_PROFILER_HH
