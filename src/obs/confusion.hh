/**
 * @file
 * Running confusion matrix of dead-block predictions against
 * observed block outcomes.  Every demand hit and every eviction
 * classifies the prediction bit the block was carrying at that
 * moment, so the four cells partition exactly the (hits, evictions)
 * the policy observed:
 *
 *                      observed dead (evicted)   observed live (hit)
 *   predicted dead     deadEvicted (TP)          deadHit (FP)
 *   predicted live     liveEvicted (FN)          liveHit (TN)
 */

#ifndef SDBP_OBS_CONFUSION_HH
#define SDBP_OBS_CONFUSION_HH

#include <cstdint>
#include <string>

namespace sdbp::obs
{

class StatRegistry;

struct ConfusionMatrix
{
    /** Predicted dead, then evicted without reuse (true positive). */
    std::uint64_t deadEvicted = 0;
    /** Predicted dead, then demand-hit again (false positive). */
    std::uint64_t deadHit = 0;
    /** Predicted live, then evicted without reuse (false negative). */
    std::uint64_t liveEvicted = 0;
    /** Predicted live, then demand-hit again (true negative). */
    std::uint64_t liveHit = 0;

    std::uint64_t
    evictionsObserved() const
    {
        return deadEvicted + liveEvicted;
    }

    std::uint64_t
    total() const
    {
        return deadEvicted + deadHit + liveEvicted + liveHit;
    }

    /** Fraction of classified outcomes predicted correctly. */
    double accuracy() const;
    /** FP / (FP + TP): wrong fraction of the dead predictions. */
    double falseDiscoveryRate() const;

    /** Register the four cells as counters under @p prefix. */
    void registerStats(StatRegistry &reg,
                       const std::string &prefix) const;
};

} // namespace sdbp::obs

#endif // SDBP_OBS_CONFUSION_HH
