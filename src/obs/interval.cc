#include "obs/interval.hh"

#include "util/stats.hh"

namespace sdbp::obs
{

void
IntervalTimeline::sample(std::uint64_t tick)
{
    if (!snapshots_.empty() && snapshots_.back().tick == tick)
        return;
    snapshots_.push_back(reg_->snapshot(tick));
}

std::vector<double>
IntervalTimeline::deltaSeries(const std::string &name) const
{
    std::vector<double> out;
    if (snapshots_.size() < 2)
        return out;
    out.reserve(snapshots_.size() - 1);
    for (std::size_t i = 1; i < snapshots_.size(); ++i)
        out.push_back(snapshots_[i].value(name) -
                      snapshots_[i - 1].value(name));
    return out;
}

std::vector<double>
IntervalTimeline::rateSeries(const std::string &num,
                             const std::string &denom,
                             double scale) const
{
    const auto n = deltaSeries(num);
    const auto d = deltaSeries(denom);
    std::vector<double> out;
    out.reserve(n.size());
    for (std::size_t i = 0; i < n.size(); ++i)
        out.push_back(scale * ratio(n[i], d[i]));
    return out;
}

} // namespace sdbp::obs
