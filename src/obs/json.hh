/**
 * @file
 * Minimal JSON document model for the observability exporters: an
 * ordered value tree, a writer producing stable, human-diffable
 * output, and a strict parser used by round-trip tests and tools.
 * No external dependencies.
 */

#ifndef SDBP_OBS_JSON_HH
#define SDBP_OBS_JSON_HH

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace sdbp::obs
{

/**
 * One JSON value.  Objects preserve insertion order so exported
 * documents are schema-stable across runs (a requirement for the
 * BENCH_*.json artifacts, which are diffed between revisions).
 */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, UInt, Number, String, Array, Object };

    JsonValue() = default;
    JsonValue(bool b) : kind_(Kind::Bool), bool_(b) {}
    JsonValue(double d) : kind_(Kind::Number), num_(d) {}
    JsonValue(std::uint64_t u) : kind_(Kind::UInt), uint_(u) {}
    JsonValue(int i)
        : kind_(Kind::UInt), uint_(static_cast<std::uint64_t>(i))
    {
    }
    JsonValue(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
    JsonValue(const char *s) : kind_(Kind::String), str_(s) {}

    static JsonValue array();
    static JsonValue object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }

    bool asBool() const { return bool_; }
    /** Numeric value of UInt or Number kinds. */
    double asNumber() const;
    std::uint64_t asUInt() const { return uint_; }
    const std::string &asString() const { return str_; }

    /** Append to an array (converts a Null value to an array). */
    JsonValue &push(JsonValue v);

    /** Insert/overwrite an object key (converts Null to object). */
    JsonValue &set(const std::string &key, JsonValue v);

    /** Array length / object member count. */
    std::size_t size() const;

    /** Array element access. */
    const JsonValue &at(std::size_t i) const { return arr_.at(i); }

    /** Object member lookup; nullptr when absent. */
    const JsonValue *find(const std::string &key) const;

    /** Object members in insertion order. */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return obj_;
    }

    /**
     * Serialize.  @p indent > 0 pretty-prints with that many spaces
     * per level; 0 produces a compact single line.
     */
    std::string dump(int indent = 2) const;

    /**
     * Strict parse of a complete JSON document.  Returns nullopt and
     * fills @p error (when non-null) on malformed input or trailing
     * garbage.
     */
    static std::optional<JsonValue> parse(const std::string &text,
                                          std::string *error = nullptr);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0;
    std::uint64_t uint_ = 0;
    std::string str_;
    std::vector<JsonValue> arr_;
    std::vector<std::pair<std::string, JsonValue>> obj_;
};

/** JSON string escaping (quotes not included). */
std::string jsonEscape(const std::string &s);

} // namespace sdbp::obs

#endif // SDBP_OBS_JSON_HH
