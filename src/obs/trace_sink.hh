/**
 * @file
 * Event-trace sink: a bounded ring buffer of predictor/eviction
 * events with an optional JSONL stream.  Hot-path emission goes
 * through the SDBP_TRACE_EVENT macro, which compiles out entirely
 * when the SDBP_TRACE CMake option is off and otherwise costs one
 * predictable null-pointer test when no sink is attached.
 */

#ifndef SDBP_OBS_TRACE_SINK_HH
#define SDBP_OBS_TRACE_SINK_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "util/types.hh"

namespace sdbp::obs
{

enum class TraceEventKind : std::uint8_t
{
    Prediction, ///< predictor consulted on a demand access
    Fill,       ///< block installed in the cache
    Hit,        ///< demand hit
    Eviction,   ///< valid block evicted
    Bypass,     ///< fill declined (predicted dead on arrival)
};

/** Stable lowercase name ("prediction", "fill", ...). */
const char *traceEventKindName(TraceEventKind kind);

struct TraceEvent
{
    std::uint64_t tick = 0;
    TraceEventKind kind = TraceEventKind::Prediction;
    std::uint32_t set = 0;
    Addr blockAddr = 0;
    PC pc = 0;
    /** Dead prediction attached to the event (kind-dependent). */
    bool predictedDead = false;
};

class TraceSink
{
  public:
    /** @param capacity ring size; older events are overwritten */
    explicit TraceSink(std::size_t capacity = 4096);

    /**
     * Additionally stream every event to @p path as one JSON object
     * per line.  @return false if the file cannot be opened.
     */
    bool openJsonl(const std::string &path);
    void closeJsonl();

    void record(const TraceEvent &e);

    std::size_t capacity() const { return ring_.size(); }
    /** Events currently held in the ring. */
    std::size_t size() const;
    /** Total events ever recorded. */
    std::uint64_t recorded() const { return recorded_; }
    /** Events that fell out of the ring. */
    std::uint64_t dropped() const;

    /** Ring contents, oldest first. */
    std::vector<TraceEvent> events() const;

    /** One JSONL line (no trailing newline). */
    static std::string toJsonl(const TraceEvent &e);

  private:
    std::vector<TraceEvent> ring_;
    std::uint64_t recorded_ = 0;
    std::ofstream jsonl_;
};

} // namespace sdbp::obs

/*
 * Hot-path emission macro.  The build defines SDBP_TRACE_ENABLED via
 * the SDBP_TRACE CMake option (default on); standalone inclusion
 * keeps tracing available.
 */
#ifndef SDBP_TRACE_ENABLED
#define SDBP_TRACE_ENABLED 1
#endif

#if SDBP_TRACE_ENABLED
/** Record a TraceEvent through @p sink (a TraceSink*; may be null). */
#define SDBP_TRACE_EVENT(sink, ...)                                    \
    do {                                                               \
        if (sink)                                                      \
            (sink)->record(::sdbp::obs::TraceEvent{__VA_ARGS__});      \
    } while (0)
#else
#define SDBP_TRACE_EVENT(sink, ...) ((void)0)
#endif

#endif // SDBP_OBS_TRACE_SINK_HH
