#include "obs/span_tracer.hh"

#include <algorithm>

#include "util/env.hh"
#include "util/file.hh"

namespace sdbp::obs
{

namespace
{

std::uint64_t
microsBetween(std::chrono::steady_clock::time_point a,
              std::chrono::steady_clock::time_point b)
{
    if (b <= a)
        return 0;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(b - a)
            .count());
}

} // anonymous namespace

SpanTracer::SpanTracer(std::size_t capacity)
    // sdbp-lint: allow(det-wallclock)
    : epoch_(std::chrono::steady_clock::now()), slots_(capacity)
{
}

std::uint32_t
SpanTracer::threadId()
{
    static std::atomic<std::uint32_t> next{0};
    thread_local std::uint32_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

std::uint32_t &
SpanTracer::nestingDepth()
{
    thread_local std::uint32_t depth = 0;
    return depth;
}

SpanTracer::Span::Span(SpanTracer *tracer, std::string category,
                       std::string name)
    : category_(std::move(category)), name_(std::move(name))
{
    if (!tracer || !tracer->enabled())
        return;
    tracer_ = tracer;
    start_ = std::chrono::steady_clock::now(); // sdbp-lint: allow(det-wallclock)
    depth_ = nestingDepth()++;
}

SpanTracer::Span::Span(Span &&other) noexcept
    : tracer_(other.tracer_), category_(std::move(other.category_)),
      name_(std::move(other.name_)), start_(other.start_),
      depth_(other.depth_), attempts_(other.attempts_),
      failed_(other.failed_), timedOut_(other.timedOut_),
      resumed_(other.resumed_), skipped_(other.skipped_)
{
    other.tracer_ = nullptr;
}

SpanTracer::Span::~Span()
{
    if (!tracer_)
        return;
    --nestingDepth();
    SpanRecord rec;
    rec.name = std::move(name_);
    rec.category = std::move(category_);
    rec.startUs = microsBetween(tracer_->epoch_, start_);
    rec.durUs = microsBetween(
        start_,
        std::chrono::steady_clock::now()); // sdbp-lint: allow(det-wallclock)
    rec.tid = threadId();
    rec.depth = depth_;
    rec.attempts = attempts_;
    rec.failed = failed_;
    rec.timedOut = timedOut_;
    rec.resumed = resumed_;
    rec.skipped = skipped_;
    tracer_->commit(std::move(rec));
}

SpanTracer::Span
SpanTracer::span(std::string category, std::string name)
{
    return Span(this, std::move(category), std::move(name));
}

void
SpanTracer::emit(const std::string &category, const std::string &name,
                 std::chrono::steady_clock::time_point start,
                 std::chrono::steady_clock::time_point end,
                 const std::string &cell)
{
    if (!enabled())
        return;
    SpanRecord rec;
    rec.name = name;
    rec.category = category;
    rec.cell = cell;
    rec.startUs = microsBetween(epoch_, start);
    rec.durUs = microsBetween(start, end);
    rec.tid = threadId();
    rec.depth = nestingDepth();
    commit(std::move(rec));
}

void
SpanTracer::emitInterval(SpanRecord rec,
                         std::chrono::steady_clock::time_point start,
                         std::chrono::steady_clock::time_point end)
{
    if (!enabled())
        return;
    rec.startUs = microsBetween(epoch_, start);
    rec.durUs = microsBetween(start, end);
    rec.tid = threadId();
    commit(std::move(rec));
}

void
SpanTracer::commit(SpanRecord rec)
{
    recorded_.fetch_add(1, std::memory_order_relaxed);
    // One relaxed ticket per span; tickets beyond capacity are
    // dropped (never recycled), so a slot has exactly one writer and
    // the joined-threads export needs no further synchronization.
    const std::size_t ticket =
        next_.fetch_add(1, std::memory_order_relaxed);
    if (ticket >= slots_.size())
        return;
    slots_[ticket] = std::move(rec);
}

std::uint64_t
SpanTracer::dropped() const
{
    const std::uint64_t total = recorded();
    const std::uint64_t cap = slots_.size();
    return total > cap ? total - cap : 0;
}

std::size_t
SpanTracer::size() const
{
    return std::min(next_.load(std::memory_order_relaxed),
                    slots_.size());
}

std::vector<SpanRecord>
SpanTracer::snapshot() const
{
    std::vector<SpanRecord> out(slots_.begin(),
                                slots_.begin() +
                                    static_cast<std::ptrdiff_t>(size()));
    // Depth tie-breaks equal start stamps (µs resolution) so a
    // parent precedes the children it encloses.
    std::stable_sort(out.begin(), out.end(),
                     [](const SpanRecord &a, const SpanRecord &b) {
                         return a.startUs != b.startUs
                             ? a.startUs < b.startUs
                             : a.depth < b.depth;
                     });
    return out;
}

void
SpanTracer::clear()
{
    next_.store(0, std::memory_order_relaxed);
    recorded_.store(0, std::memory_order_relaxed);
    epoch_ = std::chrono::steady_clock::now(); // sdbp-lint: allow(det-wallclock)
}

JsonValue
SpanTracer::toChromeTrace() const
{
    JsonValue root = JsonValue::object();
    root.set("schema", JsonValue("sdbp.trace_spans/1"));
    root.set("displayTimeUnit", JsonValue("ms"));
    root.set("spans_recorded", JsonValue(recorded()));
    root.set("spans_dropped", JsonValue(dropped()));

    JsonValue events = JsonValue::array();
    for (const SpanRecord &s : snapshot()) {
        JsonValue e = JsonValue::object();
        e.set("name", JsonValue(s.name));
        e.set("cat", JsonValue(s.category));
        e.set("ph", JsonValue("X"));
        e.set("ts", JsonValue(s.startUs));
        e.set("dur", JsonValue(s.durUs));
        e.set("pid", JsonValue(std::uint64_t{1}));
        e.set("tid", JsonValue(std::uint64_t{s.tid}));
        JsonValue args = JsonValue::object();
        args.set("depth", JsonValue(std::uint64_t{s.depth}));
        if (!s.cell.empty())
            args.set("cell", JsonValue(s.cell));
        if (s.attempts > 0)
            args.set("attempts",
                     JsonValue(std::uint64_t{s.attempts}));
        if (s.failed) {
            args.set("failed", JsonValue(true));
            args.set("timed_out", JsonValue(s.timedOut));
        }
        if (s.resumed)
            args.set("resumed", JsonValue(true));
        if (s.skipped)
            args.set("skipped", JsonValue(true));
        if (s.workerPid > 0)
            args.set("worker_pid",
                     JsonValue(std::uint64_t{s.workerPid}));
        if (s.leaseGeneration > 0)
            args.set("lease_generation",
                     JsonValue(s.leaseGeneration));
        e.set("args", std::move(args));
        events.push(std::move(e));
    }
    root.set("traceEvents", std::move(events));
    return root;
}

bool
SpanTracer::writeChromeTrace(const std::string &path) const
{
    return util::atomicWriteFile(path, toChromeTrace().dump() + "\n");
}

SpanTracer &
SpanTracer::global()
{
    static SpanTracer tracer;
    static const bool init = [] {
        tracer.setEnabled(env::u64("SDBP_SPANS", 0, 0, 1) == 1);
        return true;
    }();
    (void)init;
    return tracer;
}

} // namespace sdbp::obs
