/**
 * @file
 * Span tracing for the simulator itself: RAII scoped spans with
 * thread attribution and nesting, collected into a bounded lock-free
 * buffer and exported as Chrome `trace_event` JSON (schema
 * `sdbp.trace_spans/1`) that loads directly in Perfetto or
 * chrome://tracing.
 *
 * Spans fire at *cell and phase granularity only* — one span per
 * sweep cell, one per warmup/measure phase — never per simulated
 * access, so the sealed hot path (DESIGN.md §12/§13) stays clean and
 * the tools/sdbp_lint `hot-span` rule rejects any emission reachable
 * from an SDBP_HOT_PATH root.
 *
 * The process-wide tracer (SpanTracer::global()) is enabled by
 * SDBP_SPANS=1; when disabled, span() returns an inert handle and
 * records nothing.  All tracer output (progress, file notices) goes
 * to stderr so stdout byte-identity guarantees hold with tracing on
 * or off.
 */

#ifndef SDBP_OBS_SPAN_TRACER_HH
#define SDBP_OBS_SPAN_TRACER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hh"

namespace sdbp::obs
{

/** One completed span, microseconds relative to the tracer epoch. */
struct SpanRecord
{
    /** Display name ("456.hmmer/Sampler", "warmup", ...). */
    std::string name;
    /** Category: "cell", "phase", "bench", ... */
    std::string category;
    /** Cell label a phase span belongs to ("" for cell spans). */
    std::string cell;
    std::uint64_t startUs = 0;
    std::uint64_t durUs = 0;
    /** Small sequential id of the emitting thread. */
    std::uint32_t tid = 0;
    /** Nesting depth within the emitting thread at begin time. */
    std::uint32_t depth = 0;
    /** Attempts the cell took (retries = attempts - 1); 0 = n/a. */
    std::uint32_t attempts = 0;
    bool failed = false;
    bool timedOut = false;
    bool resumed = false;
    bool skipped = false;
    /** Pid of the sweep worker subprocess that ran the span's work
     *  (multi-process sweeps, DESIGN.md §16); 0 = in-process. */
    std::uint32_t workerPid = 0;
    /** Lease generation of the cell's final claim; 0 = no lease. */
    std::uint64_t leaseGeneration = 0;
};

/**
 * Bounded span collector.  Writers claim slots with one relaxed
 * fetch_add (lock-free, wait-free); when the buffer is full, new
 * spans are dropped and counted rather than blocking or overwriting
 * a slot another thread may still be writing.  Export happens after
 * the sweep's worker threads have been joined, which provides the
 * necessary happens-before edge.
 */
class SpanTracer
{
  public:
    explicit SpanTracer(std::size_t capacity = 65536);

    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }
    void setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    /**
     * RAII span: records begin time at construction and commits the
     * completed SpanRecord to the tracer at destruction.  Inert when
     * the tracer is disabled (or null).  Annotations set between
     * construction and destruction ride along in the record.
     */
    class Span
    {
      public:
        Span() = default;
        Span(SpanTracer *tracer, std::string category,
             std::string name);
        Span(const Span &) = delete;
        Span &operator=(const Span &) = delete;
        Span(Span &&other) noexcept;
        Span &operator=(Span &&) = delete;
        ~Span();

        bool active() const { return tracer_ != nullptr; }

        void setAttempts(std::uint32_t n) { attempts_ = n; }
        void setFailed(bool timed_out)
        {
            failed_ = true;
            timedOut_ = timed_out;
        }
        void setResumed() { resumed_ = true; }
        void setSkipped() { skipped_ = true; }

      private:
        SpanTracer *tracer_ = nullptr;
        std::string category_;
        std::string name_;
        std::chrono::steady_clock::time_point start_;
        std::uint32_t depth_ = 0;
        std::uint32_t attempts_ = 0;
        bool failed_ = false;
        bool timedOut_ = false;
        bool resumed_ = false;
        bool skipped_ = false;
    };

    /** Begin a span now; inert handle when the tracer is disabled. */
    Span span(std::string category, std::string name);

    /**
     * Direct emission for callers that already measured an interval
     * (the Profiler mirrors its scopes through this).  No-op when
     * disabled.  @p cell attributes the span to a sweep cell.
     */
    void emit(const std::string &category, const std::string &name,
              std::chrono::steady_clock::time_point start,
              std::chrono::steady_clock::time_point end,
              const std::string &cell = {});

    /**
     * Direct emission of a fully-annotated record over a measured
     * interval: @p rec keeps every annotation the caller set
     * (worker pid, lease generation, failure flags); start/dur/tid
     * are filled in here.  The sweep coordinator mirrors worker
     * lifetimes and worker-executed cells through this.  No-op when
     * disabled.
     */
    void emitInterval(SpanRecord rec,
                      std::chrono::steady_clock::time_point start,
                      std::chrono::steady_clock::time_point end);

    /** Spans ever offered to the tracer (stored + dropped). */
    std::uint64_t recorded() const
    {
        return recorded_.load(std::memory_order_relaxed);
    }
    /** Spans rejected because the buffer was full. */
    std::uint64_t dropped() const;
    /** Spans currently stored. */
    std::size_t size() const;
    std::size_t capacity() const { return slots_.size(); }

    /** Stored spans in start-time order. */
    std::vector<SpanRecord> snapshot() const;

    /** Forget every stored span (the counters reset too). */
    void clear();

    /**
     * Chrome trace_event document: complete ("ph":"X") events under
     * "traceEvents", schema tag `sdbp.trace_spans/1`.  Loads in
     * Perfetto / chrome://tracing as-is.
     */
    JsonValue toChromeTrace() const;
    /** Write toChromeTrace() to @p path; false on I/O failure. */
    bool writeChromeTrace(const std::string &path) const;

    /**
     * The process-wide tracer used by sweep/runner/bench.  Enabled at
     * first use when SDBP_SPANS=1; tests may flip it with
     * setEnabled() and clear() between cases.
     */
    static SpanTracer &global();

    /** Current thread's small sequential id (assigned on first use). */
    static std::uint32_t threadId();

  private:
    void commit(SpanRecord rec);

    friend class Span;
    /** Per-thread nesting depth bookkeeping for Span. */
    static std::uint32_t &nestingDepth();

    std::atomic<bool> enabled_{false};
    std::chrono::steady_clock::time_point epoch_;
    std::vector<SpanRecord> slots_;
    std::atomic<std::size_t> next_{0};
    std::atomic<std::uint64_t> recorded_{0};
};

} // namespace sdbp::obs

#endif // SDBP_OBS_SPAN_TRACER_HH
