#include "util/file.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <unistd.h>

namespace sdbp::util
{

bool
atomicWriteFile(const std::string &path, const std::string &contents)
{
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (!f)
        return false;
    const bool wrote =
        std::fwrite(contents.data(), 1, contents.size(), f) ==
            contents.size() &&
        std::fflush(f) == 0;
    const bool closed = std::fclose(f) == 0;
    if (!wrote || !closed ||
        std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

std::string
readFile(const std::string &path, bool *ok)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
        if (ok)
            *ok = false;
        return {};
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    if (ok)
        *ok = in.good() || in.eof();
    return buf.str();
}

} // namespace sdbp::util
