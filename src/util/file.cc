#include "util/file.hh"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include <unistd.h>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/file.h>
#include <time.h>
#endif

namespace sdbp::util
{

bool
atomicWriteFile(const std::string &path, const std::string &contents)
{
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (!f)
        return false;
    const bool wrote =
        std::fwrite(contents.data(), 1, contents.size(), f) ==
            contents.size() &&
        std::fflush(f) == 0;
    const bool closed = std::fclose(f) == 0;
    if (!wrote || !closed ||
        std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

std::string
readFile(const std::string &path, bool *ok)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
        if (ok)
            *ok = false;
        return {};
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    if (ok)
        *ok = in.good() || in.eof();
    return buf.str();
}

FileLock::FileLock(const std::string &path)
{
#if defined(__unix__) || defined(__APPLE__)
    fd_ = ::open(path.c_str(), O_CREAT | O_RDWR, 0644);
    if (fd_ >= 0) {
        int rc;
        do {
            rc = ::flock(fd_, LOCK_EX);
        } while (rc != 0 && errno == EINTR);
        if (rc != 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }
#else
    (void)path;
#endif
}

FileLock::~FileLock()
{
#if defined(__unix__) || defined(__APPLE__)
    if (fd_ >= 0) {
        ::flock(fd_, LOCK_UN);
        ::close(fd_);
    }
#endif
}

std::uint64_t
monotonicMs()
{
#if defined(__unix__) || defined(__APPLE__)
    // Host-side lease bookkeeping only, never simulated state.
    struct timespec ts;
    if (::clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
        return static_cast<std::uint64_t>(ts.tv_sec) * 1000u +
            static_cast<std::uint64_t>(ts.tv_nsec) / 1'000'000u;
    return 0;
#else
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() // sdbp-lint: allow(det-wallclock)
                .time_since_epoch())
            .count());
#endif
}

} // namespace sdbp::util
