/**
 * @file
 * Compile-time hardware-budget accounting.
 *
 * The paper's claims rest on exact structure sizes (Table I is pure
 * bit arithmetic), so every predictor config in this repo describes
 * its storage with the `constexpr` spec types below.  The runtime
 * `storageBits()` of each structure delegates to the same spec its
 * config exposes, and `power/budget_audit.hh` `static_assert`s the
 * results against the paper's budgets — the power model and the
 * simulated structures can therefore never disagree silently.
 */

#ifndef SDBP_UTIL_BUDGET_HH
#define SDBP_UTIL_BUDGET_HH

#include <cstdint>

namespace sdbp
{
namespace budget
{

/**
 * A count of state bits.  A distinct type (rather than a bare
 * integer) so storage arithmetic cannot be accidentally mixed with
 * entry counts or byte sizes; conversion to KB is explicit.
 */
class Bits
{
  public:
    constexpr Bits() = default;
    explicit constexpr Bits(std::uint64_t n) : count_(n) {}

    constexpr std::uint64_t count() const { return count_; }
    constexpr double
    kilobytes() const
    {
        return static_cast<double>(count_) / 8.0 / 1024.0;
    }

    constexpr Bits
    operator+(Bits other) const
    {
        return Bits{count_ + other.count_};
    }

    constexpr Bits
    operator*(std::uint64_t n) const
    {
        return Bits{count_ * n};
    }

    constexpr bool operator==(const Bits &) const = default;
    constexpr auto operator<=>(const Bits &) const = default;

  private:
    std::uint64_t count_ = 0;
};

/** Smallest @c n with 2^n >= @p v (field width holding 0..v-1). */
constexpr unsigned
widthForValues(std::uint64_t v)
{
    unsigned bits_needed = 0;
    for (std::uint64_t reach = 1; reach < v; reach *= 2)
        ++bits_needed;
    return bits_needed;
}

/**
 * A saturating counter field of a given width — the basic unit of
 * every prediction table in the paper.
 */
struct SaturatingCounterSpec
{
    unsigned width = 2;

    constexpr unsigned
    maxValue() const
    {
        return (1u << width) - 1;
    }

    constexpr Bits bits() const { return Bits{width}; }
};

/**
 * A table of uniform entries: @p entries rows of @p bitsPerEntry
 * bits.  Describes counter banks, tag arrays and per-block metadata
 * alike.
 */
struct TableSpec
{
    std::uint64_t entries = 0;
    std::uint64_t bitsPerEntry = 0;

    constexpr Bits
    total() const
    {
        return Bits{entries * bitsPerEntry};
    }
};

} // namespace budget
} // namespace sdbp

#endif // SDBP_UTIL_BUDGET_HH
