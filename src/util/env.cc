#include "util/env.hh"

#include <cerrno>
#include <cstdlib>
#include <filesystem>

#include "util/logging.hh"

namespace sdbp::env
{

std::uint64_t
u64(const char *name, std::uint64_t fallback, std::uint64_t min,
    std::uint64_t max)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    // strtoull silently accepts a leading '-' (wrapping the value);
    // reject it up front.
    const char *p = value;
    while (*p == ' ' || *p == '\t')
        ++p;
    if (*p == '-' || *p == '+')
        fatal(std::string(name) + "='" + value +
              "' is not an unsigned integer");
    errno = 0;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(value, &end, 10);
    if (end == value || *end != '\0' || errno == ERANGE)
        fatal(std::string(name) + "='" + value +
              "' is not an unsigned integer");
    if (parsed < min || parsed > max)
        fatal(std::string(name) + "='" + value +
              "' is out of range [" + std::to_string(min) + ", " +
              std::to_string(max) + "]");
    return parsed;
}

std::string
str(const char *name, const std::string &fallback)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    return value;
}

std::string
outputPath(const char *name)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return {};
    const std::filesystem::path parent =
        std::filesystem::path(value).parent_path();
    std::error_code ec;
    if (!parent.empty() &&
        !std::filesystem::is_directory(parent, ec))
        fatal(std::string(name) + "='" + value +
              "': parent directory does not exist");
    return value;
}

} // namespace sdbp::env
