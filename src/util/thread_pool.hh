/**
 * @file
 * Minimal fixed-size thread pool for embarrassingly parallel
 * experiment grids: one shared FIFO queue, no work stealing, futures
 * that propagate exceptions.  A pool with zero workers degenerates
 * to inline execution at submit() time, so call sites need no
 * serial/parallel special cases.
 */

#ifndef SDBP_UTIL_THREAD_POOL_HH
#define SDBP_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace sdbp::util
{

class ThreadPool
{
  public:
    /** Spawn @p workers threads; 0 means run tasks inline. */
    explicit ThreadPool(unsigned workers)
    {
        threads_.reserve(workers);
        for (unsigned i = 0; i < workers; ++i)
            threads_.emplace_back([this] { workerLoop(); });
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Finishes every task already submitted, then joins. */
    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stopping_ = true;
        }
        wake_.notify_all();
        for (auto &t : threads_)
            t.join();
    }

    unsigned
    workers() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /**
     * Queue @p fn; the future yields its result, or rethrows
     * whatever it threw.  With zero workers the task runs right
     * here, so the returned future is already ready.
     */
    template <typename F>
    std::future<std::invoke_result_t<F>>
    submit(F fn)
    {
        std::packaged_task<std::invoke_result_t<F>()> task(
            std::move(fn));
        auto future = task.get_future();
        if (threads_.empty()) {
            task();
            return future;
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            queue_.emplace_back(
                [t = std::move(task)]() mutable { t(); });
        }
        wake_.notify_one();
        return future;
    }

  private:
    void
    workerLoop()
    {
        for (;;) {
            std::packaged_task<void()> task;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                wake_.wait(lock, [this] {
                    return stopping_ || !queue_.empty();
                });
                if (queue_.empty())
                    return; // stopping and fully drained
                task = std::move(queue_.front());
                queue_.pop_front();
            }
            task();
        }
    }

    std::vector<std::thread> threads_;
    std::deque<std::packaged_task<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable wake_;
    bool stopping_ = false;
};

} // namespace sdbp::util

#endif // SDBP_UTIL_THREAD_POOL_HH
