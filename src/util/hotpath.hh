/**
 * @file
 * The hot-path contract annotation (DESIGN.md §13).
 *
 * SDBP_HOT_PATH marks a function as part of the per-access fast
 * path: the code that runs for every simulated instruction and that
 * the sealed static-dispatch engine (DESIGN.md §12) promises is
 *
 *   - free of virtual dispatch that cannot devirtualize,
 *   - free of heap allocation and deallocation,
 *   - free of throw statements,
 *   - free of locks and non-relaxed atomics,
 *   - free of I/O,
 *
 * amortized cold branches excepted (each such exception is recorded
 * in tools/sdbp_lint/baseline.json with a justification).
 *
 * The contract is enforced by two tools, not by the compiler:
 *
 *   tools/sdbp_lint/run.py   walks the call graph from every
 *                            annotated function and rejects
 *                            violations at the source level;
 *   tools/hotpath_audit.py   disassembles the Release binaries and
 *                            proves the compiler delivered the
 *                            devirtualization (no indirect calls, no
 *                            operator new / __cxa_throw /
 *                            pthread_mutex references) that the
 *                            engine's ~1.5x speedup claims.
 *
 * The macro expands to GCC/Clang's `hot` attribute, so annotating a
 * function also nudges the optimizer to favor it in layout and
 * inlining decisions; under other compilers it expands to nothing
 * and remains a pure source-level marker.
 */

#ifndef SDBP_UTIL_HOTPATH_HH
#define SDBP_UTIL_HOTPATH_HH

#if defined(__GNUC__) || defined(__clang__)
#define SDBP_HOT_PATH __attribute__((hot))
/**
 * Forced inlining for functions whose only observable effect is
 * __builtin_prefetch.  GCC's pure-const analysis does not count a
 * prefetch as a side effect: an outlined helper that merely computes
 * an address and prefetches it is classified as pure, and every call
 * to a void pure function is then deleted as dead code — silently
 * stripping the whole software-prefetch chain from the binary.
 * Forcing the chain inline lands the builtins inside callers that
 * have real side effects, where they survive.
 */
#define SDBP_ALWAYS_INLINE __attribute__((always_inline)) inline
#else
#define SDBP_HOT_PATH
#define SDBP_ALWAYS_INLINE inline
#endif

#endif // SDBP_UTIL_HOTPATH_HH
