/**
 * @file
 * Per-run bump arena for simulation state (DESIGN.md §15).
 *
 * A simulated run allocates a fixed set of storage lanes up front —
 * cache tag/state/metadata lanes, replacement-policy recency lanes,
 * the sampler tag array, the skewed counter banks — and then never
 * allocates again until teardown.  The general-purpose heap spreads
 * those lanes across whatever address ranges malloc has free, so
 * lanes that the per-access walk touches together can land pages
 * apart.  The arena packs them: every container constructed while an
 * ArenaScope is active draws from one contiguous slab, in exactly
 * construction order, which is also walk order (L1 lanes, then L2,
 * then LLC + policy + predictor).
 *
 * Lifetime rules (DESIGN.md §15):
 *
 *  - The Arena must outlive every container that allocated from it.
 *    Engine keeps the arena as its *first* member, so it is
 *    destroyed after the System and every lane it backs.
 *  - Arena memory is reclaimed only by destroying the arena;
 *    ArenaAllocator::deallocate on arena-backed memory is a no-op.
 *    Grow-in-place therefore wastes the old block — fine for the
 *    fixed-size lanes this is for, wrong for dynamic containers
 *    (use the heap for those: construct them outside any scope).
 *  - The scope is thread-local: concurrent runs (sweep workers) each
 *    bind their own arena; a container constructed with no active
 *    scope falls back to the global heap, so every container type
 *    below works unchanged in tools that never touch an arena.
 */

#ifndef SDBP_UTIL_ARENA_HH
#define SDBP_UTIL_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace sdbp
{

/** Bump allocator backing one simulated run's fixed storage. */
class Arena
{
  public:
    /** Chunk granularity; a run's lanes are a few MiB at most. */
    static constexpr std::size_t kDefaultChunk = std::size_t(1)
        << 20;

    explicit Arena(std::size_t chunk_bytes = kDefaultChunk)
        : chunkBytes_(chunk_bytes)
    {
    }

    ~Arena()
    {
        Chunk *c = head_;
        while (c != nullptr) {
            Chunk *next = c->next;
            ::operator delete(c);
            c = next;
        }
    }

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /** Bump-allocate @p bytes at @p align (never freed early). */
    void *
    allocate(std::size_t bytes, std::size_t align)
    {
        std::uintptr_t p = reinterpret_cast<std::uintptr_t>(cur_);
        p = (p + align - 1) & ~(std::uintptr_t(align) - 1);
        if (p + bytes > reinterpret_cast<std::uintptr_t>(end_)) {
            grow(bytes + align);
            p = reinterpret_cast<std::uintptr_t>(cur_);
            p = (p + align - 1) & ~(std::uintptr_t(align) - 1);
        }
        cur_ = reinterpret_cast<char *>(p + bytes);
        allocated_ += bytes;
        return reinterpret_cast<void *>(p);
    }

    /** Payload bytes handed out (excludes alignment/chunk slack). */
    std::size_t bytesAllocated() const { return allocated_; }
    /** Total bytes reserved from the heap. */
    std::size_t bytesReserved() const { return reserved_; }

  private:
    struct Chunk
    {
        Chunk *next;
    };

    void
    grow(std::size_t min_bytes)
    {
        const std::size_t payload =
            min_bytes > chunkBytes_ ? min_bytes : chunkBytes_;
        const std::size_t total = sizeof(Chunk) + payload;
        auto *c = static_cast<Chunk *>(::operator new(total));
        c->next = head_;
        head_ = c;
        cur_ = reinterpret_cast<char *>(c) + sizeof(Chunk);
        end_ = reinterpret_cast<char *>(c) + total;
        reserved_ += total;
    }

    Chunk *head_ = nullptr;
    char *cur_ = nullptr;
    char *end_ = nullptr;
    std::size_t chunkBytes_;
    std::size_t allocated_ = 0;
    std::size_t reserved_ = 0;
};

/**
 * RAII binding of the calling thread's current arena.  Containers
 * whose allocator is ArenaAllocator capture the binding at
 * construction; the scope itself only needs to span construction.
 */
class ArenaScope
{
  public:
    explicit ArenaScope(Arena &arena) : prev_(tlCurrent)
    {
        tlCurrent = &arena;
    }

    ~ArenaScope() { tlCurrent = prev_; }

    ArenaScope(const ArenaScope &) = delete;
    ArenaScope &operator=(const ArenaScope &) = delete;

    /** The calling thread's active arena (nullptr = heap). */
    static Arena *current() { return tlCurrent; }

  private:
    Arena *prev_;
    static thread_local Arena *tlCurrent;
};

/**
 * std allocator that draws from the arena bound when the allocator
 * object was constructed (the heap when none was).  deallocate is a
 * no-op for arena memory — see the lifetime rules above.
 */
template <class T>
class ArenaAllocator
{
  public:
    using value_type = T;

    ArenaAllocator() noexcept : arena_(ArenaScope::current()) {}

    template <class U>
    ArenaAllocator(const ArenaAllocator<U> &other) noexcept
        : arena_(other.arena())
    {
    }

    T *
    allocate(std::size_t n)
    {
        const std::size_t bytes = n * sizeof(T);
        if (arena_ != nullptr) {
            return static_cast<T *>(
                arena_->allocate(bytes, alignof(T)));
        }
        return static_cast<T *>(::operator new(bytes));
    }

    void
    deallocate(T *p, std::size_t) noexcept
    {
        if (arena_ == nullptr)
            ::operator delete(p);
    }

    Arena *arena() const { return arena_; }

    template <class U>
    bool
    operator==(const ArenaAllocator<U> &other) const noexcept
    {
        return arena_ == other.arena();
    }

  private:
    Arena *arena_;
};

/**
 * The container type of every fixed-size storage lane: heap-backed
 * by default, arena-backed when constructed under an ArenaScope.
 */
template <class T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

} // namespace sdbp

#endif // SDBP_UTIL_ARENA_HH
