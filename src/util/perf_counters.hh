/**
 * @file
 * Host hardware-counter profiling via Linux perf_event_open: cycles,
 * instructions, LLC misses and branch misses of the *calling thread*,
 * read as one event group.  Degrades to an explicit no-op wherever
 * the syscall is unavailable or denied (non-Linux builds, CI
 * containers, perf_event_paranoid lockdown): available() is false,
 * samples report valid=false, and start/stop/sample stay callable.
 *
 * Used at cell/phase granularity by the telemetry layer (obs spans +
 * run artifacts) — never per simulated access, so the sealed hot
 * path does not see a single counter read.
 */

#ifndef SDBP_UTIL_PERF_COUNTERS_HH
#define SDBP_UTIL_PERF_COUNTERS_HH

#include <cstdint>

namespace sdbp::util
{

class PerfCounters
{
  public:
    /** Counter deltas between start() and sample()/stop(). */
    struct Sample
    {
        bool valid = false;
        std::uint64_t cycles = 0;
        std::uint64_t instructions = 0;
        std::uint64_t llcMisses = 0;
        std::uint64_t branchMisses = 0;

        /** Host instructions per host cycle. */
        double hostIpc() const
        {
            return cycles > 0 ? static_cast<double>(instructions) /
                       static_cast<double>(cycles)
                              : 0;
        }
    };

    /** Opens the event group; silently unavailable on failure. */
    PerfCounters();
    ~PerfCounters();

    PerfCounters(const PerfCounters &) = delete;
    PerfCounters &operator=(const PerfCounters &) = delete;

    /** True when the counters opened and can be read. */
    bool available() const { return fd_ >= 0; }

    /** Reset the group to zero and start counting. */
    void start();
    /** Stop counting (the accumulated deltas stay readable). */
    void stop();
    /** Deltas since the last start(); valid=false when unavailable. */
    Sample sample() const;

  private:
    int fd_ = -1;        ///< group leader (cycles); -1 = unavailable
    int fdInst_ = -1;
    int fdLlc_ = -1;
    int fdBranch_ = -1;
    std::uint64_t idCycles_ = 0;
    std::uint64_t idInst_ = 0;
    std::uint64_t idLlc_ = 0;
    std::uint64_t idBranch_ = 0;
};

/**
 * Process-wide gate for host-counter collection: SDBP_PERF (default
 * 1).  The counters no-op gracefully where unsupported, so the gate
 * exists to rule out even the fd setup / ioctl cost when unwanted.
 */
bool hostCountersEnabled();

} // namespace sdbp::util

#endif // SDBP_UTIL_PERF_COUNTERS_HH
