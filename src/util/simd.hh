/**
 * @file
 * Vectorized set-scan kernels for the structure-of-arrays cache
 * lanes (DESIGN.md §15).
 *
 * Two primitives cover every hot scan the simulator performs:
 *
 *   findTag(tags, n, key)    index of `key` in a tag lane, -1 when
 *                            absent — the hit-lookup scan;
 *   minStampIndex(stamps, n) index of the first minimum of a stamp
 *                            lane — the timestamp-LRU victim scan.
 *
 * Both have a scalar reference implementation and an AVX2
 * implementation compiled in when the build enables AVX2 codegen
 * (-DSDBP_SIMD=ON adds -mavx2; __AVX2__ is the gate).  The kernels
 * are plain inline functions — NOT `target("avx2")` clones — because
 * a target-attribute mismatch blocks inlining into the sealed access
 * loop, and the resulting out-of-line call per set scan costs more
 * than the vector compare saves (profiled at 21% exclusive).  -mavx2
 * alone is value-safe for the byte-identical-stdout guarantee: FMA
 * contraction needs -mfma, which the build never passes, and without
 * -ffast-math the vectorizer cannot reorder FP reductions, so every
 * double computes bit-identically to the scalar build.  Dispatch is
 * one branch on a process-wide bool resolved from CPUID at
 * static-init time — never a function pointer, so the sealed engine
 * symbols stay free of indirect calls (the binary audit checks
 * this).
 *
 * Equivalence contract (pinned by tests/simd_scan_test.cc):
 *
 *   - findTag matches the scalar scan for ANY lane content because
 *     at most one lane can equal `key`: the cache never stores
 *     duplicate tags in a set, and the all-ones sentinel
 *     (SetView::kNoBlock) is never a legal probe key (fill asserts
 *     it), so invalid frames can never match.
 *   - minStampIndex returns the FIRST index attaining the minimum,
 *     exactly like the scalar strict-< walk, even when stamps tie
 *     (LRU stamps are distinct within a set, but the kernel does not
 *     rely on that).
 *
 * Escape hatches: SDBP_NO_SIMD=1 forces the scalar path at startup;
 * setEnabledForTest() flips it at runtime (equivalence tests and the
 * BM_SimulatedInstruction/{simd,scalar} bench variants); configuring
 * with -DSDBP_SIMD=OFF compiles the AVX2 kernels out entirely (the
 * CI scalar-fallback leg).
 */

#ifndef SDBP_UTIL_SIMD_HH
#define SDBP_UTIL_SIMD_HH

#include <cstdint>

#include "util/env.hh"
#include "util/hotpath.hh"

#if defined(__AVX2__) && !defined(SDBP_SIMD_DISABLED)
#define SDBP_SIMD_AVX2 1
#include <immintrin.h>
#else
#define SDBP_SIMD_AVX2 0
#endif

namespace sdbp::simd
{

/** Scalar reference: index of @p key in @p tags, -1 when absent. */
SDBP_HOT_PATH inline int
findTagScalar(const std::uint64_t *tags, std::uint32_t n,
              std::uint64_t key)
{
    int way = -1;
    for (std::uint32_t w = 0; w < n; ++w)
        way = tags[w] == key ? static_cast<int>(w) : way;
    return way;
}

/** Scalar reference: first index of the minimum of @p stamps. */
SDBP_HOT_PATH inline std::uint32_t
minStampIndexScalar(const std::int64_t *stamps, std::uint32_t n)
{
    std::uint32_t lru = 0;
    for (std::uint32_t w = 1; w < n; ++w)
        if (stamps[w] < stamps[lru])
            lru = w;
    return lru;
}

#if SDBP_SIMD_AVX2

/**
 * AVX2 tag scan: compare four 64-bit lanes per step and movemask.
 * At most one lane matches (no-duplicate-tag invariant), so the
 * first set bit IS the match.  The tail (n % 4) falls back to the
 * scalar walk; unaligned loads because the lanes live in plain
 * vectors.
 */
SDBP_HOT_PATH inline int
findTagAvx2(const std::uint64_t *tags, std::uint32_t n,
            std::uint64_t key)
{
    const __m256i vkey = _mm256_set1_epi64x(
        static_cast<long long>(key));
    std::uint32_t w = 0;
    for (; w + 4 <= n; w += 4) {
        const __m256i lane = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(tags + w));
        const int mask = _mm256_movemask_pd(_mm256_castsi256_pd(
            _mm256_cmpeq_epi64(lane, vkey)));
        if (mask != 0)
            return static_cast<int>(w) + __builtin_ctz(
                static_cast<unsigned>(mask));
    }
    for (; w < n; ++w)
        if (tags[w] == key)
            return static_cast<int>(w);
    return -1;
}

/**
 * AVX2 victim scan: min-reduce the stamp lane (signed 64-bit
 * compares), then locate the first index equal to the minimum.
 * Find-first-equal returns the first occurrence, which is exactly
 * what the scalar strict-< walk selects on ties.
 */
SDBP_HOT_PATH inline std::uint32_t
minStampIndexAvx2(const std::int64_t *stamps, std::uint32_t n)
{
    if (n < 4)
        return minStampIndexScalar(stamps, n);

    __m256i vmin = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(stamps));
    std::uint32_t w = 4;
    for (; w + 4 <= n; w += 4) {
        const __m256i lane = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(stamps + w));
        // per-lane min(a,b): where a > b take b.
        vmin = _mm256_blendv_epi8(vmin, lane,
                                  _mm256_cmpgt_epi64(vmin, lane));
    }
    alignas(32) std::int64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), vmin);
    std::int64_t min = lanes[0];
    for (int i = 1; i < 4; ++i)
        if (lanes[i] < min)
            min = lanes[i];
    for (; w < n; ++w)
        if (stamps[w] < min)
            min = stamps[w];

    const __m256i vbest = _mm256_set1_epi64x(min);
    for (w = 0; w + 4 <= n; w += 4) {
        const __m256i lane = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(stamps + w));
        const int mask = _mm256_movemask_pd(_mm256_castsi256_pd(
            _mm256_cmpeq_epi64(lane, vbest)));
        if (mask != 0)
            return w + static_cast<std::uint32_t>(__builtin_ctz(
                static_cast<unsigned>(mask)));
    }
    for (; w < n; ++w)
        if (stamps[w] == min)
            return w;
    return 0; // unreachable: min came from the lane
}

#endif // SDBP_SIMD_AVX2

namespace detail
{

/** CPUID + SDBP_NO_SIMD, resolved once at static-init time. */
inline bool
computeEnabled()
{
#if SDBP_SIMD_AVX2
    return __builtin_cpu_supports("avx2") &&
           env::u64("SDBP_NO_SIMD", 0, 0, 1) == 0;
#else
    return false;
#endif
}

/** Mutable so tests and bench variants can flip paths in-process. */
inline bool g_enabled = computeEnabled();

} // namespace detail

/** True when the AVX2 kernels are compiled in and selected. */
inline bool enabled() { return detail::g_enabled; }

/**
 * Force the scalar (false) or vector (true) path; returns the
 * previous setting.  Requesting true is ignored when AVX2 is
 * unavailable (compiled out, unsupported CPU, or SDBP_NO_SIMD=1
 * resolved at startup — the env knob wins so a NO_SIMD run can never
 * silently re-enable vectors).
 */
inline bool
setEnabledForTest(bool on)
{
    const bool prev = detail::g_enabled;
    detail::g_enabled = on && detail::computeEnabled();
    return prev;
}

/** Hit-lookup scan: index of @p key in the tag lane, -1 if absent. */
SDBP_HOT_PATH inline int
findTag(const std::uint64_t *tags, std::uint32_t n, std::uint64_t key)
{
#if SDBP_SIMD_AVX2
    if (detail::g_enabled)
        return findTagAvx2(tags, n, key);
#endif
    return findTagScalar(tags, n, key);
}

/** Victim scan: first index of the minimum stamp. */
SDBP_HOT_PATH inline std::uint32_t
minStampIndex(const std::int64_t *stamps, std::uint32_t n)
{
#if SDBP_SIMD_AVX2
    if (detail::g_enabled)
        return minStampIndexAvx2(stamps, n);
#endif
    return minStampIndexScalar(stamps, n);
}

} // namespace sdbp::simd

#endif // SDBP_UTIL_SIMD_HH
