/**
 * @file
 * Status and error reporting helpers in the gem5 spirit:
 *
 *  - panic():  an internal invariant was violated (a bug); aborts.
 *  - fatal():  the user asked for something impossible; exits cleanly.
 *  - warn():   something is suspicious but the run can continue.
 *  - inform(): plain status output.
 */

#ifndef SDBP_UTIL_LOGGING_HH
#define SDBP_UTIL_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace sdbp
{

[[noreturn]] inline void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

[[noreturn]] inline void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

inline void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

inline void
inform(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace sdbp

#endif // SDBP_UTIL_LOGGING_HH
