/**
 * @file
 * Status and error reporting helpers in the gem5 spirit:
 *
 *  - panic():  an internal invariant was violated (a bug); aborts.
 *  - fatal():  the user asked for something impossible; exits cleanly.
 *  - warn():   something is suspicious but the run can continue.
 *  - inform(): plain status output.
 */

#ifndef SDBP_UTIL_LOGGING_HH
#define SDBP_UTIL_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace sdbp
{

[[noreturn]] inline void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

[[noreturn]] inline void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

inline void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

inline void
inform(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace sdbp

/*
 * Debug-check macros in the DCHECK spirit: internal invariants that
 * are cheap enough for debug and default (RelWithDebInfo) builds but
 * compile to nothing in Release builds.  The build system defines
 * SDBP_DCHECK_ENABLED (see the SDBP_DCHECK CMake option); standalone
 * inclusion falls back on NDEBUG.
 */
#ifndef SDBP_DCHECK_ENABLED
#ifdef NDEBUG
#define SDBP_DCHECK_ENABLED 0
#else
#define SDBP_DCHECK_ENABLED 1
#endif
#endif

#if SDBP_DCHECK_ENABLED

/** Abort with @p msg unless @p cond holds. */
#define SDBP_DCHECK(cond, msg)                                          \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::sdbp::panic(std::string("SDBP_DCHECK failed: ") + #cond + \
                          " — " + (msg));                               \
        }                                                               \
    } while (0)

#define SDBP_DCHECK_BINOP_(a, b, op, msg)                             \
    do {                                                              \
        const auto sdbp_dcheck_a_ = (a);                              \
        const auto sdbp_dcheck_b_ = (b);                              \
        if (!(sdbp_dcheck_a_ op sdbp_dcheck_b_)) {                    \
            ::sdbp::panic(std::string("SDBP_DCHECK failed: ") + #a    \
                          " " #op " " #b + " (" +                     \
                          std::to_string(sdbp_dcheck_a_) + " vs " +   \
                          std::to_string(sdbp_dcheck_b_) + ") — " +   \
                          (msg));                                     \
        }                                                             \
    } while (0)

/** Abort unless a < b, printing both values. */
#define SDBP_DCHECK_LT(a, b, msg) SDBP_DCHECK_BINOP_(a, b, <, msg)
/** Abort unless a <= b, printing both values. */
#define SDBP_DCHECK_LE(a, b, msg) SDBP_DCHECK_BINOP_(a, b, <=, msg)
/** Abort unless a == b, printing both values. */
#define SDBP_DCHECK_EQ(a, b, msg) SDBP_DCHECK_BINOP_(a, b, ==, msg)

#else

#define SDBP_DCHECK(cond, msg) ((void)0)
#define SDBP_DCHECK_LT(a, b, msg) ((void)0)
#define SDBP_DCHECK_LE(a, b, msg) ((void)0)
#define SDBP_DCHECK_EQ(a, b, msg) ((void)0)

#endif // SDBP_DCHECK_ENABLED

#endif // SDBP_UTIL_LOGGING_HH
