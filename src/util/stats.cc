#include "util/stats.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace sdbp
{

double
amean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
gmean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0;
    for (double x : xs) {
        assert(x > 0.0);
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
mpki(std::uint64_t misses, std::uint64_t instructions)
{
    if (instructions == 0)
        return 0.0;
    return 1000.0 * static_cast<double>(misses) /
        static_cast<double>(instructions);
}

double
ratio(double num, double denom)
{
    return denom == 0.0 ? 0.0 : num / denom;
}

Histogram::Histogram(unsigned num_buckets, double bucket_width)
    : buckets_(num_buckets, 0), bucketWidth_(bucket_width)
{
    assert(num_buckets > 0 && bucket_width > 0);
}

void
Histogram::add(double sample)
{
    auto idx = static_cast<std::size_t>(std::max(sample, 0.0) /
                                        bucketWidth_);
    if (idx >= buckets_.size())
        idx = buckets_.size() - 1;
    ++buckets_[idx];
    sum_ += sample;
    ++count_;
}

double
Histogram::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
Histogram::quantile(double q) const
{
    assert(q >= 0.0 && q <= 1.0);
    if (count_ == 0)
        return 0.0;
    // Rank of the sample the quantile falls on, 1-based.  Flooring
    // q*count (the previous behaviour) made q=0 report the midpoint
    // of bucket 0 even when that bucket was empty; clamping the rank
    // into [1, count] lands q=0 on the first sample and q=1 on the
    // last, both inside non-empty buckets.
    auto target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    target = std::clamp<std::uint64_t>(target, 1, count_);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen >= target)
            return (static_cast<double>(i) + 0.5) * bucketWidth_;
    }
    return static_cast<double>(buckets_.size()) * bucketWidth_;
}

std::string
Histogram::toString() const
{
    std::ostringstream os;
    os << "hist[n=" << count_ << " mean=" << mean() << "]:";
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        os << ' ' << buckets_[i];
    return os.str();
}

void
RunningStat::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStat::variance() const
{
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

} // namespace sdbp
