/**
 * @file
 * Crash-safe file output.
 *
 * Every artifact the experiment engine persists (run JSON, bench
 * reports, sweep manifests) goes through atomicWriteFile: the
 * contents land in a same-directory temporary first and are
 * rename(2)d into place, so a crash or SIGKILL at any instant leaves
 * either the previous file or the complete new one — never a
 * truncated JSON document.
 */

#ifndef SDBP_UTIL_FILE_HH
#define SDBP_UTIL_FILE_HH

#include <string>

namespace sdbp::util
{

/**
 * Atomically replace @p path with @p contents via a
 * "<path>.tmp.<pid>" sibling and rename.  Returns false (and cleans
 * up the temporary) when the directory is missing or unwritable.
 */
bool atomicWriteFile(const std::string &path,
                     const std::string &contents);

/** Read a whole file; nullopt-style empty return is not distinguishable
 *  from an empty file, so @p ok reports success when non-null. */
std::string readFile(const std::string &path, bool *ok = nullptr);

} // namespace sdbp::util

#endif // SDBP_UTIL_FILE_HH
