/**
 * @file
 * Crash-safe file output.
 *
 * Every artifact the experiment engine persists (run JSON, bench
 * reports, sweep manifests) goes through atomicWriteFile: the
 * contents land in a same-directory temporary first and are
 * rename(2)d into place, so a crash or SIGKILL at any instant leaves
 * either the previous file or the complete new one — never a
 * truncated JSON document.
 */

#ifndef SDBP_UTIL_FILE_HH
#define SDBP_UTIL_FILE_HH

#include <cstdint>
#include <string>

namespace sdbp::util
{

/**
 * Atomically replace @p path with @p contents via a
 * "<path>.tmp.<pid>" sibling and rename.  Returns false (and cleans
 * up the temporary) when the directory is missing or unwritable.
 */
bool atomicWriteFile(const std::string &path,
                     const std::string &contents);

/** Read a whole file; nullopt-style empty return is not distinguishable
 *  from an empty file, so @p ok reports success when non-null. */
std::string readFile(const std::string &path, bool *ok = nullptr);

/**
 * Advisory cross-process mutex over a lock file (flock(2) on unix,
 * no-op elsewhere).  The multi-process sweep fabric serializes its
 * manifest read-modify-write cycles through one of these — the
 * manifest file itself cannot carry the lock, because every
 * atomicWriteFile replaces its inode.  The lock file is created on
 * first use and never deleted; holding the lock across a crash is
 * safe (the kernel releases flock locks when the holder dies).
 */
class FileLock
{
  public:
    /** Block until the exclusive lock on @p path is held. */
    explicit FileLock(const std::string &path);
    ~FileLock();

    FileLock(const FileLock &) = delete;
    FileLock &operator=(const FileLock &) = delete;

    /** False when the lock file could not be opened (lock not held). */
    bool locked() const { return fd_ >= 0; }

  private:
    int fd_ = -1;
};

/**
 * Milliseconds on the system-wide monotonic clock (CLOCK_MONOTONIC:
 * boot-relative, so values are comparable *across processes* on one
 * host — the property the sweep fabric's lease heartbeats rely on).
 */
std::uint64_t monotonicMs();

} // namespace sdbp::util

#endif // SDBP_UTIL_FILE_HH
