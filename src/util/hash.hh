/**
 * @file
 * Hash functions used by the predictors.
 *
 * The skewed predictor of the paper (Sec. III-E) indexes three tables
 * with three *different* hashes of the same 15-bit signature so that
 * two signatures that conflict in one table are unlikely to conflict
 * in the other two.  The concrete hash family below follows the
 * standard skewed-associative construction of Seznec (H and H^-1
 * built from a single-bit rotation / feedback shift), adapted to
 * arbitrary power-of-two table sizes.
 */

#ifndef SDBP_UTIL_HASH_HH
#define SDBP_UTIL_HASH_HH

#include <cstdint>

#include "util/bitops.hh"
#include "util/hotpath.hh"

namespace sdbp
{

/**
 * Finalizer of the 64-bit xxHash/murmur family; a cheap, high-quality
 * scrambler used to fold PCs and block addresses into signatures.
 */
SDBP_HOT_PATH constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

/**
 * Fold a PC into an @p bits -bit signature.  The low two bits of an
 * x86 PC carry little information, so they are dropped before mixing.
 */
SDBP_HOT_PATH constexpr std::uint64_t
makeSignature(std::uint64_t pc, unsigned bits)
{
    return mix64(pc >> 2) & mask(bits);
}

/**
 * Family of hashes for skewed table indexing: table @p which
 * (0, 1, 2, ...) gets its own permutation of the signature.
 *
 * @param signature the (small) input signature
 * @param which table index selecting the hash
 * @param index_bits log2 of the table size
 */
SDBP_HOT_PATH constexpr std::uint64_t
skewHash(std::uint64_t signature, unsigned which, unsigned index_bits)
{
    // Distinct odd multipliers per table give independent
    // permutations over the index space.
    constexpr std::uint64_t multipliers[] = {
        0x9e3779b97f4a7c15ULL, // golden-ratio
        0xc2b2ae3d27d4eb4fULL, // xxhash prime 2
        0x165667b19e3779f9ULL, // xxhash prime 5
        0x27d4eb2f165667c5ULL,
    };
    std::uint64_t h = signature * multipliers[which & 3];
    h ^= h >> 29;
    h *= multipliers[(which + 1) & 3];
    h ^= h >> 32;
    return h & mask(index_bits);
}

} // namespace sdbp

#endif // SDBP_UTIL_HASH_HH
