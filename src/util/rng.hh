/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Everything in the simulator that needs randomness (the random
 * replacement policy, the BIP/BRRIP epsilon choice, the synthetic
 * workload generators) takes an explicit Rng so that runs are exactly
 * reproducible given a seed.
 */

#ifndef SDBP_UTIL_RNG_HH
#define SDBP_UTIL_RNG_HH

#include <cassert>
#include <cstdint>

#include "util/hotpath.hh"

namespace sdbp
{

/**
 * xoshiro256** generator: fast, high quality, tiny state.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5dbcdb0ULL) { reseed(seed); }

    /** Re-initialize state from a seed via splitmix64. */
    void
    reseed(std::uint64_t seed)
    {
        for (auto &word : state_) {
            seed += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** @return the next 64 random bits. */
    SDBP_HOT_PATH std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** @return a uniform integer in [0, bound). */
    std::uint64_t
    below(std::uint64_t bound)
    {
        assert(bound != 0);
        // Lemire's multiply-shift rejection-free-ish reduction is
        // fine here; slight bias is irrelevant at these bounds.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** @return a uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        assert(lo <= hi);
        return lo + below(hi - lo + 1);
    }

    /** @return true with probability @p num / @p denom. */
    bool
    chance(std::uint64_t num, std::uint64_t denom)
    {
        return below(denom) < num;
    }

    /** @return a uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /**
     * @return a sample from a geometric-ish distribution: number of
     * failures before the first success with probability @p p.
     */
    std::uint64_t
    geometric(double p)
    {
        assert(p > 0.0 && p <= 1.0);
        std::uint64_t n = 0;
        while (uniform() >= p && n < 1000000)
            ++n;
        return n;
    }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace sdbp

#endif // SDBP_UTIL_RNG_HH
