/**
 * @file
 * Lightweight statistics utilities: rate math, histograms, and the
 * aggregate means (arithmetic / geometric) the paper reports.
 */

#ifndef SDBP_UTIL_STATS_HH
#define SDBP_UTIL_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace sdbp
{

/** Arithmetic mean; 0 for an empty vector. */
double amean(const std::vector<double> &xs);

/**
 * Geometric mean; 0 for an empty vector.  All inputs must be > 0.
 * The paper reports geometric-mean speedups (Sec. VII-A2).
 */
double gmean(const std::vector<double> &xs);

/** Misses per kilo-instruction. */
double mpki(std::uint64_t misses, std::uint64_t instructions);

/** Safe ratio: 0 when the denominator is 0. */
double ratio(double num, double denom);

/**
 * A streaming histogram over a fixed number of equal-width buckets,
 * used e.g. for dead-time distributions and reuse distances.
 */
class Histogram
{
  public:
    /**
     * @param num_buckets number of equal-width buckets
     * @param bucket_width width of each bucket; samples beyond the
     *        last bucket are clamped into it
     */
    Histogram(unsigned num_buckets, double bucket_width);

    void add(double sample);

    std::uint64_t count() const { return count_; }
    double mean() const;
    double bucketWidth() const { return bucketWidth_; }
    std::uint64_t bucketCount(unsigned i) const { return buckets_.at(i); }
    unsigned numBuckets() const
    {
        return static_cast<unsigned>(buckets_.size());
    }

    /**
     * Quantile via linear scan of the buckets (approximate: returns
     * the midpoint of the bucket holding the ceil(q*count)-th
     * smallest sample; q=0 maps to the first sample, q=1 to the
     * last).  An empty histogram yields 0.
     */
    double quantile(double q) const;

    /** One-line textual rendering, for debug output. */
    std::string toString() const;

  private:
    std::vector<std::uint64_t> buckets_;
    double bucketWidth_;
    double sum_ = 0;
    std::uint64_t count_ = 0;
};

/**
 * Welford-style streaming mean/variance accumulator.
 */
class RunningStat
{
  public:
    void add(double x);

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0;
    double m2_ = 0;
    double min_ = 0;
    double max_ = 0;
};

} // namespace sdbp

#endif // SDBP_UTIL_STATS_HH
