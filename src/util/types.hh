/**
 * @file
 * Fundamental scalar types shared by every module in the library.
 */

#ifndef SDBP_UTIL_TYPES_HH
#define SDBP_UTIL_TYPES_HH

#include <cstdint>

namespace sdbp
{

/** A physical (or simulated-physical) byte address. */
using Addr = std::uint64_t;

/** The address of a memory access instruction (program counter). */
using PC = std::uint64_t;

/** A simulation cycle count. */
using Cycle = std::uint64_t;

/** A retired-instruction count. */
using InstCount = std::uint64_t;

/** Identifier of a hardware thread / core in a multi-core system. */
using ThreadId = std::uint32_t;

/** An invalid / "no thread" marker. */
constexpr ThreadId invalidThread = ~ThreadId(0);

} // namespace sdbp

#endif // SDBP_UTIL_TYPES_HH
