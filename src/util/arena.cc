#include "util/arena.hh"

namespace sdbp
{

thread_local Arena *ArenaScope::tlCurrent = nullptr;

} // namespace sdbp
