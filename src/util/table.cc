#include "util/table.hh"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace sdbp
{

std::string
formatDouble(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
formatPercent(double fraction, int precision)
{
    return formatDouble(fraction * 100.0, precision) + "%";
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

TextTable &
TextTable::row()
{
    rows_.emplace_back();
    return *this;
}

TextTable &
TextTable::cell(const std::string &text)
{
    assert(!rows_.empty());
    rows_.back().push_back(text);
    return *this;
}

TextTable &
TextTable::cell(double value, int precision)
{
    return cell(formatDouble(value, precision));
}

TextTable &
TextTable::cell(std::uint64_t value)
{
    return cell(std::to_string(value));
}

TextTable &
TextTable::cell(int value)
{
    return cell(std::to_string(value));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c >= widths.size())
                widths.resize(c + 1, 0);
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &text = c < cells.size() ? cells[c]
                                                       : std::string();
            os << (c == 0 ? "| " : " | ")
               << text << std::string(widths[c] - text.size(), ' ');
        }
        os << " |\n";
    };

    emit_row(headers_);
    for (std::size_t c = 0; c < widths.size(); ++c)
        os << (c == 0 ? "|" : "-|") << std::string(widths[c] + 2, '-');
    os << "-|\n";
    for (const auto &row : rows_)
        emit_row(row);
    return os.str();
}

void
TextTable::print(std::ostream &os) const
{
    os << render();
}

namespace
{

std::string
csvEscape(const std::string &cell)
{
    const bool needs_quotes =
        cell.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // anonymous namespace

std::string
TextTable::renderCsv() const
{
    std::ostringstream os;
    auto emit = [&os](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c)
            os << (c ? "," : "") << csvEscape(cells[c]);
        os << '\n';
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

bool
TextTable::writeCsv(const std::string &path) const
{
    std::FILE *file = std::fopen(path.c_str(), "w");
    if (!file)
        return false;
    const std::string csv = renderCsv();
    const bool ok =
        std::fwrite(csv.data(), 1, csv.size(), file) == csv.size();
    std::fclose(file);
    return ok;
}

} // namespace sdbp
