#include "util/perf_counters.hh"

#include "util/env.hh"

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define SDBP_HAVE_PERF_EVENT 1
#include <cstring>
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#else
#define SDBP_HAVE_PERF_EVENT 0
#endif

namespace sdbp::util
{

#if SDBP_HAVE_PERF_EVENT

namespace
{

long
perfEventOpen(perf_event_attr *attr, pid_t pid, int cpu, int group_fd,
              unsigned long flags)
{
    return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd,
                   flags);
}

/** Open one hardware counter in @p group_fd's group (-1 = leader). */
int
openCounter(std::uint32_t config, int group_fd, std::uint64_t *id)
{
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.type = PERF_TYPE_HARDWARE;
    attr.size = sizeof(attr);
    attr.config = config;
    attr.disabled = group_fd < 0 ? 1 : 0;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.read_format =
        PERF_FORMAT_GROUP | PERF_FORMAT_ID;
    const int fd = static_cast<int>(
        perfEventOpen(&attr, 0, -1, group_fd, 0));
    if (fd >= 0 && id)
        ioctl(fd, PERF_EVENT_IOC_ID, id);
    return fd;
}

} // anonymous namespace

PerfCounters::PerfCounters()
{
    fd_ = openCounter(PERF_COUNT_HW_CPU_CYCLES, -1, &idCycles_);
    if (fd_ < 0)
        return;
    // Siblings are optional: a PMU with fewer programmable counters
    // (or one that lacks an LLC event) still yields cycles and
    // whatever else fit; missing members read as zero.
    fdInst_ =
        openCounter(PERF_COUNT_HW_INSTRUCTIONS, fd_, &idInst_);
    fdLlc_ = openCounter(PERF_COUNT_HW_CACHE_MISSES, fd_, &idLlc_);
    fdBranch_ =
        openCounter(PERF_COUNT_HW_BRANCH_MISSES, fd_, &idBranch_);
}

PerfCounters::~PerfCounters()
{
    for (const int fd : {fdBranch_, fdLlc_, fdInst_, fd_})
        if (fd >= 0)
            close(fd);
}

void
PerfCounters::start()
{
    if (fd_ < 0)
        return;
    ioctl(fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ioctl(fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

void
PerfCounters::stop()
{
    if (fd_ < 0)
        return;
    ioctl(fd_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
}

PerfCounters::Sample
PerfCounters::sample() const
{
    Sample s;
    if (fd_ < 0)
        return s;
    // PERF_FORMAT_GROUP | PERF_FORMAT_ID layout:
    //   u64 nr; { u64 value; u64 id; } values[nr];
    struct
    {
        std::uint64_t nr;
        struct
        {
            std::uint64_t value;
            std::uint64_t id;
        } values[4];
    } buf{};
    const ssize_t n = read(fd_, &buf, sizeof(buf));
    if (n < static_cast<ssize_t>(sizeof(std::uint64_t)))
        return s;
    s.valid = true;
    for (std::uint64_t i = 0; i < buf.nr && i < 4; ++i) {
        const std::uint64_t id = buf.values[i].id;
        const std::uint64_t v = buf.values[i].value;
        if (id == idCycles_)
            s.cycles = v;
        else if (fdInst_ >= 0 && id == idInst_)
            s.instructions = v;
        else if (fdLlc_ >= 0 && id == idLlc_)
            s.llcMisses = v;
        else if (fdBranch_ >= 0 && id == idBranch_)
            s.branchMisses = v;
    }
    return s;
}

#else // !SDBP_HAVE_PERF_EVENT

PerfCounters::PerfCounters() = default;
PerfCounters::~PerfCounters() = default;

void
PerfCounters::start()
{
}

void
PerfCounters::stop()
{
}

PerfCounters::Sample
PerfCounters::sample() const
{
    return {};
}

#endif // SDBP_HAVE_PERF_EVENT

bool
hostCountersEnabled()
{
    static const bool enabled = env::u64("SDBP_PERF", 1, 0, 1) == 1;
    return enabled;
}

} // namespace sdbp::util
