/**
 * @file
 * Hardened environment-variable parsing.
 *
 * Every SDBP_* knob goes through these helpers: an unset or empty
 * variable yields the fallback, and a malformed or out-of-range value
 * is a hard error (one-line message, exit 1) rather than a silent
 * fallback — a sweep that quietly ignored SDBP_JOBS=4O would burn
 * hours producing the wrong experiment.
 */

#ifndef SDBP_UTIL_ENV_HH
#define SDBP_UTIL_ENV_HH

#include <cstdint>
#include <limits>
#include <string>

namespace sdbp::env
{

/**
 * Parse @p name as an unsigned decimal integer in [@p min, @p max].
 * Returns @p fallback when the variable is unset or empty; calls
 * fatal() (exit 1) when it is malformed (non-numeric, trailing
 * garbage, negative) or out of range.
 */
std::uint64_t u64(const char *name, std::uint64_t fallback,
                  std::uint64_t min = 0,
                  std::uint64_t max =
                      std::numeric_limits<std::uint64_t>::max());

/**
 * Read @p name as a raw string.  Returns @p fallback (default empty)
 * when the variable is unset or empty.  This is the single sanctioned
 * wrapper around std::getenv: routing every lookup through env::
 * keeps the simulator's configuration surface greppable and lets the
 * determinism lint (tools/sdbp_lint) forbid raw getenv elsewhere.
 */
std::string str(const char *name, const std::string &fallback = {});

/**
 * Read @p name as a file path whose parent directory must exist (the
 * file itself need not).  Returns the empty string when unset or
 * empty; calls fatal() when the parent directory is missing, so a
 * typo'd SDBP_STATS_JSON fails before the run instead of after it.
 */
std::string outputPath(const char *name);

} // namespace sdbp::env

#endif // SDBP_UTIL_ENV_HH
