/**
 * @file
 * ASCII table formatter used by the benchmark harness to print
 * paper-style result tables.
 */

#ifndef SDBP_UTIL_TABLE_HH
#define SDBP_UTIL_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace sdbp
{

/**
 * Builds a column-aligned plain-text table.  Cells are strings; the
 * convenience overloads format numbers with a fixed precision.
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    /** Start a new row. */
    TextTable &row();

    /** Append one cell to the current row. */
    TextTable &cell(const std::string &text);
    TextTable &cell(double value, int precision = 3);
    TextTable &cell(std::uint64_t value);
    TextTable &cell(int value);

    /** Number of data rows so far. */
    std::size_t numRows() const { return rows_.size(); }

    /** Column headers (machine-readable export). */
    const std::vector<std::string> &headers() const { return headers_; }
    /** Data rows, as rendered strings (machine-readable export). */
    const std::vector<std::vector<std::string>> &rows() const
    {
        return rows_;
    }

    /** Render with single-space-padded, pipe-separated columns. */
    std::string render() const;

    /**
     * Render as RFC-4180-style CSV (quotes doubled, cells containing
     * separators quoted), for downstream plotting scripts.
     */
    std::string renderCsv() const;

    /** Render straight to a stream. */
    void print(std::ostream &os) const;

    /** Write the CSV rendering to a file; returns false on failure. */
    bool writeCsv(const std::string &path) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Fixed-precision double formatting, e.g. formatDouble(1.2345, 2). */
std::string formatDouble(double value, int precision);

/** Percentage formatting: formatPercent(0.123) == "12.3%". */
std::string formatPercent(double fraction, int precision = 1);

} // namespace sdbp

#endif // SDBP_UTIL_TABLE_HH
