/**
 * @file
 * Small bit-manipulation helpers used throughout the cache and
 * predictor models.
 */

#ifndef SDBP_UTIL_BITOPS_HH
#define SDBP_UTIL_BITOPS_HH

#include <bit>
#include <cassert>
#include <cstdint>

namespace sdbp
{

/** @return true iff @p v is a power of two (0 is not). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/**
 * Integer base-2 logarithm of a power of two.
 *
 * @param v a power of two
 * @return floor(log2(v))
 */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    assert(v != 0);
    return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/** @return a mask with the low @p bits bits set. */
constexpr std::uint64_t
mask(unsigned bits)
{
    return bits >= 64 ? ~std::uint64_t(0)
                      : ((std::uint64_t(1) << bits) - 1);
}

/**
 * Extract a bit field.
 *
 * @param v the source word
 * @param first lowest bit index of the field
 * @param bits width of the field
 */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned first, unsigned nbits)
{
    return (v >> first) & mask(nbits);
}

/**
 * A saturating unsigned counter of a compile-time width, the basic
 * building block of the prediction tables.
 */
template <unsigned Width>
class SatCounter
{
    static_assert(Width >= 1 && Width <= 16, "unreasonable counter width");

  public:
    static constexpr unsigned maxValue = (1u << Width) - 1;

    constexpr SatCounter() = default;
    explicit constexpr SatCounter(unsigned initial) : value_(initial)
    {
        assert(initial <= maxValue);
    }

    /** Saturating increment. */
    void
    increment()
    {
        if (value_ < maxValue)
            ++value_;
    }

    /** Saturating decrement. */
    void
    decrement()
    {
        if (value_ > 0)
            --value_;
    }

    unsigned value() const { return value_; }
    void reset() { value_ = 0; }

    bool operator==(const SatCounter &other) const = default;

  private:
    std::uint16_t value_ = 0;
};

} // namespace sdbp

#endif // SDBP_UTIL_BITOPS_HH
