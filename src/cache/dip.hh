/**
 * @file
 * Dynamic Insertion Policy (DIP, Qureshi et al. ISCA 2007) and its
 * thread-aware variant (TADIP-F, Jaleel et al. PACT 2008), the
 * adaptive-insertion baselines of the paper (Table V: DIP, TADIP).
 *
 * Set dueling: a few leader sets always use LRU insertion, a few
 * always use BIP insertion; a PSEL counter tallies which group
 * misses less and follower sets copy the winner.  With
 * `numThreads > 1` each thread gets its own leader sets and PSEL.
 */

#ifndef SDBP_CACHE_DIP_HH
#define SDBP_CACHE_DIP_HH

#include <vector>

#include "cache/lru.hh"
#include "util/arena.hh"
#include "util/rng.hh"

namespace sdbp
{

struct DipConfig
{
    /** Number of leader sets per insertion policy (per thread). */
    std::uint32_t leaderSetsPerPolicy = 32;
    /** Width of the policy-selection counter. */
    unsigned pselBits = 10;
    /** BIP inserts at MRU once every bipEpsilonDenom fills. */
    std::uint32_t bipEpsilonDenom = 32;
    /** 1 = DIP, >1 = TADIP. */
    std::uint32_t numThreads = 1;
    /**
     * Disable dueling and insert every fill with the bimodal policy
     * (with bipEpsilonDenom -> infinity this degenerates to LIP).
     */
    bool staticBip = false;
    std::uint64_t seed = 0xd1b;
};

class DipPolicy final : public ReplacementPolicy
{
  public:
    DipPolicy(std::uint32_t num_sets, std::uint32_t assoc,
              const DipConfig &cfg = {});

    void onAccess(std::uint32_t set, int hit_way, SetView frames,
                  const Access &a) override;
    std::uint32_t victim(std::uint32_t set,
                         SetView frames,
                         const Access &a) override;
    void onFill(std::uint32_t set, std::uint32_t way, SetView frames,
                const Access &a) override;
    std::uint32_t rank(std::uint32_t set, std::uint32_t way)
        const override;
    std::string name() const override;

    /** Current PSEL value of a thread (test hook). */
    std::uint32_t psel(ThreadId t) const { return psel_.at(t); }

    /** True if @p set is thread @p t 's LRU-insertion leader set. */
    bool isLruLeader(std::uint32_t set, ThreadId t) const;
    /** True if @p set is thread @p t 's BIP-insertion leader set. */
    bool isBipLeader(std::uint32_t set, ThreadId t) const;
    /** True if thread @p t 's follower sets currently use BIP. */
    bool followerUsesBip(ThreadId t) const;

  private:
    DipConfig cfg_;
    LruPolicy lru_;
    ArenaVector<std::uint32_t> psel_;
    std::uint32_t pselMax_;
    std::uint32_t leaderPeriod_;
    Rng rng_;
};

} // namespace sdbp

#endif // SDBP_CACHE_DIP_HH
