#include "cache/lru.hh"

#include <cassert>

namespace sdbp
{

LruPolicy::LruPolicy(std::uint32_t num_sets, std::uint32_t assoc)
    : ReplacementPolicy(num_sets, assoc), pos_(num_sets * assoc)
{
    assert(assoc <= 255);
    for (std::uint32_t s = 0; s < num_sets; ++s)
        for (std::uint32_t w = 0; w < assoc; ++w)
            pos_[s * assoc + w] = static_cast<std::uint8_t>(w);
}

void
LruPolicy::moveTo(std::uint32_t set, std::uint32_t way,
                  std::uint32_t target_pos)
{
    auto *base = &pos_[set * assoc_];
    const std::uint8_t old_pos = base[way];
    const auto target = static_cast<std::uint8_t>(target_pos);
    if (old_pos == target)
        return;
    if (old_pos > target) {
        // Moving toward MRU: ways between target and old shift down.
        for (std::uint32_t w = 0; w < assoc_; ++w)
            if (base[w] >= target && base[w] < old_pos)
                ++base[w];
    } else {
        // Moving toward LRU: ways between old and target shift up.
        for (std::uint32_t w = 0; w < assoc_; ++w)
            if (base[w] > old_pos && base[w] <= target)
                --base[w];
    }
    base[way] = target;
}

void
LruPolicy::onAccess(std::uint32_t set, int hit_way, CacheBlock *blk,
                    const AccessInfo &info)
{
    (void)blk;
    (void)info;
    if (hit_way >= 0)
        moveTo(set, static_cast<std::uint32_t>(hit_way), 0);
}

std::uint32_t
LruPolicy::victim(std::uint32_t set, std::span<const CacheBlock> blocks,
                  const AccessInfo &info)
{
    (void)blocks;
    (void)info;
    const auto *base = &pos_[set * assoc_];
    for (std::uint32_t w = 0; w < assoc_; ++w)
        if (base[w] == assoc_ - 1)
            return w;
    return 0; // unreachable with consistent state
}

void
LruPolicy::onFill(std::uint32_t set, std::uint32_t way, CacheBlock &blk,
                  const AccessInfo &info)
{
    (void)blk;
    (void)info;
    moveTo(set, way, 0);
}

std::uint32_t
LruPolicy::rank(std::uint32_t set, std::uint32_t way) const
{
    return pos_[set * assoc_ + way];
}

} // namespace sdbp
