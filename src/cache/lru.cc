#include "cache/lru.hh"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace sdbp
{

LruPolicy::LruPolicy(std::uint32_t num_sets, std::uint32_t assoc)
    : ReplacementPolicy(num_sets, assoc), stamp_(num_sets * assoc),
      scratch_(assoc), high_(num_sets, 0), low_(num_sets)
{
    // Initial order: way w sits at stack position w, i.e. way 0 is
    // MRU.  Stamps within a set must be distinct.
    for (std::uint32_t s = 0; s < num_sets; ++s) {
        for (std::uint32_t w = 0; w < assoc; ++w)
            stamp_[s * assoc + w] = -static_cast<std::int64_t>(w);
        low_[s] = -static_cast<std::int64_t>(assoc - 1);
    }
}

void
LruPolicy::moveTo(std::uint32_t set, std::uint32_t way,
                  std::uint32_t target_pos)
{
    auto *base = &stamp_[set * assoc_];
    if (target_pos == 0) {
        base[way] = ++high_[set];
        return;
    }
    if (target_pos == assoc_ - 1) {
        base[way] = --low_[set];
        return;
    }

    // Interior insertion: rebuild the set's order with `way` at
    // `target_pos` and re-stamp every frame.  Uses the ctor-allocated
    // scratch buffer — the hot path must not allocate.
    assert(target_pos < assoc_);
    auto &order = scratch_;
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  return base[a] > base[b];
              });
    std::uint32_t next = 0;
    for (std::uint32_t r = 0; r < assoc_; ++r) {
        std::uint32_t w;
        if (r == target_pos) {
            w = way;
        } else {
            while (order[next] == way)
                ++next;
            w = order[next++];
        }
        base[w] = high_[set] - static_cast<std::int64_t>(r);
    }
    low_[set] = std::min(low_[set],
                         high_[set] - static_cast<std::int64_t>(assoc_));
}

} // namespace sdbp
