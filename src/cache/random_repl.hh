/**
 * @file
 * Random replacement: the cheap default policy the paper pairs with
 * the sampling predictor in Sec. V-A / VII-B.
 */

#ifndef SDBP_CACHE_RANDOM_REPL_HH
#define SDBP_CACHE_RANDOM_REPL_HH

#include "cache/policy.hh"
#include "util/hotpath.hh"
#include "util/rng.hh"

namespace sdbp
{

class RandomPolicy final : public ReplacementPolicy
{
  public:
    RandomPolicy(std::uint32_t num_sets, std::uint32_t assoc,
                 std::uint64_t seed = 0x7a9f);

    void
    onAccess(std::uint32_t set, int hit_way, SetView frames,
             const Access &a) override
    {
        (void)set;
        (void)hit_way;
        (void)frames;
        (void)a;
    }

    SDBP_HOT_PATH std::uint32_t victim(std::uint32_t set,
                                       SetView frames,
                                       const Access &a) override;

    void
    onFill(std::uint32_t set, std::uint32_t way, SetView frames,
           const Access &a) override
    {
        (void)set;
        (void)way;
        (void)frames;
        (void)a;
    }

    std::string name() const override { return "random"; }

  private:
    Rng rng_;
};

} // namespace sdbp

#endif // SDBP_CACHE_RANDOM_REPL_HH
