/**
 * @file
 * Re-Reference Interval Prediction (RRIP, Jaleel et al. ISCA 2010):
 * SRRIP, BRRIP and the set-dueling DRRIP hybrid, plus the
 * thread-aware multi-core variant (per-thread dueling), used as the
 * "RRIP" baseline in Figures 4, 5 and 10.
 */

#ifndef SDBP_CACHE_RRIP_HH
#define SDBP_CACHE_RRIP_HH

#include <vector>

#include "cache/policy.hh"
#include "util/arena.hh"
#include "util/rng.hh"

namespace sdbp
{

enum class RripMode
{
    SRrip, ///< static: always insert with a long re-reference interval
    BRrip, ///< bimodal: mostly distant, occasionally long
    DRrip, ///< set dueling between SRRIP and BRRIP
};

struct RripConfig
{
    RripMode mode = RripMode::DRrip;
    /** Width of the re-reference prediction value. */
    unsigned rrpvBits = 2;
    std::uint32_t leaderSetsPerPolicy = 32;
    unsigned pselBits = 10;
    /** BRRIP inserts "long" once every epsilonDenom fills. */
    std::uint32_t epsilonDenom = 32;
    /** >1 enables per-thread dueling (thread-aware DRRIP). */
    std::uint32_t numThreads = 1;
    std::uint64_t seed = 0x5217;
};

class RripPolicy final : public ReplacementPolicy
{
  public:
    RripPolicy(std::uint32_t num_sets, std::uint32_t assoc,
               const RripConfig &cfg = {});

    void onAccess(std::uint32_t set, int hit_way, SetView frames,
                  const Access &a) override;
    std::uint32_t victim(std::uint32_t set,
                         SetView frames,
                         const Access &a) override;
    void onFill(std::uint32_t set, std::uint32_t way, SetView frames,
                const Access &a) override;
    std::uint32_t rank(std::uint32_t set, std::uint32_t way)
        const override;
    std::string name() const override;

    /** RRPV of a way (test hook). */
    unsigned
    rrpv(std::uint32_t set, std::uint32_t way) const
    {
        return rrpv_[set * assoc_ + way];
    }

    bool isSrripLeader(std::uint32_t set, ThreadId t) const;
    bool isBrripLeader(std::uint32_t set, ThreadId t) const;
    bool followerUsesBrrip(ThreadId t) const;

  private:
    RripConfig cfg_;
    unsigned rrpvMax_;
    ArenaVector<std::uint8_t> rrpv_;
    ArenaVector<std::uint32_t> psel_;
    std::uint32_t pselMax_;
    std::uint32_t leaderPeriod_;
    Rng rng_;
};

} // namespace sdbp

#endif // SDBP_CACHE_RRIP_HH
