/**
 * @file
 * The dead-block replacement and bypass (DBRB) policy of Sec. V:
 * wraps a default policy (LRU or random) and a dead block predictor.
 *
 *  - Victim selection prefers a predicted-dead block (the one
 *    closest to eviction by the default policy's ranking), falling
 *    back on the default victim.
 *  - A block predicted dead on arrival bypasses the cache.
 *  - Every demand access re-predicts and stores the single
 *    predicted-dead metadata bit in the block.
 *
 * The class splits into DeadBlockPolicyBase (stats, configuration,
 * fault injection, everything the runner and tools touch through the
 * virtual interface) and BasicDeadBlockPolicy<Inner, Pred>, which
 * binds the wrapped policy and predictor types at compile time so
 * the sealed engine compositions (DESIGN.md §12) run the whole
 * onAccess -> predictor -> inner chain without a virtual dispatch.
 * `DeadBlockPolicy` is the type-erased alias used by the factory's
 * slow path.
 */

#ifndef SDBP_CACHE_DEAD_BLOCK_POLICY_HH
#define SDBP_CACHE_DEAD_BLOCK_POLICY_HH

#include <algorithm>
#include <cassert>
#include <memory>
#include <unordered_map>

#include "cache/policy.hh"
#include "fault/fault_injector.hh"
#include "obs/confusion.hh"
#include "obs/trace_sink.hh"
#include "predictor/dead_block_predictor.hh"
#include "util/hotpath.hh"

namespace sdbp
{

namespace obs
{
class StatRegistry;
} // namespace obs

/** Accuracy/coverage accounting for Fig. 9. */
struct DbrbStats
{
    /** Predictor consultations (demand LLC accesses). */
    std::uint64_t predictions = 0;
    /** Consultations that predicted dead. */
    std::uint64_t positives = 0;
    /** Demand hits on blocks whose predicted-dead bit was set. */
    std::uint64_t falsePositiveHits = 0;
    /** Demand misses on recently bypassed blocks. */
    std::uint64_t bypassReuses = 0;
    /** Victims chosen because they were predicted dead. */
    std::uint64_t deadEvictions = 0;
    /** Fills declined. */
    std::uint64_t bypasses = 0;

    /** Fraction of accesses predicted dead (paper's "coverage"). */
    double coverage() const;
    /** Fraction of accesses with a wrong dead prediction. */
    double falsePositiveRate() const;
};

struct DeadBlockPolicyConfig
{
    bool enableBypass = true;
    /** Prefer predicted-dead victims over the default victim. */
    bool enableDeadReplacement = true;
    /**
     * Window (in predictor consultations) within which a re-access
     * to a bypassed block counts as a bypass false positive.
     */
    std::uint64_t bypassReuseWindow = 0; // 0 = numSets * assoc
    /**
     * Soft-error injection into the wrapped predictor's state
     * (DESIGN.md §11); rate 0 builds no injector at all.
     */
    fault::FaultInjectorConfig fault;
};

/**
 * Type-erased face of every DBRB instantiation: stats access,
 * registration, tracing and fault accounting.  The runner, sweeps
 * and tools hold a DeadBlockPolicyBase*; the access hooks live in
 * the typed subclass.
 */
class DeadBlockPolicyBase : public ReplacementPolicy
{
  public:
    const DbrbStats &dbrbStats() const { return stats_; }
    const obs::ConfusionMatrix &confusion() const { return confusion_; }
    DeadBlockPredictor &predictor() { return *predictorBase_; }
    const DeadBlockPredictor &predictor() const
    {
        return *predictorBase_;
    }
    ReplacementPolicy &inner() { return *innerBase_; }

    const DeadBlockPolicyConfig &config() const { return cfg_; }

    /**
     * Register the DBRB counters under "<prefix>.*", the confusion
     * matrix under "<prefix>.confusion.*" and the wrapped predictor's
     * stats under "<prefix>.pred.*".
     */
    void registerStats(obs::StatRegistry &reg,
                       const std::string &prefix) const;

    /**
     * Attach an event-trace sink (nullptr detaches).  Records one
     * Prediction event per predictor consultation, keyed by the
     * consultation index (the policy has no notion of time).
     */
    void setTraceSink(obs::TraceSink *sink) { trace_ = sink; }

    /** The fault injector, or nullptr when injection is disabled. */
    const fault::FaultInjector *faultInjector() const
    {
        return faults_.get();
    }

    SDBP_HOT_PATH std::uint32_t
    rank(std::uint32_t set, std::uint32_t way) const override
    {
        return innerBase_->rank(set, way);
    }

    std::string name() const override;

  protected:
    /**
     * @param inner_base the wrapped policy (owned by the subclass)
     * @param pred_base the wrapped predictor (owned by the subclass)
     */
    DeadBlockPolicyBase(ReplacementPolicy *inner_base,
                        DeadBlockPredictor *pred_base,
                        const DeadBlockPolicyConfig &cfg);

    void noteBypass(Addr block_addr);
    void checkBypassReuse(Addr block_addr);

    DeadBlockPolicyConfig cfg_;
    DbrbStats stats_;
    obs::ConfusionMatrix confusion_;
    std::unique_ptr<fault::FaultInjector> faults_;
    obs::TraceSink *trace_ = nullptr;

    /** Prediction computed for the in-flight miss. */
    bool lastPrediction_ = false;
    /** Recently bypassed blocks -> consultation tick. */
    std::unordered_map<Addr, std::uint64_t> recentBypasses_;
    std::uint64_t bypassWindow_ = 0;

    /** The wrapped components as seen through their interfaces. */
    ReplacementPolicy *innerBase_;
    DeadBlockPredictor *predictorBase_;
    /** Hoisted livenessProbe() capability (nullptr for most). */
    const LivenessProbe *liveness_;
};

/**
 * DBRB with the wrapped policy and predictor types bound at compile
 * time.  With final Inner/Pred classes every hook below devirtualizes
 * into direct calls; with the interface types it is exactly the old
 * virtual chain (the factory's slow path).
 */
template <class Inner, class Pred>
class BasicDeadBlockPolicy final : public DeadBlockPolicyBase
{
  public:
    /**
     * @param inner the default replacement policy (LRU or random)
     * @param predictor the dead block predictor to consult
     */
    BasicDeadBlockPolicy(std::unique_ptr<Inner> inner,
                         std::unique_ptr<Pred> predictor,
                         const DeadBlockPolicyConfig &cfg = {})
        : DeadBlockPolicyBase(inner.get(), predictor.get(), cfg),
          inner_(std::move(inner)), predictor_(std::move(predictor))
    {
    }

    Inner &typedInner() { return *inner_; }
    Pred &typedPredictor() { return *predictor_; }

    SDBP_HOT_PATH void
    onAccess(std::uint32_t set, int hit_way, SetView frames,
             const Access &a) override
    {
        if (a.isWriteback) {
            // Writebacks update recency but never touch the
            // predictor.
            inner_->onAccess(set, hit_way, frames, a);
            lastPrediction_ = false;
            return;
        }

        ++stats_.predictions;
        // One injector tick per consultation — the rate is defined
        // in faults per million consultations, and tying the draw to
        // this (scheduling-independent) event keeps sweeps
        // deterministic across SDBP_JOBS values.
        if (faults_)
            faults_->onAccess();
        const bool dead = predictor_->onAccess(set, a);
        if (dead)
            ++stats_.positives;
        // The policy has no notion of time, so Prediction events are
        // keyed by the consultation index.
        SDBP_TRACE_EVENT(trace_, stats_.predictions,
                         obs::TraceEventKind::Prediction, set,
                         a.blockAddr(), a.pc, dead);

        if (hit_way >= 0) {
            const auto way = static_cast<std::uint32_t>(hit_way);
            // A demand hit proves the block was live; classify the
            // prediction bit it was carrying before re-predicting.
            if (frames.predictedDead(way)) {
                ++stats_.falsePositiveHits;
                ++confusion_.deadHit;
            } else {
                ++confusion_.liveHit;
            }
            frames.setPredictedDead(way, dead);
        } else {
            lastPrediction_ = dead;
            checkBypassReuse(a.blockAddr());
        }
        inner_->onAccess(set, hit_way, frames, a);
    }

    SDBP_HOT_PATH bool
    shouldBypass(std::uint32_t set, const Access &a) override
    {
        (void)set;
        if (a.isWriteback || !cfg_.enableBypass || !lastPrediction_)
            return false;
        ++stats_.bypasses;
        noteBypass(a.blockAddr());
        return true;
    }

    SDBP_HOT_PATH std::uint32_t
    victim(std::uint32_t set, SetView frames, const Access &a) override
    {
        if (cfg_.enableDeadReplacement) {
            // Pick the predicted-dead block closest to eviction by
            // the default policy's own ranking.  Interval/time-based
            // predictors additionally report blocks that have become
            // dead since their last access.
            //
            // A recency grace period protects against
            // mispredictions: when the default policy exposes a
            // meaningful recency ranking (LRU and friends), only
            // dead-marked blocks in the colder half of the stack are
            // preferred — a freshly touched block whose mark is
            // wrong gets a chance to prove itself, while a genuinely
            // dead block migrates into the cold half within a few
            // fills anyway.  Rank-less defaults (random) keep the
            // unconditional preference.
            std::uint32_t max_rank = 0;
            for (std::uint32_t w = 0; w < assoc_; ++w)
                max_rank = std::max(max_rank, inner_->rank(set, w));
            const std::uint32_t grace =
                max_rank >= assoc_ / 2 ? assoc_ / 2 : 0;
            int best = -1;
            std::uint32_t best_rank = 0;
            for (std::uint32_t w = 0; w < assoc_; ++w) {
                if (!frames.valid(w))
                    continue;
                const bool dead = frames.predictedDead(w) ||
                    (liveness_ &&
                     liveness_->isDeadNow(set, frames.blockAddr(w)));
                if (!dead)
                    continue;
                const std::uint32_t r = inner_->rank(set, w);
                if (r < grace)
                    continue;
                if (best < 0 || r > best_rank) {
                    best = static_cast<int>(w);
                    best_rank = r;
                }
            }
            if (best >= 0) {
                ++stats_.deadEvictions;
                return static_cast<std::uint32_t>(best);
            }
        }
        return inner_->victim(set, frames, a);
    }

    SDBP_HOT_PATH void
    onEvict(std::uint32_t set, std::uint32_t way,
            SetView frames) override
    {
        // Eviction without reuse proves the block was dead.
        if (frames.predictedDead(way))
            ++confusion_.deadEvicted;
        else
            ++confusion_.liveEvicted;
        predictor_->onEvict(set,
                            Access::atBlock(frames.blockAddr(way)));
        inner_->onEvict(set, way, frames);
    }

    SDBP_HOT_PATH void
    onFill(std::uint32_t set, std::uint32_t way, SetView frames,
           const Access &a) override
    {
        if (!a.isWriteback) {
            predictor_->onFill(set, a);
            // With bypass disabled a dead-on-arrival block is
            // installed but marked so it is the next preferred
            // victim.
            frames.setPredictedDead(way, lastPrediction_);
        }
        inner_->onFill(set, way, frames, a);
    }

    SDBP_HOT_PATH std::uint32_t
    rank(std::uint32_t set, std::uint32_t way) const override
    {
        return inner_->rank(set, way);
    }

    /** Forward the set-lane prefetch hint to the wrapped policy. */
    SDBP_HOT_PATH SDBP_ALWAYS_INLINE void
    prefetchSet(std::uint32_t set) const
    {
        if constexpr (requires(const Inner &p, std::uint32_t s) {
                          p.prefetchSet(s);
                      })
            inner_->prefetchSet(set);
    }

  private:
    std::unique_ptr<Inner> inner_;
    std::unique_ptr<Pred> predictor_;
};

/** The type-erased DBRB: virtual inner/predictor dispatch. */
using DeadBlockPolicy =
    BasicDeadBlockPolicy<ReplacementPolicy, DeadBlockPredictor>;

} // namespace sdbp

#endif // SDBP_CACHE_DEAD_BLOCK_POLICY_HH
