/**
 * @file
 * The dead-block replacement and bypass (DBRB) policy of Sec. V:
 * wraps a default policy (LRU or random) and a dead block predictor.
 *
 *  - Victim selection prefers a predicted-dead block (the one
 *    closest to eviction by the default policy's ranking), falling
 *    back on the default victim.
 *  - A block predicted dead on arrival bypasses the cache.
 *  - Every demand access re-predicts and stores the single
 *    predicted-dead metadata bit in the block.
 */

#ifndef SDBP_CACHE_DEAD_BLOCK_POLICY_HH
#define SDBP_CACHE_DEAD_BLOCK_POLICY_HH

#include <memory>
#include <unordered_map>

#include "cache/policy.hh"
#include "fault/fault_injector.hh"
#include "obs/confusion.hh"
#include "predictor/dead_block_predictor.hh"

namespace sdbp
{

namespace obs
{
class StatRegistry;
class TraceSink;
} // namespace obs

/** Accuracy/coverage accounting for Fig. 9. */
struct DbrbStats
{
    /** Predictor consultations (demand LLC accesses). */
    std::uint64_t predictions = 0;
    /** Consultations that predicted dead. */
    std::uint64_t positives = 0;
    /** Demand hits on blocks whose predicted-dead bit was set. */
    std::uint64_t falsePositiveHits = 0;
    /** Demand misses on recently bypassed blocks. */
    std::uint64_t bypassReuses = 0;
    /** Victims chosen because they were predicted dead. */
    std::uint64_t deadEvictions = 0;
    /** Fills declined. */
    std::uint64_t bypasses = 0;

    /** Fraction of accesses predicted dead (paper's "coverage"). */
    double coverage() const;
    /** Fraction of accesses with a wrong dead prediction. */
    double falsePositiveRate() const;
};

struct DeadBlockPolicyConfig
{
    bool enableBypass = true;
    /** Prefer predicted-dead victims over the default victim. */
    bool enableDeadReplacement = true;
    /**
     * Window (in predictor consultations) within which a re-access
     * to a bypassed block counts as a bypass false positive.
     */
    std::uint64_t bypassReuseWindow = 0; // 0 = numSets * assoc
    /**
     * Soft-error injection into the wrapped predictor's state
     * (DESIGN.md §11); rate 0 builds no injector at all.
     */
    fault::FaultInjectorConfig fault;
};

class DeadBlockPolicy : public ReplacementPolicy
{
  public:
    /**
     * @param inner the default replacement policy (LRU or random)
     * @param predictor the dead block predictor to consult
     */
    DeadBlockPolicy(std::unique_ptr<ReplacementPolicy> inner,
                    std::unique_ptr<DeadBlockPredictor> predictor,
                    const DeadBlockPolicyConfig &cfg = {});

    void onAccess(std::uint32_t set, int hit_way, CacheBlock *blk,
                  const AccessInfo &info) override;
    bool shouldBypass(std::uint32_t set, const AccessInfo &info) override;
    std::uint32_t victim(std::uint32_t set,
                         std::span<const CacheBlock> blocks,
                         const AccessInfo &info) override;
    void onEvict(std::uint32_t set, std::uint32_t way,
                 const CacheBlock &blk) override;
    void onFill(std::uint32_t set, std::uint32_t way, CacheBlock &blk,
                const AccessInfo &info) override;
    std::uint32_t rank(std::uint32_t set, std::uint32_t way)
        const override;
    std::string name() const override;

    const DbrbStats &dbrbStats() const { return stats_; }
    const obs::ConfusionMatrix &confusion() const { return confusion_; }
    DeadBlockPredictor &predictor() { return *predictor_; }
    const DeadBlockPredictor &predictor() const { return *predictor_; }
    ReplacementPolicy &inner() { return *inner_; }

    /**
     * Register the DBRB counters under "<prefix>.*", the confusion
     * matrix under "<prefix>.confusion.*" and the wrapped predictor's
     * stats under "<prefix>.pred.*".
     */
    void registerStats(obs::StatRegistry &reg,
                       const std::string &prefix) const;

    /**
     * Attach an event-trace sink (nullptr detaches).  Records one
     * Prediction event per predictor consultation, keyed by the
     * consultation index (the policy has no notion of time).
     */
    void setTraceSink(obs::TraceSink *sink) { trace_ = sink; }

    /** The fault injector, or nullptr when injection is disabled. */
    const fault::FaultInjector *faultInjector() const
    {
        return faults_.get();
    }

  private:
    void noteBypass(Addr block_addr);
    void checkBypassReuse(Addr block_addr);

    std::unique_ptr<ReplacementPolicy> inner_;
    std::unique_ptr<DeadBlockPredictor> predictor_;
    std::unique_ptr<fault::FaultInjector> faults_;
    DeadBlockPolicyConfig cfg_;
    DbrbStats stats_;
    obs::ConfusionMatrix confusion_;
    obs::TraceSink *trace_ = nullptr;

    /** Prediction computed for the in-flight miss. */
    bool lastPrediction_ = false;
    /** Recently bypassed blocks -> consultation tick. */
    std::unordered_map<Addr, std::uint64_t> recentBypasses_;
    std::uint64_t bypassWindow_;
};

} // namespace sdbp

#endif // SDBP_CACHE_DEAD_BLOCK_POLICY_HH
