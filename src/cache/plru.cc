#include "cache/plru.hh"

#include <cassert>

#include "util/bitops.hh"

namespace sdbp
{

TreePlruPolicy::TreePlruPolicy(std::uint32_t num_sets,
                               std::uint32_t assoc)
    : ReplacementPolicy(num_sets, assoc),
      bits_(static_cast<std::size_t>(num_sets) * (assoc - 1), 0)
{
    assert(isPowerOfTwo(assoc) && assoc >= 2 &&
           "tree-PLRU needs a power-of-two associativity");
}

void
TreePlruPolicy::touch(std::uint32_t set, std::uint32_t way)
{
    // Walk from the root; at each node point the bit AWAY from the
    // touched way.  Nodes are stored heap-style: node 0 is the root,
    // children of n are 2n+1 / 2n+2.
    auto *base = &bits_[static_cast<std::size_t>(set) * (assoc_ - 1)];
    std::uint32_t node = 0;
    std::uint32_t lo = 0, hi = assoc_;
    while (hi - lo > 1) {
        const std::uint32_t mid = (lo + hi) / 2;
        if (way < mid) {
            base[node] = 1; // cold side is right
            node = 2 * node + 1;
            hi = mid;
        } else {
            base[node] = 0; // cold side is left
            node = 2 * node + 2;
            lo = mid;
        }
    }
}

void
TreePlruPolicy::onAccess(std::uint32_t set, int hit_way,
                         SetView frames, const Access &a)
{
    (void)frames;
    (void)a;
    if (hit_way >= 0)
        touch(set, static_cast<std::uint32_t>(hit_way));
}

std::uint32_t
TreePlruPolicy::victim(std::uint32_t set,
                       SetView frames,
                       const Access &a)
{
    (void)frames;
    (void)a;
    // Follow the cold pointers from the root.
    const auto *base =
        &bits_[static_cast<std::size_t>(set) * (assoc_ - 1)];
    std::uint32_t node = 0;
    std::uint32_t lo = 0, hi = assoc_;
    while (hi - lo > 1) {
        const std::uint32_t mid = (lo + hi) / 2;
        if (base[node] == 0) {
            node = 2 * node + 1;
            hi = mid;
        } else {
            node = 2 * node + 2;
            lo = mid;
        }
    }
    return lo;
}

void
TreePlruPolicy::onFill(std::uint32_t set, std::uint32_t way,
                       SetView frames, const Access &a)
{
    (void)frames;
    (void)a;
    touch(set, way);
}

std::uint32_t
TreePlruPolicy::rank(std::uint32_t set, std::uint32_t way) const
{
    // Approximate eviction preference: how early the cold-pointer
    // walk would reach this way.  Count matching cold-pointer steps.
    const auto *base =
        &bits_[static_cast<std::size_t>(set) * (assoc_ - 1)];
    std::uint32_t node = 0;
    std::uint32_t lo = 0, hi = assoc_;
    std::uint32_t cold_steps = 0;
    while (hi - lo > 1) {
        const std::uint32_t mid = (lo + hi) / 2;
        const bool go_left = way < mid;
        const bool cold_left = base[node] == 0;
        cold_steps += (go_left == cold_left);
        node = go_left ? 2 * node + 1 : 2 * node + 2;
        if (go_left)
            hi = mid;
        else
            lo = mid;
    }
    return cold_steps;
}

NruPolicy::NruPolicy(std::uint32_t num_sets, std::uint32_t assoc)
    : ReplacementPolicy(num_sets, assoc),
      ref_(static_cast<std::size_t>(num_sets) * assoc, 0)
{
}

void
NruPolicy::markReferenced(std::uint32_t set, std::uint32_t way)
{
    auto *base = &ref_[static_cast<std::size_t>(set) * assoc_];
    base[way] = 1;
    for (std::uint32_t w = 0; w < assoc_; ++w)
        if (!base[w])
            return;
    // All referenced: clear everyone else (keep this way's bit).
    for (std::uint32_t w = 0; w < assoc_; ++w)
        base[w] = w == way;
}

void
NruPolicy::onAccess(std::uint32_t set, int hit_way, SetView frames,
                    const Access &a)
{
    (void)frames;
    (void)a;
    if (hit_way >= 0)
        markReferenced(set, static_cast<std::uint32_t>(hit_way));
}

std::uint32_t
NruPolicy::victim(std::uint32_t set, SetView frames,
                  const Access &a)
{
    (void)frames;
    (void)a;
    const auto *base = &ref_[static_cast<std::size_t>(set) * assoc_];
    for (std::uint32_t w = 0; w < assoc_; ++w)
        if (!base[w])
            return w;
    return 0; // unreachable: markReferenced always leaves a clear bit
}

void
NruPolicy::onFill(std::uint32_t set, std::uint32_t way, SetView frames,
                  const Access &a)
{
    (void)frames;
    (void)a;
    markReferenced(set, way);
}

std::uint32_t
NruPolicy::rank(std::uint32_t set, std::uint32_t way) const
{
    return ref_[static_cast<std::size_t>(set) * assoc_ + way] ? 0 : 1;
}

} // namespace sdbp
