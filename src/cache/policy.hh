/**
 * @file
 * Replacement policy interface.
 *
 * The cache drives policies through five hooks:
 *
 *   onAccess -> (miss) shouldBypass -> victim -> onEvict -> onFill
 *
 * onAccess fires on every access (hit or miss) so recency state and
 * dead block predictors see the full reference stream; the remaining
 * hooks fire only on the fill path.
 */

#ifndef SDBP_CACHE_POLICY_HH
#define SDBP_CACHE_POLICY_HH

#include <cstdint>
#include <span>
#include <string>

#include "cache/block.hh"
#include "util/types.hh"

namespace sdbp
{

/** Everything a policy may want to know about one access. */
struct AccessInfo
{
    PC pc = 0;
    /** Block-aligned address >> 6. */
    Addr blockAddr = 0;
    ThreadId thread = 0;
    bool isWrite = false;
    /** True for writebacks arriving from the level above. */
    bool isWriteback = false;
};

/**
 * Abstract replacement (and bypass) policy for a set-associative
 * cache.
 */
class ReplacementPolicy
{
  public:
    /**
     * @param num_sets number of sets of the cache this policy manages
     * @param assoc associativity
     */
    ReplacementPolicy(std::uint32_t num_sets, std::uint32_t assoc)
        : numSets_(num_sets), assoc_(assoc)
    {
    }

    virtual ~ReplacementPolicy() = default;

    /**
     * Called on every access.
     *
     * @param set the set index
     * @param hit_way way that hit, or -1 on a miss
     * @param blk the hit block (mutable, e.g. to set the
     *        predicted-dead bit), or nullptr on a miss
     */
    virtual void onAccess(std::uint32_t set, int hit_way,
                          CacheBlock *blk, const AccessInfo &info) = 0;

    /**
     * After a miss: should the incoming block bypass the cache?
     * Policies without bypass keep the default.
     */
    virtual bool
    shouldBypass(std::uint32_t set, const AccessInfo &info)
    {
        (void)set;
        (void)info;
        return false;
    }

    /**
     * Choose a victim in a full set.  May mutate policy state (e.g.
     * RRIP aging).
     */
    virtual std::uint32_t victim(std::uint32_t set,
                                 std::span<const CacheBlock> blocks,
                                 const AccessInfo &info) = 0;

    /** A valid block is being removed from the cache. */
    virtual void
    onEvict(std::uint32_t set, std::uint32_t way, const CacheBlock &blk)
    {
        (void)set;
        (void)way;
        (void)blk;
    }

    /** A new block was just installed in (set, way). */
    virtual void onFill(std::uint32_t set, std::uint32_t way,
                        CacheBlock &blk, const AccessInfo &info) = 0;

    /**
     * Eviction preference of a resident block: larger means closer
     * to eviction.  Used by the dead-block wrapper to pick the
     * predicted-dead block "closest to LRU" (Sec. II-A4).
     */
    virtual std::uint32_t
    rank(std::uint32_t set, std::uint32_t way) const
    {
        (void)set;
        (void)way;
        return 0;
    }

    virtual std::string name() const = 0;

    std::uint32_t numSets() const { return numSets_; }
    std::uint32_t assoc() const { return assoc_; }

  protected:
    std::uint32_t numSets_;
    std::uint32_t assoc_;
};

} // namespace sdbp

#endif // SDBP_CACHE_POLICY_HH
