/**
 * @file
 * Replacement policy interface.
 *
 * The cache drives policies through five hooks:
 *
 *   onAccess -> (miss) shouldBypass -> victim -> onEvict -> onFill
 *
 * onAccess fires on every access (hit or miss) so recency state and
 * dead block predictors see the full reference stream; the remaining
 * hooks fire only on the fill path.
 *
 * Hooks receive the unified Access record plus a SetView: a zero-copy
 * window onto the cache's structure-of-arrays hot lanes for the set
 * being touched (tags + packed valid/dirty/predicted-dead state).
 * Policies read frame state and flip the predicted-dead bit through
 * the view; they never see the cache's cold lanes (owner, tick
 * accounting).
 */

#ifndef SDBP_CACHE_POLICY_HH
#define SDBP_CACHE_POLICY_HH

#include <cstdint>
#include <string>

#include "trace/access.hh"
#include "util/types.hh"

namespace sdbp
{

/**
 * Mutable window onto the hot lanes of one cache set.
 *
 * The tag lane doubles as the valid encoding: an invalid frame holds
 * SetView::kNoBlock, so a set probe is a single contiguous scan of
 * assoc() tags.  The state lane packs the dirty and predicted-dead
 * bits (plus a redundant valid bit kept in sync with the tag
 * sentinel; auditInvariants checks the pairing).
 */
class SetView
{
  public:
    /** Tag of an invalid frame. */
    static constexpr Addr kNoBlock = ~Addr(0);

    /** State-lane bits. */
    static constexpr std::uint8_t kValid = 1u << 0;
    static constexpr std::uint8_t kDirty = 1u << 1;
    static constexpr std::uint8_t kDead = 1u << 2;

    SetView(Addr *tags, std::uint8_t *state, std::uint32_t assoc)
        : tags_(tags), state_(state), assoc_(assoc)
    {
    }

    std::uint32_t assoc() const { return assoc_; }

    /** Block address of frame @p way (kNoBlock when invalid). */
    Addr blockAddr(std::uint32_t way) const { return tags_[way]; }

    bool valid(std::uint32_t way) const
    {
        return (state_[way] & kValid) != 0;
    }

    bool dirty(std::uint32_t way) const
    {
        return (state_[way] & kDirty) != 0;
    }

    /** The one bit of dead-block metadata per frame (Sec. III-C). */
    bool predictedDead(std::uint32_t way) const
    {
        return (state_[way] & kDead) != 0;
    }

    void
    setPredictedDead(std::uint32_t way, bool dead)
    {
        if (dead)
            state_[way] = static_cast<std::uint8_t>(state_[way] | kDead);
        else
            state_[way] =
                static_cast<std::uint8_t>(state_[way] & ~kDead);
    }

  private:
    Addr *tags_;
    std::uint8_t *state_;
    std::uint32_t assoc_;
};

/**
 * Abstract replacement (and bypass) policy for a set-associative
 * cache.
 *
 * This virtual interface is the extension point and the slow-path
 * fallback; the common policy stacks are also instantiated as sealed
 * compile-time compositions by sim/engine (DESIGN.md §12), which
 * calls the same hooks without the vtable.
 */
class ReplacementPolicy
{
  public:
    /**
     * @param num_sets number of sets of the cache this policy manages
     * @param assoc associativity
     */
    ReplacementPolicy(std::uint32_t num_sets, std::uint32_t assoc)
        : numSets_(num_sets), assoc_(assoc)
    {
    }

    virtual ~ReplacementPolicy() = default;

    /**
     * Called on every access.
     *
     * @param set the set index
     * @param hit_way way that hit, or -1 on a miss
     * @param frames hot-lane view of the set (mutable, e.g. to set
     *        the predicted-dead bit of the hit frame)
     */
    virtual void onAccess(std::uint32_t set, int hit_way,
                          SetView frames, const Access &a) = 0;

    /**
     * After a miss: should the incoming block bypass the cache?
     * Policies without bypass keep the default.
     */
    virtual bool
    shouldBypass(std::uint32_t set, const Access &a)
    {
        (void)set;
        (void)a;
        return false;
    }

    /**
     * Choose a victim in a full set.  May mutate policy state (e.g.
     * RRIP aging).
     */
    virtual std::uint32_t victim(std::uint32_t set, SetView frames,
                                 const Access &a) = 0;

    /** A valid block is being removed from frame (set, way). */
    virtual void
    onEvict(std::uint32_t set, std::uint32_t way, SetView frames)
    {
        (void)set;
        (void)way;
        (void)frames;
    }

    /** A new block was just installed in (set, way). */
    virtual void onFill(std::uint32_t set, std::uint32_t way,
                        SetView frames, const Access &a) = 0;

    /**
     * Eviction preference of a resident block: larger means closer
     * to eviction.  Used by the dead-block wrapper to pick the
     * predicted-dead block "closest to LRU" (Sec. II-A4).
     */
    virtual std::uint32_t
    rank(std::uint32_t set, std::uint32_t way) const
    {
        (void)set;
        (void)way;
        return 0;
    }

    virtual std::string name() const = 0;

    std::uint32_t numSets() const { return numSets_; }
    std::uint32_t assoc() const { return assoc_; }

  protected:
    std::uint32_t numSets_;
    std::uint32_t assoc_;
};

} // namespace sdbp

#endif // SDBP_CACHE_POLICY_HH
