#include "cache/dip.hh"

#include <algorithm>
#include <cassert>

namespace sdbp
{

DipPolicy::DipPolicy(std::uint32_t num_sets, std::uint32_t assoc,
                     const DipConfig &cfg)
    : ReplacementPolicy(num_sets, assoc), cfg_(cfg),
      lru_(num_sets, assoc), rng_(cfg.seed)
{
    assert(cfg_.numThreads >= 1);
    pselMax_ = (1u << cfg_.pselBits) - 1;
    psel_.assign(cfg_.numThreads, (pselMax_ + 1) / 2);
    leaderPeriod_ =
        std::max<std::uint32_t>(1, num_sets / cfg_.leaderSetsPerPolicy);
    // Each thread needs two distinct leader offsets within a period.
    assert(2 * cfg_.numThreads <= leaderPeriod_);
}

bool
DipPolicy::isLruLeader(std::uint32_t set, ThreadId t) const
{
    return set % leaderPeriod_ == 2 * t;
}

bool
DipPolicy::isBipLeader(std::uint32_t set, ThreadId t) const
{
    return set % leaderPeriod_ == 2 * t + 1;
}

bool
DipPolicy::followerUsesBip(ThreadId t) const
{
    return psel_[t] > pselMax_ / 2;
}

void
DipPolicy::onAccess(std::uint32_t set, int hit_way, SetView frames,
                    const Access &a)
{
    if (hit_way < 0 && !a.isWriteback) {
        // Set dueling: a miss in a leader set votes against that
        // set's insertion policy.  The vote goes to the PSEL of the
        // thread that OWNS the leader set, regardless of which
        // thread missed: that is how TADIP-F captures the effect of
        // one thread's insertion policy on everyone sharing the
        // cache.
        for (ThreadId t = 0; t < cfg_.numThreads; ++t) {
            if (isLruLeader(set, t)) {
                if (psel_[t] < pselMax_)
                    ++psel_[t];
                break;
            }
            if (isBipLeader(set, t)) {
                if (psel_[t] > 0)
                    --psel_[t];
                break;
            }
        }
    }
    lru_.onAccess(set, hit_way, frames, a);
}

std::uint32_t
DipPolicy::victim(std::uint32_t set, SetView frames,
                  const Access &a)
{
    return lru_.victim(set, frames, a);
}

void
DipPolicy::onFill(std::uint32_t set, std::uint32_t way, SetView frames,
                  const Access &a)
{
    (void)frames;
    const ThreadId t = std::min<ThreadId>(a.thread,
                                          cfg_.numThreads - 1);
    bool use_bip;
    if (cfg_.staticBip)
        use_bip = true;
    else if (isLruLeader(set, t))
        use_bip = false;
    else if (isBipLeader(set, t))
        use_bip = true;
    else
        use_bip = followerUsesBip(t);

    if (use_bip && !rng_.chance(1, cfg_.bipEpsilonDenom)) {
        // BIP: install at the LRU position (will be the next victim
        // unless promoted by a hit).
        lru_.moveTo(set, way, assoc_ - 1);
    } else {
        lru_.moveTo(set, way, 0);
    }
}

std::uint32_t
DipPolicy::rank(std::uint32_t set, std::uint32_t way) const
{
    return lru_.rank(set, way);
}

std::string
DipPolicy::name() const
{
    if (cfg_.staticBip)
        return cfg_.bipEpsilonDenom > (1u << 20) ? "lip" : "bip";
    return cfg_.numThreads > 1 ? "tadip" : "dip";
}

} // namespace sdbp
