#include "cache/prefetcher.hh"

namespace sdbp
{

Prefetcher::Prefetcher(const PrefetcherConfig &cfg) : cfg_(cfg)
{
}

bool
Prefetcher::tryInstall(Cache &llc, Addr block_addr, PC pc,
                       ThreadId thread, std::uint64_t now)
{
    if (llc.probe(block_addr)) {
        ++stats_.redundant;
        return false;
    }

    if (cfg_.deadBlockDirected) {
        // Only install when an invalid or predicted-dead frame can
        // absorb the speculation.
        const std::uint32_t set = llc.setIndex(block_addr);
        bool has_frame = false;
        for (const CacheBlock &blk : llc.setBlocks(set)) {
            if (!blk.valid || blk.predictedDead) {
                has_frame = true;
                break;
            }
        }
        if (!has_frame) {
            ++stats_.noDeadFrame;
            return false;
        }
    }

    AccessInfo info;
    info.pc = pc;
    info.blockAddr = block_addr;
    info.thread = thread;
    llc.fill(info, now);
    // The policy may still decline (bypass); only count real installs.
    if (!llc.probe(block_addr))
        return false;
    ++stats_.installed;
    return true;
}

void
Prefetcher::onDemandMiss(Cache &llc, Addr block_addr, PC pc,
                         ThreadId thread, std::uint64_t now)
{
    for (unsigned i = 1; i <= cfg_.degree; ++i) {
        ++stats_.issued;
        tryInstall(llc, block_addr + i, pc, thread, now);
    }
}

} // namespace sdbp
