/**
 * @file
 * Tree-PLRU and NRU replacement.
 *
 * The paper motivates the random-replacement experiments with the
 * observation that true LRU "is prohibitively expensive to implement
 * in a highly associative LLC" (Sec. I).  Real processors use cheap
 * approximations instead; these two are the classic ones and give
 * the library realistic low-cost baselines between true LRU and
 * random:
 *
 *  - Tree-PLRU: one bit per internal node of a binary tree over the
 *    ways (assoc-1 bits/set).
 *  - NRU: one reference bit per way; victim = first way with a clear
 *    bit, clearing all bits when every way is referenced.
 */

#ifndef SDBP_CACHE_PLRU_HH
#define SDBP_CACHE_PLRU_HH

#include <vector>

#include "cache/policy.hh"

namespace sdbp
{

/** Tree-based pseudo-LRU (binary decision tree, assoc-1 bits/set). */
class TreePlruPolicy final : public ReplacementPolicy
{
  public:
    TreePlruPolicy(std::uint32_t num_sets, std::uint32_t assoc);

    void onAccess(std::uint32_t set, int hit_way, SetView frames,
                  const Access &a) override;
    std::uint32_t victim(std::uint32_t set,
                         SetView frames,
                         const Access &a) override;
    void onFill(std::uint32_t set, std::uint32_t way, SetView frames,
                const Access &a) override;
    std::uint32_t rank(std::uint32_t set, std::uint32_t way)
        const override;
    std::string name() const override { return "tree-plru"; }

    /** State bits per set (test hook). */
    std::uint32_t bitsPerSet() const { return assoc_ - 1; }

  private:
    void touch(std::uint32_t set, std::uint32_t way);

    /** Node bits, assoc-1 per set; bit=0 -> "go left is colder". */
    std::vector<std::uint8_t> bits_;
};

/** Not-recently-used: one reference bit per way. */
class NruPolicy final : public ReplacementPolicy
{
  public:
    NruPolicy(std::uint32_t num_sets, std::uint32_t assoc);

    void onAccess(std::uint32_t set, int hit_way, SetView frames,
                  const Access &a) override;
    std::uint32_t victim(std::uint32_t set,
                         SetView frames,
                         const Access &a) override;
    void onFill(std::uint32_t set, std::uint32_t way, SetView frames,
                const Access &a) override;
    std::uint32_t rank(std::uint32_t set, std::uint32_t way)
        const override;
    std::string name() const override { return "nru"; }

    bool
    referenced(std::uint32_t set, std::uint32_t way) const
    {
        return ref_[set * assoc_ + way] != 0;
    }

  private:
    void markReferenced(std::uint32_t set, std::uint32_t way);

    std::vector<std::uint8_t> ref_;
};

} // namespace sdbp

#endif // SDBP_CACHE_PLRU_HH
