/**
 * @file
 * Set-associative cache model with pluggable replacement/bypass
 * policy, writeback handling and live/dead-time accounting.
 */

#ifndef SDBP_CACHE_CACHE_HH
#define SDBP_CACHE_CACHE_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cache/block.hh"
#include "cache/policy.hh"

namespace sdbp
{

namespace obs
{
class StatRegistry;
class TraceSink;
} // namespace obs

/** Static geometry of one cache. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint32_t numSets = 64;
    std::uint32_t assoc = 8;
    /** Hit latency in cycles (used by the timing model). */
    Cycle latency = 1;
    /** Collect per-frame live/dead time statistics (Fig. 1). */
    bool trackEfficiency = false;

    std::uint64_t sizeBytes() const;
};

/** Aggregate counters of one cache. */
struct CacheStats
{
    std::uint64_t demandAccesses = 0;
    std::uint64_t demandHits = 0;
    std::uint64_t demandMisses = 0;
    std::uint64_t writebackAccesses = 0;
    std::uint64_t writebackHits = 0;
    std::uint64_t fills = 0;
    std::uint64_t bypasses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t dirtyEvictions = 0;

    /** Summed live time of completed block generations (ticks). */
    double liveTime = 0;
    /** Summed resident time of completed block generations. */
    double totalTime = 0;

    /** Live-time ratio: the cache "efficiency" of Fig. 1. */
    double efficiency() const;

    /**
     * Register every counter under @p prefix ("llc" ->
     * "llc.demand_misses", ...).  The stats object must outlive the
     * registry; the registry pulls at snapshot time, so registration
     * adds no per-access cost.
     */
    void registerStats(obs::StatRegistry &reg,
                       const std::string &prefix) const;
};

/** What fell out of the cache during a fill or writeback allocate. */
struct EvictedBlock
{
    bool valid = false;
    bool dirty = false;
    Addr blockAddr = 0;
    ThreadId owner = 0;
};

/**
 * The cache.  The caller (the hierarchy) drives it with the
 * protocol:
 *
 *   if (!cache.access(info, now))      // miss
 *       ... service miss below ...
 *       evicted = cache.fill(info, now);  // may bypass
 *       ... write back evicted.dirty ...
 */
class Cache
{
  public:
    Cache(const CacheConfig &cfg,
          std::unique_ptr<ReplacementPolicy> policy);

    /**
     * Demand or writeback lookup; updates policy and stats.
     *
     * @param now a monotonically increasing tick used for live/dead
     *        accounting (the driver passes the instruction count)
     * @return true on hit
     */
    bool access(const AccessInfo &info, std::uint64_t now);

    /**
     * Install the block after a miss was serviced.  The policy may
     * decline the fill (bypass).
     *
     * @return the block that was evicted to make room (valid=false
     *         if an empty way was used or the fill was bypassed)
     */
    EvictedBlock fill(const AccessInfo &info, std::uint64_t now);

    /** True if the block is present (no state change). */
    bool probe(Addr block_addr) const;

    /** Invalidate a block if present (no writeback; test hook). */
    void invalidate(Addr block_addr);

    /** Account still-resident blocks' live/dead time at end of run. */
    void finalizeEfficiency(std::uint64_t now);

    /**
     * Per-frame efficiency (live-time ratio) of frame (set, way);
     * only meaningful with trackEfficiency (Fig. 1 heat map).
     */
    double frameEfficiency(std::uint32_t set, std::uint32_t way) const;

    std::uint32_t setIndex(Addr block_addr) const;

    const CacheConfig &config() const { return cfg_; }
    const CacheStats &stats() const { return stats_; }

    /** Register counters + an efficiency gauge under @p prefix. */
    void registerStats(obs::StatRegistry &reg,
                       const std::string &prefix) const;

    /**
     * Attach an event-trace sink (nullptr detaches).  Fill, bypass
     * and eviction events on the miss path are recorded; the hit
     * path is never touched.
     */
    void setTraceSink(obs::TraceSink *sink) { trace_ = sink; }

    ReplacementPolicy &policy() { return *policy_; }
    const ReplacementPolicy &policy() const { return *policy_; }

    std::span<const CacheBlock> setBlocks(std::uint32_t set) const;

    /** Reset all content and statistics (policy state persists). */
    void clearStats();

    /**
     * Panic (via SDBP_DCHECK) unless every valid block maps to the
     * set that holds it, no set holds the same block twice, and no
     * block's generation timestamps are inverted.
     */
    void auditInvariants() const;

  private:
    int findWay(std::uint32_t set, Addr block_addr) const;
    void retireGeneration(std::uint32_t set, std::uint32_t way,
                          const CacheBlock &blk, std::uint64_t now);

    CacheConfig cfg_;
    std::unique_ptr<ReplacementPolicy> policy_;
    std::vector<CacheBlock> blocks_;
    CacheStats stats_;
    obs::TraceSink *trace_ = nullptr;
    /** Per-frame accumulated live/total time (trackEfficiency). */
    std::vector<double> frameLive_;
    std::vector<double> frameTotal_;
};

} // namespace sdbp

#endif // SDBP_CACHE_CACHE_HH
