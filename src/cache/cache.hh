/**
 * @file
 * Set-associative cache model with pluggable replacement/bypass
 * policy, writeback handling and live/dead-time accounting.
 *
 * Block storage is structure-of-arrays: a contiguous tag lane (the
 * sentinel SetView::kNoBlock encodes "invalid") and a packed
 * valid/dirty/predicted-dead state lane are the only data the
 * per-access path touches, so a set probe is one cache-line scan;
 * the cold lanes (owner, fill/last-touch ticks, per-frame efficiency
 * accounting) live in separate arrays that only the miss path and
 * end-of-run reporting read.
 *
 * The class splits into a non-template CacheBase (geometry, stats,
 * cold operations) and BasicCache<P>, which binds the policy type at
 * compile time: with a final policy class the per-access hook calls
 * devirtualize and inline.  `Cache` is the type-erased alias
 * BasicCache<ReplacementPolicy> — the extension point and slow-path
 * fallback (DESIGN.md §12).
 */

#ifndef SDBP_CACHE_CACHE_HH
#define SDBP_CACHE_CACHE_HH

#include <cassert>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cache/block.hh"
#include "cache/policy.hh"
#include "obs/trace_sink.hh"
#include "trace/access.hh"
#include "util/arena.hh"
#include "util/hotpath.hh"
#include "util/logging.hh"
#include "util/simd.hh"

namespace sdbp
{

namespace obs
{
class StatRegistry;
} // namespace obs

/** Static geometry of one cache. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint32_t numSets = 64;
    std::uint32_t assoc = 8;
    /** Hit latency in cycles (used by the timing model). */
    Cycle latency = 1;
    /** Collect per-frame live/dead time statistics (Fig. 1). */
    bool trackEfficiency = false;

    std::uint64_t sizeBytes() const;
};

/** Aggregate counters of one cache. */
struct CacheStats
{
    std::uint64_t demandAccesses = 0;
    std::uint64_t demandHits = 0;
    std::uint64_t demandMisses = 0;
    std::uint64_t writebackAccesses = 0;
    std::uint64_t writebackHits = 0;
    std::uint64_t fills = 0;
    std::uint64_t bypasses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t dirtyEvictions = 0;

    /** Summed live time of completed block generations (ticks). */
    double liveTime = 0;
    /** Summed resident time of completed block generations. */
    double totalTime = 0;

    /** Live-time ratio: the cache "efficiency" of Fig. 1. */
    double efficiency() const;

    /**
     * Register every counter under @p prefix ("llc" ->
     * "llc.demand_misses", ...).  The stats object must outlive the
     * registry; the registry pulls at snapshot time, so registration
     * adds no per-access cost.
     */
    void registerStats(obs::StatRegistry &reg,
                       const std::string &prefix) const;
};

/**
 * Per-frame miss-path metadata, interleaved so a fill (which writes
 * all three fields) and an eviction (which reads them) touch one
 * host cache line instead of three parallel lanes.  Kept out of the
 * hit-path lanes: a demand hit only stores lastTouchTick.
 */
struct FrameMeta
{
    std::uint64_t fillTick = 0;
    std::uint64_t lastTouchTick = 0;
    ThreadId owner = 0;
};

/** What fell out of the cache during a fill or writeback allocate. */
struct EvictedBlock
{
    bool valid = false;
    bool dirty = false;
    Addr blockAddr = 0;
    ThreadId owner = 0;
};

/**
 * Policy-type-erased part of the cache: storage lanes, statistics
 * and every operation off the per-access path.  The hierarchy and
 * tools hold CacheBase references when they only need geometry,
 * stats or probes; driving accesses requires the typed BasicCache.
 */
class CacheBase
{
  public:
    virtual ~CacheBase() = default;

    CacheBase(const CacheBase &) = delete;
    CacheBase &operator=(const CacheBase &) = delete;

    /** True if the block is present (no state change). */
    bool probe(Addr block_addr) const;

    /** Invalidate a block if present (no writeback; test hook). */
    void invalidate(Addr block_addr);

    /** Account still-resident blocks' live/dead time at end of run. */
    void finalizeEfficiency(std::uint64_t now);

    /**
     * Per-frame efficiency (live-time ratio) of frame (set, way);
     * only meaningful with trackEfficiency (Fig. 1 heat map).
     */
    double frameEfficiency(std::uint32_t set, std::uint32_t way) const;

    SDBP_HOT_PATH std::uint32_t
    setIndex(Addr block_addr) const
    {
        return static_cast<std::uint32_t>(block_addr &
                                          (cfg_.numSets - 1));
    }

    const CacheConfig &config() const { return cfg_; }
    const CacheStats &stats() const { return stats_; }

    /** Register counters + an efficiency gauge under @p prefix. */
    void registerStats(obs::StatRegistry &reg,
                       const std::string &prefix) const;

    /**
     * Attach an event-trace sink (nullptr detaches).  Fill, bypass
     * and eviction events on the miss path are recorded; the hit
     * path is never touched.
     */
    void setTraceSink(obs::TraceSink *sink) { trace_ = sink; }

    ReplacementPolicy &policy() { return *policyBase_; }
    const ReplacementPolicy &policy() const { return *policyBase_; }

    /** Hot-lane view of one set (what the policy hooks receive). */
    SDBP_HOT_PATH SetView
    frames(std::uint32_t set)
    {
        const std::size_t base =
            static_cast<std::size_t>(set) * cfg_.assoc;
        return {&tags_[base], &state_[base], cfg_.assoc};
    }

    /** Materialized snapshot of frame (set, way) for inspection. */
    CacheBlock blockAt(std::uint32_t set, std::uint32_t way) const;

    /** Reset all content and statistics (policy state persists). */
    void clearStats();

    /**
     * Panic (via SDBP_DCHECK) unless every valid block maps to the
     * set that holds it, no set holds the same block twice, no
     * block's generation timestamps are inverted, and the tag
     * sentinel agrees with the valid bit in every frame (the SoA
     * layout invariant).
     */
    void auditInvariants() const;

    /** Probe of one set (vectorized scan); -1 when absent. */
    SDBP_HOT_PATH int
    findWay(std::uint32_t set, Addr block_addr) const
    {
        const Addr *tags =
            &tags_[static_cast<std::size_t>(set) * cfg_.assoc];
        return simd::findTag(tags, cfg_.assoc, block_addr);
    }

    /**
     * Pull the set lanes an upcoming access to @p block_addr will
     * touch into the host cache: the tag lane always, the state lane
     * when it shares no cache line with the tags.  Read-only hint; no
     * simulated state changes (DESIGN.md §15).
     */
    SDBP_HOT_PATH SDBP_ALWAYS_INLINE void
    prefetchSet(Addr block_addr) const
    {
        const std::size_t base =
            static_cast<std::size_t>(setIndex(block_addr)) *
            cfg_.assoc;
        __builtin_prefetch(&tags_[base], 0, 3);
        __builtin_prefetch(&state_[base], 0, 3);
    }

  protected:
    CacheBase(const CacheConfig &cfg, ReplacementPolicy *policy_base);

    /** Close the live/dead generation of a frame about to turn over. */
    SDBP_HOT_PATH void
    retireGeneration(std::uint32_t set, std::uint32_t way,
                     std::uint64_t now)
    {
        const std::size_t idx =
            static_cast<std::size_t>(set) * cfg_.assoc + way;
        const FrameMeta &m = meta_[idx];
        if (!(state_[idx] & SetView::kValid) || now < m.fillTick)
            return;
        const double live =
            static_cast<double>(m.lastTouchTick - m.fillTick);
        const double total =
            static_cast<double>(now - m.fillTick);
        stats_.liveTime += live;
        stats_.totalTime += total;
        if (cfg_.trackEfficiency) {
            frameLive_[idx] += live;
            frameTotal_[idx] += total;
        }
    }

    CacheConfig cfg_;
    CacheStats stats_;
    /** Hot lanes: tag (kNoBlock = invalid) and packed state bits.
     *  Arena-backed when the cache is built under an ArenaScope, so
     *  a run's lanes pack into one slab in walk order. */
    ArenaVector<Addr> tags_;
    ArenaVector<std::uint8_t> state_;
    /** Cold lane: miss-path / reporting data only. */
    ArenaVector<FrameMeta> meta_;
    obs::TraceSink *trace_ = nullptr;
    /** Per-frame accumulated live/total time (trackEfficiency). */
    ArenaVector<double> frameLive_;
    ArenaVector<double> frameTotal_;

  private:
    /** The policy as seen through the virtual interface (cold ops). */
    ReplacementPolicy *policyBase_;
};

/**
 * The cache, with the policy type bound at compile time.  The caller
 * (the hierarchy) drives it with the protocol:
 *
 *   if (!cache.access(a, now))          // miss
 *       ... service miss below ...
 *       evicted = cache.fill(a, now);   // may bypass
 *       ... write back evicted.dirty ...
 */
template <class P>
class BasicCache final : public CacheBase
{
  public:
    BasicCache(const CacheConfig &cfg, std::unique_ptr<P> policy)
        : CacheBase(cfg, policy.get()), policy_(std::move(policy))
    {
    }

    P &typedPolicy() { return *policy_; }
    const P &typedPolicy() const { return *policy_; }

    /**
     * Prefetch every lane an upcoming access to @p block_addr will
     * touch: the cache's tag/state lanes plus, when the bound policy
     * exposes a prefetchSet(set) hint, its per-set recency lane.  The
     * type-erased instantiation (P = ReplacementPolicy) compiles the
     * policy half out — a virtual prefetch call would cost more than
     * the miss it hides.
     */
    SDBP_HOT_PATH SDBP_ALWAYS_INLINE void
    prefetchFor(Addr block_addr) const
    {
        prefetchSet(block_addr);
        if constexpr (requires(const P &p, std::uint32_t s) {
                          p.prefetchSet(s);
                      })
            policy_->prefetchSet(setIndex(block_addr));
    }

    /**
     * Demand or writeback lookup; updates policy and stats.
     *
     * @param now a monotonically increasing tick used for live/dead
     *        accounting (the driver passes the instruction count)
     * @return true on hit
     */
    SDBP_HOT_PATH SDBP_ALWAYS_INLINE bool
    access(const Access &a, std::uint64_t now)
    {
        const Addr block = a.blockAddr();
        const std::uint32_t set = setIndex(block);
        const std::size_t base =
            static_cast<std::size_t>(set) * cfg_.assoc;

        // One contiguous scan of the tag lane; the sentinel encoding
        // makes invalid frames compare unequal for free.  The scan is
        // an AVX2 compare-and-movemask where available (scalar
        // fallback otherwise); the set invariant (no duplicate tags)
        // makes every scan order equivalent.
        const int way = simd::findTag(&tags_[base], cfg_.assoc, block);

        if (a.isWriteback)
            ++stats_.writebackAccesses;
        else
            ++stats_.demandAccesses;

        if (way >= 0) {
            const std::size_t idx =
                base + static_cast<std::uint32_t>(way);
            if (a.isWriteback) {
                ++stats_.writebackHits;
                state_[idx] =
                    static_cast<std::uint8_t>(state_[idx] |
                                              SetView::kDirty);
            } else {
                ++stats_.demandHits;
                meta_[idx].lastTouchTick = now;
                if (a.isWrite)
                    state_[idx] =
                        static_cast<std::uint8_t>(state_[idx] |
                                                  SetView::kDirty);
            }
        } else if (!a.isWriteback) {
            ++stats_.demandMisses;
        }

        policy_->onAccess(set, way, frames(set), a);
        return way >= 0;
    }

    /**
     * Install the block after a miss was serviced.  The policy may
     * decline the fill (bypass).
     *
     * @return the block that was evicted to make room (valid=false
     *         if an empty way was used or the fill was bypassed)
     */
    SDBP_HOT_PATH EvictedBlock
    fill(const Access &a, std::uint64_t now)
    {
        EvictedBlock evicted;
        const Addr block = a.blockAddr();
        const std::uint32_t set = setIndex(block);
        assert(findWay(set, block) < 0 && "fill of resident block");
        assert(block != SetView::kNoBlock && "fill of sentinel tag");

        if (policy_->shouldBypass(set, a)) {
            ++stats_.bypasses;
            SDBP_TRACE_EVENT(trace_, now, obs::TraceEventKind::Bypass,
                             set, block, a.pc, true);
            return evicted;
        }

        const std::size_t base =
            static_cast<std::size_t>(set) * cfg_.assoc;

        // Prefer an invalid frame.  Steady-state fills find none, so
        // test eight state bytes per step instead of branching on
        // each: a zero kValid bit anywhere in the chunk lights up in
        // one mask test, and the byte-by-byte walk only runs for the
        // chunk that contains the first invalid frame.
        std::uint32_t way = cfg_.assoc;
        {
            constexpr std::uint64_t kValidMask =
                0x0101010101010101ULL *
                static_cast<std::uint64_t>(SetView::kValid);
            std::uint32_t w = 0;
            for (; w + 8 <= cfg_.assoc; w += 8) {
                std::uint64_t chunk;
                __builtin_memcpy(&chunk, &state_[base + w],
                                 sizeof(chunk));
                if ((chunk & kValidMask) != kValidMask)
                    break;
            }
            for (; w < cfg_.assoc; ++w) {
                if (!(state_[base + w] & SetView::kValid)) {
                    way = w;
                    break;
                }
            }
        }
        if (way == cfg_.assoc) {
            way = policy_->victim(set, frames(set), a);
            assert(way < cfg_.assoc);
            const std::size_t idx = base + way;
            retireGeneration(set, way, now);
            evicted.valid = true;
            evicted.dirty = (state_[idx] & SetView::kDirty) != 0;
            evicted.blockAddr = tags_[idx];
            evicted.owner = meta_[idx].owner;
            ++stats_.evictions;
            if (evicted.dirty)
                ++stats_.dirtyEvictions;
            SDBP_TRACE_EVENT(trace_, now,
                             obs::TraceEventKind::Eviction, set,
                             tags_[idx], 0,
                             (state_[idx] & SetView::kDead) != 0);
            policy_->onEvict(set, way, frames(set));
        }

        const std::size_t idx = base + way;
        tags_[idx] = block;
        state_[idx] = static_cast<std::uint8_t>(
            SetView::kValid |
            ((a.isWrite || a.isWriteback) ? SetView::kDirty : 0));
        meta_[idx] = {now, now, a.thread};
        ++stats_.fills;
        SDBP_TRACE_EVENT(trace_, now, obs::TraceEventKind::Fill, set,
                         block, a.pc, false);
        policy_->onFill(set, way, frames(set), a);

#if SDBP_DCHECK_ENABLED
        // Periodic full audit in debug builds (amortized over 64K
        // fills).
        if ((stats_.fills & 0xFFFFu) == 0)
            auditInvariants();
#endif
        return evicted;
    }

  private:
    std::unique_ptr<P> policy_;
};

/** The type-erased cache: virtual policy dispatch per access. */
using Cache = BasicCache<ReplacementPolicy>;

} // namespace sdbp

#endif // SDBP_CACHE_CACHE_HH
