#include "cache/cache.hh"

#include <cassert>

#include "obs/stat_registry.hh"
#include "obs/trace_sink.hh"
#include "trace/access.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace sdbp
{

std::uint64_t
CacheConfig::sizeBytes() const
{
    return static_cast<std::uint64_t>(numSets) * assoc * blockBytes;
}

double
CacheStats::efficiency() const
{
    return totalTime > 0 ? liveTime / totalTime : 0.0;
}

void
CacheStats::registerStats(obs::StatRegistry &reg,
                          const std::string &prefix) const
{
    using obs::StatRegistry;
    reg.addCounter(StatRegistry::join(prefix, "demand_accesses"),
                   &demandAccesses);
    reg.addCounter(StatRegistry::join(prefix, "demand_hits"),
                   &demandHits);
    reg.addCounter(StatRegistry::join(prefix, "demand_misses"),
                   &demandMisses);
    reg.addCounter(StatRegistry::join(prefix, "writeback_accesses"),
                   &writebackAccesses);
    reg.addCounter(StatRegistry::join(prefix, "writeback_hits"),
                   &writebackHits);
    reg.addCounter(StatRegistry::join(prefix, "fills"), &fills);
    reg.addCounter(StatRegistry::join(prefix, "bypasses"), &bypasses);
    reg.addCounter(StatRegistry::join(prefix, "evictions"),
                   &evictions);
    reg.addCounter(StatRegistry::join(prefix, "dirty_evictions"),
                   &dirtyEvictions);
}

void
Cache::registerStats(obs::StatRegistry &reg,
                     const std::string &prefix) const
{
    stats_.registerStats(reg, prefix);
    reg.addGauge(obs::StatRegistry::join(prefix, "efficiency"),
                 [this] { return stats_.efficiency(); });
}

Cache::Cache(const CacheConfig &cfg,
             std::unique_ptr<ReplacementPolicy> policy)
    : cfg_(cfg), policy_(std::move(policy)),
      blocks_(static_cast<std::size_t>(cfg.numSets) * cfg.assoc)
{
    if (!isPowerOfTwo(cfg_.numSets))
        fatal("cache '" + cfg_.name + "': numSets must be a power of 2");
    if (cfg_.assoc == 0)
        fatal("cache '" + cfg_.name + "': zero associativity");
    assert(policy_->numSets() == cfg_.numSets);
    assert(policy_->assoc() == cfg_.assoc);
    if (cfg_.trackEfficiency) {
        frameLive_.assign(blocks_.size(), 0.0);
        frameTotal_.assign(blocks_.size(), 0.0);
    }
}

std::uint32_t
Cache::setIndex(Addr block_addr) const
{
    return static_cast<std::uint32_t>(block_addr & (cfg_.numSets - 1));
}

int
Cache::findWay(std::uint32_t set, Addr block_addr) const
{
    const auto *base = &blocks_[static_cast<std::size_t>(set) *
                                cfg_.assoc];
    for (std::uint32_t w = 0; w < cfg_.assoc; ++w)
        if (base[w].valid && base[w].blockAddr == block_addr)
            return static_cast<int>(w);
    return -1;
}

std::span<const CacheBlock>
Cache::setBlocks(std::uint32_t set) const
{
    return {&blocks_[static_cast<std::size_t>(set) * cfg_.assoc],
            cfg_.assoc};
}

bool
Cache::probe(Addr block_addr) const
{
    return findWay(setIndex(block_addr), block_addr) >= 0;
}

void
Cache::invalidate(Addr block_addr)
{
    const std::uint32_t set = setIndex(block_addr);
    const int way = findWay(set, block_addr);
    if (way >= 0) {
        auto &blk = blocks_[static_cast<std::size_t>(set) * cfg_.assoc +
                            static_cast<std::uint32_t>(way)];
        policy_->onEvict(set, static_cast<std::uint32_t>(way), blk);
        blk.valid = false;
    }
}

bool
Cache::access(const AccessInfo &info, std::uint64_t now)
{
    const std::uint32_t set = setIndex(info.blockAddr);
    const int way = findWay(set, info.blockAddr);

    if (info.isWriteback) {
        ++stats_.writebackAccesses;
    } else {
        ++stats_.demandAccesses;
    }

    CacheBlock *blk = nullptr;
    if (way >= 0) {
        blk = &blocks_[static_cast<std::size_t>(set) * cfg_.assoc +
                       static_cast<std::uint32_t>(way)];
        if (info.isWriteback) {
            ++stats_.writebackHits;
            blk->dirty = true;
        } else {
            ++stats_.demandHits;
            blk->lastTouchTick = now;
            if (info.isWrite)
                blk->dirty = true;
        }
    } else {
        if (!info.isWriteback)
            ++stats_.demandMisses;
    }

    policy_->onAccess(set, way, blk, info);
    return way >= 0;
}

void
Cache::retireGeneration(std::uint32_t set, std::uint32_t way,
                        const CacheBlock &blk, std::uint64_t now)
{
    if (!blk.valid || now < blk.fillTick)
        return;
    const double live =
        static_cast<double>(blk.lastTouchTick - blk.fillTick);
    const double total = static_cast<double>(now - blk.fillTick);
    stats_.liveTime += live;
    stats_.totalTime += total;
    if (cfg_.trackEfficiency) {
        const std::size_t idx =
            static_cast<std::size_t>(set) * cfg_.assoc + way;
        frameLive_[idx] += live;
        frameTotal_[idx] += total;
    }
}

EvictedBlock
Cache::fill(const AccessInfo &info, std::uint64_t now)
{
    EvictedBlock evicted;
    const std::uint32_t set = setIndex(info.blockAddr);
    assert(findWay(set, info.blockAddr) < 0 && "fill of resident block");

    if (policy_->shouldBypass(set, info)) {
        ++stats_.bypasses;
        SDBP_TRACE_EVENT(trace_, now, obs::TraceEventKind::Bypass, set,
                         info.blockAddr, info.pc, true);
        return evicted;
    }

    // Prefer an invalid frame.
    auto *base = &blocks_[static_cast<std::size_t>(set) * cfg_.assoc];
    std::uint32_t way = cfg_.assoc;
    for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
        if (!base[w].valid) {
            way = w;
            break;
        }
    }
    if (way == cfg_.assoc) {
        way = policy_->victim(set, setBlocks(set), info);
        assert(way < cfg_.assoc);
        CacheBlock &victim_blk = base[way];
        retireGeneration(set, way, victim_blk, now);
        evicted.valid = true;
        evicted.dirty = victim_blk.dirty;
        evicted.blockAddr = victim_blk.blockAddr;
        evicted.owner = victim_blk.owner;
        ++stats_.evictions;
        if (victim_blk.dirty)
            ++stats_.dirtyEvictions;
        SDBP_TRACE_EVENT(trace_, now, obs::TraceEventKind::Eviction,
                         set, victim_blk.blockAddr, 0,
                         victim_blk.predictedDead);
        policy_->onEvict(set, way, victim_blk);
    }

    CacheBlock &blk = base[way];
    blk.blockAddr = info.blockAddr;
    blk.valid = true;
    blk.dirty = info.isWrite || info.isWriteback;
    blk.predictedDead = false;
    blk.owner = info.thread;
    blk.fillTick = now;
    blk.lastTouchTick = now;
    ++stats_.fills;
    SDBP_TRACE_EVENT(trace_, now, obs::TraceEventKind::Fill, set,
                     info.blockAddr, info.pc, false);
    policy_->onFill(set, way, blk, info);

#if SDBP_DCHECK_ENABLED
    // Periodic full audit in debug builds (amortized over 64K fills).
    if ((stats_.fills & 0xFFFFu) == 0)
        auditInvariants();
#endif
    return evicted;
}

void
Cache::finalizeEfficiency(std::uint64_t now)
{
    for (std::uint32_t s = 0; s < cfg_.numSets; ++s) {
        for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
            auto &blk = blocks_[static_cast<std::size_t>(s) *
                                cfg_.assoc + w];
            retireGeneration(s, w, blk, now);
            // Restart the generation so finalize is idempotent-ish
            // for continued simulation.
            if (blk.valid) {
                blk.fillTick = now;
                blk.lastTouchTick = now;
            }
        }
    }
}

double
Cache::frameEfficiency(std::uint32_t set, std::uint32_t way) const
{
    if (!cfg_.trackEfficiency)
        return 0.0;
    const std::size_t idx = static_cast<std::size_t>(set) * cfg_.assoc +
        way;
    return frameTotal_[idx] > 0 ? frameLive_[idx] / frameTotal_[idx]
                                : 0.0;
}

void
Cache::auditInvariants() const
{
#if SDBP_DCHECK_ENABLED
    for (std::uint32_t s = 0; s < cfg_.numSets; ++s) {
        const auto *base =
            &blocks_[static_cast<std::size_t>(s) * cfg_.assoc];
        for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
            const CacheBlock &blk = base[w];
            if (!blk.valid)
                continue;
            SDBP_DCHECK_EQ(setIndex(blk.blockAddr), s,
                           "resident block maps to a different set");
            SDBP_DCHECK_LE(blk.fillTick, blk.lastTouchTick,
                           "block generation timestamps inverted");
            for (std::uint32_t o = w + 1; o < cfg_.assoc; ++o)
                SDBP_DCHECK(!base[o].valid ||
                                base[o].blockAddr != blk.blockAddr,
                            "duplicate resident block in one set");
        }
    }
#endif // SDBP_DCHECK_ENABLED
}

void
Cache::clearStats()
{
    stats_ = CacheStats{};
    if (cfg_.trackEfficiency) {
        frameLive_.assign(blocks_.size(), 0.0);
        frameTotal_.assign(blocks_.size(), 0.0);
    }
}

} // namespace sdbp
