#include "cache/cache.hh"

#include "obs/stat_registry.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace sdbp
{

std::uint64_t
CacheConfig::sizeBytes() const
{
    return static_cast<std::uint64_t>(numSets) * assoc * blockBytes;
}

double
CacheStats::efficiency() const
{
    return totalTime > 0 ? liveTime / totalTime : 0.0;
}

void
CacheStats::registerStats(obs::StatRegistry &reg,
                          const std::string &prefix) const
{
    using obs::StatRegistry;
    reg.addCounter(StatRegistry::join(prefix, "demand_accesses"),
                   &demandAccesses);
    reg.addCounter(StatRegistry::join(prefix, "demand_hits"),
                   &demandHits);
    reg.addCounter(StatRegistry::join(prefix, "demand_misses"),
                   &demandMisses);
    reg.addCounter(StatRegistry::join(prefix, "writeback_accesses"),
                   &writebackAccesses);
    reg.addCounter(StatRegistry::join(prefix, "writeback_hits"),
                   &writebackHits);
    reg.addCounter(StatRegistry::join(prefix, "fills"), &fills);
    reg.addCounter(StatRegistry::join(prefix, "bypasses"), &bypasses);
    reg.addCounter(StatRegistry::join(prefix, "evictions"),
                   &evictions);
    reg.addCounter(StatRegistry::join(prefix, "dirty_evictions"),
                   &dirtyEvictions);
}

void
CacheBase::registerStats(obs::StatRegistry &reg,
                         const std::string &prefix) const
{
    stats_.registerStats(reg, prefix);
    reg.addGauge(obs::StatRegistry::join(prefix, "efficiency"),
                 [this] { return stats_.efficiency(); });
}

CacheBase::CacheBase(const CacheConfig &cfg,
                     ReplacementPolicy *policy_base)
    : cfg_(cfg), policyBase_(policy_base)
{
    if (!isPowerOfTwo(cfg_.numSets))
        fatal("cache '" + cfg_.name + "': numSets must be a power of 2");
    if (cfg_.assoc == 0)
        fatal("cache '" + cfg_.name + "': zero associativity");
    assert(policyBase_ != nullptr);
    assert(policyBase_->numSets() == cfg_.numSets);
    assert(policyBase_->assoc() == cfg_.assoc);

    const std::size_t frame_count =
        static_cast<std::size_t>(cfg_.numSets) * cfg_.assoc;
    tags_.assign(frame_count, SetView::kNoBlock);
    state_.assign(frame_count, 0);
    meta_.assign(frame_count, FrameMeta{});
    if (cfg_.trackEfficiency) {
        frameLive_.assign(frame_count, 0.0);
        frameTotal_.assign(frame_count, 0.0);
    }
}

CacheBlock
CacheBase::blockAt(std::uint32_t set, std::uint32_t way) const
{
    const std::size_t idx =
        static_cast<std::size_t>(set) * cfg_.assoc + way;
    CacheBlock blk;
    blk.valid = (state_[idx] & SetView::kValid) != 0;
    blk.blockAddr = blk.valid ? tags_[idx] : 0;
    blk.dirty = (state_[idx] & SetView::kDirty) != 0;
    blk.predictedDead = (state_[idx] & SetView::kDead) != 0;
    blk.owner = meta_[idx].owner;
    blk.fillTick = meta_[idx].fillTick;
    blk.lastTouchTick = meta_[idx].lastTouchTick;
    return blk;
}

bool
CacheBase::probe(Addr block_addr) const
{
    return findWay(setIndex(block_addr), block_addr) >= 0;
}

void
CacheBase::invalidate(Addr block_addr)
{
    const std::uint32_t set = setIndex(block_addr);
    const int way = findWay(set, block_addr);
    if (way >= 0) {
        const std::size_t idx =
            static_cast<std::size_t>(set) * cfg_.assoc +
            static_cast<std::uint32_t>(way);
        policyBase_->onEvict(set, static_cast<std::uint32_t>(way),
                             frames(set));
        tags_[idx] = SetView::kNoBlock;
        state_[idx] = 0;
    }
}

void
CacheBase::finalizeEfficiency(std::uint64_t now)
{
    for (std::uint32_t s = 0; s < cfg_.numSets; ++s) {
        for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
            const std::size_t idx =
                static_cast<std::size_t>(s) * cfg_.assoc + w;
            retireGeneration(s, w, now);
            // Restart the generation so finalize is idempotent-ish
            // for continued simulation.
            if (state_[idx] & SetView::kValid) {
                meta_[idx].fillTick = now;
                meta_[idx].lastTouchTick = now;
            }
        }
    }
}

double
CacheBase::frameEfficiency(std::uint32_t set, std::uint32_t way) const
{
    if (!cfg_.trackEfficiency)
        return 0.0;
    const std::size_t idx = static_cast<std::size_t>(set) * cfg_.assoc +
        way;
    return frameTotal_[idx] > 0 ? frameLive_[idx] / frameTotal_[idx]
                                : 0.0;
}

void
CacheBase::auditInvariants() const
{
#if SDBP_DCHECK_ENABLED
    for (std::uint32_t s = 0; s < cfg_.numSets; ++s) {
        const std::size_t base =
            static_cast<std::size_t>(s) * cfg_.assoc;
        for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
            const bool valid =
                (state_[base + w] & SetView::kValid) != 0;
            // SoA layout invariant: the tag sentinel and the valid
            // bit always agree, so the single-compare probe in
            // access() and the state-bit scan in fill() see the same
            // occupancy.
            SDBP_DCHECK_EQ(valid,
                           tags_[base + w] != SetView::kNoBlock,
                           "tag sentinel disagrees with valid bit");
            if (!valid)
                continue;
            SDBP_DCHECK_EQ(setIndex(tags_[base + w]), s,
                           "resident block maps to a different set");
            SDBP_DCHECK_LE(meta_[base + w].fillTick,
                           meta_[base + w].lastTouchTick,
                           "block generation timestamps inverted");
            for (std::uint32_t o = w + 1; o < cfg_.assoc; ++o)
                SDBP_DCHECK(!(state_[base + o] & SetView::kValid) ||
                                tags_[base + o] != tags_[base + w],
                            "duplicate resident block in one set");
        }
    }
#endif // SDBP_DCHECK_ENABLED
}

void
CacheBase::clearStats()
{
    stats_ = CacheStats{};
    if (cfg_.trackEfficiency) {
        frameLive_.assign(frameLive_.size(), 0.0);
        frameTotal_.assign(frameTotal_.size(), 0.0);
    }
}

} // namespace sdbp
