#include "cache/dead_block_policy.hh"

#include "obs/stat_registry.hh"
#include "util/stats.hh"

namespace sdbp
{

double
DbrbStats::coverage() const
{
    return ratio(static_cast<double>(positives),
                 static_cast<double>(predictions));
}

double
DbrbStats::falsePositiveRate() const
{
    return ratio(static_cast<double>(falsePositiveHits + bypassReuses),
                 static_cast<double>(predictions));
}

DeadBlockPolicyBase::DeadBlockPolicyBase(
    ReplacementPolicy *inner_base, DeadBlockPredictor *pred_base,
    const DeadBlockPolicyConfig &cfg)
    : ReplacementPolicy(inner_base->numSets(), inner_base->assoc()),
      cfg_(cfg), innerBase_(inner_base), predictorBase_(pred_base),
      liveness_(pred_base->livenessProbe())
{
    assert(innerBase_ && predictorBase_);
    bypassWindow_ = cfg_.bypassReuseWindow
        ? cfg_.bypassReuseWindow
        : static_cast<std::uint64_t>(numSets_) * assoc_;
    if (cfg_.fault.enabled()) {
        faults_ = std::make_unique<fault::FaultInjector>(cfg_.fault);
        predictorBase_->registerFaultTargets(*faults_);
    }
}

void
DeadBlockPolicyBase::noteBypass(Addr block_addr)
{
    // Bound the tracking map; a sweep every so often is cheap
    // relative to the accesses that grew it.
    if (recentBypasses_.size() > 4 * bypassWindow_) {
        const std::uint64_t horizon =
            stats_.predictions > bypassWindow_
                ? stats_.predictions - bypassWindow_
                : 0;
        std::erase_if(recentBypasses_, [horizon](const auto &kv) {
            return kv.second < horizon;
        });
    }
    recentBypasses_[block_addr] = stats_.predictions;
}

void
DeadBlockPolicyBase::checkBypassReuse(Addr block_addr)
{
    auto it = recentBypasses_.find(block_addr);
    if (it == recentBypasses_.end())
        return;
    if (stats_.predictions - it->second <= bypassWindow_)
        ++stats_.bypassReuses;
    recentBypasses_.erase(it);
}

void
DeadBlockPolicyBase::registerStats(obs::StatRegistry &reg,
                                   const std::string &prefix) const
{
    using obs::StatRegistry;
    reg.addCounter(StatRegistry::join(prefix, "predictions"),
                   &stats_.predictions);
    reg.addCounter(StatRegistry::join(prefix, "positives"),
                   &stats_.positives);
    reg.addCounter(StatRegistry::join(prefix, "false_positive_hits"),
                   &stats_.falsePositiveHits);
    reg.addCounter(StatRegistry::join(prefix, "bypass_reuses"),
                   &stats_.bypassReuses);
    reg.addCounter(StatRegistry::join(prefix, "dead_evictions"),
                   &stats_.deadEvictions);
    reg.addCounter(StatRegistry::join(prefix, "bypasses"),
                   &stats_.bypasses);
    confusion_.registerStats(reg,
                             StatRegistry::join(prefix, "confusion"));
    predictorBase_->registerStats(reg,
                                  StatRegistry::join(prefix, "pred"));
    if (faults_)
        faults_->registerStats(reg,
                               StatRegistry::join(prefix, "faults"));
}

std::string
DeadBlockPolicyBase::name() const
{
    return "dbrb-" + predictorBase_->name() + "-" + innerBase_->name();
}

} // namespace sdbp
