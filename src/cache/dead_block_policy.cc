#include "cache/dead_block_policy.hh"

#include <algorithm>
#include <cassert>

#include "obs/stat_registry.hh"
#include "obs/trace_sink.hh"
#include "util/stats.hh"

namespace sdbp
{

double
DbrbStats::coverage() const
{
    return ratio(static_cast<double>(positives),
                 static_cast<double>(predictions));
}

double
DbrbStats::falsePositiveRate() const
{
    return ratio(static_cast<double>(falsePositiveHits + bypassReuses),
                 static_cast<double>(predictions));
}

DeadBlockPolicy::DeadBlockPolicy(
    std::unique_ptr<ReplacementPolicy> inner,
    std::unique_ptr<DeadBlockPredictor> predictor,
    const DeadBlockPolicyConfig &cfg)
    : ReplacementPolicy(inner->numSets(), inner->assoc()),
      inner_(std::move(inner)), predictor_(std::move(predictor)),
      cfg_(cfg)
{
    assert(predictor_);
    bypassWindow_ = cfg_.bypassReuseWindow
        ? cfg_.bypassReuseWindow
        : static_cast<std::uint64_t>(numSets_) * assoc_;
    if (cfg_.fault.enabled()) {
        faults_ = std::make_unique<fault::FaultInjector>(cfg_.fault);
        predictor_->registerFaultTargets(*faults_);
    }
}

void
DeadBlockPolicy::noteBypass(Addr block_addr)
{
    // Bound the tracking map; a sweep every so often is cheap
    // relative to the accesses that grew it.
    if (recentBypasses_.size() > 4 * bypassWindow_) {
        const std::uint64_t horizon =
            stats_.predictions > bypassWindow_
                ? stats_.predictions - bypassWindow_
                : 0;
        std::erase_if(recentBypasses_, [horizon](const auto &kv) {
            return kv.second < horizon;
        });
    }
    recentBypasses_[block_addr] = stats_.predictions;
}

void
DeadBlockPolicy::checkBypassReuse(Addr block_addr)
{
    auto it = recentBypasses_.find(block_addr);
    if (it == recentBypasses_.end())
        return;
    if (stats_.predictions - it->second <= bypassWindow_)
        ++stats_.bypassReuses;
    recentBypasses_.erase(it);
}

void
DeadBlockPolicy::onAccess(std::uint32_t set, int hit_way,
                          CacheBlock *blk, const AccessInfo &info)
{
    if (info.isWriteback) {
        // Writebacks update recency but never touch the predictor.
        inner_->onAccess(set, hit_way, blk, info);
        lastPrediction_ = false;
        return;
    }

    ++stats_.predictions;
    // One injector tick per consultation — the rate is defined in
    // faults per million consultations, and tying the draw to this
    // (scheduling-independent) event keeps sweeps deterministic
    // across SDBP_JOBS values.
    if (faults_)
        faults_->onAccess();
    const bool dead = predictor_->onAccess(set, info.blockAddr,
                                           info.pc, info.thread);
    if (dead)
        ++stats_.positives;
    // The policy has no notion of time, so Prediction events are
    // keyed by the consultation index.
    SDBP_TRACE_EVENT(trace_, stats_.predictions,
                     obs::TraceEventKind::Prediction, set,
                     info.blockAddr, info.pc, dead);

    if (hit_way >= 0) {
        assert(blk != nullptr);
        // A demand hit proves the block was live; classify the
        // prediction bit it was carrying before re-predicting.
        if (blk->predictedDead) {
            ++stats_.falsePositiveHits;
            ++confusion_.deadHit;
        } else {
            ++confusion_.liveHit;
        }
        blk->predictedDead = dead;
    } else {
        lastPrediction_ = dead;
        checkBypassReuse(info.blockAddr);
    }
    inner_->onAccess(set, hit_way, blk, info);
}

bool
DeadBlockPolicy::shouldBypass(std::uint32_t set, const AccessInfo &info)
{
    (void)set;
    if (info.isWriteback || !cfg_.enableBypass || !lastPrediction_)
        return false;
    ++stats_.bypasses;
    noteBypass(info.blockAddr);
    return true;
}

std::uint32_t
DeadBlockPolicy::victim(std::uint32_t set,
                        std::span<const CacheBlock> blocks,
                        const AccessInfo &info)
{
    if (cfg_.enableDeadReplacement) {
        // Pick the predicted-dead block closest to eviction by the
        // default policy's own ranking.  Interval/time-based
        // predictors additionally report blocks that have become
        // dead since their last access.
        //
        // A recency grace period protects against mispredictions:
        // when the default policy exposes a meaningful recency
        // ranking (LRU and friends), only dead-marked blocks in the
        // colder half of the stack are preferred — a freshly touched
        // block whose mark is wrong gets a chance to prove itself,
        // while a genuinely dead block migrates into the cold half
        // within a few fills anyway.  Rank-less defaults (random)
        // keep the unconditional preference.
        const bool liveness = predictor_->hasLiveness();
        std::uint32_t max_rank = 0;
        for (std::uint32_t w = 0; w < assoc_; ++w)
            max_rank = std::max(max_rank, inner_->rank(set, w));
        const std::uint32_t grace =
            max_rank >= assoc_ / 2 ? assoc_ / 2 : 0;
        int best = -1;
        std::uint32_t best_rank = 0;
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            if (!blocks[w].valid)
                continue;
            const bool dead = blocks[w].predictedDead ||
                (liveness &&
                 predictor_->isDeadNow(set, blocks[w].blockAddr));
            if (!dead)
                continue;
            const std::uint32_t r = inner_->rank(set, w);
            if (r < grace)
                continue;
            if (best < 0 || r > best_rank) {
                best = static_cast<int>(w);
                best_rank = r;
            }
        }
        if (best >= 0) {
            ++stats_.deadEvictions;
            return static_cast<std::uint32_t>(best);
        }
    }
    return inner_->victim(set, blocks, info);
}

void
DeadBlockPolicy::onEvict(std::uint32_t set, std::uint32_t way,
                         const CacheBlock &blk)
{
    // Eviction without reuse proves the block was dead.
    if (blk.predictedDead)
        ++confusion_.deadEvicted;
    else
        ++confusion_.liveEvicted;
    predictor_->onEvict(set, blk.blockAddr);
    inner_->onEvict(set, way, blk);
}

void
DeadBlockPolicy::onFill(std::uint32_t set, std::uint32_t way,
                        CacheBlock &blk, const AccessInfo &info)
{
    if (!info.isWriteback) {
        predictor_->onFill(set, info.blockAddr, info.pc);
        // With bypass disabled a dead-on-arrival block is installed
        // but marked so it is the next preferred victim.
        blk.predictedDead = lastPrediction_;
    }
    inner_->onFill(set, way, blk, info);
}

std::uint32_t
DeadBlockPolicy::rank(std::uint32_t set, std::uint32_t way) const
{
    return inner_->rank(set, way);
}

void
DeadBlockPolicy::registerStats(obs::StatRegistry &reg,
                               const std::string &prefix) const
{
    using obs::StatRegistry;
    reg.addCounter(StatRegistry::join(prefix, "predictions"),
                   &stats_.predictions);
    reg.addCounter(StatRegistry::join(prefix, "positives"),
                   &stats_.positives);
    reg.addCounter(StatRegistry::join(prefix, "false_positive_hits"),
                   &stats_.falsePositiveHits);
    reg.addCounter(StatRegistry::join(prefix, "bypass_reuses"),
                   &stats_.bypassReuses);
    reg.addCounter(StatRegistry::join(prefix, "dead_evictions"),
                   &stats_.deadEvictions);
    reg.addCounter(StatRegistry::join(prefix, "bypasses"),
                   &stats_.bypasses);
    confusion_.registerStats(reg,
                             StatRegistry::join(prefix, "confusion"));
    predictor_->registerStats(reg, StatRegistry::join(prefix, "pred"));
    if (faults_)
        faults_->registerStats(reg,
                               StatRegistry::join(prefix, "faults"));
}

std::string
DeadBlockPolicy::name() const
{
    return "dbrb-" + predictor_->name() + "-" + inner_->name();
}

} // namespace sdbp
