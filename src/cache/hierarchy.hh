/**
 * @file
 * Three-level cache hierarchy: per-core L1D and L2, shared LLC —
 * the Nehalem-like configuration of Sec. VI-A.  Non-inclusive,
 * writeback caches; demand misses allocate at every level, while
 * writebacks update a present copy or forward down a level
 * (no-write-allocate), keeping content purely demand-driven.
 *
 * Split into HierarchyBase (geometry, stats, trace recording — the
 * type-erased face the runner and tools hold) and
 * BasicHierarchy<LlcP>, which binds the LLC policy type at compile
 * time.  The private L1/L2 levels are always true LRU in every
 * configuration, so they are hard-bound to BasicCache<LruPolicy> in
 * ALL instantiations — the whole per-access walk devirtualizes.
 * `Hierarchy` is the type-erased alias (virtual LLC policy dispatch).
 */

#ifndef SDBP_CACHE_HIERARCHY_HH
#define SDBP_CACHE_HIERARCHY_HH

#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "cache/lru.hh"
#include "cache/prefetcher.hh"
#include "trace/access.hh"
#include "util/hotpath.hh"

namespace sdbp
{

struct HierarchyConfig
{
    CacheConfig l1{.name = "L1D", .numSets = 64, .assoc = 8,
                   .latency = 3};
    CacheConfig l2{.name = "L2", .numSets = 512, .assoc = 8,
                   .latency = 12};
    CacheConfig llc{.name = "LLC", .numSets = 2048, .assoc = 16,
                    .latency = 30};
    /** DRAM access latency in cycles. */
    Cycle memLatency = 200;
    /**
     * Minimum cycles between successive DRAM accesses (shared
     * memory-bandwidth model; 0 = unlimited bandwidth).  Queueing
     * behind this bound is what makes shared-cache miss reductions
     * pay off superlinearly in multi-core runs, as on real machines.
     */
    Cycle memServiceInterval = 12;
    std::uint32_t numCores = 1;
    /** Optional LLC prefetcher (degree 0 = off). */
    PrefetcherConfig prefetch;
};

/** Reference to one LLC demand access, recorded for the optimal
 *  policy replay (Sec. VI-B). */
struct LlcRef
{
    Addr blockAddr;
    PC pc;
    ThreadId thread;
    bool isWrite;
};

/** Where an access was finally serviced. */
enum class ServiceLevel { L1, L2, Llc, Memory };

struct HierarchyResult
{
    Cycle latency = 0;
    ServiceLevel level = ServiceLevel::L1;
    bool llcAccess = false;
    bool llcMiss = false;
};

/**
 * LLC-policy-type-erased part of the hierarchy: everything off the
 * per-access path.  access() is virtual here as the slow-path entry;
 * the sealed engine drives the concrete BasicHierarchy directly.
 */
class HierarchyBase
{
  public:
    virtual ~HierarchyBase() = default;

    HierarchyBase(const HierarchyBase &) = delete;
    HierarchyBase &operator=(const HierarchyBase &) = delete;

    /**
     * Perform one demand access issued by core acc.thread.
     *
     * @param now monotonic tick for live/dead-time accounting
     */
    virtual HierarchyResult access(const Access &acc,
                                   std::uint64_t now) = 0;

    CacheBase &l1(ThreadId core) { return *l1View_[core]; }
    CacheBase &l2(ThreadId core) { return *l2View_[core]; }
    CacheBase &llc() { return *llcView_; }
    const CacheBase &llc() const { return *llcView_; }
    const Prefetcher &prefetcher() const { return prefetcher_; }
    const HierarchyConfig &config() const { return cfg_; }

    /** Number of DRAM reads (LLC demand misses). */
    std::uint64_t memReads() const { return memReads_; }
    /** Number of DRAM writes (dirty LLC evictions). */
    std::uint64_t memWrites() const { return memWrites_; }

    /**
     * When set, every LLC demand access is appended to @p out so an
     * optimal policy can be replayed over the same reference stream.
     */
    void recordLlcTrace(std::vector<LlcRef> *out) { llcTrace_ = out; }

    /**
     * Trace index at the last clearStats() call — i.e. where the
     * measurement phase begins within the recorded trace.
     */
    std::size_t llcTraceMark() const { return llcTraceMark_; }

    /** Clear statistics in every cache (content is preserved). */
    void clearStats();

    /**
     * Register every cache's counters plus the DRAM traffic counters:
     * "coreN.l1.*", "coreN.l2.*", "llc.*", "mem.reads", "mem.writes".
     */
    void registerStats(obs::StatRegistry &reg) const;

    /** Attach an event-trace sink to the LLC (nullptr detaches). */
    void setTraceSink(obs::TraceSink *sink)
    {
        llcView_->setTraceSink(sink);
    }

  protected:
    explicit HierarchyBase(const HierarchyConfig &cfg);

    HierarchyConfig cfg_;
    Prefetcher prefetcher_;
    std::uint64_t memReads_ = 0;
    std::uint64_t memWrites_ = 0;
    std::vector<LlcRef> *llcTrace_ = nullptr;
    std::size_t llcTraceMark_ = 0;
    /** Type-erased views of the subclass-owned caches. */
    std::vector<CacheBase *> l1View_;
    std::vector<CacheBase *> l2View_;
    CacheBase *llcView_ = nullptr;
};

/**
 * The hierarchy with the LLC policy type bound at compile time.  The
 * private levels are BasicCache<LruPolicy> regardless of LlcP, so a
 * sealed instantiation's demand path has no virtual call at all.
 */
template <class LlcP>
class BasicHierarchy final : public HierarchyBase
{
  public:
    using PrivateCache = BasicCache<LruPolicy>;
    using LlcCache = BasicCache<LlcP>;

    /**
     * @param cfg geometry; cfg.llc describes the single shared LLC
     * @param llc_policy replacement policy for the LLC
     */
    BasicHierarchy(const HierarchyConfig &cfg,
                   std::unique_ptr<LlcP> llc_policy)
        : HierarchyBase(cfg)
    {
        for (std::uint32_t c = 0; c < cfg_.numCores; ++c) {
            l1_.push_back(std::make_unique<PrivateCache>(
                cfg_.l1,
                std::make_unique<LruPolicy>(cfg_.l1.numSets,
                                            cfg_.l1.assoc)));
            l2_.push_back(std::make_unique<PrivateCache>(
                cfg_.l2,
                std::make_unique<LruPolicy>(cfg_.l2.numSets,
                                            cfg_.l2.assoc)));
            l1View_.push_back(l1_.back().get());
            l2View_.push_back(l2_.back().get());
        }
        assert(llc_policy->numSets() == cfg_.llc.numSets);
        llc_ = std::make_unique<LlcCache>(cfg_.llc,
                                          std::move(llc_policy));
        llcView_ = llc_.get();
    }

    /** Typed accessors (shadow the CacheBase views). */
    PrivateCache &l1(ThreadId core) { return *l1_[core]; }
    PrivateCache &l2(ThreadId core) { return *l2_[core]; }
    LlcCache &llc() { return *llc_; }
    const LlcCache &llc() const { return *llc_; }

    /**
     * Software-prefetch the set lanes a future access will touch.
     * Issued by the system while it simulates access i of a batch
     * for access i+k (DESIGN.md §15); a pure host-cache hint —
     * simulated state is untouched.  L2 and LLC lanes only: a
     * per-core L1's lanes (~10 KiB) are host-resident already, so
     * hinting them costs issue slots and hides nothing.
     */
    SDBP_HOT_PATH SDBP_ALWAYS_INLINE void
    prefetchAhead(Addr block, ThreadId core) const
    {
        l2_[core]->prefetchFor(block);
        llc_->prefetchFor(block);
    }

    SDBP_HOT_PATH HierarchyResult
    access(const Access &acc, std::uint64_t now) override
    {
        const ThreadId core = acc.thread;
        assert(core < cfg_.numCores);
        HierarchyResult res;

        // L1
        res.latency = cfg_.l1.latency;
        if (l1_[core]->access(acc, now)) {
            res.level = ServiceLevel::L1;
            return res;
        }

        // L2
        res.latency += cfg_.l2.latency;
        const bool l2_hit = l2_[core]->access(acc, now);

        bool llc_hit = true;
        if (!l2_hit) {
            // LLC (shared)
            res.latency += cfg_.llc.latency;
            res.llcAccess = true;
            if (llcTrace_) {
                llcTrace_->push_back({acc.blockAddr(), acc.pc, core,
                                      acc.isWrite});
            }
            llc_hit = llc_->access(acc, now);
            if (!llc_hit) {
                // Memory
                res.latency += cfg_.memLatency;
                res.llcMiss = true;
                ++memReads_;
                const EvictedBlock ev = llc_->fill(acc, now);
                if (ev.valid && ev.dirty)
                    ++memWrites_;
                if (prefetcher_.enabled()) {
                    prefetcher_.onDemandMiss(*llc_, acc.blockAddr(),
                                             acc.pc, core, now);
                }
            }

            // Fill L2 on the way back up.
            const EvictedBlock ev2 = l2_[core]->fill(acc, now);
            if (ev2.valid && ev2.dirty)
                writebackToLlc(ev2.blockAddr, ev2.owner, now);
        }

        // Fill L1.
        const EvictedBlock ev1 = l1_[core]->fill(acc, now);
        if (ev1.valid && ev1.dirty)
            writebackToL2(core, ev1.blockAddr, ev1.owner, now);

        res.level = l2_hit ? ServiceLevel::L2
            : llc_hit ? ServiceLevel::Llc : ServiceLevel::Memory;
        return res;
    }

  private:
    // Writebacks update a present copy but never allocate: a miss
    // forwards the data down a level (and past the LLC, to memory).
    // Keeping cache content purely demand-driven is what makes the
    // recorded LLC demand stream a sound input for the
    // optimal-policy replay (Sec. VI-B).
    SDBP_HOT_PATH void
    writebackToL2(ThreadId core, Addr block_addr, ThreadId owner,
                  std::uint64_t now)
    {
        const Access wb = Access::writebackOf(block_addr, owner);
        if (!l2_[core]->access(wb, now))
            writebackToLlc(block_addr, owner, now);
    }

    SDBP_HOT_PATH void
    writebackToLlc(Addr block_addr, ThreadId owner, std::uint64_t now)
    {
        const Access wb = Access::writebackOf(block_addr, owner);
        if (!llc_->access(wb, now))
            ++memWrites_;
    }

    std::vector<std::unique_ptr<PrivateCache>> l1_;
    std::vector<std::unique_ptr<PrivateCache>> l2_;
    std::unique_ptr<LlcCache> llc_;
};

/** The type-erased hierarchy: virtual LLC policy dispatch. */
using Hierarchy = BasicHierarchy<ReplacementPolicy>;

} // namespace sdbp

#endif // SDBP_CACHE_HIERARCHY_HH
