/**
 * @file
 * Three-level cache hierarchy: per-core L1D and L2, shared LLC —
 * the Nehalem-like configuration of Sec. VI-A.  Non-inclusive,
 * writeback caches; demand misses allocate at every level, while
 * writebacks update a present copy or forward down a level
 * (no-write-allocate), keeping content purely demand-driven.
 */

#ifndef SDBP_CACHE_HIERARCHY_HH
#define SDBP_CACHE_HIERARCHY_HH

#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "cache/prefetcher.hh"
#include "trace/access.hh"

namespace sdbp
{

struct HierarchyConfig
{
    CacheConfig l1{.name = "L1D", .numSets = 64, .assoc = 8,
                   .latency = 3};
    CacheConfig l2{.name = "L2", .numSets = 512, .assoc = 8,
                   .latency = 12};
    CacheConfig llc{.name = "LLC", .numSets = 2048, .assoc = 16,
                    .latency = 30};
    /** DRAM access latency in cycles. */
    Cycle memLatency = 200;
    /**
     * Minimum cycles between successive DRAM accesses (shared
     * memory-bandwidth model; 0 = unlimited bandwidth).  Queueing
     * behind this bound is what makes shared-cache miss reductions
     * pay off superlinearly in multi-core runs, as on real machines.
     */
    Cycle memServiceInterval = 12;
    std::uint32_t numCores = 1;
    /** Optional LLC prefetcher (degree 0 = off). */
    PrefetcherConfig prefetch;
};

/** Reference to one LLC demand access, recorded for the optimal
 *  policy replay (Sec. VI-B). */
struct LlcRef
{
    Addr blockAddr;
    PC pc;
    ThreadId thread;
    bool isWrite;
};

/** Where an access was finally serviced. */
enum class ServiceLevel { L1, L2, Llc, Memory };

struct HierarchyResult
{
    Cycle latency = 0;
    ServiceLevel level = ServiceLevel::L1;
    bool llcAccess = false;
    bool llcMiss = false;
};

class Hierarchy
{
  public:
    /**
     * @param cfg geometry; cfg.llc describes the single shared LLC
     * @param llc_policy replacement policy for the LLC
     * @param make_private_policy factory for L1/L2 policies; when
     *        null, true LRU is used (the standard configuration)
     */
    Hierarchy(const HierarchyConfig &cfg,
              std::unique_ptr<ReplacementPolicy> llc_policy);

    /**
     * Perform one demand access from @p core.
     *
     * @param now monotonic tick for live/dead-time accounting
     */
    HierarchyResult access(ThreadId core, const MemAccess &acc,
                           std::uint64_t now);

    Cache &l1(ThreadId core) { return *l1_[core]; }
    const Prefetcher &prefetcher() const { return prefetcher_; }
    Cache &l2(ThreadId core) { return *l2_[core]; }
    Cache &llc() { return *llc_; }
    const Cache &llc() const { return *llc_; }
    const HierarchyConfig &config() const { return cfg_; }

    /** Number of DRAM reads (LLC demand misses). */
    std::uint64_t memReads() const { return memReads_; }
    /** Number of DRAM writes (dirty LLC evictions). */
    std::uint64_t memWrites() const { return memWrites_; }

    /**
     * When set, every LLC demand access is appended to @p out so an
     * optimal policy can be replayed over the same reference stream.
     */
    void recordLlcTrace(std::vector<LlcRef> *out) { llcTrace_ = out; }

    /**
     * Trace index at the last clearStats() call — i.e. where the
     * measurement phase begins within the recorded trace.
     */
    std::size_t llcTraceMark() const { return llcTraceMark_; }

    /** Clear statistics in every cache (content is preserved). */
    void clearStats();

    /**
     * Register every cache's counters plus the DRAM traffic counters:
     * "coreN.l1.*", "coreN.l2.*", "llc.*", "mem.reads", "mem.writes".
     */
    void registerStats(obs::StatRegistry &reg) const;

    /** Attach an event-trace sink to the LLC (nullptr detaches). */
    void setTraceSink(obs::TraceSink *sink) { llc_->setTraceSink(sink); }

  private:
    void writebackTo(int level, ThreadId core, Addr block_addr,
                     ThreadId owner, std::uint64_t now);

    HierarchyConfig cfg_;
    std::vector<std::unique_ptr<Cache>> l1_;
    std::vector<std::unique_ptr<Cache>> l2_;
    std::unique_ptr<Cache> llc_;
    Prefetcher prefetcher_;
    std::uint64_t memReads_ = 0;
    std::uint64_t memWrites_ = 0;
    std::vector<LlcRef> *llcTrace_ = nullptr;
    std::size_t llcTraceMark_ = 0;
};

} // namespace sdbp

#endif // SDBP_CACHE_HIERARCHY_HH
