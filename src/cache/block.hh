/**
 * @file
 * Per-block cache state.
 */

#ifndef SDBP_CACHE_BLOCK_HH
#define SDBP_CACHE_BLOCK_HH

#include <cstdint>

#include "util/types.hh"

namespace sdbp
{

/**
 * One cache block frame.  Replacement-policy state (LRU stacks,
 * RRPVs, ...) lives inside the policy objects, not here; the only
 * optimization metadata carried by the block itself is the single
 * predicted-dead bit, exactly as in the paper (Sec. III-C).
 */
struct CacheBlock
{
    /** Full block address (block-aligned address >> 6). */
    Addr blockAddr = 0;
    bool valid = false;
    bool dirty = false;
    /** The one bit of dead-block metadata per block. */
    bool predictedDead = false;
    /** Thread that filled the block (multi-core bookkeeping). */
    ThreadId owner = 0;
    /** Tick of fill, for live/dead-time accounting. */
    std::uint64_t fillTick = 0;
    /** Tick of the most recent demand touch. */
    std::uint64_t lastTouchTick = 0;
};

} // namespace sdbp

#endif // SDBP_CACHE_BLOCK_HH
