#include "cache/hierarchy.hh"

#include "obs/stat_registry.hh"
#include "util/logging.hh"

namespace sdbp
{

HierarchyBase::HierarchyBase(const HierarchyConfig &cfg)
    : cfg_(cfg), prefetcher_(cfg.prefetch)
{
    if (cfg_.numCores == 0)
        fatal("hierarchy needs at least one core");
}

void
HierarchyBase::registerStats(obs::StatRegistry &reg) const
{
    for (std::uint32_t c = 0; c < cfg_.numCores; ++c) {
        const std::string core = "core" + std::to_string(c);
        l1View_[c]->registerStats(reg, core + ".l1");
        l2View_[c]->registerStats(reg, core + ".l2");
    }
    llcView_->registerStats(reg, "llc");
    reg.addCounter("mem.reads", &memReads_);
    reg.addCounter("mem.writes", &memWrites_);
}

void
HierarchyBase::clearStats()
{
    for (CacheBase *c : l1View_)
        c->clearStats();
    for (CacheBase *c : l2View_)
        c->clearStats();
    llcView_->clearStats();
    memReads_ = 0;
    memWrites_ = 0;
    if (llcTrace_)
        llcTraceMark_ = llcTrace_->size();
}

} // namespace sdbp
