#include "cache/hierarchy.hh"

#include <cassert>

#include "cache/lru.hh"
#include "obs/stat_registry.hh"
#include "util/logging.hh"

namespace sdbp
{

Hierarchy::Hierarchy(const HierarchyConfig &cfg,
                     std::unique_ptr<ReplacementPolicy> llc_policy)
    : cfg_(cfg)
{
    if (cfg_.numCores == 0)
        fatal("hierarchy needs at least one core");
    for (std::uint32_t c = 0; c < cfg_.numCores; ++c) {
        l1_.push_back(std::make_unique<Cache>(
            cfg_.l1, std::make_unique<LruPolicy>(cfg_.l1.numSets,
                                                 cfg_.l1.assoc)));
        l2_.push_back(std::make_unique<Cache>(
            cfg_.l2, std::make_unique<LruPolicy>(cfg_.l2.numSets,
                                                 cfg_.l2.assoc)));
    }
    assert(llc_policy->numSets() == cfg_.llc.numSets);
    llc_ = std::make_unique<Cache>(cfg_.llc, std::move(llc_policy));
    prefetcher_ = Prefetcher(cfg_.prefetch);
}

void
Hierarchy::writebackTo(int level, ThreadId core, Addr block_addr,
                       ThreadId owner, std::uint64_t now)
{
    // level: 2 = L2, 3 = LLC, 4 = memory.
    if (level >= 4) {
        ++memWrites_;
        return;
    }
    Cache &target = level == 2 ? *l2_[core] : *llc_;
    AccessInfo info;
    info.blockAddr = block_addr;
    info.thread = owner;
    info.isWrite = true;
    info.isWriteback = true;
    // Writebacks update a present copy but never allocate: a miss
    // forwards the data down a level.  Keeping cache content purely
    // demand-driven is what makes the recorded LLC demand stream a
    // sound input for the optimal-policy replay (Sec. VI-B).
    if (!target.access(info, now))
        writebackTo(level + 1, core, block_addr, owner, now);
}

HierarchyResult
Hierarchy::access(ThreadId core, const MemAccess &acc, std::uint64_t now)
{
    assert(core < cfg_.numCores);
    HierarchyResult res;

    AccessInfo info;
    info.pc = acc.pc;
    info.blockAddr = acc.blockAddr();
    info.thread = core;
    info.isWrite = acc.isWrite;

    // L1
    res.latency = cfg_.l1.latency;
    if (l1_[core]->access(info, now)) {
        res.level = ServiceLevel::L1;
        return res;
    }

    // L2
    res.latency += cfg_.l2.latency;
    const bool l2_hit = l2_[core]->access(info, now);

    bool llc_hit = true;
    if (!l2_hit) {
        // LLC (shared)
        res.latency += cfg_.llc.latency;
        res.llcAccess = true;
        if (llcTrace_) {
            llcTrace_->push_back({info.blockAddr, info.pc, core,
                                  info.isWrite});
        }
        llc_hit = llc_->access(info, now);
        if (!llc_hit) {
            // Memory
            res.latency += cfg_.memLatency;
            res.llcMiss = true;
            ++memReads_;
            const EvictedBlock ev = llc_->fill(info, now);
            if (ev.valid && ev.dirty)
                writebackTo(4, core, ev.blockAddr, ev.owner, now);
            if (prefetcher_.enabled()) {
                prefetcher_.onDemandMiss(*llc_, info.blockAddr,
                                         info.pc, core, now);
            }
        }

        // Fill L2 on the way back up.
        const EvictedBlock ev2 = l2_[core]->fill(info, now);
        if (ev2.valid && ev2.dirty)
            writebackTo(3, core, ev2.blockAddr, ev2.owner, now);
    }

    // Fill L1.
    const EvictedBlock ev1 = l1_[core]->fill(info, now);
    if (ev1.valid && ev1.dirty)
        writebackTo(2, core, ev1.blockAddr, ev1.owner, now);

    res.level = l2_hit ? ServiceLevel::L2
        : llc_hit ? ServiceLevel::Llc : ServiceLevel::Memory;
    return res;
}

void
Hierarchy::registerStats(obs::StatRegistry &reg) const
{
    for (std::uint32_t c = 0; c < cfg_.numCores; ++c) {
        const std::string core = "core" + std::to_string(c);
        l1_[c]->registerStats(reg, core + ".l1");
        l2_[c]->registerStats(reg, core + ".l2");
    }
    llc_->registerStats(reg, "llc");
    reg.addCounter("mem.reads", &memReads_);
    reg.addCounter("mem.writes", &memWrites_);
}

void
Hierarchy::clearStats()
{
    for (auto &c : l1_)
        c->clearStats();
    for (auto &c : l2_)
        c->clearStats();
    llc_->clearStats();
    memReads_ = 0;
    memWrites_ = 0;
    if (llcTrace_)
        llcTraceMark_ = llcTrace_->size();
}

} // namespace sdbp
