/**
 * @file
 * True-LRU replacement, the paper's baseline policy.
 *
 * The hooks are defined inline: LRU runs on every L1/L2 access, so
 * the devirtualized BasicCache<LruPolicy> instantiation inlines the
 * whole recency update into the access loop.
 *
 * Recency is kept as per-frame timestamps drawn from two per-set
 * clocks (one counting up for MRU insertions, one counting down for
 * LRU insertions), so the hot hooks — hit promotion and fill — are a
 * single store instead of an O(assoc) stack shift.  Stamps within a
 * set are always distinct, so the induced order is a total recency
 * order identical to an explicit-position LRU stack; the stack view
 * (rank / stackPosition / victim) is recovered by comparing stamps.
 */

#ifndef SDBP_CACHE_LRU_HH
#define SDBP_CACHE_LRU_HH

#include <cstdint>
#include <vector>

#include "cache/policy.hh"
#include "util/arena.hh"
#include "util/hotpath.hh"
#include "util/simd.hh"

namespace sdbp
{

/**
 * True LRU: rank 0 is MRU, rank assoc-1 is LRU.
 */
class LruPolicy final : public ReplacementPolicy
{
  public:
    LruPolicy(std::uint32_t num_sets, std::uint32_t assoc);

    SDBP_HOT_PATH void
    onAccess(std::uint32_t set, int hit_way, SetView frames,
             const Access &a) override
    {
        (void)frames;
        (void)a;
        if (hit_way >= 0)
            stamp_[set * assoc_ + static_cast<std::uint32_t>(hit_way)] =
                ++high_[set];
    }

    SDBP_HOT_PATH std::uint32_t
    victim(std::uint32_t set, SetView frames, const Access &a) override
    {
        (void)frames;
        (void)a;
        // SIMD min-reduce over the stamp lane; first-minimum
        // semantics match the scalar strict-< walk exactly.
        return simd::minStampIndex(&stamp_[set * assoc_], assoc_);
    }

    SDBP_HOT_PATH void
    onFill(std::uint32_t set, std::uint32_t way, SetView frames,
           const Access &a) override
    {
        (void)frames;
        (void)a;
        stamp_[set * assoc_ + way] = ++high_[set];
    }

    SDBP_HOT_PATH std::uint32_t
    rank(std::uint32_t set, std::uint32_t way) const override
    {
        const auto *base = &stamp_[set * assoc_];
        const std::int64_t mine = base[way];
        std::uint32_t r = 0;
        for (std::uint32_t w = 0; w < assoc_; ++w)
            r += base[w] > mine;
        return r;
    }

    std::string name() const override { return "lru"; }

    /** Current stack position of a way (0 = MRU). */
    std::uint32_t
    stackPosition(std::uint32_t set, std::uint32_t way) const
    {
        return rank(set, way);
    }

    /**
     * Promote a way to a given stack position (0 = MRU); used by the
     * insertion-policy variants (LIP/BIP) that install at LRU.  The
     * two positions insertion policies use — MRU and LRU — are O(1);
     * an interior position rebuilds the set's order.
     */
    void moveTo(std::uint32_t set, std::uint32_t way,
                std::uint32_t target_pos);

    /**
     * Pull the set's stamp lane into the host cache ahead of an
     * upcoming access (read hint; no state change).
     */
    SDBP_HOT_PATH SDBP_ALWAYS_INLINE void
    prefetchSet(std::uint32_t set) const
    {
        __builtin_prefetch(&stamp_[set * assoc_], 0, 3);
    }

  private:
    /** stamp_[set * assoc + way]: larger = more recently used. */
    ArenaVector<std::int64_t> stamp_;
    /** Scratch way ordering for interior moveTo, allocated once so
     *  the hot path never touches the heap. */
    ArenaVector<std::uint32_t> scratch_;
    /** Per-set MRU clock (counts up). */
    ArenaVector<std::int64_t> high_;
    /** Per-set LRU clock (counts down). */
    ArenaVector<std::int64_t> low_;
};

} // namespace sdbp

#endif // SDBP_CACHE_LRU_HH
