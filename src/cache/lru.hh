/**
 * @file
 * True-LRU replacement, the paper's baseline policy.
 */

#ifndef SDBP_CACHE_LRU_HH
#define SDBP_CACHE_LRU_HH

#include <vector>

#include "cache/policy.hh"

namespace sdbp
{

/**
 * True LRU via explicit stack positions: position 0 is MRU,
 * position assoc-1 is LRU.
 */
class LruPolicy : public ReplacementPolicy
{
  public:
    LruPolicy(std::uint32_t num_sets, std::uint32_t assoc);

    void onAccess(std::uint32_t set, int hit_way, CacheBlock *blk,
                  const AccessInfo &info) override;
    std::uint32_t victim(std::uint32_t set,
                         std::span<const CacheBlock> blocks,
                         const AccessInfo &info) override;
    void onFill(std::uint32_t set, std::uint32_t way, CacheBlock &blk,
                const AccessInfo &info) override;
    std::uint32_t rank(std::uint32_t set, std::uint32_t way)
        const override;
    std::string name() const override { return "lru"; }

    /** Current stack position of a way (0 = MRU). */
    std::uint32_t
    stackPosition(std::uint32_t set, std::uint32_t way) const
    {
        return pos_[set * assoc_ + way];
    }

    /**
     * Promote a way to a given stack position (0 = MRU); used by the
     * insertion-policy variants (LIP/BIP) that install at LRU.
     */
    void moveTo(std::uint32_t set, std::uint32_t way,
                std::uint32_t target_pos);

  private:
    /** pos_[set * assoc + way] = stack position of that way. */
    std::vector<std::uint8_t> pos_;
};

} // namespace sdbp

#endif // SDBP_CACHE_LRU_HH
