/**
 * @file
 * Dead-block-directed prefetching — the optimization dead block
 * prediction was originally invented for (Lai et al., ISCA 2001,
 * Sec. II-A1) and one of the "optimizations other than replacement
 * and bypass" the paper's future work points at (Sec. VIII).
 *
 * A simple next-N-line prefetcher runs at the LLC.  Prefetched
 * blocks are only installed into frames that are invalid or hold a
 * predicted-dead block, so useful data is never displaced by
 * speculation ("prefetch without pollution").
 */

#ifndef SDBP_CACHE_PREFETCHER_HH
#define SDBP_CACHE_PREFETCHER_HH

#include <cstdint>

#include "cache/cache.hh"

namespace sdbp
{

struct PrefetcherConfig
{
    /** Next-N-line degree (0 disables prefetching). */
    unsigned degree = 0;
    /**
     * Require an invalid or predicted-dead frame to install a
     * prefetch; with false, prefetches replace via the policy like
     * demand fills (the polluting baseline).
     */
    bool deadBlockDirected = true;
};

struct PrefetcherStats
{
    std::uint64_t issued = 0;
    /** Dropped: target already resident. */
    std::uint64_t redundant = 0;
    /** Dropped: no dead/invalid frame available. */
    std::uint64_t noDeadFrame = 0;
    std::uint64_t installed = 0;
};

/**
 * Next-N-line LLC prefetcher with dead-block-directed placement.
 * Driven by the hierarchy on every demand LLC miss.  The methods are
 * templates over the concrete cache type so a devirtualized LLC
 * keeps its fill path inline through the prefetcher too.
 */
class Prefetcher
{
  public:
    explicit Prefetcher(const PrefetcherConfig &cfg = {}) : cfg_(cfg) {}

    /** A demand miss for @p block_addr was serviced; prefetch ahead. */
    template <class C>
    void
    onDemandMiss(C &llc, Addr block_addr, PC pc, ThreadId thread,
                 std::uint64_t now)
    {
        for (unsigned i = 1; i <= cfg_.degree; ++i) {
            ++stats_.issued;
            tryInstall(llc, block_addr + i, pc, thread, now);
        }
    }

    const PrefetcherConfig &config() const { return cfg_; }
    const PrefetcherStats &stats() const { return stats_; }
    bool enabled() const { return cfg_.degree > 0; }

  private:
    template <class C>
    bool
    tryInstall(C &llc, Addr block_addr, PC pc, ThreadId thread,
               std::uint64_t now)
    {
        if (llc.probe(block_addr)) {
            ++stats_.redundant;
            return false;
        }

        if (cfg_.deadBlockDirected) {
            // Only install when an invalid or predicted-dead frame
            // can absorb the speculation.
            const std::uint32_t set = llc.setIndex(block_addr);
            SetView frames = llc.frames(set);
            bool has_frame = false;
            for (std::uint32_t w = 0; w < frames.assoc(); ++w) {
                if (!frames.valid(w) || frames.predictedDead(w)) {
                    has_frame = true;
                    break;
                }
            }
            if (!has_frame) {
                ++stats_.noDeadFrame;
                return false;
            }
        }

        llc.fill(Access::atBlock(block_addr, pc, thread), now);
        // The policy may still decline (bypass); only count real
        // installs.
        if (!llc.probe(block_addr))
            return false;
        ++stats_.installed;
        return true;
    }

    PrefetcherConfig cfg_;
    PrefetcherStats stats_;
};

} // namespace sdbp

#endif // SDBP_CACHE_PREFETCHER_HH
