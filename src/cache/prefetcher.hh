/**
 * @file
 * Dead-block-directed prefetching — the optimization dead block
 * prediction was originally invented for (Lai et al., ISCA 2001,
 * Sec. II-A1) and one of the "optimizations other than replacement
 * and bypass" the paper's future work points at (Sec. VIII).
 *
 * A simple next-N-line prefetcher runs at the LLC.  Prefetched
 * blocks are only installed into frames that are invalid or hold a
 * predicted-dead block, so useful data is never displaced by
 * speculation ("prefetch without pollution").
 */

#ifndef SDBP_CACHE_PREFETCHER_HH
#define SDBP_CACHE_PREFETCHER_HH

#include <cstdint>

#include "cache/cache.hh"

namespace sdbp
{

struct PrefetcherConfig
{
    /** Next-N-line degree (0 disables prefetching). */
    unsigned degree = 0;
    /**
     * Require an invalid or predicted-dead frame to install a
     * prefetch; with false, prefetches replace via the policy like
     * demand fills (the polluting baseline).
     */
    bool deadBlockDirected = true;
};

struct PrefetcherStats
{
    std::uint64_t issued = 0;
    /** Dropped: target already resident. */
    std::uint64_t redundant = 0;
    /** Dropped: no dead/invalid frame available. */
    std::uint64_t noDeadFrame = 0;
    std::uint64_t installed = 0;
};

/**
 * Next-N-line LLC prefetcher with dead-block-directed placement.
 * Driven by the hierarchy on every demand LLC miss.
 */
class Prefetcher
{
  public:
    explicit Prefetcher(const PrefetcherConfig &cfg = {});

    /** A demand miss for @p block_addr was serviced; prefetch ahead. */
    void onDemandMiss(Cache &llc, Addr block_addr, PC pc,
                      ThreadId thread, std::uint64_t now);

    const PrefetcherConfig &config() const { return cfg_; }
    const PrefetcherStats &stats() const { return stats_; }
    bool enabled() const { return cfg_.degree > 0; }

  private:
    bool tryInstall(Cache &llc, Addr block_addr, PC pc,
                    ThreadId thread, std::uint64_t now);

    PrefetcherConfig cfg_;
    PrefetcherStats stats_;
};

} // namespace sdbp

#endif // SDBP_CACHE_PREFETCHER_HH
