#include "cache/random_repl.hh"

namespace sdbp
{

RandomPolicy::RandomPolicy(std::uint32_t num_sets, std::uint32_t assoc,
                           std::uint64_t seed)
    : ReplacementPolicy(num_sets, assoc), rng_(seed)
{
}

std::uint32_t
RandomPolicy::victim(std::uint32_t set, SetView frames,
                     const Access &a)
{
    (void)set;
    (void)frames;
    (void)a;
    return static_cast<std::uint32_t>(rng_.below(assoc_));
}

} // namespace sdbp
