#include "cache/rrip.hh"

#include <algorithm>
#include <cassert>

namespace sdbp
{

RripPolicy::RripPolicy(std::uint32_t num_sets, std::uint32_t assoc,
                       const RripConfig &cfg)
    : ReplacementPolicy(num_sets, assoc), cfg_(cfg), rng_(cfg.seed)
{
    assert(cfg_.rrpvBits >= 1 && cfg_.rrpvBits <= 8);
    rrpvMax_ = (1u << cfg_.rrpvBits) - 1;
    // New frames start "distant" so invalid ways are natural victims.
    rrpv_.assign(num_sets * assoc, static_cast<std::uint8_t>(rrpvMax_));
    pselMax_ = (1u << cfg_.pselBits) - 1;
    psel_.assign(std::max<std::uint32_t>(1, cfg_.numThreads),
                 (pselMax_ + 1) / 2);
    leaderPeriod_ =
        std::max<std::uint32_t>(1, num_sets / cfg_.leaderSetsPerPolicy);
    if (cfg_.mode == RripMode::DRrip)
        assert(2 * cfg_.numThreads <= leaderPeriod_);
}

bool
RripPolicy::isSrripLeader(std::uint32_t set, ThreadId t) const
{
    return set % leaderPeriod_ == 2 * t;
}

bool
RripPolicy::isBrripLeader(std::uint32_t set, ThreadId t) const
{
    return set % leaderPeriod_ == 2 * t + 1;
}

bool
RripPolicy::followerUsesBrrip(ThreadId t) const
{
    return psel_[t] > pselMax_ / 2;
}

void
RripPolicy::onAccess(std::uint32_t set, int hit_way, SetView frames,
                     const Access &a)
{
    (void)frames;
    if (hit_way >= 0) {
        // Hit promotion (HP variant): predict near re-reference.
        rrpv_[set * assoc_ + static_cast<std::uint32_t>(hit_way)] = 0;
    } else if (cfg_.mode == RripMode::DRrip && !a.isWriteback) {
        // As with TADIP, any thread's miss in a leader set votes on
        // the PSEL of the thread that owns the set.
        const auto threads = static_cast<ThreadId>(psel_.size());
        for (ThreadId t = 0; t < threads; ++t) {
            if (isSrripLeader(set, t)) {
                if (psel_[t] < pselMax_)
                    ++psel_[t];
                break;
            }
            if (isBrripLeader(set, t)) {
                if (psel_[t] > 0)
                    --psel_[t];
                break;
            }
        }
    }
}

std::uint32_t
RripPolicy::victim(std::uint32_t set, SetView frames,
                   const Access &a)
{
    (void)frames;
    (void)a;
    auto *base = &rrpv_[set * assoc_];
    for (;;) {
        for (std::uint32_t w = 0; w < assoc_; ++w)
            if (base[w] == rrpvMax_)
                return w;
        for (std::uint32_t w = 0; w < assoc_; ++w)
            ++base[w];
    }
}

void
RripPolicy::onFill(std::uint32_t set, std::uint32_t way, SetView frames,
                   const Access &a)
{
    (void)frames;
    const ThreadId t =
        std::min<ThreadId>(a.thread,
                           static_cast<ThreadId>(psel_.size() - 1));
    bool bimodal;
    switch (cfg_.mode) {
      case RripMode::SRrip:
        bimodal = false;
        break;
      case RripMode::BRrip:
        bimodal = true;
        break;
      case RripMode::DRrip:
      default:
        if (isSrripLeader(set, t))
            bimodal = false;
        else if (isBrripLeader(set, t))
            bimodal = true;
        else
            bimodal = followerUsesBrrip(t);
        break;
    }

    std::uint8_t insert = static_cast<std::uint8_t>(rrpvMax_ - 1);
    if (bimodal && !rng_.chance(1, cfg_.epsilonDenom))
        insert = static_cast<std::uint8_t>(rrpvMax_);
    rrpv_[set * assoc_ + way] = insert;
}

std::uint32_t
RripPolicy::rank(std::uint32_t set, std::uint32_t way) const
{
    return rrpv_[set * assoc_ + way];
}

std::string
RripPolicy::name() const
{
    switch (cfg_.mode) {
      case RripMode::SRrip:
        return "srrip";
      case RripMode::BRrip:
        return "brrip";
      default:
        return cfg_.numThreads > 1 ? "tadrrip" : "drrip";
    }
}

} // namespace sdbp
