#include "opt/belady.hh"

#include <cassert>
#include <limits>
#include <unordered_map>

#include "util/bitops.hh"
#include "util/logging.hh"

namespace sdbp
{

namespace
{

constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();

} // anonymous namespace

OptimalResult
optimalMisses(const std::vector<LlcRef> &trace, std::uint32_t num_sets,
              std::uint32_t assoc, bool allow_bypass,
              std::size_t measure_from)
{
    if (!isPowerOfTwo(num_sets))
        fatal("optimalMisses: num_sets must be a power of two");

    OptimalResult result;
    result.accesses = trace.size() > measure_from
        ? trace.size() - measure_from
        : 0;

    // next_use[i]: index of the next reference to the same block, or
    // kNever.  Computed with one backward pass.
    std::vector<std::uint64_t> next_use(trace.size());
    {
        std::unordered_map<Addr, std::uint64_t> last_seen;
        last_seen.reserve(trace.size() / 4 + 1);
        for (std::size_t i = trace.size(); i-- > 0;) {
            const Addr blk = trace[i].blockAddr;
            auto it = last_seen.find(blk);
            next_use[i] = it == last_seen.end() ? kNever : it->second;
            last_seen[blk] = i;
        }
    }

    // Per-set resident arrays: block address + its next use index.
    struct Frame
    {
        Addr blockAddr;
        std::uint64_t nextUse;
    };
    std::vector<std::vector<Frame>> sets(num_sets);
    for (auto &s : sets)
        s.reserve(assoc);

    for (std::size_t i = 0; i < trace.size(); ++i) {
        const bool counted = i >= measure_from;
        const Addr blk = trace[i].blockAddr;
        const auto set = static_cast<std::uint32_t>(blk & (num_sets - 1));
        auto &frames = sets[set];

        bool hit = false;
        for (auto &f : frames) {
            if (f.blockAddr == blk) {
                f.nextUse = next_use[i];
                hit = true;
                break;
            }
        }
        if (hit)
            continue;

        if (counted)
            ++result.misses;
        if (frames.size() < assoc) {
            frames.push_back({blk, next_use[i]});
            continue;
        }

        // Find the resident block referenced farthest in the future.
        std::size_t far_idx = 0;
        for (std::size_t w = 1; w < frames.size(); ++w)
            if (frames[w].nextUse > frames[far_idx].nextUse)
                far_idx = w;

        if (allow_bypass && next_use[i] >= frames[far_idx].nextUse) {
            // The incoming block is re-referenced after (or never
            // before) every resident block: keep it out.
            if (counted)
                ++result.bypasses;
            continue;
        }
        frames[far_idx] = {blk, next_use[i]};
    }
    return result;
}

} // namespace sdbp
