/**
 * @file
 * Belady's MIN replacement enhanced with bypass (Sec. VI-B): given
 * the recorded LLC demand reference stream, compute the minimal
 * achievable number of misses when the policy may also decline to
 * place an incoming block whose next access lies beyond the next
 * accesses of every resident block.
 */

#ifndef SDBP_OPT_BELADY_HH
#define SDBP_OPT_BELADY_HH

#include <cstdint>
#include <vector>

#include "cache/hierarchy.hh"
#include "util/types.hh"

namespace sdbp
{

struct OptimalResult
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    std::uint64_t bypasses = 0;
};

/**
 * Replay @p trace through a MIN + bypass cache of the given
 * geometry.
 *
 * @param trace the recorded LLC demand accesses, in program order
 * @param num_sets LLC sets (power of two)
 * @param assoc LLC associativity
 * @param allow_bypass disable to get classic MIN
 * @param measure_from replay the whole trace but count accesses,
 *        misses and bypasses only from this index on (used to warm
 *        MIN over the warm-up portion, mirroring the real runs)
 */
OptimalResult optimalMisses(const std::vector<LlcRef> &trace,
                            std::uint32_t num_sets, std::uint32_t assoc,
                            bool allow_bypass = true,
                            std::size_t measure_from = 0);

} // namespace sdbp

#endif // SDBP_OPT_BELADY_HH
